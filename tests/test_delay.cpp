#include "fpga/delay.h"

#include <gtest/gtest.h>

#include "alg/dp.h"
#include "gen/fixtures.h"

namespace segroute::fpga {
namespace {

TEST(Delay, MoreJoinedSegmentsMeansMoreDelayAtEqualLength) {
  // Same net length and wire capacitance; the segmented path pays for its
  // extra series switches (the paper's Fig. 2(c) objection).
  const SegmentedChannel ch({Track(12, {}), Track(12, {4, 8})});
  const Connection c{1, 12, "full"};
  const double one_seg = connection_delay(ch, c, 0);
  const double three_seg = connection_delay(ch, c, 1);
  EXPECT_GT(three_seg, one_seg);
}

TEST(Delay, LongerSegmentMeansMoreDelayAtEqualSwitchCount) {
  // Same switch count; the oversized segment pays for extra capacitance
  // (the Fig. 2(d) objection).
  const SegmentedChannel ch({Track(24, {4}), Track(24, {})});
  const Connection c{1, 3, "short"};
  const double snug = connection_delay(ch, c, 0);   // 4-column segment
  const double sloppy = connection_delay(ch, c, 1);  // 24-column track
  EXPECT_GT(sloppy, snug);
}

TEST(Delay, FullySegmentedIsWorstForLongNets) {
  const Column width = 16;
  const SegmentedChannel ch({
      Track::unsegmented(width),
      Track::fully_segmented(width),
      Track(width, {8}),
  });
  const Connection c{1, width, "span"};
  const double continuous = connection_delay(ch, c, 0);
  const double fully = connection_delay(ch, c, 1);
  const double two = connection_delay(ch, c, 2);
  EXPECT_GT(fully, two);
  EXPECT_GT(two, continuous);  // same wire, more switches
}

TEST(Delay, SwitchResistanceScalesTheSegmentationPenalty) {
  const SegmentedChannel ch({Track(12, {4, 8})});
  const Connection c{1, 12, ""};
  DelayParams cheap;
  cheap.r_switch = 0.1;
  DelayParams pricey;
  pricey.r_switch = 10.0;
  EXPECT_GT(connection_delay(ch, c, 0, pricey),
            connection_delay(ch, c, 0, cheap));
}

TEST(Delay, GeneralizedRouteChargesTwoSwitchesPerTrackChange) {
  const SegmentedChannel ch({Track(12, {6}), Track(12, {6})});
  const Connection c{1, 12, ""};
  // Single-track route: both segments of track 0.
  const double single = connection_delay(ch, c, 0);
  // Track-changing route covering the same wire: (1,6)@t0 + (7,12)@t1.
  const std::vector<RoutePart> parts = {{1, 6, 0}, {7, 12, 1}};
  const double split = connection_delay(ch, c, parts);
  EXPECT_GT(split, single);
  EXPECT_THROW(connection_delay(ch, c, std::vector<RoutePart>{}),
               std::invalid_argument);
}

TEST(Delay, RoutingDelayAggregates) {
  const auto ch = gen::fixtures::fig3_channel();
  const auto cs = gen::fixtures::fig3_connections();
  const auto r = alg::dp_route_unlimited(ch, cs);
  ASSERT_TRUE(r.success);
  const auto st = routing_delay(ch, cs, r.routing);
  EXPECT_GT(st.max_delay, 0.0);
  EXPECT_GT(st.mean_delay, 0.0);
  EXPECT_LE(st.mean_delay, st.max_delay);
  EXPECT_GT(st.total_wire, 0.0);
  EXPECT_GE(st.max_switches, 2);  // at least entry + exit
}

TEST(Delay, RoutingDelayRejectsIncompleteRoutings) {
  const auto ch = gen::fixtures::fig3_channel();
  const auto cs = gen::fixtures::fig3_connections();
  Routing incomplete(cs.size());
  EXPECT_THROW(routing_delay(ch, cs, incomplete), std::invalid_argument);
  Routing wrong(1);
  EXPECT_THROW(routing_delay(ch, cs, wrong), std::invalid_argument);
}

TEST(Delay, EmptyRoutingHasZeroStats) {
  const auto ch = SegmentedChannel::unsegmented(1, 4);
  const auto st = routing_delay(ch, ConnectionSet{}, Routing(0));
  EXPECT_EQ(st.max_delay, 0.0);
  EXPECT_EQ(st.total_wire, 0.0);
}

}  // namespace
}  // namespace segroute::fpga
