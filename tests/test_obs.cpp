// The observability subsystem: trace spans, the metrics registry and
// their exposition — plus the properties the rest of the repo depends
// on: recording never changes routing results, drains never race
// recorders (exercised under TSan via the tsan_smoke sub-build), and
// the SEGROUTE_OBS=OFF build keeps the instrumentation silent.
//
// The obs API itself (Span, TraceSession, Registry) is compiled in
// both build modes; only the SEGROUTE_* macros in the routing code are
// gated. Tests of the API run everywhere; tests of the threaded-through
// instrumentation branch on SEGROUTE_OBS_ENABLED.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "alg/dp.h"
#include "core/weights.h"
#include "engine/batch.h"
#include "gen/segmentation.h"
#include "gen/workload.h"
#include "harness/robust_route.h"
#include "obs/clock.h"
#include "obs/instrument.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "util/pool.h"

namespace segroute::obs {
namespace {

using EventList = std::vector<TraceEvent>;

const TraceEvent* find_event(const EventList& evs, const std::string& name) {
  for (const TraceEvent& e : evs) {
    if (name == e.name) return &e;
  }
  return nullptr;
}

std::size_t count_events(const EventList& evs, const std::string& name) {
  std::size_t n = 0;
  for (const TraceEvent& e : evs) n += (name == e.name) ? 1 : 0;
  return n;
}

// --- Clock -----------------------------------------------------------------

TEST(ObsClock, MonotonicAndMicrosecondConversion) {
  const std::uint64_t a = now_ns();
  const std::uint64_t b = now_ns();
  EXPECT_LE(a, b);
  EXPECT_DOUBLE_EQ(ns_to_trace_us(1500), 1.5);
}

// --- Span lifecycle --------------------------------------------------------

TEST(ObsSpan, InactiveWithoutSession) {
  ASSERT_FALSE(tracing_active());
  Span s("test.orphan");
  EXPECT_FALSE(s.active());
  EXPECT_EQ(s.id(), 0u);
}

TEST(ObsSpan, OneSessionAtATime) {
  TraceSession a, b;
  ASSERT_TRUE(a.start());
  EXPECT_TRUE(a.active());
  EXPECT_FALSE(b.start());  // refused while a records
  a.stop();
  EXPECT_FALSE(a.active());
  ASSERT_TRUE(b.start());
  b.stop();
}

TEST(ObsSpan, NestingLinksParentsOnOneThread) {
  TraceSession session;
  ASSERT_TRUE(session.start());
  {
    Span outer("test.outer", "outcome", "ok");
    ASSERT_TRUE(outer.active());
    {
      Span inner("test.inner");
      instant("test.mark", "at", std::uint64_t{7});
    }
  }
  session.stop();

  const EventList& evs = session.events();
  const TraceEvent* outer = find_event(evs, "test.outer");
  const TraceEvent* inner = find_event(evs, "test.inner");
  const TraceEvent* mark = find_event(evs, "test.mark");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(mark, nullptr);

  EXPECT_EQ(inner->parent, outer->id);
  EXPECT_EQ(mark->parent, inner->id);  // emitted while inner was open
  EXPECT_TRUE(mark->instant);
  EXPECT_LE(outer->start_ns, inner->start_ns);
  EXPECT_LE(inner->end_ns, outer->end_ns);
  EXPECT_STREQ(outer->tag_key, "outcome");
  EXPECT_STREQ(outer->tag_str, "ok");
  EXPECT_EQ(mark->tag_u64, 7u);
  // events() is sorted by start time.
  EXPECT_TRUE(std::is_sorted(
      evs.begin(), evs.end(), [](const TraceEvent& a, const TraceEvent& b) {
        return a.start_ns < b.start_ns;
      }));
}

TEST(ObsSpan, SpansBeforeStartAndAfterStopAreNotRecorded) {
  { Span early("test.early"); }
  TraceSession session;
  ASSERT_TRUE(session.start());
  { Span during("test.during"); }
  session.stop();
  { Span late("test.late"); }

  EXPECT_EQ(count_events(session.events(), "test.early"), 0u);
  EXPECT_EQ(count_events(session.events(), "test.during"), 1u);
  EXPECT_EQ(count_events(session.events(), "test.late"), 0u);
}

TEST(ObsSpan, NestingAndOrderingAcrossPoolWorkers) {
  util::ThreadPool pool(4);  // 3 real workers + the caller
  TraceSession session;
  ASSERT_TRUE(session.start());
  pool.parallel_for(8, [](std::int64_t i) {
    Span outer("test.pool_outer", "item", static_cast<std::uint64_t>(i));
    Span inner("test.pool_inner");
  });
  session.stop();

  const EventList& evs = session.events();
  EXPECT_EQ(session.dropped(), 0u);
  std::vector<const TraceEvent*> outers, inners;
  for (const TraceEvent& e : evs) {
    if (std::string("test.pool_outer") == e.name) outers.push_back(&e);
    if (std::string("test.pool_inner") == e.name) inners.push_back(&e);
  }
  ASSERT_EQ(outers.size(), 8u);
  ASSERT_EQ(inners.size(), 8u);

  // Every inner is parented to an outer on the same thread and nested
  // within its interval; the 8 items arrive exactly once.
  std::vector<char> seen(8, 0);
  for (const TraceEvent* in : inners) {
    const TraceEvent* out = nullptr;
    for (const TraceEvent* o : outers) {
      if (o->id == in->parent) out = o;
    }
    ASSERT_NE(out, nullptr) << "inner span without matching outer parent";
    EXPECT_EQ(out->tid, in->tid);
    EXPECT_LE(out->start_ns, in->start_ns);
    EXPECT_GE(out->end_ns, in->end_ns);
    ASSERT_LT(out->tag_u64, 8u);
    seen[static_cast<std::size_t>(out->tag_u64)]++;
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(),
                          [](char c) { return c == 1; }));
  EXPECT_TRUE(std::is_sorted(
      evs.begin(), evs.end(), [](const TraceEvent& a, const TraceEvent& b) {
        return a.start_ns < b.start_ns;
      }));
}

TEST(ObsSpan, FullBufferDropsAndCountsInsteadOfGrowing) {
  TraceSession session(8);
  ASSERT_TRUE(session.start());
  for (int i = 0; i < 20; ++i) {
    Span s("test.flood");
  }
  session.stop();
  EXPECT_EQ(count_events(session.events(), "test.flood"), 8u);
  EXPECT_EQ(session.dropped(), 12u);
}

TEST(ObsSpan, ChromeTraceJsonCarriesTagsAndPhases) {
  TraceSession session;
  ASSERT_TRUE(session.start());
  {
    Span s("test.chrome", "outcome", "ok");
    instant("test.tick");
  }
  {
    Span s("test.fp", "fingerprint", std::uint64_t{18446744073709551615ull});
  }
  session.stop();

  const std::string js = session.chrome_trace_json();
  EXPECT_NE(js.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(js.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(js.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(js.find("\"s\": \"t\""), std::string::npos);
  EXPECT_NE(js.find("\"outcome\": \"ok\""), std::string::npos);
  // u64 tags are strings: 2^64-1 does not survive a double round-trip.
  EXPECT_NE(js.find("\"fingerprint\": \"18446744073709551615\""),
            std::string::npos);
}

// --- Metrics ---------------------------------------------------------------

TEST(ObsMetrics, CounterAggregatesConcurrentShards) {
  Counter& c = Registry::instance().counter("test.counter.shards");
  c.reset();
  util::ThreadPool pool(4);
  pool.parallel_for(1000, [&](std::int64_t) { c.add(1); });
  EXPECT_EQ(c.value(), 1000u);
  c.add(5);
  EXPECT_EQ(c.value(), 1005u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsMetrics, GaugeSetAndHighWater) {
  Gauge& g = Registry::instance().gauge("test.gauge");
  g.reset();
  g.set(5.0);
  EXPECT_DOUBLE_EQ(g.value(), 5.0);
  g.set_max(3.0);
  EXPECT_DOUBLE_EQ(g.value(), 5.0);  // lower value does not regress it
  g.set_max(9.0);
  EXPECT_DOUBLE_EQ(g.value(), 9.0);
  g.set(2.0);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);  // plain set always wins
}

TEST(ObsMetrics, HistogramBucketBoundariesAreInclusiveUpper) {
  Histogram& h =
      Registry::instance().histogram("test.hist.bounds", {1.0, 2.0, 4.0});
  h.reset();
  for (double v : {0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 5.0}) h.observe(v);
  const Histogram::Snapshot s = h.snapshot();
  ASSERT_EQ(s.counts.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(s.counts[0], 2u);      // 0.5, 1.0   (v <= 1)
  EXPECT_EQ(s.counts[1], 2u);      // 1.5, 2.0   (1 < v <= 2)
  EXPECT_EQ(s.counts[2], 2u);      // 3.0, 4.0   (2 < v <= 4)
  EXPECT_EQ(s.counts[3], 1u);      // 5.0        (overflow)
  EXPECT_EQ(s.total, 7u);
  EXPECT_DOUBLE_EQ(s.sum, 17.0);
}

TEST(ObsMetrics, RegistrationIsIdempotentAndKeepsOriginalBounds) {
  Counter& a = Registry::instance().counter("test.idem.counter");
  Counter& b = Registry::instance().counter("test.idem.counter");
  EXPECT_EQ(&a, &b);
  Histogram& h1 =
      Registry::instance().histogram("test.idem.hist", {1.0, 2.0});
  Histogram& h2 =
      Registry::instance().histogram("test.idem.hist", {42.0});
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bounds().size(), 2u);  // the original bounds win
}

TEST(ObsMetrics, PrometheusExposition) {
  Registry::instance().counter("test.prom-metric").reset();
  Registry::instance().counter("test.prom-metric").add(3);
  Histogram& h =
      Registry::instance().histogram("test.prom.hist", {1.0, 2.0});
  h.reset();
  for (double v : {0.5, 1.5, 9.0}) h.observe(v);

  const std::string text = Registry::instance().prometheus_text();
  // Names are sanitized and prefixed.
  EXPECT_NE(text.find("# TYPE segroute_test_prom_metric counter\n"
                      "segroute_test_prom_metric 3\n"),
            std::string::npos);
  // Histogram buckets are cumulative with le labels, plus +Inf/sum/count.
  EXPECT_NE(text.find("segroute_test_prom_hist_bucket{le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("segroute_test_prom_hist_bucket{le=\"2\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("segroute_test_prom_hist_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("segroute_test_prom_hist_sum 11"), std::string::npos);
  EXPECT_NE(text.find("segroute_test_prom_hist_count 3"), std::string::npos);
}

TEST(ObsMetrics, JsonExposition) {
  Registry::instance().counter("test.json.counter").reset();
  Registry::instance().counter("test.json.counter").add(2);
  Registry::instance().gauge("test.json.gauge").set(1.5);
  const std::string js = Registry::instance().json_text();
  EXPECT_NE(js.find("\"counters\""), std::string::npos);
  EXPECT_NE(js.find("\"gauges\""), std::string::npos);
  EXPECT_NE(js.find("\"histograms\""), std::string::npos);
  EXPECT_NE(js.find("\"test.json.counter\": 2"), std::string::npos);
  EXPECT_NE(js.find("\"test.json.gauge\": 1.5"), std::string::npos);
}

// --- Snapshot-while-recording races (the TSan targets) ---------------------

TEST(ObsMetrics, SnapshotWhileRecordingIsDataRaceFree) {
  Counter& c = Registry::instance().counter("test.race.counter");
  Gauge& g = Registry::instance().gauge("test.race.gauge");
  Histogram& h = Registry::instance().histogram("test.race.hist", {8.0, 64.0});
  c.reset();
  g.reset();
  h.reset();

  constexpr int kUpdates = 4000;
  std::atomic<bool> writers_done{false};
  std::thread writer([&] {
    for (int i = 0; i < kUpdates; ++i) {
      c.add(1);
      g.set_max(static_cast<double>(i));
      h.observe(static_cast<double>(i % 100));
    }
    writers_done.store(true, std::memory_order_release);
  });
  std::uint64_t last = 0;
  while (!writers_done.load(std::memory_order_acquire)) {
    const MetricsSnapshot snap = Registry::instance().snapshot();
    for (const auto& [name, v] : snap.counters) {
      if (name == "test.race.counter") {
        EXPECT_GE(v, last);  // counters are monotone under concurrent reads
        last = v;
      }
    }
    (void)Registry::instance().prometheus_text();
  }
  writer.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kUpdates));
  EXPECT_EQ(h.snapshot().total, static_cast<std::uint64_t>(kUpdates));
}

TEST(ObsSpan, StopWhileAnotherThreadRecordsIsDataRaceFree) {
  std::atomic<bool> quit{false};
  std::thread recorder([&] {
    while (!quit.load(std::memory_order_acquire)) {
      Span s("test.race.span");
      instant("test.race.instant");
    }
  });
  // Start/stop several sessions while the recorder hammers spans: drains
  // race appends, epoch bumps race stale buffers.
  for (int round = 0; round < 5; ++round) {
    TraceSession session(1024);
    ASSERT_TRUE(session.start());
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    session.stop();
    for (const TraceEvent& e : session.events()) {
      EXPECT_LE(e.start_ns, e.end_ns);
    }
  }
  quit.store(true, std::memory_order_release);
  recorder.join();
}

// --- Recording does not perturb routing ------------------------------------

bool same_result(const alg::RouteResult& a, const alg::RouteResult& b) {
  return a.success == b.success && a.weight == b.weight &&
         a.routing == b.routing && a.failure == b.failure;
}

TEST(ObsRouting, ResultsAreBitIdenticalWithAndWithoutActiveSession) {
  const auto ch = gen::staggered_segmentation(6, 32, 8);
  std::mt19937_64 rng(4242);
  std::vector<ConnectionSet> sets;
  for (int i = 0; i < 4; ++i) {
    sets.push_back(gen::routable_workload(ch, 10, 5.0, rng));
  }

  const auto route_all = [&] {
    std::vector<alg::RouteResult> out;
    for (const auto& cs : sets) {
      out.push_back(alg::dp_route_unlimited(ch, cs));
      out.push_back(
          alg::dp_route_optimal(ch, cs, weights::occupied_length()));
    }
    engine::BatchRouter router(ch);
    for (const auto& cs : sets) out.push_back(router.route(cs));
    return out;
  };

  const auto quiet = route_all();
  TraceSession session;
  ASSERT_TRUE(session.start());
  const auto traced = route_all();
  session.stop();

  ASSERT_EQ(quiet.size(), traced.size());
  for (std::size_t i = 0; i < quiet.size(); ++i) {
    EXPECT_TRUE(same_result(quiet[i], traced[i])) << "i=" << i;
  }
}

// --- Threaded-through instrumentation (build-mode dependent) ---------------

TEST(ObsRouting, InstrumentationFollowsBuildMode) {
  const auto ch = gen::staggered_segmentation(6, 32, 8);
  std::mt19937_64 rng(4243);
  const auto cs = gen::routable_workload(ch, 10, 5.0, rng);

  const std::uint64_t before =
      Registry::instance().counter("dp.routes").value();
  const auto res = alg::dp_route_unlimited(ch, cs);
  ASSERT_TRUE(res.success);
  const std::uint64_t after =
      Registry::instance().counter("dp.routes").value();
#if SEGROUTE_OBS_ENABLED
  EXPECT_EQ(after, before + 1);
  EXPECT_GT(Registry::instance().gauge("dp.frontier_high_water").value(), 0.0);
#else
  // OFF build: the macros compiled to nothing, so the registry never
  // hears about routing.
  EXPECT_EQ(after, before);
  EXPECT_EQ(after, 0u);
#endif
}

TEST(ObsRouting, RobustRouteEmitsOutcomeTaggedStageSpans) {
  const auto ch = gen::staggered_segmentation(6, 32, 8);
  std::mt19937_64 rng(4244);
  const auto cs = gen::routable_workload(ch, 10, 5.0, rng);

  TraceSession session;
  ASSERT_TRUE(session.start());
  harness::RobustOptions ro;
  const auto report = harness::robust_route(ch, cs, ro);
  session.stop();
  ASSERT_TRUE(report.success);

#if SEGROUTE_OBS_ENABLED
  const EventList& evs = session.events();
  const TraceEvent* root = find_event(evs, "robust.route");
  ASSERT_NE(root, nullptr);
  EXPECT_STREQ(root->tag_key, "outcome");
  EXPECT_STREQ(root->tag_str, "success");
  // At least one portfolio stage span, outcome-tagged and nested under
  // (or racing alongside) the root.
  bool stage_found = false;
  for (const TraceEvent& e : evs) {
    if (&e != root && !e.instant && e.tag_key != nullptr &&
        std::string("outcome") == e.tag_key) {
      stage_found = true;
    }
  }
  EXPECT_TRUE(stage_found);
#else
  EXPECT_TRUE(session.events().empty());
#endif
}

}  // namespace
}  // namespace segroute::obs
