#include "alg/capacity.h"

#include <gtest/gtest.h>

#include <random>

#include "alg/dp.h"
#include "gen/fixtures.h"
#include "gen/segmentation.h"
#include "gen/workload.h"

namespace segroute::alg {
namespace {

TEST(Capacity, MinTracksFindsTheKnownAnswer) {
  // Fig. 2 workload on uniformly cut channels (scheme of Fig. 2(f)):
  // two tracks suffice.
  const auto cs = gen::fixtures::fig2_connections();
  const auto r = min_tracks(cs, [](int t) {
    return SegmentedChannel::identical(t, 9, {3, 6});
  });
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, 2);
}

TEST(Capacity, MinTracksRespectsTheSegmentLimit) {
  const auto cs = gen::fixtures::fig2_connections();
  CapacityOptions k1;
  k1.max_segments = 1;
  // With K = 1 on the uniform grid, c2 = (2,6) spans two segments in
  // every track: unroutable at any track count.
  const auto r = min_tracks(cs, [](int t) {
    return SegmentedChannel::identical(t, 9, {3, 6});
  }, k1);
  EXPECT_FALSE(r.has_value());
}

TEST(Capacity, MinTracksLinearAndBinarySearchAgree) {
  std::mt19937_64 rng(151);
  for (int iter = 0; iter < 20; ++iter) {
    const auto cs = gen::geometric_workload(
        4 + static_cast<int>(rng() % 10), 30, 5.0, rng);
    // staggered_segmentation is monotone in the track count: tracks keep
    // their grids as more are added? Not exactly (offsets shift), so
    // compare against the definitely-monotone identical-grid factory.
    const auto make = [](int t) {
      return SegmentedChannel::identical(t, 30, {5, 10, 15, 20, 25});
    };
    const auto lin = min_tracks(cs, make);
    const auto bin = min_tracks(cs, make, {}, /*assume_monotone=*/true);
    ASSERT_EQ(lin.has_value(), bin.has_value()) << "iter " << iter;
    if (lin) {
      EXPECT_EQ(*lin, *bin) << "iter " << iter;
    }
  }
}

TEST(Capacity, MinTracksNeverBelowDensity) {
  std::mt19937_64 rng(152);
  for (int iter = 0; iter < 15; ++iter) {
    const auto cs = gen::geometric_workload(8, 24, 5.0, rng);
    const auto r = min_tracks(cs, [](int t) {
      return gen::staggered_segmentation(t, 24, 6);
    });
    ASSERT_TRUE(r.has_value()) << "iter " << iter;
    EXPECT_GE(*r, cs.density());
  }
}

TEST(Capacity, TrackLimitReturnsNullopt) {
  ConnectionSet cs;
  cs.add(1, 2);
  cs.add(1, 2);
  cs.add(1, 2);
  CapacityOptions o;
  o.track_limit = 2;
  EXPECT_FALSE(min_tracks(cs, [](int t) {
    return SegmentedChannel::unsegmented(t, 4);
  }, o).has_value());
}

TEST(Capacity, MaxRoutablePrefixIsTight) {
  // Channel with one track of two segments: the third connection (same
  // segment as the first) cannot be added.
  const auto ch = SegmentedChannel::identical(1, 9, {4});
  ConnectionSet cs;
  cs.add(1, 3);
  cs.add(5, 9);
  cs.add(4, 4);  // segment (1,4) is taken
  EXPECT_EQ(max_routable_prefix(ch, cs), 2);
  // Whole set routable -> prefix == size.
  ConnectionSet ok;
  ok.add(1, 3);
  ok.add(5, 9);
  EXPECT_EQ(max_routable_prefix(ch, ok), 2);
  EXPECT_EQ(max_routable_prefix(ch, ConnectionSet{}), 0);
}

TEST(Capacity, MaxRoutablePrefixMatchesDirectScan) {
  std::mt19937_64 rng(153);
  for (int iter = 0; iter < 20; ++iter) {
    const auto ch = gen::staggered_segmentation(3, 20, 5);
    const auto cs = gen::geometric_workload(10, 20, 5.0, rng);
    const int fast = max_routable_prefix(ch, cs);
    int slow = 0;
    for (int m = 1; m <= cs.size(); ++m) {
      ConnectionSet sub;
      for (ConnId i = 0; i < m; ++i) sub.add(cs[i].left, cs[i].right);
      if (dp_route_unlimited(ch, sub).success) slow = m;
      else break;  // prefixes are monotone
    }
    EXPECT_EQ(fast, slow) << "iter " << iter;
  }
}

TEST(Capacity, RoutabilityBoundsAndMonotonicity) {
  std::mt19937_64 rng(154);
  const auto draw = [](std::mt19937_64& r) {
    return gen::geometric_workload(8, 24, 5.0, r);
  };
  const auto small = gen::staggered_segmentation(3, 24, 6);
  const auto large = gen::staggered_segmentation(8, 24, 6);
  const double p_small = routability(small, draw, 40, rng);
  std::mt19937_64 rng2(154);
  const double p_large = routability(large, draw, 40, rng2);
  EXPECT_GE(p_small, 0.0);
  EXPECT_LE(p_small, 1.0);
  // Same workload stream, more tracks: routability cannot drop.
  EXPECT_GE(p_large, p_small);
  EXPECT_EQ(routability(small, draw, 0, rng), 0.0);
}

}  // namespace
}  // namespace segroute::alg
