#include "fpga/device.h"

#include <gtest/gtest.h>

#include <random>
#include <set>

#include "core/routing.h"
#include "gen/segmentation.h"

namespace segroute::fpga {
namespace {

TEST(DeviceSpec, GeometryHelpers) {
  DeviceSpec dev;
  dev.rows = 3;
  dev.slots_per_row = 8;
  dev.cell_width = 4;
  EXPECT_EQ(dev.num_channels(), 4);
  EXPECT_EQ(dev.columns(), 32);
  EXPECT_EQ(dev.pin_column(0), 2);
  EXPECT_EQ(dev.pin_column(7), 30);
}

TEST(GlobalRoute, TrunksSpanTheirPinColumns) {
  DeviceSpec dev;
  dev.rows = 2;
  dev.slots_per_row = 6;
  dev.cell_width = 2;
  const Netlist nl(12, {CellNet{{0, 5}, "a"}, CellNet{{6, 11}, "b"},
                        CellNet{{0, 7}, "c"}});
  const auto p = sequential_placement(nl, dev.rows, dev.slots_per_row);
  const auto gr = global_route(dev, nl, p);
  ASSERT_EQ(gr.channel_of_net.size(), 3u);
  // Every net landed in a channel adjacent to (or between) its rows.
  // Net "a" (cells 0..5, all row 0) may use channel 0 or 1.
  EXPECT_TRUE(gr.channel_of_net[0] == 0 || gr.channel_of_net[0] == 1);
  // Net "b" (row 1) may use channel 1 or 2.
  EXPECT_TRUE(gr.channel_of_net[1] == 1 || gr.channel_of_net[1] == 2);
  // Check the trunk geometry: net "a" spans pins of slots 0..5.
  bool found = false;
  for (int ch = 0; ch < dev.num_channels(); ++ch) {
    const auto& cs = gr.per_channel[static_cast<std::size_t>(ch)];
    for (ConnId i = 0; i < cs.size(); ++i) {
      if (cs[i].name == "a") {
        EXPECT_EQ(cs[i].left, dev.pin_column(0));
        EXPECT_EQ(cs[i].right, dev.pin_column(5));
        found = true;
      }
    }
  }
  EXPECT_TRUE(found);
}

TEST(GlobalRoute, EveryNetAppearsExactlyOnce) {
  std::mt19937_64 rng(141);
  DeviceSpec dev;
  dev.rows = 4;
  dev.slots_per_row = 10;
  const auto nl = random_netlist(40, 30, 4, 10, rng);
  const auto p = random_placement(nl, dev.rows, dev.slots_per_row, rng);
  const auto gr = global_route(dev, nl, p);
  std::set<int> seen;
  int total = 0;
  for (int ch = 0; ch < dev.num_channels(); ++ch) {
    EXPECT_EQ(gr.per_channel[static_cast<std::size_t>(ch)].size(),
              static_cast<ConnId>(
                  gr.net_of_conn[static_cast<std::size_t>(ch)].size()));
    for (int net : gr.net_of_conn[static_cast<std::size_t>(ch)]) {
      EXPECT_TRUE(seen.insert(net).second);
      EXPECT_EQ(gr.channel_of_net[static_cast<std::size_t>(net)], ch);
      ++total;
    }
  }
  EXPECT_EQ(total, nl.num_nets());
}

TEST(GlobalRoute, ChannelsStayWithinPinRowsPlusOne) {
  std::mt19937_64 rng(142);
  DeviceSpec dev;
  dev.rows = 5;
  dev.slots_per_row = 8;
  const auto nl = random_netlist(40, 40, 3, 12, rng);
  const auto p = random_placement(nl, dev.rows, dev.slots_per_row, rng);
  const auto gr = global_route(dev, nl, p);
  for (int i = 0; i < nl.num_nets(); ++i) {
    int lo = dev.rows, hi = 0;
    for (int c : nl.net(i).cells) {
      lo = std::min(lo, p.row_of(c));
      hi = std::max(hi, p.row_of(c));
    }
    const int ch = gr.channel_of_net[static_cast<std::size_t>(i)];
    EXPECT_GE(ch, lo);
    EXPECT_LE(ch, hi + 1);
  }
}

TEST(GlobalRoute, RejectsMismatchedGrids) {
  DeviceSpec dev;
  dev.rows = 2;
  dev.slots_per_row = 4;
  const Netlist nl(4, {CellNet{{0, 1}, ""}});
  const auto p = sequential_placement(nl, 2, 2);  // wrong slots_per_row
  EXPECT_THROW(global_route(dev, nl, p), std::invalid_argument);
}

TEST(RouteDevice, RoutesEveryChannelAndReportsDelay) {
  std::mt19937_64 rng(143);
  DeviceSpec dev;
  dev.rows = 3;
  dev.slots_per_row = 12;
  const auto nl = random_netlist(36, 24, 3, 8, rng);
  const auto p = sequential_placement(nl, dev.rows, dev.slots_per_row);
  const auto gr = global_route(dev, nl, p);
  const auto reports = route_device(
      dev, gr,
      [](int tracks, Column width) {
        return gen::staggered_segmentation(tracks, width,
                                           std::max<Column>(2, width / 4));
      },
      32);
  ASSERT_EQ(reports.size(), static_cast<std::size_t>(dev.num_channels()));
  for (const auto& rep : reports) {
    if (rep.connections == 0) {
      EXPECT_EQ(rep.tracks_used, 0);
      continue;
    }
    ASSERT_GT(rep.tracks_used, 0) << "channel " << rep.channel;
    EXPECT_GE(rep.tracks_used, rep.density);
    EXPECT_GT(rep.delay.max_delay, 0.0);
  }
}

TEST(RouteDevice, TrackLimitReportsFailure) {
  std::mt19937_64 rng(144);
  DeviceSpec dev;
  dev.rows = 1;
  dev.slots_per_row = 8;
  const auto nl = random_netlist(8, 20, 3, 8, rng);
  const auto p = sequential_placement(nl, dev.rows, dev.slots_per_row);
  const auto gr = global_route(dev, nl, p);
  const auto reports = route_device(
      dev, gr,
      [](int tracks, Column width) {
        return SegmentedChannel::unsegmented(tracks, width);
      },
      1);  // absurdly small limit
  bool some_failed = false;
  for (const auto& rep : reports) {
    if (rep.connections > 1 && rep.tracks_used == -1) some_failed = true;
  }
  EXPECT_TRUE(some_failed);
}

}  // namespace
}  // namespace segroute::fpga
