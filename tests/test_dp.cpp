#include "alg/dp.h"

#include <gtest/gtest.h>

#include <random>
#include <set>

#include "alg/exhaustive.h"
#include "core/routing.h"
#include "gen/fixtures.h"
#include "gen/segmentation.h"
#include "gen/workload.h"

namespace segroute::alg {
namespace {

std::uint64_t factorial(int n) {
  std::uint64_t f = 1;
  for (int i = 2; i <= n; ++i) f *= static_cast<std::uint64_t>(i);
  return f;
}

std::uint64_t ipow(std::uint64_t b, int e) {
  std::uint64_t r = 1;
  while (e-- > 0) r *= b;
  return r;
}

SegmentedChannel random_channel(TrackId T, Column width, int max_cuts,
                                std::mt19937_64& rng) {
  std::vector<Track> tracks;
  for (TrackId t = 0; t < T; ++t) {
    std::set<Column> cuts;
    const int k = static_cast<int>(rng() % static_cast<unsigned>(max_cuts + 1));
    for (int i = 0; i < k; ++i) {
      cuts.insert(1 + static_cast<Column>(rng() % (width - 1)));
    }
    tracks.emplace_back(width, std::vector<Column>(cuts.begin(), cuts.end()));
  }
  return SegmentedChannel(std::move(tracks));
}

TEST(Dp, RoutesFig3) {
  const auto ch = gen::fixtures::fig3_channel();
  const auto cs = gen::fixtures::fig3_connections();
  const auto r = dp_route_unlimited(ch, cs);
  ASSERT_TRUE(r.success) << r.note;
  EXPECT_TRUE(validate(ch, cs, r.routing));
}

TEST(Dp, FeasibilityMatchesExhaustiveOnRandomInstances) {
  std::mt19937_64 rng(61);
  int yes = 0, no = 0;
  for (int iter = 0; iter < 120; ++iter) {
    const auto ch = random_channel(3, 14, 3, rng);
    const auto cs = gen::geometric_workload(
        2 + static_cast<int>(rng() % 6), 14, 4.0, rng);
    const auto d = dp_route_unlimited(ch, cs);
    const auto e = exhaustive_route(ch, cs);
    ASSERT_EQ(d.success, e.success) << "iter " << iter;
    if (d.success) {
      EXPECT_TRUE(validate(ch, cs, d.routing)) << "iter " << iter;
      ++yes;
    } else {
      ++no;
    }
  }
  EXPECT_GT(yes, 0);
  EXPECT_GT(no, 0);
}

TEST(Dp, KSegmentFeasibilityMatchesExhaustive) {
  std::mt19937_64 rng(62);
  for (int iter = 0; iter < 80; ++iter) {
    const auto ch = random_channel(3, 14, 4, rng);
    const auto cs = gen::geometric_workload(
        2 + static_cast<int>(rng() % 5), 14, 4.0, rng);
    const int k = 1 + static_cast<int>(rng() % 3);
    ExhaustiveOptions eo;
    eo.max_segments = k;
    const auto d = dp_route_ksegment(ch, cs, k);
    const auto e = exhaustive_route(ch, cs, eo);
    ASSERT_EQ(d.success, e.success) << "iter " << iter << " k=" << k;
    if (d.success) {
      EXPECT_TRUE(validate(ch, cs, d.routing, k)) << "iter " << iter;
    }
  }
}

TEST(Dp, KSegmentSuccessIsMonotoneInK) {
  std::mt19937_64 rng(63);
  for (int iter = 0; iter < 40; ++iter) {
    const auto ch = random_channel(3, 16, 4, rng);
    const auto cs = gen::geometric_workload(
        2 + static_cast<int>(rng() % 6), 16, 4.0, rng);
    bool prev = false;
    for (int k = 1; k <= 5; ++k) {
      const bool ok = dp_route_ksegment(ch, cs, k).success;
      EXPECT_TRUE(!prev || ok) << "success lost when K grew, iter " << iter;
      prev = ok;
    }
    EXPECT_EQ(prev, dp_route_unlimited(ch, cs).success) << "iter " << iter;
  }
}

TEST(Dp, OptimalWeightMatchesExhaustiveBranchAndBound) {
  std::mt19937_64 rng(64);
  const auto w = weights::occupied_length();
  for (int iter = 0; iter < 60; ++iter) {
    const auto ch = random_channel(3, 12, 3, rng);
    const auto cs = gen::geometric_workload(
        2 + static_cast<int>(rng() % 4), 12, 3.5, rng);
    ExhaustiveOptions eo;
    eo.weight = w;
    const auto d = dp_route_optimal(ch, cs, w);
    const auto e = exhaustive_route(ch, cs, eo);
    ASSERT_EQ(d.success, e.success) << "iter " << iter;
    if (d.success) {
      EXPECT_NEAR(d.weight, e.weight, 1e-9) << "iter " << iter;
      EXPECT_NEAR(total_weight(ch, cs, d.routing, w), d.weight, 1e-9);
    }
  }
}

TEST(Dp, CanonicalizationDoesNotChangeTheAnswer) {
  std::mt19937_64 rng(65);
  for (int iter = 0; iter < 60; ++iter) {
    // Channels with repeated track types so canonicalization has bite.
    const auto ch = gen::staggered_segmentation(4, 16, 4);
    const auto cs = gen::geometric_workload(
        3 + static_cast<int>(rng() % 6), 16, 4.0, rng);
    DpOptions with, without;
    with.canonicalize_types = true;
    without.canonicalize_types = false;
    const auto a = dp_route(ch, cs, with);
    const auto b = dp_route(ch, cs, without);
    EXPECT_EQ(a.success, b.success) << "iter " << iter;
    // Merged states can never outnumber raw states.
    EXPECT_LE(a.stats.max_level_nodes, b.stats.max_level_nodes);
  }
}

TEST(Dp, Theorem5FrontierBoundHolds) {
  // Unlimited segment routing: at most 2 * T! distinct frontiers/level.
  std::mt19937_64 rng(66);
  for (int iter = 0; iter < 25; ++iter) {
    const int T = 2 + static_cast<int>(rng() % 3);  // 2..4
    const auto ch = random_channel(T, 14, 3, rng);
    const auto cs = gen::geometric_workload(8, 14, 4.0, rng);
    DpOptions o;
    o.canonicalize_types = false;  // the theorem counts raw frontiers
    const auto r = dp_route(ch, cs, o);
    EXPECT_LE(r.stats.max_level_nodes, 2 * factorial(T))
        << "T=" << T << " iter=" << iter;
  }
}

TEST(Dp, Theorem6FrontierBoundHolds) {
  // K-segment routing: at most (K+1)^T distinct frontiers per level.
  std::mt19937_64 rng(67);
  for (int iter = 0; iter < 25; ++iter) {
    const int T = 2 + static_cast<int>(rng() % 3);
    const int K = 1 + static_cast<int>(rng() % 3);
    const auto ch = random_channel(T, 14, 4, rng);
    const auto cs = gen::geometric_workload(8, 14, 4.0, rng);
    DpOptions o;
    o.canonicalize_types = false;
    o.max_segments = K;
    const auto r = dp_route(ch, cs, o);
    EXPECT_LE(r.stats.max_level_nodes, ipow(static_cast<std::uint64_t>(K + 1), T))
        << "T=" << T << " K=" << K << " iter=" << iter;
  }
}

TEST(Dp, IdenticalTracksCollapseToLinearStates) {
  // With full canonicalization and identical tracks, the frontier is a
  // sorted multiset: levels stay tiny even for many tracks.
  const auto ch = SegmentedChannel::identical(8, 24, {6, 12, 18});
  std::mt19937_64 rng(68);
  const auto cs = gen::geometric_workload(16, 24, 4.0, rng);
  const auto r = dp_route_unlimited(ch, cs);
  // Theorem 7 with one type: O(T^K)-ish; assert a generous concrete cap.
  EXPECT_LE(r.stats.max_level_nodes, 512u);
}

TEST(Dp, InfeasibleInstanceReportsEmptyLevel) {
  const auto ch = SegmentedChannel::identical(1, 9, {4});
  ConnectionSet cs;
  cs.add(1, 2);
  cs.add(3, 4);  // same segment
  const auto r = dp_route_unlimited(ch, cs);
  EXPECT_FALSE(r.success);
  EXPECT_NE(r.note.find("empty"), std::string::npos);
  EXPECT_EQ(r.stats.nodes_per_level.back(), 0u);
}

TEST(Dp, EmptyConnectionSetSucceeds) {
  const auto ch = SegmentedChannel::identical(2, 5, {});
  const auto r = dp_route_unlimited(ch, ConnectionSet{});
  EXPECT_TRUE(r.success);
}

TEST(Dp, ConnectionsBeyondWidthFailGracefully) {
  const auto ch = SegmentedChannel::identical(2, 5, {});
  ConnectionSet cs;
  cs.add(1, 9);
  EXPECT_FALSE(dp_route_unlimited(ch, cs).success);
}

TEST(Dp, NodeLimitAbortsCleanly) {
  std::mt19937_64 rng(69);
  const auto ch = random_channel(5, 30, 6, rng);
  const auto cs = gen::geometric_workload(20, 30, 6.0, rng);
  DpOptions o;
  o.canonicalize_types = false;
  o.max_total_nodes = 4;  // absurdly small
  const auto r = dp_route(ch, cs, o);
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.failure, FailureKind::kBudgetExhausted);
  EXPECT_NE(r.note.find("node limit"), std::string::npos);
}

TEST(Dp, WeightsRespectKSegmentCap) {
  // segments_capped(K) as a weight forbids >K-segment assignments, so the
  // result must equal plain K-segment routing (Problem 3 subsumes
  // Problem 2).
  std::mt19937_64 rng(70);
  for (int iter = 0; iter < 40; ++iter) {
    const auto ch = random_channel(3, 14, 4, rng);
    const auto cs = gen::geometric_workload(
        2 + static_cast<int>(rng() % 5), 14, 4.0, rng);
    const auto via_weight =
        dp_route_optimal(ch, cs, weights::segments_capped(2));
    const auto via_k = dp_route_ksegment(ch, cs, 2);
    EXPECT_EQ(via_weight.success, via_k.success) << "iter " << iter;
    if (via_weight.success) {
      EXPECT_TRUE(validate(ch, cs, via_weight.routing, 2)) << "iter " << iter;
    }
  }
}

TEST(Dp, StatsLevelsCountConnectionsPlusRoot) {
  const auto ch = gen::fixtures::fig3_channel();
  const auto cs = gen::fixtures::fig3_connections();
  const auto r = dp_route_unlimited(ch, cs);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.stats.nodes_per_level.size(),
            static_cast<std::size_t>(cs.size()) + 1);
  EXPECT_EQ(r.stats.nodes_per_level.front(), 1u);
  // All frontiers collapse at the final level.
  EXPECT_EQ(r.stats.nodes_per_level.back(), 1u);
}

}  // namespace
}  // namespace segroute::alg
