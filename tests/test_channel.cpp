#include "core/channel.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace segroute {
namespace {

TEST(Channel, IdenticalBuilderReplicatesTracks) {
  const auto ch = SegmentedChannel::identical(4, 9, {3, 6});
  EXPECT_EQ(ch.num_tracks(), 4);
  EXPECT_EQ(ch.width(), 9);
  EXPECT_TRUE(ch.identically_segmented());
  EXPECT_EQ(ch.num_types(), 1);
  for (TrackId t = 0; t < 4; ++t) {
    EXPECT_EQ(ch.track(t).num_segments(), 3);
  }
}

TEST(Channel, RejectsEmptyAndMismatchedWidths) {
  EXPECT_THROW(SegmentedChannel({}), std::invalid_argument);
  EXPECT_THROW(SegmentedChannel({Track(9, {}), Track(8, {})}),
               std::invalid_argument);
  EXPECT_THROW(SegmentedChannel::identical(0, 9, {}), std::invalid_argument);
}

TEST(Channel, UnsegmentedAndFullySegmentedBuilders) {
  const auto u = SegmentedChannel::unsegmented(3, 7);
  EXPECT_EQ(u.max_segments_per_track(), 1);
  EXPECT_EQ(u.total_segments(), 3);

  const auto f = SegmentedChannel::fully_segmented(2, 7);
  EXPECT_EQ(f.max_segments_per_track(), 7);
  EXPECT_EQ(f.total_segments(), 14);
}

TEST(Channel, TypeClassificationGroupsIdenticalSegmentation) {
  const auto ch = SegmentedChannel({
      Track(9, {3}),
      Track(9, {4}),
      Track(9, {3}),
      Track(9, {}),
  });
  EXPECT_EQ(ch.num_types(), 3);
  EXPECT_FALSE(ch.identically_segmented());
  // Types are dense ids in order of first appearance.
  EXPECT_EQ(ch.type_of()[0], 0);
  EXPECT_EQ(ch.type_of()[1], 1);
  EXPECT_EQ(ch.type_of()[2], 0);
  EXPECT_EQ(ch.type_of()[3], 2);
}

TEST(Channel, MaxSegmentsPerTrack) {
  const auto ch = SegmentedChannel({Track(9, {3}), Track(9, {2, 4, 6})});
  EXPECT_EQ(ch.max_segments_per_track(), 4);
}

TEST(Channel, SingleTrackChannel) {
  const auto ch = SegmentedChannel({Track(5, {2})});
  EXPECT_EQ(ch.num_tracks(), 1);
  EXPECT_TRUE(ch.identically_segmented());
}

}  // namespace
}  // namespace segroute
