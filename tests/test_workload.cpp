#include "gen/workload.h"

#include <gtest/gtest.h>

#include <random>

namespace segroute::gen {
namespace {

TEST(Workload, UniformStaysInBounds) {
  std::mt19937_64 rng(111);
  const auto cs = uniform_workload(50, 20, rng);
  EXPECT_EQ(cs.size(), 50);
  for (const Connection& c : cs.all()) {
    EXPECT_GE(c.left, 1);
    EXPECT_LE(c.right, 20);
    EXPECT_LE(c.left, c.right);
  }
}

TEST(Workload, GeometricLengthsHaveRoughlyTheRequestedMean) {
  std::mt19937_64 rng(112);
  const double target = 6.0;
  const auto cs = geometric_workload(4000, 1000, target, rng);
  double mean = 0;
  for (const Connection& c : cs.all()) mean += c.length();
  mean /= cs.size();
  // Clipping at the channel edge biases slightly low.
  EXPECT_NEAR(mean, target, 1.0);
}

TEST(Workload, PoissonDensityTracksLambdaTimesLength) {
  std::mt19937_64 rng(113);
  const auto cs = poisson_workload(2000, 0.5, 6.0, rng);
  // Expected density ~ lambda * mean_length = 3; allow wide slack but
  // demand the right order of magnitude.
  EXPECT_GT(cs.density(), 1);
  EXPECT_LT(cs.density(), 20);
}

TEST(Workload, SameSeedSameWorkload) {
  std::mt19937_64 a(7), b(7);
  const auto csa = geometric_workload(20, 50, 4.0, a);
  const auto csb = geometric_workload(20, 50, 4.0, b);
  ASSERT_EQ(csa.size(), csb.size());
  for (ConnId i = 0; i < csa.size(); ++i) {
    EXPECT_EQ(csa[i], csb[i]);
  }
}

TEST(Workload, RejectsBadParameters) {
  std::mt19937_64 rng(114);
  EXPECT_THROW(uniform_workload(-1, 10, rng), std::invalid_argument);
  EXPECT_THROW(uniform_workload(5, 0, rng), std::invalid_argument);
  EXPECT_THROW(geometric_workload(5, 10, 0.5, rng), std::invalid_argument);
  EXPECT_THROW(poisson_workload(10, -1.0, 2.0, rng), std::invalid_argument);
}

TEST(Workload, ZeroConnectionsIsEmpty) {
  std::mt19937_64 rng(115);
  EXPECT_TRUE(uniform_workload(0, 10, rng).empty());
}

}  // namespace
}  // namespace segroute::gen
