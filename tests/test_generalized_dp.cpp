#include "alg/generalized_dp.h"

#include <gtest/gtest.h>

#include <random>
#include <set>

#include "alg/dp.h"
#include "gen/fixtures.h"
#include "gen/workload.h"

namespace segroute::alg {
namespace {

SegmentedChannel random_channel(TrackId T, Column width, int max_cuts,
                                std::mt19937_64& rng) {
  std::vector<Track> tracks;
  for (TrackId t = 0; t < T; ++t) {
    std::set<Column> cuts;
    const int k = static_cast<int>(rng() % static_cast<unsigned>(max_cuts + 1));
    for (int i = 0; i < k; ++i) {
      cuts.insert(1 + static_cast<Column>(rng() % (width - 1)));
    }
    tracks.emplace_back(width, std::vector<Column>(cuts.begin(), cuts.end()));
  }
  return SegmentedChannel(std::move(tracks));
}

TEST(GeneralizedDp, Fig4NeedsGeneralizedRouting) {
  const auto ch = gen::fixtures::fig4_channel();
  const auto cs = gen::fixtures::fig4_connections();
  EXPECT_FALSE(dp_route_unlimited(ch, cs).success);
  const auto g = generalized_dp_route(ch, cs);
  ASSERT_TRUE(g.success) << g.note;
  EXPECT_TRUE(validate(ch, cs, g.routing));
  // Some connection must actually change tracks, else the routing would
  // contradict the standard router's failure.
  int total_changes = 0;
  for (ConnId i = 0; i < cs.size(); ++i) {
    total_changes += g.routing.track_changes(i);
  }
  EXPECT_GT(total_changes, 0);
}

TEST(GeneralizedDp, SubsumesStandardRouting) {
  // Whenever a single-track routing exists, a generalized one does too.
  std::mt19937_64 rng(71);
  int std_yes = 0;
  for (int iter = 0; iter < 60; ++iter) {
    const auto ch = random_channel(3, 12, 3, rng);
    const auto cs = gen::geometric_workload(
        2 + static_cast<int>(rng() % 4), 12, 3.5, rng);
    const bool std_ok = dp_route_unlimited(ch, cs).success;
    const auto g = generalized_dp_route(ch, cs);
    if (std_ok) {
      ++std_yes;
      EXPECT_TRUE(g.success) << "iter " << iter;
    }
    if (g.success) {
      EXPECT_TRUE(validate(ch, cs, g.routing)) << "iter " << iter;
    }
  }
  EXPECT_GT(std_yes, 0);
}

TEST(GeneralizedDp, NoSwitchColumnsReducesToStandardFeasibility) {
  // With an empty allowed-switch-column set every connection must stay on
  // one track, so feasibility coincides with Definition-1 routing.
  std::mt19937_64 rng(72);
  GeneralizedDpOptions opts;
  opts.allowed_switch_columns = std::vector<Column>{};
  int agree_yes = 0, agree_no = 0;
  for (int iter = 0; iter < 60; ++iter) {
    const auto ch = random_channel(3, 10, 3, rng);
    const auto cs = gen::geometric_workload(
        2 + static_cast<int>(rng() % 4), 10, 3.0, rng);
    const bool std_ok = dp_route_unlimited(ch, cs).success;
    const auto g = generalized_dp_route(ch, cs, opts);
    ASSERT_EQ(std_ok, g.success) << "iter " << iter;
    (std_ok ? agree_yes : agree_no)++;
    if (g.success) {
      for (ConnId i = 0; i < cs.size(); ++i) {
        EXPECT_EQ(g.routing.track_changes(i), 0) << "iter " << iter;
      }
    }
  }
  EXPECT_GT(agree_yes, 0);
  EXPECT_GT(agree_no, 0);
}

TEST(GeneralizedDp, AllowedSwitchColumnsAreRespected) {
  const auto ch = gen::fixtures::fig4_channel();
  const auto cs = gen::fixtures::fig4_connections();
  // Allow switching everywhere: must succeed (same as unconstrained).
  GeneralizedDpOptions all;
  std::vector<Column> every;
  for (Column c = 1; c <= ch.width(); ++c) every.push_back(c);
  all.allowed_switch_columns = every;
  const auto g = generalized_dp_route(ch, cs, all);
  ASSERT_TRUE(g.success);
  // Restrict to a single column: every observed change must use it.
  for (Column allowed = 2; allowed <= ch.width(); ++allowed) {
    GeneralizedDpOptions one;
    one.allowed_switch_columns = std::vector<Column>{allowed};
    const auto r = generalized_dp_route(ch, cs, one);
    if (!r.success) continue;
    for (ConnId i = 0; i < cs.size(); ++i) {
      const auto& parts = r.routing.parts(i);
      for (std::size_t p = 1; p < parts.size(); ++p) {
        if (parts[p].track != parts[p - 1].track) {
          EXPECT_EQ(parts[p].left, allowed);
        }
      }
    }
  }
}

TEST(GeneralizedDp, SwitchOverlapVariantProducesJumperFriendlyRoutings) {
  // Variant 2: at a track change at column l, the old track's segment
  // must extend through l.
  std::mt19937_64 rng(73);
  GeneralizedDpOptions opts;
  opts.switch_requires_overlap = true;
  for (int iter = 0; iter < 40; ++iter) {
    const auto ch = random_channel(3, 10, 3, rng);
    const auto cs = gen::geometric_workload(
        2 + static_cast<int>(rng() % 4), 10, 3.0, rng);
    const auto r = generalized_dp_route(ch, cs, opts);
    if (!r.success) continue;
    EXPECT_TRUE(validate(ch, cs, r.routing)) << "iter " << iter;
    for (ConnId i = 0; i < cs.size(); ++i) {
      const auto& parts = r.routing.parts(i);
      for (std::size_t p = 1; p < parts.size(); ++p) {
        if (parts[p].track == parts[p - 1].track) continue;
        const Track& old_track = ch.track(parts[p - 1].track);
        const Column l = parts[p].left;
        EXPECT_GE(old_track.segment(old_track.segment_at(l - 1)).right, l)
            << "iter " << iter;
      }
    }
  }
}

TEST(GeneralizedDp, OverlapVariantIsBetweenStandardAndUnconstrained) {
  std::mt19937_64 rng(74);
  GeneralizedDpOptions overlap;
  overlap.switch_requires_overlap = true;
  for (int iter = 0; iter < 50; ++iter) {
    const auto ch = random_channel(3, 10, 3, rng);
    const auto cs = gen::geometric_workload(
        2 + static_cast<int>(rng() % 4), 10, 3.0, rng);
    const bool std_ok = dp_route_unlimited(ch, cs).success;
    const bool ov_ok = generalized_dp_route(ch, cs, overlap).success;
    const bool gen_ok = generalized_dp_route(ch, cs).success;
    if (std_ok) {
      EXPECT_TRUE(ov_ok) << "iter " << iter;
    }
    if (ov_ok) {
      EXPECT_TRUE(gen_ok) << "iter " << iter;
    }
  }
}

TEST(GeneralizedDp, EmptyAndDegenerateInputs) {
  const auto ch = SegmentedChannel::identical(2, 5, {2});
  EXPECT_TRUE(generalized_dp_route(ch, ConnectionSet{}).success);
  ConnectionSet one;
  one.add(1, 1);
  const auto r = generalized_dp_route(ch, one);
  ASSERT_TRUE(r.success);
  EXPECT_TRUE(validate(ch, one, r.routing));
  ConnectionSet big;
  big.add(1, 9);
  EXPECT_FALSE(generalized_dp_route(ch, big).success);
}

TEST(GeneralizedDp, InfeasibleWhenDensityExceedsTracks) {
  const auto ch = SegmentedChannel::identical(2, 6, {3});
  ConnectionSet cs;
  cs.add(2, 4);
  cs.add(2, 4);
  cs.add(2, 4);
  const auto r = generalized_dp_route(ch, cs);
  EXPECT_FALSE(r.success);
  EXPECT_FALSE(r.note.empty());
}

TEST(GeneralizedDp, PartsAreNormalizedMaximalRuns) {
  const auto ch = gen::fixtures::fig4_channel();
  const auto cs = gen::fixtures::fig4_connections();
  const auto g = generalized_dp_route(ch, cs);
  ASSERT_TRUE(g.success);
  for (ConnId i = 0; i < cs.size(); ++i) {
    const auto& parts = g.routing.parts(i);
    for (std::size_t p = 1; p < parts.size(); ++p) {
      EXPECT_NE(parts[p].track, parts[p - 1].track)
          << "adjacent parts on the same track were not merged";
    }
  }
}

}  // namespace
}  // namespace segroute::alg
