#include "engine/batch.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>
#include <vector>

#include "alg/dp.h"
#include "core/channel_index.h"
#include "core/routing.h"
#include "engine/scratch.h"
#include "gen/fixtures.h"
#include "gen/segmentation.h"
#include "gen/workload.h"
#include "harness/fault.h"

namespace segroute::engine {
namespace {

SegmentedChannel random_channel(TrackId T, Column width, int max_cuts,
                                std::mt19937_64& rng) {
  std::vector<Track> tracks;
  for (TrackId t = 0; t < T; ++t) {
    std::set<Column> cuts;
    const int k = static_cast<int>(rng() % static_cast<unsigned>(max_cuts + 1));
    for (int i = 0; i < k; ++i) {
      cuts.insert(1 + static_cast<Column>(rng() % (width - 1)));
    }
    tracks.emplace_back(width, std::vector<Column>(cuts.begin(), cuts.end()));
  }
  return SegmentedChannel(std::move(tracks));
}

bool same_result(const alg::RouteResult& a, const alg::RouteResult& b) {
  return a.success == b.success && a.weight == b.weight &&
         a.routing == b.routing && a.failure == b.failure;
}

// --- ChannelIndex ---------------------------------------------------------

TEST(ChannelIndex, SegmentAtMatchesTrackOnRandomChannels) {
  std::mt19937_64 rng(701);
  for (int iter = 0; iter < 30; ++iter) {
    const auto ch = random_channel(4, 24, 5, rng);
    const ChannelIndex idx(ch);
    for (TrackId t = 0; t < ch.num_tracks(); ++t) {
      const Track& tr = ch.track(t);
      for (Column c = 1; c <= ch.width(); ++c) {
        const SegId s = idx.segment_at(t, c);
        ASSERT_EQ(s, tr.segment_at(c)) << "t=" << t << " c=" << c;
        EXPECT_EQ(idx.seg_left(t, s), tr.segment(s).left);
        EXPECT_EQ(idx.seg_right(t, s), tr.segment(s).right);
      }
      EXPECT_EQ(idx.num_segments(t), tr.num_segments());
    }
  }
}

TEST(ChannelIndex, FlatTablesCoveringAndTypesAreConsistent) {
  const auto ch = gen::progressive_segmentation(6, 24, 4, 2);
  const ChannelIndex idx(ch);
  int total = 0;
  for (TrackId t = 0; t < ch.num_tracks(); ++t) total += idx.num_segments(t);
  EXPECT_EQ(idx.total_segments(), total);
  for (TrackId t = 0; t < ch.num_tracks(); ++t) {
    for (SegId s = 0; s < idx.num_segments(t); ++s) {
      EXPECT_EQ(idx.track_of_flat(idx.seg_base(t) + s), t);
    }
  }
  for (Column c = 1; c <= ch.width(); ++c) {
    const int* cov = idx.covering_at(c);
    for (TrackId t = 0; t < ch.num_tracks(); ++t) {
      EXPECT_EQ(cov[t], idx.seg_base(t) + idx.segment_at(t, c));
    }
  }
  // Type classes partition the tracks and members share the representative's
  // segmentation.
  std::vector<char> seen(static_cast<std::size_t>(ch.num_tracks()), 0);
  for (int ty = 0; ty < idx.num_types(); ++ty) {
    const TrackId rep = idx.representative(ty);
    for (TrackId t : idx.tracks_of_type(ty)) {
      seen[static_cast<std::size_t>(t)] = 1;
      EXPECT_EQ(idx.type_of()[static_cast<std::size_t>(t)], ty);
      EXPECT_EQ(idx.num_segments(t), idx.num_segments(rep));
    }
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](char c) { return c; }));
}

TEST(ChannelIndex, FingerprintDistinguishesStructuralEdits) {
  const auto ch = gen::staggered_segmentation(6, 32, 8);
  const ChannelIndex idx(ch);
  EXPECT_EQ(idx.fingerprint(), ChannelIndex(ch).fingerprint());  // stable

  // Any structural perturbation moves the fingerprint.
  EXPECT_NE(idx.fingerprint(),
            ChannelIndex(gen::staggered_segmentation(7, 32, 8)).fingerprint());
  EXPECT_NE(idx.fingerprint(),
            ChannelIndex(gen::staggered_segmentation(6, 33, 8)).fingerprint());
  EXPECT_NE(idx.fingerprint(),
            ChannelIndex(gen::staggered_segmentation(6, 32, 7)).fingerprint());
}

TEST(ChannelIndex, FaultMaterializedChannelGetsDistinctFingerprint) {
  const auto ch = gen::staggered_segmentation(6, 32, 8);
  const ChannelIndex idx(ch);
  // A stuck-closed switch fuses two segments: structurally different
  // channel, so caches keyed by fingerprint can never serve pristine
  // answers for the degraded fabric.
  const std::vector<harness::Fault> faults = {
      {harness::Fault::Kind::kSwitchStuckClosed, 0, 8}};
  const auto degraded = harness::apply(ch, faults);
  ASSERT_TRUE(degraded.has_value());
  ASSERT_EQ(degraded->switches_fused, 1);
  EXPECT_NE(idx.fingerprint(), ChannelIndex(degraded->channel).fingerprint());

  // A dead segment withdraws the track entirely — also a new fingerprint.
  const std::vector<harness::Fault> dead = {
      {harness::Fault::Kind::kSegmentDead, 1, 4}};
  const auto withdrawn = harness::apply(ch, dead);
  ASSERT_TRUE(withdrawn.has_value());
  ASSERT_EQ(withdrawn->tracks_lost, 1);
  EXPECT_NE(idx.fingerprint(), ChannelIndex(withdrawn->channel).fingerprint());
}

// --- Occupancy reuse ------------------------------------------------------

TEST(Occupancy, ResetAndRebindReuseTheWorkspace) {
  const auto ch = gen::staggered_segmentation(4, 16, 4);
  Occupancy occ(ch);
  ASSERT_TRUE(occ.fits(0, 1, 4));
  ASSERT_TRUE(occ.place(0, 1, 4, 0));
  EXPECT_FALSE(occ.fits(0, 1, 4));
  occ.reset();
  EXPECT_TRUE(occ.fits(0, 1, 4));

  // Same shape: rebind clears in place; different shape: rebuilds.
  ASSERT_TRUE(occ.place(0, 1, 4, 0));
  occ.rebind(ch);
  EXPECT_TRUE(occ.fits(0, 1, 4));
  const auto other = gen::staggered_segmentation(6, 24, 6);
  occ.rebind(other);
  for (TrackId t = 0; t < other.num_tracks(); ++t) {
    EXPECT_TRUE(occ.fits(t, 1, other.width()));
  }
}

TEST(Scratch, SteadyStateHoldsNoNewMemoryAndCountsRebinds) {
  const auto a = gen::staggered_segmentation(6, 32, 8);
  const auto b = gen::staggered_segmentation(5, 20, 5);
  const ChannelIndex ia(a), ib(b);
  std::mt19937_64 rng(83);
  std::vector<ConnectionSet> sets;
  for (int i = 0; i < 4; ++i) {
    sets.push_back(gen::routable_workload(a, 12, 5.0, rng));
  }

  Scratch scratch;
  EXPECT_EQ(scratch.bytes_held(), 0u);
  EXPECT_EQ(scratch.rebind_count(), 0u);
  EXPECT_EQ(scratch.fingerprint(), 0u);

  const auto route_all = [&] {
    alg::DpOptions o;
    o.weight = weights::occupied_length();
    o.index = &ia;
    o.workspace = &scratch.dp();
    for (const auto& cs : sets) {
      const auto r = alg::dp_route(a, cs, o);
      ASSERT_TRUE(r.success);
    }
    (void)scratch.occupancy_for(ia);
  };

  // Warm-up pass grows the arenas; every later pass must reuse them —
  // the retained capacity (and thus heap traffic) is exactly flat.
  route_all();
  const std::size_t warm = scratch.bytes_held();
  EXPECT_GT(warm, 0u);
  EXPECT_EQ(scratch.rebind_count(), 1u);  // the first bind
  EXPECT_EQ(scratch.fingerprint(), ia.fingerprint());
  for (int pass = 0; pass < 3; ++pass) {
    route_all();
    EXPECT_EQ(scratch.bytes_held(), warm) << "pass=" << pass;
    EXPECT_EQ(scratch.rebind_count(), 1u);
  }

  // A different channel rebinds (counted) — and returning to the first
  // rebinds again rather than serving the wrong shape.
  (void)scratch.occupancy_for(ib);
  EXPECT_EQ(scratch.rebind_count(), 2u);
  EXPECT_EQ(scratch.fingerprint(), ib.fingerprint());
  (void)scratch.occupancy_for(ia);
  EXPECT_EQ(scratch.rebind_count(), 3u);
  EXPECT_EQ(scratch.fingerprint(), ia.fingerprint());
}

TEST(Scratch, OccupancyKeyedByFingerprintIsRebound) {
  const auto a = gen::staggered_segmentation(4, 16, 4);
  const auto b = gen::staggered_segmentation(5, 20, 5);
  const ChannelIndex ia(a), ib(b);
  Scratch scratch;
  Occupancy& oa = scratch.occupancy_for(ia);
  ASSERT_TRUE(oa.place(0, 1, 4, 0));
  // Every lookup hands back a cleared workspace (same fingerprint reuses
  // the rows in place, a new one rebinds them — either way no stale marks
  // can leak between route calls).
  Occupancy& oa2 = scratch.occupancy_for(ia);
  EXPECT_EQ(&oa, &oa2);
  EXPECT_TRUE(oa2.fits(0, 1, 4));
  Occupancy& ob = scratch.occupancy_for(ib);
  EXPECT_TRUE(ob.fits(0, 1, 4));
  EXPECT_TRUE(ob.fits(4, 1, b.width()));
}

// --- BatchRouter cache ----------------------------------------------------

TEST(BatchRouter, CacheHitReturnsBitIdenticalResult) {
  const auto ch = gen::staggered_segmentation(6, 32, 8);
  std::mt19937_64 rng(77);
  const auto cs = gen::routable_workload(ch, 12, 5.0, rng);

  BatchRouter router(ch);
  EngineRouteOptions eo;
  eo.weight = WeightKind::kOccupiedLength;
  const auto first = router.route(cs, eo);
  const auto second = router.route(cs, eo);
  ASSERT_TRUE(first.success);
  EXPECT_TRUE(same_result(first, second));

  const CacheStats s = router.cache_stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.size, 1u);

  // And both match the direct, index-free path bit for bit.
  alg::DpOptions direct;
  direct.weight = weights::occupied_length();
  EXPECT_TRUE(same_result(first, alg::dp_route(ch, cs, direct)));
}

TEST(BatchRouter, PerturbedOptionsAndInstancesMiss) {
  const auto ch = gen::staggered_segmentation(6, 32, 8);
  std::mt19937_64 rng(78);
  const auto cs = gen::routable_workload(ch, 10, 5.0, rng);

  BatchRouter router(ch);
  EngineRouteOptions eo;
  (void)router.route(cs, eo);  // miss 1

  EngineRouteOptions k2 = eo;
  k2.max_segments = 2;
  (void)router.route(cs, k2);  // miss 2: max_segments differs

  EngineRouteOptions weighted = eo;
  weighted.weight = WeightKind::kSegmentCount;
  (void)router.route(cs, weighted);  // miss 3: objective differs

  std::vector<Connection> perturbed = cs.all();
  perturbed[0] = Connection{perturbed[0].left,
                            std::min<Column>(perturbed[0].right + 1, 32), ""};
  (void)router.route(ConnectionSet(perturbed), eo);  // miss 4: endpoint moved

  // A permuted instance must not be served the original's routing either:
  // routings map connection ids, so the exact sequence is the key.
  std::vector<Connection> reversed(cs.all().rbegin(), cs.all().rend());
  (void)router.route(ConnectionSet(reversed), eo);  // miss 5

  const CacheStats s = router.cache_stats();
  EXPECT_EQ(s.misses, 5u);
  EXPECT_EQ(s.hits, 0u);

  // The same channel structure in a different BatchRouter hits nothing
  // stale: fingerprints agree, but each router owns its cache; a
  // *different* channel yields a different fingerprint altogether.
  const auto other = gen::staggered_segmentation(6, 32, 4);
  EXPECT_NE(router.index().fingerprint(), ChannelIndex(other).fingerprint());
}

TEST(BatchRouter, LruEvictionRespectsCapacityBound) {
  const auto ch = gen::staggered_segmentation(6, 32, 8);
  BatchOptions bo;
  bo.cache_capacity = 4;
  // One shard = one global LRU: this test asserts the exact global
  // recency order, which only a single shard guarantees (with more
  // shards the capacity bound still holds but eviction is per shard).
  bo.cache_shards = 1;
  BatchRouter router(ch, bo);

  std::mt19937_64 rng(79);
  std::vector<ConnectionSet> sets;
  for (int i = 0; i < 7; ++i) {
    sets.push_back(gen::routable_workload(ch, 8, 5.0, rng));
  }
  for (const auto& cs : sets) (void)router.route(cs);

  CacheStats s = router.cache_stats();
  EXPECT_EQ(s.misses, 7u);
  EXPECT_EQ(s.size, 4u);
  EXPECT_EQ(s.evictions, 3u);

  // The most recent four are resident; the eldest was evicted and
  // re-routing it misses again.
  (void)router.route(sets.back());
  (void)router.route(sets.front());
  s = router.cache_stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 8u);
  EXPECT_EQ(s.size, 4u);

  router.clear_cache();
  EXPECT_EQ(router.cache_stats().size, 0u);
}

TEST(BatchRouter, BudgetLimitedCallsBypassTheCache) {
  const auto ch = gen::staggered_segmentation(6, 32, 8);
  std::mt19937_64 rng(80);
  const auto cs = gen::routable_workload(ch, 10, 5.0, rng);

  BatchRouter router(ch);
  EngineRouteOptions limited;
  limited.budget.max_ticks = 1'000'000'000;  // generous but not unlimited
  const auto r1 = router.route(cs, limited);
  const auto r2 = router.route(cs, limited);
  EXPECT_TRUE(same_result(r1, r2));
  const CacheStats s = router.cache_stats();
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(s.misses, 0u);
  EXPECT_EQ(s.size, 0u);
}

// --- route_many determinism ----------------------------------------------

TEST(BatchRouter, RouteManyIsBitIdenticalAcrossThreadCountsAndCacheModes) {
  const auto ch = gen::staggered_segmentation(8, 48, 8);
  std::mt19937_64 rng(81);
  std::vector<ConnectionSet> batch;
  for (int i = 0; i < 24; ++i) {
    // Cycle 6 distinct instances so the cache sees repeats mid-batch.
    if (i < 6) {
      batch.push_back(gen::routable_workload(ch, 14, 5.0, rng));
    } else {
      batch.push_back(batch[static_cast<std::size_t>(i % 6)]);
    }
  }
  EngineRouteOptions eo;
  eo.weight = WeightKind::kOccupiedLength;

  // Reference: the direct path, one instance at a time.
  std::vector<alg::RouteResult> reference;
  alg::DpOptions direct;
  direct.weight = weights::occupied_length();
  for (const auto& cs : batch) reference.push_back(alg::dp_route(ch, cs, direct));

  for (const bool use_cache : {false, true}) {
    for (const int threads : {1, 2, 8}) {
      BatchOptions bo;
      bo.threads = threads;
      bo.use_cache = use_cache;
      BatchRouter router(ch, bo);
      const auto results = router.route_many(batch, eo);
      ASSERT_EQ(results.size(), batch.size());
      for (std::size_t i = 0; i < results.size(); ++i) {
        EXPECT_TRUE(same_result(results[i], reference[i]))
            << "cache=" << use_cache << " threads=" << threads << " i=" << i;
      }
    }
  }
}

TEST(BatchRouter, RouteManyMatchesDirectOnInfeasibleAndMixedBatches) {
  const auto ch = gen::fixtures::fig3_channel();
  std::mt19937_64 rng(82);
  std::vector<ConnectionSet> batch;
  for (int i = 0; i < 12; ++i) {
    batch.push_back(gen::geometric_workload(
        2 + static_cast<int>(rng() % 8), ch.width(), 4.0, rng));
  }
  BatchRouter router(ch, {});
  const auto results = router.route_many(batch);
  int yes = 0, no = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const auto direct = alg::dp_route_unlimited(ch, batch[i]);
    EXPECT_TRUE(same_result(results[i], direct)) << "i=" << i;
    (results[i].success ? yes : no)++;
  }
  EXPECT_GT(yes, 0);
  EXPECT_GT(no, 0);
}

TEST(BatchRouter, RebindRoutesOnTheNewSubstrate) {
  const auto ch = gen::staggered_segmentation(6, 32, 8);
  std::mt19937_64 rng(90);
  const auto cs = gen::routable_workload(ch, 10, 5.0, rng);

  BatchRouter router(ch);
  const std::uint64_t base_fp = router.index().fingerprint();
  const auto base = router.route(cs);
  ASSERT_TRUE(base.success);

  // Degrade the channel and rebind: the engine must route on the
  // degraded substrate and match the direct path bit for bit.
  const auto degraded = harness::apply(
      ch, {{harness::Fault::Kind::kSegmentDead, 0, 1}});
  ASSERT_TRUE(degraded.has_value());
  router.rebind(degraded->channel);
  const std::uint64_t deg_fp = router.index().fingerprint();
  EXPECT_NE(deg_fp, base_fp);
  const auto on_degraded = router.route(cs);
  EXPECT_TRUE(
      same_result(on_degraded, alg::dp_route_unlimited(degraded->channel, cs)));

  // Rebinding back serves the base entry from the memo cache: the cache
  // key carries the substrate fingerprint, so the degraded result can
  // never shadow the base one.
  router.rebind(ch);
  const auto back = router.route(cs);
  EXPECT_TRUE(same_result(back, base));
  EXPECT_EQ(router.cache_stats().hits, 1u);
}

TEST(BatchRouter, InvalidateEvictsOnlyTheMatchingFingerprint) {
  const auto ch = gen::staggered_segmentation(6, 32, 8);
  std::mt19937_64 rng(91);
  const auto cs = gen::routable_workload(ch, 10, 5.0, rng);

  BatchRouter router(ch);
  const std::uint64_t base_fp = router.index().fingerprint();
  (void)router.route(cs);  // base entry

  const auto degraded = harness::apply(
      ch, {{harness::Fault::Kind::kSegmentDead, 0, 1}});
  ASSERT_TRUE(degraded.has_value());
  router.rebind(degraded->channel);
  const std::uint64_t deg_fp = router.index().fingerprint();
  (void)router.route(cs);  // degraded entry
  EXPECT_EQ(router.cache_stats().size, 2u);

  // Evict the degraded substrate's entries; the base entry stays hot.
  router.invalidate(deg_fp);
  EXPECT_EQ(router.cache_stats().size, 1u);
  EXPECT_EQ(router.cache_stats().invalidations, 1u);

  router.rebind(ch);
  (void)router.route(cs);
  EXPECT_EQ(router.cache_stats().hits, 1u);  // base entry survived

  // Invalidating the base fingerprint empties the cache; an unknown
  // fingerprint is a no-op.
  router.invalidate(base_fp);
  EXPECT_EQ(router.cache_stats().size, 0u);
  router.invalidate(0xdeadbeef);
  EXPECT_EQ(router.cache_stats().invalidations, 2u);
}

TEST(BatchRouter, UnknownRouterIsInvalidInputNotACrash) {
  const auto ch = gen::staggered_segmentation(4, 16, 4);
  std::mt19937_64 rng(92);
  const auto cs = gen::routable_workload(ch, 4, 4.0, rng);
  BatchRouter router(ch);
  EngineRouteOptions eo;
  eo.router = "no-such-router";
  const auto r = router.route(cs, eo);
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.failure, alg::FailureKind::kInvalidInput);
  EXPECT_NE(r.note.find("no-such-router"), std::string::npos);
}

}  // namespace
}  // namespace segroute::engine
