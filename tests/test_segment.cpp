#include "core/segment.h"

#include <gtest/gtest.h>

namespace segroute {
namespace {

TEST(Segment, LengthCountsInclusiveColumns) {
  EXPECT_EQ((Segment{3, 7}.length()), 5);
  EXPECT_EQ((Segment{4, 4}.length()), 1);
}

TEST(Segment, ContainsItsEndpointsAndInterior) {
  const Segment s{3, 7};
  EXPECT_TRUE(s.contains(3));
  EXPECT_TRUE(s.contains(5));
  EXPECT_TRUE(s.contains(7));
  EXPECT_FALSE(s.contains(2));
  EXPECT_FALSE(s.contains(8));
}

TEST(Segment, OverlapsClosedIntervals) {
  const Segment s{3, 7};
  EXPECT_TRUE(s.overlaps(1, 3));   // touch at the left end
  EXPECT_TRUE(s.overlaps(7, 9));   // touch at the right end
  EXPECT_TRUE(s.overlaps(4, 5));   // contained
  EXPECT_TRUE(s.overlaps(1, 9));   // containing
  EXPECT_FALSE(s.overlaps(1, 2));
  EXPECT_FALSE(s.overlaps(8, 9));
}

TEST(Segment, EqualityComparesBothEnds) {
  EXPECT_EQ((Segment{1, 2}), (Segment{1, 2}));
  EXPECT_NE((Segment{1, 2}), (Segment{1, 3}));
  EXPECT_NE((Segment{1, 2}), (Segment{2, 2}));
}

TEST(Segment, ToStringUsesPaperNotation) {
  EXPECT_EQ(to_string(Segment{3, 9}), "(3, 9)");
}

}  // namespace
}  // namespace segroute
