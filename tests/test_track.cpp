#include "core/track.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace segroute {
namespace {

TEST(Track, BuildsSegmentsFromSwitchPositions) {
  const Track t(9, {3, 6});
  ASSERT_EQ(t.num_segments(), 3);
  EXPECT_EQ(t.segment(0), (Segment{1, 3}));
  EXPECT_EQ(t.segment(1), (Segment{4, 6}));
  EXPECT_EQ(t.segment(2), (Segment{7, 9}));
  EXPECT_EQ(t.width(), 9);
}

TEST(Track, AcceptsUnsortedSwitchLists) {
  const Track t(9, {6, 3});
  ASSERT_EQ(t.num_segments(), 3);
  EXPECT_EQ(t.segment(1), (Segment{4, 6}));
}

TEST(Track, UnsegmentedIsOneSegment) {
  const Track t = Track::unsegmented(12);
  ASSERT_EQ(t.num_segments(), 1);
  EXPECT_EQ(t.segment(0), (Segment{1, 12}));
}

TEST(Track, FullySegmentedHasUnitSegments) {
  const Track t = Track::fully_segmented(5);
  ASSERT_EQ(t.num_segments(), 5);
  for (SegId s = 0; s < 5; ++s) {
    EXPECT_EQ(t.segment(s).length(), 1);
  }
}

TEST(Track, FullySegmentedWidthOne) {
  const Track t = Track::fully_segmented(1);
  EXPECT_EQ(t.num_segments(), 1);
}

TEST(Track, RejectsBadWidth) {
  EXPECT_THROW(Track(0, {}), std::invalid_argument);
  EXPECT_THROW(Track(-3, {}), std::invalid_argument);
}

TEST(Track, RejectsOutOfRangeSwitches) {
  EXPECT_THROW(Track(9, {0}), std::invalid_argument);
  EXPECT_THROW(Track(9, {9}), std::invalid_argument);  // after last column
  EXPECT_THROW(Track(9, {10}), std::invalid_argument);
}

TEST(Track, RejectsDuplicateSwitches) {
  EXPECT_THROW(Track(9, {3, 3}), std::invalid_argument);
}

TEST(Track, FromSegmentsValidatesContiguity) {
  EXPECT_NO_THROW(Track::from_segments({{1, 4}, {5, 9}}));
  EXPECT_THROW(Track::from_segments({{1, 4}, {6, 9}}), std::invalid_argument);
  EXPECT_THROW(Track::from_segments({{1, 4}, {4, 9}}), std::invalid_argument);
  EXPECT_THROW(Track::from_segments({{2, 9}}), std::invalid_argument);
  EXPECT_THROW(Track::from_segments({}), std::invalid_argument);
  EXPECT_THROW(Track::from_segments({{1, 0}}), std::invalid_argument);
}

TEST(Track, SegmentAtMapsEveryColumn) {
  const Track t(9, {3, 6});
  EXPECT_EQ(t.segment_at(1), 0);
  EXPECT_EQ(t.segment_at(3), 0);
  EXPECT_EQ(t.segment_at(4), 1);
  EXPECT_EQ(t.segment_at(6), 1);
  EXPECT_EQ(t.segment_at(7), 2);
  EXPECT_EQ(t.segment_at(9), 2);
}

TEST(Track, SegmentAtRejectsOutsideColumns) {
  const Track t(9, {3});
  EXPECT_THROW((void)t.segment_at(0), std::out_of_range);
  EXPECT_THROW((void)t.segment_at(10), std::out_of_range);
}

TEST(Track, SpanFollowsPaperOccupancyRule) {
  // A connection occupies segment s iff right(s) >= left(c) and
  // left(s) <= right(c).
  const Track t(9, {3, 6});
  EXPECT_EQ(t.span(1, 3), (std::pair<SegId, SegId>{0, 0}));
  EXPECT_EQ(t.span(3, 4), (std::pair<SegId, SegId>{0, 1}));
  EXPECT_EQ(t.span(2, 9), (std::pair<SegId, SegId>{0, 2}));
  EXPECT_EQ(t.span(5, 5), (std::pair<SegId, SegId>{1, 1}));
}

TEST(Track, SpanRejectsInvertedRange) {
  const Track t(9, {3});
  EXPECT_THROW((void)t.span(5, 4), std::invalid_argument);
}

TEST(Track, SegmentsSpannedCounts) {
  const Track t(9, {3, 6});
  EXPECT_EQ(t.segments_spanned(1, 2), 1);
  EXPECT_EQ(t.segments_spanned(3, 4), 2);
  EXPECT_EQ(t.segments_spanned(1, 9), 3);
}

TEST(Track, OccupiedLengthSumsSegmentLengths) {
  const Track t(9, {3, 6});
  EXPECT_EQ(t.occupied_length(4, 5), 3);  // segment (4,6)
  EXPECT_EQ(t.occupied_length(3, 4), 6);  // (1,3) + (4,6)
  EXPECT_EQ(t.occupied_length(1, 9), 9);
}

TEST(Track, SwitchPositionsRoundTrip) {
  const std::vector<Column> sw = {2, 5, 7};
  const Track t(9, sw);
  EXPECT_EQ(t.switch_positions(), sw);
  EXPECT_TRUE(Track::unsegmented(9).switch_positions().empty());
}

TEST(Track, AlignToSegmentsExtendsToBoundaries) {
  const Track t(9, {3, 6});
  EXPECT_EQ(t.align_to_segments(4, 5), (std::pair<Column, Column>{4, 6}));
  EXPECT_EQ(t.align_to_segments(2, 7), (std::pair<Column, Column>{1, 9}));
  EXPECT_EQ(t.align_to_segments(1, 3), (std::pair<Column, Column>{1, 3}));
}

TEST(Track, EqualityIsSegmentwise) {
  EXPECT_EQ(Track(9, {3}), Track(9, {3}));
  EXPECT_FALSE(Track(9, {3}) == Track(9, {4}));
}

}  // namespace
}  // namespace segroute
