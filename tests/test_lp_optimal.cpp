#include <gtest/gtest.h>

#include <random>

#include "alg/dp.h"
#include "alg/lp_route.h"
#include "core/routing.h"
#include "gen/fixtures.h"
#include "gen/segmentation.h"
#include "gen/workload.h"

namespace segroute::alg {
namespace {

TEST(LpOptimal, MatchesTheDpOptimumOnFig3) {
  const auto ch = gen::fixtures::fig3_channel();
  const auto cs = gen::fixtures::fig3_connections();
  const auto w = weights::occupied_length();
  const auto lp = lp_route_optimal(ch, cs, w);
  const auto dp = dp_route_optimal(ch, cs, w);
  ASSERT_TRUE(lp.success) << lp.note;
  ASSERT_TRUE(dp.success);
  EXPECT_TRUE(validate(ch, cs, lp.routing));
  EXPECT_NEAR(lp.weight, dp.weight, 0.5);  // jitter-tolerant comparison
}

TEST(LpOptimal, IntegralRelaxationsHitTheExactOptimum) {
  std::mt19937_64 rng(201);
  const auto w = weights::occupied_length();
  int checked = 0;
  for (int iter = 0; iter < 40; ++iter) {
    const auto ch = gen::staggered_segmentation(4, 20, 5);
    const auto cs = gen::geometric_workload(
        3 + static_cast<int>(rng() % 5), 20, 4.0, rng);
    const auto dp = dp_route_optimal(ch, cs, w);
    if (!dp.success) continue;
    LpRouteOptions o;
    o.max_rounding_passes = 0;  // pure relaxation only
    const auto lp = lp_route_optimal(ch, cs, w, o);
    if (!lp.success || !lp.stats.lp_integral) continue;
    ++checked;
    EXPECT_TRUE(validate(ch, cs, lp.routing)) << "iter " << iter;
    // The jitter is < 1e-4 per variable, so a true LP optimum can exceed
    // the exact optimum by at most M * 1e-4 worth of tie-breaking.
    EXPECT_NEAR(lp.weight, dp.weight, 0.01) << "iter " << iter;
  }
  EXPECT_GT(checked, 5);
}

TEST(LpOptimal, RespectsTheSegmentCapWeight) {
  const auto ch = SegmentedChannel::identical(2, 9, {3, 6});
  ConnectionSet cs;
  cs.add(2, 8);  // 3 segments in every track
  const auto lp = lp_route_optimal(ch, cs, weights::segments_capped(2));
  EXPECT_FALSE(lp.success);
  EXPECT_NE(lp.note.find("no finite-weight"), std::string::npos);
}

TEST(LpOptimal, DetectsInfeasibleInstances) {
  const auto ch = SegmentedChannel::identical(1, 9, {4});
  ConnectionSet cs;
  cs.add(1, 2);
  cs.add(3, 4);
  const auto lp = lp_route_optimal(ch, cs, weights::occupied_length());
  EXPECT_FALSE(lp.success);
}

TEST(LpOptimal, EmptyInput) {
  const auto ch = SegmentedChannel::identical(1, 4, {});
  EXPECT_TRUE(
      lp_route_optimal(ch, ConnectionSet{}, weights::unit()).success);
}

TEST(LpOptimal, KSegmentOptionFiltersVariables) {
  const auto ch = SegmentedChannel({Track(9, {4}), Track(9, {})});
  ConnectionSet cs;
  cs.add(3, 6);  // 2 segments on track 0, 1 on track 1
  LpRouteOptions o;
  o.max_segments = 1;
  const auto lp = lp_route_optimal(ch, cs, weights::occupied_length(), o);
  ASSERT_TRUE(lp.success) << lp.note;
  EXPECT_EQ(lp.routing.track_of(0), 1);
}

}  // namespace
}  // namespace segroute::alg
