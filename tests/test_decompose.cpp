#include "alg/decompose.h"

#include <gtest/gtest.h>

#include <random>

#include "alg/dp.h"
#include "alg/lp_route.h"
#include "core/routing.h"
#include "gen/segmentation.h"
#include "gen/workload.h"

namespace segroute::alg {
namespace {

TEST(Decompose, SafeSplitsNeedBothConditions) {
  // Identical channel cut after 4 and 8: all-switch columns are 4 and 8.
  const auto ch = SegmentedChannel::identical(2, 12, {4, 8});
  ConnectionSet cs;
  cs.add(1, 3);
  cs.add(6, 10);  // crosses column 8
  const auto cuts = safe_split_columns(ch, cs);
  EXPECT_EQ(cuts, std::vector<Column>{4});  // 8 is crossed
  // A connection crossing column 4 removes the remaining cut.
  cs.add(3, 5);
  EXPECT_TRUE(safe_split_columns(ch, cs).empty());
}

TEST(Decompose, StaggeredChannelsHaveNoAllSwitchColumns) {
  const auto ch = gen::staggered_segmentation(3, 24, 6);
  ConnectionSet cs;
  cs.add(1, 2);
  // The offsets guarantee some track bridges every column gap.
  EXPECT_TRUE(safe_split_columns(ch, cs).empty());
}

TEST(Decompose, PartsPartitionTheConnections) {
  const auto ch = SegmentedChannel::identical(2, 12, {4, 8});
  ConnectionSet cs;
  cs.add(1, 3, "a");
  cs.add(2, 4, "b");
  cs.add(5, 8, "c");
  cs.add(9, 12, "d");
  const auto parts = split_parts(ch, cs);
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], (std::vector<ConnId>{0, 1}));
  EXPECT_EQ(parts[1], (std::vector<ConnId>{2}));
  EXPECT_EQ(parts[2], (std::vector<ConnId>{3}));
}

TEST(Decompose, AgreesWithDirectDpOnIdenticalChannels) {
  std::mt19937_64 rng(211);
  const auto dp = [](const SegmentedChannel& c, const ConnectionSet& s) {
    return dp_route_unlimited(c, s);
  };
  int yes = 0, no = 0;
  for (int iter = 0; iter < 60; ++iter) {
    const auto ch = SegmentedChannel::identical(3, 36, {6, 12, 18, 24, 30});
    const auto cs = gen::geometric_workload(
        4 + static_cast<int>(rng() % 8), 36, 4.0, rng);
    const auto direct = dp_route_unlimited(ch, cs);
    const auto split = decompose_route(ch, cs, dp);
    ASSERT_EQ(direct.success, split.success) << "iter " << iter;
    if (split.success) {
      EXPECT_TRUE(validate(ch, cs, split.routing)) << "iter " << iter;
      ++yes;
    } else {
      ++no;
    }
  }
  EXPECT_GT(yes, 0);
  EXPECT_GT(no, 0);
}

TEST(Decompose, WorksWithTheLpSubRouter) {
  std::mt19937_64 rng(212);
  const auto lp = [](const SegmentedChannel& c, const ConnectionSet& s) {
    return lp_route(c, s);
  };
  const auto ch = SegmentedChannel::identical(4, 48, {8, 16, 24, 32, 40});
  const auto cs = gen::routable_workload(ch, 16, 5.0, rng);
  const auto r = decompose_route(ch, cs, lp);
  ASSERT_TRUE(r.success) << r.note;
  EXPECT_TRUE(validate(ch, cs, r.routing));
}

TEST(Decompose, NoCutsMeansOnePart) {
  const auto ch = gen::staggered_segmentation(3, 20, 5);
  ConnectionSet cs;
  cs.add(2, 6);
  cs.add(10, 14);
  const auto parts = split_parts(ch, cs);
  EXPECT_EQ(parts.size(), 1u);
  const auto r = decompose_route(ch, cs, [](const auto& c, const auto& s) {
    return dp_route_unlimited(c, s);
  });
  EXPECT_TRUE(r.success);
}

TEST(Decompose, FailurePropagatesFromTheFailingPart) {
  const auto ch = SegmentedChannel::identical(1, 12, {4, 8});
  ConnectionSet cs;
  cs.add(1, 2, "ok");
  cs.add(5, 6, "x1");
  cs.add(7, 8, "x2");  // same middle segment as x1, single track
  const auto r = decompose_route(ch, cs, [](const auto& c, const auto& s) {
    return dp_route_unlimited(c, s);
  });
  EXPECT_FALSE(r.success);
  EXPECT_NE(r.note.find("part of 2"), std::string::npos);
}

TEST(Decompose, EmptyConnectionSet) {
  const auto ch = SegmentedChannel::identical(1, 8, {4});
  const auto r = decompose_route(ch, ConnectionSet{},
                                 [](const auto& c, const auto& s) {
                                   return dp_route_unlimited(c, s);
                                 });
  EXPECT_TRUE(r.success);
}

}  // namespace
}  // namespace segroute::alg
