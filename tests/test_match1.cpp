#include "alg/match1.h"

#include <gtest/gtest.h>

#include <random>

#include "alg/dp.h"
#include "alg/greedy1.h"
#include "core/routing.h"
#include "gen/fixtures.h"
#include "gen/segmentation.h"
#include "gen/workload.h"

namespace segroute::alg {
namespace {

TEST(Match1, RoutesFig3AndValidatesAsOneSegment) {
  const auto ch = gen::fixtures::fig3_channel();
  const auto cs = gen::fixtures::fig3_connections();
  const auto r = match1_route(ch, cs);
  ASSERT_TRUE(r.success) << r.note;
  EXPECT_TRUE(validate(ch, cs, r.routing, 1));
}

TEST(Match1, FeasibilityAgreesWithGreedyOnRandomInstances) {
  std::mt19937_64 rng(51);
  for (int iter = 0; iter < 100; ++iter) {
    const auto ch = gen::staggered_segmentation(4, 20, 5);
    const auto cs = gen::geometric_workload(
        3 + static_cast<int>(rng() % 8), 20, 4.0, rng);
    EXPECT_EQ(match1_route(ch, cs).success, greedy1_route(ch, cs).success)
        << "iter " << iter;
  }
}

TEST(Match1Optimal, MinimizesOccupiedLength) {
  // Connection (1,3) could sit in a length-6 segment (track 0) or a
  // length-4 segment (track 1): the optimum picks the shorter.
  const auto ch = SegmentedChannel({Track(9, {6}), Track(9, {4})});
  ConnectionSet cs;
  cs.add(1, 3);
  const auto r = match1_route_optimal(ch, cs, weights::occupied_length());
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.routing.track_of(0), 1);
  EXPECT_DOUBLE_EQ(r.weight, 4.0);
}

TEST(Match1Optimal, GlobalOptimumAvoidsStarvingLaterConnections) {
  // "first" has a cheap seat on track 0, but "second" can only live on
  // track 1's first segment; the matching must settle the unique global
  // optimum (and not starve "second" by a myopic choice).
  const auto ch = SegmentedChannel({Track(9, {4}), Track(9, {6})});
  ConnectionSet cs;
  cs.add(1, 3, "first");   // t0 (1,4) len 4, or t1 (1,6) len 6
  cs.add(2, 6, "second");  // only t1 (1,6)
  const auto r = match1_route_optimal(ch, cs, weights::occupied_length());
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.routing.track_of(0), 0);
  EXPECT_EQ(r.routing.track_of(1), 1);
  EXPECT_DOUBLE_EQ(r.weight, 10.0);
}

TEST(Match1Optimal, AgreesWithDpOptimalOnRandomInstances) {
  std::mt19937_64 rng(52);
  const auto w = weights::occupied_length();
  for (int iter = 0; iter < 40; ++iter) {
    const auto ch = gen::staggered_segmentation(4, 18, 5);
    const auto cs = gen::geometric_workload(
        2 + static_cast<int>(rng() % 6), 18, 3.5, rng);
    const auto m = match1_route_optimal(ch, cs, w);
    // DP restricted to K=1 solves the same problem.
    DpOptions o;
    o.max_segments = 1;
    o.weight = w;
    const auto d = dp_route(ch, cs, o);
    ASSERT_EQ(m.success, d.success) << "iter " << iter;
    if (m.success) {
      EXPECT_NEAR(m.weight, d.weight, 1e-9) << "iter " << iter;
      EXPECT_TRUE(validate(ch, cs, m.routing, 1));
    }
  }
}

TEST(Match1Optimal, InfeasibleWhenNoOneSegmentRoutingExists) {
  const auto ch = SegmentedChannel::fully_segmented(2, 5);
  ConnectionSet cs;
  cs.add(1, 2);
  const auto r = match1_route_optimal(ch, cs, weights::occupied_length());
  EXPECT_FALSE(r.success);
}

TEST(Match1Optimal, RespectsInfiniteWeightsAsForbidden) {
  const auto ch = SegmentedChannel({Track(9, {4}), Track(9, {})});
  ConnectionSet cs;
  cs.add(1, 3);
  // Forbid anything occupying more than 4 columns: only track 0 remains.
  const auto w = [](const SegmentedChannel& c, const Connection& cc,
                    TrackId t) {
    const double len =
        static_cast<double>(c.track(t).occupied_length(cc.left, cc.right));
    return len > 4 ? std::numeric_limits<double>::infinity() : len;
  };
  const auto r = match1_route_optimal(ch, cs, w);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.routing.track_of(0), 0);
}

TEST(Match1Optimal, EmptyInputSucceedsWithZeroWeight) {
  const auto ch = SegmentedChannel::identical(1, 5, {});
  const auto r = match1_route_optimal(ch, ConnectionSet{},
                                      weights::occupied_length());
  EXPECT_TRUE(r.success);
  EXPECT_DOUBLE_EQ(r.weight, 0.0);
}

TEST(Match1, MoreConnectionsThanSegmentsFails) {
  const auto ch = SegmentedChannel::identical(1, 9, {4});  // two segments
  ConnectionSet cs;
  cs.add(1, 2);
  cs.add(3, 4);
  cs.add(5, 6);
  EXPECT_FALSE(match1_route(ch, cs).success);
  EXPECT_FALSE(
      match1_route_optimal(ch, cs, weights::occupied_length()).success);
}

}  // namespace
}  // namespace segroute::alg
