#include "gen/segmentation.h"

#include <gtest/gtest.h>

#include <random>

#include "gen/workload.h"

namespace segroute::gen {
namespace {

TEST(Segmentation, UniformCutsEverySegmentLength) {
  const auto ch = uniform_segmentation(3, 12, 4);
  EXPECT_EQ(ch.num_tracks(), 3);
  EXPECT_TRUE(ch.identically_segmented());
  const auto& t = ch.track(0);
  ASSERT_EQ(t.num_segments(), 3);
  for (SegId s = 0; s < 3; ++s) EXPECT_EQ(t.segment(s).length(), 4);
}

TEST(Segmentation, UniformHandlesNonDividingLengths) {
  const auto ch = uniform_segmentation(1, 10, 4);
  const auto& t = ch.track(0);
  ASSERT_EQ(t.num_segments(), 3);
  EXPECT_EQ(t.segment(2).length(), 2);  // remainder
}

TEST(Segmentation, StaggeredTracksDifferButShareGrain) {
  const auto ch = staggered_segmentation(4, 24, 8);
  EXPECT_EQ(ch.num_tracks(), 4);
  EXPECT_GT(ch.num_types(), 1);  // offsets produce distinct types
  for (TrackId t = 0; t < 4; ++t) {
    for (const Segment& s : ch.track(t).segments()) {
      EXPECT_LE(s.length(), 8);
    }
  }
}

TEST(Segmentation, StaggeredSegmentLengthOneIsFullySegmented) {
  const auto ch = staggered_segmentation(2, 6, 1);
  EXPECT_EQ(ch.track(0).num_segments(), 6);
}

TEST(Segmentation, ProgressiveTypesCycle) {
  const auto ch = progressive_segmentation(6, 32, 4, 3);
  // Types: lengths 4, 8, 16 cycling across tracks.
  EXPECT_EQ(ch.num_types(), 3);
  EXPECT_EQ(ch.type_of()[0], ch.type_of()[3]);
  EXPECT_EQ(ch.type_of()[1], ch.type_of()[4]);
}

TEST(Segmentation, RejectsBadParameters) {
  EXPECT_THROW(uniform_segmentation(2, 10, 0), std::invalid_argument);
  EXPECT_THROW(staggered_segmentation(0, 10, 2), std::invalid_argument);
  EXPECT_THROW(progressive_segmentation(2, 10, 1, 0), std::invalid_argument);
  std::vector<ConnectionSet> none;
  EXPECT_THROW(design_segmentation(2, 10, none, 0.5), std::invalid_argument);
}

TEST(Segmentation, DesignerCoversSampleLengthRange) {
  std::mt19937_64 rng(121);
  std::vector<ConnectionSet> samples;
  for (int s = 0; s < 5; ++s) {
    samples.push_back(geometric_workload(30, 60, 6.0, rng));
  }
  const auto ch = design_segmentation(8, 60, samples);
  EXPECT_EQ(ch.num_tracks(), 8);
  EXPECT_EQ(ch.width(), 60);
  // Quantile design: the shortest track's grain must not exceed the
  // longest track's grain.
  Column min_seg = 61, max_seg = 0;
  for (TrackId t = 0; t < 8; ++t) {
    for (const Segment& s : ch.track(t).segments()) {
      min_seg = std::min(min_seg, s.length());
      max_seg = std::max(max_seg, s.length());
    }
  }
  EXPECT_LT(min_seg, max_seg);
}

TEST(Segmentation, DesignerWithNoSamplesFallsBack) {
  const auto ch = design_segmentation(3, 40, {});
  EXPECT_EQ(ch.num_tracks(), 3);
  EXPECT_EQ(ch.width(), 40);
}

}  // namespace
}  // namespace segroute::gen
