// Parameterized cross-algorithm property sweeps: every router is checked
// against an independent oracle over seeded random instance families.
#include <gtest/gtest.h>

#include <random>
#include <set>

#include "alg/dp.h"
#include "alg/exhaustive.h"
#include "alg/generalized_dp.h"
#include "alg/greedy1.h"
#include "alg/greedy2track.h"
#include "alg/anneal_route.h"
#include "alg/lp_route.h"
#include "alg/online.h"
#include "alg/match1.h"
#include "core/routing.h"
#include "core/stats.h"
#include "gen/segmentation.h"
#include "gen/workload.h"
#include "harness/robust_route.h"
#include "harness/verify.h"

namespace segroute::alg {
namespace {

struct InstanceParams {
  std::uint64_t seed;
  TrackId tracks;
  Column width;
  int max_cuts;
  int connections;
  double mean_len;
};

SegmentedChannel make_channel(const InstanceParams& p, std::mt19937_64& rng) {
  std::vector<Track> tracks;
  for (TrackId t = 0; t < p.tracks; ++t) {
    std::set<Column> cuts;
    const int k =
        static_cast<int>(rng() % static_cast<unsigned>(p.max_cuts + 1));
    for (int i = 0; i < k; ++i) {
      cuts.insert(1 + static_cast<Column>(rng() % (p.width - 1)));
    }
    tracks.emplace_back(p.width, std::vector<Column>(cuts.begin(), cuts.end()));
  }
  return SegmentedChannel(std::move(tracks));
}

class RouterProperties : public ::testing::TestWithParam<InstanceParams> {};

TEST_P(RouterProperties, DpAgreesWithExhaustiveAndProducesValidRoutings) {
  const auto p = GetParam();
  std::mt19937_64 rng(p.seed);
  const auto ch = make_channel(p, rng);
  const auto cs = gen::geometric_workload(p.connections, p.width, p.mean_len, rng);
  const auto d = dp_route_unlimited(ch, cs);
  const auto e = exhaustive_route(ch, cs);
  ASSERT_EQ(d.success, e.success);
  if (d.success) {
    EXPECT_TRUE(validate(ch, cs, d.routing));
  }
}

TEST_P(RouterProperties, Greedy1IsExactForOneSegmentRouting) {
  const auto p = GetParam();
  std::mt19937_64 rng(p.seed ^ 0x9e3779b97f4a7c15ull);
  const auto ch = make_channel(p, rng);
  const auto cs = gen::geometric_workload(p.connections, p.width, p.mean_len, rng);
  const bool greedy_ok = greedy1_route(ch, cs).success;
  const bool oracle_ok = match1_route(ch, cs).success;
  EXPECT_EQ(greedy_ok, oracle_ok);
  ExhaustiveOptions eo;
  eo.max_segments = 1;
  EXPECT_EQ(greedy_ok, exhaustive_route(ch, cs, eo).success);
}

TEST_P(RouterProperties, LpHeuristicNeverContradictsTheOracle) {
  const auto p = GetParam();
  std::mt19937_64 rng(p.seed ^ 0xdeadbeefull);
  const auto ch = make_channel(p, rng);
  const auto cs = gen::geometric_workload(p.connections, p.width, p.mean_len, rng);
  const auto lp = lp_route(ch, cs);
  const bool oracle_ok = dp_route_unlimited(ch, cs).success;
  if (lp.success) {
    EXPECT_TRUE(oracle_ok);
    EXPECT_TRUE(validate(ch, cs, lp.routing));
  } else if (lp.stats.lp_objective < cs.size() - 1e-6) {
    EXPECT_FALSE(oracle_ok);
  }
}

TEST_P(RouterProperties, GeneralizedRoutingSubsumesStandard) {
  const auto p = GetParam();
  std::mt19937_64 rng(p.seed ^ 0x1234567ull);
  InstanceParams small = p;
  small.width = std::min<Column>(p.width, 12);
  small.connections = std::min(p.connections, 5);
  const auto ch = make_channel(small, rng);
  const auto cs =
      gen::geometric_workload(small.connections, small.width, 3.0, rng);
  const bool std_ok = dp_route_unlimited(ch, cs).success;
  const auto g = generalized_dp_route(ch, cs);
  if (std_ok) {
    EXPECT_TRUE(g.success);
  }
  if (g.success) {
    EXPECT_TRUE(validate(ch, cs, g.routing));
  }
}

TEST_P(RouterProperties, OptimalRoutersAgreeOnMinimumWeight) {
  const auto p = GetParam();
  std::mt19937_64 rng(p.seed ^ 0xabcdefull);
  InstanceParams small = p;
  small.connections = std::min(p.connections, 5);
  const auto ch = make_channel(small, rng);
  const auto cs =
      gen::geometric_workload(small.connections, small.width, p.mean_len, rng);
  const auto w = weights::occupied_length();
  const auto d = dp_route_optimal(ch, cs, w);
  ExhaustiveOptions eo;
  eo.weight = w;
  const auto e = exhaustive_route(ch, cs, eo);
  ASSERT_EQ(d.success, e.success);
  if (d.success) {
    EXPECT_NEAR(d.weight, e.weight, 1e-9);
  }
}

TEST_P(RouterProperties, KSegmentHierarchyIsMonotone) {
  const auto p = GetParam();
  std::mt19937_64 rng(p.seed ^ 0x777ull);
  const auto ch = make_channel(p, rng);
  const auto cs = gen::geometric_workload(p.connections, p.width, p.mean_len, rng);
  bool prev = false;
  for (int k = 1; k <= 4; ++k) {
    const bool ok = dp_route_ksegment(ch, cs, k).success;
    EXPECT_TRUE(!prev || ok) << "k=" << k;
    prev = ok;
  }
  if (prev) {
    EXPECT_TRUE(dp_route_unlimited(ch, cs).success);
  }
}

TEST_P(RouterProperties, AnnealingNeverFabricatesRoutings) {
  const auto p = GetParam();
  std::mt19937_64 rng(p.seed ^ 0xfeedULL);
  const auto ch = make_channel(p, rng);
  const auto cs = gen::geometric_workload(p.connections, p.width, p.mean_len, rng);
  AnnealRouteOptions o;
  o.iterations = 30000;
  o.seed = p.seed;
  const auto an = anneal_route(ch, cs, o);
  if (an.success) {
    EXPECT_TRUE(validate(ch, cs, an.routing));
    EXPECT_TRUE(dp_route_unlimited(ch, cs).success);
  }
}

TEST_P(RouterProperties, OnlineRouterMatchesItsSnapshotInvariant) {
  const auto p = GetParam();
  std::mt19937_64 rng(p.seed ^ 0xca11ULL);
  const auto ch = make_channel(p, rng);
  const auto cs = gen::geometric_workload(p.connections, p.width, p.mean_len, rng);
  OnlineRouter router(ch);
  int placed = 0;
  for (const Connection& c : cs.all()) {
    if (router.insert_with_ripup(c.left, c.right)) ++placed;
  }
  EXPECT_EQ(router.num_placed(), placed);
  const auto [scs, sr] = router.snapshot();
  EXPECT_EQ(scs.size(), placed);
  EXPECT_TRUE(validate(ch, scs, sr));
  // Online success on the full set implies the exact router succeeds too.
  if (placed == cs.size()) {
    EXPECT_TRUE(dp_route_unlimited(ch, cs).success);
  }
}

TEST_P(RouterProperties, UtilizationInvariantsHoldOnEveryRouting) {
  const auto p = GetParam();
  std::mt19937_64 rng(p.seed ^ 0x57a7ULL);
  const auto ch = make_channel(p, rng);
  const auto cs = gen::geometric_workload(p.connections, p.width, p.mean_len, rng);
  const auto d = dp_route_unlimited(ch, cs);
  if (!d.success) return;
  const auto st = utilization(ch, cs, d.routing);
  EXPECT_GE(st.occupied_columns, st.demanded_columns);  // overhang >= 1
  EXPECT_LE(st.occupied_columns, st.total_columns);
  EXPECT_LE(st.occupied_segments, st.total_segments);
  EXPECT_LE(st.tracks_touched, ch.num_tracks());
  EXPECT_GE(st.overhang(), 1.0);
}

TEST_P(RouterProperties, EverySuccessfulRouterPassesIndependentVerification) {
  const auto p = GetParam();
  std::mt19937_64 rng(p.seed ^ 0x5eafULL);
  const auto ch = make_channel(p, rng);
  const auto cs = gen::geometric_workload(p.connections, p.width, p.mean_len, rng);
  const harness::RouteVerifier verifier(ch, cs);
  const auto check_ok = [&](const RouteResult& r, const char* who,
                            harness::VerifyOptions vo = {}) {
    if (!r.success) return;
    const auto res = verifier.check(r, vo);
    EXPECT_TRUE(res) << who << ": " << res.detail;
  };
  check_ok(dp_route_unlimited(ch, cs), "dp");
  check_ok(greedy1_route(ch, cs), "greedy1");
  check_ok(match1_route(ch, cs), "match1");
  check_ok(lp_route(ch, cs), "lp");
  check_ok(exhaustive_route(ch, cs), "exhaustive");
  harness::VerifyOptions k2;
  k2.max_segments = 2;
  check_ok(dp_route_ksegment(ch, cs, 2), "dp-k2", k2);
  harness::VerifyOptions wo;
  wo.weight = weights::occupied_length();
  check_ok(dp_route_optimal(ch, cs, weights::occupied_length()), "dp-opt", wo);
  AnnealRouteOptions ao;
  ao.iterations = 20000;
  ao.seed = p.seed;
  check_ok(anneal_route(ch, cs, ao), "anneal");
  if (ch.max_segments_per_track() <= 2) {
    check_ok(greedy2track_route(ch, cs), "greedy2track");
  }
  const auto rep = harness::robust_route(ch, cs);
  if (rep.success) {
    EXPECT_TRUE(verifier.check(rep.routing)) << "robust_route";
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeededSweep, RouterProperties,
    ::testing::Values(
        InstanceParams{1, 2, 10, 2, 3, 3.0}, InstanceParams{2, 3, 12, 3, 4, 3.5},
        InstanceParams{3, 3, 14, 3, 5, 4.0}, InstanceParams{4, 4, 14, 2, 5, 4.0},
        InstanceParams{5, 4, 16, 4, 6, 4.5}, InstanceParams{6, 3, 16, 4, 6, 5.0},
        InstanceParams{7, 2, 14, 3, 4, 4.0}, InstanceParams{8, 4, 12, 2, 6, 3.0},
        InstanceParams{9, 3, 18, 5, 5, 5.0}, InstanceParams{10, 4, 18, 3, 7, 4.0},
        InstanceParams{11, 3, 10, 1, 5, 3.0}, InstanceParams{12, 2, 18, 5, 4, 6.0},
        InstanceParams{13, 4, 20, 4, 7, 5.0}, InstanceParams{14, 3, 20, 2, 6, 6.0},
        InstanceParams{15, 5, 14, 3, 7, 3.5}, InstanceParams{16, 5, 16, 2, 8, 4.0}),
    [](const ::testing::TestParamInfo<InstanceParams>& info) {
      const auto& p = info.param;
      return "seed" + std::to_string(p.seed) + "_T" + std::to_string(p.tracks) +
             "_N" + std::to_string(p.width) + "_M" +
             std::to_string(p.connections);
    });

INSTANTIATE_TEST_SUITE_P(
    WiderSweep, RouterProperties,
    ::testing::Values(
        InstanceParams{21, 6, 16, 3, 8, 3.5}, InstanceParams{22, 6, 20, 2, 9, 4.0},
        InstanceParams{23, 2, 24, 6, 5, 8.0}, InstanceParams{24, 5, 24, 5, 8, 6.0},
        InstanceParams{25, 3, 8, 2, 6, 2.0}, InstanceParams{26, 4, 10, 1, 7, 2.5},
        InstanceParams{27, 5, 18, 4, 9, 3.0}, InstanceParams{28, 6, 12, 2, 10, 2.5},
        InstanceParams{29, 2, 30, 8, 4, 10.0}, InstanceParams{30, 4, 26, 6, 6, 7.0}),
    [](const ::testing::TestParamInfo<InstanceParams>& info) {
      const auto& p = info.param;
      return "seed" + std::to_string(p.seed) + "_T" + std::to_string(p.tracks) +
             "_N" + std::to_string(p.width) + "_M" +
             std::to_string(p.connections);
    });

}  // namespace
}  // namespace segroute::alg
