// The incremental-edit contract, end to end: randomized edit scripts
// must keep an OnlineRouter session bit-identical to from_scratch()
// after every apply(), with the localized repair (not the DP fallback)
// carrying the bulk of the work; the engine's "delta" router must serve
// the same reference under every thread count and cache mode; and
// rebind_delta() must migrate exactly the memo entries the structural
// diff proves unaffected.
#include "alg/delta.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <optional>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "alg/online.h"
#include "alg/registry.h"
#include "engine/batch.h"
#include "gen/segmentation.h"

namespace segroute::alg {
namespace {

struct Family {
  std::string name;
  SegmentedChannel ch;
};

/// The three channel families of the edit-script suite: uniform and
/// staggered grids plus a progressive (mixed segment length) channel —
/// general segmentation, not just the paper's uniform case.
std::vector<Family> families() {
  std::vector<Family> f;
  f.push_back({"uniform", gen::uniform_segmentation(4, 24, 6)});
  f.push_back({"staggered", gen::staggered_segmentation(4, 24, 6)});
  f.push_back({"progressive", gen::progressive_segmentation(6, 32, 4, 3)});
  return f;
}

struct EditCounters {
  long applied = 0;
  long repairs = 0;
  long dp_fallbacks = 0;
  long rejected = 0;
};

/// Drives one seeded edit script against `session`, asserting after
/// every apply() that the snapshot validates and equals canonical(S)
/// from scratch (void so ASSERT_ can bail; callers read the final
/// state through session.snapshot()).
void run_script(OnlineRouter& session, std::mt19937_64& rng, int steps,
                int max_segments, EditCounters& counts,
                const std::string& tag) {
  const Column width = session.channel().width();
  const TrackId tracks = session.channel().num_tracks();
  std::vector<ConnId> live;
  const auto rand_span = [&]() -> std::pair<Column, Column> {
    const Column l =
        1 + static_cast<Column>(rng() % static_cast<std::uint64_t>(width));
    const Column len = 1 + static_cast<Column>(
        rng() % static_cast<std::uint64_t>(std::max<Column>(1, width / 4)));
    return {l, std::min<Column>(width, l + len - 1)};
  };
  const std::size_t cap = static_cast<std::size_t>(tracks) * 3 + 4;
  std::pair<ConnectionSet, Routing> state;
  for (int step = 0; step < steps; ++step) {
    std::uint64_t pick = rng() % 3;
    if (live.empty()) pick = 0;
    if (pick == 0 && live.size() >= cap) pick = 1;
    ChannelEdit edit;
    if (pick == 0) {
      const auto [l, r] = rand_span();
      edit = ChannelEdit::add(l, r);
    } else if (pick == 1) {
      edit = ChannelEdit::remove(live[rng() % live.size()]);
    } else {
      const auto [l, r] = rand_span();
      edit = ChannelEdit::move(live[rng() % live.size()], l, r);
    }
    const RepairOutcome out = session.apply(edit);
    if (!out.success) {
      ++counts.rejected;
      EXPECT_NE(out.failure, FailureKind::kNone) << tag << " step " << step;
    } else {
      ++counts.applied;
      if (out.path == RepairOutcome::Path::kRepair) {
        ++counts.repairs;
      } else {
        ++counts.dp_fallbacks;
      }
      if (edit.kind == ChannelEdit::Kind::kAdd) live.push_back(out.id);
      if (edit.kind == ChannelEdit::Kind::kRemove) {
        live.erase(std::find(live.begin(), live.end(), edit.id));
      }
    }
    // The contract: after EVERY apply() — success or rollback — the
    // state validates and is bit-identical to canonical(S) from scratch.
    state = session.snapshot();
    ASSERT_EQ(state.first.size(), static_cast<ConnId>(live.size()))
        << tag << " step " << step;
    ASSERT_TRUE(validate(session.channel(), state.first, state.second,
                         max_segments > 0 ? std::optional<int>(max_segments)
                                          : std::nullopt))
        << tag << " step " << step;
    const CanonicalResult ref = from_scratch(
        session.channel(), state.first, /*policy_best_fit=*/true,
        max_segments);
    ASSERT_TRUE(ref.result.success) << tag << " step " << step;
    ASSERT_EQ(ref.result.routing, state.second)
        << tag << " step " << step << " regime "
        << (ref.regime == CanonicalRegime::kDp ? "dp" : "greedy");
  }
}

// The headline gate: >= 200 randomized edit scripts (3 families x 70)
// of 30 add/remove/move edits each, bit-identity checked after every
// single apply(), with K-segment limits on a third of the scripts, and
// the repair path carrying a majority of successful edits.
TEST(DeltaSuite, RandomizedEditScriptsStayCanonical) {
  std::mt19937_64 rng(1007);
  EditCounters counts;
  int scripts = 0;
  for (const Family& fam : families()) {
    for (int script = 0; script < 70; ++script) {
      const int max_segments = script % 3 == 0 ? 2 : 0;
      OnlineRouter session(fam.ch, OnlineRouter::Policy::BestFit,
                           max_segments);
      const std::string tag = fam.name + " script " + std::to_string(script);
      run_script(session, rng, /*steps=*/30, max_segments, counts, tag);
      ++scripts;
    }
  }
  EXPECT_GE(scripts, 200);
  EXPECT_GT(counts.applied, 1000L);
  EXPECT_GT(counts.rejected, 0L);  // scripts do saturate channels
  // The whole point of the delta API: localized repair, not the DP
  // fallback, must carry the majority of successful edits.
  EXPECT_GT(counts.repairs, counts.dp_fallbacks)
      << "repairs=" << counts.repairs << " dp=" << counts.dp_fallbacks;
}

// The engine-served reference: final states of seeded scripts must be
// reproduced by BatchRouter with router="delta" under every thread
// count and cache mode (1/2/8 threads x cache on/off).
TEST(DeltaSuite, EngineDeltaRouterMatchesSessionsAcrossThreadsAndCache) {
  for (const Family& fam : families()) {
    std::mt19937_64 rng(2029);
    std::vector<ConnectionSet> finals;
    std::vector<Routing> expected;
    EditCounters counts;
    for (int script = 0; script < 12; ++script) {
      OnlineRouter session(fam.ch, OnlineRouter::Policy::BestFit, 0);
      run_script(session, rng, /*steps=*/25, 0, counts,
                 fam.name + " engine script " + std::to_string(script));
      auto [cs, routing] = session.snapshot();
      finals.push_back(std::move(cs));
      expected.push_back(std::move(routing));
    }
    for (const int threads : {1, 2, 8}) {
      for (const bool cache : {true, false}) {
        engine::BatchOptions bo;
        bo.threads = threads;
        bo.use_cache = cache;
        engine::BatchRouter engine(fam.ch, bo);
        engine::EngineRouteOptions ro;
        ro.router = "delta";
        const std::vector<RouteResult> results =
            engine.route_many(finals, ro);
        ASSERT_EQ(results.size(), finals.size());
        for (std::size_t i = 0; i < results.size(); ++i) {
          ASSERT_TRUE(results[i].success)
              << fam.name << " threads=" << threads << " cache=" << cache
              << " i=" << i;
          EXPECT_EQ(results[i].routing, expected[i])
              << fam.name << " threads=" << threads << " cache=" << cache
              << " i=" << i;
        }
      }
    }
  }
}

// Deterministic DP-fallback scenario: greedy routes the first two adds
// but strands the third (the early conn hogged both segments of t0);
// the DP reorders. The session must switch regimes, stay bit-identical,
// and renormalize back to greedy when the blocker is removed.
TEST(DeltaSuite, DpFallbackEngagesAndRenormalizes) {
  // t0: (1,4)(5,9); t1: (1,9).
  const SegmentedChannel ch({Track(9, {4}), Track(9, {})});
  OnlineRouter session(ch);
  const RepairOutcome z = session.apply(ChannelEdit::add(2, 8));  // t0 both segs
  const RepairOutcome x = session.apply(ChannelEdit::add(1, 4));  // t1
  ASSERT_TRUE(z.success && x.success);
  EXPECT_EQ(z.path, RepairOutcome::Path::kRepair);
  EXPECT_TRUE(session.greedy_canonical());

  // Greedy is now stuck for (5,9): both t0 segments held by z, t1 by x.
  const RepairOutcome y = session.apply(ChannelEdit::add(5, 9));
  ASSERT_TRUE(y.success);
  EXPECT_EQ(y.path, RepairOutcome::Path::kFullDp);
  EXPECT_FALSE(session.greedy_canonical());
  {
    const auto [cs, routing] = session.snapshot();
    const CanonicalResult ref = from_scratch(ch, cs, true, 0);
    ASSERT_TRUE(ref.result.success);
    EXPECT_EQ(ref.regime, CanonicalRegime::kDp);
    EXPECT_EQ(ref.result.routing, routing);
  }

  // Removing the hog makes greedy canonical again; apply() renormalizes
  // over the full width and reports the repair path.
  const RepairOutcome rm = session.apply(ChannelEdit::remove(z.id));
  ASSERT_TRUE(rm.success);
  EXPECT_EQ(rm.path, RepairOutcome::Path::kRepair);
  EXPECT_TRUE(session.greedy_canonical());
  const auto [cs, routing] = session.snapshot();
  const CanonicalResult ref = from_scratch(ch, cs, true, 0);
  EXPECT_EQ(ref.regime, CanonicalRegime::kGreedy);
  EXPECT_EQ(ref.result.routing, routing);
}

// A rejected edit must roll the session back bit-identically and leave
// a typed failure behind.
TEST(DeltaSuite, InfeasibleEditRollsBackBitIdentically) {
  const SegmentedChannel ch({Track(9, {4}), Track(9, {6})});
  OnlineRouter session(ch);
  ASSERT_TRUE(session.apply(ChannelEdit::add(1, 3)).success);
  ASSERT_TRUE(session.apply(ChannelEdit::add(2, 4)).success);
  const auto before = session.snapshot();

  const RepairOutcome out = session.apply(ChannelEdit::add(3, 3));
  EXPECT_FALSE(out.success);
  EXPECT_EQ(out.failure, FailureKind::kInfeasible);
  EXPECT_EQ(session.last_failure(), FailureKind::kInfeasible);
  EXPECT_EQ(out.id, kNoConn);

  const auto after = session.snapshot();
  EXPECT_EQ(before.second, after.second);
  ASSERT_EQ(before.first.size(), after.first.size());
  for (ConnId i = 0; i < before.first.size(); ++i) {
    EXPECT_EQ(before.first[i].left, after.first[i].left);
    EXPECT_EQ(before.first[i].right, after.first[i].right);
  }

  // Malformed edits are rejected before any routing runs.
  const RepairOutcome bad = session.apply(ChannelEdit::add(0, 3));
  EXPECT_FALSE(bad.success);
  EXPECT_EQ(bad.failure, FailureKind::kInvalidInput);
  EXPECT_EQ(bad.path, RepairOutcome::Path::kNone);
  const RepairOutcome ghost = session.apply(ChannelEdit::remove(99));
  EXPECT_FALSE(ghost.success);
  EXPECT_EQ(ghost.failure, FailureKind::kInvalidInput);
}

// Move semantics: the affected window must cover the hull of the old
// and new spans, and the receipt reports what was reconsidered.
TEST(DeltaSuite, MoveReportsTheAffectedWindow) {
  const SegmentedChannel ch = gen::uniform_segmentation(3, 24, 6);
  OnlineRouter session(ch);
  const RepairOutcome a = session.apply(ChannelEdit::add(2, 5));
  ASSERT_TRUE(a.success);
  const RepairOutcome mv = session.apply(ChannelEdit::move(a.id, 19, 23));
  ASSERT_TRUE(mv.success);
  EXPECT_EQ(mv.id, a.id);
  EXPECT_LE(mv.affected_lo, 2);
  EXPECT_GE(mv.affected_hi, 23);
  EXPECT_GE(mv.reconsidered, 1);
  const auto [cs, routing] = session.snapshot();
  ASSERT_EQ(cs.size(), 1);
  EXPECT_EQ(cs[0].left, 19);
  EXPECT_EQ(from_scratch(ch, cs, true, 0).result.routing, routing);
}

// ---------------------------------------------------------------------
// rebind_delta: fingerprint-delta-aware cache migration.

engine::EngineRouteOptions dp_opts() {
  engine::EngineRouteOptions ro;
  ro.router = "dp";
  return ro;
}

// Staggered tracks have pairwise-distinct segmentations, so resegmenting
// one track preserves the type partition: the substrates are
// migration-comparable, entries whose conns avoid the resegmented
// columns migrate, and entries overlapping them are evicted.
TEST(RebindDelta, MigratesDisjointEntriesAndEvictsOverlapping) {
  const SegmentedChannel ch = gen::staggered_segmentation(4, 24, 6);
  std::vector<Track> tracks = ch.tracks();
  std::vector<Column> sw = tracks.back().switch_positions();
  Column extra = 21;  // a fresh switch position near the right edge
  while (std::find(sw.begin(), sw.end(), extra) != sw.end()) --extra;
  sw.push_back(extra);
  std::sort(sw.begin(), sw.end());
  tracks.back() = Track(24, sw);
  const SegmentedChannel ch2(tracks);

  engine::BatchRouter engine(ch);
  ConnectionSet far;  // columns 1..6: disjoint from the edit near 21
  far.add(1, 3);
  far.add(4, 6);
  ConnectionSet near;  // straddles the new switch
  near.add(19, 23);
  ASSERT_TRUE(engine.route(far, dp_opts()).success);
  ASSERT_TRUE(engine.route(near, dp_opts()).success);

  const engine::RebindDelta d = engine.rebind_delta(ch2);
  EXPECT_FALSE(d.structural);
  EXPECT_NE(d.old_fingerprint, d.new_fingerprint);
  EXPECT_EQ(d.new_fingerprint, engine.index().fingerprint());
  EXPECT_LE(d.affected_lo, extra);
  EXPECT_GE(d.affected_hi, extra);
  EXPECT_EQ(d.migrated, 1u);
  EXPECT_EQ(d.evicted, 1u);

  // The migrated entry serves a hit under the NEW fingerprint, and the
  // served routing is bit-identical to a cold engine's on ch2.
  const engine::CacheStats before = engine.cache_stats();
  const RouteResult warm = engine.route(far, dp_opts());
  const engine::CacheStats after = engine.cache_stats();
  ASSERT_TRUE(warm.success);
  EXPECT_EQ(after.hits, before.hits + 1);
  engine::BatchRouter cold(ch2);
  const RouteResult fresh = cold.route(far, dp_opts());
  ASSERT_TRUE(fresh.success);
  EXPECT_EQ(warm.routing, fresh.routing);

  // The overlapping entry was evicted: routing `near` misses.
  const engine::CacheStats b2 = engine.cache_stats();
  ASSERT_TRUE(engine.route(near, dp_opts()).success);
  EXPECT_EQ(engine.cache_stats().misses, b2.misses + 1);
}

// Resegmenting a uniform track splits its type class, which can change
// the DP's canonicalized tie-breaks globally — the substrates are NOT
// migration-comparable and rebind_delta must fall back to structural
// (nothing migrates; old-fingerprint entries become unreachable, as in
// plain rebind()).
TEST(RebindDelta, TypePartitionChangeFallsBackToStructural) {
  const SegmentedChannel ch = gen::uniform_segmentation(4, 24, 6);
  std::vector<Track> tracks = ch.tracks();
  std::vector<Column> sw = tracks.back().switch_positions();
  sw.push_back(21);  // uniform grid is 6/12/18 — 21 is fresh
  std::sort(sw.begin(), sw.end());
  tracks.back() = Track(24, sw);
  const SegmentedChannel ch2(tracks);

  engine::BatchRouter engine(ch);
  ConnectionSet far;
  far.add(1, 3);
  ASSERT_TRUE(engine.route(far, dp_opts()).success);
  const engine::RebindDelta d = engine.rebind_delta(ch2);
  EXPECT_TRUE(d.structural);
  EXPECT_EQ(d.migrated, 0u);
  EXPECT_EQ(d.evicted, 0u);
  EXPECT_EQ(engine.index().fingerprint(), d.new_fingerprint);
}

// Losing a track is a structural change regardless of spans.
TEST(RebindDelta, TrackCountChangeIsStructural) {
  const SegmentedChannel ch = gen::staggered_segmentation(4, 24, 6);
  std::vector<Track> tracks = ch.tracks();
  tracks.pop_back();
  const SegmentedChannel ch2(tracks);
  engine::BatchRouter engine(ch);
  ConnectionSet cs;
  cs.add(1, 3);
  ASSERT_TRUE(engine.route(cs, dp_opts()).success);
  const engine::RebindDelta d = engine.rebind_delta(ch2);
  EXPECT_TRUE(d.structural);
  EXPECT_EQ(d.migrated, 0u);
}

// Rebinding to an identical channel is a no-op delta: same fingerprint,
// nothing migrated or evicted, and cached entries still hit.
TEST(RebindDelta, IdenticalChannelIsANoOp) {
  const SegmentedChannel ch = gen::staggered_segmentation(4, 24, 6);
  const SegmentedChannel twin = gen::staggered_segmentation(4, 24, 6);
  engine::BatchRouter engine(ch);
  ConnectionSet cs;
  cs.add(1, 3);
  ASSERT_TRUE(engine.route(cs, dp_opts()).success);
  const engine::RebindDelta d = engine.rebind_delta(twin);
  EXPECT_FALSE(d.structural);
  EXPECT_EQ(d.old_fingerprint, d.new_fingerprint);
  EXPECT_EQ(d.migrated, 0u);
  EXPECT_EQ(d.evicted, 0u);
  const engine::CacheStats before = engine.cache_stats();
  ASSERT_TRUE(engine.route(cs, dp_opts()).success);
  EXPECT_EQ(engine.cache_stats().hits, before.hits + 1);
}

// The "delta" registry entry: exact + K-capable, policy-checked.
TEST(DeltaSuite, RegistryEntryServesTheReference) {
  const RouterEntry* e = find_router("delta");
  ASSERT_NE(e, nullptr);
  EXPECT_TRUE(e->caps.exact);
  EXPECT_TRUE(e->caps.supports_k);

  const SegmentedChannel ch = gen::staggered_segmentation(3, 20, 5);
  ConnectionSet cs;
  cs.add(1, 4);
  cs.add(6, 10);
  RouteRequest rq;
  rq.channel = &ch;
  rq.connections = &cs;
  const RouteResult rr = route("delta", rq);
  ASSERT_TRUE(rr.success);
  EXPECT_EQ(rr.note, "regime=greedy");
  EXPECT_EQ(rr.routing, from_scratch(ch, cs, true, 0).result.routing);

  rq.options.params["policy"] = std::string("sideways");
  const RouteResult bad = route("delta", rq);
  EXPECT_FALSE(bad.success);
  EXPECT_EQ(bad.failure, FailureKind::kInvalidInput);
}

}  // namespace
}  // namespace segroute::alg
