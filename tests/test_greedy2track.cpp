#include "alg/greedy2track.h"

#include <gtest/gtest.h>

#include <random>

#include "alg/dp.h"
#include "core/routing.h"
#include "gen/fixtures.h"
#include "gen/workload.h"

namespace segroute::alg {
namespace {

TEST(Greedy2Track, ReproducesTheFig8Trace) {
  const auto ch = gen::fixtures::fig8_channel();
  const auto cs = gen::fixtures::fig8_connections();
  std::vector<Greedy2Event> ev;
  const auto r = greedy2track_route(ch, cs, &ev);
  ASSERT_TRUE(r.success) << r.note;
  EXPECT_TRUE(validate(ch, cs, r.routing));

  // Narrated run: c1 placed on t1; c2 pooled; c3 placed (tie t2/t3);
  // pool flush gives c2 the remaining unoccupied track; c4 placed last.
  ASSERT_EQ(ev.size(), 5u);
  EXPECT_EQ(ev[0].kind, Greedy2Event::Kind::AssignedSegment);
  EXPECT_EQ(ev[0].conn, 0);
  EXPECT_EQ(ev[0].track, 0);
  EXPECT_EQ(ev[1].kind, Greedy2Event::Kind::Pooled);
  EXPECT_EQ(ev[1].conn, 1);
  EXPECT_EQ(ev[2].kind, Greedy2Event::Kind::AssignedSegment);
  EXPECT_EQ(ev[2].conn, 2);
  EXPECT_EQ(ev[2].track, 1);  // lowest-index tie break
  EXPECT_EQ(ev[3].kind, Greedy2Event::Kind::PoolFlushed);
  ASSERT_EQ(ev[3].flushed.size(), 1u);
  EXPECT_EQ(ev[3].flushed[0].first, 1);
  EXPECT_EQ(ev[3].flushed[0].second, 2);  // the only unoccupied track
  EXPECT_EQ(ev[4].kind, Greedy2Event::Kind::AssignedSegment);
  EXPECT_EQ(ev[4].conn, 3);
  EXPECT_EQ(ev[4].track, 0);
}

TEST(Greedy2Track, MoreThanTwoSegmentsPerTrackIsInvalidInput) {
  const auto ch = SegmentedChannel::identical(2, 9, {3, 6});
  ConnectionSet cs;
  cs.add(1, 2);
  const auto r = greedy2track_route(ch, cs);
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.failure, FailureKind::kInvalidInput);
  EXPECT_FALSE(r.note.empty());
}

TEST(Greedy2Track, Theorem4ExactnessAgainstDp) {
  // On channels with at most two segments per track, the greedy finds a
  // routing iff one exists (DP is the oracle).
  std::mt19937_64 rng(41);
  int successes = 0, failures = 0;
  for (int iter = 0; iter < 200; ++iter) {
    const Column width = 16;
    std::vector<Track> tracks;
    const int T = 3 + static_cast<int>(rng() % 3);
    for (int t = 0; t < T; ++t) {
      if (rng() % 4 == 0) {
        tracks.push_back(Track::unsegmented(width));
      } else {
        tracks.emplace_back(width,
                            std::vector<Column>{static_cast<Column>(
                                1 + rng() % (width - 1))});
      }
    }
    const SegmentedChannel ch(std::move(tracks));
    const auto cs = gen::geometric_workload(
        2 + static_cast<int>(rng() % (2 * T)), width, 5.0, rng);
    const bool greedy_ok = greedy2track_route(ch, cs).success;
    const bool oracle_ok = dp_route_unlimited(ch, cs).success;
    EXPECT_EQ(greedy_ok, oracle_ok) << "iter " << iter;
    (greedy_ok ? successes : failures)++;
  }
  EXPECT_GT(successes, 0);
  EXPECT_GT(failures, 0);
}

TEST(Greedy2Track, PoolOverflowFailsEarly) {
  // Two nets that each need a whole track, one track available.
  const auto ch = SegmentedChannel({Track(9, {4})});
  ConnectionSet cs;
  cs.add(2, 6, "p1");  // crosses the switch in the only track
  cs.add(3, 7, "p2");
  const auto r = greedy2track_route(ch, cs);
  EXPECT_FALSE(r.success);
  EXPECT_NE(r.note.find("pool"), std::string::npos);
}

TEST(Greedy2Track, FinalPoolAssignmentAtEndOfInput) {
  // One pooled net, plenty of spare tracks: flushed after the loop.
  const auto ch = SegmentedChannel::identical(3, 9, {4});
  ConnectionSet cs;
  cs.add(2, 6, "whole");
  std::vector<Greedy2Event> ev;
  const auto r = greedy2track_route(ch, cs, &ev);
  ASSERT_TRUE(r.success);
  ASSERT_EQ(ev.size(), 2u);
  EXPECT_EQ(ev[1].kind, Greedy2Event::Kind::FinalPoolAssign);
  EXPECT_TRUE(validate(ch, cs, r.routing));
}

TEST(Greedy2Track, SingleSegmentPlacementPrefersSmallestRightEnd) {
  const auto ch = SegmentedChannel({Track(9, {6}), Track(9, {4})});
  ConnectionSet cs;
  cs.add(1, 3);
  const auto r = greedy2track_route(ch, cs);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.routing.track_of(0), 1);
}

TEST(Greedy2Track, EmptyInputSucceeds) {
  const auto ch = SegmentedChannel::identical(2, 5, {2});
  EXPECT_TRUE(greedy2track_route(ch, ConnectionSet{}).success);
}

TEST(Greedy2Track, UnsegmentedChannelReducesToWholeTrackAssignment) {
  const auto ch = SegmentedChannel::unsegmented(3, 9);
  ConnectionSet cs;
  cs.add(1, 3);
  cs.add(2, 5);
  cs.add(4, 9);
  const auto r = greedy2track_route(ch, cs);
  ASSERT_TRUE(r.success);
  EXPECT_TRUE(validate(ch, cs, r.routing));
  ConnectionSet four;
  four.add(1, 3);
  four.add(2, 5);
  four.add(4, 9);
  four.add(5, 6);
  EXPECT_FALSE(greedy2track_route(ch, four).success);
}

}  // namespace
}  // namespace segroute::alg
