// Tests for the parallel layer (util::ThreadPool + the threaded capacity
// searches + robust_route racing) and the DP stats-on-every-exit
// contract. The load-bearing property throughout: results are
// bit-identical across thread counts.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <random>
#include <stdexcept>
#include <vector>

#include "alg/capacity.h"
#include "alg/dp.h"
#include "core/weights.h"
#include "gen/segmentation.h"
#include "gen/suite.h"
#include "gen/workload.h"
#include "harness/robust_route.h"
#include "util/pool.h"

namespace segroute {
namespace {

using alg::CapacityOptions;

// ---------------------------------------------------------------- pool --

TEST(ThreadPool, ResolveThreads) {
  EXPECT_GE(util::resolve_threads(0), 1);
  EXPECT_EQ(util::resolve_threads(1), 1);
  EXPECT_EQ(util::resolve_threads(5), 5);
  EXPECT_GE(util::resolve_threads(-3), 1);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  for (int w : {1, 2, 3, 8}) {
    util::ThreadPool pool(w);
    EXPECT_EQ(pool.size(), w);
    for (std::int64_t n : {0, 1, 2, 7, 64, 1000}) {
      std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
      for (auto& h : hits) h.store(0);
      pool.parallel_for(n, [&](std::int64_t i) {
        hits[static_cast<std::size_t>(i)].fetch_add(1);
      });
      for (std::int64_t i = 0; i < n; ++i) {
        EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1)
            << "w=" << w << " n=" << n << " i=" << i;
      }
    }
  }
}

TEST(ThreadPool, ParallelForIsReusable) {
  util::ThreadPool pool(4);
  std::atomic<long> sum{0};
  for (int round = 0; round < 50; ++round) {
    pool.parallel_for(100, [&](std::int64_t i) { sum.fetch_add(i); });
  }
  EXPECT_EQ(sum.load(), 50L * (99 * 100 / 2));
}

TEST(ThreadPool, ParallelForPropagatesExceptions) {
  util::ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(64,
                                 [&](std::int64_t i) {
                                   if (i == 37) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
  // The pool must survive a throwing job.
  std::atomic<int> n{0};
  pool.parallel_for(16, [&](std::int64_t) { n.fetch_add(1); });
  EXPECT_EQ(n.load(), 16);
}

TEST(ThreadPool, RunExecutesEveryJob) {
  util::ThreadPool pool(3);
  std::vector<std::atomic<int>> done(7);
  for (auto& d : done) d.store(0);
  std::vector<std::function<void()>> jobs;
  for (int i = 0; i < 7; ++i) {
    jobs.push_back([&done, i] { done[static_cast<std::size_t>(i)].store(1); });
  }
  pool.run(jobs);
  for (auto& d : done) EXPECT_EQ(d.load(), 1);
}

// ------------------------------------------------- capacity determinism --

TEST(ParallelCapacity, RoutabilityBitIdenticalAcrossThreadCounts) {
  const auto ch = gen::staggered_segmentation(5, 32, 8);
  const auto draw = [](std::mt19937_64& r) {
    return gen::geometric_workload(12, 32, 5.0, r);
  };
  const int trials = 60;
  std::vector<double> rates;
  std::vector<std::uint64_t> next_draw;
  for (int w : {1, 2, 8}) {
    CapacityOptions o;
    o.threads = w;
    std::mt19937_64 rng(9001);
    rates.push_back(alg::routability(ch, draw, trials, rng, o));
    next_draw.push_back(rng());  // master stream position must match too
  }
  EXPECT_EQ(rates[0], rates[1]);
  EXPECT_EQ(rates[0], rates[2]);
  EXPECT_EQ(next_draw[0], next_draw[1]);
  EXPECT_EQ(next_draw[0], next_draw[2]);
  EXPECT_GT(rates[0], 0.0);
  EXPECT_LT(rates[0], 1.0);  // workload chosen so the answer is informative
}

TEST(ParallelCapacity, MinTracksParallelMatchesSerial) {
  std::mt19937_64 rng(77);
  const auto cs = gen::geometric_workload(10, 24, 5.0, rng);
  const alg::ChannelFactory make = [](int t) {
    return gen::staggered_segmentation(t, 24, 6);
  };
  for (bool monotone : {false, true}) {
    CapacityOptions serial;
    serial.threads = 1;
    const auto want = alg::min_tracks(cs, make, serial, monotone);
    for (int w : {2, 3, 8}) {
      CapacityOptions o;
      o.threads = w;
      const auto got = alg::min_tracks(cs, make, o, monotone);
      ASSERT_EQ(want.has_value(), got.has_value())
          << "w=" << w << " monotone=" << monotone;
      if (want) {
        EXPECT_EQ(*want, *got) << "w=" << w << " monotone=" << monotone;
      }
    }
  }
}

TEST(ParallelCapacity, MinTracksRespectsTrackLimit) {
  std::mt19937_64 rng(78);
  // Dense overlapping workload that cannot fit in 3 tracks.
  ConnectionSet cs;
  for (int i = 0; i < 8; ++i) cs.add(1, 24);
  const alg::ChannelFactory make = [](int t) {
    return gen::uniform_segmentation(t, 24, 24);
  };
  for (int w : {1, 4}) {
    CapacityOptions o;
    o.threads = w;
    o.track_limit = 3;
    EXPECT_FALSE(alg::min_tracks(cs, make, o, true).has_value()) << "w=" << w;
    o.track_limit = 128;
    const auto got = alg::min_tracks(cs, make, o, true);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, 8);
  }
}

TEST(ParallelCapacity, MaxRoutablePrefixMatchesSerialAndLinearScan) {
  std::mt19937_64 rng(79);
  for (int iter = 0; iter < 6; ++iter) {
    const auto ch = gen::staggered_segmentation(4, 24, 6);
    const auto cs = gen::geometric_workload(
        6 + static_cast<int>(rng() % 8), 24, 6.0, rng);
    CapacityOptions serial;
    serial.threads = 1;
    const int want = alg::max_routable_prefix(ch, cs, serial);
    // Ground truth by linear scan over prefixes.
    const auto& all = cs.all();
    int truth = 0;
    for (int m = 1; m <= cs.size(); ++m) {
      ConnectionSet prefix(
          std::vector<Connection>(all.begin(), all.begin() + m));
      if (!alg::dp_route_unlimited(ch, prefix).success) break;
      truth = m;
    }
    EXPECT_EQ(want, truth) << "iter " << iter;
    for (int w : {2, 8}) {
      CapacityOptions o;
      o.threads = w;
      EXPECT_EQ(alg::max_routable_prefix(ch, cs, o), want)
          << "iter " << iter << " w=" << w;
    }
  }
}

// ------------------------------------------------------- racing cascade --

TEST(RobustRace, FeasibilityMatchesSerialOnSuite) {
  for (const auto& inst : gen::standard_suite()) {
    harness::RobustOptions serial;
    const auto want = harness::robust_route(inst.channel, inst.connections,
                                            serial);
    harness::RobustOptions race = serial;
    race.race = true;
    const auto got = harness::robust_route(inst.channel, inst.connections,
                                           race);
    EXPECT_EQ(want.success, got.success) << inst.name;
    // Racing reports *every* cascade stage (default cascade: 5), in
    // order, while the serial cascade stops at the first verified win.
    EXPECT_EQ(got.stages.size(), 5u) << inst.name;
    EXPECT_GE(got.stages.size(), want.stages.size()) << inst.name;
    if (got.success) {
      // Whoever won the race, the winning stage must be verified.
      bool winner_verified = false;
      for (const auto& s : got.stages) {
        if (s.router == got.winner) winner_verified = s.verified;
      }
      EXPECT_TRUE(winner_verified) << inst.name;
    }
  }
}

TEST(RobustRace, OptimizingModeFindsTheOptimalWeight) {
  const auto w = weights::occupied_length();
  for (const auto& inst : gen::standard_suite()) {
    if (!inst.routable) continue;
    harness::RobustOptions race;
    race.weight = w;
    race.race = true;
    const auto got = harness::robust_route(inst.channel, inst.connections,
                                           race);
    ASSERT_TRUE(got.success) << inst.name;
    // The cascade contains the exact DP, so the race must return the
    // pinned optimum regardless of which stages also finished.
    EXPECT_NEAR(got.weight, inst.optimal_length, 1e-9) << inst.name;
  }
}

TEST(RobustRace, ExternalCancelStopsTheRace) {
  const auto inst = gen::suite_instance("routable-large");
  std::atomic<bool> cancel{true};  // cancelled before it starts
  harness::RobustOptions race;
  race.race = true;
  race.cancel = &cancel;
  // Race two budget-checking exact stages. (With cheap greedy stages in
  // the cascade the outcome would be timing-dependent: a stage can
  // verifiably succeed before its first cancellation check, which the
  // racing contract allows.)
  race.stages = {{"dp", {}}, {"dp", {}}};
  const auto got = harness::robust_route(inst.channel, inst.connections, race);
  EXPECT_FALSE(got.success);
  EXPECT_EQ(got.failure, alg::FailureKind::kBudgetExhausted);
}

// ------------------------------------------- DP stats on every exit path --

TEST(DpStats, NodeLimitExitReportsConsistentStats) {
  const auto inst = gen::suite_instance("routable-large");
  alg::DpOptions o;
  o.max_total_nodes = 50;  // force the node-limit exit mid-build
  const auto r = alg::dp_route(inst.channel, inst.connections, o);
  ASSERT_FALSE(r.success);
  EXPECT_EQ(r.failure, alg::FailureKind::kBudgetExhausted);
  std::uint64_t sum = 0;
  std::size_t mx = 0;
  for (std::size_t n : r.stats.nodes_per_level) {
    sum += n;
    mx = std::max(mx, n);
  }
  EXPECT_EQ(r.stats.total_nodes, sum);
  EXPECT_EQ(r.stats.max_level_nodes, mx);
  EXPECT_GT(r.stats.total_nodes, 0u);
}

TEST(DpStats, BudgetExhaustedExitReportsConsistentStats) {
  const auto inst = gen::suite_instance("routable-large");
  alg::DpOptions o;
  o.budget = harness::Budget::with_ticks(40);
  const auto r = alg::dp_route(inst.channel, inst.connections, o);
  ASSERT_FALSE(r.success);
  EXPECT_EQ(r.failure, alg::FailureKind::kBudgetExhausted);
  std::uint64_t sum = 0;
  std::size_t mx = 0;
  for (std::size_t n : r.stats.nodes_per_level) {
    sum += n;
    mx = std::max(mx, n);
  }
  EXPECT_EQ(r.stats.total_nodes, sum);
  EXPECT_EQ(r.stats.max_level_nodes, mx);
}

TEST(DpStats, SuccessStatsUnchangedByOptimization) {
  // The frontier sets the optimized DP builds must match the pinned
  // level-by-level counts implied by the suite (guards against the arena
  // or the dedup table changing the state space).
  const auto inst = gen::suite_instance("progressive-long");
  const auto r = alg::dp_route_unlimited(inst.channel, inst.connections);
  ASSERT_TRUE(r.success);
  std::uint64_t sum = 0;
  for (std::size_t n : r.stats.nodes_per_level) sum += n;
  EXPECT_EQ(r.stats.total_nodes, sum);
  EXPECT_EQ(r.stats.nodes_per_level.size(),
            static_cast<std::size_t>(inst.connections.size()) + 1);
}

}  // namespace
}  // namespace segroute
