#include "io/render.h"
#include "io/table.h"
#include "io/text.h"

#include <gtest/gtest.h>

#include <sstream>

#include "alg/dp.h"
#include "gen/fixtures.h"

namespace segroute::io {
namespace {

TEST(TextIo, ChannelRoundTrip) {
  const auto ch = gen::fixtures::fig3_channel();
  const auto text = to_text(ch);
  const auto back = parse_channel(text);
  ASSERT_EQ(back.num_tracks(), ch.num_tracks());
  for (TrackId t = 0; t < ch.num_tracks(); ++t) {
    EXPECT_EQ(back.track(t), ch.track(t));
  }
}

TEST(TextIo, ConnectionsRoundTrip) {
  const auto cs = gen::fixtures::fig3_connections();
  const auto back = parse_connections(to_text(cs));
  ASSERT_EQ(back.size(), cs.size());
  for (ConnId i = 0; i < cs.size(); ++i) {
    EXPECT_EQ(back[i], cs[i]);
    EXPECT_EQ(back[i].name, cs[i].name);
  }
}

TEST(TextIo, CombinedDocumentParsesSectionBySection) {
  const auto doc = to_text(gen::fixtures::fig3_channel()) +
                   to_text(gen::fixtures::fig3_connections());
  std::istringstream in(doc);
  const auto ch = parse_channel(in);
  const auto cs = parse_connections(in);
  EXPECT_EQ(ch.num_tracks(), 3);
  EXPECT_EQ(cs.size(), 5);
}

TEST(TextIo, CommentsAndBlankLinesAreSkipped) {
  const auto ch = parse_channel(
      "# a comment\n\nchannel 9\n  # another\ntrack 3 6\ntrack\n");
  EXPECT_EQ(ch.num_tracks(), 2);
  EXPECT_EQ(ch.track(0).num_segments(), 3);
  EXPECT_EQ(ch.track(1).num_segments(), 1);
}

TEST(TextIo, MalformedInputThrows) {
  EXPECT_THROW(parse_channel(""), std::invalid_argument);
  EXPECT_THROW(parse_channel("track 3\n"), std::invalid_argument);
  EXPECT_THROW(parse_channel("channel 0\ntrack\n"), std::invalid_argument);
  EXPECT_THROW(parse_channel("channel 9\n"), std::invalid_argument);
  EXPECT_THROW(parse_connections("conn 1 2\n"), std::invalid_argument);
  EXPECT_THROW(parse_connections("connections\nconn 1\n"),
               std::invalid_argument);
}

TEST(TextIo, RoutingSerialization) {
  Routing r(3);
  r.assign(0, 2);
  r.assign(2, 0);
  const auto text = to_text(r);
  EXPECT_NE(text.find("assign 0 2"), std::string::npos);
  EXPECT_NE(text.find("assign 2 0"), std::string::npos);
  EXPECT_EQ(text.find("assign 1"), std::string::npos);
}

TEST(Render, ChannelShowsSwitchesBetweenSegments) {
  const auto ch = SegmentedChannel({Track(4, {2})});
  const auto art = render(ch);
  // Segments (1,2)(3,4): cells at columns 2 and 3 are separated by 'o'.
  EXPECT_NE(art.find("- -o- -"), std::string::npos);
}

TEST(Render, RoutedChannelLabelsOccupiedSegments) {
  const auto ch = gen::fixtures::fig3_channel();
  const auto cs = gen::fixtures::fig3_connections();
  const auto r = alg::dp_route_unlimited(ch, cs);
  ASSERT_TRUE(r.success);
  const auto art = render(ch, cs, r.routing);
  // Every connection label must appear somewhere.
  for (char label : {'1', '2', '3', '4', '5'}) {
    EXPECT_NE(art.find(label), std::string::npos) << label;
  }
}

TEST(Render, ConnectionListShowsEndpoints) {
  const auto cs = gen::fixtures::fig2_connections();
  const auto art = render(cs, 9);
  EXPECT_NE(art.find("c1"), std::string::npos);
  EXPECT_NE(art.find('|'), std::string::npos);
}

TEST(Table, FormatsAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"alpha", Table::num(1.5)});
  t.add_row({"b", Table::num(std::int64_t{42})});
  const auto s = t.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("1.50"), std::string::npos);
  EXPECT_NE(s.find("42"), std::string::npos);
  EXPECT_NE(s.find("-----"), std::string::npos);
}

TEST(Table, RejectsMismatchedRows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), std::invalid_argument);
  EXPECT_THROW(Table({}), std::invalid_argument);
}

}  // namespace
}  // namespace segroute::io
