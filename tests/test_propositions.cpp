// The Section III / Appendix propositions assert structure that EVERY
// valid routing of the constructed instances must exhibit. We verify
// them on routings produced three different ways: the Lemma-1
// construction, the DP router, and (small cases) the LP heuristic.
#include "npc/propositions.h"

#include <gtest/gtest.h>

#include <random>

#include "alg/dp.h"
#include "alg/lp_route.h"
#include "gen/fixtures.h"

namespace segroute::npc {
namespace {

TEST(Propositions, HoldOnTheLemma1RoutingOfExample1) {
  const auto inst = gen::fixtures::example1_nmts();
  const auto q = build_unlimited(inst);
  const auto sol = inst.solve();
  ASSERT_TRUE(sol.has_value());
  const auto r = routing_from_matching(q, inst, *sol);
  ASSERT_TRUE(validate(q.channel, q.connections, r));
  EXPECT_TRUE(check_proposition1(q, r)) << check_proposition1(q, r).violation;
  EXPECT_TRUE(check_proposition3_10(q, inst, r))
      << check_proposition3_10(q, inst, r).violation;
  EXPECT_TRUE(check_lemma2_structure(q, inst, r))
      << check_lemma2_structure(q, inst, r).violation;
}

TEST(Propositions, HoldOnDpRoutingsOfRandomInstances) {
  std::mt19937_64 rng(191);
  for (int iter = 0; iter < 8; ++iter) {
    const int n = 2 + iter % 2;
    const auto inst = random_solvable_nmts(n, rng).normalized();
    const auto q = build_unlimited(inst);
    const auto dp = alg::dp_route_unlimited(q.channel, q.connections);
    ASSERT_TRUE(dp.success) << "iter " << iter;
    EXPECT_TRUE(check_proposition1(q, dp.routing)) << "iter " << iter;
    EXPECT_TRUE(check_proposition3_10(q, inst, dp.routing))
        << "iter " << iter << ": "
        << check_proposition3_10(q, inst, dp.routing).violation;
    EXPECT_TRUE(check_lemma2_structure(q, inst, dp.routing))
        << "iter " << iter << ": "
        << check_lemma2_structure(q, inst, dp.routing).violation;
  }
}

TEST(Propositions, HoldOnLpRoutingsOfExample1) {
  const auto inst = gen::fixtures::example1_nmts();
  const auto q = build_unlimited(inst);
  const auto lp = alg::lp_route(q.channel, q.connections);
  if (!lp.success) GTEST_SKIP() << "LP heuristic failed on Q: " << lp.note;
  ASSERT_TRUE(validate(q.channel, q.connections, lp.routing));
  EXPECT_TRUE(check_proposition1(q, lp.routing));
  EXPECT_TRUE(check_lemma2_structure(q, inst, lp.routing));
}

TEST(Propositions, Proposition12HoldsOnAppendixRoutings) {
  const auto inst = gen::fixtures::example1_nmts();
  const auto q2 = build_two_segment(inst);
  const auto sol = inst.solve();
  ASSERT_TRUE(sol.has_value());
  const auto r = routing_from_matching_two_segment(q2, inst, *sol);
  ASSERT_TRUE(validate(q2.channel, q2.connections, r, 2));
  EXPECT_TRUE(check_proposition12(q2, r))
      << check_proposition12(q2, r).violation;
}

TEST(Propositions, Proposition12HoldsOnDpRoutingsOfQ2) {
  std::mt19937_64 rng(192);
  const auto inst = random_solvable_nmts(2, rng).normalized();
  const auto q2 = build_two_segment(inst);
  const auto dp = alg::dp_route_ksegment(q2.channel, q2.connections, 2);
  ASSERT_TRUE(dp.success);
  EXPECT_TRUE(check_proposition12(q2, dp.routing))
      << check_proposition12(q2, dp.routing).violation;
}

TEST(Propositions, CheckersDetectViolations) {
  const auto inst = gen::fixtures::example1_nmts();
  const auto q = build_unlimited(inst);
  const auto sol = inst.solve();
  auto r = routing_from_matching(q, inst, *sol);
  // Swap an e onto a z-track (invalid routing, but the checker looks at
  // structure only).
  r.assign(q.e[0], 0);
  EXPECT_FALSE(check_proposition1(q, r));
  // Put two b's on one track.
  auto r2 = routing_from_matching(q, inst, *sol);
  r2.assign(q.b[0][0], r2.track_of(q.b[1][1]));
  EXPECT_FALSE(check_proposition3_10(q, inst, r2));
}

}  // namespace
}  // namespace segroute::npc
