// Tests for the hardened routing harness: Budget/BudgetMeter, the
// independent RouteVerifier, fault injection, and the robust_route
// portfolio cascade (including the deadline-honoring acceptance test on a
// DP-hostile instance).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <random>
#include <set>

#include "alg/dp.h"
#include "alg/exhaustive.h"
#include "alg/greedy1.h"
#include "alg/lp_route.h"
#include "core/channel_index.h"
#include "core/routing.h"
#include "core/weights.h"
#include "gen/suite.h"
#include "gen/workload.h"
#include "harness/budget.h"
#include "harness/fault.h"
#include "harness/robust_route.h"
#include "harness/verify.h"

namespace segroute::harness {
namespace {

using alg::FailureKind;

// ---------------------------------------------------------------- Budget

TEST(Budget, UnlimitedNeverExhausts) {
  BudgetMeter m(Budget{});
  for (int i = 0; i < 10'000; ++i) ASSERT_TRUE(m.tick());
  EXPECT_FALSE(m.exhausted());
  EXPECT_EQ(m.stop(), BudgetStop::kNone);
  EXPECT_EQ(m.ticks(), 10'000u);
  EXPECT_TRUE(m.reason().empty());
}

TEST(Budget, TickCapIsExactAndSticky) {
  BudgetMeter m(Budget::with_ticks(100));
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(m.tick()) << i;
  EXPECT_FALSE(m.tick());
  EXPECT_EQ(m.stop(), BudgetStop::kTickLimit);
  EXPECT_FALSE(m.tick());  // sticky
  EXPECT_NE(m.reason().find("work limit"), std::string::npos);
}

TEST(Budget, BulkTicksCountAgainstTheCap) {
  BudgetMeter m(Budget::with_ticks(100));
  EXPECT_TRUE(m.tick(60));
  EXPECT_FALSE(m.tick(60));
  EXPECT_EQ(m.stop(), BudgetStop::kTickLimit);
}

TEST(Budget, ExpiredDeadlineStopsOnFirstTick) {
  BudgetMeter m(Budget::with_deadline(std::chrono::milliseconds(0)));
  EXPECT_FALSE(m.tick());
  EXPECT_EQ(m.stop(), BudgetStop::kDeadline);
  EXPECT_NE(m.reason().find("deadline"), std::string::npos);
}

TEST(Budget, CancellationIsObservedWithinOneInterval) {
  std::atomic<bool> cancel{false};
  BudgetMeter m(Budget::with_cancel(cancel), /*check_interval=*/8);
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(m.tick());
  cancel.store(true);
  bool stopped = false;
  for (int i = 0; i < 8 && !stopped; ++i) stopped = !m.tick();
  EXPECT_TRUE(stopped);
  EXPECT_EQ(m.stop(), BudgetStop::kCancelled);
  cancel.store(false);
  EXPECT_FALSE(m.tick());  // sticky even after the flag clears
}

// ---------------------------------------------------------- RouteVerifier

// A 3-track channel: track 0 unsegmented, track 1 split at 6, track 2
// fully segmented — plus four short connections routed by the exact DP.
struct VerifierFixture {
  SegmentedChannel ch;
  ConnectionSet cs;

  VerifierFixture()
      : ch({Track(12, {}), Track(12, {6}), Track::fully_segmented(12)}) {
    cs.add(1, 5);
    cs.add(7, 12);
    cs.add(2, 9);
    cs.add(6, 6);
  }
};

TEST(RouteVerifier, AcceptsEveryExactRouting) {
  VerifierFixture f;
  const auto r = alg::dp_route_unlimited(f.ch, f.cs);
  ASSERT_TRUE(r.success);
  const RouteVerifier v(f.ch, f.cs);
  const auto ok = v.check(r);
  EXPECT_TRUE(ok) << ok.detail;
  EXPECT_EQ(ok.error, VerifyError::kOk);
}

TEST(RouteVerifier, CatchesSeededOverlap) {
  VerifierFixture f;
  // Connections 0 (1-5) and 2 (2-9) on the same unsegmented track share
  // its single segment.
  Routing r(f.cs.size());
  r.assign(0, 0);
  r.assign(2, 0);
  r.assign(1, 1);
  r.assign(3, 2);
  const RouteVerifier v(f.ch, f.cs);
  const auto res = v.check(r);
  EXPECT_FALSE(res);
  EXPECT_EQ(res.error, VerifyError::kOverlap);
}

TEST(RouteVerifier, CatchesUncoveredSpan) {
  // A connection reaching past the channel width can never be covered.
  SegmentedChannel ch({Track(8, {})});
  ConnectionSet cs;
  cs.add(3, 11);
  Routing r(1);
  r.assign(0, 0);
  const auto res = RouteVerifier(ch, cs).check(r);
  EXPECT_FALSE(res);
  EXPECT_EQ(res.error, VerifyError::kUncoveredSpan);
}

TEST(RouteVerifier, CatchesSegmentLimitViolation) {
  VerifierFixture f;
  // Connection 2 (2-9) on the fully segmented track occupies 8 segments.
  Routing r(f.cs.size());
  r.assign(0, 0);
  r.assign(1, 1);
  r.assign(2, 2);
  r.assign(3, 1);
  VerifyOptions vo;
  vo.max_segments = 2;
  const auto res = RouteVerifier(f.ch, f.cs).check(r, vo);
  EXPECT_FALSE(res);
  EXPECT_EQ(res.error, VerifyError::kSegmentLimit);
}

TEST(RouteVerifier, CatchesMisreportedWeight) {
  VerifierFixture f;
  auto r = alg::dp_route_optimal(f.ch, f.cs, weights::occupied_length());
  ASSERT_TRUE(r.success);
  const RouteVerifier v(f.ch, f.cs);
  VerifyOptions vo;
  vo.weight = weights::occupied_length();
  EXPECT_TRUE(v.check(r, vo));  // honest weight passes
  r.weight += 1.0;              // a router lying about its objective
  const auto res = v.check(r, vo);
  EXPECT_FALSE(res);
  EXPECT_EQ(res.error, VerifyError::kWeightMismatch);
}

TEST(RouteVerifier, CatchesShapeProblems) {
  VerifierFixture f;
  const RouteVerifier v(f.ch, f.cs);
  EXPECT_EQ(v.check(Routing(2)).error, VerifyError::kSizeMismatch);
  EXPECT_EQ(v.check(Routing(f.cs.size())).error, VerifyError::kIncomplete);
  Routing bad(f.cs.size());
  bad.assign(0, 7);  // only 3 tracks exist
  VerifyOptions partial;
  partial.require_complete = false;
  EXPECT_EQ(v.check(bad, partial).error, VerifyError::kBadTrack);
}

TEST(RouteVerifier, PartialRoutingsAllowedWhenRequested) {
  VerifierFixture f;
  Routing r(f.cs.size());
  r.assign(0, 0);
  VerifyOptions vo;
  vo.require_complete = false;
  EXPECT_TRUE(RouteVerifier(f.ch, f.cs).check(r, vo));
}

// --------------------------------------- exhaustive failure distinction

TEST(ExhaustiveFailureKinds, ProvenInfeasibleVsBudgetExhausted) {
  // One unsegmented track, two overlapping connections: provably
  // unroutable, and the tiny search completes.
  SegmentedChannel tiny = SegmentedChannel::unsegmented(1, 10);
  ConnectionSet clash;
  clash.add(1, 5);
  clash.add(3, 8);
  const auto infeasible = alg::exhaustive_route(tiny, clash);
  EXPECT_FALSE(infeasible.success);
  EXPECT_EQ(infeasible.failure, FailureKind::kInfeasible);

  // A routable instance with an absurd branch cap: the search is cut off
  // before it can conclude anything -> kBudgetExhausted, NOT kInfeasible.
  std::mt19937_64 rng(7);
  const auto ch = SegmentedChannel::identical(4, 20, {5, 10, 15});
  const auto cs = gen::routable_workload(ch, 10, 4.0, rng);
  ASSERT_GE(cs.size(), 6);
  alg::ExhaustiveOptions eo;
  eo.max_branches = 2;
  const auto cut = alg::exhaustive_route(ch, cs, eo);
  EXPECT_FALSE(cut.success);
  EXPECT_EQ(cut.failure, FailureKind::kBudgetExhausted);

  // Same distinction via a Budget tick cap.
  alg::ExhaustiveOptions bo;
  bo.budget = Budget::with_ticks(2);
  const auto ticked = alg::exhaustive_route(ch, cs, bo);
  EXPECT_FALSE(ticked.success);
  EXPECT_EQ(ticked.failure, FailureKind::kBudgetExhausted);
}

// -------------------------------------------------------- fault injection

TEST(FaultInjection, StuckClosedSwitchFusesSegments) {
  const auto ch = SegmentedChannel::identical(2, 8, {4});
  const auto out = apply(ch, {{Fault::Kind::kSwitchStuckClosed, 0, 4}});
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->switches_fused, 1);
  EXPECT_EQ(out->tracks_lost, 0);
  EXPECT_EQ(out->channel.num_tracks(), 2);
  EXPECT_EQ(out->channel.track(0).num_segments(), 1);  // fused
  EXPECT_EQ(out->channel.track(1).num_segments(), 2);  // untouched
}

TEST(FaultInjection, DeadSegmentWithdrawsTheTrack) {
  const auto ch = SegmentedChannel::identical(3, 8, {4});
  const auto out = apply(ch, {{Fault::Kind::kSegmentDead, 1, 5}});
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->tracks_lost, 1);
  EXPECT_EQ(out->channel.num_tracks(), 2);
  ASSERT_EQ(out->kept_tracks.size(), 2u);
  EXPECT_EQ(out->kept_tracks[0], 0);
  EXPECT_EQ(out->kept_tracks[1], 2);
}

TEST(FaultInjection, TotalOutageYieldsNullopt) {
  const auto ch = SegmentedChannel::unsegmented(1, 8);
  EXPECT_FALSE(apply(ch, {{Fault::Kind::kSegmentDead, 0, 1}}).has_value());
}

TEST(FaultInjection, SamplingIsDeterministicAndProbabilityOneIsTotal) {
  const auto ch = SegmentedChannel::identical(4, 16, {4, 8, 12});
  FaultPlan plan;
  plan.switch_fail_prob = 0.5;
  plan.seed = 42;
  const auto a = plan.sample(ch);
  const auto b = plan.sample(ch);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].track, b[i].track);
    EXPECT_EQ(a[i].column, b[i].column);
  }
  FaultPlan all;
  all.switch_fail_prob = 1.0;
  EXPECT_EQ(all.sample(ch).size(), 12u);  // every switch of every track
}

TEST(FaultInjection, AllTracksDeadIsATotalOutage) {
  const auto ch = SegmentedChannel::identical(3, 8, {4});
  EXPECT_FALSE(apply(ch, {{Fault::Kind::kSegmentDead, 0, 2},
                          {Fault::Kind::kSegmentDead, 1, 5},
                          {Fault::Kind::kSegmentDead, 2, 8}})
                   .has_value());
}

TEST(FaultInjection, FaultsAtTheLastColumnAreHandled) {
  const auto ch = SegmentedChannel::identical(2, 8, {4});
  // Column 8 is the channel's last column but not a switch position:
  // there is nothing to fuse, so canonicalisation drops the fault.
  EXPECT_TRUE(canonicalize(ch, {{Fault::Kind::kSwitchStuckClosed, 0, 8}})
                  .empty());
  const auto fused = apply(ch, {{Fault::Kind::kSwitchStuckClosed, 0, 8}});
  ASSERT_TRUE(fused.has_value());
  EXPECT_EQ(fused->switches_fused, 0);
  EXPECT_EQ(fused->channel.track(0).num_segments(), 2);

  // A dead segment AT the last column is in range and withdraws the track.
  const auto dead = apply(ch, {{Fault::Kind::kSegmentDead, 0, 8}});
  ASSERT_TRUE(dead.has_value());
  EXPECT_EQ(dead->tracks_lost, 1);
  ASSERT_EQ(dead->kept_tracks.size(), 1u);
  EXPECT_EQ(dead->kept_tracks[0], 1);

  // One past the last column is out of range: dropped, track survives.
  EXPECT_TRUE(canonicalize(ch, {{Fault::Kind::kSegmentDead, 0, 9}}).empty());
  const auto beyond = apply(ch, {{Fault::Kind::kSegmentDead, 0, 9}});
  ASSERT_TRUE(beyond.has_value());
  EXPECT_EQ(beyond->tracks_lost, 0);
  EXPECT_EQ(beyond->channel.num_tracks(), 2);
}

TEST(FaultInjection, StuckClosedOnSingleSegmentTrackIsDropped) {
  const auto ch = SegmentedChannel::unsegmented(1, 8);  // no switches at all
  EXPECT_TRUE(canonicalize(ch, {{Fault::Kind::kSwitchStuckClosed, 0, 4}})
                  .empty());
  const auto out = apply(ch, {{Fault::Kind::kSwitchStuckClosed, 0, 4}});
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->switches_fused, 0);
  EXPECT_EQ(out->channel.track(0).num_segments(), 1);
}

TEST(FaultInjection, EmptyPlanRoundTripsBitIdentically) {
  const auto ch = SegmentedChannel::identical(3, 12, {4, 8});
  FaultPlan plan;  // both probabilities zero
  const auto faults = plan.sample(ch);
  EXPECT_TRUE(faults.empty());
  const auto out = harness::apply(ch, faults);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->switches_fused, 0);
  EXPECT_EQ(out->tracks_lost, 0);
  ASSERT_EQ(out->kept_tracks.size(), 3u);
  for (TrackId t = 0; t < 3; ++t) EXPECT_EQ(out->kept_tracks[t], t);
  // The surviving channel is structurally bit-identical to the original.
  EXPECT_EQ(ChannelIndex(ch).fingerprint(),
            ChannelIndex(out->channel).fingerprint());
}

TEST(FaultInjection, DuplicateFaultsCannotInflateTheCounters) {
  const auto ch = SegmentedChannel::identical(2, 8, {4});
  const std::vector<Fault> once = {{Fault::Kind::kSwitchStuckClosed, 0, 4}};
  const std::vector<Fault> thrice = {{Fault::Kind::kSwitchStuckClosed, 0, 4},
                                     {Fault::Kind::kSwitchStuckClosed, 0, 4},
                                     {Fault::Kind::kSwitchStuckClosed, 0, 4}};
  EXPECT_EQ(canonicalize(ch, thrice).size(), 1u);
  const auto a = harness::apply(ch, once);
  const auto b = harness::apply(ch, thrice);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->switches_fused, 1);
  EXPECT_EQ(b->switches_fused, 1);  // dedup: one physical defect
  EXPECT_EQ(a->channel.track(0).num_segments(),
            b->channel.track(0).num_segments());

  // Two dead-segment faults in the SAME segment are one defect; a
  // stuck-closed fault on a withdrawn track is not a distinct defect.
  const std::vector<Fault> overlapping = {
      {Fault::Kind::kSegmentDead, 0, 2},
      {Fault::Kind::kSegmentDead, 0, 3},  // same segment as column 2
      {Fault::Kind::kSwitchStuckClosed, 0, 4}};
  EXPECT_EQ(canonicalize(ch, overlapping).size(), 1u);
  const auto c = harness::apply(ch, overlapping);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->tracks_lost, 1);
  EXPECT_EQ(c->switches_fused, 0);
}

// ----------------------------------------------------------- robust_route

TEST(RobustRoute, RoutesEasyInstanceWithTheExactStage) {
  const auto ch = SegmentedChannel::identical(4, 12, {6});
  ConnectionSet cs;
  cs.add(1, 4);
  cs.add(8, 12);
  cs.add(2, 6);
  const auto rep = robust_route(ch, cs);
  ASSERT_TRUE(rep.success);
  EXPECT_EQ(rep.winner, "dp");
  ASSERT_FALSE(rep.stages.empty());
  EXPECT_TRUE(rep.stages.front().verified);
  EXPECT_TRUE(validate(ch, cs, rep.routing));
}

TEST(RobustRoute, ExactInfeasibilityProofStopsTheCascade) {
  SegmentedChannel ch = SegmentedChannel::unsegmented(1, 10);
  ConnectionSet cs;
  cs.add(1, 5);
  cs.add(3, 8);
  const auto rep = robust_route(ch, cs);
  EXPECT_FALSE(rep.success);
  EXPECT_EQ(rep.failure, FailureKind::kInfeasible);
  EXPECT_EQ(rep.stages.size(), 1u);  // dp proves it; nothing else runs
  EXPECT_EQ(rep.stages.front().router, "dp");
}

TEST(RobustRoute, OutOfEnvelopeStageReportsInvalidInput) {
  // greedy2track's capability envelope (<= 2 segments per track) is
  // violated: the registry dispatcher must surface a structured
  // kInvalidInput, never an exception.
  const auto ch = SegmentedChannel::identical(2, 12, {3, 6, 9});
  ConnectionSet cs;
  cs.add(1, 2);
  RobustOptions o;
  o.stages = {{"greedy2track", {}}};
  const auto rep = robust_route(ch, cs, o);
  EXPECT_FALSE(rep.success);
  EXPECT_EQ(rep.failure, FailureKind::kInvalidInput);
  ASSERT_EQ(rep.stages.size(), 1u);
  EXPECT_EQ(rep.stages.front().failure, FailureKind::kInvalidInput);
}

TEST(RobustRoute, OptimizingModeMatchesTheExactOptimum) {
  std::mt19937_64 rng(11);
  const auto ch = SegmentedChannel::identical(4, 16, {4, 8, 12});
  const auto cs = gen::routable_workload(ch, 8, 4.0, rng);
  ASSERT_GT(cs.size(), 0);
  RobustOptions o;
  o.weight = weights::occupied_length();
  const auto rep = robust_route(ch, cs, o);
  ASSERT_TRUE(rep.success);
  const auto exact =
      alg::dp_route_optimal(ch, cs, weights::occupied_length());
  ASSERT_TRUE(exact.success);
  EXPECT_NEAR(rep.weight, exact.weight, 1e-9);
}

TEST(RobustRoute, FaultInjectionForcesAVerifiedReroute) {
  const auto ch = SegmentedChannel::identical(4, 12, {6});
  ConnectionSet cs;
  cs.add(1, 4);
  cs.add(8, 12);
  RobustOptions o;
  o.faults = FaultPlan{/*switch_fail_prob=*/1.0, /*segment_fail_prob=*/0.0,
                       /*seed=*/3};
  const auto rep = robust_route(ch, cs, o);
  ASSERT_TRUE(rep.success);
  EXPECT_TRUE(rep.faults_applied);
  EXPECT_EQ(rep.switches_fused, 4);  // every track's switch fused
  // The degraded channel is unsegmented, so the two overlapping-free
  // connections must land on distinct tracks of the *original* channel.
  EXPECT_TRUE(validate(ch, cs, rep.routing));
}

TEST(RobustRoute, TotalOutageDegradesToStructuredFailure) {
  const auto ch = SegmentedChannel::identical(2, 8, {4});
  ConnectionSet cs;
  cs.add(1, 3);
  RobustOptions o;
  o.faults = FaultPlan{0.0, 1.0, 5};  // every segment dead
  const auto rep = robust_route(ch, cs, o);
  EXPECT_FALSE(rep.success);
  EXPECT_EQ(rep.failure, FailureKind::kInfeasible);
  EXPECT_EQ(rep.tracks_lost, 2);
  EXPECT_TRUE(rep.stages.empty());
}

// The acceptance test: a DP-hostile channel (every track segmented
// differently, defeating Theorem-7 type canonicalization) with a workload
// that is routable by construction with 1-segment assignments. The exact
// DP cannot finish within the deadline; the cascade must fall back to a
// verified heuristic routing and honor the 50 ms deadline within 2x.
TEST(RobustRoute, DeadlineHonoredWithGracefulFallback) {
  const Column width = 160;
  const TrackId T = 18;
  std::mt19937_64 rng(20260806);
  std::vector<Track> tracks;
  for (TrackId t = 0; t < T; ++t) {
    // Pairwise-distinct segmentations: offset-striped cuts. The raw DP
    // needs seconds on this instance (~1.4M assignment-graph nodes).
    std::set<Column> cuts;
    for (Column c = 2 + t, k = 0; c < width; c += 2 + ((t + k) % 4), ++k) {
      cuts.insert(c);
    }
    tracks.emplace_back(width, std::vector<Column>(cuts.begin(), cuts.end()));
  }
  const SegmentedChannel ch(std::move(tracks));
  // max_segments=1 guarantees a 1-segment witness: greedy1 will succeed.
  const auto cs = gen::routable_workload(ch, 120, 6.0, rng, /*max_segments=*/1);
  ASSERT_GE(cs.size(), 80);

  RobustOptions o;
  o.deadline = std::chrono::milliseconds(50);
  const auto t0 = std::chrono::steady_clock::now();
  const auto rep = robust_route(ch, cs, o);
  const double wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                t0)
          .count();

  ASSERT_TRUE(rep.success) << rep.note;
  ASSERT_GE(rep.stages.size(), 2u);
  EXPECT_EQ(rep.stages.front().router, "dp");
  EXPECT_EQ(rep.stages.front().failure, FailureKind::kBudgetExhausted)
      << rep.stages.front().note;
  EXPECT_NE(rep.winner, "dp");
  // Deadline honored within 2x.
  EXPECT_LE(wall_ms, 100.0);
  // The fallback answer is independently verified and genuinely valid.
  EXPECT_TRUE(validate(ch, cs, rep.routing));
}

TEST(RobustRoute, CancellationShortCircuitsEveryStage) {
  const Column width = 96;
  const TrackId T = 14;
  std::mt19937_64 rng(99);
  std::vector<Track> tracks;
  for (TrackId t = 0; t < T; ++t) {
    std::set<Column> cuts;
    for (Column c = 2 + t; c < width; c += 3 + (t % 5)) cuts.insert(c);
    tracks.emplace_back(width, std::vector<Column>(cuts.begin(), cuts.end()));
  }
  const SegmentedChannel ch(std::move(tracks));
  const auto cs = gen::routable_workload(ch, 48, 5.0, rng);
  std::atomic<bool> cancel{true};  // pre-cancelled
  RobustOptions o;
  o.cancel = &cancel;
  const auto rep = robust_route(ch, cs, o);
  // The budgeted stages stop immediately; the un-budgeted 1-segment
  // stages may still answer — either way the call returns promptly and
  // any success is verified.
  for (const auto& s : rep.stages) {
    if (s.router == "dp") {
      EXPECT_EQ(s.failure, FailureKind::kBudgetExhausted);
    }
  }
}

// ---------------------------------------------- verification property

// Every successful router result across the frozen suite passes the
// independent verifier (and in optimizing mode, reports its true weight).
TEST(VerificationProperty, SuiteResultsAllPassIndependentVerification) {
  for (const auto& inst : gen::standard_suite()) {
    const RouteVerifier v(inst.channel, inst.connections);
    const auto check_ok = [&](const alg::RouteResult& r, const char* who,
                              VerifyOptions vo = {}) {
      if (!r.success) return;
      const auto res = v.check(r, vo);
      EXPECT_TRUE(res) << inst.name << " / " << who << ": " << res.detail;
    };
    check_ok(alg::dp_route_unlimited(inst.channel, inst.connections), "dp");
    check_ok(alg::greedy1_route(inst.channel, inst.connections), "greedy1");
    check_ok(alg::lp_route(inst.channel, inst.connections), "lp");
    VerifyOptions wo;
    wo.weight = weights::occupied_length();
    check_ok(alg::dp_route_optimal(inst.channel, inst.connections,
                                   weights::occupied_length()),
             "dp-optimal", wo);
  }
}

}  // namespace
}  // namespace segroute::harness
