# Configure, build and run the ThreadSanitizer smoke subset
# (segroute_tsan_tests = test_parallel + test_engine) in a dedicated
# sub-build with SEGROUTE_SANITIZE=thread. Invoked by the `tsan_smoke`
# ctest with -DSOURCE_DIR, -DBUILD_DIR and -DCXX_COMPILER.

execute_process(
  COMMAND "${CMAKE_COMMAND}" -S "${SOURCE_DIR}" -B "${BUILD_DIR}"
          -DCMAKE_CXX_COMPILER=${CXX_COMPILER}
          -DCMAKE_BUILD_TYPE=RelWithDebInfo
          -DSEGROUTE_SANITIZE=thread
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "tsan_smoke: configure failed (${rc})")
endif()

execute_process(
  COMMAND "${CMAKE_COMMAND}" --build "${BUILD_DIR}"
          --target segroute_tsan_tests --parallel
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "tsan_smoke: build failed (${rc})")
endif()

execute_process(
  COMMAND "${BUILD_DIR}/tests/segroute_tsan_tests"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "tsan_smoke: segroute_tsan_tests failed (${rc}) — "
                      "ThreadSanitizer report above")
endif()
