#include "alg/lp_route.h"

#include <gtest/gtest.h>

#include <random>

#include "alg/dp.h"
#include "core/routing.h"
#include "gen/fixtures.h"
#include "gen/segmentation.h"
#include "gen/workload.h"

namespace segroute::alg {
namespace {

TEST(LpRoute, RoutesFig3) {
  const auto ch = gen::fixtures::fig3_channel();
  const auto cs = gen::fixtures::fig3_connections();
  const auto r = lp_route(ch, cs);
  ASSERT_TRUE(r.success) << r.note;
  EXPECT_TRUE(validate(ch, cs, r.routing));
  EXPECT_NEAR(r.stats.lp_objective, cs.size(), 1e-6);
}

TEST(LpRoute, AgreesWithDpOnRandomInstances) {
  std::mt19937_64 rng(81);
  int yes = 0, no = 0;
  for (int iter = 0; iter < 60; ++iter) {
    const auto ch = gen::staggered_segmentation(4, 20, 5);
    const auto cs = gen::geometric_workload(
        3 + static_cast<int>(rng() % 6), 20, 4.0, rng);
    const bool dp_ok = dp_route_unlimited(ch, cs).success;
    const auto lp = lp_route(ch, cs);
    if (lp.success) {
      EXPECT_TRUE(dp_ok) << "iter " << iter;  // LP can never invent routings
      EXPECT_TRUE(validate(ch, cs, lp.routing)) << "iter " << iter;
      ++yes;
    } else {
      // The heuristic may fail on feasible instances in principle, but the
      // relaxation bound is exact for infeasibility: obj < M proves it.
      if (lp.stats.lp_objective < cs.size() - 1e-6) {
        EXPECT_FALSE(dp_ok) << "iter " << iter;
      }
      ++no;
    }
  }
  EXPECT_GT(yes, 0);
  EXPECT_GT(no, 0);
}

TEST(LpRoute, KSegmentVariantDropsForbiddenVariables) {
  std::mt19937_64 rng(82);
  for (int iter = 0; iter < 30; ++iter) {
    const auto ch = gen::uniform_segmentation(4, 20, 4);
    const auto cs = gen::geometric_workload(
        2 + static_cast<int>(rng() % 5), 20, 3.5, rng);
    LpRouteOptions o;
    o.max_segments = 1;
    const auto r = lp_route(ch, cs, o);
    if (r.success) {
      EXPECT_TRUE(validate(ch, cs, r.routing, 1)) << "iter " << iter;
    } else {
      EXPECT_FALSE(dp_route_ksegment(ch, cs, 1).success) << "iter " << iter;
    }
  }
}

TEST(LpRoute, DetectsInfeasibilityViaRelaxationBound) {
  const auto ch = SegmentedChannel::identical(1, 9, {4});
  ConnectionSet cs;
  cs.add(1, 2);
  cs.add(3, 4);  // same segment of the single track
  const auto r = lp_route(ch, cs);
  EXPECT_FALSE(r.success);
  EXPECT_LT(r.stats.lp_objective, 2.0 - 1e-6);
}

TEST(LpRoute, EmptyInputSucceeds) {
  const auto ch = SegmentedChannel::identical(1, 5, {});
  EXPECT_TRUE(lp_route(ch, ConnectionSet{}).success);
}

TEST(LpRoute, PaperScaleInstanceIsIntegralAndRoutable) {
  // Section IV-C reports simulations at M = 60, T = 25 where the plain
  // relaxation almost always lands on a 0-1 vertex. Build a
  // routable-by-construction instance at that scale: the LP must route it
  // and its relaxation objective must reach M.
  std::mt19937_64 rng(83);
  const Column width = 100;
  const auto ch = gen::staggered_segmentation(25, width, 20);
  const auto cs = gen::routable_workload(ch, 60, 12.0, rng);
  ASSERT_EQ(cs.size(), 60);
  const auto lp = lp_route(ch, cs);
  EXPECT_TRUE(lp.success) << lp.note;
  EXPECT_NEAR(lp.stats.lp_objective, 60.0, 1e-6);
  if (lp.success) {
    EXPECT_TRUE(validate(ch, cs, lp.routing));
  }
}

TEST(LpRoute, RoundingPassesAreBounded) {
  std::mt19937_64 rng(84);
  const auto ch = gen::staggered_segmentation(6, 30, 6);
  const auto cs = gen::geometric_workload(12, 30, 5.0, rng);
  LpRouteOptions o;
  o.max_rounding_passes = 0;  // pure relaxation
  const auto r = lp_route(ch, cs, o);
  EXPECT_EQ(r.stats.rounding_passes, 0);
  // With rounding disabled, success requires the relaxation itself to be
  // integral.
  if (r.success) {
    EXPECT_TRUE(r.stats.lp_integral);
  }
}

}  // namespace
}  // namespace segroute::alg
