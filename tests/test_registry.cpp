// Registry-driven property tests (the router contract, checked for every
// registered router at once) plus the bit-identity guard pinning the
// registry adapters to the legacy free functions.
//
// The properties:
//   - enumeration: names are unique, find_router round-trips, unknown
//     names come back kInvalidInput (never a throw);
//   - uniform pre-checks: null channel/connections, negative K, weight
//     mismatches are kInvalidInput for every router;
//   - capability envelopes are enforced: a channel outside a router's
//     accepted shape (needs_identical_tracks, needs_le2...) is rejected
//     as kInvalidInput, and inside the envelope no router ever reports
//     kInvalidInput on a well-formed request;
//   - every successful routing, from every router, on every fixture,
//     passes the independent RouteVerifier;
//   - exact routers agree on the success bit (dp is the oracle; the
//     K=1 specialists agree with each other).
#include "alg/registry.h"

#include <gtest/gtest.h>

#include <optional>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "alg/dp.h"
#include "alg/greedy1.h"
#include "alg/left_edge.h"
#include "alg/match1.h"
#include "core/router.h"
#include "core/routing.h"
#include "core/weights.h"
#include "gen/segmentation.h"
#include "gen/suite.h"
#include "gen/workload.h"
#include "harness/verify.h"

namespace segroute::alg {
namespace {

struct Fixture {
  std::string name;
  SegmentedChannel channel;
  ConnectionSet connections;
};

/// Random fixtures spanning the capability envelopes: identical 2-segment
/// channels (every router's domain), identical many-segment channels
/// (outside greedy2track's), and staggered channels (outside left_edge's
/// and greedy2track's). Deterministic seeds; small enough that even the
/// exhaustive oracle finishes instantly.
std::vector<Fixture> fixtures() {
  std::vector<Fixture> out;
  {
    const auto ch = SegmentedChannel::identical(3, 12, {6});
    std::mt19937_64 rng(101);
    out.push_back({"identical-2seg", ch, gen::routable_workload(ch, 5, 4.0, rng)});
  }
  {
    const auto ch = SegmentedChannel::identical(4, 16, {4, 8, 12});
    std::mt19937_64 rng(102);
    out.push_back({"identical-4seg", ch, gen::routable_workload(ch, 6, 4.0, rng)});
  }
  {
    const auto ch = gen::staggered_segmentation(4, 18, 5);
    std::mt19937_64 rng(103);
    out.push_back({"staggered", ch, gen::routable_workload(ch, 6, 4.0, rng)});
  }
  {
    // Overloaded: more nets in one column than tracks — unroutable, so
    // exact routers must prove infeasibility, not misreport it.
    const auto ch = SegmentedChannel::identical(2, 10, {5});
    ConnectionSet cs;
    cs.add(2, 4);
    cs.add(2, 4);
    cs.add(3, 4);
    out.push_back({"overloaded", ch, cs});
  }
  return out;
}

/// In-envelope request for `e` on the fixture (a weight only when the
/// router demands one).
RouteRequest make_request(const RouterEntry& e, const Fixture& f,
                          const std::optional<WeightFn>& w) {
  RouteRequest rq;
  rq.channel = &f.channel;
  rq.connections = &f.connections;
  if (e.caps.requires_weight) rq.options.weight = w;
  return rq;
}

bool in_envelope(const RouterEntry& e, const SegmentedChannel& ch) {
  if (e.caps.needs_identical_tracks && !ch.identically_segmented()) {
    return false;
  }
  if (e.caps.needs_le2_segments_per_track && ch.max_segments_per_track() > 2) {
    return false;
  }
  return true;
}

TEST(Registry, EnumerationAndLookup) {
  const auto& entries = registry();
  ASSERT_GE(entries.size(), 11u);
  std::set<std::string> names;
  for (const RouterEntry& e : entries) {
    ASSERT_NE(e.name, nullptr);
    ASSERT_NE(e.route, nullptr);
    EXPECT_TRUE(names.insert(e.name).second) << "duplicate name " << e.name;
    const RouterEntry* found = find_router(e.name);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found, &e);
  }
  // The routers the paper's consumers hard-code by name must exist.
  for (const char* required :
       {"dp", "greedy1", "match1", "greedy2track", "left_edge", "lp", "anneal",
        "branch_bound", "exhaustive", "online", "express", "partial"}) {
    EXPECT_NE(find_router(required), nullptr) << required;
  }
  EXPECT_EQ(find_router("no-such-router"), nullptr);
}

TEST(Registry, UnknownNameIsInvalidInputNotAThrow) {
  const auto f = fixtures().front();
  RouteRequest rq;
  rq.channel = &f.channel;
  rq.connections = &f.connections;
  const auto r = route("no-such-router", rq);
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.failure, FailureKind::kInvalidInput);
  EXPECT_NE(r.note.find("no-such-router"), std::string::npos);
  // The note names the known routers, so a typo is self-diagnosing.
  EXPECT_NE(r.note.find("known:"), std::string::npos);
  EXPECT_NE(r.note.find("dp"), std::string::npos);
}

TEST(Registry, UniformPreChecksRejectMalformedRequests) {
  const auto f = fixtures().front();
  const auto w = weights::occupied_length();
  for (const RouterEntry& e : registry()) {
    {
      RouteRequest rq;  // null channel and connections
      const auto r = route(e, rq);
      EXPECT_EQ(r.failure, FailureKind::kInvalidInput) << e.name;
    }
    {
      RouteRequest rq = make_request(e, f, w);
      rq.connections = nullptr;
      const auto r = route(e, rq);
      EXPECT_EQ(r.failure, FailureKind::kInvalidInput) << e.name;
    }
    {
      RouteRequest rq = make_request(e, f, w);
      rq.options.max_segments = -1;
      const auto r = route(e, rq);
      EXPECT_EQ(r.failure, FailureKind::kInvalidInput) << e.name;
    }
    if (!e.caps.supports_weight) {
      RouteRequest rq = make_request(e, f, w);
      rq.options.weight = w;
      const auto r = route(e, rq);
      EXPECT_EQ(r.failure, FailureKind::kInvalidInput) << e.name;
    }
    if (e.caps.requires_weight) {
      RouteRequest rq = make_request(e, f, w);
      rq.options.weight.reset();
      const auto r = route(e, rq);
      EXPECT_EQ(r.failure, FailureKind::kInvalidInput) << e.name;
    }
  }
}

// The central property: over every fixture x every router,
//   - out-of-envelope channels are kInvalidInput;
//   - in-envelope requests never are;
//   - every success passes independent verification;
//   - exact unlimited routers agree with the DP oracle, and the K=1
//     specialists agree with each other.
TEST(Registry, PropertySweepHonorsCapabilitiesAndVerifies) {
  const auto w = weights::occupied_length();
  for (const Fixture& f : fixtures()) {
    const harness::RouteVerifier v(f.channel, f.connections);
    const bool oracle =
        dp_route_unlimited(f.channel, f.connections).success;
    const bool oracle_k1 =
        dp_route_ksegment(f.channel, f.connections, 1).success;
    for (const RouterEntry& e : registry()) {
      const RouteRequest rq = make_request(e, f, w);
      const RouteResult r = route(e, rq);
      if (!in_envelope(e, f.channel)) {
        EXPECT_EQ(r.failure, FailureKind::kInvalidInput)
            << f.name << " / " << e.name;
        continue;
      }
      EXPECT_NE(r.failure, FailureKind::kInvalidInput)
          << f.name << " / " << e.name << ": " << r.note;
      EXPECT_NE(r.failure, FailureKind::kInternal)
          << f.name << " / " << e.name << ": " << r.note;
      if (r.success) {
        const auto check = v.check(r);
        EXPECT_TRUE(check) << f.name << " / " << e.name << ": "
                           << check.detail;
        // A success from anyone refutes an infeasibility claim by an
        // exact router; covered below by the oracle comparison.
        EXPECT_FALSE(e.caps.exact && !e.caps.k1_only && !oracle)
            << f.name << " / " << e.name << " routed an instance the DP "
            << "oracle proves infeasible";
      } else if (e.caps.exact && r.failure == FailureKind::kInfeasible) {
        // Exact + completed search = proof of infeasibility on the
        // router's domain: unlimited for the general routers, K=1 for
        // the specialists.
        if (e.caps.k1_only) {
          EXPECT_FALSE(oracle_k1) << f.name << " / " << e.name;
        } else {
          EXPECT_FALSE(oracle) << f.name << " / " << e.name;
        }
      }
      // Exact routers of the full problem must match the oracle's
      // success bit exactly (anytime routers could in principle stop
      // early, but these fixtures are far below their default budgets).
      if (e.caps.exact && !e.caps.k1_only) {
        EXPECT_EQ(r.success, oracle) << f.name << " / " << e.name;
      }
      if (e.caps.exact && e.caps.k1_only) {
        EXPECT_EQ(r.success, oracle_k1) << f.name << " / " << e.name;
      }
    }
  }
}

// Satellite guard: the registry path must be bit-identical to the legacy
// free functions — same success, failure kind, routing, and weight — on
// the frozen suite plus the local fixtures. The registry adapters build
// their options from defaults; any drift (a changed default, a dropped
// context) breaks this pin.
TEST(Registry, BitIdenticalToLegacyWrappers) {
  const auto w = weights::occupied_length();
  const auto same = [](const RouteResult& a, const RouteResult& b) {
    return a.success == b.success && a.failure == b.failure &&
           a.weight == b.weight && a.routing == b.routing;
  };

  std::vector<Fixture> all = fixtures();
  for (auto& inst : gen::standard_suite()) {
    all.push_back({inst.name, inst.channel, inst.connections});
  }

  for (const Fixture& f : all) {
    RouteRequest rq;
    rq.channel = &f.channel;
    rq.connections = &f.connections;

    EXPECT_TRUE(same(route("dp", rq),
                     dp_route_unlimited(f.channel, f.connections)))
        << f.name << " / dp";
    EXPECT_TRUE(same(route("greedy1", rq),
                     greedy1_route(f.channel, f.connections)))
        << f.name << " / greedy1";
    EXPECT_TRUE(same(route("match1", rq),
                     match1_route(f.channel, f.connections)))
        << f.name << " / match1";
    EXPECT_TRUE(same(route("left_edge", rq),
                     left_edge_route(f.channel, f.connections)))
        << f.name << " / left_edge";

    RouteRequest k2 = rq;
    k2.options.max_segments = 2;
    EXPECT_TRUE(same(route("dp", k2),
                     dp_route_ksegment(f.channel, f.connections, 2)))
        << f.name << " / dp k2";

    RouteRequest wd = rq;
    wd.options.weight = w;
    EXPECT_TRUE(same(route("dp", wd),
                     dp_route_optimal(f.channel, f.connections, w)))
        << f.name << " / dp weighted";
    EXPECT_TRUE(same(route("match1", wd),
                     match1_route_optimal(f.channel, f.connections, w)))
        << f.name << " / match1 weighted";
  }
}

// With a prebuilt index and scratch in the request (the engine's steady
// state), results still match the context-free path bit for bit.
TEST(Registry, SharedContextDoesNotChangeResults) {
  for (const Fixture& f : fixtures()) {
    const ChannelIndex index(f.channel);
    Occupancy occ(f.channel);
    DpWorkspace ws;
    for (const char* name : {"dp", "greedy1", "match1"}) {
      RouteRequest plain;
      plain.channel = &f.channel;
      plain.connections = &f.connections;
      RouteRequest shared = plain;
      shared.context.index = &index;
      shared.context.occupancy = &occ;
      shared.dp_workspace = &ws;
      const auto a = route(name, plain);
      const auto b = route(name, shared);
      EXPECT_EQ(a.success, b.success) << f.name << " / " << name;
      EXPECT_EQ(a.failure, b.failure) << f.name << " / " << name;
      EXPECT_EQ(a.weight, b.weight) << f.name << " / " << name;
      EXPECT_TRUE(a.routing == b.routing) << f.name << " / " << name;
    }
  }
}

TEST(Registry, CapabilityTableCoversEveryRouter) {
  const std::string table = capability_table().str();
  for (const RouterEntry& e : registry()) {
    EXPECT_NE(table.find(e.name), std::string::npos) << e.name;
  }
}

}  // namespace
}  // namespace segroute::alg
