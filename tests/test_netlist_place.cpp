#include <gtest/gtest.h>

#include <random>

#include "fpga/netlist.h"
#include "fpga/place.h"

namespace segroute::fpga {
namespace {

TEST(Netlist, ValidatesNets) {
  EXPECT_THROW(Netlist(0, {}), std::invalid_argument);
  EXPECT_THROW(Netlist(4, {CellNet{{1}, "one-pin"}}), std::invalid_argument);
  EXPECT_THROW(Netlist(4, {CellNet{{1, 4}, "oob"}}), std::invalid_argument);
  EXPECT_THROW(Netlist(4, {CellNet{{1, 1}, "dup"}}), std::invalid_argument);
  EXPECT_NO_THROW(Netlist(4, {CellNet{{0, 3}, "ok"}}));
}

TEST(Netlist, RandomNetlistHonorsParameters) {
  std::mt19937_64 rng(131);
  const auto nl = random_netlist(40, 25, 4, 8, rng);
  EXPECT_EQ(nl.num_cells(), 40);
  EXPECT_EQ(nl.num_nets(), 25);
  for (const CellNet& n : nl.nets()) {
    EXPECT_GE(n.cells.size(), 2u);
    EXPECT_LE(n.cells.size(), 4u);
    // Locality: every net fits in an 8-wide id window.
    const auto [lo, hi] = std::minmax_element(n.cells.begin(), n.cells.end());
    EXPECT_LE(*hi - *lo, 8);
  }
}

TEST(Netlist, RandomNetlistRejectsBadParameters) {
  std::mt19937_64 rng(132);
  EXPECT_THROW(random_netlist(1, 5, 3, 4, rng), std::invalid_argument);
  EXPECT_THROW(random_netlist(10, 5, 1, 4, rng), std::invalid_argument);
  EXPECT_THROW(random_netlist(10, 5, 3, 1, rng), std::invalid_argument);
}

TEST(Placement, SequentialFillsRowMajor) {
  const Netlist nl(6, {CellNet{{0, 5}, ""}});
  const auto p = sequential_placement(nl, 2, 3);
  EXPECT_EQ(p.row_of(0), 0);
  EXPECT_EQ(p.slot_of(0), 0);
  EXPECT_EQ(p.row_of(3), 1);
  EXPECT_EQ(p.slot_of(5), 2);
}

TEST(Placement, GridMustFitTheCells) {
  const Netlist nl(6, {});
  EXPECT_THROW(sequential_placement(nl, 1, 3), std::invalid_argument);
  std::mt19937_64 rng(133);
  EXPECT_THROW(random_placement(nl, 2, 2, rng), std::invalid_argument);
}

TEST(Placement, RandomPlacementIsAPermutation) {
  std::mt19937_64 rng(134);
  const Netlist nl(10, {});
  const auto p = random_placement(nl, 3, 4, rng);
  std::set<std::pair<int, int>> seen;
  for (int c = 0; c < 10; ++c) {
    EXPECT_GE(p.row_of(c), 0);
    EXPECT_LT(p.row_of(c), 3);
    EXPECT_GE(p.slot_of(c), 0);
    EXPECT_LT(p.slot_of(c), 4);
    EXPECT_TRUE(seen.emplace(p.row_of(c), p.slot_of(c)).second);
  }
}

TEST(Placement, HpwlIsZeroForCoincidentRowsAndAdjacent) {
  const Netlist nl(2, {CellNet{{0, 1}, ""}});
  Placement p;
  p.rows = 1;
  p.slots_per_row = 2;
  p.pos = {{0, 0}, {0, 1}};
  EXPECT_DOUBLE_EQ(hpwl(nl, p), 1.0);
  p.pos = {{0, 0}, {0, 0}};  // degenerate, same slot (not valid placement,
                             // but hpwl is pure geometry)
  EXPECT_DOUBLE_EQ(hpwl(nl, p), 0.0);
}

TEST(Placement, RowWeightScalesVerticalSpans) {
  const Netlist nl(2, {CellNet{{0, 1}, ""}});
  Placement p;
  p.rows = 3;
  p.slots_per_row = 2;
  p.pos = {{0, 0}, {2, 0}};
  EXPECT_DOUBLE_EQ(hpwl(nl, p, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(hpwl(nl, p, 5.0), 10.0);
}

TEST(Placement, AnnealNeverWorsensTheBestPlacement) {
  std::mt19937_64 rng(135);
  const auto nl = random_netlist(48, 60, 4, 6, rng);
  const auto start = random_placement(nl, 4, 12, rng);
  const double before = hpwl(nl, start, 2.0);
  AnnealOptions opts;
  opts.iterations = 8000;
  const auto after = anneal_placement(nl, start, rng, opts);
  EXPECT_LE(hpwl(nl, after, 2.0), before);
}

TEST(Placement, AnnealRecoversLocalityStructure) {
  // Nets are drawn from narrow id windows; a good placement should get
  // close to the sequential one and far below a random one.
  std::mt19937_64 rng(136);
  const auto nl = random_netlist(48, 80, 3, 4, rng);
  const double sequential = hpwl(nl, sequential_placement(nl, 4, 12), 2.0);
  const auto rand_p = random_placement(nl, 4, 12, rng);
  const double randomized = hpwl(nl, rand_p, 2.0);
  AnnealOptions opts;
  opts.iterations = 40000;
  const double annealed = hpwl(nl, anneal_placement(nl, rand_p, rng, opts), 2.0);
  EXPECT_LT(annealed, randomized);
  // Within 2x of the (near-ideal) sequential placement.
  EXPECT_LT(annealed, 2.0 * sequential + 10.0);
}

}  // namespace
}  // namespace segroute::fpga
