#include "alg/online.h"

#include <gtest/gtest.h>

#include <map>
#include <random>
#include <vector>

#include "alg/dp.h"
#include "gen/segmentation.h"
#include "gen/workload.h"

namespace segroute::alg {
namespace {

SegmentedChannel small_channel() {
  // t0: (1,4)(5,9); t1: (1,6)(7,9)
  return SegmentedChannel({Track(9, {4}), Track(9, {6})});
}

TEST(OnlineRouter, InsertPlacesAndSnapshotValidates) {
  OnlineRouter r(small_channel());
  const auto a = r.insert(1, 3, "a");
  const auto b = r.insert(5, 9, "b");
  ASSERT_TRUE(a && b);
  EXPECT_EQ(r.num_placed(), 2);
  const auto [cs, routing] = r.snapshot();
  EXPECT_TRUE(validate(r.channel(), cs, routing));
}

TEST(OnlineRouter, BestFitPrefersTheSnuggerSegment) {
  OnlineRouter r(small_channel(), OnlineRouter::Policy::BestFit);
  const auto id = r.insert(1, 3);
  ASSERT_TRUE(id);
  EXPECT_EQ(r.track_of(*id), 0);  // segment (1,4) beats (1,6)
}

TEST(OnlineRouter, FirstFitTakesTheLowestTrack) {
  const auto ch = SegmentedChannel({Track(9, {6}), Track(9, {4})});
  OnlineRouter r(ch, OnlineRouter::Policy::FirstFit);
  const auto id = r.insert(1, 3);
  ASSERT_TRUE(id);
  EXPECT_EQ(r.track_of(*id), 0);  // even though track 1 is snugger
}

TEST(OnlineRouter, InsertFailsWhenFull) {
  OnlineRouter r(small_channel());
  ASSERT_TRUE(r.insert(1, 3));   // t0 (1,4)
  ASSERT_TRUE(r.insert(2, 4));   // t1 (1,6)
  EXPECT_FALSE(r.insert(3, 3).has_value());
  EXPECT_EQ(r.num_placed(), 2);
}

TEST(OnlineRouter, RemoveFreesCapacity) {
  OnlineRouter r(small_channel());
  const auto a = r.insert(1, 3);
  ASSERT_TRUE(r.insert(2, 4));
  ASSERT_FALSE(r.insert(3, 3));
  r.remove(*a);
  EXPECT_EQ(r.num_placed(), 1);
  EXPECT_FALSE(r.is_placed(*a));
  EXPECT_TRUE(r.insert(3, 3));
  EXPECT_FALSE(r.remove(*a));  // already removed: no-op, reports false
  EXPECT_EQ(r.track_of(*a), kNoTrack);
}

TEST(OnlineRouter, KSegmentLimitIsEnforced) {
  OnlineRouter r(small_channel(), OnlineRouter::Policy::BestFit,
                 /*max_segments=*/1);
  // (3,7) needs two segments in both tracks.
  EXPECT_FALSE(r.insert(3, 7).has_value());
  OnlineRouter loose(small_channel(), OnlineRouter::Policy::BestFit, 2);
  EXPECT_TRUE(loose.insert(3, 7).has_value());
}

TEST(OnlineRouter, InsertRejectsBadSpans) {
  OnlineRouter r(small_channel());
  EXPECT_FALSE(r.insert(0, 3).has_value());
  EXPECT_EQ(r.last_failure(), alg::FailureKind::kInvalidInput);
  EXPECT_FALSE(r.insert(3, 2).has_value());
  EXPECT_EQ(r.last_failure(), alg::FailureKind::kInvalidInput);
  EXPECT_FALSE(r.insert(3, 99).has_value());
  EXPECT_EQ(r.last_failure(), alg::FailureKind::kInvalidInput);
  EXPECT_EQ(r.num_placed(), 0);
}

TEST(OnlineRouter, RipupMovesASingleVictim) {
  // K = 1 scenario where rip-up is both necessary and sufficient.
  // t0: (1,4)(5,9); t1: (1,2)(3,9).
  const auto ch = SegmentedChannel({Track(9, {4}), Track(9, {2})});
  OnlineRouter r(ch, OnlineRouter::Policy::BestFit, /*max_segments=*/1);
  const auto victim = r.insert(3, 4);  // t0 (1,4) len 4 beats t1 (3,9) len 7
  ASSERT_TRUE(victim);
  ASSERT_EQ(r.track_of(*victim), 0);
  // New net (1,4): t0 (1,4) blocked; on t1 it would need two segments
  // (K = 1 forbids) -> plain insert fails; rip-up moves the victim to
  // t1 (3,9) and takes t0 (1,4).
  EXPECT_FALSE(r.insert(1, 4).has_value());
  const auto re = r.insert_with_ripup(1, 4);
  ASSERT_TRUE(re.has_value());
  EXPECT_EQ(r.track_of(*re), 0);
  EXPECT_EQ(r.track_of(*victim), 1);
  const auto [cs, routing] = r.snapshot();
  EXPECT_TRUE(validate(r.channel(), cs, routing, 1));
}

TEST(OnlineRouter, RipupFailsAtomicallyWhenVictimHasNoHome) {
  // Same channel, but t1's big segment is pre-filled: the victim has
  // nowhere to go, so rip-up must fail and leave the state untouched.
  const auto ch = SegmentedChannel({Track(9, {4}), Track(9, {2})});
  OnlineRouter r(ch, OnlineRouter::Policy::BestFit, /*max_segments=*/1);
  const auto victim = r.insert(3, 4);            // t0 (1,4)
  const auto filler = r.insert(5, 9, "filler");  // t0 (5,9) len 5 < t1 (3,9) 7
  ASSERT_TRUE(victim && filler);
  ASSERT_EQ(r.track_of(*filler), 0);
  ASSERT_TRUE(r.insert(3, 9, "big"));  // t1 (3,9)
  EXPECT_FALSE(r.insert_with_ripup(1, 4).has_value());
  // Everything still where it was, and the state is valid.
  EXPECT_EQ(r.track_of(*victim), 0);
  EXPECT_EQ(r.num_placed(), 3);
  const auto [cs, routing] = r.snapshot();
  EXPECT_TRUE(validate(r.channel(), cs, routing, 1));
}

TEST(OnlineRouter, RerouteTightensAfterRemovals) {
  const auto ch = SegmentedChannel({Track(9, {}), Track(9, {4})});
  OnlineRouter r(ch);
  const auto snug = r.insert(1, 3);   // -> t1 (1,4)
  const auto moved = r.insert(2, 4);  // t1 blocked -> t0 (1,9)
  ASSERT_TRUE(snug && moved);
  ASSERT_EQ(r.track_of(*moved), 0);
  r.remove(*snug);
  EXPECT_EQ(r.reroute(*moved), 1);  // better home is now free
  EXPECT_EQ(r.track_of(*moved), 1);
}

TEST(OnlineRouter, RandomizedSessionsStayValid) {
  std::mt19937_64 rng(161);
  for (int iter = 0; iter < 20; ++iter) {
    OnlineRouter r(gen::staggered_segmentation(4, 24, 6));
    std::vector<ConnId> placed;
    for (int step = 0; step < 60; ++step) {
      if (!placed.empty() && rng() % 3 == 0) {
        const std::size_t k = rng() % placed.size();
        r.remove(placed[k]);
        placed.erase(placed.begin() + static_cast<std::ptrdiff_t>(k));
      } else {
        const Column l = 1 + static_cast<Column>(rng() % 24);
        const Column len = 1 + static_cast<Column>(rng() % 8);
        const auto id =
            r.insert_with_ripup(l, std::min<Column>(24, l + len - 1));
        if (id) placed.push_back(*id);
      }
      const auto [cs, routing] = r.snapshot();
      ASSERT_TRUE(validate(r.channel(), cs, routing))
          << "iter " << iter << " step " << step;
      ASSERT_EQ(cs.size(), static_cast<ConnId>(placed.size()));
    }
  }
}

TEST(OnlineRouter, IdsStayStableAcrossRemovalsFuzz) {
  // Long mixed sessions over both API generations: connection ids must
  // never move or be reused while live, dead ids must stay dead, and
  // last_failure() must read kNone after every successful mutation.
  std::mt19937_64 rng(4099);
  for (int iter = 0; iter < 10; ++iter) {
    OnlineRouter r(gen::staggered_segmentation(4, 24, 6));
    std::map<ConnId, std::pair<Column, Column>> live;  // id -> span
    std::vector<ConnId> dead;
    const auto rand_span = [&]() -> std::pair<Column, Column> {
      const Column l = 1 + static_cast<Column>(rng() % 24);
      const Column len = 1 + static_cast<Column>(rng() % 6);
      return {l, std::min<Column>(24, l + len - 1)};
    };
    const auto pick_live = [&]() -> ConnId {
      auto it = live.begin();
      std::advance(it, static_cast<std::ptrdiff_t>(rng() % live.size()));
      return it->first;
    };
    for (int step = 0; step < 120; ++step) {
      std::uint64_t op = rng() % 5;
      if (live.empty()) op = 0;
      if (op == 0 || op == 1) {
        const auto [l, rt] = rand_span();
        const auto id = op == 0 ? r.insert(l, rt) : r.insert_with_ripup(l, rt);
        if (id) {
          ASSERT_EQ(live.count(*id), 0u) << "live id reused";
          live[*id] = {l, rt};
          EXPECT_EQ(r.last_failure(), FailureKind::kNone);
        }
      } else if (op == 2) {
        const ConnId id = pick_live();
        ASSERT_TRUE(r.remove(id));
        EXPECT_EQ(r.last_failure(), FailureKind::kNone);
        live.erase(id);
        dead.push_back(id);
      } else if (op == 3) {
        const auto [l, rt] = rand_span();
        const ConnId id = pick_live();
        const RepairOutcome out = r.apply(ChannelEdit::move(id, l, rt));
        if (out.success) {
          live[id] = {l, rt};
          EXPECT_EQ(r.last_failure(), FailureKind::kNone);
        }
      } else {
        const auto [l, rt] = rand_span();
        const RepairOutcome out = r.apply(ChannelEdit::add(l, rt));
        if (out.success) {
          ASSERT_EQ(live.count(out.id), 0u) << "live id reused";
          live[out.id] = {l, rt};
          EXPECT_EQ(r.last_failure(), FailureKind::kNone);
        }
      }
      // Id stability: every live id still carries its recorded span;
      // every dead id is still dead (ids are never recycled).
      for (const auto& [id, span] : live) {
        ASSERT_TRUE(r.is_placed(id)) << "iter " << iter << " step " << step;
        EXPECT_EQ(r.connection(id).left, span.first);
        EXPECT_EQ(r.connection(id).right, span.second);
      }
      for (const ConnId id : dead) {
        EXPECT_FALSE(r.is_placed(id));
        EXPECT_EQ(r.track_of(id), kNoTrack);
      }
      ASSERT_EQ(r.num_placed(), static_cast<int>(live.size()));
    }
  }
}

TEST(OnlineRouter, OnlineNeverBeatsTheBatchOracle) {
  // If the online first-fit places all of a workload, the DP surely can;
  // the converse may fail (online is not exact) — assert the implication
  // only.
  std::mt19937_64 rng(162);
  for (int iter = 0; iter < 30; ++iter) {
    const auto ch = gen::staggered_segmentation(3, 20, 5);
    const auto cs = gen::geometric_workload(6, 20, 4.0, rng);
    OnlineRouter r(ch);
    bool all = true;
    for (const Connection& c : cs.all()) {
      if (!r.insert(c.left, c.right)) all = false;
    }
    if (all) {
      EXPECT_TRUE(dp_route_unlimited(ch, cs).success) << "iter " << iter;
    }
  }
}

}  // namespace
}  // namespace segroute::alg
