#include <gtest/gtest.h>

#include "alg/dp.h"
#include "alg/generalized_dp.h"
#include "core/stats.h"
#include "gen/fixtures.h"
#include "io/svg.h"

namespace segroute {
namespace {

TEST(Utilization, ExactFitRoutingHasOverhangOne) {
  const auto ch = SegmentedChannel::identical(1, 9, {4});
  ConnectionSet cs;
  cs.add(1, 4);
  cs.add(5, 9);
  Routing r(2);
  r.assign(0, 0);
  r.assign(1, 0);
  const auto st = utilization(ch, cs, r);
  EXPECT_EQ(st.total_segments, 2);
  EXPECT_EQ(st.occupied_segments, 2);
  EXPECT_EQ(st.total_columns, 9);
  EXPECT_EQ(st.occupied_columns, 9);
  EXPECT_EQ(st.demanded_columns, 9);
  EXPECT_EQ(st.tracks_touched, 1);
  EXPECT_DOUBLE_EQ(st.overhang(), 1.0);
  EXPECT_DOUBLE_EQ(st.wire_utilization(), 1.0);
}

TEST(Utilization, SloppyFitShowsOverhang) {
  const auto ch = SegmentedChannel::identical(2, 10, {});
  ConnectionSet cs;
  cs.add(1, 2);  // 2 demanded columns occupy a 10-column segment
  Routing r(1);
  r.assign(0, 1);
  const auto st = utilization(ch, cs, r);
  EXPECT_EQ(st.occupied_columns, 10);
  EXPECT_EQ(st.demanded_columns, 2);
  EXPECT_DOUBLE_EQ(st.overhang(), 5.0);
  EXPECT_DOUBLE_EQ(st.wire_utilization(), 0.5);
  EXPECT_EQ(st.tracks_touched, 1);
}

TEST(Utilization, PartialRoutingCountsOnlyAssigned) {
  const auto ch = SegmentedChannel::identical(2, 10, {5});
  ConnectionSet cs;
  cs.add(1, 5);
  cs.add(6, 10);
  Routing r(2);
  r.assign(0, 0);
  const auto st = utilization(ch, cs, r);
  EXPECT_EQ(st.occupied_segments, 1);
  EXPECT_EQ(st.demanded_columns, 5);
}

TEST(Utilization, SharedSegmentNotDoubleCounted) {
  // Two nets in different segments of the same track.
  const auto ch = SegmentedChannel::identical(1, 8, {4});
  ConnectionSet cs;
  cs.add(1, 3);
  cs.add(5, 8);
  Routing r(2);
  r.assign(0, 0);
  r.assign(1, 0);
  const auto st = utilization(ch, cs, r);
  EXPECT_EQ(st.occupied_segments, 2);
  EXPECT_EQ(st.occupied_columns, 8);
  EXPECT_EQ(st.tracks_touched, 1);
}

TEST(Utilization, RejectsBadInput) {
  const auto ch = SegmentedChannel::identical(1, 4, {});
  ConnectionSet cs;
  cs.add(1, 2);
  EXPECT_THROW(utilization(ch, cs, Routing(2)), std::invalid_argument);
  Routing bad(1);
  bad.assign(0, 7);
  EXPECT_THROW(utilization(ch, cs, bad), std::invalid_argument);
}

TEST(Svg, ChannelRenderingHasTracksAndSwitches) {
  const auto ch = gen::fixtures::fig3_channel();
  const auto svg = io::to_svg(ch);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  // 3 track labels and at least one switch circle.
  EXPECT_NE(svg.find(">t1<"), std::string::npos);
  EXPECT_NE(svg.find(">t3<"), std::string::npos);
  EXPECT_NE(svg.find("<circle"), std::string::npos);
}

TEST(Svg, RoutedRenderingColorsSegments) {
  const auto ch = gen::fixtures::fig3_channel();
  const auto cs = gen::fixtures::fig3_connections();
  const auto r = alg::dp_route_unlimited(ch, cs);
  ASSERT_TRUE(r.success);
  const auto without = io::to_svg(ch, cs);
  const auto with = io::to_svg(ch, cs, &r.routing);
  EXPECT_GT(with.size(), without.size());  // extra colored bars
  EXPECT_NE(with.find("stroke-linecap=\"round\""), std::string::npos);
  EXPECT_NE(with.find("c1"), std::string::npos);  // connection label
}

TEST(Svg, GeneralizedRenderingCoversParts) {
  const auto ch = gen::fixtures::fig4_channel();
  const auto cs = gen::fixtures::fig4_connections();
  const auto g = alg::generalized_dp_route(ch, cs);
  ASSERT_TRUE(g.success);
  const auto svg = io::to_svg(ch, cs, g.routing);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("stroke-linecap=\"round\""), std::string::npos);
}

TEST(Svg, LabelsCanBeDisabled) {
  const auto ch = gen::fixtures::fig3_channel();
  io::SvgOptions o;
  o.show_labels = false;
  EXPECT_EQ(io::to_svg(ch, o).find("<text"), std::string::npos);
}

}  // namespace
}  // namespace segroute
