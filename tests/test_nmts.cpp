#include "npc/nmts.h"

#include <gtest/gtest.h>

#include <random>

#include "gen/fixtures.h"

namespace segroute::npc {
namespace {

TEST(Nmts, RejectsMalformedInstances) {
  EXPECT_THROW(NmtsInstance({}, {}, {}), std::invalid_argument);
  EXPECT_THROW(NmtsInstance({1}, {1, 2}, {2}), std::invalid_argument);
  EXPECT_THROW(NmtsInstance({0}, {1}, {1}), std::invalid_argument);
  EXPECT_THROW(NmtsInstance({1}, {1}, {3}), std::invalid_argument);  // sums
}

TEST(Nmts, ValuesAreSortedOnConstruction) {
  const NmtsInstance inst({3, 1}, {5, 2}, {3, 8});
  EXPECT_EQ(inst.x(), (std::vector<std::int64_t>{1, 3}));
  EXPECT_EQ(inst.y(), (std::vector<std::int64_t>{2, 5}));
  EXPECT_EQ(inst.z(), (std::vector<std::int64_t>{3, 8}));
}

TEST(Nmts, CheckAcceptsOnlyValidPermutationPairs) {
  const auto inst = gen::fixtures::example1_nmts();
  // z = (11, 17, 19): 11 = 2+9, 17 = 5+12, 19 = 8+11.
  NmtsSolution good{{0, 1, 2}, {0, 2, 1}};
  EXPECT_TRUE(inst.check(good));
  NmtsSolution bad_sum{{0, 1, 2}, {0, 1, 2}};
  EXPECT_FALSE(inst.check(bad_sum));
  NmtsSolution repeated{{0, 0, 2}, {0, 2, 1}};
  EXPECT_FALSE(inst.check(repeated));
  NmtsSolution out_of_range{{0, 1, 5}, {0, 2, 1}};
  EXPECT_FALSE(inst.check(out_of_range));
  NmtsSolution wrong_size{{0, 1}, {0, 2}};
  EXPECT_FALSE(inst.check(wrong_size));
}

TEST(Nmts, SolveFindsTheExampleMatching) {
  const auto inst = gen::fixtures::example1_nmts();
  const auto sol = inst.solve();
  ASSERT_TRUE(sol.has_value());
  EXPECT_TRUE(inst.check(*sol));
}

TEST(Nmts, SolveDetectsUnsolvable) {
  // Sums balance (2+3+4+5 = 14 = 6+8) but no pairing works:
  // targets {6, 8} need {2+4, 3+5} -> 6 = 2+4 ok, 8 = 3+5 ok. That IS
  // solvable; perturb: targets {7, 7}: 7 = 2+5 = 3+4 -> solvable too.
  // Use x = (1, 10), y = (1, 2), z = (3, 11): 3 = 1+2, 11 = 10+1 ✓
  // solvable; z = (2, 12): 2 = 1+1 ✓, 12 = 10+2 ✓ solvable;
  // z = (4, 10): 4 needs y=3 (absent) or x=2 (absent) with 1+3/2+2 -> no.
  const NmtsInstance inst({1, 10}, {1, 2}, {4, 10});
  EXPECT_FALSE(inst.solve().has_value());
}

TEST(Nmts, SolveHandlesDuplicateValues) {
  const NmtsInstance inst({2, 2}, {3, 3}, {5, 5});
  const auto sol = inst.solve();
  ASSERT_TRUE(sol.has_value());
  EXPECT_TRUE(inst.check(*sol));
}

TEST(Nmts, Example1IsReductionReadyAsPublished) {
  EXPECT_TRUE(gen::fixtures::example1_nmts().reduction_ready());
}

TEST(Nmts, NormalizedEstablishesReductionPreconditions) {
  std::mt19937_64 rng(91);
  for (int iter = 0; iter < 40; ++iter) {
    const auto inst = random_solvable_nmts(2 + static_cast<int>(rng() % 4), rng);
    const auto norm = inst.normalized();
    EXPECT_TRUE(norm.reduction_ready()) << "iter " << iter;
  }
}

TEST(Nmts, NormalizedPreservesSolvability) {
  std::mt19937_64 rng(92);
  for (int iter = 0; iter < 40; ++iter) {
    const int n = 2 + static_cast<int>(rng() % 3);
    const auto inst = (iter % 2 == 0) ? random_solvable_nmts(n, rng)
                                      : random_perturbed_nmts(n, rng);
    const auto norm = inst.normalized();
    EXPECT_EQ(inst.solve().has_value(), norm.solve().has_value())
        << "iter " << iter;
  }
}

TEST(Nmts, NormalizedRejectsDuplicateX) {
  const NmtsInstance inst({2, 2}, {3, 3}, {5, 5});
  EXPECT_THROW(inst.normalized(), std::invalid_argument);
}

TEST(Nmts, RandomSolvableIsSolvable) {
  std::mt19937_64 rng(93);
  for (int iter = 0; iter < 30; ++iter) {
    const auto inst = random_solvable_nmts(2 + static_cast<int>(rng() % 4), rng);
    EXPECT_TRUE(inst.solve().has_value()) << "iter " << iter;
  }
}

TEST(Nmts, PerturbedInstancesKeepBalancedSums) {
  std::mt19937_64 rng(94);
  for (int iter = 0; iter < 30; ++iter) {
    // Construction would throw if the sums were unbalanced.
    EXPECT_NO_THROW(random_perturbed_nmts(2 + static_cast<int>(rng() % 4), rng));
  }
}

TEST(Nmts, SingleElementInstance) {
  const NmtsInstance inst({2}, {3}, {5});
  const auto sol = inst.solve();
  ASSERT_TRUE(sol.has_value());
  EXPECT_EQ(sol->alpha, std::vector<int>{0});
  const NmtsInstance no({2}, {4}, {6});
  EXPECT_TRUE(no.solve().has_value());
}

}  // namespace
}  // namespace segroute::npc
