#include "lp/simplex.h"

#include <gtest/gtest.h>

#include <random>

namespace segroute::lp {
namespace {

TEST(Simplex, SimpleTwoVariableMaximization) {
  // max 3x + 2y st x + y <= 4, x + 3y <= 6 -> x = 4, y = 0, obj 12.
  Problem p;
  const int x = p.add_variable(3.0);
  const int y = p.add_variable(2.0);
  p.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::LessEq, 4.0);
  p.add_constraint({{x, 1.0}, {y, 3.0}}, Relation::LessEq, 6.0);
  const auto s = solve(p);
  ASSERT_EQ(s.status, Status::Optimal);
  EXPECT_NEAR(s.objective, 12.0, 1e-8);
  EXPECT_NEAR(s.x[static_cast<std::size_t>(x)], 4.0, 1e-8);
  EXPECT_NEAR(s.x[static_cast<std::size_t>(y)], 0.0, 1e-8);
}

TEST(Simplex, InteriorOptimum) {
  // max x + y st x <= 2, y <= 3 -> (2,3), obj 5.
  Problem p;
  const int x = p.add_variable(1.0);
  const int y = p.add_variable(1.0);
  p.add_upper_bound(x, 2.0);
  p.add_upper_bound(y, 3.0);
  const auto s = solve(p);
  ASSERT_EQ(s.status, Status::Optimal);
  EXPECT_NEAR(s.objective, 5.0, 1e-8);
}

TEST(Simplex, UnboundedDetected) {
  Problem p;
  p.add_variable(1.0);  // max x, x >= 0, no upper limit
  EXPECT_EQ(solve(p).status, Status::Unbounded);
}

TEST(Simplex, InfeasibleDetected) {
  // x <= 1 and x >= 2.
  Problem p;
  const int x = p.add_variable(1.0);
  p.add_constraint({{x, 1.0}}, Relation::LessEq, 1.0);
  p.add_constraint({{x, 1.0}}, Relation::GreaterEq, 2.0);
  EXPECT_EQ(solve(p).status, Status::Infeasible);
}

TEST(Simplex, EqualityConstraints) {
  // max x + 2y st x + y = 3, y <= 1 -> x = 2, y = 1, obj 4.
  Problem p;
  const int x = p.add_variable(1.0);
  const int y = p.add_variable(2.0);
  p.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::Equal, 3.0);
  p.add_upper_bound(y, 1.0);
  const auto s = solve(p);
  ASSERT_EQ(s.status, Status::Optimal);
  EXPECT_NEAR(s.objective, 4.0, 1e-8);
  EXPECT_NEAR(s.x[static_cast<std::size_t>(x)], 2.0, 1e-8);
  EXPECT_NEAR(s.x[static_cast<std::size_t>(y)], 1.0, 1e-8);
}

TEST(Simplex, GreaterEqualWithNegativeRhsNormalizes) {
  // -x <= -2  (i.e. x >= 2), max -x -> x = 2.
  Problem p;
  const int x = p.add_variable(-1.0);
  p.add_constraint({{x, -1.0}}, Relation::LessEq, -2.0);
  const auto s = solve(p);
  ASSERT_EQ(s.status, Status::Optimal);
  EXPECT_NEAR(s.x[static_cast<std::size_t>(x)], 2.0, 1e-8);
  EXPECT_NEAR(s.objective, -2.0, 1e-8);
}

TEST(Simplex, RedundantConstraintsAreHarmless) {
  Problem p;
  const int x = p.add_variable(1.0);
  p.add_upper_bound(x, 5.0);
  p.add_upper_bound(x, 5.0);
  p.add_constraint({{x, 2.0}}, Relation::LessEq, 10.0);
  const auto s = solve(p);
  ASSERT_EQ(s.status, Status::Optimal);
  EXPECT_NEAR(s.objective, 5.0, 1e-8);
}

TEST(Simplex, DegenerateVertexTerminates) {
  // Multiple constraints active at the optimum.
  Problem p;
  const int x = p.add_variable(1.0);
  const int y = p.add_variable(1.0);
  p.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::LessEq, 1.0);
  p.add_constraint({{x, 1.0}}, Relation::LessEq, 1.0);
  p.add_constraint({{y, 1.0}}, Relation::LessEq, 1.0);
  p.add_constraint({{x, 1.0}, {y, 2.0}}, Relation::LessEq, 1.0);
  const auto s = solve(p);
  ASSERT_EQ(s.status, Status::Optimal);
  EXPECT_NEAR(s.objective, 1.0, 1e-8);
}

TEST(Simplex, EqualityOnlySystem) {
  // x + y = 2, x - y = 0 -> x = y = 1; max x + y = 2.
  Problem p;
  const int x = p.add_variable(1.0);
  const int y = p.add_variable(1.0);
  p.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::Equal, 2.0);
  p.add_constraint({{x, 1.0}, {y, -1.0}}, Relation::Equal, 0.0);
  const auto s = solve(p);
  ASSERT_EQ(s.status, Status::Optimal);
  EXPECT_NEAR(s.x[static_cast<std::size_t>(x)], 1.0, 1e-8);
  EXPECT_NEAR(s.x[static_cast<std::size_t>(y)], 1.0, 1e-8);
}

TEST(Simplex, InfeasibleEqualitySystem) {
  Problem p;
  const int x = p.add_variable(0.0);
  p.add_constraint({{x, 1.0}}, Relation::Equal, 1.0);
  p.add_constraint({{x, 1.0}}, Relation::Equal, 2.0);
  EXPECT_EQ(solve(p).status, Status::Infeasible);
}

TEST(Simplex, ZeroObjectiveFeasibilityProblem) {
  Problem p;
  const int x = p.add_variable(0.0);
  p.add_constraint({{x, 1.0}}, Relation::GreaterEq, 1.0);
  p.add_upper_bound(x, 3.0);
  const auto s = solve(p);
  ASSERT_EQ(s.status, Status::Optimal);
  EXPECT_GE(s.x[static_cast<std::size_t>(x)], 1.0 - 1e-8);
  EXPECT_LE(s.x[static_cast<std::size_t>(x)], 3.0 + 1e-8);
}

TEST(Simplex, RejectsBadVariableIndex) {
  Problem p;
  p.add_variable(1.0);
  EXPECT_THROW(p.add_constraint({{1, 1.0}}, Relation::LessEq, 1.0),
               std::invalid_argument);
  EXPECT_THROW(p.add_constraint({{-1, 1.0}}, Relation::LessEq, 1.0),
               std::invalid_argument);
}

TEST(Simplex, ArtificialsNeverReenterOnMinimizationWithEqualities) {
  // Regression: a minimization (negative objective) over equality rows.
  // Phase 2 must not let a phase-1 artificial re-enter the basis, or the
  // "optimal" point violates the equalities. min 5x + 7y st x + y = 2,
  // y <= 1 -> x = 1, y = 1, objective (max form) -12.
  Problem p;
  const int x = p.add_variable(-5.0);
  const int y = p.add_variable(-7.0);
  p.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::Equal, 2.0);
  p.add_upper_bound(x, 1.0);
  const auto s = solve(p);
  ASSERT_EQ(s.status, Status::Optimal);
  EXPECT_NEAR(s.x[static_cast<std::size_t>(x)] +
                  s.x[static_cast<std::size_t>(y)],
              2.0, 1e-8);
  EXPECT_NEAR(s.objective, -12.0, 1e-8);
}

TEST(Simplex, RandomEqualitySystemsStayFeasible) {
  // Sweep: random transportation-like minimization LPs; the returned
  // point must satisfy every equality row.
  std::mt19937_64 rng(2025);
  std::uniform_real_distribution<double> cost(0.5, 9.5);
  for (int iter = 0; iter < 30; ++iter) {
    const int n = 2 + static_cast<int>(rng() % 3);
    Problem p;
    std::vector<std::vector<int>> v(static_cast<std::size_t>(n),
                                    std::vector<int>(static_cast<std::size_t>(n)));
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        v[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
            p.add_variable(-cost(rng));  // minimize
      }
    }
    for (int i = 0; i < n; ++i) {
      std::vector<std::pair<int, double>> row, col;
      for (int j = 0; j < n; ++j) {
        row.emplace_back(v[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)], 1.0);
        col.emplace_back(v[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)], 1.0);
      }
      p.add_constraint(std::move(row), Relation::Equal, 1.0);
      p.add_constraint(std::move(col), Relation::Equal, 1.0);
    }
    const auto s = solve(p);
    ASSERT_EQ(s.status, Status::Optimal) << "iter " << iter;
    for (int i = 0; i < n; ++i) {
      double rsum = 0;
      for (int j = 0; j < n; ++j) {
        rsum += s.x[static_cast<std::size_t>(
            v[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)])];
      }
      EXPECT_NEAR(rsum, 1.0, 1e-7) << "iter " << iter;
    }
  }
}

TEST(Simplex, AssignmentPolytopeVertexIsIntegral) {
  // A 3x3 assignment LP: the relaxation optimum at a vertex must be 0/1
  // (Birkhoff), which is exactly the property the Section IV-C heuristic
  // exploits.
  Problem p;
  std::vector<int> v;
  for (int i = 0; i < 9; ++i) v.push_back(p.add_variable(1.0));
  for (int r = 0; r < 3; ++r) {
    p.add_constraint({{v[static_cast<std::size_t>(3 * r)], 1.0},
                      {v[static_cast<std::size_t>(3 * r + 1)], 1.0},
                      {v[static_cast<std::size_t>(3 * r + 2)], 1.0}},
                     Relation::LessEq, 1.0);
    p.add_constraint({{v[static_cast<std::size_t>(r)], 1.0},
                      {v[static_cast<std::size_t>(r + 3)], 1.0},
                      {v[static_cast<std::size_t>(r + 6)], 1.0}},
                     Relation::LessEq, 1.0);
  }
  const auto s = solve(p);
  ASSERT_EQ(s.status, Status::Optimal);
  EXPECT_NEAR(s.objective, 3.0, 1e-8);
  for (double xi : s.x) {
    EXPECT_TRUE(xi < 1e-7 || xi > 1.0 - 1e-7) << xi;
  }
}

}  // namespace
}  // namespace segroute::lp
