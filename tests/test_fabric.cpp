#include "fpga/fabric.h"

#include <gtest/gtest.h>

#include <random>
#include <set>
#include <vector>

#include "core/routing.h"
#include "engine/batch.h"
#include "fpga/netlist.h"
#include "fpga/place.h"
#include "gen/segmentation.h"

namespace segroute::fpga {
namespace {

// A random but reproducible fabric scenario: device, netlist, placement.
struct Scenario {
  DeviceSpec dev;
  Netlist nl;
  Placement p;
};

Scenario make_scenario(std::uint64_t seed, int rows = 3, int slots = 8,
                       int nets = 14) {
  std::mt19937_64 rng(seed);
  DeviceSpec dev;
  dev.rows = rows;
  dev.slots_per_row = slots;
  dev.cell_width = 2;
  Netlist nl = random_netlist(rows * slots, nets, 4, slots, rng);
  Placement p = random_placement(nl, rows, slots, rng);
  return Scenario{dev, std::move(nl), std::move(p)};
}

std::function<SegmentedChannel(int, Column)> staggered_factory(Column seglen) {
  return [seglen](int tracks, Column width) {
    return gen::staggered_segmentation(tracks, width, seglen);
  };
}

// Every channel's routing must independently re-validate on the substrate.
void expect_valid(const FabricRouter& fr, const FabricResult& res, int tracks,
                  const std::function<SegmentedChannel(int, Column)>& make) {
  const SegmentedChannel sub = make(tracks, fr.device().columns());
  for (std::size_t c = 0; c < res.per_channel.size(); ++c) {
    const auto v = validate(sub, res.per_channel[c], res.routings[c]);
    EXPECT_TRUE(v.ok) << "channel " << c << ": " << v.error;
  }
}

TEST(Fabric, BitIdenticalAcrossThreadCountsAndCacheModes) {
  for (std::uint64_t seed : {7u, 21u, 99u}) {
    const Scenario sc = make_scenario(seed);
    const auto make = staggered_factory(6);
    const FabricRouter fr(sc.dev, sc.nl, sc.p, make);

    FabricOptions base;
    base.max_iterations = 8;
    const int tracks = 6;

    std::optional<FabricResult> reference;
    for (int threads : {1, 2, 8}) {
      for (bool cache : {true, false}) {
        FabricOptions o = base;
        o.threads = threads;
        o.use_cache = cache;
        const FabricResult r = fr.route(tracks, o);
        if (!reference) {
          reference = r;
          continue;
        }
        EXPECT_EQ(r.digest, reference->digest)
            << "seed " << seed << " threads " << threads << " cache " << cache;
        EXPECT_EQ(r.success, reference->success);
        EXPECT_EQ(r.iterations, reference->iterations);
        EXPECT_EQ(r.channel_of_net, reference->channel_of_net);
        for (std::size_t c = 0; c < r.routings.size(); ++c) {
          EXPECT_EQ(r.routings[c], reference->routings[c]) << "channel " << c;
        }
      }
    }
    if (reference->success) expect_valid(fr, *reference, tracks, make);
  }
}

TEST(Fabric, ConvergesOnKnownFeasibleFixture) {
  // Fully segmented tracks make a channel conventional: density <= tracks
  // is routable, so a generous track count must converge — and validate.
  const Scenario sc = make_scenario(42, /*rows=*/2, /*slots=*/6, /*nets=*/8);
  const auto make = [](int tracks, Column width) {
    return SegmentedChannel::fully_segmented(tracks, width);
  };
  const FabricRouter fr(sc.dev, sc.nl, sc.p, make);

  FabricOptions o;
  o.max_iterations = 8;
  const FabricResult res = fr.route(/*tracks=*/8, o);
  ASSERT_TRUE(res.success) << res.note;
  EXPECT_EQ(res.iterations, 1);  // no contention at 8 tracks: greedy wins
  expect_valid(fr, res, 8, make);
  for (const auto& rep : res.channels) {
    EXPECT_TRUE(rep.routed);
    EXPECT_EQ(rep.failure, alg::FailureKind::kNone);
  }
}

TEST(Fabric, NegotiationMovesNetsWhereGreedyFails) {
  // Three nets, three channels, one full-width single-segment track each:
  // every channel holds exactly one net. A[1,3] and B[5,7] sit in row 0
  // (channels {0,1}); C[1,7] sits in row 1 (channels {1,2}). The greedy
  // assignment collides (extended spans make A and B conflict everywhere),
  // so only negotiation — history pricing the failed channel — can spread
  // the three nets over the three channels.
  DeviceSpec dev;
  dev.rows = 2;
  dev.slots_per_row = 4;
  dev.cell_width = 2;  // pins at columns 1, 3, 5, 7; width 8
  const Netlist nl(8, {CellNet{{0, 1}, "A"}, CellNet{{2, 3}, "B"},
                       CellNet{{4, 7}, "C"}});
  const Placement p = sequential_placement(nl, dev.rows, dev.slots_per_row);
  const auto make = [](int tracks, Column width) {
    return SegmentedChannel::unsegmented(tracks, width);
  };
  const FabricRouter fr(dev, nl, p, make);

  FabricOptions o;
  o.max_iterations = 8;
  const FabricResult independent = fr.route_independent(1, o);
  EXPECT_FALSE(independent.success);
  EXPECT_EQ(independent.iterations, 1);

  const FabricResult res = fr.route(1, o);
  ASSERT_TRUE(res.success) << res.note;
  EXPECT_GT(res.iterations, 1);  // greedy alone was not enough
  expect_valid(fr, res, 1, make);
  const std::set<int> used(res.channel_of_net.begin(),
                           res.channel_of_net.end());
  EXPECT_EQ(used.size(), 3u);  // all three nets in distinct channels
}

TEST(Fabric, NegotiatedNeverNeedsMoreTracksThanIndependent) {
  for (std::uint64_t seed : {3u, 11u}) {
    const Scenario sc = make_scenario(seed);
    const auto make = staggered_factory(5);
    const FabricRouter fr(sc.dev, sc.nl, sc.p, make);
    FabricOptions o;
    o.max_iterations = 8;
    FabricOptions ind = o;
    ind.max_iterations = 1;
    const auto negotiated = fr.min_fabric_tracks(16, o);
    const auto independent = fr.min_fabric_tracks(16, ind);
    ASSERT_TRUE(negotiated.has_value());
    ASSERT_TRUE(independent.has_value());
    EXPECT_LE(*negotiated, *independent) << "seed " << seed;
  }
}

TEST(Fabric, BudgetExhaustionReportsPerChannelFailure) {
  const Scenario sc = make_scenario(5, /*rows=*/3, /*slots=*/8, /*nets=*/18);
  const FabricRouter fr(sc.dev, sc.nl, sc.p, staggered_factory(6));

  FabricOptions o;
  o.max_iterations = 4;
  o.budget = harness::Budget::with_ticks(o.max_iterations *
                                         sc.dev.num_channels());  // 1 tick each
  const FabricResult res = fr.route(/*tracks=*/6, o);
  EXPECT_FALSE(res.success);
  EXPECT_NE(res.note.find("budget"), std::string::npos) << res.note;
  bool saw_budget = false;
  for (const auto& rep : res.channels) {
    if (rep.failure == alg::FailureKind::kBudgetExhausted) saw_budget = true;
  }
  EXPECT_TRUE(saw_budget);

  // Tick budgets stay deterministic: same starved run, same digest.
  const FabricResult res2 = fr.route(/*tracks=*/6, o);
  EXPECT_EQ(res.digest, res2.digest);
}

TEST(Fabric, ShardedCacheStatsMatchUnshardedOnReplay) {
  // The same fabric routed twice warms the memo cache; the merged stats
  // of a 16-way sharded cache must equal the single-shard totals when the
  // workload fits in capacity (the global-equivalent bound).
  const Scenario sc = make_scenario(13);
  const FabricRouter fr(sc.dev, sc.nl, sc.p, staggered_factory(6));

  auto stats_after_replay = [&](int shards) {
    FabricOptions o;
    o.max_iterations = 8;
    o.threads = 1;  // serial: hit/miss counters are deterministic
    o.cache_shards = shards;
    o.cache_capacity = 4096;
    // route() builds a fresh engine per call, so replay the workload
    // within one call's negotiation loop and compare its cache snapshot.
    // Tracks are kept scarce so the loop iterates and re-routes channels
    // whose assignment did not change — the replayed (cache-hitting) part.
    return fr.route(/*tracks=*/4, o).cache;
  };
  const engine::CacheStats one = stats_after_replay(1);
  const engine::CacheStats sharded = stats_after_replay(16);
  EXPECT_GT(one.hits + one.misses, 0u);
  EXPECT_EQ(one.hits, sharded.hits);
  EXPECT_EQ(one.misses, sharded.misses);
  EXPECT_EQ(one.size, sharded.size);
  EXPECT_EQ(one.evictions, 0u);
  EXPECT_EQ(sharded.evictions, 0u);
}

TEST(Fabric, AutoThreadsMatchesExplicit) {
  // threads = 0 resolves to util::hardware_threads(); the result must be
  // bit-identical to any explicit count (the library-wide contract).
  const Scenario sc = make_scenario(31);
  const FabricRouter fr(sc.dev, sc.nl, sc.p, staggered_factory(6));
  FabricOptions serial;
  serial.max_iterations = 6;
  serial.threads = 1;
  FabricOptions autod = serial;
  autod.threads = 0;
  EXPECT_EQ(fr.route(6, serial).digest, fr.route(6, autod).digest);
}

TEST(Fabric, RejectsMalformedInputs) {
  const Scenario sc = make_scenario(1);
  const FabricRouter fr(sc.dev, sc.nl, sc.p, staggered_factory(6));
  EXPECT_FALSE(fr.route(0).success);

  Placement wrong = sc.p;
  wrong.rows = sc.dev.rows + 1;
  const FabricRouter bad(sc.dev, sc.nl, wrong, staggered_factory(6));
  const FabricResult res = bad.route(4);
  EXPECT_FALSE(res.success);
  EXPECT_NE(res.note.find("placement"), std::string::npos);
}

}  // namespace
}  // namespace segroute::fpga
