#include "net/express.h"

#include <gtest/gtest.h>

#include <random>

namespace segroute::net {
namespace {

TEST(Express, TrafficGeneratorsProduceValidMessages) {
  std::mt19937_64 rng(171);
  for (const Message& m : uniform_traffic(16, 50, rng)) {
    EXPECT_GE(m.src, 1);
    EXPECT_LE(m.src, 16);
    EXPECT_GE(m.dst, 1);
    EXPECT_LE(m.dst, 16);
    EXPECT_NE(m.src, m.dst);
  }
  for (const Message& m : neighbor_traffic(16, 50, rng)) {
    EXPECT_EQ(m.distance(), 1);
  }
}

TEST(Express, BitReversalIsAnInvolutionPattern) {
  const auto msgs = bit_reversal_traffic(16);
  EXPECT_FALSE(msgs.empty());
  for (const Message& m : msgs) {
    EXPECT_GE(m.src, 1);
    EXPECT_LE(m.src, 16);
    EXPECT_NE(m.src, m.dst);
  }
  // Every (a, b) has its mirror (b, a) in the pattern.
  for (const Message& m : msgs) {
    bool found = false;
    for (const Message& o : msgs) {
      if (o.src == m.dst && o.dst == m.src) found = true;
    }
    EXPECT_TRUE(found);
  }
}

TEST(Express, GeneratorsRejectBadParameters) {
  std::mt19937_64 rng(172);
  EXPECT_THROW(uniform_traffic(1, 5, rng), std::invalid_argument);
  EXPECT_THROW(neighbor_traffic(1, 5, rng), std::invalid_argument);
  EXPECT_THROW(bit_reversal_traffic(1), std::invalid_argument);
  EXPECT_THROW(express_channel(1, 16, 4), std::invalid_argument);
  EXPECT_THROW(express_channel(4, 16, 1), std::invalid_argument);
}

TEST(Express, ChannelOrganizationsHaveTheRightShape) {
  const auto local = local_channel(4, 16);
  EXPECT_EQ(local.max_segments_per_track(), 16);
  const auto bus = bus_channel(4, 16);
  EXPECT_EQ(bus.max_segments_per_track(), 1);
  const auto express = express_channel(4, 16, 4);
  EXPECT_EQ(express.num_tracks(), 4);
  // Alternating local / express lanes.
  EXPECT_EQ(express.track(0).num_segments(), 16);
  EXPECT_LT(express.track(1).num_segments(), 16);
}

TEST(Express, LongHaulLatencyLocalVsExpress) {
  // A single max-distance message: express lanes must beat the
  // fully segmented local channel (the whole point of [8]).
  const int pes = 32;
  const std::vector<Message> one = {Message{1, 32}};
  const auto local = offer_traffic(local_channel(4, pes), one);
  const auto expr = offer_traffic(express_channel(4, pes, 8), one);
  ASSERT_EQ(local.delivered, 1);
  ASSERT_EQ(expr.delivered, 1);
  EXPECT_LT(expr.mean_latency, local.mean_latency);
  EXPECT_LT(expr.mean_switches, local.mean_switches);
}

TEST(Express, NeighborTrafficDoesNotNeedExpressLanes) {
  std::mt19937_64 rng(173);
  const int pes = 32;
  const auto msgs = neighbor_traffic(pes, 12, rng);
  const auto local = offer_traffic(local_channel(4, pes), msgs);
  // A neighbor message spans two columns = two unit segments in a local
  // lane: entry + exit + one joining switch.
  EXPECT_GT(local.delivered, 0);
  EXPECT_DOUBLE_EQ(local.mean_switches, 3.0);
}

TEST(Express, BusChannelDropsExcessMessages) {
  // Two unsegmented tracks, three disjoint messages: each message takes
  // a whole bus, so only two can be delivered.
  const std::vector<Message> msgs = {Message{1, 2}, Message{4, 5},
                                     Message{7, 8}};
  const auto rep = offer_traffic(bus_channel(2, 8), msgs);
  EXPECT_EQ(rep.offered, 3);
  EXPECT_EQ(rep.delivered, 2);
}

TEST(Express, ReportAggregatesAreConsistent) {
  std::mt19937_64 rng(174);
  const int pes = 24;
  const auto msgs = uniform_traffic(pes, 20, rng);
  const auto rep = offer_traffic(express_channel(6, pes, 6), msgs);
  EXPECT_EQ(rep.offered, 20);
  EXPECT_GE(rep.delivered, 0);
  EXPECT_LE(rep.delivered, 20);
  if (rep.delivered > 0) {
    EXPECT_GT(rep.mean_latency, 0.0);
    EXPECT_LE(rep.mean_latency, rep.max_latency);
    EXPECT_GE(rep.mean_switches, 2.0);
  }
}

TEST(Express, MessagesBeyondChannelAreInvalidInput) {
  const auto rep = offer_traffic(local_channel(2, 8), {Message{1, 9}});
  EXPECT_FALSE(rep);
  EXPECT_EQ(rep.failure, alg::FailureKind::kInvalidInput);
  EXPECT_FALSE(rep.note.empty());
  EXPECT_EQ(rep.delivered, 0);
}

}  // namespace
}  // namespace segroute::net
