#include "npc/reduction.h"

#include <gtest/gtest.h>

#include <random>

#include "alg/dp.h"
#include "gen/fixtures.h"

namespace segroute::npc {
namespace {

TEST(Reduction, Example1StructureMatchesTheConstruction) {
  const auto inst = gen::fixtures::example1_nmts();
  const auto q = build_unlimited(inst);
  const int n = 3;
  // N = x_n + y_n + 7 = 8 + 12 + 7 = 27; T = n^2 = 9; M = 3n^2 + n = 30.
  EXPECT_EQ(q.channel.width(), 27);
  EXPECT_EQ(q.channel.num_tracks(), n * n);
  EXPECT_EQ(q.connections.size(), 3 * n * n + n);
  EXPECT_EQ(static_cast<int>(q.a.size()), n);
  EXPECT_EQ(static_cast<int>(q.b.size()), n);
  EXPECT_EQ(static_cast<int>(q.d.size()), n);
  EXPECT_EQ(static_cast<int>(q.e.size()), n * n - n);
  EXPECT_EQ(static_cast<int>(q.f.size()), n * n);

  // z-track i: (1,3), unit segments 4 .. z_i+4, then (z_i+5, N).
  for (int i = 0; i < n; ++i) {
    const Track& t = q.channel.track(i);
    EXPECT_EQ(t.segment(0), (Segment{1, 3}));
    const Column zi = static_cast<Column>(inst.z()[static_cast<std::size_t>(i)]);
    EXPECT_EQ(t.num_segments(), 1 + (zi + 1) + 1);
    EXPECT_EQ(t.segment(t.num_segments() - 1), (Segment{zi + 5, 27}));
    for (SegId s = 1; s + 1 < t.num_segments(); ++s) {
      EXPECT_EQ(t.segment(s).length(), 1);
    }
  }
  // Block tracks have exactly three segments.
  for (TrackId t = n; t < q.channel.num_tracks(); ++t) {
    EXPECT_EQ(q.channel.track(t).num_segments(), 3);
  }
  // Connection geometry: a_j = (4, x_j + 3); right(b_kj) - left(a_j) =
  // x_j + y_k (the paper's key identity).
  for (int j = 0; j < n; ++j) {
    EXPECT_EQ(q.connections[q.a[static_cast<std::size_t>(j)]].left, 4);
    EXPECT_EQ(q.connections[q.a[static_cast<std::size_t>(j)]].right,
              inst.x()[static_cast<std::size_t>(j)] + 3);
    for (int k = 0; k < n; ++k) {
      const auto& b = q.connections[q.b[static_cast<std::size_t>(k)]
                                        [static_cast<std::size_t>(j)]];
      EXPECT_EQ(b.right - 4, inst.x()[static_cast<std::size_t>(j)] +
                                 inst.y()[static_cast<std::size_t>(k)]);
    }
  }
}

TEST(Reduction, Proposition3AllBConnectionsOverlap) {
  const auto inst = gen::fixtures::example1_nmts();
  const auto q = build_unlimited(inst);
  for (int k1 = 0; k1 < q.n; ++k1) {
    for (int j1 = 0; j1 < q.n; ++j1) {
      for (int k2 = 0; k2 < q.n; ++k2) {
        for (int j2 = 0; j2 < q.n; ++j2) {
          EXPECT_TRUE(q.connections[q.b[k1][j1]].overlaps(
              q.connections[q.b[k2][j2]]));
        }
      }
    }
  }
}

TEST(Reduction, Lemma1BuildsAValidRouting) {
  const auto inst = gen::fixtures::example1_nmts();
  const auto q = build_unlimited(inst);
  const auto sol = inst.solve();
  ASSERT_TRUE(sol.has_value());
  const auto r = routing_from_matching(q, inst, *sol);
  EXPECT_TRUE(validate(q.channel, q.connections, r));
}

TEST(Reduction, Lemma2ExtractsAMatchingFromAnyRouting) {
  const auto inst = gen::fixtures::example1_nmts();
  const auto q = build_unlimited(inst);
  const auto dp = alg::dp_route_unlimited(q.channel, q.connections);
  ASSERT_TRUE(dp.success);
  const auto sol = matching_from_routing(q, inst, dp.routing);
  ASSERT_TRUE(sol.has_value());
  EXPECT_TRUE(inst.check(*sol));
}

TEST(Reduction, RejectsInvalidSolutionsAndUnreadyInstances) {
  const auto inst = gen::fixtures::example1_nmts();
  const auto q = build_unlimited(inst);
  NmtsSolution bad{{0, 1, 2}, {0, 1, 2}};
  EXPECT_THROW(routing_from_matching(q, inst, bad), std::invalid_argument);
  // x gaps below n: not reduction-ready.
  const NmtsInstance unready({1, 2, 3}, {10, 11, 12}, {11, 13, 15});
  EXPECT_FALSE(unready.reduction_ready());
  EXPECT_THROW(build_unlimited(unready), std::invalid_argument);
  EXPECT_THROW(build_two_segment(unready), std::invalid_argument);
}

TEST(Reduction, MatchingFromRoutingRejectsInvalidRoutings) {
  const auto inst = gen::fixtures::example1_nmts();
  const auto q = build_unlimited(inst);
  Routing empty(q.connections.size());
  EXPECT_FALSE(matching_from_routing(q, inst, empty).has_value());
}

TEST(Reduction, TwoSegmentStructureMatchesTheAppendix) {
  const auto inst = gen::fixtures::example1_nmts();
  const auto q2 = build_two_segment(inst);
  const int n = 3;
  EXPECT_EQ(q2.channel.num_tracks(), 2 * n * n - n);
  // M = a(n) + b(n^2) + e(n^2-n) + f(2n^2-n) + g(n^2-n).
  EXPECT_EQ(q2.connections.size(), n + n * n + (n * n - n) +
                                       (2 * n * n - n) + (n * n - n));
  // The first n^2 tracks have five segments each: (1,2) (3,3)
  // (4, x_j+3) (x_j+4, z_i+4) (z_i+5, N).
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      const Track& t = q2.channel.track(i * n + j);
      ASSERT_EQ(t.num_segments(), 5);
      EXPECT_EQ(t.segment(0), (Segment{1, 2}));
      EXPECT_EQ(t.segment(1), (Segment{3, 3}));
      EXPECT_EQ(t.segment(2).right,
                inst.x()[static_cast<std::size_t>(j)] + 3);
      EXPECT_EQ(t.segment(3).right,
                inst.z()[static_cast<std::size_t>(i)] + 4);
    }
  }
}

TEST(Reduction, AppendixRoutingIsAValid2SegmentRouting) {
  const auto inst = gen::fixtures::example1_nmts();
  const auto q2 = build_two_segment(inst);
  const auto sol = inst.solve();
  ASSERT_TRUE(sol.has_value());
  const auto r = routing_from_matching_two_segment(q2, inst, *sol);
  EXPECT_TRUE(validate(q2.channel, q2.connections, r, 2));
}

TEST(Reduction, Theorem1EquivalenceOnRandomInstances) {
  // NMTS solvable <=> Q routable (both directions, via the DP router).
  std::mt19937_64 rng(101);
  int solvable = 0, unsolvable = 0;
  for (int iter = 0; iter < 14; ++iter) {
    const int n = 2 + static_cast<int>(rng() % 2);  // n in {2, 3}
    const auto raw = (iter % 2 == 0) ? random_solvable_nmts(n, rng)
                                     : random_perturbed_nmts(n, rng);
    const auto inst = raw.normalized();
    const bool nmts_ok = inst.solve().has_value();
    const auto q = build_unlimited(inst);
    const auto dp = alg::dp_route_unlimited(q.channel, q.connections);
    ASSERT_EQ(nmts_ok, dp.success) << "iter " << iter << " n=" << n;
    if (nmts_ok) {
      ++solvable;
      const auto back = matching_from_routing(q, inst, dp.routing);
      ASSERT_TRUE(back.has_value()) << "iter " << iter;
      EXPECT_TRUE(inst.check(*back)) << "iter " << iter;
    } else {
      ++unsolvable;
    }
  }
  EXPECT_GT(solvable, 0);
  EXPECT_GT(unsolvable, 0);
}

TEST(Reduction, Theorem2EquivalenceOnRandomInstances) {
  // NMTS solvable <=> Q2 2-segment routable.
  std::mt19937_64 rng(102);
  int solvable = 0, unsolvable = 0;
  for (int iter = 0; iter < 8; ++iter) {
    const int n = 2;
    const auto raw = (iter % 2 == 0) ? random_solvable_nmts(n, rng)
                                     : random_perturbed_nmts(n, rng);
    const auto inst = raw.normalized();
    const bool nmts_ok = inst.solve().has_value();
    const auto q2 = build_two_segment(inst);
    const auto dp =
        alg::dp_route_ksegment(q2.channel, q2.connections, 2);
    ASSERT_EQ(nmts_ok, dp.success) << "iter " << iter;
    (nmts_ok ? solvable : unsolvable)++;
  }
  EXPECT_GT(solvable, 0);
  EXPECT_GT(unsolvable, 0);
}

}  // namespace
}  // namespace segroute::npc
