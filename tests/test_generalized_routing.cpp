#include "core/generalized.h"

#include <gtest/gtest.h>

namespace segroute {
namespace {

SegmentedChannel ch() {
  // t0: (1,4)(5,9); t1: (1,5)(6,9)
  return SegmentedChannel({Track(9, {4}), Track(9, {5})});
}

TEST(GeneralizedRouting, PartsTileValidation) {
  const auto c = ch();
  ConnectionSet cs;
  cs.add(2, 8, "a");
  GeneralizedRouting g(1);
  g.add_part(0, 2, 5, 1);
  g.add_part(0, 6, 8, 1);
  EXPECT_TRUE(validate(c, cs, g));
}

TEST(GeneralizedRouting, RejectsGapsOverlapsAndWrongEnds) {
  const auto c = ch();
  ConnectionSet cs;
  cs.add(2, 8, "a");
  {
    GeneralizedRouting g(1);
    g.add_part(0, 2, 4, 0);
    g.add_part(0, 6, 8, 1);  // gap at 5
    EXPECT_FALSE(validate(c, cs, g));
  }
  {
    GeneralizedRouting g(1);
    g.add_part(0, 2, 5, 0);
    g.add_part(0, 5, 8, 1);  // overlap at 5
    EXPECT_FALSE(validate(c, cs, g));
  }
  {
    GeneralizedRouting g(1);
    g.add_part(0, 2, 7, 0);  // stops short of 8
    EXPECT_FALSE(validate(c, cs, g));
  }
  {
    GeneralizedRouting g(1);  // no parts at all
    EXPECT_FALSE(validate(c, cs, g));
  }
  {
    GeneralizedRouting g(1);
    g.add_part(0, 2, 8, 5);  // bad track
    EXPECT_FALSE(validate(c, cs, g));
  }
}

TEST(GeneralizedRouting, SamePartParentMayShareASegment) {
  const auto c = ch();
  ConnectionSet cs;
  cs.add(1, 9, "a");
  // Both parts of `a` touch segment (1,5) of track 1? No — construct a
  // same-segment revisit: part 1 on t0 (1,4), part 2 on t1 (5,9)... use a
  // genuine revisit instead: parts (1,2) t0, (3,3) t1, (4,9) t0. Parts 1
  // and 3 both occupy t0's segment (1,4): allowed for the same connection.
  GeneralizedRouting g(1);
  g.add_part(0, 1, 2, 0);
  g.add_part(0, 3, 3, 1);
  g.add_part(0, 4, 9, 0);
  EXPECT_TRUE(validate(c, cs, g));
}

TEST(GeneralizedRouting, DifferentConnectionsMayNotShareASegment) {
  const auto c = ch();
  ConnectionSet cs;
  cs.add(1, 2, "a");
  cs.add(3, 4, "b");
  GeneralizedRouting g(2);
  g.add_part(0, 1, 2, 0);
  g.add_part(1, 3, 4, 0);  // same segment (1,4) of t0
  const auto v = validate(c, cs, g);
  EXPECT_FALSE(v);
  EXPECT_NE(v.error.find("shared"), std::string::npos);
}

TEST(GeneralizedRouting, MaxSegmentsCountsDistinctSegments) {
  const auto c = ch();
  ConnectionSet cs;
  cs.add(2, 8, "a");
  GeneralizedRouting g(1);
  g.add_part(0, 2, 5, 1);  // t1 segment (1,5)
  g.add_part(0, 6, 8, 1);  // t1 segment (6,9)
  EXPECT_TRUE(validate(c, cs, g, 2));
  EXPECT_FALSE(validate(c, cs, g, 1));
}

TEST(GeneralizedRouting, MaxTracksPerConnection) {
  const auto c = ch();
  ConnectionSet cs;
  cs.add(2, 8, "a");
  GeneralizedRouting g(1);
  g.add_part(0, 2, 4, 0);
  g.add_part(0, 5, 8, 1);
  EXPECT_TRUE(validate(c, cs, g, std::nullopt, 2));
  EXPECT_FALSE(validate(c, cs, g, std::nullopt, 1));
  EXPECT_EQ(g.tracks_used(0), 2);
  EXPECT_EQ(g.track_changes(0), 1);
}

TEST(GeneralizedRouting, NormalizeMergesAdjacentSameTrackParts) {
  GeneralizedRouting g(1);
  g.add_part(0, 1, 3, 0);
  g.add_part(0, 4, 5, 0);
  g.add_part(0, 6, 7, 1);
  g.normalize();
  ASSERT_EQ(g.parts(0).size(), 2u);
  EXPECT_EQ(g.parts(0)[0], (RoutePart{1, 5, 0}));
  EXPECT_EQ(g.parts(0)[1], (RoutePart{6, 7, 1}));
  EXPECT_EQ(g.track_changes(0), 1);
}

TEST(GeneralizedRouting, FromRoutingLiftsWholeConnections) {
  const auto c = ch();
  ConnectionSet cs;
  cs.add(1, 4, "a");
  cs.add(6, 9, "b");
  Routing r(2);
  r.assign(0, 0);
  r.assign(1, 1);
  const auto g = GeneralizedRouting::from_routing(cs, r);
  EXPECT_TRUE(validate(c, cs, g));
  EXPECT_EQ(g.parts(0).size(), 1u);
  EXPECT_EQ(g.parts(1)[0].track, 1);
}

TEST(GeneralizedRouting, SizeMismatchRejected) {
  const auto c = ch();
  ConnectionSet cs;
  cs.add(1, 4, "a");
  EXPECT_FALSE(validate(c, cs, GeneralizedRouting(2)));
}

}  // namespace
}  // namespace segroute
