#include "alg/branch_bound.h"

#include <gtest/gtest.h>

#include <random>
#include <set>

#include "alg/dp.h"
#include "core/routing.h"
#include "gen/fixtures.h"
#include "gen/segmentation.h"
#include "gen/workload.h"

namespace segroute::alg {
namespace {

SegmentedChannel random_channel(TrackId T, Column width, int max_cuts,
                                std::mt19937_64& rng) {
  std::vector<Track> tracks;
  for (TrackId t = 0; t < T; ++t) {
    std::set<Column> cuts;
    const int k = static_cast<int>(rng() % static_cast<unsigned>(max_cuts + 1));
    for (int i = 0; i < k; ++i) {
      cuts.insert(1 + static_cast<Column>(rng() % (width - 1)));
    }
    tracks.emplace_back(width, std::vector<Column>(cuts.begin(), cuts.end()));
  }
  return SegmentedChannel(std::move(tracks));
}

TEST(BranchBound, MatchesTheDpOptimumOnFig3) {
  const auto ch = gen::fixtures::fig3_channel();
  const auto cs = gen::fixtures::fig3_connections();
  const auto w = weights::occupied_length();
  const auto bb = branch_bound_route(ch, cs, w);
  const auto dp = dp_route_optimal(ch, cs, w);
  ASSERT_TRUE(bb.success && dp.success);
  EXPECT_TRUE(validate(ch, cs, bb.routing));
  EXPECT_NEAR(bb.weight, dp.weight, 1e-9);
}

TEST(BranchBound, MatchesDpOptimalOnRandomInstances) {
  std::mt19937_64 rng(221);
  const auto w = weights::occupied_length();
  int feasible = 0;
  for (int iter = 0; iter < 60; ++iter) {
    const auto ch = random_channel(4, 16, 4, rng);
    const auto cs = gen::geometric_workload(
        3 + static_cast<int>(rng() % 5), 16, 4.0, rng);
    const auto bb = branch_bound_route(ch, cs, w);
    const auto dp = dp_route_optimal(ch, cs, w);
    ASSERT_EQ(bb.success, dp.success) << "iter " << iter;
    if (bb.success) {
      ++feasible;
      EXPECT_NEAR(bb.weight, dp.weight, 1e-9) << "iter " << iter;
      EXPECT_TRUE(validate(ch, cs, bb.routing)) << "iter " << iter;
    }
  }
  EXPECT_GT(feasible, 10);
}

TEST(BranchBound, RespectsTheSegmentLimit) {
  std::mt19937_64 rng(222);
  const auto w = weights::occupied_length();
  for (int iter = 0; iter < 30; ++iter) {
    const auto ch = random_channel(3, 14, 4, rng);
    const auto cs = gen::geometric_workload(
        2 + static_cast<int>(rng() % 4), 14, 4.0, rng);
    BranchBoundOptions o;
    o.max_segments = 2;
    const auto bb = branch_bound_route(ch, cs, w, o);
    const auto dp = dp_route_optimal(ch, cs, w, 2);
    ASSERT_EQ(bb.success, dp.success) << "iter " << iter;
    if (bb.success) {
      EXPECT_TRUE(validate(ch, cs, bb.routing, 2)) << "iter " << iter;
      EXPECT_NEAR(bb.weight, dp.weight, 1e-9) << "iter " << iter;
    }
  }
}

TEST(BranchBound, InfiniteWeightsForbidAssignments) {
  const auto ch = SegmentedChannel({Track(9, {4}), Track(9, {})});
  ConnectionSet cs;
  cs.add(1, 3);
  const auto bb =
      branch_bound_route(ch, cs, weights::segments_capped(1));
  ASSERT_TRUE(bb.success);
  // Track 0 segment (1,4): 1 segment; track 1 is also 1 segment, but the
  // cheapest (count weight 1) either way — just confirm validity.
  EXPECT_TRUE(validate(ch, cs, bb.routing, 1));
}

TEST(BranchBound, InfeasibleAndDegenerateInputs) {
  const auto ch = SegmentedChannel::identical(1, 9, {4});
  ConnectionSet two;
  two.add(1, 2);
  two.add(3, 4);
  EXPECT_FALSE(
      branch_bound_route(ch, two, weights::occupied_length()).success);
  EXPECT_TRUE(branch_bound_route(ch, ConnectionSet{},
                                 weights::occupied_length())
                  .success);
  ConnectionSet big;
  big.add(1, 99);
  EXPECT_FALSE(
      branch_bound_route(ch, big, weights::occupied_length()).success);
}

TEST(BranchBound, NodeLimitReportsBestEffort) {
  std::mt19937_64 rng(223);
  const auto ch = random_channel(5, 24, 5, rng);
  const auto cs = gen::geometric_workload(10, 24, 5.0, rng);
  BranchBoundOptions o;
  o.max_nodes = 3;  // absurdly small
  const auto bb = branch_bound_route(ch, cs, weights::occupied_length(), o);
  EXPECT_FALSE(bb.success);
  EXPECT_EQ(bb.failure, FailureKind::kBudgetExhausted);
  EXPECT_NE(bb.note.find("node limit"), std::string::npos);
}

TEST(BranchBound, PrunesComparedToPlainBacktracking) {
  // The suffix bound must cut the tree: expanded nodes stay modest on a
  // mid-size instance where full enumeration would be astronomical.
  std::mt19937_64 rng(224);
  const auto ch = gen::staggered_segmentation(6, 32, 8);
  const auto cs = gen::routable_workload(ch, 14, 6.0, rng);
  const auto bb = branch_bound_route(ch, cs, weights::occupied_length());
  ASSERT_TRUE(bb.success);
  EXPECT_LT(bb.stats.iterations, 2'000'000u);
}

}  // namespace
}  // namespace segroute::alg
