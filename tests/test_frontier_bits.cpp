// Adversarial tests for the bit-packed frontier layer (alg/frontier_bits.h).
//
// The DP routers' dedup is only exact if (a) packing is injective — two
// distinct frontiers never pack to equal words — and (b) the hash spreads
// near-identical states apart so the open-addressing probe compares the
// right slots. The worst case for both is a pair of states differing in
// exactly one track's occupancy, often by one column; these tests sweep
// 10k randomized channel shapes of exactly such pairs.
#include "alg/frontier_bits.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

namespace segroute::alg::bits {
namespace {

struct Shape {
  std::size_t tracks;
  std::uint32_t width;
};

Shape random_shape(std::mt19937_64& rng) {
  // 1..16 tracks, width 4..96: covers every words() count the routers
  // see in practice (1 word for typical channels through 2-3 words).
  return {1 + static_cast<std::size_t>(rng() % 16),
          4 + static_cast<std::uint32_t>(rng() % 93)};
}

std::vector<std::int32_t> random_state(const Shape& sh, std::mt19937_64& rng) {
  std::vector<std::int32_t> vals(sh.tracks);
  for (auto& v : vals) {
    v = static_cast<std::int32_t>(rng() % (sh.width + 2));  // [0, width+1]
  }
  return vals;
}

/// Copy of `vals` with exactly one track's occupancy changed to a
/// different value in range.
std::vector<std::int32_t> perturb_one(const std::vector<std::int32_t>& vals,
                                      const Shape& sh, std::mt19937_64& rng) {
  std::vector<std::int32_t> out = vals;
  const std::size_t at = rng() % out.size();
  std::int32_t nv;
  do {
    nv = static_cast<std::int32_t>(rng() % (sh.width + 2));
  } while (nv == out[at]);
  out[at] = nv;
  return out;
}

TEST(FrontierBits, PackingInjectiveUnderSingleTrackPerturbation) {
  std::mt19937_64 rng(7001);
  std::vector<std::uint64_t> wa, wb;
  for (int iter = 0; iter < 10'000; ++iter) {
    const Shape sh = random_shape(rng);
    FrontierCodec codec;
    codec.init_uniform(sh.tracks, sh.width + 1);
    const auto a = random_state(sh, rng);
    const auto b = perturb_one(a, sh, rng);
    wa.assign(codec.words(), 0);
    wb.assign(codec.words(), 0);
    codec.pack(a.data(), wa.data());
    codec.pack(b.data(), wb.data());
    EXPECT_FALSE(words_equal(wa.data(), wb.data(), codec.words()))
        << "iter " << iter << ": distinct states packed to equal words";

    // Roundtrip: packing loses nothing.
    std::vector<std::int32_t> back(sh.tracks);
    codec.unpack(wa.data(), back.data());
    EXPECT_EQ(back, a) << "iter " << iter;
  }
}

TEST(FrontierBits, HashSeparatesSingleTrackPerturbations) {
  // hash_words is a full-avalanche mix per word, so a 64-bit collision
  // between a state and its one-track perturbation is a ~2^-64 event;
  // across 10k deterministic pairs, zero collisions is the expectation
  // and any hit means the mix regressed.
  std::mt19937_64 rng(7002);
  for (int iter = 0; iter < 10'000; ++iter) {
    const Shape sh = random_shape(rng);
    FrontierCodec codec;
    codec.init_uniform(sh.tracks, sh.width + 1);
    const auto a = random_state(sh, rng);
    const auto b = perturb_one(a, sh, rng);
    std::vector<std::uint64_t> wa(codec.words()), wb(codec.words());
    codec.pack(a.data(), wa.data());
    codec.pack(b.data(), wb.data());
    EXPECT_NE(hash_words(wa.data(), wa.size()),
              hash_words(wb.data(), wb.size()))
        << "iter " << iter << ": hash collision on a one-track perturbation";
  }
}

TEST(FrontierBits, RegisterHashMatchesGenericSingleWordHash) {
  // The DP's one-word fast path hashes through hash_word; any drift from
  // hash_words(&w, 1) would silently change probe order.
  std::mt19937_64 rng(7003);
  for (int iter = 0; iter < 10'000; ++iter) {
    const std::uint64_t w = rng();
    EXPECT_EQ(hash_word(w), hash_words(&w, 1));
  }
}

TEST(FrontierBits, NoFalseDedupMergeInOpenAddressingTable) {
  // The routers' dedup distilled: an inline-key open-addressing table
  // (stride words()+1, last word = id+1 occupancy). For each randomized
  // channel, insert a state, then probe its one-track perturbation: it
  // must land in its own slot, never merge into the original's.
  std::mt19937_64 rng(7004);
  for (int iter = 0; iter < 10'000; ++iter) {
    const Shape sh = random_shape(rng);
    FrontierCodec codec;
    codec.init_uniform(sh.tracks, sh.width + 1);
    const std::size_t W = codec.words();
    const std::size_t stride = W + 1;
    constexpr std::size_t kCap = 16;  // power of two, holds both states
    std::vector<std::uint64_t> slots(kCap * stride, 0);

    const auto insert = [&](const std::uint64_t* key,
                            std::uint64_t id) -> std::uint64_t {
      std::size_t pos =
          static_cast<std::size_t>(hash_words(key, W)) & (kCap - 1);
      for (;;) {
        std::uint64_t* slot = slots.data() + pos * stride;
        if (slot[W] == 0) {
          for (std::size_t j = 0; j < W; ++j) slot[j] = key[j];
          slot[W] = id + 1;
          return id;  // fresh insertion
        }
        if (words_equal(slot, key, W)) return slot[W] - 1;  // dedup hit
        pos = (pos + 1) & (kCap - 1);
      }
    };

    const auto a = random_state(sh, rng);
    const auto b = perturb_one(a, sh, rng);
    std::vector<std::uint64_t> wa(W), wb(W);
    codec.pack(a.data(), wa.data());
    codec.pack(b.data(), wb.data());
    ASSERT_EQ(insert(wa.data(), 0), 0u);
    EXPECT_EQ(insert(wb.data(), 1), 1u)
        << "iter " << iter << ": perturbed state merged into the original";
    // And genuine duplicates still merge.
    EXPECT_EQ(insert(wa.data(), 2), 0u) << "iter " << iter;
    EXPECT_EQ(insert(wb.data(), 3), 1u) << "iter " << iter;
  }
}

TEST(FrontierBits, HeterogeneousPatternRoundtripsAndStaysInjective) {
  // The generalized DP packs {column, id, id, id} per track; exercise the
  // table-driven layout the same way.
  std::mt19937_64 rng(7005);
  for (int iter = 0; iter < 2'000; ++iter) {
    const std::size_t tracks = 1 + rng() % 8;
    const std::uint8_t pattern[4] = {7, 6, 6, 6};
    FrontierCodec codec;
    codec.init(pattern, 4, tracks);
    std::vector<std::int32_t> a(4 * tracks);
    for (std::size_t i = 0; i < a.size(); ++i) {
      a[i] = static_cast<std::int32_t>(rng() & ((1u << pattern[i % 4]) - 1));
    }
    auto b = a;
    const std::size_t at = rng() % b.size();
    b[at] ^= 1;  // differs in one low bit of one field
    std::vector<std::uint64_t> wa(codec.words()), wb(codec.words());
    codec.pack(a.data(), wa.data());
    codec.pack(b.data(), wb.data());
    EXPECT_FALSE(words_equal(wa.data(), wb.data(), codec.words()));
    std::vector<std::int32_t> back(a.size());
    codec.unpack(wa.data(), back.data());
    EXPECT_EQ(back, a) << "iter " << iter;
  }
}

}  // namespace
}  // namespace segroute::alg::bits
