#include "match/hopcroft_karp.h"

#include <gtest/gtest.h>

#include <random>

namespace segroute::match {
namespace {

TEST(HopcroftKarp, EmptyGraph) {
  BipartiteGraph g(0, 0);
  EXPECT_EQ(hopcroft_karp(g).size, 0);
}

TEST(HopcroftKarp, NoEdges) {
  BipartiteGraph g(3, 3);
  const auto m = hopcroft_karp(g);
  EXPECT_EQ(m.size, 0);
  EXPECT_EQ(m.match_left, std::vector<int>({-1, -1, -1}));
}

TEST(HopcroftKarp, PerfectMatchingOnIdentity) {
  BipartiteGraph g(4, 4);
  for (int i = 0; i < 4; ++i) g.add_edge(i, i);
  const auto m = hopcroft_karp(g);
  EXPECT_EQ(m.size, 4);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(m.match_left[i], i);
}

TEST(HopcroftKarp, AugmentingPathIsFound) {
  // l0-{r0}, l1-{r0,r1}: greedy could starve l0; HK must match both.
  BipartiteGraph g(2, 2);
  g.add_edge(1, 0);
  g.add_edge(1, 1);
  g.add_edge(0, 0);
  const auto m = hopcroft_karp(g);
  EXPECT_EQ(m.size, 2);
  EXPECT_EQ(m.match_left[0], 0);
  EXPECT_EQ(m.match_left[1], 1);
}

TEST(HopcroftKarp, MatchArraysAreConsistent) {
  BipartiteGraph g(3, 4);
  g.add_edge(0, 1);
  g.add_edge(1, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  const auto m = hopcroft_karp(g);
  EXPECT_EQ(m.size, 3);
  for (int l = 0; l < 3; ++l) {
    const int r = m.match_left[static_cast<std::size_t>(l)];
    if (r != -1) {
      EXPECT_EQ(m.match_right[static_cast<std::size_t>(r)], l);
    }
  }
}

TEST(HopcroftKarp, DeficientSideLimitsMatching) {
  BipartiteGraph g(5, 2);
  for (int l = 0; l < 5; ++l)
    for (int r = 0; r < 2; ++r) g.add_edge(l, r);
  EXPECT_EQ(hopcroft_karp(g).size, 2);
}

TEST(HopcroftKarp, RejectsOutOfRangeEdges) {
  BipartiteGraph g(2, 2);
  EXPECT_THROW(g.add_edge(2, 0), std::out_of_range);
  EXPECT_THROW(g.add_edge(0, 2), std::out_of_range);
  EXPECT_THROW(g.add_edge(-1, 0), std::out_of_range);
  EXPECT_THROW(BipartiteGraph(-1, 2), std::invalid_argument);
}

/// Oracle: maximum matching by DFS augmenting paths (Kuhn's algorithm).
int kuhn_size(const BipartiteGraph& g) {
  std::vector<int> mr(static_cast<std::size_t>(g.num_right()), -1);
  std::vector<char> used;
  std::function<bool(int)> try_kuhn = [&](int u) -> bool {
    for (int v : g.neighbors(u)) {
      if (used[static_cast<std::size_t>(v)]) continue;
      used[static_cast<std::size_t>(v)] = 1;
      if (mr[static_cast<std::size_t>(v)] == -1 ||
          try_kuhn(mr[static_cast<std::size_t>(v)])) {
        mr[static_cast<std::size_t>(v)] = u;
        return true;
      }
    }
    return false;
  };
  int size = 0;
  for (int u = 0; u < g.num_left(); ++u) {
    used.assign(static_cast<std::size_t>(g.num_right()), 0);
    if (try_kuhn(u)) ++size;
  }
  return size;
}

TEST(HopcroftKarp, MatchesKuhnOracleOnRandomGraphs) {
  std::mt19937_64 rng(99);
  for (int iter = 0; iter < 50; ++iter) {
    const int nl = 1 + static_cast<int>(rng() % 12);
    const int nr = 1 + static_cast<int>(rng() % 12);
    BipartiteGraph g(nl, nr);
    for (int l = 0; l < nl; ++l) {
      for (int r = 0; r < nr; ++r) {
        if (rng() % 3 == 0) g.add_edge(l, r);
      }
    }
    EXPECT_EQ(hopcroft_karp(g).size, kuhn_size(g)) << "iter " << iter;
  }
}

}  // namespace
}  // namespace segroute::match
