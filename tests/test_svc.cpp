// Routing-as-a-service: admission control, deterministic driver mode,
// per-tenant budget slicing, live edits racing traffic, and the
// /metrics exposition (round-trip parsed and checked).
//
// Naming note: every suite here starts with "Svc" so the svc_smoke
// ctest (--gtest_filter=Svc*) covers the whole file.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <future>
#include <map>
#include <mutex>
#include <random>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "alg/delta.h"
#include "core/channel_index.h"
#include "core/routing.h"
#include "core/track.h"
#include "engine/batch.h"
#include "gen/segmentation.h"
#include "gen/workload.h"
#include "svc/http.h"
#include "svc/prom.h"
#include "svc/service.h"
#include "util/pool.h"

namespace segroute {
namespace {

SegmentedChannel test_channel() {
  return gen::staggered_segmentation(8, 64, 8);
}

/// A deterministic mixed two-tenant instance pool: "alice" routes small
/// routable-by-construction sets (the cache-friendly tenant), "bob"
/// routes larger random sets (the hard tenant, sliced in most tests).
struct Workload {
  std::vector<ConnectionSet> alice;
  std::vector<ConnectionSet> bob;
};

Workload make_workload(const SegmentedChannel& ch, std::uint64_t seed) {
  Workload w;
  std::mt19937_64 rng(seed);
  for (int i = 0; i < 6; ++i) {
    w.alice.push_back(gen::routable_workload(ch, 6, 6.0, rng));
  }
  for (int i = 0; i < 6; ++i) {
    w.bob.push_back(gen::geometric_workload(14, 64, 8.0, rng));
  }
  return w;
}

/// Runs one fixed driver-mode schedule and returns the digest folded
/// over responses in submission order.
std::uint64_t run_schedule(int threads, bool use_cache,
                           std::uint64_t seed = 7) {
  const SegmentedChannel ch = test_channel();
  svc::SvcOptions o;
  o.threads = threads;
  o.queue_capacity = 32;
  o.max_inflight_per_tenant = 12;
  o.drain_window = 16;
  o.tenant_slice_ticks["bob"] = 2000;
  o.engine.use_cache = use_cache;
  svc::RoutingService svc(ch, o);

  const Workload w = make_workload(ch, seed);
  std::mt19937_64 arrivals(seed * 977);
  std::vector<std::future<svc::SvcResponse>> futs;
  for (int t = 0; t < 12; ++t) {
    const int n_alice = static_cast<int>(arrivals() % 4);
    const int n_bob = static_cast<int>(arrivals() % 3);
    for (int i = 0; i < n_alice; ++i) {
      svc::SvcRequest rq;
      rq.tenant = "alice";
      rq.connections = w.alice[arrivals() % w.alice.size()];
      futs.push_back(svc.submit(std::move(rq)));
    }
    for (int i = 0; i < n_bob; ++i) {
      svc::SvcRequest rq;
      rq.tenant = "bob";
      rq.connections = w.bob[arrivals() % w.bob.size()];
      futs.push_back(svc.submit(std::move(rq)));
    }
    svc.tick();
  }
  svc.stop(svc::RoutingService::StopMode::kDrain);

  std::uint64_t digest = 1469598103934665603ull;
  for (auto& f : futs) digest = svc::fold_digest(digest, f.get());
  return digest;
}

TEST(SvcDeterminism, DigestIdenticalAcrossThreadsAndCacheModes) {
  const std::uint64_t base = run_schedule(1, true);
  EXPECT_EQ(run_schedule(2, true), base);
  EXPECT_EQ(run_schedule(8, true), base);
  // threads <= 0 resolves to hardware_threads() and must not change
  // results either (the library-wide auto convention).
  EXPECT_EQ(run_schedule(0, true), base);
  // The memo cache may only change wall clock and counters, never
  // outcomes.
  EXPECT_EQ(run_schedule(1, false), base);
  EXPECT_EQ(run_schedule(8, false), base);
}

TEST(SvcDeterminism, ThreadsAutoResolves) {
  const SegmentedChannel ch = test_channel();
  svc::SvcOptions o;
  o.threads = -3;
  svc::RoutingService svc(ch, o);
  EXPECT_EQ(svc.options().threads, util::hardware_threads());
  EXPECT_GE(svc.options().threads, 1);
  // The shared engine's inner pool must stay inline (the service's own
  // pool parallelizes across requests).
  EXPECT_EQ(svc.options().engine.threads, 1);
}

TEST(SvcAdmission, QueueFullIsTypedAndImmediate) {
  const SegmentedChannel ch = test_channel();
  svc::SvcOptions o;
  o.queue_capacity = 2;
  svc::RoutingService svc(ch, o);
  const Workload w = make_workload(ch, 11);

  std::vector<std::future<svc::SvcResponse>> futs;
  for (int i = 0; i < 5; ++i) {
    svc::SvcRequest rq;
    rq.tenant = "alice";
    rq.connections = w.alice[0];
    futs.push_back(svc.submit(std::move(rq)));
  }
  // The two queued requests resolve on drain; the three overflow
  // rejections resolved already, typed.
  int accepted = 0, rejected = 0;
  svc.stop(svc::RoutingService::StopMode::kDrain);
  for (auto& f : futs) {
    const svc::SvcResponse r = f.get();
    if (r.admit == svc::Admit::kAccepted) {
      ++accepted;
      EXPECT_TRUE(r.result.success);
    } else {
      ++rejected;
      EXPECT_EQ(r.admit, svc::Admit::kQueueFull);
      EXPECT_EQ(r.result.failure, alg::FailureKind::kBudgetExhausted);
      EXPECT_NE(r.result.note.find("queue-full"), std::string::npos);
    }
  }
  EXPECT_EQ(accepted, 2);
  EXPECT_EQ(rejected, 3);
  const svc::SvcStats s = svc.stats();
  EXPECT_EQ(s.accepted, 2u);
  EXPECT_EQ(s.rejected_queue_full, 3u);
  EXPECT_EQ(s.served, 2u);
}

TEST(SvcAdmission, TenantInflightCapIsTyped) {
  const SegmentedChannel ch = test_channel();
  svc::SvcOptions o;
  o.max_inflight_per_tenant = 1;
  svc::RoutingService svc(ch, o);
  const Workload w = make_workload(ch, 12);

  svc::SvcRequest rq;
  rq.tenant = "alice";
  rq.connections = w.alice[0];
  auto f1 = svc.submit(std::move(rq));

  svc::SvcRequest rq2;
  rq2.tenant = "alice";
  rq2.connections = w.alice[1];
  auto f2 = svc.submit(std::move(rq2));
  EXPECT_EQ(f2.get().admit, svc::Admit::kTenantLimit);

  // A different tenant is unaffected.
  svc::SvcRequest rq3;
  rq3.tenant = "bob";
  rq3.connections = w.alice[1];
  auto f3 = svc.submit(std::move(rq3));

  svc.tick();
  EXPECT_EQ(f1.get().admit, svc::Admit::kAccepted);
  EXPECT_EQ(f3.get().admit, svc::Admit::kAccepted);

  // The cap releases once the in-flight request finished.
  svc::SvcRequest rq4;
  rq4.tenant = "alice";
  rq4.connections = w.alice[1];
  auto f4 = svc.submit(std::move(rq4));
  svc.tick();
  EXPECT_EQ(f4.get().admit, svc::Admit::kAccepted);
}

TEST(SvcAdmission, EmptyTenantIsInvalid) {
  const SegmentedChannel ch = test_channel();
  svc::RoutingService svc(ch);
  svc::SvcRequest rq;  // tenant left empty
  const svc::SvcResponse r = svc.submit(std::move(rq)).get();
  EXPECT_EQ(r.admit, svc::Admit::kInvalid);
  EXPECT_EQ(r.result.failure, alg::FailureKind::kInvalidInput);
}

TEST(SvcAdmission, GracefulDrainLosesNothing) {
  const SegmentedChannel ch = test_channel();
  svc::SvcOptions o;
  o.drain_window = 4;
  svc::RoutingService svc(ch, o);
  const Workload w = make_workload(ch, 13);

  std::vector<std::future<svc::SvcResponse>> futs;
  for (int i = 0; i < 20; ++i) {
    svc::SvcRequest rq;
    rq.tenant = "alice";
    rq.connections = w.alice[i % w.alice.size()];
    futs.push_back(svc.submit(std::move(rq)));
  }
  svc.stop(svc::RoutingService::StopMode::kDrain);
  for (auto& f : futs) {
    const svc::SvcResponse r = f.get();
    EXPECT_EQ(r.admit, svc::Admit::kAccepted);
    EXPECT_TRUE(r.result.success);
  }
  // Post-stop submissions are rejected, typed.
  svc::SvcRequest late;
  late.tenant = "alice";
  late.connections = w.alice[0];
  EXPECT_EQ(svc.submit(std::move(late)).get().admit,
            svc::Admit::kShuttingDown);
}

TEST(SvcAdmission, RejectStopRespondsToEveryQueuedRequest) {
  const SegmentedChannel ch = test_channel();
  svc::RoutingService svc(ch);
  const Workload w = make_workload(ch, 14);

  std::vector<std::future<svc::SvcResponse>> futs;
  for (int i = 0; i < 10; ++i) {
    svc::SvcRequest rq;
    rq.tenant = "alice";
    rq.connections = w.alice[i % w.alice.size()];
    futs.push_back(svc.submit(std::move(rq)));
  }
  svc.stop(svc::RoutingService::StopMode::kReject);
  for (auto& f : futs) {
    const svc::SvcResponse r = f.get();  // nothing dropped: every future resolves
    EXPECT_EQ(r.admit, svc::Admit::kShuttingDown);
    EXPECT_EQ(r.result.failure, alg::FailureKind::kBudgetExhausted);
  }
}

TEST(SvcSlicing, TenantTickSliceBoundsHardInstances) {
  const SegmentedChannel ch = test_channel();
  svc::SvcOptions o;
  o.tenant_slice_ticks["bob"] = 3;  // absurdly small: every route exhausts
  o.serve_cached_under_budget = false;
  svc::RoutingService svc(ch, o);
  const Workload w = make_workload(ch, 15);

  svc::SvcRequest hard;
  hard.tenant = "bob";
  hard.connections = w.bob[0];
  auto fb = svc.submit(std::move(hard));

  svc::SvcRequest easy;
  easy.tenant = "alice";
  easy.connections = w.alice[0];
  auto fa = svc.submit(std::move(easy));

  svc.tick();
  const svc::SvcResponse rb = fb.get();
  EXPECT_FALSE(rb.result.success);
  EXPECT_EQ(rb.result.failure, alg::FailureKind::kBudgetExhausted);
  EXPECT_TRUE(fa.get().result.success);  // alice unaffected by bob's slice
}

TEST(SvcSlicing, WarmCacheHitServedUnderBudget) {
  const SegmentedChannel ch = test_channel();
  const Workload w = make_workload(ch, 16);

  for (const bool allow : {true, false}) {
    svc::SvcOptions o;
    o.tenant_slice_ticks["bob"] = 3;
    o.serve_cached_under_budget = allow;
    svc::RoutingService svc(ch, o);

    // Tick 1: alice warms the cache with the exact instance.
    svc::SvcRequest warm;
    warm.tenant = "alice";
    warm.connections = w.bob[0];
    auto fw = svc.submit(std::move(warm));
    svc.tick();
    const svc::SvcResponse rw = fw.get();
    ASSERT_EQ(rw.result.failure == alg::FailureKind::kBudgetExhausted, false);

    // Tick 2: bob asks for the same instance under a 3-tick slice.
    svc::SvcRequest rq;
    rq.tenant = "bob";
    rq.connections = w.bob[0];
    auto fb = svc.submit(std::move(rq));
    svc.tick();
    const svc::SvcResponse rb = fb.get();
    if (allow) {
      // Served from the shared cache: the exact unlimited answer.
      EXPECT_EQ(rb.result.success, rw.result.success);
      EXPECT_EQ(rb.result.routing, rw.result.routing);
      EXPECT_GE(svc.engine().cache_stats().hits, 1u);
    } else {
      EXPECT_EQ(rb.result.failure, alg::FailureKind::kBudgetExhausted);
    }
  }
}

TEST(SvcEngine, BudgetedCacheReadOptInSemantics) {
  const SegmentedChannel ch = test_channel();
  engine::BatchRouter br(ch);
  std::mt19937_64 rng(21);
  const ConnectionSet cs = gen::geometric_workload(14, 64, 8.0, rng);
  const ConnectionSet other = gen::geometric_workload(14, 64, 8.0, rng);

  // Warm with the pure route.
  engine::EngineRouteOptions pure;
  const alg::RouteResult ref = br.route(cs, pure);
  const engine::CacheStats warm = br.cache_stats();
  ASSERT_EQ(warm.size, 1u);

  // Budgeted, opt-in: served the exact cached answer, counted as a hit.
  engine::EngineRouteOptions tiny;
  tiny.budget = harness::Budget::with_ticks(1);
  tiny.allow_cached_when_budgeted = true;
  const alg::RouteResult hit = br.route(cs, tiny);
  EXPECT_EQ(hit.success, ref.success);
  EXPECT_EQ(hit.routing, ref.routing);
  EXPECT_EQ(br.cache_stats().hits, warm.hits + 1);

  // Budgeted, opt-in, cold key: counted as a miss, result NOT inserted.
  const alg::RouteResult cold = br.route(other, tiny);
  EXPECT_EQ(cold.failure, alg::FailureKind::kBudgetExhausted);
  EXPECT_EQ(br.cache_stats().size, 1u);

  // Budgeted without the flag: full bypass — no hit, no miss.
  const engine::CacheStats before = br.cache_stats();
  engine::EngineRouteOptions bypass;
  bypass.budget = harness::Budget::with_ticks(1);
  (void)br.route(cs, bypass);
  const engine::CacheStats after = br.cache_stats();
  EXPECT_EQ(after.hits, before.hits);
  EXPECT_EQ(after.misses, before.misses);
}

TEST(SvcEngine, ShardStatsSumToCacheStats) {
  const SegmentedChannel ch = test_channel();
  engine::BatchOptions bo;
  bo.cache_capacity = 64;
  bo.cache_shards = 8;
  engine::BatchRouter br(ch, bo);
  std::mt19937_64 rng(22);
  for (int i = 0; i < 40; ++i) {
    (void)br.route(gen::routable_workload(ch, 5, 6.0, rng));
  }
  const engine::CacheStats total = br.cache_stats();
  const std::vector<engine::CacheStats> shards = br.shard_stats();
  EXPECT_EQ(shards.size(), 8u);
  engine::CacheStats sum;
  for (const engine::CacheStats& s : shards) {
    sum.hits += s.hits;
    sum.misses += s.misses;
    sum.evictions += s.evictions;
    sum.invalidations += s.invalidations;
    sum.size += s.size;
    sum.capacity += s.capacity;
  }
  EXPECT_EQ(sum.hits, total.hits);
  EXPECT_EQ(sum.misses, total.misses);
  EXPECT_EQ(sum.evictions, total.evictions);
  EXPECT_EQ(sum.invalidations, total.invalidations);
  EXPECT_EQ(sum.size, total.size);
  EXPECT_EQ(sum.capacity, total.capacity);
}

TEST(SvcLiveEdit, RouteManyRacesInvalidate) {
  // The long-running-service live-edit path: route_many() traffic racing
  // invalidate(fp) on the shared cache. Results must stay bit-identical
  // to the uncached direct path no matter how eviction interleaves.
  const SegmentedChannel ch = test_channel();
  engine::BatchOptions bo;
  bo.threads = 4;
  engine::BatchRouter br(ch, bo);
  const std::uint64_t fp = br.index().fingerprint();

  std::mt19937_64 rng(23);
  std::vector<ConnectionSet> batch;
  for (int i = 0; i < 48; ++i) {
    batch.push_back(gen::routable_workload(ch, 5, 6.0, rng));
  }
  engine::BatchOptions ref_opts;
  ref_opts.use_cache = false;
  engine::BatchRouter reference(ch, ref_opts);
  const std::vector<alg::RouteResult> expect = reference.route_many(batch);

  std::atomic<bool> done{false};
  std::thread editor([&] {
    while (!done.load()) {
      br.invalidate(fp);
      (void)br.cache_stats();
      (void)br.shard_stats();
    }
  });
  for (int round = 0; round < 20; ++round) {
    const std::vector<alg::RouteResult> got = br.route_many(batch);
    ASSERT_EQ(got.size(), expect.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].success, expect[i].success);
      EXPECT_EQ(got[i].routing, expect[i].routing);
    }
  }
  done.store(true);
  editor.join();
}

TEST(SvcLiveEdit, RebindQuiescesLiveService) {
  // A live service absorbing submissions from several client threads
  // while the substrate is rebound and invalidated under it. Every
  // response must resolve, and every successful routing must validate
  // against the substrate (by fingerprint) it was computed on.
  const SegmentedChannel ch1 = test_channel();
  const SegmentedChannel ch2 = gen::staggered_segmentation(8, 64, 6);
  const std::uint64_t fp1 = ChannelIndex(ch1).fingerprint();
  const std::uint64_t fp2 = ChannelIndex(ch2).fingerprint();
  ASSERT_NE(fp1, fp2);

  svc::SvcOptions o;
  o.threads = 4;
  o.queue_capacity = 4096;
  svc::RoutingService svc(ch1, o);
  svc.start();

  const Workload w = make_workload(ch1, 24);
  constexpr int kClients = 4, kPerClient = 60;
  std::vector<std::vector<std::pair<std::size_t,
                                    std::future<svc::SvcResponse>>>>
      per_client(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        const std::size_t ix = static_cast<std::size_t>(i) % w.alice.size();
        svc::SvcRequest rq;
        rq.tenant = "tenant" + std::to_string(c);
        rq.connections = w.alice[ix];
        per_client[c].emplace_back(ix, svc.submit(std::move(rq)));
      }
    });
  }
  for (int e = 0; e < 6; ++e) {
    svc.rebind(e % 2 == 0 ? ch2 : ch1);
    svc.invalidate(e % 2 == 0 ? fp1 : fp2);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (auto& t : clients) t.join();
  svc.stop(svc::RoutingService::StopMode::kDrain);

  int successes = 0;
  for (auto& cl : per_client) {
    for (auto& [ix, fut] : cl) {
      svc::SvcResponse r = fut.get();
      ASSERT_EQ(r.admit, svc::Admit::kAccepted);
      ASSERT_TRUE(r.fingerprint == fp1 || r.fingerprint == fp2);
      if (r.result.success) {
        ++successes;
        const SegmentedChannel& on = r.fingerprint == fp1 ? ch1 : ch2;
        EXPECT_TRUE(validate(on, w.alice[ix], r.result.routing));
      }
    }
  }
  // The alice instances are routable by construction on ch1; most should
  // succeed regardless of which substrate served them.
  EXPECT_GT(successes, 0);
}

TEST(SvcLiveEdit, DeltaRebindMigratesUnderRacingInvalidate) {
  // Delta-aware substrate flips interleaved with route_many() traffic
  // and a hostile invalidate() thread. rebind_delta() is documented not
  // thread-safe against concurrent cache users, so a quiesce mutex
  // serializes it against the editor — exactly the lock a live service
  // holds — while results stay bit-identical to per-substrate uncached
  // references and the disjoint workload keeps migrating (never cools).
  const SegmentedChannel ch = gen::staggered_segmentation(4, 24, 6);
  std::vector<Track> tracks = ch.tracks();
  std::vector<Column> sw = tracks.back().switch_positions();
  Column extra = 21;  // a fresh switch position near the right edge
  while (std::find(sw.begin(), sw.end(), extra) != sw.end()) --extra;
  sw.push_back(extra);
  std::sort(sw.begin(), sw.end());
  tracks.back() = Track(24, sw);
  const SegmentedChannel ch2(tracks);

  // Short spans confined to columns 1..12: provably disjoint from the
  // affected mask around the resegmented right edge, so every cached
  // entry migrates on every flip.
  std::mt19937_64 rng(29);
  std::vector<ConnectionSet> batch;
  for (int i = 0; i < 24; ++i) {
    ConnectionSet cs;
    const Column l = 1 + static_cast<Column>(rng() % 10);
    cs.add(l, std::min<Column>(12, l + 1 + static_cast<Column>(rng() % 2)));
    batch.push_back(cs);
  }
  engine::BatchOptions ref_opts;
  ref_opts.use_cache = false;
  engine::BatchRouter ref1(ch, ref_opts);
  engine::BatchRouter ref2(ch2, ref_opts);
  const std::vector<alg::RouteResult> exp1 = ref1.route_many(batch);
  const std::vector<alg::RouteResult> exp2 = ref2.route_many(batch);

  engine::BatchOptions bo;
  bo.threads = 4;
  engine::BatchRouter br(ch, bo);
  std::mutex quiesce;  // rebind_delta vs invalidate; routes stay lock-free
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> stale{0xdeadbeefdeadbeefull};
  std::thread editor([&] {
    while (!done.load()) {
      const std::lock_guard<std::mutex> lk(quiesce);
      br.invalidate(stale.load());  // the just-retired fingerprint
      (void)br.cache_stats();
      (void)br.shard_stats();
    }
  });
  bool on_ch2 = false;
  for (int round = 0; round < 10; ++round) {
    const std::vector<alg::RouteResult> got = br.route_many(batch);
    const std::vector<alg::RouteResult>& expect = on_ch2 ? exp2 : exp1;
    ASSERT_EQ(got.size(), expect.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].success, expect[i].success) << "round " << round;
      EXPECT_EQ(got[i].routing, expect[i].routing) << "round " << round;
    }
    {
      const std::lock_guard<std::mutex> lk(quiesce);
      const engine::RebindDelta d = br.rebind_delta(on_ch2 ? ch : ch2);
      EXPECT_FALSE(d.structural) << "round " << round;
      EXPECT_GT(d.migrated, 0u) << "round " << round;
      stale.store(d.old_fingerprint);
      on_ch2 = !on_ch2;
    }
  }
  done.store(true);
  editor.join();
  // Migration kept the disjoint workload warm across every flip.
  EXPECT_GT(br.cache_stats().hits, 0u);
}

// ---------------------------------------------------------------------
// Edit sessions: stateful incremental routing through the service.

TEST(SvcSessions, EditLifecycleIsStatefulAndSnapshotsCanonical) {
  const SegmentedChannel ch = test_channel();
  svc::SvcOptions o;
  svc::RoutingService svc(ch, o);
  const std::uint64_t sid = svc.open_session("alice");
  ASSERT_NE(sid, 0u);

  const auto edit = [&](const alg::ChannelEdit& e) {
    svc::SvcRequest rq;
    rq.tenant = "alice";
    rq.session = sid;
    rq.edit = e;
    auto fut = svc.submit(std::move(rq));
    svc.tick();
    return fut.get();
  };

  const svc::SvcResponse add = edit(alg::ChannelEdit::add(2, 9));
  ASSERT_EQ(add.admit, svc::Admit::kAccepted);
  ASSERT_TRUE(add.result.success) << add.result.note;
  EXPECT_EQ(add.session, sid);
  ASSERT_TRUE(add.repair.success);
  const ConnId id = add.repair.id;

  const svc::SvcResponse mv = edit(alg::ChannelEdit::move(id, 40, 48));
  ASSERT_TRUE(mv.result.success) << mv.result.note;
  auto snap = svc.session_snapshot(sid);
  ASSERT_TRUE(snap.has_value());
  ASSERT_EQ(snap->first.size(), 1);
  EXPECT_EQ(snap->first[0].left, 40);
  EXPECT_EQ(snap->first[0].right, 48);
  const auto canon = alg::from_scratch(ch, snap->first, true, 0);
  ASSERT_TRUE(canon.result.success);
  EXPECT_EQ(canon.result.routing, snap->second);

  const svc::SvcResponse rm = edit(alg::ChannelEdit::remove(id));
  ASSERT_TRUE(rm.result.success) << rm.result.note;
  snap = svc.session_snapshot(sid);
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->first.size(), 0);

  const svc::SvcStats st = svc.stats();
  EXPECT_EQ(st.sessions_opened, 1u);
  EXPECT_EQ(st.sessions_open, 1u);
  EXPECT_EQ(st.session_edits, 3u);
  EXPECT_EQ(st.session_repairs + st.session_dp_fallbacks, 3u);

  EXPECT_TRUE(svc.close_session(sid));
  EXPECT_FALSE(svc.close_session(sid));
  EXPECT_FALSE(svc.session_snapshot(sid).has_value());
  EXPECT_EQ(svc.stats().sessions_closed, 1u);
  EXPECT_EQ(svc.stats().sessions_open, 0u);
  svc.stop(svc::RoutingService::StopMode::kDrain);
}

/// Runs one fixed driver-mode schedule mixing batch traffic with edits
/// on a single session, checks the final session state is canonical,
/// and returns the digest folded over responses in submission order.
std::uint64_t run_session_schedule(int threads) {
  const SegmentedChannel ch = test_channel();
  svc::SvcOptions o;
  o.threads = threads;
  o.queue_capacity = 4096;
  o.drain_window = 8;
  svc::RoutingService svc(ch, o);
  const std::uint64_t sid = svc.open_session("alice");
  EXPECT_NE(sid, 0u);

  const Workload w = make_workload(ch, 31);
  std::mt19937_64 rng(515);
  std::vector<std::future<svc::SvcResponse>> futs;
  for (int i = 0; i < 60; ++i) {
    svc::SvcRequest rq;
    rq.tenant = "alice";
    if (i % 3 == 0) {
      rq.connections = w.alice[rng() % w.alice.size()];
    } else {
      rq.session = sid;
      const Column l = 1 + static_cast<Column>(rng() % 64);
      rq.edit = alg::ChannelEdit::add(
          l, std::min<Column>(64, l + static_cast<Column>(rng() % 7)));
    }
    futs.push_back(svc.submit(std::move(rq)));
    if (i % 5 == 0) svc.tick();
  }
  while (svc.tick() > 0) {
  }
  std::uint64_t digest = 1469598103934665603ull;
  for (auto& f : futs) digest = svc::fold_digest(digest, f.get());

  // The drained session is bit-identical to the canonical from-scratch
  // route of its live set — thread count never leaks into state.
  const auto snap = svc.session_snapshot(sid);
  EXPECT_TRUE(snap.has_value());
  if (snap) {
    const auto canon = alg::from_scratch(ch, snap->first, true, 0);
    EXPECT_TRUE(canon.result.success);
    EXPECT_EQ(canon.result.routing, snap->second);
  }
  svc.stop(svc::RoutingService::StopMode::kDrain);
  return digest;
}

TEST(SvcSessions, DigestWithEditTrafficIsThreadCountInvariant) {
  const std::uint64_t base = run_session_schedule(1);
  EXPECT_EQ(run_session_schedule(2), base);
  EXPECT_EQ(run_session_schedule(8), base);
}

TEST(SvcSessions, UnknownForeignAndClosedSessionsAreRejected) {
  const SegmentedChannel ch = test_channel();
  svc::SvcOptions o;
  svc::RoutingService svc(ch, o);
  const std::uint64_t sid = svc.open_session("alice");
  ASSERT_NE(sid, 0u);

  // Unknown session id: typed admission failure, resolved immediately.
  svc::SvcRequest unknown;
  unknown.tenant = "alice";
  unknown.session = sid + 999;
  unknown.edit = alg::ChannelEdit::add(1, 4);
  EXPECT_EQ(svc.submit(std::move(unknown)).get().admit, svc::Admit::kInvalid);

  // Right session, wrong tenant: sessions are tenant-scoped.
  svc::SvcRequest foreign;
  foreign.tenant = "mallory";
  foreign.session = sid;
  foreign.edit = alg::ChannelEdit::add(1, 4);
  EXPECT_EQ(svc.submit(std::move(foreign)).get().admit, svc::Admit::kInvalid);

  // Admitted while open, but the session closes before the drain: the
  // edit fails typed instead of touching freed state.
  svc::SvcRequest late;
  late.tenant = "alice";
  late.session = sid;
  late.edit = alg::ChannelEdit::add(1, 4);
  auto fut = svc.submit(std::move(late));
  ASSERT_TRUE(svc.close_session(sid));
  svc.tick();
  const svc::SvcResponse r = fut.get();
  EXPECT_EQ(r.admit, svc::Admit::kAccepted);
  EXPECT_FALSE(r.result.success);
  EXPECT_EQ(r.result.failure, alg::FailureKind::kInvalidInput);
  EXPECT_EQ(svc.stats().session_edit_failures, 1u);
  svc.stop(svc::RoutingService::StopMode::kDrain);
}

TEST(SvcSessions, SessionsPinTheirSubstrateAcrossRebind) {
  const SegmentedChannel ch1 = test_channel();
  const SegmentedChannel ch2 = gen::staggered_segmentation(8, 64, 6);
  const std::uint64_t fp1 = ChannelIndex(ch1).fingerprint();
  svc::SvcOptions o;
  svc::RoutingService svc(ch1, o);
  const std::uint64_t sid = svc.open_session("alice");
  ASSERT_NE(sid, 0u);

  const auto edit = [&](const alg::ChannelEdit& e) {
    svc::SvcRequest rq;
    rq.tenant = "alice";
    rq.session = sid;
    rq.edit = e;
    auto fut = svc.submit(std::move(rq));
    svc.tick();
    return fut.get();
  };
  ASSERT_TRUE(edit(alg::ChannelEdit::add(3, 9)).result.success);

  svc.rebind(ch2);  // flips the batch substrate; the session must not
  const svc::SvcResponse after = edit(alg::ChannelEdit::add(11, 17));
  ASSERT_TRUE(after.result.success) << after.result.note;
  EXPECT_EQ(after.fingerprint, fp1);

  const auto snap = svc.session_snapshot(sid);
  ASSERT_TRUE(snap.has_value());
  const auto canon = alg::from_scratch(ch1, snap->first, true, 0);
  ASSERT_TRUE(canon.result.success);
  EXPECT_EQ(canon.result.routing, snap->second);
  svc.stop(svc::RoutingService::StopMode::kDrain);
}

TEST(SvcSessions, MetricsExposeSessionCounters) {
  const SegmentedChannel ch = test_channel();
  svc::SvcOptions o;
  svc::RoutingService svc(ch, o);
  const std::uint64_t sid = svc.open_session("alice");
  ASSERT_NE(sid, 0u);
  std::vector<std::future<svc::SvcResponse>> futs;
  for (int i = 0; i < 3; ++i) {
    svc::SvcRequest rq;
    rq.tenant = "alice";
    rq.session = sid;
    rq.edit = alg::ChannelEdit::add(static_cast<Column>(1 + 5 * i),
                                    static_cast<Column>(4 + 5 * i));
    futs.push_back(svc.submit(std::move(rq)));
  }
  svc.stop(svc::RoutingService::StopMode::kDrain);
  for (auto& f : futs) EXPECT_TRUE(f.get().result.success);

  const svc::SvcStats st = svc.stats();
  EXPECT_EQ(st.session_edits, 3u);
  EXPECT_EQ(st.sessions_opened, 1u);
  EXPECT_EQ(st.sessions_closed, 1u);  // stop() retires open sessions
  EXPECT_EQ(st.sessions_open, 0u);

  const svc::PromText parsed =
      svc::parse_prometheus_text(obs::Registry::instance().prometheus_text());
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_NE(parsed.find("segroute_svc_sessions_open"), nullptr);
  EXPECT_NE(parsed.find("segroute_svc_sessions_edits"), nullptr);
  EXPECT_GE(parsed.value_or("segroute_svc_sessions_opened", -1), 1.0);
}

TEST(SvcMetrics, ExpositionRoundTripsAgainstSnapshot) {
  const SegmentedChannel ch = test_channel();
  svc::SvcOptions o;
  o.engine.cache_shards = 4;
  svc::RoutingService svc(ch, o);
  const Workload w = make_workload(ch, 25);
  std::vector<std::future<svc::SvcResponse>> futs;
  for (int i = 0; i < 10; ++i) {
    svc::SvcRequest rq;
    rq.tenant = i % 2 ? "alice" : "bob";
    rq.connections = w.alice[i % w.alice.size()];
    futs.push_back(svc.submit(std::move(rq)));
  }
  svc.stop(svc::RoutingService::StopMode::kDrain);
  for (auto& f : futs) (void)f.get();

  const std::string text = obs::Registry::instance().prometheus_text();
  const std::string err =
      svc::check_exposition(text, obs::Registry::instance().snapshot());
  EXPECT_EQ(err, "") << err;

  // The service's own surface is present: queue depth, per-shard cache
  // health, tenant counters.
  const svc::PromText parsed = svc::parse_prometheus_text(text);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_NE(parsed.find("segroute_svc_queue_depth"), nullptr);
  EXPECT_NE(parsed.find("segroute_svc_cache_shard0_size"), nullptr);
  EXPECT_NE(parsed.find("segroute_svc_cache_shard3_size"), nullptr);
  EXPECT_GE(parsed.value_or("segroute_svc_served", 0), 10.0);
  EXPECT_GE(parsed.value_or("segroute_svc_tenant_alice_served", 0), 5.0);

  // The published cache gauges agree with the engine's own counters.
  const engine::CacheStats cs = svc.engine().cache_stats();
  EXPECT_EQ(parsed.value_or("segroute_svc_cache_hits", -1),
            static_cast<double>(cs.hits));
  EXPECT_EQ(parsed.value_or("segroute_svc_cache_misses", -1),
            static_cast<double>(cs.misses));
}

TEST(SvcMetrics, ParserRejectsMalformedText) {
  EXPECT_FALSE(svc::parse_prometheus_text("no_value_here\n").ok);
  EXPECT_FALSE(svc::parse_prometheus_text("x{le=\"1\" 3\n").ok);
  EXPECT_FALSE(svc::parse_prometheus_text("x 1 2 3\n").ok);
  EXPECT_FALSE(svc::parse_prometheus_text("# TYPE x flavor\n").ok);
  EXPECT_TRUE(svc::parse_prometheus_text(
                  "# TYPE x counter\nx 1\n# HELP x whatever\n")
                  .ok);
  const svc::PromText t = svc::parse_prometheus_text(
      "# TYPE h histogram\nh_bucket{le=\"0.5\"} 2\nh_bucket{le=\"+Inf\"} "
      "3\nh_sum 1.25\nh_count 3\n");
  ASSERT_TRUE(t.ok) << t.error;
  EXPECT_EQ(t.samples.size(), 4u);
  EXPECT_EQ(t.samples[0].labels.at("le"), "0.5");
}

TEST(SvcHttp, HandlerRoutesAndFrames) {
  const std::string metrics =
      svc::ExpositionServer::handle_request("GET /metrics HTTP/1.1\r\n\r\n");
  EXPECT_EQ(metrics.rfind("HTTP/1.1 200 OK", 0), 0u);
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);

  const std::string health =
      svc::ExpositionServer::handle_request("GET /healthz HTTP/1.1\r\n\r\n");
  EXPECT_NE(health.find("200 OK"), std::string::npos);
  EXPECT_NE(health.find("ok\n"), std::string::npos);

  EXPECT_NE(svc::ExpositionServer::handle_request(
                "GET /nothing-here HTTP/1.1\r\n\r\n")
                .find("404"),
            std::string::npos);
  EXPECT_NE(
      svc::ExpositionServer::handle_request("POST /metrics HTTP/1.1\r\n\r\n")
          .find("405"),
      std::string::npos);
  EXPECT_NE(svc::ExpositionServer::handle_request("garbage").find("400"),
            std::string::npos);
  // JSON variant and query strings.
  EXPECT_NE(svc::ExpositionServer::handle_request(
                "GET /metrics.json?x=1 HTTP/1.1\r\n\r\n")
                .find("application/json"),
            std::string::npos);
}

/// Tiny test client: one request, whole response.
std::string http_get(int port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return {};
  }
  const std::string req = "GET " + path + " HTTP/1.1\r\nHost: x\r\n\r\n";
  (void)!::send(fd, req.data(), req.size(), 0);
  std::string out;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
}

TEST(SvcHttp, EndToEndServesLiveMetrics) {
  svc::ExpositionServer server;
  if (!server.start()) {
    GTEST_SKIP() << "no loopback networking in this sandbox";
  }
  ASSERT_GT(server.port(), 0);

  const std::string health = http_get(server.port(), "/healthz");
  if (health.empty()) {
    server.stop();
    GTEST_SKIP() << "loopback connect failed in this sandbox";
  }
  EXPECT_NE(health.find("200 OK"), std::string::npos);

  const std::string resp = http_get(server.port(), "/metrics");
  const std::size_t body_at = resp.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  const std::string body = resp.substr(body_at + 4);
  // The served bytes round-trip against the registry. (Nothing updates
  // metrics between the serve and this snapshot — the test is the only
  // traffic.)
  const std::string err =
      svc::check_exposition(body, obs::Registry::instance().snapshot());
  EXPECT_EQ(err, "") << err;
  EXPECT_GE(server.requests_served(), 2u);
  server.stop();
  EXPECT_FALSE(server.running());
}

}  // namespace
}  // namespace segroute
