// Compiled with -fsyntax-only by the umbrella_standalone ctest: the
// umbrella header alone must provide the full public API (no consumer
// should need to know the internal include graph). The references below
// touch one symbol per subsystem so a header dropped from segroute.h is
// a test failure, not a silent API regression.
#include "segroute.h"

namespace {

[[maybe_unused]] void touch_api() {
  using segroute::ConnectionSet;
  using segroute::RouteRequest;
  using segroute::SegmentedChannel;
  [[maybe_unused]] const auto& routers = segroute::alg::registry();
  [[maybe_unused]] auto* entry = segroute::alg::find_router("dp");
  SegmentedChannel ch = SegmentedChannel::identical(1, 4, {});
  ConnectionSet cs;
  RouteRequest rq;
  rq.channel = &ch;
  rq.connections = &cs;
  [[maybe_unused]] auto r = segroute::alg::route("dp", rq);
  [[maybe_unused]] auto rep = segroute::harness::robust_route(ch, cs);
}

}  // namespace

int main() { return 0; }
