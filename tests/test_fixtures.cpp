// The frozen paper-figure fixtures carry documented guarantees (see
// src/gen/fixtures.h); this suite pins every one of them so a future
// edit cannot silently break an example or bench.
#include "gen/fixtures.h"

#include <gtest/gtest.h>

#include "alg/dp.h"
#include "alg/generalized_dp.h"
#include "alg/greedy1.h"
#include "alg/greedy2track.h"
#include "alg/left_edge.h"
#include "core/routing.h"

namespace segroute::gen::fixtures {
namespace {

TEST(Fixtures, Fig2ConnectionsHaveDensityTwo) {
  const auto cs = fig2_connections();
  EXPECT_EQ(cs.size(), 4);
  EXPECT_EQ(cs.density(), 2);
  EXPECT_EQ(cs.max_right(), 9);
}

TEST(Fixtures, Fig2OneSegmentChannelRoutesEveryNetInOneSegment) {
  const auto ch = fig2_channel_1segment();
  const auto cs = fig2_connections();
  EXPECT_EQ(ch.num_tracks(), cs.density());
  const auto r = alg::greedy1_route(ch, cs);
  ASSERT_TRUE(r.success) << r.note;
  EXPECT_TRUE(validate(ch, cs, r.routing, 1));
}

TEST(Fixtures, Fig2TwoSegmentChannelRoutesWithKTwoButNotKOne) {
  const auto ch = fig2_channel_2segment();
  const auto cs = fig2_connections();
  EXPECT_TRUE(ch.identically_segmented());
  EXPECT_TRUE(alg::dp_route_ksegment(ch, cs, 2).success);
  EXPECT_FALSE(alg::dp_route_ksegment(ch, cs, 1).success);
  // Being identically segmented, the left-edge special case applies too.
  EXPECT_TRUE(alg::left_edge_route(ch, cs, 2).success);
}

TEST(Fixtures, Fig3SegmentInventoryMatchesThePaper) {
  const auto ch = fig3_channel();
  ASSERT_EQ(ch.num_tracks(), 3);
  EXPECT_EQ(ch.width(), 9);
  EXPECT_EQ(ch.track(0).num_segments(), 3);  // s11 s12 s13
  EXPECT_EQ(ch.track(1).num_segments(), 3);  // s21 s22 s23
  EXPECT_EQ(ch.track(2).num_segments(), 2);  // s31 s32
  const auto cs = fig3_connections();
  EXPECT_EQ(cs.size(), 5);
  EXPECT_TRUE(cs.is_sorted_by_left());
}

TEST(Fixtures, Fig3ProseConstraintOnC3) {
  // "Connection c3 would occupy segments s21 and s22 in track 2 or
  // segment s31 in track 3."
  const auto ch = fig3_channel();
  const auto cs = fig3_connections();
  const Connection& c3 = cs[2];
  EXPECT_EQ(ch.track(1).segments_spanned(c3.left, c3.right), 2);
  EXPECT_EQ(ch.track(1).span(c3.left, c3.right).first, 0);
  EXPECT_EQ(ch.track(2).segments_spanned(c3.left, c3.right), 1);
  EXPECT_EQ(ch.track(2).span(c3.left, c3.right).first, 0);
}

TEST(Fixtures, Fig3IsOneSegmentRoutable) {
  const auto r = alg::greedy1_route(fig3_channel(), fig3_connections());
  EXPECT_TRUE(r.success);
}

TEST(Fixtures, Fig4StandardInfeasibleGeneralizedFeasible) {
  const auto ch = fig4_channel();
  const auto cs = fig4_connections();
  EXPECT_EQ(ch.num_tracks(), 3);
  EXPECT_EQ(cs.size(), 7);
  EXPECT_LE(cs.density(), ch.num_tracks());  // not a trivial capacity fail
  EXPECT_FALSE(alg::dp_route_unlimited(ch, cs).success);
  const auto g = alg::generalized_dp_route(ch, cs);
  ASSERT_TRUE(g.success);
  EXPECT_TRUE(validate(ch, cs, g.routing));
}

TEST(Fixtures, Fig8ChannelHasAtMostTwoSegmentsPerTrack) {
  const auto ch = fig8_channel();
  EXPECT_LE(ch.max_segments_per_track(), 2);
  EXPECT_EQ(ch.num_tracks(), 3);
}

TEST(Fixtures, Fig8C2RequiresTwoSegmentsEverywhere) {
  const auto ch = fig8_channel();
  const auto cs = fig8_connections();
  const Connection& c2 = cs[1];
  for (TrackId t = 0; t < ch.num_tracks(); ++t) {
    EXPECT_EQ(ch.track(t).segments_spanned(c2.left, c2.right), 2)
        << "track " << t;
  }
}

TEST(Fixtures, Fig8RoutesUnderThePoolGreedy) {
  const auto r = alg::greedy2track_route(fig8_channel(), fig8_connections());
  EXPECT_TRUE(r.success);
}

TEST(Fixtures, Example1MatchesThePublishedNumbers) {
  const auto inst = example1_nmts();
  EXPECT_EQ(inst.n(), 3);
  EXPECT_EQ(inst.x(), (std::vector<std::int64_t>{2, 5, 8}));
  EXPECT_EQ(inst.y(), (std::vector<std::int64_t>{9, 11, 12}));
  EXPECT_EQ(inst.z(), (std::vector<std::int64_t>{11, 17, 19}));
  EXPECT_TRUE(inst.reduction_ready());
  EXPECT_TRUE(inst.solve().has_value());
}

}  // namespace
}  // namespace segroute::gen::fixtures
