#include "core/weights.h"

#include <gtest/gtest.h>

#include <cmath>

namespace segroute {
namespace {

SegmentedChannel ch() {
  return SegmentedChannel({Track(9, {3, 6}), Track(9, {})});
}

TEST(Weights, OccupiedLengthIsSumOfSegmentLengths) {
  const auto c = ch();
  const auto w = weights::occupied_length();
  EXPECT_DOUBLE_EQ(w(c, Connection{4, 5, ""}, 0), 3.0);  // (4,6)
  EXPECT_DOUBLE_EQ(w(c, Connection{3, 4, ""}, 0), 6.0);  // (1,3)+(4,6)
  EXPECT_DOUBLE_EQ(w(c, Connection{4, 5, ""}, 1), 9.0);  // whole track
}

TEST(Weights, SegmentCount) {
  const auto c = ch();
  const auto w = weights::segment_count();
  EXPECT_DOUBLE_EQ(w(c, Connection{1, 9, ""}, 0), 3.0);
  EXPECT_DOUBLE_EQ(w(c, Connection{1, 9, ""}, 1), 1.0);
}

TEST(Weights, SegmentsCappedForbidsAboveK) {
  const auto c = ch();
  const auto w = weights::segments_capped(2);
  EXPECT_DOUBLE_EQ(w(c, Connection{3, 4, ""}, 0), 2.0);
  EXPECT_TRUE(std::isinf(w(c, Connection{1, 9, ""}, 0)));
  EXPECT_DOUBLE_EQ(w(c, Connection{1, 9, ""}, 1), 1.0);
}

TEST(Weights, WastedLengthIsOverhang) {
  const auto c = ch();
  const auto w = weights::wasted_length();
  // (4,5) on track 0 occupies (4,6): one wasted column.
  EXPECT_DOUBLE_EQ(w(c, Connection{4, 5, ""}, 0), 1.0);
  // Exact fit wastes nothing.
  EXPECT_DOUBLE_EQ(w(c, Connection{4, 6, ""}, 0), 0.0);
}

TEST(Weights, UnitWeight) {
  const auto c = ch();
  EXPECT_DOUBLE_EQ(weights::unit()(c, Connection{1, 1, ""}, 0), 1.0);
}

TEST(Weights, TotalWeightSumsAssignedConnections) {
  const auto c = ch();
  ConnectionSet cs;
  cs.add(1, 3);
  cs.add(4, 6);
  Routing r(2);
  r.assign(0, 0);
  r.assign(1, 0);
  EXPECT_DOUBLE_EQ(total_weight(c, cs, r, weights::occupied_length()), 6.0);
}

TEST(Weights, TotalWeightRejectsIncompleteOrMismatched) {
  const auto c = ch();
  ConnectionSet cs;
  cs.add(1, 3);
  Routing incomplete(1);
  EXPECT_THROW(total_weight(c, cs, incomplete, weights::unit()),
               std::invalid_argument);
  Routing wrong_size(2);
  EXPECT_THROW(total_weight(c, cs, wrong_size, weights::unit()),
               std::invalid_argument);
}

}  // namespace
}  // namespace segroute
