#include "io/json.h"

#include <gtest/gtest.h>

#include "alg/dp.h"
#include "alg/generalized_dp.h"
#include "gen/fixtures.h"

namespace segroute::io {
namespace {

TEST(Json, ChannelEmitsWidthAndCuts) {
  const auto ch = SegmentedChannel({Track(9, {3, 6}), Track(9, {})});
  EXPECT_EQ(to_json(ch),
            "{\"width\": 9, \"tracks\": [[3, 6], []]}");
}

TEST(Json, ConnectionsWithAndWithoutNames) {
  ConnectionSet cs;
  cs.add(1, 4, "a");
  cs.add(5, 9);
  EXPECT_EQ(to_json(cs),
            "{\"connections\": [{\"left\": 1, \"right\": 4, \"name\": \"a\"}, "
            "{\"left\": 5, \"right\": 9}]}");
}

TEST(Json, RoutingUsesNullForUnassigned) {
  Routing r(3);
  r.assign(0, 2);
  r.assign(2, 0);
  EXPECT_EQ(to_json(r), "{\"assignments\": [2, null, 0]}");
}

TEST(Json, EscapingControlAndQuoteCharacters) {
  EXPECT_EQ(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(Json, GeneralizedRoutingEmitsParts) {
  GeneralizedRouting g(1);
  g.add_part(0, 1, 4, 0);
  g.add_part(0, 5, 8, 2);
  EXPECT_EQ(to_json(g),
            "{\"parts\": [[{\"left\": 1, \"right\": 4, \"track\": 0}, "
            "{\"left\": 5, \"right\": 8, \"track\": 2}]]}");
}

TEST(Json, RouteResultRoundTripsThroughTheFig3Example) {
  const auto ch = gen::fixtures::fig3_channel();
  const auto cs = gen::fixtures::fig3_connections();
  const auto r = alg::dp_route_unlimited(ch, cs);
  const auto json = to_json(r);
  EXPECT_NE(json.find("\"success\": true"), std::string::npos);
  EXPECT_NE(json.find("\"assignments\": ["), std::string::npos);
  EXPECT_NE(json.find("\"max_level_nodes\": "), std::string::npos);
}

TEST(Json, UtilizationStats) {
  const auto ch = SegmentedChannel::identical(1, 9, {4});
  ConnectionSet cs;
  cs.add(1, 4);
  Routing r(1);
  r.assign(0, 0);
  const auto json = to_json(utilization(ch, cs, r));
  EXPECT_NE(json.find("\"occupied_columns\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"overhang\": 1"), std::string::npos);
}

TEST(Json, OutputsAreDeterministic) {
  const auto ch = gen::fixtures::fig4_channel();
  const auto cs = gen::fixtures::fig4_connections();
  const auto g = alg::generalized_dp_route(ch, cs);
  ASSERT_TRUE(g.success);
  EXPECT_EQ(to_json(g.routing), to_json(g.routing));
}

}  // namespace
}  // namespace segroute::io
