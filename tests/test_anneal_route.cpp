#include "alg/anneal_route.h"

#include <gtest/gtest.h>

#include <random>

#include "alg/dp.h"
#include "core/routing.h"
#include "gen/fixtures.h"
#include "gen/segmentation.h"
#include "gen/workload.h"

namespace segroute::alg {
namespace {

TEST(AnnealRoute, RoutesTheFig3Example) {
  const auto ch = gen::fixtures::fig3_channel();
  const auto cs = gen::fixtures::fig3_connections();
  const auto r = anneal_route(ch, cs);
  ASSERT_TRUE(r.success) << r.note;
  EXPECT_TRUE(validate(ch, cs, r.routing));
}

TEST(AnnealRoute, NeverClaimsSuccessWithAnInvalidRouting) {
  std::mt19937_64 rng(181);
  for (int iter = 0; iter < 25; ++iter) {
    const auto ch = gen::staggered_segmentation(4, 24, 6);
    const auto cs = gen::geometric_workload(
        4 + static_cast<int>(rng() % 8), 24, 5.0, rng);
    AnnealRouteOptions o;
    o.seed = iter;
    o.iterations = 20000;
    const auto r = anneal_route(ch, cs, o);
    if (r.success) {
      EXPECT_TRUE(validate(ch, cs, r.routing)) << "iter " << iter;
      // Success implies the exact router agrees the instance is routable.
      EXPECT_TRUE(dp_route_unlimited(ch, cs).success) << "iter " << iter;
    }
  }
}

TEST(AnnealRoute, SolvesRoutableByConstructionInstancesAtScale) {
  // A size where the witness exists by construction; the annealer should
  // find *a* conflict-free assignment (not necessarily the witness).
  std::mt19937_64 rng(182);
  const auto ch = gen::staggered_segmentation(20, 80, 10);
  const auto cs = gen::routable_workload(ch, 50, 8.0, rng);
  AnnealRouteOptions o;
  o.iterations = 400000;
  o.restarts = 4;
  const auto r = anneal_route(ch, cs, o);
  ASSERT_TRUE(r.success) << r.note;
  EXPECT_TRUE(validate(ch, cs, r.routing));
}

TEST(AnnealRoute, RespectsTheSegmentLimit) {
  std::mt19937_64 rng(183);
  const auto ch = gen::staggered_segmentation(6, 24, 6);
  const auto cs = gen::routable_workload(ch, 8, 4.0, rng, /*max_segments=*/2);
  AnnealRouteOptions o;
  o.max_segments = 2;
  const auto r = anneal_route(ch, cs, o);
  ASSERT_TRUE(r.success) << r.note;
  EXPECT_TRUE(validate(ch, cs, r.routing, 2));
}

TEST(AnnealRoute, FailsCleanlyWhenNoTrackAdmitsAConnection) {
  const auto ch = SegmentedChannel::fully_segmented(3, 8);
  ConnectionSet cs;
  cs.add(2, 5);
  AnnealRouteOptions o;
  o.max_segments = 2;  // (2,5) needs 4 unit segments everywhere
  const auto r = anneal_route(ch, cs, o);
  EXPECT_FALSE(r.success);
  EXPECT_NE(r.note.find("segment limit"), std::string::npos);
}

TEST(AnnealRoute, GivesUpOnUnroutableInstances) {
  const auto ch = SegmentedChannel::identical(1, 9, {4});
  ConnectionSet cs;
  cs.add(1, 2);
  cs.add(3, 4);  // same segment of the single track
  AnnealRouteOptions o;
  o.iterations = 5000;
  o.restarts = 2;
  const auto r = anneal_route(ch, cs, o);
  EXPECT_FALSE(r.success);
  EXPECT_GT(r.stats.iterations, 0u);
}

TEST(AnnealRoute, EmptyAndOversizedInputs) {
  const auto ch = SegmentedChannel::identical(2, 6, {3});
  EXPECT_TRUE(anneal_route(ch, ConnectionSet{}).success);
  ConnectionSet big;
  big.add(1, 99);
  EXPECT_FALSE(anneal_route(ch, big).success);
}

TEST(AnnealRoute, DeterministicForAFixedSeed) {
  std::mt19937_64 rng(184);
  const auto ch = gen::staggered_segmentation(4, 20, 5);
  const auto cs = gen::geometric_workload(6, 20, 4.0, rng);
  AnnealRouteOptions o;
  o.seed = 42;
  const auto a = anneal_route(ch, cs, o);
  const auto b = anneal_route(ch, cs, o);
  EXPECT_EQ(a.success, b.success);
  if (a.success) {
    EXPECT_EQ(a.routing, b.routing);
  }
}

}  // namespace
}  // namespace segroute::alg
