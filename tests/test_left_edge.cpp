#include "alg/left_edge.h"

#include <gtest/gtest.h>

#include <random>

#include "core/routing.h"
#include "gen/fixtures.h"
#include "gen/workload.h"

namespace segroute::alg {
namespace {

TEST(LeftEdgeUnconstrained, UsesExactlyDensityTracks) {
  // Fig. 2(b): with full freedom, left-edge needs density(cs) tracks.
  const auto cs = gen::fixtures::fig2_connections();
  const auto r = left_edge_unconstrained(cs);
  ASSERT_TRUE(r.success);
  TrackId max_track = 0;
  for (ConnId i = 0; i < cs.size(); ++i) {
    max_track = std::max(max_track, r.routing.track_of(i));
  }
  EXPECT_EQ(max_track + 1, cs.density());
  EXPECT_EQ(unconstrained_tracks_needed(cs), cs.density());
}

TEST(LeftEdgeUnconstrained, DensityTrackCountOnRandomWorkloads) {
  std::mt19937_64 rng(5);
  for (int iter = 0; iter < 30; ++iter) {
    const auto cs = gen::uniform_workload(12, 30, rng);
    const auto r = left_edge_unconstrained(cs);
    ASSERT_TRUE(r.success);
    TrackId max_track = -1;
    for (ConnId i = 0; i < cs.size(); ++i) {
      max_track = std::max(max_track, r.routing.track_of(i));
    }
    EXPECT_EQ(max_track + 1, cs.density()) << "iter " << iter;
    // The produced assignment never overlaps two nets on one track.
    const auto ch = SegmentedChannel::fully_segmented(max_track + 1, 30);
    EXPECT_TRUE(validate(ch, cs, r.routing)) << "iter " << iter;
  }
}

TEST(LeftEdgeIdentical, RoutesWhenSegmentsAlign) {
  const auto ch = SegmentedChannel::identical(2, 9, {3, 6});
  ConnectionSet cs;
  cs.add(1, 3);
  cs.add(4, 6);
  cs.add(2, 5);  // crosses the switch: needs two segments on some track
  cs.add(7, 9);
  const auto r = left_edge_route(ch, cs);
  ASSERT_TRUE(r.success) << r.note;
  EXPECT_TRUE(validate(ch, cs, r.routing));
}

TEST(LeftEdgeIdentical, HonorsSegmentLimit) {
  const auto ch = SegmentedChannel::identical(2, 9, {3, 6});
  ConnectionSet cs;
  cs.add(2, 8);  // 3 segments everywhere
  EXPECT_TRUE(left_edge_route(ch, cs).success);
  const auto r = left_edge_route(ch, cs, 2);
  EXPECT_FALSE(r.success);
}

TEST(LeftEdgeIdentical, FailsWhenTracksExhausted) {
  const auto ch = SegmentedChannel::identical(2, 9, {3});
  ConnectionSet cs;
  cs.add(1, 2);
  cs.add(2, 3);
  cs.add(3, 3);  // three nets in one segment's columns, two tracks
  const auto r = left_edge_route(ch, cs);
  EXPECT_FALSE(r.success);
  EXPECT_FALSE(r.note.empty());
}

TEST(LeftEdgeIdentical, NonIdenticalChannelIsInvalidInput) {
  const auto ch = SegmentedChannel({Track(9, {3}), Track(9, {4})});
  ConnectionSet cs;
  cs.add(1, 2);
  const auto r = left_edge_route(ch, cs);
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.failure, FailureKind::kInvalidInput);
  EXPECT_FALSE(r.note.empty());
}

TEST(LeftEdgeIdentical, ExtendedDensityIsAValidUpperBound) {
  // Section IV-A: extend connections to switch-adjacent columns, then the
  // density bounds the tracks left-edge needs.
  std::mt19937_64 rng(17);
  for (int iter = 0; iter < 30; ++iter) {
    const Column width = 24;
    const auto one = SegmentedChannel::identical(1, width, {6, 12, 18});
    auto cs = gen::geometric_workload(10, width, 4.0, rng);
    const int bound = cs.extended_density(one);
    const auto ch = SegmentedChannel::identical(bound, width, {6, 12, 18});
    const auto r = left_edge_route(ch, cs);
    EXPECT_TRUE(r.success) << "iter " << iter << ": " << r.note;
    if (r.success) {
      EXPECT_TRUE(validate(ch, cs, r.routing));
    }
  }
}

TEST(LeftEdgeIdentical, PlainDensityIsNotAlwaysEnough) {
  // The paper notes plain density does NOT bound the tracks needed.
  // Two disjoint nets in one segment's span: density 1, but both occupy
  // the same segment, so one track cannot carry them.
  const auto ch = SegmentedChannel::identical(1, 9, {});
  ConnectionSet cs;
  cs.add(1, 2);
  cs.add(4, 5);
  EXPECT_EQ(cs.density(), 1);
  EXPECT_FALSE(left_edge_route(ch, cs).success);
}

TEST(LeftEdgeIdentical, EmptyConnectionSetSucceeds) {
  const auto ch = SegmentedChannel::identical(1, 5, {});
  EXPECT_TRUE(left_edge_route(ch, ConnectionSet{}).success);
}

TEST(LeftEdgeIdentical, RejectsOversizedConnections) {
  const auto ch = SegmentedChannel::identical(1, 5, {});
  ConnectionSet cs;
  cs.add(1, 9);
  EXPECT_FALSE(left_edge_route(ch, cs).success);
}

}  // namespace
}  // namespace segroute::alg
