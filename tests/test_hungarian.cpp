#include "match/hungarian.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>

namespace segroute::match {
namespace {

TEST(Hungarian, TrivialSingleCell) {
  const auto r = hungarian(1, 1, {3.5});
  EXPECT_TRUE(r.feasible);
  EXPECT_DOUBLE_EQ(r.cost, 3.5);
  EXPECT_EQ(r.column_of[0], 0);
}

TEST(Hungarian, PicksTheCheapDiagonal) {
  // Off-diagonal is expensive.
  const std::vector<double> cost = {
      1, 9, 9,  //
      9, 1, 9,  //
      9, 9, 1,  //
  };
  const auto r = hungarian(3, 3, cost);
  EXPECT_TRUE(r.feasible);
  EXPECT_DOUBLE_EQ(r.cost, 3.0);
  EXPECT_EQ(r.column_of, std::vector<int>({0, 1, 2}));
}

TEST(Hungarian, ClassicInstance) {
  // Known optimum 5: rows pick (0,1)=2? Verify against brute force below;
  // here a hand-checked instance with optimum 69.
  const std::vector<double> cost = {
      25, 40, 35,  //
      40, 60, 35,  //
      20, 40, 25,  //
  };
  const auto r = hungarian(3, 3, cost);
  EXPECT_TRUE(r.feasible);
  EXPECT_DOUBLE_EQ(r.cost, 95.0);  // 25 + 35 + ... brute force confirms
}

TEST(Hungarian, RectangularLeavesColumnsFree) {
  const std::vector<double> cost = {
      5, 1, 7, 2,  //
      6, 3, 1, 4,  //
  };
  const auto r = hungarian(2, 4, cost);
  EXPECT_TRUE(r.feasible);
  EXPECT_DOUBLE_EQ(r.cost, 2.0);  // 1 + 1
  EXPECT_EQ(r.column_of[0], 1);
  EXPECT_EQ(r.column_of[1], 2);
}

TEST(Hungarian, ForbiddenEdgesAreAvoided) {
  const double X = kForbidden;
  const std::vector<double> cost = {
      X, 2,  //
      1, X,  //
  };
  const auto r = hungarian(2, 2, cost);
  EXPECT_TRUE(r.feasible);
  EXPECT_DOUBLE_EQ(r.cost, 3.0);
  EXPECT_EQ(r.column_of, std::vector<int>({1, 0}));
}

TEST(Hungarian, InfeasibleWhenARowHasNoPermittedColumn) {
  const double X = kForbidden;
  const std::vector<double> cost = {
      X, X,  //
      1, 2,  //
  };
  EXPECT_FALSE(hungarian(2, 2, cost).feasible);
}

TEST(Hungarian, InfeasibleByStructure) {
  // Both rows can only use column 0.
  const double X = kForbidden;
  const std::vector<double> cost = {
      1, X,  //
      2, X,  //
  };
  EXPECT_FALSE(hungarian(2, 2, cost).feasible);
}

TEST(Hungarian, RejectsBadShapes) {
  EXPECT_THROW(hungarian(3, 2, std::vector<double>(6, 1.0)),
               std::invalid_argument);
  EXPECT_THROW(hungarian(2, 2, std::vector<double>(3, 1.0)),
               std::invalid_argument);
}

TEST(Hungarian, NegativeCostsAreHandled) {
  const std::vector<double> cost = {
      -5, 2,  //
      3, -4,  //
  };
  const auto r = hungarian(2, 2, cost);
  EXPECT_TRUE(r.feasible);
  EXPECT_DOUBLE_EQ(r.cost, -9.0);
}

/// Brute-force oracle over all column permutations (n_rows <= n_cols).
double brute_force(int n_rows, int n_cols, const std::vector<double>& cost,
                   bool& feasible) {
  std::vector<int> cols(static_cast<std::size_t>(n_cols));
  std::iota(cols.begin(), cols.end(), 0);
  double best = kForbidden;
  do {
    double total = 0;
    bool ok = true;
    for (int r = 0; r < n_rows; ++r) {
      const double c = cost[static_cast<std::size_t>(r) *
                                static_cast<std::size_t>(n_cols) +
                            static_cast<std::size_t>(cols[static_cast<std::size_t>(r)])];
      if (c == kForbidden) {
        ok = false;
        break;
      }
      total += c;
    }
    if (ok) best = std::min(best, total);
  } while (std::next_permutation(cols.begin(), cols.end()));
  feasible = best != kForbidden;
  return best;
}

TEST(Hungarian, MatchesBruteForceOnRandomInstances) {
  std::mt19937_64 rng(2024);
  std::uniform_real_distribution<double> val(0.0, 10.0);
  for (int iter = 0; iter < 60; ++iter) {
    const int rows = 1 + static_cast<int>(rng() % 5);
    const int cols = rows + static_cast<int>(rng() % 3);
    std::vector<double> cost(static_cast<std::size_t>(rows) *
                             static_cast<std::size_t>(cols));
    for (auto& c : cost) c = (rng() % 4 == 0) ? kForbidden : val(rng);
    bool oracle_ok = false;
    const double oracle = brute_force(rows, cols, cost, oracle_ok);
    const auto r = hungarian(rows, cols, cost);
    EXPECT_EQ(r.feasible, oracle_ok) << "iter " << iter;
    if (oracle_ok && r.feasible) {
      EXPECT_NEAR(r.cost, oracle, 1e-9) << "iter " << iter;
    }
  }
}

}  // namespace
}  // namespace segroute::match
