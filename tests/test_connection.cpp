#include "core/connection.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace segroute {
namespace {

TEST(Connection, LengthAndOverlap) {
  const Connection a{2, 5, "a"};
  const Connection b{5, 7, "b"};
  const Connection c{6, 9, "c"};
  EXPECT_EQ(a.length(), 4);
  EXPECT_TRUE(a.overlaps(b));  // share column 5
  EXPECT_TRUE(b.overlaps(a));
  EXPECT_FALSE(a.overlaps(c));
  EXPECT_TRUE(c.overlaps(c));
}

TEST(ConnectionSet, RejectsMalformedConnections) {
  ConnectionSet cs;
  EXPECT_THROW(cs.add(0, 5), std::invalid_argument);
  EXPECT_THROW(cs.add(5, 4), std::invalid_argument);
  EXPECT_THROW(ConnectionSet({Connection{3, 2, ""}}), std::invalid_argument);
}

TEST(ConnectionSet, AddReturnsSequentialIds) {
  ConnectionSet cs;
  EXPECT_EQ(cs.add(1, 2), 0);
  EXPECT_EQ(cs.add(3, 4), 1);
  EXPECT_EQ(cs.size(), 2);
  EXPECT_FALSE(cs.empty());
}

TEST(ConnectionSet, SortedByLeftIsStable) {
  ConnectionSet cs;
  cs.add(5, 9, "x");
  cs.add(2, 3, "y");
  cs.add(5, 6, "z");  // same left as x; x must come first (stability)
  const auto order = cs.sorted_by_left();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 0);
  EXPECT_EQ(order[2], 2);
  EXPECT_FALSE(cs.is_sorted_by_left());
}

TEST(ConnectionSet, MaxRight) {
  ConnectionSet cs;
  EXPECT_EQ(cs.max_right(), 0);
  cs.add(1, 4);
  cs.add(2, 9);
  cs.add(3, 3);
  EXPECT_EQ(cs.max_right(), 9);
}

TEST(ConnectionSet, DensityOfDisjointConnectionsIsOne) {
  ConnectionSet cs;
  cs.add(1, 2);
  cs.add(3, 4);
  cs.add(5, 9);
  EXPECT_EQ(cs.density(), 1);
}

TEST(ConnectionSet, DensityCountsMaximumColumnLoad) {
  ConnectionSet cs;
  cs.add(1, 5);
  cs.add(3, 8);
  cs.add(5, 9);
  // Column 5 carries all three.
  EXPECT_EQ(cs.density(), 3);
}

TEST(ConnectionSet, DensityTouchingEndpointsCount) {
  ConnectionSet cs;
  cs.add(1, 4);
  cs.add(4, 9);  // share exactly column 4
  EXPECT_EQ(cs.density(), 2);
}

TEST(ConnectionSet, EmptyDensityIsZero) {
  EXPECT_EQ(ConnectionSet{}.density(), 0);
}

TEST(ConnectionSet, ExtendedDensityAlignsToSegmentBoundaries) {
  // Channel cut at 3 and 6; connections (4,5) and (6,6) are disjoint, but
  // after extension both cover (4,6): extended density 2.
  const auto ch = SegmentedChannel::identical(2, 9, {3, 6});
  ConnectionSet cs;
  cs.add(4, 5);
  cs.add(6, 6);
  EXPECT_EQ(cs.density(), 1);
  EXPECT_EQ(cs.extended_density(ch), 2);
}

TEST(ConnectionSet, ExtendedDensityRequiresIdenticalTracks) {
  const auto ch = SegmentedChannel({Track(9, {3}), Track(9, {4})});
  ConnectionSet cs;
  cs.add(1, 2);
  EXPECT_THROW((void)cs.extended_density(ch), std::invalid_argument);
}

TEST(ConnectionSet, ExtendedDensityRejectsOversizedConnections) {
  const auto ch = SegmentedChannel::identical(2, 5, {});
  ConnectionSet cs;
  cs.add(1, 9);
  EXPECT_THROW((void)cs.extended_density(ch), std::invalid_argument);
}

}  // namespace
}  // namespace segroute
