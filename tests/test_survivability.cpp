// Tests for the survivability layer: the fingerprint-keyed
// CheckpointStore, the partial (maximal-subset) router, the robust_route
// degradation ladder + partial fallback, the engine's rebind/invalidate
// support, and the deterministic chaos soak (bit-identical across 1/2/8
// threads and distinct across seeds).
#include <gtest/gtest.h>

#include <chrono>
#include <random>
#include <set>
#include <vector>

#include "alg/dp.h"
#include "alg/partial.h"
#include "alg/registry.h"
#include "core/channel_index.h"
#include "core/routing.h"
#include "core/weights.h"
#include "engine/batch.h"
#include "gen/segmentation.h"
#include "gen/workload.h"
#include "harness/chaos.h"
#include "harness/checkpoint.h"
#include "harness/fault.h"
#include "harness/robust_route.h"
#include "harness/verify.h"

namespace segroute::harness {
namespace {

using alg::FailureKind;

// A 4-track, width-12 channel with one switch per track and a routable
// 3-connection workload; routed by the exact DP for checkpoint material.
struct Fixture {
  SegmentedChannel ch = SegmentedChannel::identical(4, 12, {6});
  ConnectionSet cs;
  Fixture() {
    cs.add(1, 4);
    cs.add(8, 12);
    cs.add(2, 6);
  }
};

// More connections in one column than tracks: 2 of 3 route, 1 cannot.
struct Overloaded {
  SegmentedChannel ch = SegmentedChannel::identical(2, 10, {5});
  ConnectionSet cs;
  Overloaded() {
    cs.add(2, 4);
    cs.add(2, 4);
    cs.add(3, 4);
  }
};

// ---------------------------------------------------------- CheckpointStore

TEST(Checkpoint, SaveFindRestoreRoundTrip) {
  Fixture f;
  const ChannelIndex idx(f.ch);
  const auto r = alg::dp_route_unlimited(f.ch, f.cs);
  ASSERT_TRUE(r.success);

  CheckpointStore store;
  store.save(idx.fingerprint(), r.routing, std::nullopt, "dp");

  const auto found = store.find(idx.fingerprint());
  ASSERT_TRUE(found.has_value());
  EXPECT_TRUE(found->routing == r.routing);
  EXPECT_EQ(found->source, "dp");
  EXPECT_FALSE(found->has_weight);

  const auto restored = store.restore(idx.fingerprint(), f.ch, f.cs);
  ASSERT_TRUE(restored.has_value());
  EXPECT_TRUE(restored->routing == r.routing);

  EXPECT_FALSE(store.find(idx.fingerprint() + 1).has_value());
  store.invalidate(idx.fingerprint());
  EXPECT_FALSE(store.find(idx.fingerprint()).has_value());

  const auto s = store.stats();
  EXPECT_EQ(s.saves, 1u);
  EXPECT_GE(s.hits, 2u);
  EXPECT_GE(s.misses, 2u);
  EXPECT_EQ(s.size, 0u);
}

TEST(Checkpoint, RestoreRejectsACorruptCheckpoint) {
  Fixture f;
  const ChannelIndex idx(f.ch);
  // Connections 0 and 2 overlap in columns 2..4; same track = overlap.
  Routing corrupt(f.cs.size());
  corrupt.assign(0, 0);
  corrupt.assign(1, 0);
  corrupt.assign(2, 0);

  CheckpointStore store;
  store.save(idx.fingerprint(), corrupt, std::nullopt, "corrupt");
  EXPECT_FALSE(store.restore(idx.fingerprint(), f.ch, f.cs).has_value());
  // The rejected checkpoint is dropped, not handed out again.
  EXPECT_FALSE(store.find(idx.fingerprint()).has_value());
  EXPECT_EQ(store.stats().rejected, 1u);
}

TEST(Checkpoint, SaveKeepsTheLowerWeight) {
  Fixture f;
  const ChannelIndex idx(f.ch);
  const auto r = alg::dp_route_unlimited(f.ch, f.cs);
  ASSERT_TRUE(r.success);

  CheckpointStore store;
  store.save(idx.fingerprint(), r.routing, 10.0, "a");
  store.save(idx.fingerprint(), r.routing, 20.0, "b");  // worse: kept out
  auto c = store.find(idx.fingerprint());
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->source, "a");
  EXPECT_DOUBLE_EQ(c->weight, 10.0);

  store.save(idx.fingerprint(), r.routing, 5.0, "c");  // better: replaces
  c = store.find(idx.fingerprint());
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->source, "c");
  EXPECT_DOUBLE_EQ(c->weight, 5.0);
  EXPECT_EQ(store.stats().kept, 1u);
  EXPECT_EQ(store.stats().supersedes, 1u);
}

TEST(Checkpoint, LruEvictsTheColdestFingerprint) {
  Fixture f;
  const auto r = alg::dp_route_unlimited(f.ch, f.cs);
  ASSERT_TRUE(r.success);
  CheckpointStore store(2);
  store.save(100, r.routing);
  store.save(200, r.routing);
  ASSERT_TRUE(store.find(100).has_value());  // touch 100; 200 is coldest
  store.save(300, r.routing);
  EXPECT_TRUE(store.find(100).has_value());
  EXPECT_FALSE(store.find(200).has_value());
  EXPECT_TRUE(store.find(300).has_value());
  EXPECT_EQ(store.stats().evictions, 1u);
}

TEST(Checkpoint, RestoreOccupancyRebuildsPlacementExactly) {
  Fixture f;
  const ChannelIndex idx(f.ch);
  const auto r = alg::dp_route_unlimited(f.ch, f.cs);
  ASSERT_TRUE(r.success);
  RoutingCheckpoint ckpt;
  ckpt.fingerprint = idx.fingerprint();
  ckpt.routing = r.routing;

  Occupancy occ(f.ch);
  ASSERT_TRUE(restore_occupancy(ckpt, f.ch, f.cs, occ));
  for (ConnId i = 0; i < f.cs.size(); ++i) {
    const Connection& c = f.cs[i];
    const TrackId t = r.routing.track_of(i);
    // The occupied segments carry exactly this connection id.
    const auto span = f.ch.track(t).span(c.left, c.right);
    for (SegId s = span.first; s <= span.second; ++s) {
      EXPECT_EQ(occ.occupant(t, s), i);
    }
    // And a conflicting re-place is refused.
    EXPECT_FALSE(occ.place(t, c.left, c.right, i + 100));
  }
}

// ------------------------------------------------------------- partial_route

TEST(PartialRoute, CompleteWhenTheInstanceIsRoutable) {
  Fixture f;
  const auto r = alg::partial_route(f.ch, f.cs);
  EXPECT_TRUE(r.success);
  EXPECT_FALSE(r.partial);
  EXPECT_TRUE(r.unrouted.empty());
  const RouteVerifier v(f.ch, f.cs);
  EXPECT_TRUE(v.check(r));
}

TEST(PartialRoute, ReportsTheMaximalSubsetWithPerConnectionKinds) {
  Overloaded f;
  const auto r = alg::partial_route(f.ch, f.cs);
  EXPECT_FALSE(r.success);
  EXPECT_TRUE(r.partial);
  EXPECT_EQ(r.failure, FailureKind::kInfeasible);
  EXPECT_EQ(r.routing.num_assigned(), 2);
  ASSERT_EQ(r.unrouted.size(), 1u);
  EXPECT_EQ(r.unrouted[0].conn, 2);
  EXPECT_EQ(r.unrouted[0].kind, FailureKind::kInfeasible);

  // The subset is independently verifiable.
  const RouteVerifier v(f.ch, f.cs);
  VerifyOptions vo;
  vo.require_complete = false;
  EXPECT_TRUE(v.check(r.routing, vo));

  // Maximality, re-checked from first principles: no unrouted connection
  // fits any track given the final subset's occupancy.
  Occupancy occ(f.ch);
  for (ConnId i = 0; i < f.cs.size(); ++i) {
    if (r.routing.is_assigned(i)) {
      ASSERT_TRUE(occ.place(r.routing.track_of(i), f.cs[i].left, f.cs[i].right,
                            i));
    }
  }
  for (const alg::ConnFailure& u : r.unrouted) {
    for (TrackId t = 0; t < f.ch.num_tracks(); ++t) {
      EXPECT_FALSE(occ.fits(t, f.cs[u.conn].left, f.cs[u.conn].right))
          << "unrouted connection " << u.conn << " fits track " << t;
    }
  }
}

TEST(PartialRoute, BudgetTruncationIsDeterministicAndEnumerated) {
  Fixture f;
  alg::PartialOptions o;
  o.budget = Budget::with_ticks(1);  // one connection considered, then stop
  const auto r = alg::partial_route(f.ch, f.cs, o);
  EXPECT_FALSE(r.success);
  EXPECT_TRUE(r.partial);
  EXPECT_EQ(r.failure, FailureKind::kBudgetExhausted);
  EXPECT_EQ(r.routing.num_assigned(), 1);
  ASSERT_EQ(r.unrouted.size(), 2u);
  EXPECT_EQ(r.unrouted[0].conn, 1);
  EXPECT_EQ(r.unrouted[0].kind, FailureKind::kBudgetExhausted);
  EXPECT_EQ(r.unrouted[1].conn, 2);

  const auto again = alg::partial_route(f.ch, f.cs, o);
  EXPECT_TRUE(again.routing == r.routing);
}

TEST(PartialRoute, RegisteredInTheRouterRegistry) {
  ASSERT_NE(alg::find_router("partial"), nullptr);
  Overloaded f;
  RouteRequest rq;
  rq.channel = &f.ch;
  rq.connections = &f.cs;
  const auto r = alg::route("partial", rq);
  EXPECT_FALSE(r.success);
  EXPECT_TRUE(r.partial);
  EXPECT_EQ(r.routing.num_assigned(), 2);
}

// ------------------------------------------------------- degradation ladder

TEST(Ladder, EscalatingTickBudgetsEventuallySucceed) {
  std::mt19937_64 rng(7);
  const auto ch = SegmentedChannel::identical(4, 16, {4, 8, 12});
  const auto cs = gen::routable_workload(ch, 6, 4.0, rng);
  ASSERT_GT(cs.size(), 0);

  RobustOptions o;
  o.stages = {{"dp", Budget::with_ticks(1)}};  // far too small for round 0
  o.ladder.max_rounds = 8;
  o.ladder.escalation = 8.0;  // 1, 8, 64, 512, ... ticks
  const auto rep = robust_route(ch, cs, o);
  ASSERT_TRUE(rep.success) << rep.note;
  EXPECT_EQ(rep.winner, "dp");
  EXPECT_GT(rep.rounds, 1);
  // Every stage report carries its round; the early ones died of budget.
  ASSERT_GE(rep.stages.size(), 2u);
  EXPECT_EQ(rep.stages.front().round, 0);
  EXPECT_EQ(rep.stages.front().failure, FailureKind::kBudgetExhausted);
  EXPECT_EQ(rep.stages.back().round, rep.rounds - 1);
  EXPECT_TRUE(rep.stages.back().verified);
  EXPECT_TRUE(validate(ch, cs, rep.routing));

  // Determinism: tick budgets only, zero backoff — bit-identical reruns.
  const auto again = robust_route(ch, cs, o);
  EXPECT_EQ(again.rounds, rep.rounds);
  EXPECT_TRUE(again.routing == rep.routing);
}

TEST(Ladder, InfeasibilityProofIsNotRetried) {
  SegmentedChannel ch = SegmentedChannel::unsegmented(1, 10);
  ConnectionSet cs;
  cs.add(1, 5);
  cs.add(3, 8);
  RobustOptions o;
  o.ladder.max_rounds = 5;
  const auto rep = robust_route(ch, cs, o);
  EXPECT_FALSE(rep.success);
  EXPECT_EQ(rep.failure, FailureKind::kInfeasible);
  EXPECT_EQ(rep.rounds, 1);  // the dp proof ends the ladder immediately
}

TEST(Ladder, NonBudgetFailuresAreNotRetried) {
  // Out-of-envelope stage: retrying a kInvalidInput pass cannot help.
  const auto ch = SegmentedChannel::identical(2, 12, {3, 6, 9});
  ConnectionSet cs;
  cs.add(1, 2);
  RobustOptions o;
  o.stages = {{"greedy2track", {}}};
  o.ladder.max_rounds = 5;
  const auto rep = robust_route(ch, cs, o);
  EXPECT_FALSE(rep.success);
  EXPECT_EQ(rep.rounds, 1);
  EXPECT_EQ(rep.stages.size(), 1u);
}

// --------------------------------------------------------- partial fallback

TEST(RobustPartial, ReportsVerifiedSubsetWhenProvenInfeasible) {
  Overloaded f;
  RobustOptions o;
  o.allow_partial = true;
  const auto rep = robust_route(f.ch, f.cs, o);
  EXPECT_FALSE(rep.success);  // all-or-nothing callers see a failure
  EXPECT_TRUE(rep.partial);
  EXPECT_EQ(rep.failure, FailureKind::kInfeasible);
  EXPECT_EQ(rep.routing.num_assigned(), 2);
  ASSERT_EQ(rep.unrouted.size(), 1u);
  EXPECT_EQ(rep.unrouted[0].conn, 2);
  EXPECT_NE(rep.note.find("partial fallback"), std::string::npos);

  const RouteVerifier v(f.ch, f.cs);
  VerifyOptions vo;
  vo.require_complete = false;
  EXPECT_TRUE(v.check(rep.routing, vo));

  // The partial rung appears in the stage reports, verified.
  ASSERT_FALSE(rep.stages.empty());
  EXPECT_EQ(rep.stages.back().router, "partial");
  EXPECT_TRUE(rep.stages.back().verified);
}

TEST(RobustPartial, OffByDefaultPreservesAllOrNothing) {
  Overloaded f;
  const auto rep = robust_route(f.ch, f.cs);
  EXPECT_FALSE(rep.success);
  EXPECT_FALSE(rep.partial);
  EXPECT_TRUE(rep.unrouted.empty());
  EXPECT_EQ(rep.routing.num_assigned(), 0);
}

TEST(RobustPartial, MapsSubsetBackThroughFaultDegradation) {
  // 3 tracks; the storm kills track 1, leaving 2 tracks for 3 mutually
  // overlapping connections: 2 route, 1 cannot.
  const auto ch = SegmentedChannel::identical(3, 10, {5});
  ConnectionSet cs;
  cs.add(2, 4);
  cs.add(2, 4);
  cs.add(3, 4);
  RobustOptions o;
  o.allow_partial = true;
  o.faults = FaultPlan{/*switch_fail_prob=*/0.0, /*segment_fail_prob=*/0.34,
                       /*seed=*/8};
  const auto degraded = harness::apply(ch, o.faults->sample(ch));
  ASSERT_TRUE(degraded.has_value());
  ASSERT_EQ(degraded->channel.num_tracks(), 2);  // seed 8 kills one track

  const auto rep = robust_route(ch, cs, o);
  EXPECT_FALSE(rep.success);
  EXPECT_TRUE(rep.partial);
  EXPECT_EQ(rep.routing.num_assigned(), 2);
  ASSERT_EQ(rep.unrouted.size(), 1u);
  // The subset is valid on the ORIGINAL channel in original coordinates
  // (mapped back through kept_tracks).
  EXPECT_TRUE(validate(ch, cs, rep.routing, std::nullopt,
                       /*require_complete=*/false));
  // ... and uses only surviving tracks.
  std::set<TrackId> kept(degraded->kept_tracks.begin(),
                         degraded->kept_tracks.end());
  for (ConnId i = 0; i < cs.size(); ++i) {
    if (rep.routing.is_assigned(i)) {
      EXPECT_TRUE(kept.count(rep.routing.track_of(i)));
    }
  }
}

// ------------------------------------------------------ checkpoint protocol

TEST(RobustCheckpoint, SavesOnSuccessAndRestoresOnRepeat) {
  Fixture f;
  CheckpointStore store;
  RobustOptions o;
  o.checkpoints = &store;

  const auto first = robust_route(f.ch, f.cs, o);
  ASSERT_TRUE(first.success);
  EXPECT_EQ(first.winner, "dp");
  EXPECT_EQ(store.stats().saves, 1u);

  const auto second = robust_route(f.ch, f.cs, o);
  ASSERT_TRUE(second.success);
  EXPECT_EQ(second.winner, "checkpoint");  // no stage ran
  EXPECT_TRUE(second.stages.empty());
  EXPECT_TRUE(second.routing == first.routing);
}

TEST(RobustCheckpoint, DegradedSubstrateGetsItsOwnCheckpoint) {
  Fixture f;
  CheckpointStore store;
  RobustOptions plain;
  plain.checkpoints = &store;
  ASSERT_TRUE(robust_route(f.ch, f.cs, plain).success);

  RobustOptions faulty = plain;
  faulty.faults = FaultPlan{/*switch_fail_prob=*/1.0,
                            /*segment_fail_prob=*/0.0, /*seed=*/3};
  // Different substrate fingerprint: the pristine checkpoint must NOT
  // answer this call; the cascade runs and saves a second checkpoint.
  const auto rep = robust_route(f.ch, f.cs, faulty);
  ASSERT_TRUE(rep.success);
  EXPECT_NE(rep.winner, "checkpoint");
  EXPECT_EQ(store.stats().saves, 2u);

  // Repeating the same storm now restores the degraded checkpoint.
  const auto again = robust_route(f.ch, f.cs, faulty);
  ASSERT_TRUE(again.success);
  EXPECT_EQ(again.winner, "checkpoint");
  EXPECT_TRUE(again.routing == rep.routing);
  EXPECT_TRUE(validate(f.ch, f.cs, again.routing));
}

// ------------------------------------------------------------- chaos soak

// The acceptance-criteria soak: >= 200 seeded degrade -> reroute ->
// recover cycles, bit-identical across 1/2/8 threads, rollbacks restoring
// the pre-fault routing exactly (restore_mismatches == 0), every partial
// result verifier-clean with unrouted connections enumerated.
TEST(ChaosSoak, BitIdenticalAcrossThreadCountsAndDistinctAcrossSeeds) {
  std::mt19937_64 rng(21);
  const auto ch = gen::staggered_segmentation(6, 24, 6);
  const auto cs = gen::routable_workload(ch, 10, 5.0, rng);
  ASSERT_GT(cs.size(), 0);

  ChaosOptions o;
  o.seed = 1234;
  o.cycles = 200;

  ChaosReport reports[3];
  const int threads[3] = {1, 2, 8};
  for (int k = 0; k < 3; ++k) {
    ChaosOptions ok = o;
    ok.threads = threads[k];
    reports[k] = run_chaos(ch, cs, ok);
    ASSERT_TRUE(reports[k].ok) << "threads=" << threads[k] << ": "
                               << reports[k].note;
    EXPECT_EQ(reports[k].restore_mismatches, 0);
    EXPECT_EQ(reports[k].verify_failures, 0);
    EXPECT_EQ(static_cast<int>(reports[k].history.size()), o.cycles);
  }
  EXPECT_EQ(reports[0].digest, reports[1].digest);
  EXPECT_EQ(reports[0].digest, reports[2].digest);
  EXPECT_EQ(reports[0].rollbacks, reports[1].rollbacks);
  EXPECT_EQ(reports[0].reroutes, reports[2].reroutes);
  EXPECT_EQ(reports[0].partials, reports[2].partials);

  // The schedule actually exercised every phase of the recovery loop.
  EXPECT_GT(reports[0].storms, 0);
  EXPECT_GT(reports[0].reroutes, 0);
  EXPECT_GT(reports[0].rollbacks, 0);
  EXPECT_GT(reports[0].faults_applied, 0u);

  // A different seed is a different storm schedule.
  ChaosOptions other = o;
  other.seed = 4321;
  const auto alt = run_chaos(ch, cs, other);
  ASSERT_TRUE(alt.ok) << alt.note;
  EXPECT_NE(alt.digest, reports[0].digest);

  // Same seed, fresh run: bit-identical to the first.
  const auto rerun = run_chaos(ch, cs, o);
  EXPECT_EQ(rerun.digest, reports[0].digest);
}

// Edits interleaved with fault storms: the OnlineRouter edit stream
// stays bit-identical to from_scratch() every cycle (edit_mismatches ==
// 0 feeds report.ok), folds into the digest deterministically across
// thread counts, and is carried mostly by the localized repair path.
TEST(ChaosSoak, EditStreamInterleavesDeterministically) {
  std::mt19937_64 rng(23);
  const auto ch = gen::staggered_segmentation(6, 24, 6);
  const auto cs = gen::routable_workload(ch, 10, 5.0, rng);
  ASSERT_GT(cs.size(), 0);

  ChaosOptions o;
  o.seed = 777;
  o.cycles = 60;
  o.edits_per_cycle = 3;

  ChaosReport reports[3];
  const int threads[3] = {1, 2, 8};
  for (int k = 0; k < 3; ++k) {
    ChaosOptions ok = o;
    ok.threads = threads[k];
    reports[k] = run_chaos(ch, cs, ok);
    ASSERT_TRUE(reports[k].ok) << "threads=" << threads[k] << ": "
                               << reports[k].note;
    EXPECT_EQ(reports[k].edit_mismatches, 0);
    EXPECT_EQ(reports[k].edits, o.cycles * o.edits_per_cycle);
  }
  EXPECT_EQ(reports[0].digest, reports[1].digest);
  EXPECT_EQ(reports[0].digest, reports[2].digest);
  EXPECT_EQ(reports[0].edit_repairs, reports[2].edit_repairs);
  EXPECT_EQ(reports[0].edit_dp_fallbacks, reports[1].edit_dp_fallbacks);

  // The stream did real work, and repair (not full DP) carried it.
  EXPECT_GT(reports[0].edit_repairs, 0);
  EXPECT_GT(reports[0].edit_repairs, reports[0].edit_dp_fallbacks);

  // The edit stream is part of the digest: turning it off (the legacy
  // configuration) yields a different digest over the same storms.
  ChaosOptions off = o;
  off.edits_per_cycle = 0;
  const auto legacy = run_chaos(ch, cs, off);
  ASSERT_TRUE(legacy.ok) << legacy.note;
  EXPECT_NE(legacy.digest, reports[0].digest);
  // ... and the off-configuration reports no edit activity at all (the
  // default digests CI pins are computed on this path).
  EXPECT_EQ(legacy.edits, 0);
  EXPECT_EQ(legacy.edit_repairs, 0);
  EXPECT_EQ(legacy.edits_rejected, 0);
  for (const ChaosCycle& c : legacy.history) {
    EXPECT_EQ(c.edits, 0);
  }
}

// --------------------------------------------- checkpoint repair pre-stage

TEST(RobustCheckpoint, RepairsAnEditedWorkloadFromTheCheckpoint) {
  Fixture f;
  CheckpointStore store;
  RobustOptions o;
  o.checkpoints = &store;
  const auto first = robust_route(f.ch, f.cs, o);
  ASSERT_TRUE(first.success);

  // Edit the middle connection: prefix (1,4) and suffix (2,6) align,
  // only the changed span is re-placed.
  ConnectionSet edited;
  edited.add(1, 4);
  edited.add(9, 12);  // was (8,12)
  edited.add(2, 6);
  const auto rep = robust_route(f.ch, edited, o);
  ASSERT_TRUE(rep.success);
  EXPECT_EQ(rep.winner, "repair");
  EXPECT_TRUE(rep.stages.empty());  // no cascade stage ran
  EXPECT_NE(rep.note.find("repaired from checkpoint"), std::string::npos);
  EXPECT_NE(rep.note.find("kept 2"), std::string::npos);
  EXPECT_NE(rep.note.find("re-placed 1"), std::string::npos);
  EXPECT_TRUE(validate(f.ch, edited, rep.routing));
  // Kept connections stayed on their checkpointed tracks.
  EXPECT_EQ(rep.routing.track_of(0), first.routing.track_of(0));
  EXPECT_EQ(rep.routing.track_of(2), first.routing.track_of(2));

  // The repaired state superseded the checkpoint: repeating the edited
  // workload is now an exact checkpoint hit.
  const auto again = robust_route(f.ch, edited, o);
  ASSERT_TRUE(again.success);
  EXPECT_EQ(again.winner, "checkpoint");
  EXPECT_TRUE(again.routing == rep.routing);
}

TEST(RobustCheckpoint, RepairHandlesGrowthAndShrinkage) {
  Fixture f;
  CheckpointStore store;
  RobustOptions o;
  o.checkpoints = &store;
  ASSERT_TRUE(robust_route(f.ch, f.cs, o).success);

  // Append one connection (pure growth: the whole old set is a prefix).
  ConnectionSet grown = f.cs;
  grown.add(7, 9);
  const auto add = robust_route(f.ch, grown, o);
  ASSERT_TRUE(add.success);
  EXPECT_EQ(add.winner, "repair");
  EXPECT_TRUE(validate(f.ch, grown, add.routing));

  // Drop the middle connection (shrinkage aligns prefix + suffix).
  ConnectionSet shrunk;
  shrunk.add(1, 4);
  shrunk.add(2, 6);
  store.clear();
  ASSERT_TRUE(robust_route(f.ch, f.cs, o).success);
  const auto rm = robust_route(f.ch, shrunk, o);
  ASSERT_TRUE(rm.success);
  EXPECT_EQ(rm.winner, "repair");
  EXPECT_NE(rm.note.find("re-placed 0"), std::string::npos);
  EXPECT_TRUE(validate(f.ch, shrunk, rm.routing));
}

TEST(RobustCheckpoint, InfeasibleRepairFallsThroughToTheCascade) {
  // Two tracks, one switch: the checkpointed pair occupies segment
  // (1,5) on BOTH tracks, so the inserted middle connection cannot be
  // repair-placed — and the edited instance is genuinely unroutable
  // (three mutually overlapping connections, two tracks). The failed
  // repair must fall through to the cascade, whose exact stage proves
  // infeasibility instead of serving a broken repair.
  const SegmentedChannel ch = SegmentedChannel::identical(2, 10, {5});
  ConnectionSet cs;
  cs.add(1, 4);
  cs.add(2, 4);
  CheckpointStore store;
  RobustOptions o;
  o.checkpoints = &store;
  ASSERT_TRUE(robust_route(ch, cs, o).success);

  ConnectionSet edited;
  edited.add(1, 4);
  edited.add(3, 5);  // the insertion: prefix (1,4), suffix (2,4) align
  edited.add(2, 4);
  const auto rep = robust_route(ch, edited, o);
  EXPECT_FALSE(rep.success);
  EXPECT_NE(rep.winner, "repair");
  EXPECT_EQ(rep.failure, FailureKind::kInfeasible);
  EXPECT_FALSE(rep.stages.empty());  // the cascade actually ran
}

TEST(ChaosSoak, UnroutableBaselineFailsFastAndStructured) {
  SegmentedChannel ch = SegmentedChannel::unsegmented(1, 10);
  ConnectionSet cs;
  cs.add(1, 5);
  cs.add(3, 8);
  const auto rep = run_chaos(ch, cs, {});
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.note.find("baseline"), std::string::npos);
  EXPECT_TRUE(rep.history.empty());
}

}  // namespace
}  // namespace segroute::harness
