#include "alg/greedy1.h"

#include <gtest/gtest.h>

#include <random>

#include "alg/match1.h"
#include "core/routing.h"
#include "gen/fixtures.h"
#include "gen/segmentation.h"
#include "gen/workload.h"

namespace segroute::alg {
namespace {

TEST(Greedy1, RoutesTheFig3Example) {
  const auto ch = gen::fixtures::fig3_channel();
  const auto cs = gen::fixtures::fig3_connections();
  Greedy1Trace trace;
  const auto r = greedy1_route_traced(ch, cs, &trace);
  ASSERT_TRUE(r.success) << r.note;
  EXPECT_TRUE(validate(ch, cs, r.routing, 1));
  // Frozen expected assignment of the reconstructed Fig. 3 instance:
  // c1 -> s21, c2 -> s12, c3 -> s31, c4 -> s13, c5 -> s23.
  EXPECT_EQ(r.routing.track_of(0), 1);
  EXPECT_EQ(trace.segment_of[0], 0);
  EXPECT_EQ(r.routing.track_of(1), 0);
  EXPECT_EQ(trace.segment_of[1], 1);
  EXPECT_EQ(r.routing.track_of(2), 2);
  EXPECT_EQ(trace.segment_of[2], 0);
  EXPECT_EQ(r.routing.track_of(3), 0);
  EXPECT_EQ(trace.segment_of[3], 2);
  EXPECT_EQ(r.routing.track_of(4), 1);
  EXPECT_EQ(trace.segment_of[4], 2);
}

TEST(Greedy1, EveryProducedRoutingIsOneSegment) {
  std::mt19937_64 rng(31);
  for (int iter = 0; iter < 40; ++iter) {
    const auto ch = gen::staggered_segmentation(5, 24, 6);
    const auto cs = gen::geometric_workload(8, 24, 4.0, rng);
    const auto r = greedy1_route(ch, cs);
    if (r.success) {
      EXPECT_TRUE(validate(ch, cs, r.routing, 1)) << "iter " << iter;
    }
  }
}

TEST(Greedy1, Theorem3ExactnessAgainstMatchingOracle) {
  // Greedy succeeds iff a 1-segment routing exists (maximum bipartite
  // matching decides the latter independently).
  std::mt19937_64 rng(32);
  int successes = 0, failures = 0;
  for (int iter = 0; iter < 150; ++iter) {
    const Column width = 18;
    const auto ch = SegmentedChannel(
        {Track(width, {5, 11}), Track(width, {8, 14}), Track(width, {3, 9, 15}),
         Track(width, {6, 12})});
    const auto cs = gen::geometric_workload(
        4 + static_cast<int>(rng() % 8), width, 4.0, rng);
    const bool greedy_ok = greedy1_route(ch, cs).success;
    const bool oracle_ok = match1_route(ch, cs).success;
    EXPECT_EQ(greedy_ok, oracle_ok) << "iter " << iter;
    (greedy_ok ? successes : failures)++;
  }
  // The sweep must exercise both outcomes to be meaningful.
  EXPECT_GT(successes, 0);
  EXPECT_GT(failures, 0);
}

TEST(Greedy1, TieBreakDoesNotAffectSuccess) {
  std::mt19937_64 rng(33);
  for (int iter = 0; iter < 80; ++iter) {
    const auto ch = gen::uniform_segmentation(4, 20, 5);
    const auto cs = gen::geometric_workload(
        3 + static_cast<int>(rng() % 7), 20, 4.0, rng);
    EXPECT_EQ(greedy1_route(ch, cs, TieBreak::LowestTrack).success,
              greedy1_route(ch, cs, TieBreak::HighestTrack).success)
        << "iter " << iter;
  }
}

TEST(Greedy1, ChoosesSegmentWithSmallestRightEnd) {
  // Two candidate tracks; the one whose free segment ends sooner wins.
  const auto ch = SegmentedChannel({Track(9, {6}), Track(9, {4})});
  ConnectionSet cs;
  cs.add(1, 3, "c");
  const auto r = greedy1_route(ch, cs);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.routing.track_of(0), 1);  // (1,4) ends before (1,6)
}

TEST(Greedy1, FailsWhenOnlyMultiSegmentAssignmentsExist) {
  const auto ch = SegmentedChannel::fully_segmented(3, 6);
  ConnectionSet cs;
  cs.add(2, 3);  // always two unit segments
  const auto r = greedy1_route(ch, cs);
  EXPECT_FALSE(r.success);
  EXPECT_FALSE(r.note.empty());
}

TEST(Greedy1, FailsWhenSegmentsAreOccupied) {
  const auto ch = SegmentedChannel::identical(1, 9, {4});
  ConnectionSet cs;
  cs.add(1, 2);
  cs.add(3, 4);  // same segment as the first
  EXPECT_FALSE(greedy1_route(ch, cs).success);
}

TEST(Greedy1, EmptySetAndOversizedConnections) {
  const auto ch = SegmentedChannel::identical(1, 5, {});
  EXPECT_TRUE(greedy1_route(ch, ConnectionSet{}).success);
  ConnectionSet big;
  big.add(1, 7);
  EXPECT_FALSE(greedy1_route(ch, big).success);
}

}  // namespace
}  // namespace segroute::alg
