// The standard suite's pinned expectations, re-derived with the exact
// routers: any library change that alters an answer trips these.
#include "gen/suite.h"

#include <gtest/gtest.h>

#include <set>

#include "alg/dp.h"
#include "core/routing.h"

namespace segroute::gen {
namespace {

TEST(Suite, HasTenDistinctNamedInstances) {
  const auto suite = standard_suite();
  ASSERT_EQ(suite.size(), 10u);
  std::set<std::string> names;
  for (const auto& inst : suite) {
    EXPECT_TRUE(names.insert(inst.name).second) << inst.name;
    EXPECT_FALSE(inst.description.empty());
    EXPECT_GT(inst.connections.size(), 0);
  }
}

TEST(Suite, RoutabilityPinsMatchTheDpRouter) {
  for (const auto& inst : standard_suite()) {
    EXPECT_EQ(alg::dp_route_unlimited(inst.channel, inst.connections).success,
              inst.routable)
        << inst.name;
  }
}

TEST(Suite, MinKPinsAreExact) {
  for (const auto& inst : standard_suite()) {
    if (!inst.routable) {
      EXPECT_EQ(inst.min_k, 0) << inst.name;
      continue;
    }
    ASSERT_GE(inst.min_k, 1) << inst.name;
    EXPECT_TRUE(
        alg::dp_route_ksegment(inst.channel, inst.connections, inst.min_k)
            .success)
        << inst.name;
    if (inst.min_k > 1) {
      EXPECT_FALSE(alg::dp_route_ksegment(inst.channel, inst.connections,
                                          inst.min_k - 1)
                       .success)
          << inst.name;
    }
  }
}

TEST(Suite, OptimalLengthPinsMatchProblem3) {
  for (const auto& inst : standard_suite()) {
    if (!inst.routable) continue;
    const auto r = alg::dp_route_optimal(inst.channel, inst.connections,
                                         weights::occupied_length());
    ASSERT_TRUE(r.success) << inst.name;
    EXPECT_NEAR(r.weight, inst.optimal_length, 1e-9) << inst.name;
  }
}

TEST(Suite, LookupByName) {
  const auto inst = suite_instance("fig3");
  EXPECT_EQ(inst.name, "fig3");
  EXPECT_THROW(suite_instance("no-such-instance"), std::invalid_argument);
}

TEST(Suite, MixesRoutableAndUnroutableInstances) {
  int yes = 0, no = 0;
  for (const auto& inst : standard_suite()) {
    (inst.routable ? yes : no)++;
  }
  EXPECT_GE(yes, 4);
  EXPECT_GE(no, 3);
}

}  // namespace
}  // namespace segroute::gen
