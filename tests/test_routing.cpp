#include "core/routing.h"

#include <gtest/gtest.h>

#include "gen/fixtures.h"

namespace segroute {
namespace {

SegmentedChannel two_track_channel() {
  return SegmentedChannel({Track(9, {3, 6}), Track(9, {4})});
}

TEST(Routing, AssignUnassignAndCompleteness) {
  Routing r(3);
  EXPECT_EQ(r.size(), 3);
  EXPECT_FALSE(r.is_complete());
  EXPECT_EQ(r.num_assigned(), 0);
  r.assign(0, 1);
  r.assign(1, 0);
  EXPECT_EQ(r.num_assigned(), 2);
  r.assign(2, 1);
  EXPECT_TRUE(r.is_complete());
  r.unassign(1);
  EXPECT_FALSE(r.is_complete());
  EXPECT_FALSE(r.is_assigned(1));
  EXPECT_EQ(r.track_of(0), 1);
}

TEST(Routing, SegmentsUsedFollowsTrackGeometry) {
  const auto ch = two_track_channel();
  const Connection c{3, 5, ""};
  EXPECT_EQ(segments_used(ch, c, 0), 2);  // (1,3) + (4,6)
  EXPECT_EQ(segments_used(ch, c, 1), 2);  // (1,4) + (5,9)
  const Connection d{1, 3, ""};
  EXPECT_EQ(segments_used(ch, d, 1), 1);
}

TEST(Validate, AcceptsDisjointAssignments) {
  const auto ch = two_track_channel();
  ConnectionSet cs;
  cs.add(1, 3);  // track 0 segment (1,3)
  cs.add(4, 6);  // track 0 segment (4,6)
  Routing r(2);
  r.assign(0, 0);
  r.assign(1, 0);
  EXPECT_TRUE(validate(ch, cs, r));
}

TEST(Validate, RejectsSegmentConflicts) {
  const auto ch = two_track_channel();
  ConnectionSet cs;
  cs.add(1, 2);
  cs.add(3, 3);  // same segment (1,3) of track 0
  Routing r(2);
  r.assign(0, 0);
  r.assign(1, 0);
  const auto v = validate(ch, cs, r);
  EXPECT_FALSE(v);
  EXPECT_NE(v.error.find("conflict"), std::string::npos);
}

TEST(Validate, EnforcesKSegmentLimit) {
  const auto ch = two_track_channel();
  ConnectionSet cs;
  cs.add(2, 8);  // 3 segments in track 0, 2 in track 1
  Routing r(1);
  r.assign(0, 0);
  EXPECT_TRUE(validate(ch, cs, r));
  EXPECT_FALSE(validate(ch, cs, r, 2));
  r.assign(0, 1);
  EXPECT_TRUE(validate(ch, cs, r, 2));
  EXPECT_FALSE(validate(ch, cs, r, 1));
}

TEST(Validate, CompletenessPolicy) {
  const auto ch = two_track_channel();
  ConnectionSet cs;
  cs.add(1, 2);
  Routing r(1);
  EXPECT_FALSE(validate(ch, cs, r));  // incomplete by default
  EXPECT_TRUE(validate(ch, cs, r, std::nullopt, /*require_complete=*/false));
}

TEST(Validate, RejectsSizeMismatchAndBadTracks) {
  const auto ch = two_track_channel();
  ConnectionSet cs;
  cs.add(1, 2);
  EXPECT_FALSE(validate(ch, cs, Routing(2)));
  Routing r(1);
  r.assign(0, 5);
  EXPECT_FALSE(validate(ch, cs, r));
}

TEST(Validate, RejectsConnectionsBeyondChannel) {
  const auto ch = two_track_channel();
  ConnectionSet cs;
  cs.add(1, 12);
  Routing r(1);
  r.assign(0, 0);
  EXPECT_FALSE(validate(ch, cs, r));
}

TEST(Validate, PaperFig3OccupancyStatement) {
  // "Connection c3 would occupy segments s21 and s22 in track 2, or
  // segment s31 in track 3."
  const auto ch = gen::fixtures::fig3_channel();
  const auto cs = gen::fixtures::fig3_connections();
  const Connection& c3 = cs[2];
  EXPECT_EQ(ch.track(1).span(c3.left, c3.right),
            (std::pair<SegId, SegId>{0, 1}));  // s21 + s22
  EXPECT_EQ(ch.track(2).span(c3.left, c3.right),
            (std::pair<SegId, SegId>{0, 0}));  // s31 alone
}

TEST(Occupancy, PlaceFitsRemoveCycle) {
  const auto ch = two_track_channel();
  Occupancy occ(ch);
  EXPECT_TRUE(occ.fits(0, 2, 5));
  EXPECT_TRUE(occ.place(0, 2, 5, 7));
  EXPECT_EQ(occ.occupant(0, 0), 7);
  EXPECT_EQ(occ.occupant(0, 1), 7);
  EXPECT_EQ(occ.occupant(0, 2), kNoConn);
  EXPECT_FALSE(occ.fits(0, 1, 1));    // same first segment
  EXPECT_FALSE(occ.place(0, 6, 8, 9));  // overlaps segment (4,6)
  EXPECT_TRUE(occ.fits(1, 2, 5));     // other track untouched
  occ.remove(0, 2, 5);
  EXPECT_TRUE(occ.fits(0, 1, 1));
}

TEST(Occupancy, PlaceIsAtomicOnConflict) {
  const auto ch = two_track_channel();
  Occupancy occ(ch);
  ASSERT_TRUE(occ.place(0, 7, 9, 1));
  // (4,8) spans segments (4,6) and (7,9); the latter is taken, so nothing
  // may be marked.
  EXPECT_FALSE(occ.place(0, 4, 8, 2));
  EXPECT_EQ(occ.occupant(0, 1), kNoConn);
}

}  // namespace
}  // namespace segroute
