// E17 (beyond the paper's sizes): heuristic routers on instances far past
// the exact DP's comfort zone (T = 30 tracks, all segmented differently,
// M up to 150). Workloads are routable by construction, so ground truth
// is YES everywhere; the question is which heuristic finds a routing and
// how fast.
#include <chrono>
#include <iostream>
#include <random>

#include "segroute.h"

using namespace segroute;

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  std::mt19937_64 rng(1717);
  const Column width = 120;
  const TrackId tracks = 30;
  const int trials = 8;

  std::cout << "E17 — heuristics at scale (T = " << tracks
            << " staggered tracks, N = " << width
            << ", routable-by-construction workloads, " << trials
            << " trials per row)\n\n";

  io::Table t({"M", "LP heuristic", "LP ms", "anneal", "anneal ms",
               "online greedy+ripup", "online ms"});
  for (int m : {60, 90, 120, 150}) {
    int lp_ok = 0, an_ok = 0, on_ok = 0;
    double lp_ms = 0, an_ms = 0, on_ms = 0;
    for (int i = 0; i < trials; ++i) {
      const auto ch = gen::staggered_segmentation(tracks, width, 15);
      const auto cs = gen::routable_workload(ch, m, 10.0, rng);
      if (cs.size() < m) continue;  // channel saturated; keep rows honest

      auto t0 = std::chrono::steady_clock::now();
      const auto lp = alg::lp_route(ch, cs);
      lp_ms += ms_since(t0);
      if (lp.success && validate(ch, cs, lp.routing)) ++lp_ok;

      t0 = std::chrono::steady_clock::now();
      alg::AnnealRouteOptions ao;
      ao.iterations = 300000;
      ao.restarts = 3;
      ao.seed = static_cast<std::uint64_t>(i) * 7919 + 13;
      const auto an = alg::anneal_route(ch, cs, ao);
      an_ms += ms_since(t0);
      if (an.success && validate(ch, cs, an.routing)) ++an_ok;

      t0 = std::chrono::steady_clock::now();
      alg::OnlineRouter router(ch);
      bool all = true;
      for (const Connection& c : cs.all()) {
        if (!router.insert_with_ripup(c.left, c.right)) all = false;
      }
      on_ms += ms_since(t0);
      if (all) {
        const auto [scs, sr] = router.snapshot();
        if (validate(ch, scs, sr)) ++on_ok;
      }
    }
    t.add_row({io::Table::num(m),
               io::Table::num(100.0 * lp_ok / trials, 0) + "%",
               io::Table::num(lp_ms / trials, 1),
               io::Table::num(100.0 * an_ok / trials, 0) + "%",
               io::Table::num(an_ms / trials, 1),
               io::Table::num(100.0 * on_ok / trials, 0) + "%",
               io::Table::num(on_ms / trials, 1)});
  }
  std::cout << t.str()
            << "\nReading: the LP heuristic stays near-perfect at the cost "
               "of simplex time; annealing trades determinism for speed at "
               "scale; the online greedy is the fastest and degrades first "
               "as the channel tightens.\n";
  return 0;
}
