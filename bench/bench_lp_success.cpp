// E6 (Section IV-C / [12]): how often does the plain LP relaxation of the
// 0-1 routing program land on an integral vertex? The paper reports
// "surprisingly well in practice" for random instances up to M = 60,
// T = 25; this bench reproduces that sweep on routable-by-construction
// instances and also reports behaviour on unrestricted random workloads.
#include <iostream>
#include <random>

#include "segroute.h"

using namespace segroute;

int main() {
  std::mt19937_64 rng(606);
  std::cout << "E6 / Section IV-C — LP relaxation integrality and routing "
               "success\n\n";

  {
    io::Table t({"M", "T", "trials", "integral (uniform obj)",
                 "integral (generic obj)", "routed (LP)"});
    struct Cfg {
      int m;
      TrackId tracks;
      Column width;
    };
    for (const Cfg cfg : {Cfg{15, 8, 40}, Cfg{30, 15, 60}, Cfg{60, 25, 100}}) {
      const int trials = 20;
      int integral_plain = 0, integral_jitter = 0, lp_ok = 0;
      for (int i = 0; i < trials; ++i) {
        const auto ch =
            gen::staggered_segmentation(cfg.tracks, cfg.width, cfg.width / 5);
        const auto cs = gen::routable_workload(ch, cfg.m, cfg.width / 8.0, rng);
        alg::LpRouteOptions pure;
        pure.max_rounding_passes = 0;  // the paper's question: relaxation only
        pure.objective_jitter = 0.0;   // ablation: exactly-uniform objective
        if (alg::lp_route(ch, cs, pure).stats.lp_integral) ++integral_plain;
        alg::LpRouteOptions generic = pure;
        generic.objective_jitter = 1e-4;
        if (alg::lp_route(ch, cs, generic).stats.lp_integral) ++integral_jitter;
        if (alg::lp_route(ch, cs).success) ++lp_ok;  // default: jitter+rounding
      }
      t.add_row({io::Table::num(cfg.m), io::Table::num(cfg.tracks),
                 io::Table::num(trials),
                 io::Table::num(100.0 * integral_plain / trials, 0) + "%",
                 io::Table::num(100.0 * integral_jitter / trials, 0) + "%",
                 io::Table::num(100.0 * lp_ok / trials, 0) + "%"});
    }
    std::cout << "Routable-by-construction workloads (ground truth YES):\n"
              << t.str()
              << "\nAblation: with the exactly-uniform objective the simplex "
                 "often stops at a fractional vertex of the (degenerate) "
                 "optimal face; an arbitrarily small generic perturbation "
                 "recovers the paper's 'almost always 0-1' behaviour.\n\n";
  }

  {
    // Unrestricted workloads: compare LP decisions against the DP oracle.
    io::Table t({"M", "T", "trials", "feasible (DP)", "LP agrees",
                 "relax integral | feasible"});
    const int trials = 40;
    for (int m : {8, 12, 16}) {
      const TrackId tracks = 6;
      const Column width = 36;
      int feasible = 0, agree = 0, integral_given_feasible = 0;
      for (int i = 0; i < trials; ++i) {
        const auto ch = gen::staggered_segmentation(tracks, width, 8);
        const auto cs = gen::geometric_workload(m, width, 6.0, rng);
        const bool dp_ok = alg::dp_route_unlimited(ch, cs).success;
        const auto lp = alg::lp_route(ch, cs);
        if (dp_ok) ++feasible;
        if (lp.success == dp_ok) ++agree;
        if (dp_ok && lp.stats.lp_integral) ++integral_given_feasible;
      }
      t.add_row({io::Table::num(m), io::Table::num(tracks),
                 io::Table::num(trials),
                 io::Table::num(100.0 * feasible / trials, 0) + "%",
                 io::Table::num(100.0 * agree / trials, 0) + "%",
                 feasible ? io::Table::num(100.0 * integral_given_feasible /
                                               feasible,
                                           0) +
                                "%"
                          : "-"});
    }
    std::cout << "Unrestricted workloads vs DP oracle (with rounding "
                 "fallback):\n"
              << t.str() << "\n";
  }

  std::cout << "Shape check (paper): the plain relaxation is integral in "
               "the overwhelming majority of feasible cases, including at "
               "the paper's M = 60, T = 25 scale.\n";
  return 0;
}
