// Shared pieces of the bench drivers' machine-readable output.
//
// Every bench that emits/consumes perf JSON (bench_dp_hotpath,
// bench_engine) shares one schema: a "rows" array of {"key", ...}
// objects plus a top-level "engine_cache" counter object. The number
// formatter, the baseline scanner and the engine_cache emission live
// here so the two drivers cannot drift apart — bench_dp_hotpath once
// emitted a structurally-zero engine_cache field by hand and it is now
// the same function call bench_engine uses.
//
// Also here: the --trace/--metrics plumbing (obs trace session +
// metrics snapshot files) every bench accepts.
#pragma once

#include <cstdint>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>

#include "obs/metrics.h"
#include "obs/span.h"

namespace segroute::bench {

/// Stable float formatting for perf JSON (10 significant digits).
inline std::string fmt(double v) {
  std::ostringstream os;
  os.precision(10);
  os << v;
  return os.str();
}

/// Minimal scanner for the baseline JSON the benches emit: finds the
/// row with `"key": "<key>"` and reads the named numeric/boolean field
/// from it (booleans map to 1.0/0.0). Top-level fields can be read by
/// passing the enclosing object's text via `field_at`.
struct Baseline {
  std::string text;

  std::optional<double> field(const std::string& key,
                              const std::string& name) const {
    const std::string anchor = "\"key\": \"" + key + "\"";
    const std::size_t at = text.find(anchor);
    if (at == std::string::npos) return std::nullopt;
    const std::size_t end = text.find('}', at);
    const std::string needle = "\"" + name + "\": ";
    const std::size_t f = text.find(needle, at);
    if (f == std::string::npos || f > end) return std::nullopt;
    const std::string val = text.substr(f + needle.size(), 32);
    if (val.rfind("true", 0) == 0) return 1.0;
    if (val.rfind("false", 0) == 0) return 0.0;
    return std::strtod(val.c_str(), nullptr);
  }
};

/// The shared "engine_cache" JSON object (no trailing newline). Benches
/// that route without a BatchRouter pass zeros so all perf JSON keeps
/// one schema.
inline std::string engine_cache_json(std::uint64_t hits, std::uint64_t misses,
                                     std::uint64_t evictions) {
  std::ostringstream os;
  os << "\"engine_cache\": {\"hits\": " << hits << ", \"misses\": " << misses
     << ", \"evictions\": " << evictions << "}";
  return os.str();
}

/// --trace/--metrics handling shared by the bench drivers: start() right
/// after flag parsing, finish() after the workload. --trace records the
/// whole run in one obs::TraceSession and writes Chrome trace JSON;
/// --metrics snapshots the registry at the end (Prometheus text for
/// .prom/.txt paths, JSON otherwise). Both work whether or not the
/// library was compiled with SEGROUTE_OBS=ON — with it OFF the files
/// are simply empty of library activity.
struct ObsOutputs {
  std::string trace_path;
  std::string metrics_path;
  std::optional<obs::TraceSession> session;

  /// Consumes "--trace PATH" / "--metrics PATH" at argv[i]; returns
  /// true (and advances i past the value) when the flag was one of ours.
  bool parse_flag(int argc, char** argv, int& i) {
    const std::string a = argv[i];
    if (a == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
      return true;
    }
    if (a == "--metrics" && i + 1 < argc) {
      metrics_path = argv[++i];
      return true;
    }
    return false;
  }

  void start() {
    if (trace_path.empty()) return;
    session.emplace(1 << 16);
    if (!session->start()) {
      std::cerr << "--trace: another trace session is already active\n";
      session.reset();
    }
  }

  void finish(std::ostream& log) {
    if (session) {
      session->stop();
      std::ofstream out(trace_path);
      session->write_chrome_trace(out);
      log << "wrote trace " << trace_path << " (" << session->events().size()
          << " events, " << session->dropped() << " dropped)\n";
    }
    if (!metrics_path.empty()) {
      const bool prom = metrics_path.ends_with(".prom") ||
                        metrics_path.ends_with(".txt");
      std::ofstream out(metrics_path);
      out << (prom ? obs::Registry::instance().prometheus_text()
                   : obs::Registry::instance().json_text());
      log << "wrote metrics " << metrics_path << "\n";
    }
  }
};

}  // namespace segroute::bench
