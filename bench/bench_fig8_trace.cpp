// E10 (Fig. 8): the narrated execution of the at-most-2-segments greedy —
// c1 placed, c2 pooled, c3 tie-broken, pool flushed when |P| equals the
// number of unoccupied tracks, then c4 placed.
#include <iostream>

#include "segroute.h"

using namespace segroute;

namespace {

std::string track_name(TrackId t) {
  std::string s = "t";
  s += std::to_string(t + 1);
  return s;
}

std::string kind_name(alg::Greedy2Event::Kind k) {
  switch (k) {
    case alg::Greedy2Event::Kind::AssignedSegment: return "assigned segment";
    case alg::Greedy2Event::Kind::Pooled: return "pooled";
    case alg::Greedy2Event::Kind::PoolFlushed: return "pool flushed";
    case alg::Greedy2Event::Kind::FinalPoolAssign: return "final pool assign";
  }
  return "?";
}

}  // namespace

int main() {
  const auto ch = gen::fixtures::fig8_channel();
  const auto cs = gen::fixtures::fig8_connections();
  std::cout << "E10 / Fig. 8 — trace of the <=2-segments-per-track greedy\n\n"
            << io::render(ch) << "\n"
            << io::render(cs, ch.width()) << "\n";

  std::vector<alg::Greedy2Event> events;
  const auto r = alg::greedy2track_route(ch, cs, &events);

  io::Table t({"step", "event", "connection", "track"});
  int step = 1;
  for (const auto& e : events) {
    if (e.kind == alg::Greedy2Event::Kind::PoolFlushed ||
        e.kind == alg::Greedy2Event::Kind::FinalPoolAssign) {
      for (const auto& [c, tr] : e.flushed) {
        t.add_row({io::Table::num(step), kind_name(e.kind), cs[c].name,
                   track_name(tr)});
      }
    } else {
      t.add_row({io::Table::num(step), kind_name(e.kind), cs[e.conn].name,
                 e.track == kNoTrack ? std::string("-") : track_name(e.track)});
    }
    ++step;
  }
  std::cout << t.str() << "\n";

  if (r.success) {
    std::cout << "Final routing:\n" << io::render(ch, cs, r.routing);
  }
  std::cout << "\nShape check (paper): c2 cannot use a single segment and "
               "is pooled; once exactly one track remains unoccupied the "
               "pool is flushed onto it; everything routes.\n";
  return 0;
}
