// E18 (ablation): exact divide-and-conquer decomposition at full-switch
// gap columns. On long identically segmented channels with clustered
// workloads, splitting turns one big LP into several small ones; the
// result is provably the same (the split is exact), the wall time is not.
#include <chrono>
#include <iostream>
#include <random>

#include "segroute.h"

using namespace segroute;

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// Clustered workload: nets confined to windows around cluster centers,
/// leaving gap columns between clusters.
ConnectionSet clustered_workload(Column width, int clusters, int per_cluster,
                                 Column spread, std::mt19937_64& rng) {
  ConnectionSet cs;
  for (int c = 0; c < clusters; ++c) {
    const Column center =
        static_cast<Column>((2 * c + 1) * width / (2 * clusters));
    for (int i = 0; i < per_cluster; ++i) {
      const Column l = std::max<Column>(
          1, center - static_cast<Column>(rng() % static_cast<unsigned>(spread)));
      const Column r = std::min<Column>(
          width, center + static_cast<Column>(rng() % static_cast<unsigned>(spread)));
      cs.add(std::min(l, r), std::max(l, r));
    }
  }
  return cs;
}

}  // namespace

int main() {
  std::mt19937_64 rng(1818);
  std::cout << "E18 — exact decomposition ablation (identical tracks, "
               "clustered workloads)\n\n";

  io::Table t({"M", "parts found", "routed", "direct LP ms",
               "decomposed LP ms", "same answer"});
  const Column width = 240;
  std::vector<Column> cuts;
  for (Column c = 8; c < width; c += 8) cuts.push_back(c);

  for (int clusters : {2, 4, 6, 8}) {
    const auto ch = SegmentedChannel::identical(10, width, cuts);
    const auto cs = clustered_workload(width, clusters, 7, 12, rng);

    auto t0 = std::chrono::steady_clock::now();
    const auto direct = alg::lp_route(ch, cs);
    const double direct_ms = ms_since(t0);

    t0 = std::chrono::steady_clock::now();
    const auto split = alg::decompose_route(
        ch, cs, [](const SegmentedChannel& c, const ConnectionSet& s) {
          return alg::lp_route(c, s);
        });
    const double split_ms = ms_since(t0);

    t.add_row({io::Table::num(cs.size()),
               io::Table::num(static_cast<int>(split.stats.nodes_per_level.size())),
               split.success ? "yes" : "no", io::Table::num(direct_ms, 1),
               io::Table::num(split_ms, 1),
               direct.success == split.success ? "yes" : "NO"});
  }
  std::cout << t.str()
            << "\nReading: the split is exact (answers always agree) and "
               "the decomposed LP scales with the largest part instead of "
               "the whole channel.\n";
  return 0;
}
