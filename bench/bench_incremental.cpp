// bench_incremental — the incremental delta re-route path under load.
//
// Two sections:
//
//   edit throughput   seeded edit scripts (add/remove/move) over four
//                     channel families. Per edit, three competitors are
//                     timed against the same live set: the OnlineRouter
//                     repair path (apply()), the canonical stateless
//                     replay (alg::from_scratch — what a service without
//                     sessions would recompute), and the exact DP
//                     re-route (dp_route_unlimited — the from-scratch
//                     competitor the paper's offline formulation implies).
//                     After every apply the session snapshot must equal
//                     from_scratch bit for bit (the canonical-state
//                     contract of alg/delta.h).
//   script digest     one fixed-size edit script (independent of
//                     --quick, no wall clock anywhere near it) folds
//                     every repair receipt and the final snapshot into
//                     an FNV digest. The digest is committed in the
//                     baseline JSON: any change to repair order,
//                     tie-breaks, id allocation or the DP fallback
//                     trips the perf gate even if no unit test names it.
//
// Checked invariants (fatal):
//   - snapshot == from_scratch after every timed apply (always);
//   - the script digest reproduces across two in-process runs (always);
//   - under --check: digest matches the committed baseline exactly,
//     min repair-vs-DP speedup >= max(2.0, baseline/5), repair path
//     carries the majority of applied edits, and per-row apply times
//     stay under 5x baseline.
//
// Flags: --json PATH, --check PATH, --quick, --trace PATH,
//        --metrics PATH.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <optional>
#include <random>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "alg/delta.h"
#include "alg/dp.h"
#include "alg/online.h"
#include "bench_json.h"
#include "gen/segmentation.h"
#include "io/json.h"
#include "io/table.h"
#include "util/pool.h"

using namespace segroute;
using Clock = std::chrono::steady_clock;

namespace {

using bench::fmt;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

struct Family {
  std::string name;
  SegmentedChannel ch;
  Column width;
};

std::vector<Family> families() {
  std::vector<Family> f;
  f.push_back({"uniform-8x64", gen::uniform_segmentation(8, 64, 8), 64});
  f.push_back({"staggered-8x64", gen::staggered_segmentation(8, 64, 8), 64});
  f.push_back({"progressive-10x96",
               gen::progressive_segmentation(10, 96, 6, 4), 96});
  f.push_back({"staggered-12x128", gen::staggered_segmentation(12, 128, 10),
               128});
  return f;
}

/// The speedup gate reads the largest family: the incremental win grows
/// with instance size, and small channels price the DP in microseconds
/// where the ratio measures allocator noise, not design. The gate probe
/// runs a fixed step count in every mode — edit scripts saturate the
/// channel over time and the repair-vs-DP ratio moves with fill, so a
/// --quick run must measure the same script the baseline recorded.
constexpr const char* kGateFamily = "incremental/staggered-12x128";
constexpr int kGateSteps = 300;

/// One uniformly random well-formed span on [1, width].
std::pair<Column, Column> rand_span(std::mt19937_64& rng, Column width) {
  const Column l = 1 + static_cast<Column>(rng() % width);
  const Column len = 1 + static_cast<Column>(rng() % std::max<Column>(1, width / 4));
  return {l, std::min<Column>(width, l + len - 1)};
}

/// Draws the next edit for the live set (forced add when empty, forced
/// remove at the saturation cap) — the same mixing discipline the edit
/// suites in tests/ use, so the bench exercises the same regimes.
alg::ChannelEdit next_edit(std::mt19937_64& rng, Column width,
                           const std::vector<ConnId>& live, int cap) {
  std::uint64_t pick = rng() % 3;
  if (live.empty()) pick = 0;
  if (static_cast<int>(live.size()) >= cap) pick = 1;
  if (pick == 0) {
    const auto [l, r] = rand_span(rng, width);
    return alg::ChannelEdit::add(l, r);
  }
  const ConnId victim = live[rng() % live.size()];
  if (pick == 1) return alg::ChannelEdit::remove(victim);
  const auto [l, r] = rand_span(rng, width);
  return alg::ChannelEdit::move(victim, l, r);
}

struct Row {
  std::string key;
  double incr_ms = 0.0;  // per applied edit
  double full_ms = 0.0;  // canonical stateless replay, per edit
  double dp_ms = 0.0;    // exact DP re-route, per edit
  double speedup_dp = 0.0;
  double repair_frac = 0.0;
  int applied = 0;
  int rejected = 0;
};

/// Timed edit-script run over one family. Fatal mismatch => false.
bool run_family(const Family& f, int steps, std::uint64_t seed, Row* row) {
  alg::OnlineRouter session(f.ch, alg::OnlineRouter::Policy::BestFit);
  std::mt19937_64 rng(seed);
  std::vector<ConnId> live;
  const int cap =
      static_cast<int>(f.ch.tracks().size()) * 3 + 4;

  double incr = 0.0, full = 0.0, dp = 0.0;
  int applied = 0, repairs = 0;
  for (int step = 0; step < steps; ++step) {
    const alg::ChannelEdit e = next_edit(rng, f.width, live, cap);
    const auto t0 = Clock::now();
    const alg::RepairOutcome out = session.apply(e);
    const double apply_ms = ms_since(t0);
    if (!out.success) {
      ++row->rejected;
      continue;
    }
    incr += apply_ms;
    ++applied;
    if (out.path == alg::RepairOutcome::Path::kRepair) ++repairs;
    if (e.kind == alg::ChannelEdit::Kind::kAdd) {
      live.push_back(out.id);
    } else if (e.kind == alg::ChannelEdit::Kind::kRemove) {
      live.erase(std::find(live.begin(), live.end(), out.id));
    }

    const auto [cs, routing] = session.snapshot();
    const auto t1 = Clock::now();
    const alg::CanonicalResult canon = alg::from_scratch(f.ch, cs, true, 0);
    full += ms_since(t1);
    const auto t2 = Clock::now();
    const alg::RouteResult exact = alg::dp_route_unlimited(f.ch, cs);
    dp += ms_since(t2);
    if (!canon.result.success || canon.result.routing != routing) {
      std::cerr << "FAIL: " << f.name << " step " << step
                << ": session diverged from from_scratch\n";
      return false;
    }
    if (!exact.success) {
      std::cerr << "FAIL: " << f.name << " step " << step
                << ": DP rejected a live session state\n";
      return false;
    }
  }
  row->key = "incremental/" + f.name;
  row->applied = applied;
  row->incr_ms = applied > 0 ? incr / applied : 0.0;
  row->full_ms = applied > 0 ? full / applied : 0.0;
  row->dp_ms = applied > 0 ? dp / applied : 0.0;
  row->speedup_dp = row->incr_ms > 0 ? row->dp_ms / row->incr_ms : 0.0;
  row->repair_frac =
      applied > 0 ? static_cast<double>(repairs) / applied : 0.0;
  return true;
}

/// The pinned edit script: fixed size regardless of --quick so the
/// digest in the committed baseline matches every mode. Folds every
/// receipt field that is part of the delta contract, then the final
/// snapshot (spans + tracks), FNV-1a style.
std::uint64_t script_digest() {
  constexpr std::uint64_t kPrime = 1099511628211ull;
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&](std::uint64_t v) {
    h ^= v;
    h *= kPrime;
  };
  const SegmentedChannel ch = gen::staggered_segmentation(6, 32, 6);
  alg::OnlineRouter session(ch, alg::OnlineRouter::Policy::BestFit);
  std::mt19937_64 rng(20252);
  std::vector<ConnId> live;
  for (int step = 0; step < 400; ++step) {
    const alg::ChannelEdit e = next_edit(rng, 32, live, 22);
    const alg::RepairOutcome out = session.apply(e);
    mix(static_cast<std::uint64_t>(step));
    mix((out.success ? 1u : 0u) |
        (static_cast<std::uint64_t>(out.path) << 1) |
        (static_cast<std::uint64_t>(out.failure) << 4) |
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(out.id)) << 8));
    mix(static_cast<std::uint32_t>(out.affected_lo) |
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(out.affected_hi))
         << 32));
    mix(static_cast<std::uint32_t>(out.reconsidered) |
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(out.moved))
         << 32));
    if (!out.success) continue;
    if (e.kind == alg::ChannelEdit::Kind::kAdd) {
      live.push_back(out.id);
    } else if (e.kind == alg::ChannelEdit::Kind::kRemove) {
      live.erase(std::find(live.begin(), live.end(), out.id));
    }
  }
  const auto [cs, routing] = session.snapshot();
  mix(static_cast<std::uint64_t>(cs.size()));
  for (ConnId c = 0; c < cs.size(); ++c) {
    mix(static_cast<std::uint32_t>(cs[c].left) |
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cs[c].right))
         << 32));
    mix(static_cast<std::uint64_t>(routing.track_of(c) + 1));
  }
  return h;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path, check_path;
  bool quick = false;
  bench::ObsOutputs obs_out;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--json" && i + 1 < argc) json_path = argv[++i];
    else if (a == "--check" && i + 1 < argc) check_path = argv[++i];
    else if (a == "--quick") quick = true;
    else if (obs_out.parse_flag(argc, argv, i)) continue;
    else {
      std::cerr << "unknown flag: " << a << "\n";
      return 2;
    }
  }
  obs_out.start();

  int failures = 0;
  const int steps = quick ? 150 : 600;

  // --- edit throughput ---------------------------------------------------
  std::vector<Row> rows;
  io::Table table({"family", "applied", "apply us", "replay us", "dp us",
                   "dp speedup", "repair frac"});
  double speedup_dp_min = std::numeric_limits<double>::infinity();
  double speedup_dp_gate = 0.0;
  double repair_frac_min = 1.0;
  for (const Family& f : families()) {
    Row row;
    if (!run_family(f, steps, 4242, &row)) {
      ++failures;
      continue;
    }
    speedup_dp_min = std::min(speedup_dp_min, row.speedup_dp);
    repair_frac_min = std::min(repair_frac_min, row.repair_frac);
    table.add_row({f.name, std::to_string(row.applied),
                   io::Table::num(row.incr_ms * 1e3, 2),
                   io::Table::num(row.full_ms * 1e3, 2),
                   io::Table::num(row.dp_ms * 1e3, 2),
                   io::Table::num(row.speedup_dp, 1),
                   io::Table::num(row.repair_frac, 2)});
    rows.push_back(row);
  }
  std::cout << "incremental edits — " << steps
            << " scripted edits per family (apply vs stateless replay vs "
               "exact DP)\n\n";
  table.print(std::cout);
  {
    Row gate_row;
    if (!run_family(families().back(), kGateSteps, 4242, &gate_row)) {
      ++failures;
    } else {
      speedup_dp_gate = gate_row.speedup_dp;
      repair_frac_min = std::min(repair_frac_min, gate_row.repair_frac);
    }
  }
  std::cout << "\nrepair-vs-DP speedup: "
            << io::Table::num(speedup_dp_gate, 1) << "x at " << kGateFamily
            << " (" << kGateSteps << "-step probe; min across families "
            << io::Table::num(speedup_dp_min, 1)
            << "x); min repair fraction: "
            << io::Table::num(repair_frac_min, 2) << "\n";

  // --- script digest -----------------------------------------------------
  const std::uint64_t digest = script_digest();
  const bool reproduced = script_digest() == digest;
  std::ostringstream dhex;
  dhex << std::hex << digest;
  std::cout << "edit-script digest: 0x" << dhex.str() << " — "
            << (reproduced ? "reproduced in-process\n"
                           : "NON-DETERMINISTIC\n");
  if (!reproduced) ++failures;

  obs_out.finish(std::cout);

  // --- JSON emission -----------------------------------------------------
  std::ostringstream js;
  js << "{\n  \"bench\": \"incremental\",\n  \"steps\": " << steps
     << ",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    js << "    {\"key\": \"" << io::json_escape(r.key)
       << "\", \"incr_ms_per_edit\": " << fmt(r.incr_ms)
       << ", \"full_ms_per_edit\": " << fmt(r.full_ms)
       << ", \"dp_ms_per_edit\": " << fmt(r.dp_ms)
       << ", \"speedup_dp\": " << fmt(r.speedup_dp)
       << ", \"repair_frac\": " << fmt(r.repair_frac) << "},\n";
  }
  // The digest rides in a row so Baseline::field can scan it; split in
  // 32-bit halves because the scanner reads doubles.
  js << "    {\"key\": \"digest/script\", \"digest_hi\": "
     << (digest >> 32) << ", \"digest_lo\": " << (digest & 0xffffffffull)
     << "}\n  ],\n";
  js << "  \"digest\": \"0x" << dhex.str() << "\",\n";
  js << "  \"speedup_dp_min\": " << fmt(speedup_dp_min) << ",\n";
  js << "  \"speedup_dp_gate\": " << fmt(speedup_dp_gate) << ",\n";
  js << "  \"repair_frac_min\": " << fmt(repair_frac_min) << ",\n";
  js << "  \"hardware_threads\": " << util::hardware_threads() << ",\n";
  js << "  " << bench::engine_cache_json(0, 0, 0) << "\n}\n";

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << js.str();
    std::cout << "\nwrote " << json_path << "\n";
  }

  // --- Gates -------------------------------------------------------------
  if (!check_path.empty()) {
    std::ifstream in(check_path);
    if (!in) {
      std::cerr << "cannot read baseline " << check_path << "\n";
      return 2;
    }
    bench::Baseline base{std::string(std::istreambuf_iterator<char>(in),
                                     std::istreambuf_iterator<char>())};
    std::cout << "\nbaseline check vs " << check_path << "\n";

    const auto bhi = base.field("digest/script", "digest_hi");
    const auto blo = base.field("digest/script", "digest_lo");
    if (!bhi || !blo ||
        static_cast<std::uint64_t>(*bhi) != (digest >> 32) ||
        static_cast<std::uint64_t>(*blo) != (digest & 0xffffffffull)) {
      std::cout << "  FAIL: edit-script digest drifted from the committed "
                   "baseline (repair order / tie-break / id-allocation "
                   "change?)\n";
      ++failures;
    }
    double base_speedup = 0.0;
    {
      const std::size_t at = base.text.find("\"speedup_dp_gate\": ");
      if (at != std::string::npos) {
        base_speedup = std::strtod(
            base.text.c_str() + at +
                std::string("\"speedup_dp_gate\": ").size(),
            nullptr);
      }
    }
    const double need = std::max(2.0, base_speedup / 5.0);
    if (speedup_dp_gate < need) {
      std::cout << "  FAIL: repair-vs-DP speedup " << speedup_dp_gate
                << "x at " << kGateFamily << " < required " << need << "x\n";
      ++failures;
    }
    if (repair_frac_min < 0.5) {
      std::cout << "  FAIL: repair path carried only " << repair_frac_min
                << " of applied edits (DP fallback dominates)\n";
      ++failures;
    }
    for (const Row& r : rows) {
      const auto bms = base.field(r.key, "incr_ms_per_edit");
      if (!bms) continue;
      if (*bms > 0 && r.incr_ms > 5.0 * *bms) {
        std::cout << "  FAIL " << r.key << ": " << r.incr_ms
                  << " ms/edit > 5x baseline " << *bms << " ms\n";
        ++failures;
      }
    }
    std::cout << (failures == 0 ? "baseline check passed\n"
                                : "baseline check FAILED\n");
  }
  return failures == 0 ? 0 : 1;
}
