// E2 (Fig. 3 + Section IV-A): the running example. Regenerates the
// 1-segment greedy's assignment sequence and cross-checks every routing
// algorithm on the same instance.
#include <iostream>

#include "segroute.h"

using namespace segroute;

int main() {
  const auto ch = gen::fixtures::fig3_channel();
  const auto cs = gen::fixtures::fig3_connections();
  std::cout << "E2 / Fig. 3 — the paper's running example (T = 3, N = 9, "
               "M = 5)\n\n"
            << io::render(ch) << "\n"
            << io::render(cs, ch.width()) << "\n";

  alg::Greedy1Trace trace;
  const auto greedy = alg::greedy1_route_traced(ch, cs, &trace);

  io::Table t({"connection", "greedy segment", "segment right end"});
  for (ConnId i = 0; i < cs.size(); ++i) {
    const TrackId tr = greedy.routing.track_of(i);
    const SegId sg = trace.segment_of[static_cast<std::size_t>(i)];
    std::string seg = "s";
    seg += std::to_string(tr + 1);
    seg += std::to_string(sg + 1);
    t.add_row({cs[i].name, seg,
               io::Table::num(ch.track(tr).segment(sg).right)});
  }
  std::cout << t.str() << "\n" << io::render(ch, cs, greedy.routing) << "\n";

  io::Table x({"algorithm", "routes?", "weight (occupied length)"});
  const auto w = weights::occupied_length();
  const auto add = [&](const std::string& name, const alg::RouteResult& r) {
    x.add_row({name, r.success ? "yes" : "no",
               r.success ? io::Table::num(total_weight(ch, cs, r.routing, w))
                         : "-"});
  };
  add("greedy 1-segment (Thm 3)", greedy);
  add("matching, min weight (Fig 7)",
      alg::match1_route_optimal(ch, cs, w));
  add("assignment-graph DP (IV-B)", alg::dp_route_unlimited(ch, cs));
  add("DP, optimal (Problem 3)", alg::dp_route_optimal(ch, cs, w));
  add("LP heuristic (IV-C)", alg::lp_route(ch, cs));
  std::cout << x.str()
            << "\nShape check: all algorithms route the example; the two "
               "optimizers agree on the minimum weight.\n";
  return 0;
}
