// Chaos soak bench: the survivability harness under load.
//
// Runs the deterministic chaos schedule (harness::run_chaos) — seeded
// fault storms driving a BatchRouter session through degrade -> reroute
// -> recover cycles with checkpoint rollback and the partial fallback —
// at 1, 2 and 8 worker threads, and prints the per-thread soak table.
//
// Checked invariants (exit 1 on violation):
//   - every run completes with ok = true (no verify failures, no
//     checkpoint-restore mismatches);
//   - the report digest is bit-identical across thread counts (the
//     determinism contract of harness/chaos.h);
//   - a different master seed produces a different digest.
#include <chrono>
#include <cstdint>
#include <iostream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "segroute.h"

using namespace segroute;

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

std::string hex(std::uint64_t v) {
  std::ostringstream os;
  os << std::hex << v;
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  int cycles = 200;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--cycles" && i + 1 < argc) {
      cycles = std::atoi(argv[++i]);
    }
  }

  std::mt19937_64 rng(21);
  const auto ch = gen::staggered_segmentation(6, 24, 6);
  const auto cs = gen::routable_workload(ch, 10, 5.0, rng);

  std::cout << "Chaos soak — " << cycles
            << " degrade->reroute->recover cycles on a 6-track staggered "
               "channel, M = "
            << cs.size() << "\n\n";

  harness::ChaosOptions base;
  base.seed = 1234;
  base.cycles = cycles;

  io::Table t({"threads", "storms", "faults", "reroutes", "partials",
               "rollbacks", "outages", "cache hits", "digest", "ms"});
  bool ok = true;
  std::uint64_t pinned_digest = 0;
  for (int threads : {1, 2, 8}) {
    harness::ChaosOptions o = base;
    o.threads = threads;
    const auto t0 = std::chrono::steady_clock::now();
    const auto rep = harness::run_chaos(ch, cs, o);
    const double ms = ms_since(t0);
    if (!rep.ok) {
      std::cerr << "FAIL: threads=" << threads << ": " << rep.note << "\n";
      ok = false;
    }
    if (threads == 1) {
      pinned_digest = rep.digest;
    } else if (rep.digest != pinned_digest) {
      std::cerr << "FAIL: digest at " << threads
                << " threads differs from single-threaded run\n";
      ok = false;
    }
    t.add_row({std::to_string(threads), std::to_string(rep.storms),
               std::to_string(rep.faults_applied),
               std::to_string(rep.reroutes), std::to_string(rep.partials),
               std::to_string(rep.rollbacks), std::to_string(rep.outages),
               std::to_string(rep.cache.hits), hex(rep.digest),
               std::to_string(static_cast<int>(ms))});
  }
  t.print(std::cout);

  harness::ChaosOptions alt = base;
  alt.seed = 4321;
  const auto other = harness::run_chaos(ch, cs, alt);
  if (other.digest == pinned_digest) {
    std::cerr << "FAIL: seed " << alt.seed
              << " reproduced the seed-" << base.seed << " digest\n";
    ok = false;
  }
  std::cout << "\nseed " << base.seed << " digest " << hex(pinned_digest)
            << ", seed " << alt.seed << " digest " << hex(other.digest)
            << (ok ? "  [deterministic across 1/2/8 threads]" : "") << "\n";
  return ok ? 0 : 1;
}
