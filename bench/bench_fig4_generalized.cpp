// E3 (Fig. 4 / Definition 2): an instance where no single-track routing
// exists but a generalized routing (connections may change tracks) does.
#include <iostream>

#include "segroute.h"

using namespace segroute;

int main() {
  const auto ch = gen::fixtures::fig4_channel();
  const auto cs = gen::fixtures::fig4_connections();
  std::cout << "E3 / Fig. 4 — generalized routing strictly increases "
               "capacity\n\n"
            << io::render(ch) << "\n"
            << io::render(cs, ch.width()) << "\n";

  const auto std_r = alg::dp_route_unlimited(ch, cs);
  const auto gen_r = alg::generalized_dp_route(ch, cs);

  io::Table t({"router", "routes?", "detail"});
  t.add_row({"single-track DP (Def. 1)", std_r.success ? "yes" : "no",
             std_r.success ? "" : std_r.note});
  t.add_row({"generalized DP (Def. 2, Sec. V)",
             gen_r.success ? "yes" : "no",
             gen_r.success ? "valid: " + std::string(validate(ch, cs,
                                                              gen_r.routing)
                                                         ? "yes"
                                                         : "NO")
                           : gen_r.note});
  std::cout << t.str() << "\n";

  if (gen_r.success) {
    std::cout << "Generalized routing:\n"
              << io::render(ch, cs, gen_r.routing) << "\n";
    io::Table p({"connection", "parts", "track changes"});
    for (ConnId i = 0; i < cs.size(); ++i) {
      std::string parts;
      for (const RoutePart& part : gen_r.routing.parts(i)) {
        if (!parts.empty()) parts += " ";
        parts += "(";
        parts += std::to_string(part.left);
        parts += "-";
        parts += std::to_string(part.right);
        parts += ")@t";
        parts += std::to_string(part.track + 1);
      }
      p.add_row({cs[i].name, parts,
                 io::Table::num(gen_r.routing.track_changes(i))});
    }
    std::cout << p.str();
  }
  std::cout << "\nShape check (paper): the standard problem is infeasible, "
               "the generalized one feasible — track changing buys real "
               "routing capacity.\n";
  return 0;
}
