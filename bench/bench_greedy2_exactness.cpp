// E9 (Theorem 4): on channels with at most two segments per track, the
// pool greedy routes iff a routing exists. Sweep over channel load,
// cross-checking the DP oracle, and report the success-rate curve.
#include <iostream>
#include <random>

#include "segroute.h"

using namespace segroute;

int main() {
  std::mt19937_64 rng(909);
  const Column width = 24;
  const TrackId tracks = 5;
  const int trials = 60;

  std::cout << "E9 / Theorem 4 — pool greedy vs DP oracle on <=2-segment "
               "tracks (T = " << tracks << ", N = " << width << ")\n\n";

  io::Table t({"M", "routable (oracle)", "greedy agrees", "disagreements"});
  for (int m : {4, 6, 8, 10, 12, 14}) {
    int routable = 0, agree = 0, disagree = 0;
    for (int i = 0; i < trials; ++i) {
      std::vector<Track> trs;
      for (TrackId k = 0; k < tracks; ++k) {
        if (rng() % 5 == 0) {
          trs.push_back(Track::unsegmented(width));
        } else {
          trs.emplace_back(width, std::vector<Column>{static_cast<Column>(
                                      1 + rng() % (width - 1))});
        }
      }
      const SegmentedChannel ch(std::move(trs));
      const auto cs = gen::geometric_workload(m, width, 6.0, rng);
      const bool oracle = alg::dp_route_unlimited(ch, cs).success;
      const bool greedy = alg::greedy2track_route(ch, cs).success;
      if (oracle) ++routable;
      if (oracle == greedy) ++agree; else ++disagree;
    }
    t.add_row({io::Table::num(m),
               io::Table::num(100.0 * routable / trials, 0) + "%",
               io::Table::num(100.0 * agree / trials, 0) + "%",
               io::Table::num(disagree)});
  }
  std::cout << t.str()
            << "\nShape check (Theorem 4): zero disagreements at every "
               "load level.\n";
  return 0;
}
