// bench_engine — repeated-route throughput of the batch engine.
//
// The workload routes a fixed channel over and over: 8 distinct
// connection sets, cycled `repeats` times — the access pattern of
// capacity sweeps, portfolio racing and Monte-Carlo studies. Three
// paths route the identical instance stream:
//
//   direct          dp_route, no index, no workspace (the historical path)
//   engine-nocache  BatchRouter with the memo cache off: shared
//                   ChannelIndex + per-thread scratch only
//   engine-cache    BatchRouter with the memo cache on: repeats after the
//                   first cycle are cache hits
//
// plus a route_many() thread-scaling section at 1/2/8 threads.
//
// Checked invariants (fatal under --check):
//   - all three paths return bit-identical results (success, weight,
//     routing) on every instance;
//   - route_many results are bit-identical across 1/2/8 threads,
//     cache on and off;
//   - engine-cache is >= 2x faster than direct at a single thread.
//
// Flags: --json PATH, --check PATH, --repeats N, --quick.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <optional>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "alg/dp.h"
#include "core/weights.h"
#include "engine/batch.h"
#include "gen/segmentation.h"
#include "gen/workload.h"
#include "io/json.h"
#include "io/table.h"

using namespace segroute;
using Clock = std::chrono::steady_clock;

namespace {

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

struct Mode {
  std::string name;
  engine::WeightKind weight;
};

bool same_result(const alg::RouteResult& a, const alg::RouteResult& b) {
  return a.success == b.success && a.weight == b.weight &&
         a.routing == b.routing && a.failure == b.failure;
}

std::string fmt(double v) {
  std::ostringstream os;
  os.precision(10);
  os << v;
  return os.str();
}

/// Minimal scanner for the baseline JSON this bench itself emits (same
/// idiom as bench_dp_hotpath).
struct Baseline {
  std::string text;

  std::optional<double> field(const std::string& key,
                              const std::string& name) const {
    const std::string anchor = "\"key\": \"" + key + "\"";
    const std::size_t at = text.find(anchor);
    if (at == std::string::npos) return std::nullopt;
    const std::size_t end = text.find('}', at);
    const std::string needle = "\"" + name + "\": ";
    const std::size_t f = text.find(needle, at);
    if (f == std::string::npos || f > end) return std::nullopt;
    const std::string val = text.substr(f + needle.size(), 32);
    if (val.rfind("true", 0) == 0) return 1.0;
    if (val.rfind("false", 0) == 0) return 0.0;
    return std::strtod(val.c_str(), nullptr);
  }
};

struct PathRow {
  std::string key;  // "<mode>/<path>"
  double ms_per_route = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  std::string json_path, check_path;
  int repeats = 40;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--json" && i + 1 < argc) json_path = argv[++i];
    else if (a == "--check" && i + 1 < argc) check_path = argv[++i];
    else if (a == "--repeats" && i + 1 < argc) repeats = std::atoi(argv[++i]);
    else if (a == "--quick") quick = true;
    else {
      std::cerr << "unknown flag: " << a << "\n";
      return 2;
    }
  }
  if (quick) repeats = std::min(repeats, 10);
  repeats = std::max(repeats, 2);

  // Fixed channel, 8 distinct routable connection sets.
  const SegmentedChannel channel = gen::staggered_segmentation(8, 96, 8);
  std::vector<ConnectionSet> sets;
  for (int s = 0; s < 8; ++s) {
    std::mt19937_64 rng(9000 + s);
    sets.push_back(gen::routable_workload(channel, 32, 6.0, rng));
  }
  const std::size_t n_instances = sets.size();
  const std::size_t stream_len = n_instances * static_cast<std::size_t>(repeats);

  const std::vector<Mode> modes = {
      {"unlimited", engine::WeightKind::kNone},
      {"weighted", engine::WeightKind::kOccupiedLength},
  };
  const auto weight_fn = weights::occupied_length();

  int failures = 0;
  std::vector<PathRow> rows;
  double speedup_nocache_min = std::numeric_limits<double>::infinity();
  double speedup_cache_min = std::numeric_limits<double>::infinity();
  bool identical_paths = true;
  bool identical_threads = true;
  engine::CacheStats cache_stats_last;

  io::Table table({"mode", "path", "ms/route", "speedup"});
  for (const Mode& mode : modes) {
    alg::DpOptions direct_opts;
    direct_opts.max_segments = 0;
    if (mode.weight != engine::WeightKind::kNone) {
      direct_opts.weight = weight_fn;
    }
    engine::EngineRouteOptions eo;
    eo.weight = mode.weight;

    // Reference results, one per instance, from the direct path.
    std::vector<alg::RouteResult> reference;
    for (const ConnectionSet& cs : sets) {
      reference.push_back(alg::dp_route(channel, cs, direct_opts));
    }

    // --- direct ---------------------------------------------------------
    const auto t_direct = Clock::now();
    for (int r = 0; r < repeats; ++r) {
      for (const ConnectionSet& cs : sets) {
        const auto res = alg::dp_route(channel, cs, direct_opts);
        if (!same_result(res, reference[&cs - sets.data()])) {
          identical_paths = false;
        }
      }
    }
    const double ms_direct =
        ms_since(t_direct) / static_cast<double>(stream_len);

    // --- engine, cache off ---------------------------------------------
    engine::BatchOptions nocache_opts;
    nocache_opts.threads = 1;
    nocache_opts.use_cache = false;
    engine::BatchRouter router_nc(channel, nocache_opts);
    const auto t_nc = Clock::now();
    for (int r = 0; r < repeats; ++r) {
      for (std::size_t s = 0; s < n_instances; ++s) {
        const auto res = router_nc.route(sets[s], eo);
        if (!same_result(res, reference[s])) identical_paths = false;
      }
    }
    const double ms_nc = ms_since(t_nc) / static_cast<double>(stream_len);

    // --- engine, cache on ----------------------------------------------
    // One untimed warm-up pass populates the cache, so the timed loop
    // measures steady-state hit cost and ms/route is independent of the
    // repeat count (--quick and full runs share one baseline).
    engine::BatchOptions cache_opts;
    cache_opts.threads = 1;
    engine::BatchRouter router_c(channel, cache_opts);
    for (std::size_t s = 0; s < n_instances; ++s) {
      const auto res = router_c.route(sets[s], eo);
      if (!same_result(res, reference[s])) identical_paths = false;
    }
    const auto t_c = Clock::now();
    for (int r = 0; r < repeats; ++r) {
      for (std::size_t s = 0; s < n_instances; ++s) {
        const auto res = router_c.route(sets[s], eo);
        if (!same_result(res, reference[s])) identical_paths = false;
      }
    }
    const double ms_c = ms_since(t_c) / static_cast<double>(stream_len);
    cache_stats_last = router_c.cache_stats();

    const double sp_nc = ms_nc > 0 ? ms_direct / ms_nc : 0.0;
    const double sp_c = ms_c > 0 ? ms_direct / ms_c : 0.0;
    speedup_nocache_min = std::min(speedup_nocache_min, sp_nc);
    speedup_cache_min = std::min(speedup_cache_min, sp_c);

    table.add_row({mode.name, "direct", io::Table::num(ms_direct, 4), "1.0"});
    table.add_row({mode.name, "engine-nocache", io::Table::num(ms_nc, 4),
                   io::Table::num(sp_nc, 2)});
    table.add_row({mode.name, "engine-cache", io::Table::num(ms_c, 4),
                   io::Table::num(sp_c, 2)});
    rows.push_back({mode.name + "/direct", ms_direct});
    rows.push_back({mode.name + "/engine-nocache", ms_nc});
    rows.push_back({mode.name + "/engine-cache", ms_c});

    // --- route_many thread scaling, cache on and off --------------------
    std::vector<ConnectionSet> stream;
    stream.reserve(stream_len);
    for (int r = 0; r < repeats; ++r) {
      for (const ConnectionSet& cs : sets) stream.push_back(cs);
    }
    for (const bool use_cache : {false, true}) {
      std::optional<std::vector<alg::RouteResult>> first;
      for (const int threads : {1, 2, 8}) {
        engine::BatchOptions bo;
        bo.threads = threads;
        bo.use_cache = use_cache;
        engine::BatchRouter router(channel, bo);
        const auto t0 = Clock::now();
        const auto results = router.route_many(stream, eo);
        const double ms = ms_since(t0);
        if (!first) {
          first = results;
          for (std::size_t i = 0; i < results.size(); ++i) {
            if (!same_result(results[i], reference[i % n_instances])) {
              identical_paths = false;
            }
          }
        } else {
          for (std::size_t i = 0; i < results.size(); ++i) {
            if (!same_result(results[i], (*first)[i])) {
              identical_threads = false;
            }
          }
        }
        std::cout << "route_many " << mode.name << " cache="
                  << (use_cache ? "on " : "off") << " threads=" << threads
                  << ": " << ms << " ms (" << stream_len << " routes)\n";
      }
    }
  }

  std::cout << "\nbatch engine — repeated-route throughput (8 sets x "
            << repeats << " repeats, 1 thread)\n";
  table.print(std::cout);
  std::cout << "cache: " << cache_stats_last.hits << " hits, "
            << cache_stats_last.misses << " misses, "
            << cache_stats_last.evictions << " evictions\n";
  std::cout << (identical_paths
                    ? "paths bit-identical (direct vs engine, cache on/off)\n"
                    : "PATH RESULT MISMATCH\n");
  std::cout << (identical_threads
                    ? "route_many bit-identical across 1/2/8 threads\n"
                    : "THREAD RESULT MISMATCH\n");

  // --- JSON emission -----------------------------------------------------
  std::ostringstream js;
  js << "{\n  \"bench\": \"engine\",\n  \"repeats\": " << repeats
     << ",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    js << "    {\"key\": \"" << io::json_escape(rows[i].key)
       << "\", \"ms_per_route\": " << fmt(rows[i].ms_per_route) << "}"
       << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  js << "  ],\n";
  js << "  \"speedup_nocache_min\": " << fmt(speedup_nocache_min) << ",\n";
  js << "  \"speedup_cache_min\": " << fmt(speedup_cache_min) << ",\n";
  js << "  \"identical_paths\": " << (identical_paths ? "true" : "false")
     << ",\n";
  js << "  \"identical_threads\": " << (identical_threads ? "true" : "false")
     << ",\n";
  js << "  \"engine_cache\": {\"hits\": " << cache_stats_last.hits
     << ", \"misses\": " << cache_stats_last.misses
     << ", \"evictions\": " << cache_stats_last.evictions << "}\n}\n";

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << js.str();
    std::cout << "\nwrote " << json_path << "\n";
  }

  // --- Gates -------------------------------------------------------------
  if (!identical_paths) {
    std::cout << "FAIL: engine results differ from the direct path\n";
    ++failures;
  }
  if (!identical_threads) {
    std::cout << "FAIL: route_many results differ across thread counts\n";
    ++failures;
  }
  if (!check_path.empty()) {
    if (speedup_cache_min < 2.0) {
      std::cout << "FAIL: cached speedup " << speedup_cache_min
                << "x < required 2x\n";
      ++failures;
    }
    std::ifstream in(check_path);
    if (!in) {
      std::cerr << "cannot read baseline " << check_path << "\n";
      return 2;
    }
    Baseline base{std::string(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>())};
    std::cout << "\nbaseline check vs " << check_path
              << " (fail threshold: 5x)\n";
    for (const PathRow& r : rows) {
      const auto bms = base.field(r.key, "ms_per_route");
      if (!bms) continue;
      if (*bms > 0 && r.ms_per_route > 5.0 * *bms) {
        std::cout << "  FAIL " << r.key << ": " << r.ms_per_route
                  << " ms > 5x baseline " << *bms << " ms\n";
        ++failures;
      }
    }
    std::cout << (failures == 0 ? "baseline check passed\n"
                                : "baseline check FAILED\n");
  }
  return failures == 0 ? 0 : 1;
}
