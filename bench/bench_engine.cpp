// bench_engine — repeated-route throughput of the batch engine.
//
// The workload routes a fixed channel over and over: 8 distinct
// connection sets, cycled `repeats` times — the access pattern of
// capacity sweeps, portfolio racing and Monte-Carlo studies. Three
// paths route the identical instance stream:
//
//   direct          dp_route, no index, no workspace (the historical path)
//   engine-nocache  BatchRouter with the memo cache off: shared
//                   ChannelIndex + per-thread scratch only
//   engine-cache    BatchRouter with the memo cache on: repeats after the
//                   first cycle are cache hits
//
// plus a route_many() thread-scaling section at 1/2/8 threads and a
// warm-hit contention section (pure cache hits at 1/2/8 threads with the
// memo cache sharded 16 ways vs behind one global lock — the delta the
// sharding buys; see "Cache sharding" in engine/batch.h).
//
// Checked invariants (fatal under --check):
//   - all three paths return bit-identical results (success, weight,
//     routing) on every instance;
//   - route_many results are bit-identical across 1/2/8 threads,
//     cache on and off;
//   - engine-cache is >= 2x faster than direct at a single thread.
//
// Flags: --json PATH, --check PATH, --repeats N, --quick,
//        --trace PATH, --metrics PATH, --obs-gate BASELINE.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <optional>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "alg/dp.h"
#include "alg/registry.h"
#include "bench_json.h"
#include "core/weights.h"
#include "engine/batch.h"
#include "gen/segmentation.h"
#include "gen/workload.h"
#include "io/json.h"
#include "io/table.h"
#include "obs/instrument.h"
#include "util/pool.h"

using namespace segroute;
using Clock = std::chrono::steady_clock;

namespace {

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

struct Mode {
  std::string name;
  engine::WeightKind weight;
};

bool same_result(const alg::RouteResult& a, const alg::RouteResult& b) {
  return a.success == b.success && a.weight == b.weight &&
         a.routing == b.routing && a.failure == b.failure;
}

using bench::fmt;

struct PathRow {
  std::string key;  // "<mode>/<path>"
  double ms_per_route = 0.0;
};

std::optional<double> row_ms(const std::vector<PathRow>& rows,
                             const std::string& key) {
  for (const PathRow& r : rows) {
    if (r.key == key) return r.ms_per_route;
  }
  return std::nullopt;
}

/// --obs-gate: verifies that enabled-but-idle observability (obs
/// compiled in, no TraceSession active) costs < 2% of a steady-state
/// route. A wall-clock A/B against a separately compiled OBS=OFF binary
/// would be noise-dominated at the 2% level, so the gate measures the
/// idle cost of each obs primitive in-process and charges every path
/// with a generous static count of the primitives it executes per route
/// (the counts below deliberately round up).
///
/// Reference times come from the committed baseline when it has the
/// row, else from this run's measurement. The cache-hit path is gated
/// on an absolute budget instead of a percentage: a steady-state hit is
/// ~130 ns, where 2% is below the cost of a single relaxed atomic load,
/// so a ratio against it measures clock granularity, not design.
int run_obs_gate(const bench::Baseline* base, const std::vector<PathRow>& rows) {
#if SEGROUTE_OBS_ENABLED
  const auto time_op_ns = [](auto&& op) {
    constexpr int kN = 200000;
    op(0);  // warmup (and registration, for the metric probes)
    double best = std::numeric_limits<double>::infinity();
    for (int b = 0; b < 3; ++b) {
      const auto t0 = Clock::now();
      for (int i = 1; i <= kN; ++i) op(i);
      best = std::min(best, ms_since(t0) * 1e6 / kN);
    }
    return best;
  };
  const double span_ns =
      time_op_ns([](int) { obs::Span s("obs.gate.probe"); });
  const double count_ns = time_op_ns([](int) {
    SEGROUTE_COUNT("obs.gate.counter", 1);
  });
  const double gauge_ns = time_op_ns([](int i) {
    SEGROUTE_GAUGE_MAX("obs.gate.gauge", static_cast<double>(i));
  });
  const double hist_ns = time_op_ns([](int i) {
    SEGROUTE_HIST("obs.gate.hist", static_cast<double>(i & 255),
                  {1, 2, 4, 8, 16, 32, 64, 128, 256, 1024, 4096, 16384});
  });
  std::cout << "\nobs idle primitive cost: span " << span_ns << " ns, counter "
            << count_ns << " ns, gauge " << gauge_ns << " ns, histogram "
            << hist_ns << " ns\n";

  // Per-route instrumentation charges (rounded up from the code):
  //   dp_route      1 span, 3 counters, 2 gauges, ~(2*conns+1) histogram
  //                 observes at flush (the 32-conn bench instances give
  //                 65; charge 80)
  //   engine shell  1 span + 1 gauge (scratch high-water) on top of dp
  //   registry      1 span ("alg.route") + 1 counter per dispatch — paid
  //                 by the engine miss path, not by direct free functions
  //   cache hit     1 span + 1 counter, nothing else (hits bypass the
  //                 registry dispatcher entirely)
  const double dp_charge =
      span_ns + 3 * count_ns + 2 * gauge_ns + 80 * hist_ns;
  const double direct_ns = dp_charge;
  const double nocache_ns =
      dp_charge + 2 * span_ns + 2 * count_ns + gauge_ns;
  const double hit_ns = span_ns + count_ns;

  int failures = 0;
  const auto gate_pct = [&](const std::string& key, double obs_ns) {
    std::optional<double> ref = base ? base->field(key, "ms_per_route")
                                     : std::nullopt;
    if (!ref) ref = row_ms(rows, key);
    if (!ref || *ref <= 0) return;
    const double pct = obs_ns / (*ref * 1e6) * 100.0;
    std::cout << "  " << key << ": " << obs_ns << " ns obs / "
              << *ref * 1e6 << " ns route = " << pct << "%"
              << (pct < 2.0 ? "\n" : "  FAIL (>= 2%)\n");
    if (pct >= 2.0) ++failures;
  };
  std::cout << "obs idle overhead gate (< 2% of steady-state route)\n";
  for (const char* mode : {"unlimited", "weighted"}) {
    gate_pct(std::string(mode) + "/direct", direct_ns);
    gate_pct(std::string(mode) + "/engine-nocache", nocache_ns);
  }
  constexpr double kHitBudgetNs = 25.0;
  std::cout << "  cache-hit path: " << hit_ns << " ns obs (budget "
            << kHitBudgetNs << " ns)"
            << (hit_ns < kHitBudgetNs ? "\n" : "  FAIL\n");
  if (hit_ns >= kHitBudgetNs) ++failures;
  std::cout << (failures == 0 ? "obs gate passed\n" : "obs gate FAILED\n");
  return failures;
#else
  (void)base;
  (void)rows;
  std::cout << "\nobs compiled out (SEGROUTE_OBS=OFF); idle-overhead gate "
               "trivially passes\n";
  return 0;
#endif
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path, check_path, obs_gate_path;
  int repeats = 40;
  bool quick = false;
  bench::ObsOutputs obs_out;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--json" && i + 1 < argc) json_path = argv[++i];
    else if (a == "--check" && i + 1 < argc) check_path = argv[++i];
    else if (a == "--repeats" && i + 1 < argc) repeats = std::atoi(argv[++i]);
    else if (a == "--quick") quick = true;
    else if (a == "--obs-gate" && i + 1 < argc) obs_gate_path = argv[++i];
    else if (obs_out.parse_flag(argc, argv, i)) continue;
    else {
      std::cerr << "unknown flag: " << a << "\n";
      return 2;
    }
  }
  if (quick) repeats = std::min(repeats, 10);
  repeats = std::max(repeats, 2);
  obs_out.start();

  // Fixed channel, 8 distinct routable connection sets.
  const SegmentedChannel channel = gen::staggered_segmentation(8, 96, 8);
  std::vector<ConnectionSet> sets;
  for (int s = 0; s < 8; ++s) {
    std::mt19937_64 rng(9000 + s);
    sets.push_back(gen::routable_workload(channel, 32, 6.0, rng));
  }
  const std::size_t n_instances = sets.size();
  const std::size_t stream_len = n_instances * static_cast<std::size_t>(repeats);

  const std::vector<Mode> modes = {
      {"unlimited", engine::WeightKind::kNone},
      {"weighted", engine::WeightKind::kOccupiedLength},
  };
  const auto weight_fn = weights::occupied_length();

  int failures = 0;
  std::vector<PathRow> rows;
  double speedup_nocache_min = std::numeric_limits<double>::infinity();
  double speedup_cache_min = std::numeric_limits<double>::infinity();
  bool identical_paths = true;
  bool identical_threads = true;
  engine::CacheStats cache_stats_last;

  io::Table table({"mode", "path", "ms/route", "speedup"});
  for (const Mode& mode : modes) {
    alg::DpOptions direct_opts;
    direct_opts.max_segments = 0;
    if (mode.weight != engine::WeightKind::kNone) {
      direct_opts.weight = weight_fn;
    }
    engine::EngineRouteOptions eo;
    eo.weight = mode.weight;

    // Reference results, one per instance, from the direct path.
    std::vector<alg::RouteResult> reference;
    for (const ConnectionSet& cs : sets) {
      reference.push_back(alg::dp_route(channel, cs, direct_opts));
    }

    // --- direct ---------------------------------------------------------
    const auto t_direct = Clock::now();
    for (int r = 0; r < repeats; ++r) {
      for (const ConnectionSet& cs : sets) {
        const auto res = alg::dp_route(channel, cs, direct_opts);
        if (!same_result(res, reference[&cs - sets.data()])) {
          identical_paths = false;
        }
      }
    }
    const double ms_direct =
        ms_since(t_direct) / static_cast<double>(stream_len);

    // --- engine, cache off ---------------------------------------------
    engine::BatchOptions nocache_opts;
    nocache_opts.threads = 1;
    nocache_opts.use_cache = false;
    engine::BatchRouter router_nc(channel, nocache_opts);
    const auto t_nc = Clock::now();
    for (int r = 0; r < repeats; ++r) {
      for (std::size_t s = 0; s < n_instances; ++s) {
        const auto res = router_nc.route(sets[s], eo);
        if (!same_result(res, reference[s])) identical_paths = false;
      }
    }
    const double ms_nc = ms_since(t_nc) / static_cast<double>(stream_len);

    // --- engine, cache on ----------------------------------------------
    // One untimed warm-up pass populates the cache, so the timed loop
    // measures steady-state hit cost and ms/route is independent of the
    // repeat count (--quick and full runs share one baseline).
    engine::BatchOptions cache_opts;
    cache_opts.threads = 1;
    engine::BatchRouter router_c(channel, cache_opts);
    for (std::size_t s = 0; s < n_instances; ++s) {
      const auto res = router_c.route(sets[s], eo);
      if (!same_result(res, reference[s])) identical_paths = false;
    }
    const auto t_c = Clock::now();
    for (int r = 0; r < repeats; ++r) {
      for (std::size_t s = 0; s < n_instances; ++s) {
        const auto res = router_c.route(sets[s], eo);
        if (!same_result(res, reference[s])) identical_paths = false;
      }
    }
    const double ms_c = ms_since(t_c) / static_cast<double>(stream_len);
    cache_stats_last = router_c.cache_stats();

    const double sp_nc = ms_nc > 0 ? ms_direct / ms_nc : 0.0;
    const double sp_c = ms_c > 0 ? ms_direct / ms_c : 0.0;
    speedup_nocache_min = std::min(speedup_nocache_min, sp_nc);
    speedup_cache_min = std::min(speedup_cache_min, sp_c);

    table.add_row({mode.name, "direct", io::Table::num(ms_direct, 4), "1.0"});
    table.add_row({mode.name, "engine-nocache", io::Table::num(ms_nc, 4),
                   io::Table::num(sp_nc, 2)});
    table.add_row({mode.name, "engine-cache", io::Table::num(ms_c, 4),
                   io::Table::num(sp_c, 2)});
    rows.push_back({mode.name + "/direct", ms_direct});
    rows.push_back({mode.name + "/engine-nocache", ms_nc});
    rows.push_back({mode.name + "/engine-cache", ms_c});

    // --- route_many thread scaling, cache on and off --------------------
    std::vector<ConnectionSet> stream;
    stream.reserve(stream_len);
    for (int r = 0; r < repeats; ++r) {
      for (const ConnectionSet& cs : sets) stream.push_back(cs);
    }
    for (const bool use_cache : {false, true}) {
      std::optional<std::vector<alg::RouteResult>> first;
      for (const int threads : {1, 2, 8}) {
        engine::BatchOptions bo;
        bo.threads = threads;
        bo.use_cache = use_cache;
        engine::BatchRouter router(channel, bo);
        const auto t0 = Clock::now();
        const auto results = router.route_many(stream, eo);
        const double ms = ms_since(t0);
        if (!first) {
          first = results;
          for (std::size_t i = 0; i < results.size(); ++i) {
            if (!same_result(results[i], reference[i % n_instances])) {
              identical_paths = false;
            }
          }
        } else {
          for (std::size_t i = 0; i < results.size(); ++i) {
            if (!same_result(results[i], (*first)[i])) {
              identical_threads = false;
            }
          }
        }
        std::cout << "route_many " << mode.name << " cache="
                  << (use_cache ? "on " : "off") << " threads=" << threads
                  << ": " << ms << " ms (" << stream_len << " routes)\n";
      }
    }
  }

  // --- warm-hit contention: sharded vs single-lock memo cache ------------
  // Every instance is resident after a serial warm-up, so the timed
  // route_many is pure cache hits — the access pattern where a single
  // cache mutex serializes the workers. shards=1 is the legacy global
  // lock; shards=16 is the default sharded layout. The 8-thread ratio is
  // the contention delta the sharding exists to buy; it is only gated
  // (>= 1.15x under --check) when the host actually has >= 8 hardware
  // threads, and the committed baseline records hardware_threads so a
  // 1-core CI runner never pretends to measure contention.
  double contention_ms[2] = {0.0, 0.0};  // [0]=shards1 [1]=shards16 at 8t
  bool identical_shards = true;
  {
    engine::EngineRouteOptions eo;  // unlimited feasibility routing
    std::vector<ConnectionSet> stream;
    const int hit_repeats = repeats * 4;
    stream.reserve(n_instances * static_cast<std::size_t>(hit_repeats));
    for (int r = 0; r < hit_repeats; ++r) {
      for (const ConnectionSet& cs : sets) stream.push_back(cs);
    }
    io::Table con_table({"shards", "threads", "ms/route", "speedup vs 1t"});
    std::optional<std::vector<alg::RouteResult>> first;
    for (const int shards : {1, 16}) {
      engine::BatchOptions bo;
      bo.cache_shards = shards;
      double ms_1t = 0.0;
      for (const int threads : {1, 2, 8}) {
        bo.threads = threads;
        engine::BatchRouter router(channel, bo);
        for (const ConnectionSet& cs : sets) router.route(cs, eo);  // warm
        const auto t0 = Clock::now();
        const auto results = router.route_many(stream, eo);
        const double ms = ms_since(t0) / static_cast<double>(stream.size());
        if (!first) {
          first = results;
        } else if (results.size() != first->size()) {
          identical_shards = false;
        } else {
          for (std::size_t i = 0; i < results.size(); ++i) {
            if (!same_result(results[i], (*first)[i])) identical_shards = false;
          }
        }
        if (threads == 1) ms_1t = ms;
        if (threads == 8) contention_ms[shards == 1 ? 0 : 1] = ms;
        con_table.add_row({std::to_string(shards), std::to_string(threads),
                           io::Table::num(ms, 5),
                           io::Table::num(ms > 0 ? ms_1t / ms : 0.0, 2)});
        rows.push_back({"contention/shards-" + std::to_string(shards) +
                            "/threads-" + std::to_string(threads),
                        ms});
      }
    }
    std::cout << "\nwarm-hit contention (pure cache hits, "
              << stream.size() << " routes)\n";
    con_table.print(std::cout);
  }
  const double shard_speedup_8t =
      contention_ms[1] > 0 ? contention_ms[0] / contention_ms[1] : 0.0;
  std::cout << "sharded-vs-global warm-hit speedup at 8 threads: "
            << io::Table::num(shard_speedup_8t, 2) << "x (hardware threads: "
            << util::hardware_threads() << ")\n";

  // --- registry coverage sweep -------------------------------------------
  // Every registered router, dispatched by name through the same engine
  // front end, on a canary instance inside every capability envelope
  // (identical tracks, two segments per track, trivially routable).
  // Coverage gate: each router returns a structured success — no throws,
  // no kInternal — so a router that regresses its registry adapter fails
  // the bench even if no unit test names it.
  bool coverage_ok = true;
  io::Table cov_table({"router", "ms/route", "outcome"});
  {
    const SegmentedChannel canary_ch = SegmentedChannel::identical(3, 12, {6});
    ConnectionSet canary_cs;
    canary_cs.add(1, 3);
    canary_cs.add(7, 9);
    canary_cs.add(4, 6);
    engine::BatchOptions bo;
    bo.threads = 1;
    bo.use_cache = false;  // time the dispatch, not the memo cache
    engine::BatchRouter cov_router(canary_ch, bo);
    const int cov_reps = quick ? 20 : 200;
    for (const alg::RouterEntry& e : alg::registry()) {
      engine::EngineRouteOptions eo;
      eo.router = e.name;
      eo.weight = e.caps.requires_weight ? engine::WeightKind::kOccupiedLength
                                         : engine::WeightKind::kNone;
      alg::RouteResult last = cov_router.route(canary_cs, eo);
      const auto t0 = Clock::now();
      for (int r = 1; r < cov_reps; ++r) {
        last = cov_router.route(canary_cs, eo);
      }
      const double ms = ms_since(t0) / static_cast<double>(cov_reps - 1);
      const char* outcome = last.success ? "ok" : alg::to_string(last.failure);
      if (!last.success) coverage_ok = false;
      cov_table.add_row({e.name, io::Table::num(ms, 4), outcome});
      rows.push_back({std::string("coverage/") + e.name, ms});
    }
  }

  std::cout << "\nbatch engine — repeated-route throughput (8 sets x "
            << repeats << " repeats, 1 thread)\n";
  table.print(std::cout);
  std::cout << "\nregistry coverage (canary instance, engine dispatch)\n";
  cov_table.print(std::cout);
  std::cout << "cache: " << cache_stats_last.hits << " hits, "
            << cache_stats_last.misses << " misses, "
            << cache_stats_last.evictions << " evictions\n";
  std::cout << (identical_paths
                    ? "paths bit-identical (direct vs engine, cache on/off)\n"
                    : "PATH RESULT MISMATCH\n");
  std::cout << (identical_threads
                    ? "route_many bit-identical across 1/2/8 threads\n"
                    : "THREAD RESULT MISMATCH\n");

  obs_out.finish(std::cout);

  // --- JSON emission -----------------------------------------------------
  std::ostringstream js;
  js << "{\n  \"bench\": \"engine\",\n  \"repeats\": " << repeats
     << ",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    js << "    {\"key\": \"" << io::json_escape(rows[i].key)
       << "\", \"ms_per_route\": " << fmt(rows[i].ms_per_route) << "}"
       << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  js << "  ],\n";
  js << "  \"speedup_nocache_min\": " << fmt(speedup_nocache_min) << ",\n";
  js << "  \"speedup_cache_min\": " << fmt(speedup_cache_min) << ",\n";
  js << "  \"identical_paths\": " << (identical_paths ? "true" : "false")
     << ",\n";
  js << "  \"identical_threads\": " << (identical_threads ? "true" : "false")
     << ",\n";
  js << "  \"identical_shards\": " << (identical_shards ? "true" : "false")
     << ",\n";
  js << "  \"hardware_threads\": " << util::hardware_threads() << ",\n";
  js << "  \"shard_speedup_8t\": " << fmt(shard_speedup_8t) << ",\n";
  js << "  "
     << bench::engine_cache_json(cache_stats_last.hits, cache_stats_last.misses,
                                 cache_stats_last.evictions)
     << "\n}\n";

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << js.str();
    std::cout << "\nwrote " << json_path << "\n";
  }

  // --- Gates -------------------------------------------------------------
  if (!identical_paths) {
    std::cout << "FAIL: engine results differ from the direct path\n";
    ++failures;
  }
  if (!identical_threads) {
    std::cout << "FAIL: route_many results differ across thread counts\n";
    ++failures;
  }
  if (!identical_shards) {
    std::cout << "FAIL: results differ between sharded and global cache\n";
    ++failures;
  }
  if (!coverage_ok) {
    std::cout << "FAIL: a registered router did not route the canary\n";
    ++failures;
  }
  if (!check_path.empty()) {
    if (speedup_cache_min < 2.0) {
      std::cout << "FAIL: cached speedup " << speedup_cache_min
                << "x < required 2x\n";
      ++failures;
    }
    if (util::hardware_threads() >= 8) {
      if (shard_speedup_8t < 1.15) {
        std::cout << "FAIL: sharded warm-hit speedup " << shard_speedup_8t
                  << "x < required 1.15x at 8 threads\n";
        ++failures;
      }
    } else {
      std::cout << "contention gate skipped: only "
                << util::hardware_threads()
                << " hardware thread(s), need 8 to measure lock contention\n";
    }
    std::ifstream in(check_path);
    if (!in) {
      std::cerr << "cannot read baseline " << check_path << "\n";
      return 2;
    }
    bench::Baseline base{std::string(std::istreambuf_iterator<char>(in),
                                     std::istreambuf_iterator<char>())};
    std::cout << "\nbaseline check vs " << check_path
              << " (fail threshold: 5x)\n";
    for (const PathRow& r : rows) {
      const auto bms = base.field(r.key, "ms_per_route");
      if (!bms) continue;
      if (*bms > 0 && r.ms_per_route > 5.0 * *bms) {
        std::cout << "  FAIL " << r.key << ": " << r.ms_per_route
                  << " ms > 5x baseline " << *bms << " ms\n";
        ++failures;
      }
    }
    std::cout << (failures == 0 ? "baseline check passed\n"
                                : "baseline check FAILED\n");
  }
  if (!obs_gate_path.empty()) {
    std::ifstream in(obs_gate_path);
    std::optional<bench::Baseline> base;
    if (in) {
      base.emplace(bench::Baseline{std::string(
          std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>())});
    } else {
      std::cout << "obs gate: cannot read baseline " << obs_gate_path
                << "; gating against this run's measurements\n";
    }
    failures += run_obs_gate(base ? &*base : nullptr, rows);
  }
  return failures == 0 ? 0 : 1;
}
