// E11 (Section V / Theorem 8): how much routing capacity does generalized
// routing (track changing) add over single-track routing on tight random
// channels, and how does the extended assignment graph grow?
#include <iostream>
#include <random>
#include <set>

#include "segroute.h"

using namespace segroute;

namespace {

SegmentedChannel random_channel(TrackId T, Column width, int max_cuts,
                                std::mt19937_64& rng) {
  std::vector<Track> tracks;
  for (TrackId t = 0; t < T; ++t) {
    std::set<Column> cuts;
    const int k = 1 + static_cast<int>(rng() % static_cast<unsigned>(max_cuts));
    for (int i = 0; i < k; ++i) {
      cuts.insert(1 + static_cast<Column>(rng() % (width - 1)));
    }
    tracks.emplace_back(width, std::vector<Column>(cuts.begin(), cuts.end()));
  }
  return SegmentedChannel(std::move(tracks));
}

}  // namespace

int main() {
  std::mt19937_64 rng(1111);
  const Column width = 10;
  const TrackId tracks = 3;
  const int trials = 120;

  std::cout << "E11 / Section V — capacity gain from generalized routing "
               "(T = " << tracks << ", N = " << width << ", " << trials
            << " trials per row)\n\n";

  // Unconditional sweep: generalized >= standard everywhere.
  io::Table t({"M", "standard routable", "generalized routable",
               "overlap-variant routable", "max graph L"});
  for (int m : {3, 4, 5, 6, 7}) {
    int std_ok = 0, gen_ok = 0, overlap_ok = 0;
    std::size_t worst_nodes = 0;
    for (int i = 0; i < trials; ++i) {
      const auto ch = random_channel(tracks, width, 3, rng);
      const auto cs = gen::geometric_workload(m, width, 3.5, rng);
      const bool s = alg::dp_route_unlimited(ch, cs).success;
      const auto g = alg::generalized_dp_route(ch, cs);
      alg::GeneralizedDpOptions ov;
      ov.switch_requires_overlap = true;
      const bool o = alg::generalized_dp_route(ch, cs, ov).success;
      if (s) ++std_ok;
      if (g.success) ++gen_ok;
      if (o) ++overlap_ok;
      worst_nodes = std::max(worst_nodes, g.stats.max_level_nodes);
    }
    t.add_row({io::Table::num(m),
               io::Table::num(100.0 * std_ok / trials, 0) + "%",
               io::Table::num(100.0 * gen_ok / trials, 0) + "%",
               io::Table::num(100.0 * overlap_ok / trials, 0) + "%",
               io::Table::num(std::uint64_t{worst_nodes})});
  }
  std::cout << t.str() << "\n";

  // Conditional recovery rate: among instances where single-track routing
  // FAILS although the density fits the channel (the only candidates a
  // smarter router could save), how many does track changing recover?
  io::Table r({"M", "hard instances sampled", "recovered by generalized",
               "recovered by overlap variant"});
  std::mt19937_64 rng2(2222);
  for (int m : {5, 6, 7}) {
    const int want = 60;
    int sampled = 0, rec_gen = 0, rec_ov = 0;
    for (int i = 0; i < 30000 && sampled < want; ++i) {
      const auto ch = random_channel(tracks, width, 3, rng2);
      const auto cs = gen::geometric_workload(m, width, 3.5, rng2);
      if (cs.density() > tracks) continue;
      if (alg::dp_route_unlimited(ch, cs).success) continue;
      ++sampled;
      if (alg::generalized_dp_route(ch, cs).success) {
        ++rec_gen;
        alg::GeneralizedDpOptions ov;
        ov.switch_requires_overlap = true;
        if (alg::generalized_dp_route(ch, cs, ov).success) ++rec_ov;
      }
    }
    r.add_row({io::Table::num(m), io::Table::num(sampled),
               io::Table::num(sampled ? 100.0 * rec_gen / sampled : 0.0, 1) + "%",
               io::Table::num(sampled ? 100.0 * rec_ov / sampled : 0.0, 1) + "%"});
  }
  std::cout << "Recovery on density-feasible instances that standard "
               "routing cannot route (Fig. 4's situation):\n"
            << r.str()
            << "\nShape check (paper): generalized routing never loses to "
               "standard routing; it does recover hard instances (Fig. 4 is "
               "one), but only a small fraction — most single-track failures "
               "are capacity failures, not segment-alignment failures, which "
               "is consistent with the paper presenting generalized routing "
               "as a preliminary capacity lever with real hardware cost. The "
               "overlap variant recovers a subset; the level width stays far "
               "below the O(T^(T+1)) worst case.\n";
  return 0;
}
