// E1 (Fig. 2): the same four connections routed under every channel
// organization the paper compares: (b) freely customized, (c) fully
// segmented, (d) unsegmented, (e) segmented for 1-segment routing,
// (f) segmented for 2-segment routing.
#include <iostream>

#include "segroute.h"

using namespace segroute;

namespace {

int min_tracks_for(const ConnectionSet& cs, int limit,
                   const std::function<SegmentedChannel(int)>& make,
                   int max_segments = 0) {
  for (int t = 1; t <= limit; ++t) {
    const auto ch = make(t);
    alg::DpOptions o;
    o.max_segments = max_segments;
    if (alg::dp_route(ch, cs, o).success) return t;
  }
  return -1;
}

}  // namespace

int main() {
  const auto cs = gen::fixtures::fig2_connections();
  std::cout << "E1 / Fig. 2 — one workload, five channel organizations\n\n"
            << io::render(cs, 9) << "\n";

  io::Table t({"scheme", "fig", "tracks", "max seg/conn", "note"});

  // (b) freely customized: left-edge uses exactly density tracks.
  t.add_row({"freely customized", "2(b)", io::Table::num(cs.density()), "1",
             "density = " + std::to_string(cs.density())});

  // (c) fully segmented: same track count as (b) but a switch at every
  // column gap — max delay through many switches.
  const int full = min_tracks_for(cs, 16, [](int tt) {
    return SegmentedChannel::fully_segmented(tt, 9);
  });
  int worst_segs = 0;
  {
    const auto ch = SegmentedChannel::fully_segmented(full, 9);
    const auto r = alg::dp_route_unlimited(ch, cs);
    for (ConnId i = 0; i < cs.size(); ++i) {
      worst_segs = std::max(
          worst_segs, segments_used(ch, cs[i], r.routing.track_of(i)));
    }
  }
  t.add_row({"fully segmented", "2(c)", io::Table::num(full),
             io::Table::num(worst_segs), "every cross-point switched"});

  // (d) unsegmented: one net per track.
  const int unseg = min_tracks_for(cs, 16, [](int tt) {
    return SegmentedChannel::unsegmented(tt, 9);
  });
  t.add_row({"unsegmented", "2(d)", io::Table::num(unseg), "1",
             "one net per continuous track"});

  // (e) segmented for 1-segment routing.
  {
    const auto ch = gen::fixtures::fig2_channel_1segment();
    const auto r = alg::greedy1_route(ch, cs);
    t.add_row({"designed, K = 1", "2(e)",
               io::Table::num(static_cast<int>(ch.num_tracks())), "1",
               r.success ? "each net in one segment" : "FAILED"});
  }

  // (f) uniformly segmented, K = 2.
  {
    const auto ch = gen::fixtures::fig2_channel_2segment();
    const auto r = alg::dp_route_ksegment(ch, cs, 2);
    int segs = 0;
    for (ConnId i = 0; i < cs.size(); ++i) {
      segs = std::max(segs, segments_used(ch, cs[i], r.routing.track_of(i)));
    }
    t.add_row({"uniform, K = 2", "2(f)",
               io::Table::num(static_cast<int>(ch.num_tracks())),
               io::Table::num(segs),
               r.success ? "adjacent segments joined by a switch" : "FAILED"});
  }

  std::cout << t.str()
            << "\nShape check (paper): (b) and well-designed (e)/(f) use "
               "density tracks; (d) needs one track per net; (c) matches "
               "(b) in tracks but maximizes switches in series.\n";
  return 0;
}
