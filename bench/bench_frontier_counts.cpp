// E5 (Theorems 5, 6, 7): measured assignment-graph width L (max distinct
// frontiers on any level) against the paper's bounds:
//   unlimited routing:    L <= 2 * T!           (Theorem 5)
//   K-segment routing:    L <= (K+1)^T          (Theorem 6)
//   two track types:      L = O((T1*T2)^K)      (Theorem 7)
// Also serves as the ablation for frontier canonicalization.
#include <iostream>
#include <random>
#include <set>

#include "segroute.h"

using namespace segroute;

namespace {

SegmentedChannel random_channel(TrackId T, Column width, int max_cuts,
                                std::mt19937_64& rng) {
  std::vector<Track> tracks;
  for (TrackId t = 0; t < T; ++t) {
    std::set<Column> cuts;
    const int k = static_cast<int>(rng() % static_cast<unsigned>(max_cuts + 1));
    for (int i = 0; i < k; ++i) {
      cuts.insert(1 + static_cast<Column>(rng() % (width - 1)));
    }
    tracks.emplace_back(width, std::vector<Column>(cuts.begin(), cuts.end()));
  }
  return SegmentedChannel(std::move(tracks));
}

std::uint64_t factorial(int n) {
  std::uint64_t f = 1;
  for (int i = 2; i <= n; ++i) f *= static_cast<std::uint64_t>(i);
  return f;
}

std::uint64_t ipow(std::uint64_t b, int e) {
  std::uint64_t r = 1;
  while (e-- > 0) r *= b;
  return r;
}

}  // namespace

int main() {
  std::mt19937_64 rng(505);
  const int trials = 25;

  std::cout << "E5 / Theorems 5-7 — assignment-graph width vs the bounds\n\n";

  {
    io::Table t({"T", "max L observed", "bound 2*T!"});
    for (int T = 2; T <= 5; ++T) {
      std::size_t worst = 0;
      for (int i = 0; i < trials; ++i) {
        const auto ch = random_channel(T, 16, 4, rng);
        const auto cs = gen::geometric_workload(10, 16, 4.0, rng);
        alg::DpOptions o;
        o.canonicalize_types = false;
        worst = std::max(worst, alg::dp_route(ch, cs, o).stats.max_level_nodes);
      }
      t.add_row({io::Table::num(T), io::Table::num(std::uint64_t{worst}),
                 io::Table::num(2 * factorial(T))});
    }
    std::cout << "Unlimited-segment routing (Theorem 5):\n" << t.str() << "\n";
  }

  {
    io::Table t({"T", "K", "max L observed", "bound (K+1)^T"});
    for (int T = 2; T <= 4; ++T) {
      for (int K = 1; K <= 3; ++K) {
        std::size_t worst = 0;
        for (int i = 0; i < trials; ++i) {
          const auto ch = random_channel(T, 16, 5, rng);
          const auto cs = gen::geometric_workload(10, 16, 4.0, rng);
          alg::DpOptions o;
          o.canonicalize_types = false;
          o.max_segments = K;
          worst =
              std::max(worst, alg::dp_route(ch, cs, o).stats.max_level_nodes);
        }
        t.add_row({io::Table::num(T), io::Table::num(K),
                   io::Table::num(std::uint64_t{worst}),
                   io::Table::num(ipow(static_cast<std::uint64_t>(K + 1), T))});
      }
    }
    std::cout << "K-segment routing (Theorem 6):\n" << t.str() << "\n";
  }

  {
    // Theorem 7 ablation: many tracks, two segmentation types. Raw frontier
    // count (no merging) vs canonicalized.
    io::Table t({"T (2 types)", "K", "L raw", "L canonicalized",
                 "bound (T1+K choose K)(T2+K choose K)"});
    for (int T : {4, 6, 8}) {
      const int K = 2;
      std::size_t worst_raw = 0, worst_canon = 0;
      for (int i = 0; i < trials; ++i) {
        // Two types: cut grid every 4 and every 7 (offset).
        std::vector<Track> tracks;
        for (int j = 0; j < T; ++j) {
          tracks.push_back(j % 2 == 0 ? Track(28, {4, 8, 12, 16, 20, 24})
                                      : Track(28, {7, 14, 21}));
        }
        const SegmentedChannel ch(std::move(tracks));
        const auto cs = gen::geometric_workload(14, 28, 5.0, rng);
        alg::DpOptions raw, canon;
        raw.canonicalize_types = false;
        raw.max_segments = K;
        canon.canonicalize_types = true;
        canon.max_segments = K;
        worst_raw =
            std::max(worst_raw, alg::dp_route(ch, cs, raw).stats.max_level_nodes);
        worst_canon = std::max(worst_canon,
                               alg::dp_route(ch, cs, canon).stats.max_level_nodes);
      }
      const int T1 = (T + 1) / 2, T2 = T / 2;
      auto choose = [](int a, int b) {
        std::uint64_t r = 1;
        for (int i = 1; i <= b; ++i) {
          r = r * static_cast<std::uint64_t>(a - b + i) /
              static_cast<std::uint64_t>(i);
        }
        return r;
      };
      t.add_row({io::Table::num(T), io::Table::num(K),
                 io::Table::num(std::uint64_t{worst_raw}),
                 io::Table::num(std::uint64_t{worst_canon}),
                 io::Table::num(choose(T1 + K, K) * choose(T2 + K, K))});
    }
    std::cout << "Two track types (Theorem 7) + canonicalization ablation:\n"
              << t.str() << "\n";
  }

  std::cout << "Shape check: observed L always within the bounds; "
               "canonicalization shrinks L and its advantage grows with T.\n";
  return 0;
}
