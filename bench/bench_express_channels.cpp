// E15 (Concluding remarks / Dally's express channels [8]): segmented
// channels as a multiprocessor interconnect. Compares local (fully
// segmented), bus (unsegmented) and express (mixed) organizations across
// traffic patterns: delivery rate, mean Elmore latency, mean programmed
// switches per message.
#include <iostream>
#include <random>

#include "segroute.h"
#include "net/express.h"

using namespace segroute;
using namespace segroute::net;

int main() {
  std::mt19937_64 rng(1515);
  const int pes = 32;
  const int tracks = 6;
  const int trials = 20;

  std::cout << "E15 / concluding remarks — segmented channels as a PE "
               "interconnect (P = " << pes << ", T = " << tracks << ")\n\n";

  struct Org {
    std::string name;
    SegmentedChannel ch;
  };
  const std::vector<Org> orgs = {
      {"local (fully segmented)", local_channel(tracks, pes)},
      {"bus (unsegmented)", bus_channel(tracks, pes)},
      {"express (len 8)", express_channel(tracks, pes, 8)},
  };

  for (const auto& [pattern, make] :
       std::vector<std::pair<std::string,
                             std::function<std::vector<Message>(std::mt19937_64&)>>>{
           {"uniform random (12 msgs)",
            [&](std::mt19937_64& r) { return uniform_traffic(pes, 12, r); }},
           {"neighbor (12 msgs)",
            [&](std::mt19937_64& r) { return neighbor_traffic(pes, 12, r); }},
           {"bit reversal",
            [&](std::mt19937_64& r) {
              (void)r;
              return bit_reversal_traffic(pes);
            }}}) {
    io::Table t({"organization", "delivered", "mean latency",
                 "mean switches/msg"});
    for (const Org& org : orgs) {
      double delivered = 0, lat = 0, sw = 0;
      int lat_rows = 0;
      std::mt19937_64 trng(rng());
      for (int i = 0; i < trials; ++i) {
        const auto msgs = make(trng);
        const auto rep = offer_traffic(org.ch, msgs);
        delivered += 100.0 * rep.delivered / std::max(1, rep.offered);
        if (rep.delivered) {
          lat += rep.mean_latency;
          sw += rep.mean_switches;
          ++lat_rows;
        }
      }
      t.add_row({org.name, io::Table::num(delivered / trials, 0) + "%",
                 lat_rows ? io::Table::num(lat / lat_rows, 1) : "-",
                 lat_rows ? io::Table::num(sw / lat_rows, 2) : "-"});
    }
    std::cout << pattern << ":\n" << t.str() << "\n";
  }

  std::cout << "Shape check ([8] / Section VI): express lanes cut long-haul "
               "switch counts and latency versus the fully segmented local "
               "organization while keeping near-local delivery rates; buses "
               "bound latency but saturate at one message per track.\n";
  return 0;
}
