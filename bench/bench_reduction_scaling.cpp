// E12 (Section III + Appendix): the reductions at scale — instance sizes
// follow the constructions' formulas, and NMTS solvability coincides with
// routability of Q (Theorem 1) and of Q2 under K = 2 (Theorem 2) across
// random instances.
#include <iostream>
#include <random>

#include "segroute.h"

using namespace segroute;
using namespace segroute::npc;

int main() {
  std::mt19937_64 rng(1212);
  std::cout << "E12 / Theorems 1-2 — reduction sizes and equivalence "
               "checks\n\n";

  {
    io::Table t({"n", "Q tracks (n^2)", "Q conns (3n^2+n)", "Q columns",
                 "Q2 tracks (2n^2-n)", "Q2 conns (5n^2-2n)", "Q2 columns"});
    for (int n = 2; n <= 5; ++n) {
      const auto inst = random_solvable_nmts(n, rng).normalized();
      const auto q = build_unlimited(inst);
      const auto q2 = build_two_segment(inst);
      t.add_row({io::Table::num(n),
                 io::Table::num(q.channel.num_tracks()),
                 io::Table::num(q.connections.size()),
                 io::Table::num(q.channel.width()),
                 io::Table::num(q2.channel.num_tracks()),
                 io::Table::num(q2.connections.size()),
                 io::Table::num(q2.channel.width())});
    }
    std::cout << "Construction sizes (random normalized instances):\n"
              << t.str() << "\n";
  }

  {
    io::Table t({"n", "trials", "NMTS yes", "Thm1 agreements",
                 "Lemma2 extractions ok"});
    for (int n = 2; n <= 3; ++n) {
      const int trials = 10;
      int yes = 0, agree = 0, extract_ok = 0;
      for (int i = 0; i < trials; ++i) {
        const auto inst = ((i % 2 == 0) ? random_solvable_nmts(n, rng)
                                        : random_perturbed_nmts(n, rng))
                              .normalized();
        const bool nmts_ok = inst.solve().has_value();
        const auto q = build_unlimited(inst);
        const auto dp = alg::dp_route_unlimited(q.channel, q.connections);
        if (nmts_ok) ++yes;
        if (nmts_ok == dp.success) ++agree;
        if (dp.success) {
          const auto back = matching_from_routing(q, inst, dp.routing);
          if (back && inst.check(*back)) ++extract_ok;
        } else if (!nmts_ok) {
          ++extract_ok;  // nothing to extract, consistent
        }
      }
      t.add_row({io::Table::num(n), io::Table::num(trials),
                 io::Table::num(yes), io::Table::num(agree),
                 io::Table::num(extract_ok)});
    }
    std::cout << "Theorem 1 equivalence (DP router as decision oracle):\n"
              << t.str() << "\n";
  }

  {
    io::Table t({"n", "trials", "NMTS yes", "Thm2 agreements (K=2)"});
    const int n = 2;
    const int trials = 8;
    int yes = 0, agree = 0;
    for (int i = 0; i < trials; ++i) {
      const auto inst = ((i % 2 == 0) ? random_solvable_nmts(n, rng)
                                      : random_perturbed_nmts(n, rng))
                            .normalized();
      const bool nmts_ok = inst.solve().has_value();
      const auto q2 = build_two_segment(inst);
      const bool routed =
          alg::dp_route_ksegment(q2.channel, q2.connections, 2).success;
      if (nmts_ok) ++yes;
      if (nmts_ok == routed) ++agree;
    }
    t.add_row({io::Table::num(n), io::Table::num(trials), io::Table::num(yes),
               io::Table::num(agree)});
    std::cout << "Theorem 2 equivalence (2-segment routing):\n" << t.str()
              << "\n";
  }

  std::cout << "Shape check: sizes match the constructions exactly; "
               "agreement is 100% in both reductions.\n";
  return 0;
}
