// E4 (Example 1 / Fig. 5, Lemmas 1-2): the published NMTS instance run
// through the Theorem 1 construction in both directions, plus an
// infeasible sibling.
#include <iostream>

#include "segroute.h"

using namespace segroute;

int main() {
  std::cout << "E4 / Example 1 — the Theorem 1 reduction on the published "
               "instance\n\n";
  const auto inst = gen::fixtures::example1_nmts();
  const auto q = npc::build_unlimited(inst);

  io::Table s({"quantity", "formula", "value"});
  const int n = q.n;
  s.add_row({"n", "-", io::Table::num(n)});
  s.add_row({"tracks T", "n^2", io::Table::num(q.channel.num_tracks())});
  s.add_row({"columns N", "x_n + y_n + 7", io::Table::num(q.channel.width())});
  s.add_row({"connections M", "3n^2 + n", io::Table::num(q.connections.size())});
  s.add_row({"a_i", "n", io::Table::num(static_cast<int>(q.a.size()))});
  s.add_row({"b_kj", "n^2",
             io::Table::num(static_cast<int>(q.b.size() * q.b[0].size()))});
  s.add_row({"d_i", "n", io::Table::num(static_cast<int>(q.d.size()))});
  s.add_row({"e_i", "n^2 - n", io::Table::num(static_cast<int>(q.e.size()))});
  s.add_row({"f_i", "n^2", io::Table::num(static_cast<int>(q.f.size()))});
  std::cout << s.str() << "\n";

  io::Table t({"step", "result"});
  const auto sol = inst.solve();
  t.add_row({"NMTS solver", sol ? "solvable" : "unsolvable"});
  const auto witness = npc::routing_from_matching(q, inst, *sol);
  t.add_row({"Lemma 1 routing from matching",
             validate(q.channel, q.connections, witness) ? "valid" : "INVALID"});
  const auto dp = alg::dp_route_unlimited(q.channel, q.connections);
  t.add_row({"DP router on Q",
             dp.success ? "routed (L = " +
                              std::to_string(dp.stats.max_level_nodes) + ")"
                        : "failed"});
  const auto back = npc::matching_from_routing(q, inst, dp.routing);
  t.add_row({"Lemma 2 matching from routing",
             back && inst.check(*back) ? "valid matching" : "FAILED"});

  const npc::NmtsInstance bad({2, 5, 8}, {9, 11, 12}, {12, 16, 19});
  const auto qbad = npc::build_unlimited(bad);
  t.add_row({"perturbed z = (12,16,19): NMTS",
             bad.solve() ? "solvable" : "unsolvable"});
  const auto dpbad = alg::dp_route_unlimited(qbad.channel, qbad.connections);
  t.add_row({"perturbed: DP router on Q", dpbad.success ? "routed" : "no routing"});
  std::cout << t.str()
            << "\nShape check: routing exists exactly when the matching "
               "does, in both directions (Theorem 1).\n";
  return 0;
}
