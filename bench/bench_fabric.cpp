// bench_fabric — negotiated multi-channel fabric routing.
//
// Three fabric sizes (random netlist + random placement on a channeled
// device, staggered segmentation). For each size:
//
//   min tracks      smallest per-channel track count the negotiated
//                   fabric router converges at (fpga::FabricRouter),
//                   vs the independent per-channel baseline
//                   (route_independent = one greedy pass, no pricing)
//   iterations      negotiation iterations at the minimum track count
//
// plus a thread-scaling section on the largest size: the same fabric
// routed at 1/2/8 threads, cache on and off — results must be
// bit-identical (the FabricRouter determinism contract), only the wall
// clock may move.
//
// Checked invariants (fatal under --check):
//   - digests bit-identical across 1/2/8 threads and cache on/off;
//   - negotiated min tracks <= independent min tracks on every size;
//   - min tracks and iterations exactly equal the committed baseline
//     (they are deterministic quantities, not timings);
//   - timings within 5x of the committed baseline;
//   - 8-thread speedup >= 3x — only gated when the host has >= 8
//     hardware threads (the committed baseline records
//     hardware_threads, so a small CI runner skips, not fakes, it).
//
// Flags: --json PATH, --check PATH, --repeats N, --quick,
//        --trace PATH, --metrics PATH.
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "bench_json.h"
#include "fpga/fabric.h"
#include "gen/segmentation.h"
#include "io/json.h"
#include "io/table.h"
#include "util/pool.h"

using namespace segroute;
using Clock = std::chrono::steady_clock;

namespace {

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

using bench::fmt;

struct Size {
  std::string name;
  int rows, slots, nets;
  std::uint64_t seed;
};

struct SizeRow {
  std::string key;
  int min_tracks = 0;
  int min_tracks_independent = 0;
  int iterations = 0;
  double ms_route = 0.0;
};

struct Scenario {
  fpga::DeviceSpec dev;
  fpga::Netlist nl;
  fpga::Placement p;
};

Scenario make_scenario(const Size& s) {
  std::mt19937_64 rng(s.seed);
  fpga::DeviceSpec dev;
  dev.rows = s.rows;
  dev.slots_per_row = s.slots;
  dev.cell_width = 2;
  fpga::Netlist nl =
      fpga::random_netlist(s.rows * s.slots, s.nets, 4, s.slots, rng);
  fpga::Placement p = fpga::random_placement(nl, s.rows, s.slots, rng);
  return Scenario{dev, std::move(nl), std::move(p)};
}

SegmentedChannel make_channel(int tracks, Column width) {
  return gen::staggered_segmentation(tracks, width, 6);
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path, check_path;
  int repeats = 5;
  bool quick = false;
  bench::ObsOutputs obs_out;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--json" && i + 1 < argc) json_path = argv[++i];
    else if (a == "--check" && i + 1 < argc) check_path = argv[++i];
    else if (a == "--repeats" && i + 1 < argc) repeats = std::atoi(argv[++i]);
    else if (a == "--quick") quick = true;
    else if (obs_out.parse_flag(argc, argv, i)) continue;
    else {
      std::cerr << "unknown flag: " << a << "\n";
      return 2;
    }
  }
  if (quick) repeats = std::min(repeats, 2);
  repeats = std::max(repeats, 1);
  obs_out.start();

  const std::vector<Size> sizes = {
      {"small", 3, 8, 16, 101},
      {"medium", 4, 12, 32, 202},
      {"large", 5, 16, 56, 303},
  };

  int failures = 0;
  bool min_le_independent = true;
  std::vector<SizeRow> rows;
  engine::CacheStats cache_last;

  io::Table table(
      {"fabric", "nets", "min tracks", "independent", "iters", "ms/route"});
  for (const Size& s : sizes) {
    const Scenario sc = make_scenario(s);
    const fpga::FabricRouter fr(sc.dev, sc.nl, sc.p, make_channel);
    fpga::FabricOptions o;
    o.max_iterations = 10;
    fpga::FabricOptions ind = o;
    ind.max_iterations = 1;

    const auto negotiated = fr.min_fabric_tracks(32, o);
    const auto independent = fr.min_fabric_tracks(32, ind);
    if (!negotiated || !independent) {
      std::cout << "FAIL: " << s.name << " did not route within 32 tracks\n";
      ++failures;
      continue;
    }
    if (*negotiated > *independent) min_le_independent = false;

    fpga::FabricResult res;
    const auto t0 = Clock::now();
    for (int r = 0; r < repeats; ++r) res = fr.route(*negotiated, o);
    const double ms = ms_since(t0) / repeats;
    cache_last = res.cache;

    table.add_row({s.name, std::to_string(s.nets), std::to_string(*negotiated),
                   std::to_string(*independent),
                   std::to_string(res.iterations), io::Table::num(ms, 3)});
    rows.push_back(
        {"fabric/" + s.name, *negotiated, *independent, res.iterations, ms});
  }

  // --- thread scaling on the largest size --------------------------------
  // Same fabric, same track count; 1/2/8 threads, cache on and off. The
  // determinism contract says only the wall clock may change.
  bool identical = true;
  double ms_threads[3] = {0, 0, 0};
  {
    const Scenario sc = make_scenario(sizes.back());
    const fpga::FabricRouter fr(sc.dev, sc.nl, sc.p, make_channel);
    const int tracks = rows.empty() ? 8 : rows.back().min_tracks;
    std::optional<std::uint64_t> digest;
    io::Table st({"threads", "cache", "ms/route", "speedup"});
    for (const bool cache : {true, false}) {
      const int thread_counts[] = {1, 2, 8};
      for (int ti = 0; ti < 3; ++ti) {
        fpga::FabricOptions o;
        o.max_iterations = 10;
        o.threads = thread_counts[ti];
        o.use_cache = cache;
        fpga::FabricResult res;
        const auto t0 = Clock::now();
        for (int r = 0; r < repeats; ++r) res = fr.route(tracks, o);
        const double ms = ms_since(t0) / repeats;
        if (!digest) digest = res.digest;
        if (res.digest != *digest) identical = false;
        if (cache) ms_threads[ti] = ms;
        st.add_row({std::to_string(thread_counts[ti]), cache ? "on" : "off",
                    io::Table::num(ms, 3),
                    io::Table::num(ms > 0 ? (cache ? ms_threads[0] : ms) / ms
                                          : 0.0, 2)});
      }
    }
    std::cout << "\nfabric routing — " << sizes.back().name << " at " << tracks
              << " tracks, thread scaling\n";
    st.print(std::cout);
  }
  const double speedup_2t =
      ms_threads[1] > 0 ? ms_threads[0] / ms_threads[1] : 0.0;
  const double speedup_8t =
      ms_threads[2] > 0 ? ms_threads[0] / ms_threads[2] : 0.0;

  std::cout << "\nnegotiated fabric routing (" << repeats << " repeats)\n";
  table.print(std::cout);
  std::cout << (identical
                    ? "bit-identical across 1/2/8 threads, cache on/off\n"
                    : "DIGEST MISMATCH across threads or cache modes\n");
  std::cout << "8-thread speedup: " << io::Table::num(speedup_8t, 2)
            << "x (hardware threads: " << util::hardware_threads() << ")\n";

  obs_out.finish(std::cout);

  // --- JSON emission -----------------------------------------------------
  std::ostringstream js;
  js << "{\n  \"bench\": \"fabric\",\n  \"repeats\": " << repeats
     << ",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SizeRow& r = rows[i];
    js << "    {\"key\": \"" << io::json_escape(r.key)
       << "\", \"min_tracks\": " << r.min_tracks
       << ", \"min_tracks_independent\": " << r.min_tracks_independent
       << ", \"iterations\": " << r.iterations
       << ", \"ms_route\": " << fmt(r.ms_route) << "}"
       << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  js << "  ],\n";
  js << "  \"hardware_threads\": " << util::hardware_threads() << ",\n";
  js << "  \"speedup_2t\": " << fmt(speedup_2t) << ",\n";
  js << "  \"speedup_8t\": " << fmt(speedup_8t) << ",\n";
  js << "  \"identical\": " << (identical ? "true" : "false") << ",\n";
  js << "  "
     << bench::engine_cache_json(cache_last.hits, cache_last.misses,
                                 cache_last.evictions)
     << "\n}\n";

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << js.str();
    std::cout << "\nwrote " << json_path << "\n";
  }

  // --- Gates -------------------------------------------------------------
  if (!identical) {
    std::cout << "FAIL: fabric results not bit-identical\n";
    ++failures;
  }
  if (!min_le_independent) {
    std::cout << "FAIL: negotiation needed more tracks than independent\n";
    ++failures;
  }
  if (!check_path.empty()) {
    std::ifstream in(check_path);
    if (!in) {
      std::cerr << "cannot read baseline " << check_path << "\n";
      return 2;
    }
    bench::Baseline base{std::string(std::istreambuf_iterator<char>(in),
                                     std::istreambuf_iterator<char>())};
    std::cout << "\nbaseline check vs " << check_path << "\n";
    for (const SizeRow& r : rows) {
      // Deterministic quantities must match the baseline exactly.
      const auto bt = base.field(r.key, "min_tracks");
      const auto bi = base.field(r.key, "iterations");
      if (bt && static_cast<int>(*bt) != r.min_tracks) {
        std::cout << "  FAIL " << r.key << ": min_tracks " << r.min_tracks
                  << " != baseline " << *bt << "\n";
        ++failures;
      }
      if (bi && static_cast<int>(*bi) != r.iterations) {
        std::cout << "  FAIL " << r.key << ": iterations " << r.iterations
                  << " != baseline " << *bi << "\n";
        ++failures;
      }
      const auto bms = base.field(r.key, "ms_route");
      if (bms && *bms > 0 && r.ms_route > 5.0 * *bms) {
        std::cout << "  FAIL " << r.key << ": " << r.ms_route
                  << " ms > 5x baseline " << *bms << " ms\n";
        ++failures;
      }
    }
    if (util::hardware_threads() >= 8) {
      if (speedup_8t < 3.0) {
        std::cout << "  FAIL: 8-thread speedup " << speedup_8t
                  << "x < required 3x\n";
        ++failures;
      }
    } else {
      std::cout << "  speedup gate skipped: only " << util::hardware_threads()
                << " hardware thread(s), need 8\n";
    }
    std::cout << (failures == 0 ? "baseline check passed\n"
                                : "baseline check FAILED\n");
  }
  return failures == 0 ? 0 : 1;
}
