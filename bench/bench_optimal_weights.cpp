// E13 (Problem 3 / Fig. 7): optimal routing cross-check. On 1-segment
// instances, the DP-with-weights optimum must equal the Hungarian
// matching optimum; across weight functions, the optimizers trade wire
// for switches exactly as the definitions predict.
#include <iostream>
#include <cmath>
#include <random>

#include "segroute.h"

using namespace segroute;

int main() {
  std::mt19937_64 rng(1313);
  std::cout << "E13 / Problem 3 — optimal routing: DP vs bipartite "
               "matching, and weight-function behaviour\n\n";

  {
    io::Table t({"trial set", "instances", "all three route",
                 "DP == matching", "LP within jitter"});
    const int trials = 60;
    int all3 = 0, dp_match = 0, lp_close = 0, total = 0;
    const auto w = weights::occupied_length();
    for (int i = 0; i < trials; ++i) {
      const auto ch = gen::staggered_segmentation(4, 20, 5);
      const auto cs = gen::geometric_workload(
          3 + static_cast<int>(rng() % 5), 20, 4.0, rng);
      alg::DpOptions o;
      o.max_segments = 1;
      o.weight = w;
      const auto dp = alg::dp_route(ch, cs, o);
      const auto hung = alg::match1_route_optimal(ch, cs, w);
      alg::LpRouteOptions lo;
      lo.max_segments = 1;
      const auto lp = alg::lp_route_optimal(ch, cs, w, lo);
      ++total;
      if (dp.success && hung.success && lp.success) {
        ++all3;
        if (std::abs(dp.weight - hung.weight) < 1e-9) ++dp_match;
        if (std::abs(lp.weight - dp.weight) < 0.5) ++lp_close;
      }
    }
    t.add_row({"K=1, occupied length", io::Table::num(total),
               io::Table::num(all3), io::Table::num(dp_match),
               io::Table::num(lp_close)});
    std::cout << "DP (K = 1) vs Hungarian matching (Fig. 7) vs LP "
                 "(Problem-3 extension of IV-C):\n"
              << t.str() << "\n";
  }

  {
    // Weight functions steer the optimum differently on the same instance.
    std::cout << "Weight-function comparison on one seeded instance:\n";
    const auto ch = SegmentedChannel({
        Track(24, {6, 12, 18}),
        Track(24, {6, 12, 18}),
        Track(24, {12}),
        Track(24, {12}),
    });
    const auto cs = gen::routable_workload(ch, 8, 6.0, rng);
    io::Table t({"objective", "total weight", "sum occupied length",
                 "sum segments"});
    for (const auto& [name, w] :
         std::vector<std::pair<std::string, WeightFn>>{
             {"occupied length", weights::occupied_length()},
             {"segment count", weights::segment_count()},
             {"wasted length", weights::wasted_length()}}) {
      const auto r = alg::dp_route_optimal(ch, cs, w);
      if (!r.success) continue;
      t.add_row({name, io::Table::num(r.weight, 1),
                 io::Table::num(total_weight(ch, cs, r.routing,
                                             weights::occupied_length()),
                                1),
                 io::Table::num(total_weight(ch, cs, r.routing,
                                             weights::segment_count()),
                                1)});
    }
    std::cout << t.str() << "\n";
  }

  std::cout << "Shape check: the two optimal 1-segment routers agree "
               "exactly on every instance; minimizing segments yields <= "
               "segment totals of the other objectives, minimizing length "
               "yields <= length totals.\n";
  return 0;
}
