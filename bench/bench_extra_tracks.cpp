// E7 (intro claim, via [10], [11]): a well-designed segmented channel
// needs only a few tracks more than a freely customized one. Series:
// average minimum tracks vs workload size for each segmentation scheme,
// with the density (= conventional channel tracks) as the baseline.
#include <functional>
#include <iostream>
#include <random>

#include "segroute.h"

using namespace segroute;

namespace {

int min_tracks(const ConnectionSet& cs, int limit,
               const std::function<SegmentedChannel(int)>& make) {
  for (int t = std::max(1, cs.density()); t <= limit; ++t) {
    if (alg::dp_route_unlimited(make(t), cs).success) return t;
  }
  return limit + 1;
}

}  // namespace

int main() {
  std::mt19937_64 rng(707);
  const Column width = 48;
  const int trials = 12;

  std::cout << "E7 / [10],[11] — extra tracks over the freely customized "
               "channel (avg over " << trials << " random workloads, "
               "geometric net lengths, mean 6)\n\n";

  // Design samples drawn once, as a designer would.
  std::vector<ConnectionSet> samples;
  for (int s = 0; s < 8; ++s) {
    samples.push_back(gen::geometric_workload(30, width, 6.0, rng));
  }

  io::Table t({"M", "density (=conventional)", "designed", "staggered 8",
               "uniform 8", "unsegmented"});
  for (int m : {8, 12, 16, 20, 24}) {
    double dens = 0, designed = 0, staggered = 0, uniform = 0, unseg = 0;
    for (int i = 0; i < trials; ++i) {
      const auto cs = gen::geometric_workload(m, width, 6.0, rng);
      const int limit = 3 * cs.density() + 8;
      dens += cs.density();
      designed += min_tracks(cs, limit, [&](int tt) {
        return gen::design_segmentation(tt, width, samples);
      });
      staggered += min_tracks(cs, limit, [&](int tt) {
        return gen::staggered_segmentation(tt, width, 8);
      });
      uniform += min_tracks(cs, limit, [&](int tt) {
        return gen::uniform_segmentation(tt, width, 8);
      });
      unseg += min_tracks(cs, m, [&](int tt) {
        return SegmentedChannel::unsegmented(tt, width);
      });
    }
    t.add_row({io::Table::num(m), io::Table::num(dens / trials, 1),
               io::Table::num(designed / trials, 1),
               io::Table::num(staggered / trials, 1),
               io::Table::num(uniform / trials, 1),
               io::Table::num(unseg / trials, 1)});
  }
  std::cout << t.str()
            << "\nShape check (paper): designed/staggered channels track the "
               "density within a few tracks at every M; identical uniform "
               "tracks and unsegmented channels fall far behind.\n";
  return 0;
}
