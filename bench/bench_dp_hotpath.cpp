// bench_dp_hotpath — the DP hot path, measured three ways:
//
//   A. dp_route on every standard-suite instance (plus two larger
//      generated ones) in all three problem modes: unlimited (Problem 1),
//      K = 2 (Problem 2), weighted occupied-length (Problem 3);
//   B. Monte-Carlo routability() throughput, serial vs the thread pool,
//      with a bit-identical-result check across thread counts;
//   C. the parallel suite driver: harness::robust_route over the whole
//      instance set, serial vs pool.
//
// Flags:
//   --json PATH    write the machine-readable results (BENCH_dp.json)
//   --check PATH   compare section A against a committed baseline: exit 1
//                  if any instance/mode is >5x slower or flips its
//                  success/weight answer
//   --threads N    thread count for the parallel sections (0 = hardware)
//   --trials N     Monte-Carlo trials for section B (default 200)
//   --quick        fewer repetitions (for smoke use)
//   --trace PATH   record the run in a trace session, write Chrome JSON
//   --metrics PATH write the metrics snapshot at exit
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "alg/capacity.h"
#include "alg/dp.h"
#include "alg/registry.h"
#include "bench_json.h"
#include "core/router.h"
#include "core/weights.h"
#include "gen/segmentation.h"
#include "gen/suite.h"
#include "gen/workload.h"
#include "harness/robust_route.h"
#include "io/json.h"
#include "io/table.h"
#include "util/pool.h"

using namespace segroute;
using Clock = std::chrono::steady_clock;

namespace {

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

/// Best-of-5 batches; batch size adapted so one batch takes ~20 ms.
/// Taking the minimum over five batches (not three) discards scheduler
/// and frequency noise, which on shared runners dwarfs the per-call
/// variance being measured.
template <typename F>
double time_ms_per_call(F&& f, bool quick) {
  f();  // warmup
  const auto t0 = Clock::now();
  f();
  const double est = ms_since(t0);
  const double target = quick ? 5.0 : 20.0;
  int reps = est > 0 ? static_cast<int>(target / est) + 1 : 1000;
  reps = std::min(reps, quick ? 500 : 2000);
  double best = std::numeric_limits<double>::infinity();
  for (int b = 0; b < 5; ++b) {
    const auto t1 = Clock::now();
    for (int i = 0; i < reps; ++i) f();
    best = std::min(best, ms_since(t1) / reps);
  }
  return best;
}

struct BenchRow {
  std::string key;  // "<instance>/<mode>"
  double ms_per_route = 0.0;
  std::uint64_t total_nodes = 0;
  bool success = false;
  double weight = 0.0;
  std::size_t words_per_state = 0;  // packed occupancy words per frontier
};

struct NamedInstance {
  std::string name;
  SegmentedChannel channel;
  ConnectionSet connections;
};

std::vector<NamedInstance> bench_instances() {
  std::vector<NamedInstance> out;
  for (auto& inst : gen::standard_suite()) {
    out.push_back({inst.name, inst.channel, inst.connections});
  }
  // Two larger generated instances so the hot path has real headroom.
  {
    auto ch = gen::staggered_segmentation(8, 96, 8);
    std::mt19937_64 rng(2001);
    auto cs = gen::routable_workload(ch, 40, 7.0, rng);
    out.push_back({"gen-wide", std::move(ch), std::move(cs)});
  }
  {
    auto ch = gen::progressive_segmentation(9, 96, 4, 3);
    std::mt19937_64 rng(2002);
    auto cs = gen::routable_workload(ch, 30, 6.0, rng);
    out.push_back({"gen-types", std::move(ch), std::move(cs)});
  }
  return out;
}

using bench::fmt;

}  // namespace

int main(int argc, char** argv) {
  std::string json_path, check_path;
  int threads = 0;
  int trials = 200;
  bool quick = false;
  bench::ObsOutputs obs_out;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--json" && i + 1 < argc) json_path = argv[++i];
    else if (a == "--check" && i + 1 < argc) check_path = argv[++i];
    else if (a == "--threads" && i + 1 < argc) threads = std::atoi(argv[++i]);
    else if (a == "--trials" && i + 1 < argc) trials = std::atoi(argv[++i]);
    else if (a == "--quick") quick = true;
    else if (obs_out.parse_flag(argc, argv, i)) continue;
    else {
      std::cerr << "unknown flag: " << a << "\n";
      return 2;
    }
  }
  const int W = util::resolve_threads(threads);
  obs_out.start();

  // --- Section A: dp_route per instance and mode -------------------------
  const auto w = weights::occupied_length();
  std::vector<BenchRow> rows;
  io::Table table({"instance", "mode", "ms/route", "nodes", "ok", "weight"});
  for (const auto& inst : bench_instances()) {
    // Words per packed frontier for this instance — fixed by (tracks,
    // width), reported so perf JSON records the state layout it timed.
    alg::bits::FrontierCodec codec;
    codec.init_uniform(
        static_cast<std::size_t>(inst.channel.num_tracks()),
        static_cast<std::uint32_t>(inst.channel.width() + 1));
    const std::size_t wps = codec.words();
    const auto run_mode = [&](const std::string& mode, auto&& route) {
      BenchRow row;
      row.key = inst.name + "/" + mode;
      row.words_per_state = wps;
      row.ms_per_route = time_ms_per_call(route, quick);
      const alg::RouteResult r = route();
      row.total_nodes = r.stats.total_nodes;
      row.success = r.success;
      row.weight = r.weight;
      table.add_row({inst.name, mode, io::Table::num(row.ms_per_route, 4),
                     io::Table::num(row.total_nodes),
                     row.success ? "yes" : "no", io::Table::num(row.weight)});
      rows.push_back(row);
    };
    run_mode("unlimited", [&] {
      return alg::dp_route_unlimited(inst.channel, inst.connections);
    });
    run_mode("k2", [&] {
      return alg::dp_route_ksegment(inst.channel, inst.connections, 2);
    });
    run_mode("weighted", [&] {
      return alg::dp_route_optimal(inst.channel, inst.connections, w);
    });
  }
  std::cout << "DP hot path — per-instance routing cost\n";
  table.print(std::cout);

  // --- Section B: routability throughput, serial vs pool -----------------
  const auto rb_channel = gen::staggered_segmentation(6, 48, 8);
  const auto draw = [](std::mt19937_64& r) {
    return gen::geometric_workload(20, 48, 7.0, r);
  };
  alg::CapacityOptions serial_opts;
  serial_opts.threads = 1;
  alg::CapacityOptions pool_opts;
  pool_opts.threads = W;

  std::mt19937_64 rng_a(424242);
  const auto tb0 = Clock::now();
  const double rate_serial =
      alg::routability(rb_channel, draw, trials, rng_a, serial_opts);
  const double ms_serial = ms_since(tb0);

  std::mt19937_64 rng_b(424242);
  const auto tb1 = Clock::now();
  const double rate_pool =
      alg::routability(rb_channel, draw, trials, rng_b, pool_opts);
  const double ms_pool = ms_since(tb1);
  const bool identical = rate_serial == rate_pool;

  std::cout << "\nroutability() throughput (" << trials << " trials)\n";
  io::Table tb({"threads", "rate", "ms", "trials/s"});
  tb.add_row({"1", io::Table::num(rate_serial, 4), io::Table::num(ms_serial, 1),
              io::Table::num(trials / (ms_serial / 1000.0), 0)});
  tb.add_row({io::Table::num(W), io::Table::num(rate_pool, 4),
              io::Table::num(ms_pool, 1),
              io::Table::num(trials / (ms_pool / 1000.0), 0)});
  tb.print(std::cout);
  std::cout << (identical ? "rates bit-identical across thread counts\n"
                          : "RATE MISMATCH ACROSS THREAD COUNTS\n");

  // --- Section C: parallel suite driver via robust_route -----------------
  const auto instances = bench_instances();
  const auto drive = [&](int nthreads) {
    util::ThreadPool pool(nthreads);
    std::vector<char> ok(instances.size(), 0);
    const auto t0 = Clock::now();
    pool.parallel_for(static_cast<std::int64_t>(instances.size()),
                      [&](std::int64_t i) {
                        const auto iu = static_cast<std::size_t>(i);
                        harness::RobustOptions ro;
                        ro.deadline = std::chrono::milliseconds(200);
                        const auto rep = harness::robust_route(
                            instances[iu].channel, instances[iu].connections,
                            ro);
                        ok[iu] = rep.success ? 1 : 0;
                      });
    int routed = 0;
    for (char v : ok) routed += v;
    return std::pair<double, int>(ms_since(t0), routed);
  };
  const auto [drv_serial_ms, drv_serial_ok] = drive(1);
  const auto [drv_pool_ms, drv_pool_ok] = drive(W);
  std::cout << "\nsuite driver (robust_route x " << instances.size()
            << " instances): serial " << drv_serial_ms << " ms, " << W
            << " threads " << drv_pool_ms << " ms, routed "
            << drv_pool_ok << "/" << instances.size() << "\n";
  if (drv_serial_ok != drv_pool_ok) {
    std::cout << "DRIVER RESULT MISMATCH ACROSS THREAD COUNTS\n";
  }

  // --- Section D: registry sweep -----------------------------------------
  // Every registered router, dispatched by name on a canary instance that
  // sits inside all capability envelopes. Times the full registry path
  // (pre-checks + adapter + route); the "dp" row vs Section A's direct
  // dp_route rows bounds the dispatch overhead. Coverage: a router whose
  // adapter breaks shows up here as a failed outcome.
  bool registry_ok = true;
  {
    const SegmentedChannel canary_ch = SegmentedChannel::identical(3, 12, {6});
    ConnectionSet canary_cs;
    canary_cs.add(1, 3);
    canary_cs.add(7, 9);
    canary_cs.add(4, 6);
    const ChannelIndex canary_idx(canary_ch);
    const auto cw = weights::occupied_length();
    std::cout << "\nregistry sweep (canary instance, by-name dispatch)\n";
    io::Table rt({"router", "ms/route", "outcome"});
    for (const alg::RouterEntry& e : alg::registry()) {
      RouteRequest rq;
      rq.channel = &canary_ch;
      rq.connections = &canary_cs;
      rq.context.index = &canary_idx;
      if (e.caps.requires_weight) rq.options.weight = cw;
      alg::RouteResult last;
      const double ms = time_ms_per_call(
          [&] { last = alg::route(e, rq); }, /*quick=*/true);
      if (!last.success) registry_ok = false;
      rt.add_row({e.name, io::Table::num(ms, 4),
                  last.success ? "ok" : alg::to_string(last.failure)});
      rows.push_back({std::string("registry/") + e.name, ms, 0,
                      last.success, last.weight});
    }
    rt.print(std::cout);
    std::cout << (registry_ok
                      ? "all registered routers routed the canary\n"
                      : "REGISTRY COVERAGE FAILURE\n");
  }

  obs_out.finish(std::cout);

  // --- JSON emission -----------------------------------------------------
  std::ostringstream js;
  js << "{\n  \"bench\": \"dp_hotpath\",\n  \"threads\": " << W
     << ",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const BenchRow& r = rows[i];
    js << "    {\"key\": " << "\"" << io::json_escape(r.key) << "\""
       << ", \"ms_per_route\": " << fmt(r.ms_per_route)
       << ", \"total_nodes\": " << r.total_nodes
       << ", \"success\": " << (r.success ? "true" : "false")
       << ", \"weight\": " << fmt(r.weight)
       << ", \"words_per_state\": " << r.words_per_state << "}"
       << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  js << "  ],\n";
  js << "  \"probe_batch\": " << alg::bits::ProbeBatch::kCapacity << ",\n";
  js << "  \"routability\": {\"trials\": " << trials
     << ", \"rate\": " << fmt(rate_serial)
     << ", \"ms_serial\": " << fmt(ms_serial)
     << ", \"ms_parallel\": " << fmt(ms_pool)
     << ", \"identical\": " << (identical ? "true" : "false") << "},\n";
  js << "  \"suite_driver\": {\"instances\": " << instances.size()
     << ", \"ms_serial\": " << fmt(drv_serial_ms)
     << ", \"ms_parallel\": " << fmt(drv_pool_ms) << "},\n";
  // This bench routes every instance directly (no BatchRouter), so the
  // engine-cache counters are structurally zero; the field exists so all
  // perf JSON shares one schema (bench_engine fills it in).
  js << "  " << bench::engine_cache_json(0, 0, 0) << "\n}\n";

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << js.str();
    std::cout << "\nwrote " << json_path << "\n";
  }

  // --- Baseline check ----------------------------------------------------
  int failures = 0;
  if (!registry_ok) {
    std::cout << "FAIL: a registered router did not route the canary\n";
    ++failures;
  }
  if (!check_path.empty()) {
    std::ifstream in(check_path);
    if (!in) {
      std::cerr << "cannot read baseline " << check_path << "\n";
      return 2;
    }
    bench::Baseline base{std::string(std::istreambuf_iterator<char>(in),
                                     std::istreambuf_iterator<char>())};
    std::cout << "\nbaseline check vs " << check_path
              << " (fail threshold: 5x)\n";
    for (const BenchRow& r : rows) {
      const auto bms = base.field(r.key, "ms_per_route");
      if (!bms) continue;  // new instance since the baseline: skip
      const auto bok = base.field(r.key, "success");
      const auto bw = base.field(r.key, "weight");
      const auto bn = base.field(r.key, "total_nodes");
      if (bok && ((*bok != 0.0) != r.success)) {
        std::cout << "  FAIL " << r.key << ": success flipped\n";
        ++failures;
      }
      if (bw && std::abs(*bw - r.weight) > 1e-6 * std::max(1.0, *bw)) {
        std::cout << "  FAIL " << r.key << ": weight " << r.weight
                  << " != baseline " << *bw << "\n";
        ++failures;
      }
      // Node counts are deterministic (the packed layout is injective),
      // so any drift means the explored graph changed — fatal, not a
      // perf regression.
      if (bn && *bn != static_cast<double>(r.total_nodes)) {
        std::cout << "  FAIL " << r.key << ": node count " << r.total_nodes
                  << " != baseline " << *bn << "\n";
        ++failures;
      }
      if (*bms > 0 && r.ms_per_route > 5.0 * *bms) {
        std::cout << "  FAIL " << r.key << ": " << r.ms_per_route
                  << " ms > 5x baseline " << *bms << " ms\n";
        ++failures;
      }
    }
    if (!identical) {
      std::cout << "  FAIL routability: not bit-identical across threads\n";
      ++failures;
    }
    std::cout << (failures == 0 ? "baseline check passed\n"
                                : "baseline check FAILED\n");
  }
  return failures == 0 ? 0 : 1;
}
