// E8 — runtime scaling microbenchmarks (google-benchmark) backing the
// paper's complexity claims:
//   greedy 1-segment:  O(M*T)
//   DP (fixed T):      linear in M (Section IV-B)
//   DP vs K:           grows with (K+1)^T, so small K is much cheaper
//   matching router:   polynomial (Hungarian O(V^3))
//   LP heuristic:      ordinary LP via simplex
#include <benchmark/benchmark.h>

#include <random>

#include "segroute.h"

using namespace segroute;

namespace {

struct Instance {
  SegmentedChannel ch;
  ConnectionSet cs;
};

Instance make_instance(TrackId tracks, Column width, int m,
                       std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  auto ch = gen::staggered_segmentation(tracks, width, std::max<Column>(2, width / 6));
  auto cs = gen::routable_workload(ch, m, width / 8.0, rng);
  return Instance{std::move(ch), std::move(cs)};
}

void BM_Greedy1_VsM(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const auto inst = make_instance(8, 64, m, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(alg::greedy1_route(inst.ch, inst.cs));
  }
  state.SetComplexityN(m);
}
BENCHMARK(BM_Greedy1_VsM)->RangeMultiplier(2)->Range(8, 64)->Complexity();

void BM_DpUnlimited_VsM(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const auto inst = make_instance(6, 96, m, 43);
  for (auto _ : state) {
    benchmark::DoNotOptimize(alg::dp_route_unlimited(inst.ch, inst.cs));
  }
  state.SetComplexityN(m);
}
BENCHMARK(BM_DpUnlimited_VsM)->RangeMultiplier(2)->Range(8, 64)->Complexity();

void BM_DpUnlimited_VsT(benchmark::State& state) {
  const TrackId t = static_cast<TrackId>(state.range(0));
  const auto inst = make_instance(t, 64, 3 * t, 44);
  for (auto _ : state) {
    benchmark::DoNotOptimize(alg::dp_route_unlimited(inst.ch, inst.cs));
  }
}
BENCHMARK(BM_DpUnlimited_VsT)->DenseRange(2, 10, 2);

void BM_DpKSegment_VsK(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const auto inst = make_instance(6, 96, 36, 45);
  for (auto _ : state) {
    benchmark::DoNotOptimize(alg::dp_route_ksegment(inst.ch, inst.cs, k));
  }
}
BENCHMARK(BM_DpKSegment_VsK)->DenseRange(1, 5, 1);

void BM_DpCanonicalization(benchmark::State& state) {
  // Theorem 7's situation: many tracks of only two segmentation types, so
  // canonicalization can merge same-type frontier permutations.
  const bool canon = state.range(0) != 0;
  std::mt19937_64 rng(46);
  std::vector<Track> tracks;
  for (int t = 0; t < 8; ++t) {
    tracks.push_back(t % 2 == 0 ? Track(64, {10, 20, 30, 40, 50, 60})
                                : Track(64, {16, 32, 48}));
  }
  const SegmentedChannel ch(std::move(tracks));
  const auto cs = gen::routable_workload(ch, 24, 8.0, rng);
  alg::DpOptions o;
  o.canonicalize_types = canon;
  for (auto _ : state) {
    benchmark::DoNotOptimize(alg::dp_route(ch, cs, o));
  }
}
BENCHMARK(BM_DpCanonicalization)->Arg(0)->Arg(1);

void BM_MatchOptimal_VsM(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  auto inst = make_instance(8, 64, m, 47);
  const auto w = weights::occupied_length();
  for (auto _ : state) {
    benchmark::DoNotOptimize(alg::match1_route_optimal(inst.ch, inst.cs, w));
  }
  state.SetComplexityN(m);
}
BENCHMARK(BM_MatchOptimal_VsM)->RangeMultiplier(2)->Range(8, 32)->Complexity();

void BM_LpRoute_VsM(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const auto inst = make_instance(10, 80, m, 48);
  for (auto _ : state) {
    benchmark::DoNotOptimize(alg::lp_route(inst.ch, inst.cs));
  }
}
BENCHMARK(BM_LpRoute_VsM)->RangeMultiplier(2)->Range(8, 32);

void BM_GeneralizedDp_VsM(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  std::mt19937_64 rng(49);
  const auto ch = SegmentedChannel(
      {Track(24, {6, 12, 18}), Track(24, {4, 14}), Track(24, {8, 16})});
  const auto cs = gen::routable_workload(ch, m, 4.0, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(alg::generalized_dp_route(ch, cs));
  }
  state.SetComplexityN(m);
}
BENCHMARK(BM_GeneralizedDp_VsM)->DenseRange(2, 8, 2)->Complexity();

void BM_ReductionBuild(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::mt19937_64 rng(50);
  const auto inst = npc::random_solvable_nmts(n, rng).normalized();
  for (auto _ : state) {
    benchmark::DoNotOptimize(npc::build_unlimited(inst));
  }
}
BENCHMARK(BM_ReductionBuild)->DenseRange(2, 6, 1);

}  // namespace

BENCHMARK_MAIN();
