// E14 (Section I / Fig. 2 trade-off, quantified): tracks vs delay for the
// channel organizations the paper compares. The whole point of segmented
// channels is the middle ground — near-density track counts AND bounded
// delay. Also sweeps K to show the paper's "simple limits on the number
// of segments joined" delay guarantee.
#include <functional>
#include <iostream>
#include <random>

#include "segroute.h"

using namespace segroute;

namespace {

struct SchemeResult {
  int tracks = -1;
  fpga::DelayStats delay;
};

SchemeResult evaluate(const ConnectionSet& cs, int limit, int max_segments,
                      const std::function<SegmentedChannel(int)>& make) {
  SchemeResult res;
  for (int t = std::max(1, cs.density()); t <= limit; ++t) {
    const auto ch = make(t);
    alg::DpOptions o;
    o.max_segments = max_segments;
    const auto r = alg::dp_route(ch, cs, o);
    if (r.success) {
      res.tracks = t;
      res.delay = fpga::routing_delay(ch, cs, r.routing);
      return res;
    }
  }
  return res;
}

}  // namespace

int main() {
  std::mt19937_64 rng(1414);
  const Column width = 48;
  const int trials = 10;

  std::cout << "E14 / Fig. 2 trade-off — tracks vs delay per channel "
               "organization (avg over " << trials
            << " workloads, M = 16, geometric lengths mean 6)\n\n";

  io::Table t({"scheme", "avg tracks", "avg max delay", "avg mean delay",
               "max switches on a net"});
  struct Scheme {
    std::string name;
    int max_segments;
    std::function<SegmentedChannel(int, Column)> make;
  };
  std::vector<ConnectionSet> samples;
  for (int s = 0; s < 6; ++s) {
    samples.push_back(gen::geometric_workload(24, width, 6.0, rng));
  }
  const std::vector<Scheme> schemes = {
      {"unsegmented (2d)", 0,
       [](int tt, Column w) { return SegmentedChannel::unsegmented(tt, w); }},
      {"fully segmented (2c)", 0,
       [](int tt, Column w) { return SegmentedChannel::fully_segmented(tt, w); }},
      {"staggered 8, K free", 0,
       [](int tt, Column w) { return gen::staggered_segmentation(tt, w, 8); }},
      {"staggered 8, K = 2 (2f)", 2,
       [](int tt, Column w) { return gen::staggered_segmentation(tt, w, 8); }},
      {"designed, K = 2 (2e/f)", 2,
       [&](int tt, Column w) { return gen::design_segmentation(tt, w, samples); }},
  };

  std::mt19937_64 wrng(99);
  std::vector<ConnectionSet> workloads;
  for (int i = 0; i < trials; ++i) {
    workloads.push_back(gen::geometric_workload(16, width, 6.0, rng));
  }
  (void)wrng;

  for (const Scheme& s : schemes) {
    double tracks = 0, maxd = 0, meand = 0;
    int switches = 0, solved = 0;
    for (const auto& cs : workloads) {
      const auto r = evaluate(cs, 64, s.max_segments,
                              [&](int tt) { return s.make(tt, width); });
      if (r.tracks < 0) continue;
      ++solved;
      tracks += r.tracks;
      maxd += r.delay.max_delay;
      meand += r.delay.mean_delay;
      switches = std::max(switches, r.delay.max_switches);
    }
    if (solved == 0) continue;
    t.add_row({s.name, io::Table::num(tracks / solved, 1),
               io::Table::num(maxd / solved, 1),
               io::Table::num(meand / solved, 1), io::Table::num(switches)});
  }
  std::cout << t.str() << "\n";

  // K sweep on one scheme: the delay guarantee of bounded K.
  io::Table k({"K", "avg tracks", "avg max delay", "max switches"});
  for (int K : {1, 2, 3, 4, 0}) {
    double tracks = 0, maxd = 0;
    int switches = 0, solved = 0;
    for (const auto& cs : workloads) {
      const auto r = evaluate(cs, 64, K, [&](int tt) {
        return gen::staggered_segmentation(tt, width, 6);
      });
      if (r.tracks < 0) continue;
      ++solved;
      tracks += r.tracks;
      maxd += r.delay.max_delay;
      switches = std::max(switches, r.delay.max_switches);
    }
    if (!solved) continue;
    k.add_row({K == 0 ? "unlimited" : io::Table::num(K),
               io::Table::num(tracks / solved, 1),
               io::Table::num(maxd / solved, 1), io::Table::num(switches)});
  }
  std::cout << "K-segment sweep (staggered 6):\n" << k.str()
            << "\nShape check (paper): unsegmented minimizes switches but "
               "wastes tracks and loads full-width wire; fully segmented "
               "matches density but pays a switch per column; segmented "
               "channels with small K sit in the sweet spot, and growing K "
               "trades a few tracks for bounded extra delay.\n";
  return 0;
}
