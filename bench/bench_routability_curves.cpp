// E16 (capacity curves, extending E7): probability of successful routing
// vs offered load for several track counts and segmentation schemes —
// the channel-capacity characterization an FPGA architect reads off
// before fixing T (companion papers [10], [11] report curves of this
// kind for the Actel architecture).
#include <iostream>
#include <random>

#include "segroute.h"

using namespace segroute;

int main() {
  std::mt19937_64 rng(1616);
  const Column width = 40;
  const int trials = 40;

  std::cout << "E16 — routability vs offered load (geometric lengths mean "
               "6, " << trials << " trials per cell)\n\n";

  for (const auto& [scheme, make] :
       std::vector<std::pair<std::string,
                             std::function<SegmentedChannel(int)>>>{
           {"staggered len 8",
            [&](int t) { return gen::staggered_segmentation(t, width, 8); }},
           {"uniform len 8",
            [&](int t) { return gen::uniform_segmentation(t, width, 8); }},
           {"unsegmented",
            [&](int t) { return SegmentedChannel::unsegmented(t, width); }}}) {
    io::Table table({"M \\ T", "4", "6", "8", "10"});
    for (int m : {6, 10, 14, 18, 22}) {
      std::vector<std::string> row = {io::Table::num(m)};
      for (int t : {4, 6, 8, 10}) {
        const auto ch = make(t);
        const double p = alg::routability(
            ch,
            [&](std::mt19937_64& r) {
              return gen::geometric_workload(m, width, 6.0, r);
            },
            trials, rng);
        row.push_back(io::Table::num(100.0 * p, 0) + "%");
      }
      table.add_row(std::move(row));
    }
    std::cout << scheme << ":\n" << table.str() << "\n";
  }
  std::cout << "Shape check: routability falls off with load and recovers "
               "with tracks; staggered segmentation dominates identical "
               "uniform tracks at every (M, T); unsegmented channels fall "
               "off the earliest (one net per track).\n";
  return 0;
}
