// bench_svc — the routing service under load.
//
// Four sections:
//
//   determinism     a fixed seeded two-tenant driver-mode schedule (tick
//                   budgets, virtual time, no wall clock in any outcome)
//                   run at 1/2/8 worker threads; the response digests
//                   must be bit-identical (the service determinism
//                   contract — the same gate tests/test_svc.cpp pins
//                   under TSan).
//   closed model    N virtual users, each submit -> wait -> submit (at
//                   most one outstanding request per user), at rising
//                   concurrency. Reports throughput and p50/p99/p999
//                   service latency; the max observed throughput is the
//                   saturation estimate. The top concurrency splits its
//                   users across two tenants and reports fairness
//                   (min/max served ratio under the shared FIFO).
//   open model      arrivals paced at 1.25x the measured saturation
//                   rate, independent of completions — deliberate
//                   overload against a bounded queue. Demonstrates
//                   admission control: latency stays bounded by queue
//                   depth while the overflow is rejected *typed*, and
//                   accepted + rejected must account for every
//                   submission exactly.
//
// Latency is measured service-side (queue_ms + service_ms from the
// response) so the numbers do not include client wake-up noise.
//
// Checked invariants (fatal):
//   - digests bit-identical across 1/2/8 threads (always);
//   - open-model accounting exact: served + rejected == submitted
//     (always);
//   - under --check: closed/open throughput >= baseline/5, p99 <= 5x
//     baseline, saturation >= baseline/5, tenant fairness >= 0.5.
//
// Flags: --json PATH, --check PATH, --quick, --trace PATH,
//        --metrics PATH.
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "gen/segmentation.h"
#include "gen/workload.h"
#include "io/json.h"
#include "io/table.h"
#include "svc/service.h"
#include "util/pool.h"

using namespace segroute;
using Clock = std::chrono::steady_clock;

namespace {

using bench::fmt;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

SegmentedChannel make_channel() {
  return gen::staggered_segmentation(8, 64, 8);
}

/// A fixed pool of distinct routable instances per tenant; the service's
/// memo cache warms on it, so steady state mixes hits and fresh routes.
std::vector<ConnectionSet> make_pool(const SegmentedChannel& ch, int n,
                                     std::uint64_t seed) {
  std::vector<ConnectionSet> pool;
  std::mt19937_64 rng(seed);
  pool.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    pool.push_back(gen::routable_workload(ch, 6, 6.0, rng));
  }
  return pool;
}

struct Pct {
  double p50 = 0.0, p99 = 0.0, p999 = 0.0;
};

Pct percentiles(std::vector<double> v) {
  Pct p;
  if (v.empty()) return p;
  std::sort(v.begin(), v.end());
  const auto at = [&](double q) {
    const std::size_t i = std::min(
        v.size() - 1, static_cast<std::size_t>(q * static_cast<double>(v.size())));
    return v[i];
  };
  p.p50 = at(0.50);
  p.p99 = at(0.99);
  p.p999 = at(0.999);
  return p;
}

/// The driver-mode digest schedule: seeded arrivals, bob tick-sliced, no
/// wall clock anywhere near an outcome.
std::uint64_t run_digest_schedule(int threads) {
  const SegmentedChannel ch = make_channel();
  svc::SvcOptions o;
  o.threads = threads;
  o.queue_capacity = 64;
  o.drain_window = 16;
  o.max_inflight_per_tenant = 24;
  o.tenant_slice_ticks["bob"] = 4000;
  svc::RoutingService svc(ch, o);

  const std::vector<ConnectionSet> alice = make_pool(ch, 8, 11);
  std::vector<ConnectionSet> bob;
  std::mt19937_64 brng(12);
  for (int i = 0; i < 8; ++i) {
    bob.push_back(gen::geometric_workload(12, 64, 8.0, brng));
  }

  std::mt19937_64 arrivals(99);
  std::vector<std::future<svc::SvcResponse>> futs;
  for (int t = 0; t < 32; ++t) {
    const int n = static_cast<int>(arrivals() % 5);
    for (int i = 0; i < n; ++i) {
      svc::SvcRequest rq;
      const bool is_bob = arrivals() % 3 == 0;
      rq.tenant = is_bob ? "bob" : "alice";
      rq.connections = is_bob ? bob[arrivals() % bob.size()]
                              : alice[arrivals() % alice.size()];
      futs.push_back(svc.submit(std::move(rq)));
    }
    svc.tick();
  }
  svc.stop(svc::RoutingService::StopMode::kDrain);

  std::uint64_t digest = 1469598103934665603ull;
  for (auto& f : futs) digest = svc::fold_digest(digest, f.get());
  return digest;
}

struct ClosedResult {
  double rps = 0.0;
  Pct lat;
  std::uint64_t served_alice = 0;
  std::uint64_t served_bob = 0;
};

/// Closed loop: `clients` virtual users, one outstanding request each,
/// `per_client` requests per user. Two tenants when split_tenants.
ClosedResult run_closed(const std::vector<ConnectionSet>& pool, int clients,
                        int per_client, bool split_tenants) {
  const SegmentedChannel ch = make_channel();
  svc::SvcOptions o;
  o.threads = 0;  // auto
  o.queue_capacity = 4096;
  o.drain_window = 64;
  svc::RoutingService svc(ch, o);
  svc.start();

  std::vector<std::vector<double>> lat(static_cast<std::size_t>(clients));
  std::vector<std::uint64_t> served(static_cast<std::size_t>(clients), 0);
  const auto t0 = Clock::now();
  std::vector<std::thread> users;
  users.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    users.emplace_back([&, c] {
      const std::string tenant =
          split_tenants && c >= clients / 2 ? "bob" : "alice";
      std::mt19937_64 rng(1000 + static_cast<std::uint64_t>(c));
      for (int i = 0; i < per_client; ++i) {
        svc::SvcRequest rq;
        rq.tenant = tenant;
        rq.connections = pool[rng() % pool.size()];
        const svc::SvcResponse r = svc.submit(std::move(rq)).get();
        if (r.admit == svc::Admit::kAccepted) {
          lat[static_cast<std::size_t>(c)].push_back(r.queue_ms + r.service_ms);
          ++served[static_cast<std::size_t>(c)];
        }
      }
    });
  }
  for (auto& u : users) u.join();
  const double sec = ms_since(t0) / 1000.0;
  svc.stop(svc::RoutingService::StopMode::kDrain);

  ClosedResult res;
  std::vector<double> all;
  for (int c = 0; c < clients; ++c) {
    all.insert(all.end(), lat[static_cast<std::size_t>(c)].begin(),
               lat[static_cast<std::size_t>(c)].end());
    if (split_tenants && c >= clients / 2) {
      res.served_bob += served[static_cast<std::size_t>(c)];
    } else {
      res.served_alice += served[static_cast<std::size_t>(c)];
    }
  }
  res.rps = sec > 0 ? static_cast<double>(all.size()) / sec : 0.0;
  res.lat = percentiles(std::move(all));
  return res;
}

struct OpenResult {
  double rate_rps = 0.0;
  double rps = 0.0;
  Pct lat;
  std::uint64_t submitted = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  bool accounted = false;
  bool rejections_typed = true;
};

/// Open loop: arrivals paced at `rate` per second regardless of
/// completions, against a bounded queue — the overload experiment.
OpenResult run_open(const std::vector<ConnectionSet>& pool, double rate,
                    int total) {
  const SegmentedChannel ch = make_channel();
  svc::SvcOptions o;
  o.threads = 0;
  o.queue_capacity = 512;
  o.drain_window = 64;
  svc::RoutingService svc(ch, o);
  svc.start();

  OpenResult res;
  res.rate_rps = rate;
  const auto interval = std::chrono::nanoseconds(
      static_cast<std::int64_t>(1e9 / std::max(rate, 1.0)));
  std::mt19937_64 rng(2025);
  std::vector<std::future<svc::SvcResponse>> futs;
  futs.reserve(static_cast<std::size_t>(total));
  const auto t0 = Clock::now();
  auto next = t0;
  for (int i = 0; i < total; ++i) {
    while (Clock::now() < next) {
      // spin: sub-microsecond inter-arrival gaps are below sleep
      // granularity at these rates
    }
    next += interval;
    svc::SvcRequest rq;
    rq.tenant = "open";
    rq.connections = pool[rng() % pool.size()];
    futs.push_back(svc.submit(std::move(rq)));
  }
  std::vector<double> lat;
  for (auto& f : futs) {
    const svc::SvcResponse r = f.get();
    ++res.submitted;
    if (r.admit == svc::Admit::kAccepted) {
      ++res.accepted;
      lat.push_back(r.queue_ms + r.service_ms);
    } else {
      ++res.rejected;
      if (r.admit != svc::Admit::kQueueFull ||
          r.result.failure != alg::FailureKind::kBudgetExhausted) {
        res.rejections_typed = false;
      }
    }
  }
  const double sec = ms_since(t0) / 1000.0;
  svc.stop(svc::RoutingService::StopMode::kDrain);
  res.rps = sec > 0 ? static_cast<double>(res.accepted) / sec : 0.0;
  res.lat = percentiles(std::move(lat));
  res.accounted = res.accepted + res.rejected == res.submitted;
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path, check_path;
  bool quick = false;
  bench::ObsOutputs obs_out;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--json" && i + 1 < argc) json_path = argv[++i];
    else if (a == "--check" && i + 1 < argc) check_path = argv[++i];
    else if (a == "--quick") quick = true;
    else if (obs_out.parse_flag(argc, argv, i)) continue;
    else {
      std::cerr << "unknown flag: " << a << "\n";
      return 2;
    }
  }
  obs_out.start();

  int failures = 0;

  // --- determinism: digest-identical across 1/2/8 threads ----------------
  const std::uint64_t d1 = run_digest_schedule(1);
  const std::uint64_t d2 = run_digest_schedule(2);
  const std::uint64_t d8 = run_digest_schedule(8);
  const bool identical = d1 == d2 && d2 == d8;
  std::ostringstream dhex;
  dhex << std::hex << d1;
  std::cout << "driver-mode digest: 0x" << dhex.str() << " — "
            << (identical ? "bit-identical across 1/2/8 threads\n"
                          : "MISMATCH across thread counts\n");
  if (!identical) ++failures;

  // --- closed model ------------------------------------------------------
  const SegmentedChannel ch = make_channel();
  const std::vector<ConnectionSet> pool = make_pool(ch, 32, 42);
  const int per_client = quick ? 300 : 1500;
  const std::vector<int> concurrencies = {1, 4, 16};

  struct ClosedRow {
    int clients;
    ClosedResult r;
  };
  std::vector<ClosedRow> closed;
  double saturation = 0.0;
  double fairness = 0.0;
  io::Table ct({"clients", "req/s", "p50 ms", "p99 ms", "p999 ms"});
  for (const int c : concurrencies) {
    const bool split = c == concurrencies.back();
    const ClosedResult r = run_closed(pool, c, per_client, split);
    saturation = std::max(saturation, r.rps);
    if (split) {
      const double lo = static_cast<double>(
          std::min(r.served_alice, r.served_bob));
      const double hi = static_cast<double>(
          std::max<std::uint64_t>(std::max(r.served_alice, r.served_bob), 1));
      fairness = lo / hi;
    }
    ct.add_row({std::to_string(c), io::Table::num(r.rps, 0),
                io::Table::num(r.lat.p50, 4), io::Table::num(r.lat.p99, 4),
                io::Table::num(r.lat.p999, 4)});
    closed.push_back({c, r});
  }
  std::cout << "\nclosed model (" << per_client << " requests/user)\n";
  ct.print(std::cout);
  std::cout << "saturation: " << io::Table::num(saturation, 0)
            << " req/s; two-tenant fairness at c=" << concurrencies.back()
            << ": " << io::Table::num(fairness, 3) << "\n";

  // --- open model: 1.25x saturation against a bounded queue --------------
  const double rate = std::max(1000.0, 1.25 * saturation);
  const int total_open = quick ? 4000 : 20000;
  const OpenResult open = run_open(pool, rate, total_open);
  std::cout << "\nopen model (offered " << io::Table::num(open.rate_rps, 0)
            << " req/s, queue 512)\n";
  io::Table ot({"offered/s", "served/s", "rejected", "p50 ms", "p99 ms",
                "p999 ms"});
  ot.add_row({io::Table::num(open.rate_rps, 0), io::Table::num(open.rps, 0),
              std::to_string(open.rejected) + "/" +
                  std::to_string(open.submitted),
              io::Table::num(open.lat.p50, 4), io::Table::num(open.lat.p99, 4),
              io::Table::num(open.lat.p999, 4)});
  ot.print(std::cout);
  if (!open.accounted) {
    std::cout << "FAIL: open-model accounting broken (served + rejected != "
                 "submitted)\n";
    ++failures;
  }
  if (!open.rejections_typed) {
    std::cout << "FAIL: open-model rejection was not typed "
                 "kQueueFull/kBudgetExhausted\n";
    ++failures;
  }

  // engine cache state of a fresh service over the same pool, for the
  // shared perf-JSON schema.
  engine::CacheStats cache{};
  {
    const SegmentedChannel ch2 = make_channel();
    svc::RoutingService svc(ch2);
    std::vector<std::future<svc::SvcResponse>> futs;
    for (int i = 0; i < 2; ++i) {
      for (const ConnectionSet& cs : pool) {
        svc::SvcRequest rq;
        rq.tenant = "warm";
        rq.connections = cs;
        futs.push_back(svc.submit(std::move(rq)));
        svc.tick();
      }
    }
    svc.stop(svc::RoutingService::StopMode::kDrain);
    for (auto& f : futs) (void)f.get();
    cache = svc.engine().cache_stats();
  }

  obs_out.finish(std::cout);

  // --- JSON emission -----------------------------------------------------
  std::ostringstream js;
  js << "{\n  \"bench\": \"svc\",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < closed.size(); ++i) {
    const ClosedRow& cr = closed[i];
    js << "    {\"key\": \"svc/closed/c" << cr.clients
       << "\", \"rps\": " << fmt(cr.r.rps)
       << ", \"p50_ms\": " << fmt(cr.r.lat.p50)
       << ", \"p99_ms\": " << fmt(cr.r.lat.p99)
       << ", \"p999_ms\": " << fmt(cr.r.lat.p999) << "},\n";
  }
  js << "    {\"key\": \"svc/open\", \"rate_rps\": " << fmt(open.rate_rps)
     << ", \"rps\": " << fmt(open.rps)
     << ", \"p50_ms\": " << fmt(open.lat.p50)
     << ", \"p99_ms\": " << fmt(open.lat.p99)
     << ", \"p999_ms\": " << fmt(open.lat.p999)
     << ", \"rejected_frac\": "
     << fmt(open.submitted
                ? static_cast<double>(open.rejected) /
                      static_cast<double>(open.submitted)
                : 0.0)
     << "}\n  ],\n";
  js << "  \"hardware_threads\": " << util::hardware_threads() << ",\n";
  js << "  \"digest\": \"0x" << dhex.str() << "\",\n";
  js << "  \"identical\": " << (identical ? "true" : "false") << ",\n";
  js << "  \"saturation_rps\": " << fmt(saturation) << ",\n";
  js << "  \"fairness\": " << fmt(fairness) << ",\n";
  js << "  "
     << bench::engine_cache_json(cache.hits, cache.misses, cache.evictions)
     << "\n}\n";

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << js.str();
    std::cout << "\nwrote " << json_path << "\n";
  }

  // --- Baseline gates ----------------------------------------------------
  if (!check_path.empty()) {
    std::ifstream in(check_path);
    if (!in) {
      std::cerr << "cannot read baseline " << check_path << "\n";
      return 2;
    }
    bench::Baseline base{std::string(std::istreambuf_iterator<char>(in),
                                     std::istreambuf_iterator<char>())};
    std::cout << "\nbaseline check vs " << check_path << "\n";
    const auto gate_row = [&](const std::string& key, double rps, double p99) {
      const auto brps = base.field(key, "rps");
      if (brps && *brps > 0 && rps < *brps / 5.0) {
        std::cout << "  FAIL " << key << ": " << rps << " req/s < baseline/5 ("
                  << *brps << ")\n";
        ++failures;
      }
      const auto bp99 = base.field(key, "p99_ms");
      if (bp99 && *bp99 > 0 && p99 > 5.0 * *bp99) {
        std::cout << "  FAIL " << key << ": p99 " << p99 << " ms > 5x baseline "
                  << *bp99 << " ms\n";
        ++failures;
      }
    };
    for (const ClosedRow& cr : closed) {
      gate_row("svc/closed/c" + std::to_string(cr.clients), cr.r.rps,
               cr.r.lat.p99);
    }
    gate_row("svc/open", open.rps, open.lat.p99);
    if (fairness < 0.5) {
      std::cout << "  FAIL: two-tenant fairness " << fairness << " < 0.5\n";
      ++failures;
    }
    std::cout << (failures == 0 ? "baseline check passed\n"
                                : "baseline check FAILED\n");
  }
  return failures == 0 ? 0 : 1;
}
