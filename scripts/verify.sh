#!/usr/bin/env bash
# One-shot verification: everything a change must survive before merge.
#
#   1. tier-1: default configure, full build, complete ctest run
#      (unit + property tests, tsan_smoke sub-build, perf gates);
#   2. an SEGROUTE_OBS=OFF configure + build + test run, proving the
#      tree compiles and passes with all instrumentation compiled out;
#   3. explicit re-runs of the tsan_smoke and perf_obs/perf_smoke/
#      perf_engine gates from the tier-1 build, so a perf or race
#      regression fails loudly even if step 1's summary scrolled by.
#
# Usage: scripts/verify.sh [build-dir]     (default: build)
# Exits nonzero on the first failing step.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== [1/3] tier-1: configure + build + ctest ($BUILD) =="
cmake -B "$BUILD" -S .
cmake --build "$BUILD" -j "$JOBS"
ctest --test-dir "$BUILD" --output-on-failure -j "$JOBS"

echo "== [2/3] SEGROUTE_OBS=OFF build + ctest ($BUILD-obs-off) =="
cmake -B "$BUILD-obs-off" -S . -DSEGROUTE_OBS=OFF
cmake --build "$BUILD-obs-off" -j "$JOBS"
ctest --test-dir "$BUILD-obs-off" --output-on-failure -j "$JOBS" \
  -E 'tsan_smoke'  # the tsan sub-build is identical to tier-1's; skip the repeat

echo "== [3/3] sanitizer + perf gates (tier-1 build) =="
ctest --test-dir "$BUILD" --output-on-failure \
  -R '^(tsan_smoke|perf_smoke|perf_engine|perf_fabric|perf_obs|perf_svc|perf_incremental|svc_smoke)$'

echo "verify.sh: all gates passed"
