file(REMOVE_RECURSE
  "libsegroute.a"
)
