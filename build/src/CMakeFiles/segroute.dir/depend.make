# Empty dependencies file for segroute.
# This may be replaced when dependencies are built.
