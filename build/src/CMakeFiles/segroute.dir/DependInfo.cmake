
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/alg/anneal_route.cpp" "src/CMakeFiles/segroute.dir/alg/anneal_route.cpp.o" "gcc" "src/CMakeFiles/segroute.dir/alg/anneal_route.cpp.o.d"
  "/root/repo/src/alg/branch_bound.cpp" "src/CMakeFiles/segroute.dir/alg/branch_bound.cpp.o" "gcc" "src/CMakeFiles/segroute.dir/alg/branch_bound.cpp.o.d"
  "/root/repo/src/alg/capacity.cpp" "src/CMakeFiles/segroute.dir/alg/capacity.cpp.o" "gcc" "src/CMakeFiles/segroute.dir/alg/capacity.cpp.o.d"
  "/root/repo/src/alg/decompose.cpp" "src/CMakeFiles/segroute.dir/alg/decompose.cpp.o" "gcc" "src/CMakeFiles/segroute.dir/alg/decompose.cpp.o.d"
  "/root/repo/src/alg/dp.cpp" "src/CMakeFiles/segroute.dir/alg/dp.cpp.o" "gcc" "src/CMakeFiles/segroute.dir/alg/dp.cpp.o.d"
  "/root/repo/src/alg/exhaustive.cpp" "src/CMakeFiles/segroute.dir/alg/exhaustive.cpp.o" "gcc" "src/CMakeFiles/segroute.dir/alg/exhaustive.cpp.o.d"
  "/root/repo/src/alg/generalized_dp.cpp" "src/CMakeFiles/segroute.dir/alg/generalized_dp.cpp.o" "gcc" "src/CMakeFiles/segroute.dir/alg/generalized_dp.cpp.o.d"
  "/root/repo/src/alg/greedy1.cpp" "src/CMakeFiles/segroute.dir/alg/greedy1.cpp.o" "gcc" "src/CMakeFiles/segroute.dir/alg/greedy1.cpp.o.d"
  "/root/repo/src/alg/greedy2track.cpp" "src/CMakeFiles/segroute.dir/alg/greedy2track.cpp.o" "gcc" "src/CMakeFiles/segroute.dir/alg/greedy2track.cpp.o.d"
  "/root/repo/src/alg/left_edge.cpp" "src/CMakeFiles/segroute.dir/alg/left_edge.cpp.o" "gcc" "src/CMakeFiles/segroute.dir/alg/left_edge.cpp.o.d"
  "/root/repo/src/alg/lp_route.cpp" "src/CMakeFiles/segroute.dir/alg/lp_route.cpp.o" "gcc" "src/CMakeFiles/segroute.dir/alg/lp_route.cpp.o.d"
  "/root/repo/src/alg/match1.cpp" "src/CMakeFiles/segroute.dir/alg/match1.cpp.o" "gcc" "src/CMakeFiles/segroute.dir/alg/match1.cpp.o.d"
  "/root/repo/src/alg/online.cpp" "src/CMakeFiles/segroute.dir/alg/online.cpp.o" "gcc" "src/CMakeFiles/segroute.dir/alg/online.cpp.o.d"
  "/root/repo/src/core/channel.cpp" "src/CMakeFiles/segroute.dir/core/channel.cpp.o" "gcc" "src/CMakeFiles/segroute.dir/core/channel.cpp.o.d"
  "/root/repo/src/core/connection.cpp" "src/CMakeFiles/segroute.dir/core/connection.cpp.o" "gcc" "src/CMakeFiles/segroute.dir/core/connection.cpp.o.d"
  "/root/repo/src/core/generalized.cpp" "src/CMakeFiles/segroute.dir/core/generalized.cpp.o" "gcc" "src/CMakeFiles/segroute.dir/core/generalized.cpp.o.d"
  "/root/repo/src/core/routing.cpp" "src/CMakeFiles/segroute.dir/core/routing.cpp.o" "gcc" "src/CMakeFiles/segroute.dir/core/routing.cpp.o.d"
  "/root/repo/src/core/segment.cpp" "src/CMakeFiles/segroute.dir/core/segment.cpp.o" "gcc" "src/CMakeFiles/segroute.dir/core/segment.cpp.o.d"
  "/root/repo/src/core/stats.cpp" "src/CMakeFiles/segroute.dir/core/stats.cpp.o" "gcc" "src/CMakeFiles/segroute.dir/core/stats.cpp.o.d"
  "/root/repo/src/core/track.cpp" "src/CMakeFiles/segroute.dir/core/track.cpp.o" "gcc" "src/CMakeFiles/segroute.dir/core/track.cpp.o.d"
  "/root/repo/src/core/weights.cpp" "src/CMakeFiles/segroute.dir/core/weights.cpp.o" "gcc" "src/CMakeFiles/segroute.dir/core/weights.cpp.o.d"
  "/root/repo/src/fpga/delay.cpp" "src/CMakeFiles/segroute.dir/fpga/delay.cpp.o" "gcc" "src/CMakeFiles/segroute.dir/fpga/delay.cpp.o.d"
  "/root/repo/src/fpga/device.cpp" "src/CMakeFiles/segroute.dir/fpga/device.cpp.o" "gcc" "src/CMakeFiles/segroute.dir/fpga/device.cpp.o.d"
  "/root/repo/src/fpga/netlist.cpp" "src/CMakeFiles/segroute.dir/fpga/netlist.cpp.o" "gcc" "src/CMakeFiles/segroute.dir/fpga/netlist.cpp.o.d"
  "/root/repo/src/fpga/place.cpp" "src/CMakeFiles/segroute.dir/fpga/place.cpp.o" "gcc" "src/CMakeFiles/segroute.dir/fpga/place.cpp.o.d"
  "/root/repo/src/gen/fixtures.cpp" "src/CMakeFiles/segroute.dir/gen/fixtures.cpp.o" "gcc" "src/CMakeFiles/segroute.dir/gen/fixtures.cpp.o.d"
  "/root/repo/src/gen/segmentation.cpp" "src/CMakeFiles/segroute.dir/gen/segmentation.cpp.o" "gcc" "src/CMakeFiles/segroute.dir/gen/segmentation.cpp.o.d"
  "/root/repo/src/gen/suite.cpp" "src/CMakeFiles/segroute.dir/gen/suite.cpp.o" "gcc" "src/CMakeFiles/segroute.dir/gen/suite.cpp.o.d"
  "/root/repo/src/gen/workload.cpp" "src/CMakeFiles/segroute.dir/gen/workload.cpp.o" "gcc" "src/CMakeFiles/segroute.dir/gen/workload.cpp.o.d"
  "/root/repo/src/io/json.cpp" "src/CMakeFiles/segroute.dir/io/json.cpp.o" "gcc" "src/CMakeFiles/segroute.dir/io/json.cpp.o.d"
  "/root/repo/src/io/render.cpp" "src/CMakeFiles/segroute.dir/io/render.cpp.o" "gcc" "src/CMakeFiles/segroute.dir/io/render.cpp.o.d"
  "/root/repo/src/io/svg.cpp" "src/CMakeFiles/segroute.dir/io/svg.cpp.o" "gcc" "src/CMakeFiles/segroute.dir/io/svg.cpp.o.d"
  "/root/repo/src/io/table.cpp" "src/CMakeFiles/segroute.dir/io/table.cpp.o" "gcc" "src/CMakeFiles/segroute.dir/io/table.cpp.o.d"
  "/root/repo/src/io/text.cpp" "src/CMakeFiles/segroute.dir/io/text.cpp.o" "gcc" "src/CMakeFiles/segroute.dir/io/text.cpp.o.d"
  "/root/repo/src/lp/simplex.cpp" "src/CMakeFiles/segroute.dir/lp/simplex.cpp.o" "gcc" "src/CMakeFiles/segroute.dir/lp/simplex.cpp.o.d"
  "/root/repo/src/match/hopcroft_karp.cpp" "src/CMakeFiles/segroute.dir/match/hopcroft_karp.cpp.o" "gcc" "src/CMakeFiles/segroute.dir/match/hopcroft_karp.cpp.o.d"
  "/root/repo/src/match/hungarian.cpp" "src/CMakeFiles/segroute.dir/match/hungarian.cpp.o" "gcc" "src/CMakeFiles/segroute.dir/match/hungarian.cpp.o.d"
  "/root/repo/src/net/express.cpp" "src/CMakeFiles/segroute.dir/net/express.cpp.o" "gcc" "src/CMakeFiles/segroute.dir/net/express.cpp.o.d"
  "/root/repo/src/npc/nmts.cpp" "src/CMakeFiles/segroute.dir/npc/nmts.cpp.o" "gcc" "src/CMakeFiles/segroute.dir/npc/nmts.cpp.o.d"
  "/root/repo/src/npc/propositions.cpp" "src/CMakeFiles/segroute.dir/npc/propositions.cpp.o" "gcc" "src/CMakeFiles/segroute.dir/npc/propositions.cpp.o.d"
  "/root/repo/src/npc/reduction.cpp" "src/CMakeFiles/segroute.dir/npc/reduction.cpp.o" "gcc" "src/CMakeFiles/segroute.dir/npc/reduction.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
