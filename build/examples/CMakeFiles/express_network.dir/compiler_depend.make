# Empty compiler generated dependencies file for express_network.
# This may be replaced when dependencies are built.
