file(REMOVE_RECURSE
  "CMakeFiles/express_network.dir/express_network.cpp.o"
  "CMakeFiles/express_network.dir/express_network.cpp.o.d"
  "express_network"
  "express_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/express_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
