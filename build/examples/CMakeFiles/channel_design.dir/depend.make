# Empty dependencies file for channel_design.
# This may be replaced when dependencies are built.
