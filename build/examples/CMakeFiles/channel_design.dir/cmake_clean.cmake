file(REMOVE_RECURSE
  "CMakeFiles/channel_design.dir/channel_design.cpp.o"
  "CMakeFiles/channel_design.dir/channel_design.cpp.o.d"
  "channel_design"
  "channel_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/channel_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
