file(REMOVE_RECURSE
  "CMakeFiles/incremental_edit.dir/incremental_edit.cpp.o"
  "CMakeFiles/incremental_edit.dir/incremental_edit.cpp.o.d"
  "incremental_edit"
  "incremental_edit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incremental_edit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
