# Empty compiler generated dependencies file for incremental_edit.
# This may be replaced when dependencies are built.
