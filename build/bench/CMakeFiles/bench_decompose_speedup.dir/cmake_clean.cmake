file(REMOVE_RECURSE
  "CMakeFiles/bench_decompose_speedup.dir/bench_decompose_speedup.cpp.o"
  "CMakeFiles/bench_decompose_speedup.dir/bench_decompose_speedup.cpp.o.d"
  "bench_decompose_speedup"
  "bench_decompose_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_decompose_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
