# Empty compiler generated dependencies file for bench_decompose_speedup.
# This may be replaced when dependencies are built.
