file(REMOVE_RECURSE
  "CMakeFiles/bench_greedy2_exactness.dir/bench_greedy2_exactness.cpp.o"
  "CMakeFiles/bench_greedy2_exactness.dir/bench_greedy2_exactness.cpp.o.d"
  "bench_greedy2_exactness"
  "bench_greedy2_exactness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_greedy2_exactness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
