file(REMOVE_RECURSE
  "CMakeFiles/bench_extra_tracks.dir/bench_extra_tracks.cpp.o"
  "CMakeFiles/bench_extra_tracks.dir/bench_extra_tracks.cpp.o.d"
  "bench_extra_tracks"
  "bench_extra_tracks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extra_tracks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
