# Empty dependencies file for bench_extra_tracks.
# This may be replaced when dependencies are built.
