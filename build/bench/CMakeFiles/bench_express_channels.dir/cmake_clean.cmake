file(REMOVE_RECURSE
  "CMakeFiles/bench_express_channels.dir/bench_express_channels.cpp.o"
  "CMakeFiles/bench_express_channels.dir/bench_express_channels.cpp.o.d"
  "bench_express_channels"
  "bench_express_channels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_express_channels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
