# Empty compiler generated dependencies file for bench_express_channels.
# This may be replaced when dependencies are built.
