file(REMOVE_RECURSE
  "CMakeFiles/bench_heuristics_scale.dir/bench_heuristics_scale.cpp.o"
  "CMakeFiles/bench_heuristics_scale.dir/bench_heuristics_scale.cpp.o.d"
  "bench_heuristics_scale"
  "bench_heuristics_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_heuristics_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
