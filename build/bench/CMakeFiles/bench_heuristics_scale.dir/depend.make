# Empty dependencies file for bench_heuristics_scale.
# This may be replaced when dependencies are built.
