# Empty dependencies file for bench_fig4_generalized.
# This may be replaced when dependencies are built.
