file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_generalized.dir/bench_fig4_generalized.cpp.o"
  "CMakeFiles/bench_fig4_generalized.dir/bench_fig4_generalized.cpp.o.d"
  "bench_fig4_generalized"
  "bench_fig4_generalized.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_generalized.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
