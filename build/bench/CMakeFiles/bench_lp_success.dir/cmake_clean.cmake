file(REMOVE_RECURSE
  "CMakeFiles/bench_lp_success.dir/bench_lp_success.cpp.o"
  "CMakeFiles/bench_lp_success.dir/bench_lp_success.cpp.o.d"
  "bench_lp_success"
  "bench_lp_success.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lp_success.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
