# Empty dependencies file for bench_lp_success.
# This may be replaced when dependencies are built.
