# Empty dependencies file for bench_generalized_capacity.
# This may be replaced when dependencies are built.
