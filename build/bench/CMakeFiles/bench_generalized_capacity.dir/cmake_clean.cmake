file(REMOVE_RECURSE
  "CMakeFiles/bench_generalized_capacity.dir/bench_generalized_capacity.cpp.o"
  "CMakeFiles/bench_generalized_capacity.dir/bench_generalized_capacity.cpp.o.d"
  "bench_generalized_capacity"
  "bench_generalized_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_generalized_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
