file(REMOVE_RECURSE
  "CMakeFiles/bench_routability_curves.dir/bench_routability_curves.cpp.o"
  "CMakeFiles/bench_routability_curves.dir/bench_routability_curves.cpp.o.d"
  "bench_routability_curves"
  "bench_routability_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_routability_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
