# Empty compiler generated dependencies file for bench_routability_curves.
# This may be replaced when dependencies are built.
