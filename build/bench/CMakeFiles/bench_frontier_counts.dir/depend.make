# Empty dependencies file for bench_frontier_counts.
# This may be replaced when dependencies are built.
