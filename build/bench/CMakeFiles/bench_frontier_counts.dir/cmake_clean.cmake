file(REMOVE_RECURSE
  "CMakeFiles/bench_frontier_counts.dir/bench_frontier_counts.cpp.o"
  "CMakeFiles/bench_frontier_counts.dir/bench_frontier_counts.cpp.o.d"
  "bench_frontier_counts"
  "bench_frontier_counts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_frontier_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
