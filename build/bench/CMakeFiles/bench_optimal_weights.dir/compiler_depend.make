# Empty compiler generated dependencies file for bench_optimal_weights.
# This may be replaced when dependencies are built.
