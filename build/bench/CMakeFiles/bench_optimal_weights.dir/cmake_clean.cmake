file(REMOVE_RECURSE
  "CMakeFiles/bench_optimal_weights.dir/bench_optimal_weights.cpp.o"
  "CMakeFiles/bench_optimal_weights.dir/bench_optimal_weights.cpp.o.d"
  "bench_optimal_weights"
  "bench_optimal_weights.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_optimal_weights.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
