file(REMOVE_RECURSE
  "CMakeFiles/bench_example1_reduction.dir/bench_example1_reduction.cpp.o"
  "CMakeFiles/bench_example1_reduction.dir/bench_example1_reduction.cpp.o.d"
  "bench_example1_reduction"
  "bench_example1_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_example1_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
