# Empty dependencies file for bench_example1_reduction.
# This may be replaced when dependencies are built.
