
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_anneal_route.cpp" "tests/CMakeFiles/segroute_tests.dir/test_anneal_route.cpp.o" "gcc" "tests/CMakeFiles/segroute_tests.dir/test_anneal_route.cpp.o.d"
  "/root/repo/tests/test_branch_bound.cpp" "tests/CMakeFiles/segroute_tests.dir/test_branch_bound.cpp.o" "gcc" "tests/CMakeFiles/segroute_tests.dir/test_branch_bound.cpp.o.d"
  "/root/repo/tests/test_capacity.cpp" "tests/CMakeFiles/segroute_tests.dir/test_capacity.cpp.o" "gcc" "tests/CMakeFiles/segroute_tests.dir/test_capacity.cpp.o.d"
  "/root/repo/tests/test_channel.cpp" "tests/CMakeFiles/segroute_tests.dir/test_channel.cpp.o" "gcc" "tests/CMakeFiles/segroute_tests.dir/test_channel.cpp.o.d"
  "/root/repo/tests/test_connection.cpp" "tests/CMakeFiles/segroute_tests.dir/test_connection.cpp.o" "gcc" "tests/CMakeFiles/segroute_tests.dir/test_connection.cpp.o.d"
  "/root/repo/tests/test_decompose.cpp" "tests/CMakeFiles/segroute_tests.dir/test_decompose.cpp.o" "gcc" "tests/CMakeFiles/segroute_tests.dir/test_decompose.cpp.o.d"
  "/root/repo/tests/test_delay.cpp" "tests/CMakeFiles/segroute_tests.dir/test_delay.cpp.o" "gcc" "tests/CMakeFiles/segroute_tests.dir/test_delay.cpp.o.d"
  "/root/repo/tests/test_device.cpp" "tests/CMakeFiles/segroute_tests.dir/test_device.cpp.o" "gcc" "tests/CMakeFiles/segroute_tests.dir/test_device.cpp.o.d"
  "/root/repo/tests/test_dp.cpp" "tests/CMakeFiles/segroute_tests.dir/test_dp.cpp.o" "gcc" "tests/CMakeFiles/segroute_tests.dir/test_dp.cpp.o.d"
  "/root/repo/tests/test_express.cpp" "tests/CMakeFiles/segroute_tests.dir/test_express.cpp.o" "gcc" "tests/CMakeFiles/segroute_tests.dir/test_express.cpp.o.d"
  "/root/repo/tests/test_fixtures.cpp" "tests/CMakeFiles/segroute_tests.dir/test_fixtures.cpp.o" "gcc" "tests/CMakeFiles/segroute_tests.dir/test_fixtures.cpp.o.d"
  "/root/repo/tests/test_generalized_dp.cpp" "tests/CMakeFiles/segroute_tests.dir/test_generalized_dp.cpp.o" "gcc" "tests/CMakeFiles/segroute_tests.dir/test_generalized_dp.cpp.o.d"
  "/root/repo/tests/test_generalized_routing.cpp" "tests/CMakeFiles/segroute_tests.dir/test_generalized_routing.cpp.o" "gcc" "tests/CMakeFiles/segroute_tests.dir/test_generalized_routing.cpp.o.d"
  "/root/repo/tests/test_greedy1.cpp" "tests/CMakeFiles/segroute_tests.dir/test_greedy1.cpp.o" "gcc" "tests/CMakeFiles/segroute_tests.dir/test_greedy1.cpp.o.d"
  "/root/repo/tests/test_greedy2track.cpp" "tests/CMakeFiles/segroute_tests.dir/test_greedy2track.cpp.o" "gcc" "tests/CMakeFiles/segroute_tests.dir/test_greedy2track.cpp.o.d"
  "/root/repo/tests/test_hopcroft_karp.cpp" "tests/CMakeFiles/segroute_tests.dir/test_hopcroft_karp.cpp.o" "gcc" "tests/CMakeFiles/segroute_tests.dir/test_hopcroft_karp.cpp.o.d"
  "/root/repo/tests/test_hungarian.cpp" "tests/CMakeFiles/segroute_tests.dir/test_hungarian.cpp.o" "gcc" "tests/CMakeFiles/segroute_tests.dir/test_hungarian.cpp.o.d"
  "/root/repo/tests/test_io.cpp" "tests/CMakeFiles/segroute_tests.dir/test_io.cpp.o" "gcc" "tests/CMakeFiles/segroute_tests.dir/test_io.cpp.o.d"
  "/root/repo/tests/test_json.cpp" "tests/CMakeFiles/segroute_tests.dir/test_json.cpp.o" "gcc" "tests/CMakeFiles/segroute_tests.dir/test_json.cpp.o.d"
  "/root/repo/tests/test_left_edge.cpp" "tests/CMakeFiles/segroute_tests.dir/test_left_edge.cpp.o" "gcc" "tests/CMakeFiles/segroute_tests.dir/test_left_edge.cpp.o.d"
  "/root/repo/tests/test_lp_optimal.cpp" "tests/CMakeFiles/segroute_tests.dir/test_lp_optimal.cpp.o" "gcc" "tests/CMakeFiles/segroute_tests.dir/test_lp_optimal.cpp.o.d"
  "/root/repo/tests/test_lp_route.cpp" "tests/CMakeFiles/segroute_tests.dir/test_lp_route.cpp.o" "gcc" "tests/CMakeFiles/segroute_tests.dir/test_lp_route.cpp.o.d"
  "/root/repo/tests/test_match1.cpp" "tests/CMakeFiles/segroute_tests.dir/test_match1.cpp.o" "gcc" "tests/CMakeFiles/segroute_tests.dir/test_match1.cpp.o.d"
  "/root/repo/tests/test_netlist_place.cpp" "tests/CMakeFiles/segroute_tests.dir/test_netlist_place.cpp.o" "gcc" "tests/CMakeFiles/segroute_tests.dir/test_netlist_place.cpp.o.d"
  "/root/repo/tests/test_nmts.cpp" "tests/CMakeFiles/segroute_tests.dir/test_nmts.cpp.o" "gcc" "tests/CMakeFiles/segroute_tests.dir/test_nmts.cpp.o.d"
  "/root/repo/tests/test_online.cpp" "tests/CMakeFiles/segroute_tests.dir/test_online.cpp.o" "gcc" "tests/CMakeFiles/segroute_tests.dir/test_online.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/segroute_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/segroute_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_propositions.cpp" "tests/CMakeFiles/segroute_tests.dir/test_propositions.cpp.o" "gcc" "tests/CMakeFiles/segroute_tests.dir/test_propositions.cpp.o.d"
  "/root/repo/tests/test_reduction.cpp" "tests/CMakeFiles/segroute_tests.dir/test_reduction.cpp.o" "gcc" "tests/CMakeFiles/segroute_tests.dir/test_reduction.cpp.o.d"
  "/root/repo/tests/test_routing.cpp" "tests/CMakeFiles/segroute_tests.dir/test_routing.cpp.o" "gcc" "tests/CMakeFiles/segroute_tests.dir/test_routing.cpp.o.d"
  "/root/repo/tests/test_segment.cpp" "tests/CMakeFiles/segroute_tests.dir/test_segment.cpp.o" "gcc" "tests/CMakeFiles/segroute_tests.dir/test_segment.cpp.o.d"
  "/root/repo/tests/test_segmentation.cpp" "tests/CMakeFiles/segroute_tests.dir/test_segmentation.cpp.o" "gcc" "tests/CMakeFiles/segroute_tests.dir/test_segmentation.cpp.o.d"
  "/root/repo/tests/test_simplex.cpp" "tests/CMakeFiles/segroute_tests.dir/test_simplex.cpp.o" "gcc" "tests/CMakeFiles/segroute_tests.dir/test_simplex.cpp.o.d"
  "/root/repo/tests/test_stats_svg.cpp" "tests/CMakeFiles/segroute_tests.dir/test_stats_svg.cpp.o" "gcc" "tests/CMakeFiles/segroute_tests.dir/test_stats_svg.cpp.o.d"
  "/root/repo/tests/test_suite_instances.cpp" "tests/CMakeFiles/segroute_tests.dir/test_suite_instances.cpp.o" "gcc" "tests/CMakeFiles/segroute_tests.dir/test_suite_instances.cpp.o.d"
  "/root/repo/tests/test_track.cpp" "tests/CMakeFiles/segroute_tests.dir/test_track.cpp.o" "gcc" "tests/CMakeFiles/segroute_tests.dir/test_track.cpp.o.d"
  "/root/repo/tests/test_weights.cpp" "tests/CMakeFiles/segroute_tests.dir/test_weights.cpp.o" "gcc" "tests/CMakeFiles/segroute_tests.dir/test_weights.cpp.o.d"
  "/root/repo/tests/test_workload.cpp" "tests/CMakeFiles/segroute_tests.dir/test_workload.cpp.o" "gcc" "tests/CMakeFiles/segroute_tests.dir/test_workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/segroute.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
