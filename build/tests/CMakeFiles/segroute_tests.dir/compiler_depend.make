# Empty compiler generated dependencies file for segroute_tests.
# This may be replaced when dependencies are built.
