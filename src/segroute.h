// Umbrella header for the segroute library: segmented channel routing for
// channeled FPGAs, reproducing Roychowdhury, Greene & El Gamal,
// "Segmented Channel Routing" (DAC 1990 / IEEE TCAD Jan 1993).
//
// Quick start:
//   #include "segroute.h"
//   using namespace segroute;
//   auto ch = SegmentedChannel::identical(4, 12, {4, 8});
//   ConnectionSet cs;
//   cs.add(2, 7, "net0");
//   auto report = harness::robust_route(ch, cs);
//   if (report) std::cout << io::render(ch, cs, report.routing);
#pragma once

#include "alg/anneal_route.h"
#include "alg/branch_bound.h"
#include "alg/capacity.h"
#include "alg/decompose.h"
#include "alg/dp.h"
#include "alg/exhaustive.h"
#include "alg/generalized_dp.h"
#include "alg/greedy1.h"
#include "alg/greedy2track.h"
#include "alg/left_edge.h"
#include "alg/lp_route.h"
#include "alg/match1.h"
#include "alg/online.h"
#include "alg/registry.h"
#include "alg/result.h"
#include "core/channel.h"
#include "core/channel_index.h"
#include "core/connection.h"
#include "core/generalized.h"
#include "core/router.h"
#include "core/routing.h"
#include "core/segment.h"
#include "core/stats.h"
#include "core/track.h"
#include "core/types.h"
#include "core/weights.h"
#include "engine/batch.h"
#include "engine/scratch.h"
#include "fpga/delay.h"
#include "fpga/device.h"
#include "fpga/netlist.h"
#include "fpga/place.h"
#include "gen/fixtures.h"
#include "harness/budget.h"
#include "harness/fault.h"
#include "harness/robust_route.h"
#include "harness/verify.h"
#include "gen/segmentation.h"
#include "gen/suite.h"
#include "gen/workload.h"
#include "io/json.h"
#include "io/render.h"
#include "io/svg.h"
#include "io/table.h"
#include "io/text.h"
#include "net/express.h"
#include "npc/nmts.h"
#include "npc/propositions.h"
#include "npc/reduction.h"
#include "obs/clock.h"
#include "obs/instrument.h"
#include "obs/metrics.h"
#include "obs/span.h"
