// RoutingService: the routing library as a long-running, multi-tenant
// service.
//
// Everything below the service boundary already exists: the registry's
// RouteRequest/RouterOptions contract (core/router.h), the memoizing
// BatchRouter (engine/batch.h), the deterministic ThreadPool
// (util/pool.h), Budget-bounded routing (harness/budget.h) and the obs
// metrics registry (obs/metrics.h). This layer turns them into a system
// that serves concurrent tenants:
//
//   submit()  --> bounded FIFO request queue --> tick() drains a window
//                 (admission control)            and routes it on the pool
//
// Admission control. submit() never blocks and never drops silently:
// a request is either accepted into the bounded queue or rejected
// *immediately* with a typed Admit code (queue full, per-tenant
// in-flight cap, shutdown, malformed). A rejected response also carries
// RouteResult::failure = kBudgetExhausted — the service's capacity is a
// budget, and rejections reuse the library's established taxonomy so
// all-or-nothing consumers branch on one enum.
//
// Per-tenant slicing. Each accepted request is routed under an
// effective harness::Budget: the request's own budget, tightened by the
// tenant's tick slice (SvcOptions::slice_ticks, overridable per tenant)
// and, in live mode, by SvcOptions::slice_ms. One tenant's NP-hard
// instances therefore cost bounded work per request and cannot starve
// another tenant's sub-microsecond cache hits. With
// SvcOptions::serve_cached_under_budget (default on), a budgeted
// request may still be *served from* the shared memo cache — a cached
// entry is a pure result computed under no budget, so serving it is
// strictly better than re-deriving a kBudgetExhausted.
//
// Execution modes.
//   - Driver mode (deterministic): the caller invokes tick() directly.
//     Time is a virtual tick counter, latency is measured in ticks, and
//     per-request budgets are tick caps — no wall clock enters any
//     outcome. Results, admission decisions and tick latencies are a
//     pure function of the submission sequence, bit-identical for every
//     SvcOptions::threads (the digest gates in tests/ and bench_svc
//     pin this at 1/2/8 threads, including under TSan).
//   - Live mode: start() spawns one dispatcher thread that calls tick()
//     whenever the queue is non-empty; stop() drains (no request is
//     dropped without a typed response) or rejects the backlog.
//
// Determinism argument for driver mode. The queue is FIFO and submit()
// is called from the driving thread, so the drain order is fixed. Each
// tick routes its window in two phases over the pool's static
// partitioning: first every *pure* (unlimited-budget) request, then
// every budgeted one. Pure results are pure functions of the instance —
// concurrent duplicates compute identical entries, so cache insertion
// order cannot change any result. During the budgeted phase the cache
// is read-only (budget-limited results are never inserted), so whether
// a budgeted request hits depends only on which pure results exist,
// which the phase barrier made schedule-independent. Wall-clock fields
// (queue_ms/service_ms) are reported but excluded from response_digest.
//
// Live edits. rebind() re-points the shared engine at a structurally
// different channel; the service quiesces routing internally (the
// dispatch lock), so callers may invoke it concurrently with submit().
// invalidate(fp) forwards to the engine's fingerprint-delta-aware
// eviction and is safe at any time.
//
// Edit sessions. open_session() creates a stateful incremental routing
// (an alg::OnlineRouter on the substrate current at open time — a
// session *pins* its channel; a later rebind() affects batch requests
// only). A submission with `session` set is a delta edit: it rides the
// same admission control (tenant caps, queue bounds, budget slices —
// the slice bounds the DP fallback) and resolves to a SvcResponse
// carrying the proof-carrying RepairOutcome. Edits are applied
// *serially in window order* after the two routing phases of each tick,
// so session state is a pure function of the submission sequence and
// the driver-mode digest stays bit-identical across thread counts.
// Session fields fold into response digests only for session responses,
// leaving pure-batch digests (the committed bench baselines) unchanged.
//
// Metrics. The service publishes its own state — queue depth, accepted/
// rejected/served counts, per-tenant served counters, latency
// histograms, and the engine's per-shard cache health — directly into
// the obs registry each tick. These are product surface (the /metrics
// endpoint in svc/http.h serves them), not instrumentation, so they are
// published even in SEGROUTE_OBS=OFF builds; only the library-internal
// macro-based instrumentation compiles out.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "alg/delta.h"
#include "alg/online.h"
#include "alg/result.h"
#include "core/connection.h"
#include "core/routing.h"
#include "engine/batch.h"
#include "harness/budget.h"
#include "obs/metrics.h"
#include "util/pool.h"

namespace segroute::svc {

/// Typed admission outcome. Everything except kAccepted is decided
/// synchronously inside submit(), before any routing work.
enum class Admit {
  kAccepted = 0,
  kQueueFull,      // bounded queue at capacity — back off and retry
  kTenantLimit,    // tenant already has max_inflight_per_tenant requests
  kShuttingDown,   // stop() was called; no new work is admitted
  kInvalid,        // malformed request (empty tenant name)
};

const char* to_string(Admit a);

struct SvcOptions {
  /// Worker threads routing each drained window. The library-wide
  /// convention (shared with engine::BatchOptions::threads,
  /// alg::CapacityOptions::threads and fpga::FabricOptions::threads):
  /// 1 = serial, N > 1 = fixed, <= 0 = "auto" via
  /// util::hardware_threads(). Driver-mode results are bit-identical
  /// for every resolved value.
  int threads = 1;

  /// Bounded request queue: submissions beyond this depth are rejected
  /// with Admit::kQueueFull. Must be >= 1 (clamped).
  std::size_t queue_capacity = 1024;

  /// Per-tenant in-flight cap (queued + routing). 0 = unlimited.
  std::size_t max_inflight_per_tenant = 0;

  /// Requests drained and routed per tick. Must be >= 1 (clamped).
  std::size_t drain_window = 64;

  /// Default per-request tick-budget slice (harness::Budget::max_ticks)
  /// applied to every tenant without an override; 0 = unlimited. The
  /// deterministic slicing knob: tick caps are wall-clock-free.
  std::uint64_t slice_ticks = 0;

  /// Per-tenant overrides of slice_ticks.
  std::map<std::string, std::uint64_t> tenant_slice_ticks;

  /// Optional per-request wall-clock slice for live mode. Leave unset in
  /// driver mode — deadlines reintroduce the clock into outcomes.
  std::optional<std::chrono::milliseconds> slice_ms;

  /// Serve budgeted requests from the shared memo cache (see the file
  /// comment); sets EngineRouteOptions::allow_cached_when_budgeted.
  bool serve_cached_under_budget = true;

  /// Configuration of the shared BatchRouter. engine.threads is forced
  /// to 1 — the service's own pool parallelizes across requests, so the
  /// engine's inner pool must stay inline.
  engine::BatchOptions engine;
};

/// One routing request. `options` is the engine's hashable subset of the
/// registry wire contract (router name, K, weight, budget) — the same
/// shape PR 5 built for exactly this.
struct SvcRequest {
  std::string tenant;
  ConnectionSet connections;
  engine::EngineRouteOptions options;

  /// Edit-session id from open_session(), or 0 for a plain batch
  /// request. When set, `edit` is applied to that session (serially, in
  /// window order) instead of routing `connections`; the effective
  /// budget slice bounds the edit's DP fallback. A session id that is
  /// unknown or owned by a different tenant is rejected with
  /// Admit::kInvalid.
  std::uint64_t session = 0;
  alg::ChannelEdit edit;
};

/// The response: the routing outcome plus admission and queue/SLO
/// timing. Tick fields are virtual time (deterministic in driver mode);
/// ms fields are wall clock (live-mode SLOs) and never enter digests.
struct SvcResponse {
  std::uint64_t id = 0;
  std::string tenant;
  Admit admit = Admit::kAccepted;
  alg::RouteResult result;

  /// Substrate the request was routed on (0 for rejected requests).
  std::uint64_t fingerprint = 0;

  /// Session identity + the delta receipt, for session-edit responses
  /// (session == 0 for batch responses; both fields fold into the
  /// digest only when session != 0, so batch digests are unchanged).
  std::uint64_t session = 0;
  alg::RepairOutcome repair;

  std::uint64_t enqueue_tick = 0;
  std::uint64_t start_tick = 0;   // tick that drained the request
  std::uint64_t finish_tick = 0;  // == start_tick (windows complete in-tick)
  double queue_ms = 0.0;
  double service_ms = 0.0;

  /// Queue wait in virtual ticks.
  [[nodiscard]] std::uint64_t queue_ticks() const {
    return start_tick - enqueue_tick;
  }
};

/// FNV-1a digest of the deterministic fields of a response (identity,
/// admission, result success/failure/assignments, tick timing). The
/// digest of a driver-mode run — folded over responses in submission
/// order — is the bit-identity witness tests and bench_svc gate.
std::uint64_t response_digest(const SvcResponse& r);

/// Folds one response into a running digest (order-sensitive).
std::uint64_t fold_digest(std::uint64_t acc, const SvcResponse& r);

/// Aggregate service counters (a snapshot; also published to /metrics).
struct SvcStats {
  std::uint64_t submitted = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t rejected_tenant_limit = 0;
  std::uint64_t rejected_shutdown = 0;
  std::uint64_t rejected_invalid = 0;
  std::uint64_t served = 0;
  std::uint64_t ticks = 0;
  std::size_t queue_depth = 0;

  // Edit-session counters.
  std::uint64_t sessions_opened = 0;
  std::uint64_t sessions_closed = 0;
  std::size_t sessions_open = 0;
  std::uint64_t session_edits = 0;         // edits applied (success)
  std::uint64_t session_repairs = 0;       // ... via the localized repair
  std::uint64_t session_dp_fallbacks = 0;  // ... via the full-DP fallback
  std::uint64_t session_edit_failures = 0; // rejected edits (state kept)
};

class RoutingService {
 public:
  /// Builds the shared engine on `ch` (which must outlive the service).
  explicit RoutingService(const SegmentedChannel& ch, SvcOptions opts = {});

  /// Drains and responds (stop(kDrain)) if the caller did not stop() it.
  ~RoutingService();

  RoutingService(const RoutingService&) = delete;
  RoutingService& operator=(const RoutingService&) = delete;

  /// Admits or rejects `req`; never blocks. The future resolves when the
  /// request is routed (accepted) or immediately (rejected) — every
  /// submission resolves exactly once, with a typed Admit either way.
  std::future<SvcResponse> submit(SvcRequest req);

  /// Drains up to drain_window queued requests and routes them on the
  /// pool, advancing the virtual tick. Returns the number routed. The
  /// driver-mode entry point; live mode's dispatcher calls it too.
  /// Serialized internally — concurrent calls queue on the dispatch
  /// lock, they do not interleave.
  std::size_t tick();

  /// Live mode: spawns the dispatcher thread. Idempotent.
  void start();

  enum class StopMode {
    kDrain,   // route everything already queued, then stop
    kReject,  // respond kShuttingDown to everything queued, then stop
  };

  /// Stops admission (kShuttingDown from now on), disposes of the
  /// backlog per `mode`, and joins the dispatcher. Every in-queue
  /// request resolves before stop() returns. Idempotent.
  void stop(StopMode mode = StopMode::kDrain);

  /// Re-points the shared engine at `ch` (must outlive the service),
  /// quiescing routing internally — safe concurrently with submit() and
  /// the live dispatcher. Queued requests route on the new substrate.
  void rebind(const SegmentedChannel& ch);

  /// Fingerprint-delta-aware cache eviction; safe at any time.
  void invalidate(std::uint64_t fingerprint);

  /// Opens an edit session for `tenant` on the *current* substrate (a
  /// session pins its channel; later rebind()s affect batch requests
  /// only). Returns the session id to pass in SvcRequest::session, or 0
  /// when rejected (empty tenant, or the service is stopping).
  /// `max_segments` is the session's K-segment limit (0 = unlimited).
  std::uint64_t open_session(const std::string& tenant, int max_segments = 0);

  /// Closes a session, quiescing routing first so no in-flight edit
  /// references it. Edits still queued for it resolve as failed with
  /// kInvalidInput. Returns false for unknown ids. All sessions are
  /// closed implicitly by stop().
  bool close_session(std::uint64_t session);

  /// Snapshot of a session's live state (connections in id order +
  /// canonical routing), or nullopt for unknown ids. Quiesces routing
  /// for the copy; the tests' bit-identity gate reads through this.
  [[nodiscard]] std::optional<std::pair<ConnectionSet, Routing>>
  session_snapshot(std::uint64_t session);

  [[nodiscard]] SvcStats stats() const;
  [[nodiscard]] const SvcOptions& options() const { return opts_; }
  [[nodiscard]] engine::BatchRouter& engine() { return engine_; }
  [[nodiscard]] std::uint64_t current_tick() const {
    return tick_.load(std::memory_order_relaxed);
  }

  /// Publishes queue/served/cache-shard state into the obs registry
  /// (also done automatically at every tick).
  void publish_metrics();

 private:
  struct Job {
    std::uint64_t id = 0;
    SvcRequest req;
    std::promise<SvcResponse> prom;
    std::uint64_t enqueue_tick = 0;
    std::chrono::steady_clock::time_point t_enqueue;
  };

  /// One open edit session. The OnlineRouter is pinned to its address
  /// (its ChannelIndex borrows the owned channel), hence the unique_ptr.
  struct Session {
    std::string tenant;
    std::unique_ptr<alg::OnlineRouter> router;
  };

  [[nodiscard]] harness::Budget effective_budget(const SvcRequest& req) const;
  void route_window(std::vector<Job>& window, std::uint64_t now);
  void apply_edit(Job& job, std::uint64_t now);
  void reject(Job job, Admit why);
  void finish_job(Job& job, SvcResponse resp);
  obs::Counter& tenant_counter(const std::string& tenant);

  SvcOptions opts_;
  engine::BatchRouter engine_;
  util::ThreadPool pool_;

  // Queue state (queue_mu_): the deque, tenant accounting, admission
  // counters, lifecycle flags.
  mutable std::mutex queue_mu_;
  std::condition_variable cv_work_;
  std::deque<Job> queue_;
  std::map<std::string, std::size_t> inflight_;
  std::map<std::string, obs::Counter*> tenant_served_;
  std::uint64_t next_id_ = 1;
  bool stopping_ = false;    // admission closed
  bool dispatcher_exit_ = false;
  SvcStats stats_;

  // Edit sessions. The *map* is guarded by queue_mu_ (submit() checks
  // session existence during admission); the routers themselves are
  // touched only under dispatch_mu_ (the serial edit phase of
  // route_window, and close/snapshot which quiesce first).
  std::map<std::uint64_t, Session> sessions_;
  std::uint64_t next_session_ = 1;

  // Dispatch state (dispatch_mu_): held while a window routes and while
  // rebind() swaps the substrate.
  std::mutex dispatch_mu_;
  std::atomic<std::uint64_t> tick_{0};

  std::thread dispatcher_;
  bool started_ = false;
  bool stopped_ = false;

  // Service metrics, resolved once (see the file comment on why these
  // use the registry directly rather than the instrumentation macros).
  obs::Gauge& queue_depth_g_;
  obs::Gauge& cache_size_g_;
  obs::Counter& accepted_c_;
  obs::Counter& rejected_c_;
  obs::Counter& served_c_;
  obs::Counter& ticks_c_;
  obs::Histogram& queue_ms_h_;
  obs::Histogram& service_ms_h_;
};

}  // namespace segroute::svc
