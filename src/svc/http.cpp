#include "svc/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <sstream>

#include "obs/metrics.h"

namespace segroute::svc {

namespace {

std::string make_response(int status, const char* reason,
                          const char* content_type, std::string body) {
  std::ostringstream os;
  os << "HTTP/1.1 " << status << " " << reason << "\r\n"
     << "Content-Type: " << content_type << "\r\n"
     << "Content-Length: " << body.size() << "\r\n"
     << "Connection: close\r\n\r\n"
     << body;
  return os.str();
}

void send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n <= 0) return;  // peer went away; nothing useful to do
    off += static_cast<std::size_t>(n);
  }
}

}  // namespace

std::string ExpositionServer::handle_request(std::string_view request) {
  // Parse only the request line: "<METHOD> <path> HTTP/1.x". Everything
  // after the first line (headers, body) is irrelevant to exposition.
  const std::size_t eol = request.find("\r\n");
  std::string_view line =
      eol == std::string_view::npos ? request : request.substr(0, eol);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
    return make_response(400, "Bad Request", "text/plain", "bad request\n");
  }
  const std::string_view method = line.substr(0, sp1);
  std::string_view path = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::size_t query = path.find('?');
  if (query != std::string_view::npos) path = path.substr(0, query);

  if (method != "GET") {
    return make_response(405, "Method Not Allowed", "text/plain",
                         "only GET is served here\n");
  }
  if (path == "/healthz") {
    return make_response(200, "OK", "text/plain", "ok\n");
  }
  if (path == "/metrics") {
    return make_response(200, "OK",
                         "text/plain; version=0.0.4; charset=utf-8",
                         obs::Registry::instance().prometheus_text());
  }
  if (path == "/metrics.json") {
    return make_response(200, "OK", "application/json",
                         obs::Registry::instance().json_text());
  }
  return make_response(404, "Not Found", "text/plain", "not found\n");
}

ExpositionServer::ExpositionServer(HttpOptions opts)
    : opts_(std::move(opts)) {}

ExpositionServer::~ExpositionServer() { stop(); }

bool ExpositionServer::start() {
  if (running_.load(std::memory_order_relaxed)) return true;
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return false;
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(opts_.port));
  if (::inet_pton(AF_INET, opts_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listen_fd_, opts_.backlog) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = static_cast<int>(ntohs(addr.sin_port));
  }
  running_.store(true, std::memory_order_relaxed);
  thread_ = std::thread([this] { accept_loop(); });
  return true;
}

void ExpositionServer::stop() {
  if (!running_.exchange(false, std::memory_order_relaxed)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  // shutdown() unblocks the accept(2) the loop is parked in; close()
  // alone is not guaranteed to on all kernels.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void ExpositionServer::accept_loop() {
  while (running_.load(std::memory_order_relaxed)) {
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      if (!running_.load(std::memory_order_relaxed)) break;
      continue;  // transient (EINTR, aborted handshake)
    }
    serve_client(client);
    ::close(client);
  }
}

void ExpositionServer::serve_client(int fd) {
  // Exposition requests fit one segment; read once, answer, close. A
  // short recv timeout keeps a stalled client from wedging the loop.
  timeval tv;
  tv.tv_sec = 2;
  tv.tv_usec = 0;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  char buf[4096];
  const ssize_t n = ::recv(fd, buf, sizeof(buf) - 1, 0);
  if (n <= 0) return;
  buf[n] = '\0';
  requests_.fetch_add(1, std::memory_order_relaxed);
  send_all(fd, handle_request(std::string_view(buf,
                                               static_cast<std::size_t>(n))));
}

}  // namespace segroute::svc
