#include "svc/prom.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <sstream>

namespace segroute::svc {

namespace {

/// Splits off the next line (without its '\n'); empty optional at end.
bool next_line(std::string_view& text, std::string_view& line) {
  if (text.empty()) return false;
  const std::size_t nl = text.find('\n');
  if (nl == std::string_view::npos) {
    line = text;
    text = {};
  } else {
    line = text.substr(0, nl);
    text.remove_prefix(nl + 1);
  }
  return true;
}

bool is_name_char(char c, bool first) {
  const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                     c == '_' || c == ':';
  return alpha || (!first && c >= '0' && c <= '9');
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

bool parse_value(std::string_view s, double& out) {
  s = trim(s);
  if (s.empty()) return false;
  const std::string buf(s);
  char* end = nullptr;
  out = std::strtod(buf.c_str(), &end);
  return end == buf.c_str() + buf.size();
}

std::string fail(PromText& out, std::size_t lineno, const std::string& why) {
  std::ostringstream os;
  os << "line " << lineno << ": " << why;
  out.ok = false;
  out.error = os.str();
  return out.error;
}

bool close_enough(double a, double b) {
  // The exposition prints 12 significant digits; compare to that.
  const double scale = std::max({std::fabs(a), std::fabs(b), 1.0});
  return std::fabs(a - b) <= 1e-9 * scale;
}

}  // namespace

const PromSample* PromText::find(std::string_view name) const {
  for (const PromSample& s : samples) {
    if (s.name == name && s.labels.empty()) return &s;
  }
  return nullptr;
}

double PromText::value_or(std::string_view name, double fallback) const {
  const PromSample* s = find(name);
  return s ? s->value : fallback;
}

std::string prom_sanitized_name(const std::string& name) {
  std::string out = "segroute_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9');
    out.push_back(ok ? c : '_');
  }
  return out;
}

PromText parse_prometheus_text(std::string_view text) {
  PromText out;
  std::string_view line;
  std::size_t lineno = 0;
  while (next_line(text, line)) {
    ++lineno;
    line = trim(line);
    if (line.empty()) continue;
    if (line.front() == '#') {
      // `# TYPE <name> <type>`; every other comment (HELP, freeform) is
      // skipped.
      std::istringstream is{std::string(line.substr(1))};
      std::string word, name, type;
      is >> word;
      if (word != "TYPE") continue;
      if (!(is >> name >> type) ||
          (type != "counter" && type != "gauge" && type != "histogram" &&
           type != "summary" && type != "untyped")) {
        fail(out, lineno, "malformed TYPE comment");
        return out;
      }
      out.types[name] = type;
      continue;
    }
    PromSample sample;
    std::size_t i = 0;
    while (i < line.size() && is_name_char(line[i], i == 0)) ++i;
    if (i == 0) {
      fail(out, lineno, "sample does not start with a metric name");
      return out;
    }
    sample.name = std::string(line.substr(0, i));
    if (i < line.size() && line[i] == '{') {
      const std::size_t close = line.find('}', i);
      if (close == std::string_view::npos) {
        fail(out, lineno, "unterminated label set");
        return out;
      }
      std::string_view labels = line.substr(i + 1, close - i - 1);
      while (!labels.empty()) {
        const std::size_t eq = labels.find('=');
        if (eq == std::string_view::npos || labels.size() < eq + 3 ||
            labels[eq + 1] != '"') {
          fail(out, lineno, "malformed label");
          return out;
        }
        const std::size_t endq = labels.find('"', eq + 2);
        if (endq == std::string_view::npos) {
          fail(out, lineno, "unterminated label value");
          return out;
        }
        sample.labels.emplace(trim(labels.substr(0, eq)),
                              labels.substr(eq + 2, endq - eq - 2));
        labels.remove_prefix(endq + 1);
        if (!labels.empty()) {
          if (labels.front() != ',') {
            fail(out, lineno, "expected ',' between labels");
            return out;
          }
          labels.remove_prefix(1);
        }
      }
      i = close + 1;
    }
    if (!parse_value(line.substr(i), sample.value)) {
      fail(out, lineno, "malformed sample value");
      return out;
    }
    out.samples.push_back(std::move(sample));
  }
  return out;
}

std::string check_exposition(std::string_view text,
                             const obs::MetricsSnapshot& snap) {
  const PromText parsed = parse_prometheus_text(text);
  if (!parsed.ok) return "parse error: " + parsed.error;

  // Every sample must belong to a declared family (histograms declare
  // the base name; their series carry _bucket/_sum/_count suffixes).
  for (const PromSample& s : parsed.samples) {
    if (parsed.types.count(s.name) != 0) continue;
    std::string base = s.name;
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      const std::string suf(suffix);
      if (base.size() > suf.size() &&
          base.compare(base.size() - suf.size(), suf.size(), suf) == 0) {
        base = base.substr(0, base.size() - suf.size());
        break;
      }
    }
    const auto it = parsed.types.find(base);
    if (it == parsed.types.end() || it->second != "histogram") {
      return "undeclared sample: " + s.name;
    }
  }

  for (const auto& [name, v] : snap.counters) {
    const std::string pn = prom_sanitized_name(name);
    const PromSample* s = parsed.find(pn);
    if (!s) return "missing counter " + pn;
    if (!close_enough(s->value, static_cast<double>(v))) {
      return "counter " + pn + " value mismatch";
    }
  }
  for (const auto& [name, v] : snap.gauges) {
    const std::string pn = prom_sanitized_name(name);
    const PromSample* s = parsed.find(pn);
    if (!s) return "missing gauge " + pn;
    if (!close_enough(s->value, v)) return "gauge " + pn + " value mismatch";
  }
  for (const auto& [name, h] : snap.histograms) {
    const std::string pn = prom_sanitized_name(name);
    // Buckets, in exposition order, must be cumulative and end at +Inf
    // with the series total.
    double prev = 0.0;
    bool saw_inf = false;
    std::uint64_t expect_cum = 0;
    std::size_t bucket_i = 0;
    for (const PromSample& s : parsed.samples) {
      if (s.name != pn + "_bucket") continue;
      const auto le = s.labels.find("le");
      if (le == s.labels.end()) return pn + "_bucket without le label";
      if (s.value + 1e-9 < prev) return pn + " buckets not cumulative";
      prev = s.value;
      if (le->second == "+Inf") {
        saw_inf = true;
        if (!close_enough(s.value, static_cast<double>(h.total))) {
          return pn + " +Inf bucket != total";
        }
      } else {
        if (bucket_i >= h.counts.size()) return pn + " extra bucket";
        expect_cum += h.counts[bucket_i++];
        if (!close_enough(s.value, static_cast<double>(expect_cum))) {
          return pn + " bucket cumulative mismatch";
        }
      }
    }
    if (!saw_inf) return pn + " missing +Inf bucket";
    const PromSample* count_s = parsed.find(pn + "_count");
    if (!count_s || !close_enough(count_s->value,
                                  static_cast<double>(h.total))) {
      return pn + "_count mismatch";
    }
    const PromSample* sum_s = parsed.find(pn + "_sum");
    if (!sum_s || !close_enough(sum_s->value, h.sum)) {
      return pn + "_sum mismatch";
    }
  }
  return {};
}

}  // namespace segroute::svc
