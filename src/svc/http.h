// Minimal POSIX-socket HTTP endpoint serving the obs registry.
//
// A long-running routing service needs its health and metrics visible
// to the outside — a Prometheus scraper, a load balancer's health
// probe, a human with curl — without linking a web framework the
// container does not have. This is the smallest server that does that
// honestly:
//
//   GET /metrics        Prometheus text 0.0.4 (obs prometheus_text())
//   GET /metrics.json   the registry's JSON snapshot
//   GET /healthz        200 "ok\n" (liveness)
//   anything else       404; non-GET methods 405
//
// One blocking accept loop on a dedicated thread, one short-lived
// connection per request (Connection: close), no keep-alive, no TLS,
// no request body handling. That is deliberate: exposition responses
// are built from a registry snapshot in microseconds, so concurrency
// buys nothing, and every line of server code here is attack surface
// on a port. Binding defaults to 127.0.0.1 (scrape via sidecar or
// port-forward); port 0 asks the kernel for an ephemeral port, read
// back with port() — which is also what makes parallel tests safe.
//
// The request handler is a pure function (handle_request) so tests can
// cover routing and response framing without opening sockets; the
// socket end-to-end path is covered by tests that skip gracefully on
// sandboxes without loopback networking.
#pragma once

#include <atomic>
#include <string>
#include <string_view>
#include <thread>

namespace segroute::svc {

struct HttpOptions {
  /// Bind address. Keep it loopback unless you mean to be scraped
  /// from off-host.
  std::string host = "127.0.0.1";
  /// TCP port; 0 = kernel-assigned ephemeral (see port()).
  int port = 0;
  /// listen(2) backlog.
  int backlog = 16;
};

/// The /metrics endpoint. start() binds and spawns the accept thread;
/// stop() (or the destructor) shuts the listener down and joins.
class ExpositionServer {
 public:
  explicit ExpositionServer(HttpOptions opts = {});
  ~ExpositionServer();

  ExpositionServer(const ExpositionServer&) = delete;
  ExpositionServer& operator=(const ExpositionServer&) = delete;

  /// Binds, listens and starts serving. False (with errno intact) when
  /// the socket cannot be created/bound — e.g. a sandbox without
  /// networking; callers degrade gracefully rather than crash.
  bool start();

  /// Stops accepting, closes the listener and joins the thread.
  /// Idempotent.
  void stop();

  /// The bound port (resolves port 0), or 0 before start().
  [[nodiscard]] int port() const { return port_; }
  [[nodiscard]] bool running() const {
    return running_.load(std::memory_order_relaxed);
  }

  /// Number of requests served since start (any status).
  [[nodiscard]] std::uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

  /// Pure request handler: maps "<METHOD> <path> ..." request text to a
  /// complete HTTP/1.1 response (status line, headers, body). Exposed
  /// for tests; the accept loop calls exactly this.
  static std::string handle_request(std::string_view request);

 private:
  void accept_loop();
  void serve_client(int fd);

  HttpOptions opts_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> requests_{0};
  std::thread thread_;
};

}  // namespace segroute::svc
