#include "svc/service.h"

#include <algorithm>
#include <utility>

#include "obs/instrument.h"

namespace segroute::svc {

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fold_u64(std::uint64_t acc, std::uint64_t v) {
  acc ^= v;
  acc *= kFnvPrime;
  return acc;
}

std::uint64_t str_digest(const std::string& s) {
  std::uint64_t h = kFnvOffset;
  for (const char c : s) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= kFnvPrime;
  }
  return h;
}

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

/// Latency histogram bounds (ms): sub-ms cache hits through multi-second
/// stragglers.
std::vector<double> latency_bounds() {
  return {0.01, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 1000};
}

SvcOptions normalized(SvcOptions o) {
  o.threads = util::resolve_threads(o.threads);
  o.queue_capacity = std::max<std::size_t>(o.queue_capacity, 1);
  o.drain_window = std::max<std::size_t>(o.drain_window, 1);
  // The service's pool parallelizes across requests; a nested engine pool
  // would violate ThreadPool's no-reentrancy contract.
  o.engine.threads = 1;
  return o;
}

}  // namespace

const char* to_string(Admit a) {
  switch (a) {
    case Admit::kAccepted:
      return "accepted";
    case Admit::kQueueFull:
      return "queue-full";
    case Admit::kTenantLimit:
      return "tenant-limit";
    case Admit::kShuttingDown:
      return "shutting-down";
    case Admit::kInvalid:
      return "invalid";
  }
  return "?";
}

std::uint64_t fold_digest(std::uint64_t acc, const SvcResponse& r) {
  acc = fold_u64(acc, r.id);
  acc = fold_u64(acc, str_digest(r.tenant));
  acc = fold_u64(acc, static_cast<std::uint64_t>(r.admit));
  acc = fold_u64(acc, r.result.success ? 1 : 0);
  acc = fold_u64(acc, static_cast<std::uint64_t>(r.result.failure));
  acc = fold_u64(acc, r.fingerprint);
  const Routing& rt = r.result.routing;
  acc = fold_u64(acc, static_cast<std::uint64_t>(rt.size()));
  for (ConnId c = 0; c < rt.size(); ++c) {
    acc = fold_u64(acc, static_cast<std::uint64_t>(
                            static_cast<std::int64_t>(rt.track_of(c)) + 1));
  }
  acc = fold_u64(acc, r.enqueue_tick);
  acc = fold_u64(acc, r.start_tick);
  acc = fold_u64(acc, r.finish_tick);
  // Session fields enter the digest only for session responses, so the
  // digest of a pure-batch run (the committed bench baselines) is
  // byte-identical to what it was before edit sessions existed.
  if (r.session != 0) {
    acc = fold_u64(acc, r.session);
    acc = fold_u64(acc, r.repair.success ? 1 : 0);
    acc = fold_u64(acc, static_cast<std::uint64_t>(r.repair.path));
    acc = fold_u64(acc, static_cast<std::uint64_t>(r.repair.failure));
    acc = fold_u64(acc, static_cast<std::uint64_t>(
                            static_cast<std::uint32_t>(r.repair.id)));
    acc = fold_u64(
        acc,
        static_cast<std::uint64_t>(
            static_cast<std::uint32_t>(r.repair.affected_lo)) |
            (static_cast<std::uint64_t>(
                 static_cast<std::uint32_t>(r.repair.affected_hi))
             << 32));
    acc = fold_u64(
        acc,
        static_cast<std::uint64_t>(
            static_cast<std::uint32_t>(r.repair.reconsidered)) |
            (static_cast<std::uint64_t>(
                 static_cast<std::uint32_t>(r.repair.moved))
             << 32));
  }
  return acc;
}

std::uint64_t response_digest(const SvcResponse& r) {
  return fold_digest(kFnvOffset, r);
}

RoutingService::RoutingService(const SegmentedChannel& ch, SvcOptions opts)
    : opts_(normalized(std::move(opts))),
      engine_(ch, opts_.engine),
      pool_(opts_.threads),
      queue_depth_g_(obs::Registry::instance().gauge("svc.queue.depth")),
      cache_size_g_(obs::Registry::instance().gauge("svc.cache.size")),
      accepted_c_(obs::Registry::instance().counter("svc.accepted")),
      rejected_c_(obs::Registry::instance().counter("svc.rejected")),
      served_c_(obs::Registry::instance().counter("svc.served")),
      ticks_c_(obs::Registry::instance().counter("svc.ticks")),
      queue_ms_h_(obs::Registry::instance().histogram("svc.queue_ms",
                                                      latency_bounds())),
      service_ms_h_(obs::Registry::instance().histogram("svc.service_ms",
                                                        latency_bounds())) {}

RoutingService::~RoutingService() { stop(StopMode::kDrain); }

harness::Budget RoutingService::effective_budget(const SvcRequest& req) const {
  harness::Budget b = req.options.budget;
  std::uint64_t slice = opts_.slice_ticks;
  const auto it = opts_.tenant_slice_ticks.find(req.tenant);
  if (it != opts_.tenant_slice_ticks.end()) slice = it->second;
  if (slice > 0) {
    b.max_ticks = b.max_ticks == 0 ? slice : std::min(b.max_ticks, slice);
  }
  if (opts_.slice_ms) {
    b.deadline = b.deadline ? std::min(*b.deadline, *opts_.slice_ms)
                            : *opts_.slice_ms;
  }
  return b;
}

std::future<SvcResponse> RoutingService::submit(SvcRequest req) {
  Job job;
  job.req = std::move(req);
  std::future<SvcResponse> fut = job.prom.get_future();
  Admit admit = Admit::kAccepted;
  {
    std::lock_guard<std::mutex> lk(queue_mu_);
    job.id = next_id_++;
    job.enqueue_tick = tick_.load(std::memory_order_relaxed);
    job.t_enqueue = Clock::now();
    ++stats_.submitted;
    const std::size_t cap = opts_.max_inflight_per_tenant;
    bool session_ok = true;
    if (job.req.session != 0) {
      const auto sit = sessions_.find(job.req.session);
      session_ok =
          sit != sessions_.end() && sit->second.tenant == job.req.tenant;
    }
    if (job.req.tenant.empty() || !session_ok) {
      admit = Admit::kInvalid;
      ++stats_.rejected_invalid;
    } else if (stopping_) {
      admit = Admit::kShuttingDown;
      ++stats_.rejected_shutdown;
    } else if (queue_.size() >= opts_.queue_capacity) {
      admit = Admit::kQueueFull;
      ++stats_.rejected_queue_full;
    } else if (cap > 0 && inflight_[job.req.tenant] >= cap) {
      admit = Admit::kTenantLimit;
      ++stats_.rejected_tenant_limit;
    } else {
      ++stats_.accepted;
      ++inflight_[job.req.tenant];
      queue_.push_back(std::move(job));
      cv_work_.notify_one();
    }
  }
  if (admit == Admit::kAccepted) {
    accepted_c_.inc();
    return fut;
  }
  rejected_c_.inc();
  SvcResponse resp;
  resp.id = job.id;
  resp.tenant = job.req.tenant;
  resp.admit = admit;
  resp.enqueue_tick = resp.start_tick = resp.finish_tick = job.enqueue_tick;
  resp.result.fail(admit == Admit::kInvalid
                       ? alg::FailureKind::kInvalidInput
                       : alg::FailureKind::kBudgetExhausted,
                   std::string("svc admission: ") + to_string(admit));
  job.prom.set_value(std::move(resp));
  return fut;
}

obs::Counter& RoutingService::tenant_counter(const std::string& tenant) {
  const auto it = tenant_served_.find(tenant);
  if (it != tenant_served_.end()) return *it->second;
  obs::Counter& c =
      obs::Registry::instance().counter("svc.tenant." + tenant + ".served");
  tenant_served_.emplace(tenant, &c);
  return c;
}

void RoutingService::finish_job(Job& job, SvcResponse resp) {
  queue_ms_h_.observe(resp.queue_ms);
  service_ms_h_.observe(resp.service_ms);
  served_c_.inc();
  obs::Counter* tenant_c;
  {
    std::lock_guard<std::mutex> lk(queue_mu_);
    ++stats_.served;
    const auto it = inflight_.find(job.req.tenant);
    if (it != inflight_.end() && it->second > 0) --it->second;
    tenant_c = &tenant_counter(job.req.tenant);
  }
  tenant_c->inc();
  job.prom.set_value(std::move(resp));
}

void RoutingService::reject(Job job, Admit why) {
  rejected_c_.inc();
  SvcResponse resp;
  resp.id = job.id;
  resp.tenant = job.req.tenant;
  resp.admit = why;
  resp.enqueue_tick = job.enqueue_tick;
  resp.start_tick = resp.finish_tick = tick_.load(std::memory_order_relaxed);
  resp.queue_ms = ms_since(job.t_enqueue);
  resp.result.fail(alg::FailureKind::kBudgetExhausted,
                   std::string("svc admission: ") + to_string(why));
  {
    std::lock_guard<std::mutex> lk(queue_mu_);
    ++stats_.rejected_shutdown;
    const auto it = inflight_.find(job.req.tenant);
    if (it != inflight_.end() && it->second > 0) --it->second;
  }
  job.prom.set_value(std::move(resp));
}

void RoutingService::route_window(std::vector<Job>& window, std::uint64_t now) {
  SEGROUTE_SPAN(span, "svc.tick");
  SEGROUTE_SPAN_TAG(span, "window", static_cast<std::uint64_t>(window.size()));
  // Resolve every request's effective options up front, then route in two
  // phases — pure (unlimited-budget) requests first, budgeted ones after a
  // barrier. See the determinism argument in the file comment of
  // service.h: the barrier freezes the memo cache for the budgeted phase,
  // so hit/miss outcomes cannot depend on worker scheduling.
  std::vector<engine::EngineRouteOptions> opts(window.size());
  std::vector<std::size_t> pure_ix, budgeted_ix, edit_ix;
  for (std::size_t i = 0; i < window.size(); ++i) {
    if (window[i].req.session != 0) {
      edit_ix.push_back(i);  // session edits run in the serial phase
      continue;
    }
    opts[i] = window[i].req.options;
    opts[i].budget = effective_budget(window[i].req);
    opts[i].allow_cached_when_budgeted = opts_.serve_cached_under_budget;
    (opts[i].budget.unlimited() ? pure_ix : budgeted_ix).push_back(i);
  }
  const auto run_phase = [&](const std::vector<std::size_t>& ix) {
    if (ix.empty()) return;
    pool_.parallel_for(
        static_cast<std::int64_t>(ix.size()), [&](std::int64_t k) {
          Job& job = window[ix[static_cast<std::size_t>(k)]];
          const engine::EngineRouteOptions& o =
              opts[ix[static_cast<std::size_t>(k)]];
          const auto t0 = Clock::now();
          SvcResponse resp;
          resp.id = job.id;
          resp.tenant = job.req.tenant;
          resp.admit = Admit::kAccepted;
          resp.enqueue_tick = job.enqueue_tick;
          resp.start_tick = resp.finish_tick = now;
          resp.result = engine_.route(job.req.connections, o);
          resp.fingerprint = engine_.index().fingerprint();
          resp.queue_ms =
              std::chrono::duration<double, std::milli>(t0 - job.t_enqueue)
                  .count();
          resp.service_ms = ms_since(t0);
          finish_job(job, std::move(resp));
        });
  };
  run_phase(pure_ix);
  run_phase(budgeted_ix);
  // Serial edit phase: session edits apply in window (= FIFO drain)
  // order on the dispatching thread, after both routing phases. Session
  // state is therefore a pure function of the submission sequence —
  // worker count never enters an edit outcome.
  for (const std::size_t i : edit_ix) apply_edit(window[i], now);
}

void RoutingService::apply_edit(Job& job, std::uint64_t now) {
  SEGROUTE_SPAN(span, "svc.edit");
  const auto t0 = Clock::now();
  SvcResponse resp;
  resp.id = job.id;
  resp.tenant = job.req.tenant;
  resp.admit = Admit::kAccepted;
  resp.session = job.req.session;
  resp.enqueue_tick = job.enqueue_tick;
  resp.start_tick = resp.finish_tick = now;
  alg::OnlineRouter* router = nullptr;
  {
    std::lock_guard<std::mutex> lk(queue_mu_);
    const auto it = sessions_.find(job.req.session);
    if (it != sessions_.end()) router = it->second.router.get();
  }
  if (router == nullptr) {
    // The session was closed between admission and drain.
    resp.repair.failure = alg::FailureKind::kInvalidInput;
    resp.result.fail(alg::FailureKind::kInvalidInput,
                     "svc session: closed before the edit was drained");
    std::lock_guard<std::mutex> lk(queue_mu_);
    ++stats_.session_edit_failures;
  } else {
    // The tenant's budget slice bounds the edit's DP fallback: a
    // pathological edit costs one bounded DP attempt, then rolls back.
    resp.repair = router->apply(job.req.edit, effective_budget(job.req));
    resp.fingerprint = router->index().fingerprint();
    if (resp.repair.success) {
      resp.result.success = true;
      resp.result.note =
          std::string("svc session edit: ") + alg::to_string(resp.repair.path);
    } else {
      resp.result.fail(resp.repair.failure,
                       "svc session edit rejected: " + resp.repair.note);
    }
    std::lock_guard<std::mutex> lk(queue_mu_);
    if (!resp.repair.success) {
      ++stats_.session_edit_failures;
    } else {
      ++stats_.session_edits;
      if (resp.repair.path == alg::RepairOutcome::Path::kRepair) {
        ++stats_.session_repairs;
      } else {
        ++stats_.session_dp_fallbacks;
      }
    }
  }
  resp.queue_ms =
      std::chrono::duration<double, std::milli>(t0 - job.t_enqueue).count();
  resp.service_ms = ms_since(t0);
  finish_job(job, std::move(resp));
}

std::uint64_t RoutingService::open_session(const std::string& tenant,
                                           int max_segments) {
  if (tenant.empty()) return 0;
  // The dispatch lock pins the substrate while the session copies it (a
  // concurrent rebind() would race the read).
  std::lock_guard<std::mutex> dl(dispatch_mu_);
  auto router = std::make_unique<alg::OnlineRouter>(
      engine_.index().channel(), alg::OnlineRouter::Policy::BestFit,
      max_segments);
  std::lock_guard<std::mutex> lk(queue_mu_);
  if (stopping_) return 0;
  const std::uint64_t id = next_session_++;
  sessions_.emplace(id, Session{tenant, std::move(router)});
  ++stats_.sessions_opened;
  return id;
}

bool RoutingService::close_session(std::uint64_t session) {
  std::lock_guard<std::mutex> dl(dispatch_mu_);  // quiesce in-flight edits
  std::lock_guard<std::mutex> lk(queue_mu_);
  const auto it = sessions_.find(session);
  if (it == sessions_.end()) return false;
  sessions_.erase(it);
  ++stats_.sessions_closed;
  return true;
}

std::optional<std::pair<ConnectionSet, Routing>>
RoutingService::session_snapshot(std::uint64_t session) {
  std::lock_guard<std::mutex> dl(dispatch_mu_);  // quiesce in-flight edits
  alg::OnlineRouter* router = nullptr;
  {
    std::lock_guard<std::mutex> lk(queue_mu_);
    const auto it = sessions_.find(session);
    if (it != sessions_.end()) router = it->second.router.get();
  }
  if (router == nullptr) return std::nullopt;
  return router->snapshot();
}

std::size_t RoutingService::tick() {
  std::lock_guard<std::mutex> dl(dispatch_mu_);
  std::vector<Job> window;
  std::uint64_t now;
  {
    std::lock_guard<std::mutex> lk(queue_mu_);
    now = tick_.fetch_add(1, std::memory_order_relaxed) + 1;
    ++stats_.ticks;
    const std::size_t n = std::min(queue_.size(), opts_.drain_window);
    window.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      window.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
  }
  ticks_c_.inc();
  if (!window.empty()) route_window(window, now);
  publish_metrics();
  return window.size();
}

void RoutingService::start() {
  std::lock_guard<std::mutex> lk(queue_mu_);
  if (started_ || stopping_) return;
  started_ = true;
  dispatcher_ = std::thread([this] {
    std::unique_lock<std::mutex> lk(queue_mu_);
    while (true) {
      cv_work_.wait(lk,
                    [this] { return dispatcher_exit_ || !queue_.empty(); });
      if (queue_.empty() && dispatcher_exit_) break;
      lk.unlock();
      tick();
      lk.lock();
    }
  });
}

void RoutingService::stop(StopMode mode) {
  std::vector<Job> backlog;
  {
    std::lock_guard<std::mutex> lk(queue_mu_);
    if (stopped_) return;
    stopping_ = true;
    dispatcher_exit_ = true;
    if (mode == StopMode::kReject) {
      backlog.reserve(queue_.size());
      while (!queue_.empty()) {
        backlog.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    cv_work_.notify_all();
  }
  for (Job& job : backlog) reject(std::move(job), Admit::kShuttingDown);
  if (dispatcher_.joinable()) dispatcher_.join();
  // Driver mode (no dispatcher): drain synchronously so every accepted
  // request resolves before stop() returns.
  if (mode == StopMode::kDrain) {
    while (tick() > 0) {
    }
  }
  publish_metrics();
  std::lock_guard<std::mutex> lk(queue_mu_);
  stats_.sessions_closed += sessions_.size();  // implicit close on stop
  sessions_.clear();
  stopped_ = true;
}

void RoutingService::rebind(const SegmentedChannel& ch) {
  // The dispatch lock quiesces routing: no window is in flight while the
  // engine's shared index is rebuilt, which is exactly the engine's
  // rebind() precondition.
  std::lock_guard<std::mutex> dl(dispatch_mu_);
  engine_.rebind(ch);
}

void RoutingService::invalidate(std::uint64_t fingerprint) {
  engine_.invalidate(fingerprint);
}

SvcStats RoutingService::stats() const {
  std::lock_guard<std::mutex> lk(queue_mu_);
  SvcStats s = stats_;
  s.queue_depth = queue_.size();
  s.sessions_open = sessions_.size();
  return s;
}

void RoutingService::publish_metrics() {
  std::size_t depth;
  SvcStats snap;
  {
    std::lock_guard<std::mutex> lk(queue_mu_);
    depth = queue_.size();
    snap = stats_;
    snap.sessions_open = sessions_.size();
  }
  queue_depth_g_.set(static_cast<double>(depth));
  obs::Registry& reg = obs::Registry::instance();
  reg.gauge("svc.sessions.open")
      .set(static_cast<double>(snap.sessions_open));
  reg.gauge("svc.sessions.opened")
      .set(static_cast<double>(snap.sessions_opened));
  reg.gauge("svc.sessions.closed")
      .set(static_cast<double>(snap.sessions_closed));
  reg.gauge("svc.sessions.edits")
      .set(static_cast<double>(snap.session_edits));
  reg.gauge("svc.sessions.repairs")
      .set(static_cast<double>(snap.session_repairs));
  reg.gauge("svc.sessions.dp_fallbacks")
      .set(static_cast<double>(snap.session_dp_fallbacks));
  reg.gauge("svc.sessions.edit_failures")
      .set(static_cast<double>(snap.session_edit_failures));
  const engine::CacheStats total = engine_.cache_stats();
  cache_size_g_.set(static_cast<double>(total.size));
  reg.gauge("svc.cache.capacity").set(static_cast<double>(total.capacity));
  reg.gauge("svc.cache.hits").set(static_cast<double>(total.hits));
  reg.gauge("svc.cache.misses").set(static_cast<double>(total.misses));
  reg.gauge("svc.cache.evictions").set(static_cast<double>(total.evictions));
  reg.gauge("svc.cache.invalidations")
      .set(static_cast<double>(total.invalidations));
  const std::vector<engine::CacheStats> shards = engine_.shard_stats();
  for (std::size_t i = 0; i < shards.size(); ++i) {
    const std::string p = "svc.cache.shard" + std::to_string(i);
    reg.gauge(p + ".size").set(static_cast<double>(shards[i].size));
    reg.gauge(p + ".hits").set(static_cast<double>(shards[i].hits));
    reg.gauge(p + ".misses").set(static_cast<double>(shards[i].misses));
    reg.gauge(p + ".evictions").set(static_cast<double>(shards[i].evictions));
    reg.gauge(p + ".invalidations")
        .set(static_cast<double>(shards[i].invalidations));
  }
}

}  // namespace segroute::svc
