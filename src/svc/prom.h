// Prometheus text-format (0.0.4) parser and exposition self-check.
//
// The /metrics endpoint (svc/http.h) serves obs::Registry's exposition
// to external scrapers; a malformed exposition fails silently at the
// scraper, far from the bug. This parser closes the loop in-process:
// the smoke tests and bench drivers parse the exact bytes the endpoint
// serves and cross-check every sample against a registry snapshot —
// names sanitized the same way, counter/gauge values equal, histogram
// buckets cumulative and consistent with their _sum/_count series.
//
// The parser accepts the subset the registry emits (and any conformant
// superset): `# TYPE`/`# HELP` comments, bare samples, and samples with
// a {label="value",...} set. It does not aim to be a full scrape-parser
// — no escaped newlines in label values, no timestamps — both of which
// the registry never produces.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"

namespace segroute::svc {

/// One parsed sample line: `name{labels} value`.
struct PromSample {
  std::string name;
  std::map<std::string, std::string> labels;
  double value = 0.0;
};

/// Result of parsing one exposition. `ok` is false on the first
/// malformed line; `error` then says which and why.
struct PromText {
  bool ok = true;
  std::string error;
  std::vector<PromSample> samples;
  /// Declared metric families: name -> "counter" | "gauge" | "histogram".
  std::map<std::string, std::string> types;

  /// First sample with this exact name and no labels; nullptr if absent.
  [[nodiscard]] const PromSample* find(std::string_view name) const;
  /// Value of `find(name)`, or `fallback`.
  [[nodiscard]] double value_or(std::string_view name, double fallback) const;
};

/// Parses a text exposition. Never throws; inspect `ok`/`error`.
PromText parse_prometheus_text(std::string_view text);

/// Round-trip check: parses `text` and verifies it is a faithful
/// exposition of `snap` — every counter/gauge appears under its
/// sanitized name with the snapshot's value, every histogram's buckets
/// are cumulative, end at the `_count` total, and carry a matching
/// `_sum`; and every sample in `text` is declared by a `# TYPE` line.
/// Returns the empty string when consistent, else the first mismatch.
std::string check_exposition(std::string_view text,
                             const obs::MetricsSnapshot& snap);

/// The registry's sanitized exposition name for a metric (`segroute_`
/// prefix, non-alphanumerics replaced by '_') — mirrors the private
/// helper in obs/metrics.cpp so checks can predict names.
std::string prom_sanitized_name(const std::string& name);

}  // namespace segroute::svc
