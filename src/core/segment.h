// Segment: a maximal switch-free piece of wiring within one track.
#pragma once

#include <string>

#include "core/types.h"

namespace segroute {

/// A contiguous run of columns [left, right] (inclusive, 1-based) within a
/// track, bounded by switches (or the channel ends). Immutable value type.
struct Segment {
  Column left = 0;
  Column right = 0;

  /// Number of columns the segment spans.
  [[nodiscard]] Column length() const { return right - left + 1; }

  /// True if the segment contains column `c`.
  [[nodiscard]] bool contains(Column c) const { return left <= c && c <= right; }

  /// True if [left, right] intersects the closed interval [lo, hi].
  [[nodiscard]] bool overlaps(Column lo, Column hi) const {
    return left <= hi && lo <= right;
  }

  friend bool operator==(const Segment&, const Segment&) = default;
};

/// Render as "(left, right)" — the notation used in the paper.
[[nodiscard]] std::string to_string(const Segment& s);

}  // namespace segroute
