#include "core/segment.h"

namespace segroute {

std::string to_string(const Segment& s) {
  return "(" + std::to_string(s.left) + ", " + std::to_string(s.right) + ")";
}

}  // namespace segroute
