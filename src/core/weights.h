// Weight functions w(c, t) for Problem 3 (optimal routing).
#pragma once

#include <functional>

#include "core/channel.h"
#include "core/connection.h"
#include "core/routing.h"

namespace segroute {

/// Cost of assigning connection `c` to track `t` in channel `ch`.
/// Problem 3 minimizes the sum of these over all connections.
using WeightFn = std::function<double(const SegmentedChannel& ch,
                                      const Connection& c, TrackId t)>;

namespace weights {

/// The paper's suggested weight: total length of the segments occupied.
WeightFn occupied_length();

/// Number of segments occupied. With this weight, Problem 3 subsumes
/// Problem 2: a routing of total weight <= K*M exists iff ... (per
/// connection the count is the K-segment quantity); more directly, use
/// `segments_capped(K)` to forbid assignments above K.
WeightFn segment_count();

/// Like segment_count() but returns +infinity when more than `k` segments
/// would be used — encodes the K-segment constraint as a weight
/// ("with appropriate choice of w(c,t), Problem 3 subsumes Problem 2").
WeightFn segments_capped(int k);

/// Wasted wire: occupied length minus the connection's own length.
WeightFn wasted_length();

/// Constant 1 per assignment (turns Problem 3 into Problem 1 feasibility).
WeightFn unit();

}  // namespace weights

/// Total weight of a complete routing under `w` (sum over connections).
double total_weight(const SegmentedChannel& ch, const ConnectionSet& cs,
                    const Routing& r, const WeightFn& w);

}  // namespace segroute
