#include "core/connection.h"

#include <algorithm>
#include <stdexcept>

namespace segroute {

namespace {

void check(const Connection& c) {
  if (c.left < 1 || c.left > c.right) {
    throw std::invalid_argument("Connection: need 1 <= left <= right, got [" +
                                std::to_string(c.left) + ", " +
                                std::to_string(c.right) + "]");
  }
}

/// Max over columns of the number of intervals covering the column.
int interval_density(const std::vector<std::pair<Column, Column>>& spans) {
  std::vector<std::pair<Column, int>> events;
  events.reserve(spans.size() * 2);
  for (auto [l, r] : spans) {
    events.emplace_back(l, +1);
    events.emplace_back(r + 1, -1);
  }
  std::sort(events.begin(), events.end());
  int cur = 0, best = 0;
  for (auto [col, delta] : events) {
    cur += delta;
    best = std::max(best, cur);
  }
  return best;
}

}  // namespace

ConnectionSet::ConnectionSet(std::vector<Connection> conns)
    : conns_(std::move(conns)) {
  for (const Connection& c : conns_) check(c);
}

ConnId ConnectionSet::add(Column left, Column right, std::string name) {
  Connection c{left, right, std::move(name)};
  check(c);
  conns_.push_back(std::move(c));
  return static_cast<ConnId>(conns_.size()) - 1;
}

std::vector<ConnId> ConnectionSet::sorted_by_left() const {
  std::vector<ConnId> order;
  sorted_by_left(order);
  return order;
}

void ConnectionSet::sorted_by_left(std::vector<ConnId>& out) const {
  out.resize(conns_.size());
  for (ConnId i = 0; i < size(); ++i) out[static_cast<std::size_t>(i)] = i;
  if (out.size() < 32) {
    // Insertion sort: stable, so the order is identical to stable_sort's,
    // and allocation-free — std::stable_sort buys a temporary buffer even
    // at sizes where the routers call this once per route.
    for (std::size_t i = 1; i < out.size(); ++i) {
      const ConnId v = out[i];
      const Column lv = conns_[static_cast<std::size_t>(v)].left;
      std::size_t j = i;
      for (; j > 0 &&
             conns_[static_cast<std::size_t>(out[j - 1])].left > lv;
           --j) {
        out[j] = out[j - 1];
      }
      out[j] = v;
    }
    return;
  }
  std::stable_sort(out.begin(), out.end(), [this](ConnId a, ConnId b) {
    return conns_[a].left < conns_[b].left;
  });
}

bool ConnectionSet::is_sorted_by_left() const {
  return std::is_sorted(conns_.begin(), conns_.end(),
                        [](const Connection& a, const Connection& b) {
                          return a.left < b.left;
                        });
}

Column ConnectionSet::max_right() const {
  Column m = 0;
  for (const Connection& c : conns_) m = std::max(m, c.right);
  return m;
}

int ConnectionSet::density() const {
  std::vector<std::pair<Column, Column>> spans;
  spans.reserve(conns_.size());
  for (const Connection& c : conns_) spans.emplace_back(c.left, c.right);
  return interval_density(spans);
}

int ConnectionSet::extended_density(const SegmentedChannel& ch) const {
  if (!ch.identically_segmented()) {
    throw std::invalid_argument(
        "extended_density: channel tracks are not identically segmented");
  }
  if (max_right() > ch.width()) {
    throw std::invalid_argument("extended_density: connections exceed channel");
  }
  const Track& t = ch.track(0);
  std::vector<std::pair<Column, Column>> spans;
  spans.reserve(conns_.size());
  for (const Connection& c : conns_) {
    spans.push_back(t.align_to_segments(c.left, c.right));
  }
  return interval_density(spans);
}

}  // namespace segroute
