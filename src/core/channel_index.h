// ChannelIndex: an immutable, hash-fingerprinted side structure computed
// once per SegmentedChannel and shared by every hot router.
//
// The routers' inner loops all ask the same few questions of the channel —
// "which segment of track t contains column c?", "where does that segment
// end?", "which tracks are interchangeable?" — and before this index each
// of them re-derived the answers per call (a per-Track binary search per
// lookup, a rebuilt type-class partition per route). A ChannelIndex
// flattens all of it into structure-of-arrays tables built once:
//
//  - seg_of_col: an O(1) (track, column) -> segment-id table (the hot-path
//    replacement for Track::segment_at's binary search);
//  - flat segment tables: every segment of every track in one pair of
//    left[]/right[] arrays addressed by seg_base(t) + s, plus the reverse
//    flat-id -> track map the matching routers need;
//  - type classes: the channel's identical-segmentation partition with a
//    representative track and the member list per type;
//  - per-column covering lists: for each column, the flat ids of the T
//    segments (one per track) covering it, in track order.
//
// The fingerprint is an FNV-1a hash of the full channel structure (width,
// track count, every segment boundary). It keys the engine's per-thread
// scratch arenas and the BatchRouter memo cache: two channels with equal
// fingerprints are structurally identical for routing purposes (collisions
// are possible in principle but need 2^32-scale channel populations), and
// any structural edit — including a FaultPlan-materialized degraded
// channel — changes the fingerprint, so caches keyed by it cannot serve
// stale answers across hardware faults.
//
// Lifetime: the index borrows the channel; the channel must outlive it.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "core/channel.h"
#include "core/types.h"

namespace segroute {

class Occupancy;  // core/routing.h

class ChannelIndex {
 public:
  explicit ChannelIndex(const SegmentedChannel& ch);

  [[nodiscard]] const SegmentedChannel& channel() const { return *ch_; }
  [[nodiscard]] std::uint64_t fingerprint() const { return fingerprint_; }
  [[nodiscard]] TrackId num_tracks() const { return num_tracks_; }
  [[nodiscard]] Column width() const { return width_; }
  [[nodiscard]] int total_segments() const { return total_segments_; }

  /// O(1): segment of track `t` containing column `c` (1 <= c <= width).
  [[nodiscard]] SegId segment_at(TrackId t, Column c) const {
    return seg_of_col_[static_cast<std::size_t>(t) * cols_ +
                       static_cast<std::size_t>(c)];
  }

  /// O(1): segment range [first, last] a span [lo, hi] occupies in track t.
  [[nodiscard]] std::pair<SegId, SegId> span(TrackId t, Column lo,
                                             Column hi) const {
    return {segment_at(t, lo), segment_at(t, hi)};
  }

  [[nodiscard]] int segments_spanned(TrackId t, Column lo, Column hi) const {
    return segment_at(t, hi) - segment_at(t, lo) + 1;
  }

  /// Sum of the lengths of the segments a span [lo, hi] occupies in t.
  [[nodiscard]] Column occupied_length(TrackId t, Column lo, Column hi) const {
    return seg_right(t, segment_at(t, hi)) - seg_left(t, segment_at(t, lo)) + 1;
  }

  /// First free column after routing a connection ending at `hi` on t:
  /// one past the right end of the segment containing `hi`.
  [[nodiscard]] Column next_free_after(TrackId t, Column hi) const {
    return seg_right(t, segment_at(t, hi)) + 1;
  }

  // Flat segment tables: segment s of track t is flat id seg_base(t) + s.
  [[nodiscard]] int seg_base(TrackId t) const {
    return seg_base_[static_cast<std::size_t>(t)];
  }
  [[nodiscard]] Column seg_left(TrackId t, SegId s) const {
    return seg_left_[static_cast<std::size_t>(seg_base(t) + s)];
  }
  [[nodiscard]] Column seg_right(TrackId t, SegId s) const {
    return seg_right_[static_cast<std::size_t>(seg_base(t) + s)];
  }
  [[nodiscard]] int num_segments(TrackId t) const {
    return seg_base_[static_cast<std::size_t>(t) + 1] -
           seg_base_[static_cast<std::size_t>(t)];
  }
  /// Track owning flat segment id `f`.
  [[nodiscard]] TrackId track_of_flat(int f) const {
    return seg_track_[static_cast<std::size_t>(f)];
  }

  // Identical-segmentation type classes (mirrors SegmentedChannel but adds
  // the per-type member lists and representatives so routers stop
  // re-deriving them per call).
  [[nodiscard]] int num_types() const { return num_types_; }
  [[nodiscard]] const std::vector<int>& type_of() const { return type_of_; }
  [[nodiscard]] const std::vector<TrackId>& tracks_of_type(int type) const {
    return type_members_[static_cast<std::size_t>(type)];
  }
  /// Lowest-indexed track of the type (its segmentation stands for all).
  [[nodiscard]] TrackId representative(int type) const {
    return type_members_[static_cast<std::size_t>(type)].front();
  }

  /// Per-column covering list: the flat ids of the segments covering
  /// column `c`, one per track, in track order. `covering_at(c)[t]` is the
  /// flat id of track t's segment at column c.
  [[nodiscard]] const int* covering_at(Column c) const {
    return covering_.data() +
           static_cast<std::size_t>(c) * static_cast<std::size_t>(num_tracks_);
  }

 private:
  const SegmentedChannel* ch_;
  std::uint64_t fingerprint_ = 0;
  TrackId num_tracks_ = 0;
  Column width_ = 0;
  std::size_t cols_ = 0;  // width_ + 1 (column 0 unused; columns 1-based)
  int total_segments_ = 0;

  std::vector<SegId> seg_of_col_;   // T x (width+1), row-major by track
  std::vector<int> seg_base_;      // T + 1 prefix offsets into flat tables
  std::vector<Column> seg_left_;   // flat, by seg_base(t) + s
  std::vector<Column> seg_right_;  // flat, by seg_base(t) + s
  std::vector<TrackId> seg_track_; // flat id -> owning track

  int num_types_ = 0;
  std::vector<int> type_of_;
  std::vector<std::vector<TrackId>> type_members_;

  std::vector<int> covering_;  // (width+1) x T, row-major by column
};

/// Shared routing context threaded through the hot routers: a prebuilt
/// index over the channel being routed and (optionally) a reusable
/// occupancy workspace. Both are borrowed; when `index` is set it MUST
/// have been built for the same channel the router is called with, and an
/// `occupancy` must have been constructed (or rebound) for it too. Default
/// (all null) reproduces the historical per-call derivation exactly.
struct RouteContext {
  const ChannelIndex* index = nullptr;
  Occupancy* occupancy = nullptr;
};

}  // namespace segroute
