#include "core/stats.h"

#include <stdexcept>
#include <vector>

namespace segroute {

UtilizationStats utilization(const SegmentedChannel& ch,
                             const ConnectionSet& cs, const Routing& r) {
  if (r.size() != cs.size()) {
    throw std::invalid_argument("utilization: size mismatch");
  }
  UtilizationStats st;
  st.total_segments = ch.total_segments();
  st.total_columns = ch.num_tracks() * ch.width();

  std::vector<std::vector<bool>> occ(static_cast<std::size_t>(ch.num_tracks()));
  for (TrackId t = 0; t < ch.num_tracks(); ++t) {
    occ[static_cast<std::size_t>(t)].assign(
        static_cast<std::size_t>(ch.track(t).num_segments()), false);
  }
  std::vector<bool> touched(static_cast<std::size_t>(ch.num_tracks()), false);
  for (ConnId i = 0; i < cs.size(); ++i) {
    if (!r.is_assigned(i)) continue;
    const TrackId t = r.track_of(i);
    if (t < 0 || t >= ch.num_tracks()) {
      throw std::invalid_argument("utilization: bad track id");
    }
    st.demanded_columns += cs[i].length();
    touched[static_cast<std::size_t>(t)] = true;
    auto [a, b] = ch.track(t).span(cs[i].left, cs[i].right);
    for (SegId s = a; s <= b; ++s) {
      occ[static_cast<std::size_t>(t)][static_cast<std::size_t>(s)] = true;
    }
  }
  for (TrackId t = 0; t < ch.num_tracks(); ++t) {
    if (touched[static_cast<std::size_t>(t)]) ++st.tracks_touched;
    for (SegId s = 0; s < ch.track(t).num_segments(); ++s) {
      if (occ[static_cast<std::size_t>(t)][static_cast<std::size_t>(s)]) {
        ++st.occupied_segments;
        st.occupied_columns += ch.track(t).segment(s).length();
      }
    }
  }
  return st;
}

}  // namespace segroute
