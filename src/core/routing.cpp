#include "core/routing.h"

#include <algorithm>

namespace segroute {

bool Routing::is_complete() const {
  return std::all_of(track_of_.begin(), track_of_.end(),
                     [](TrackId t) { return t != kNoTrack; });
}

ConnId Routing::num_assigned() const {
  return static_cast<ConnId>(std::count_if(
      track_of_.begin(), track_of_.end(),
      [](TrackId t) { return t != kNoTrack; }));
}

int segments_used(const SegmentedChannel& ch, const Connection& c, TrackId t) {
  return ch.track(t).segments_spanned(c.left, c.right);
}

Occupancy::Occupancy(const SegmentedChannel& ch) : ch_(&ch) {
  occ_.resize(static_cast<std::size_t>(ch.num_tracks()));
  for (TrackId t = 0; t < ch.num_tracks(); ++t) {
    occ_[static_cast<std::size_t>(t)].assign(
        static_cast<std::size_t>(ch.track(t).num_segments()), kNoConn);
  }
}

void Occupancy::reset() {
  for (auto& row : occ_) std::fill(row.begin(), row.end(), kNoConn);
}

void Occupancy::rebind(const SegmentedChannel& ch) {
  // Per-row incremental: a row whose segment count already matches is
  // cleared in place, so a single-track edit (the delta layer's common
  // case) reallocates only the row it changed instead of rebuilding the
  // whole workspace.
  ch_ = &ch;
  occ_.resize(static_cast<std::size_t>(ch.num_tracks()));
  for (TrackId t = 0; t < ch.num_tracks(); ++t) {
    auto& row = occ_[static_cast<std::size_t>(t)];
    const auto want = static_cast<std::size_t>(ch.track(t).num_segments());
    if (row.size() == want) {
      std::fill(row.begin(), row.end(), kNoConn);
    } else {
      row.assign(want, kNoConn);
    }
  }
}

bool Occupancy::fits(TrackId t, Column lo, Column hi) const {
  auto [a, b] = ch_->track(t).span(lo, hi);
  const auto& row = occ_[static_cast<std::size_t>(t)];
  for (SegId s = a; s <= b; ++s) {
    if (row[static_cast<std::size_t>(s)] != kNoConn) return false;
  }
  return true;
}

bool Occupancy::place(TrackId t, Column lo, Column hi, ConnId c) {
  if (!fits(t, lo, hi)) return false;
  auto [a, b] = ch_->track(t).span(lo, hi);
  auto& row = occ_[static_cast<std::size_t>(t)];
  for (SegId s = a; s <= b; ++s) row[static_cast<std::size_t>(s)] = c;
  return true;
}

void Occupancy::remove(TrackId t, Column lo, Column hi) {
  auto [a, b] = ch_->track(t).span(lo, hi);
  auto& row = occ_[static_cast<std::size_t>(t)];
  for (SegId s = a; s <= b; ++s) row[static_cast<std::size_t>(s)] = kNoConn;
}

ValidationResult validate(const SegmentedChannel& ch, const ConnectionSet& cs,
                          const Routing& r, std::optional<int> max_segments,
                          bool require_complete) {
  auto fail = [](std::string msg) {
    return ValidationResult{false, std::move(msg)};
  };
  if (r.size() != cs.size()) {
    return fail("routing size " + std::to_string(r.size()) +
                " != connection count " + std::to_string(cs.size()));
  }
  if (cs.max_right() > ch.width()) {
    return fail("connections extend past channel width");
  }
  Occupancy occ(ch);
  for (ConnId i = 0; i < cs.size(); ++i) {
    const TrackId t = r.track_of(i);
    if (t == kNoTrack) {
      if (require_complete) {
        return fail("connection " + std::to_string(i) + " unassigned");
      }
      continue;
    }
    if (t < 0 || t >= ch.num_tracks()) {
      return fail("connection " + std::to_string(i) + " assigned to bad track " +
                  std::to_string(t));
    }
    const Connection& c = cs[i];
    if (max_segments && segments_used(ch, c, t) > *max_segments) {
      return fail("connection " + std::to_string(i) + " occupies " +
                  std::to_string(segments_used(ch, c, t)) +
                  " segments, limit " + std::to_string(*max_segments));
    }
    if (!occ.place(t, c.left, c.right, i)) {
      return fail("connection " + std::to_string(i) +
                  " conflicts on track " + std::to_string(t));
    }
  }
  return {};
}

}  // namespace segroute
