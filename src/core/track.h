// Track: one horizontal wiring track of a segmented channel, divided into
// contiguous segments by switches.
#pragma once

#include <vector>

#include "core/segment.h"
#include "core/types.h"

namespace segroute {

/// A track spanning columns 1..N, partitioned into one or more segments.
///
/// Invariants (enforced at construction):
///  - segments are contiguous: seg[0].left == 1, seg[k+1].left ==
///    seg[k].right + 1, seg.back().right == N;
///  - every segment is non-empty.
///
/// The canonical constructor takes the *switch positions*: a sorted list of
/// columns `c` such that a switch separates column `c` from column `c+1`
/// (1 <= c < N). An empty list yields a single full-width segment.
class Track {
 public:
  /// Builds a track over columns 1..`width` with switches after each column
  /// in `switches_after`. Throws std::invalid_argument on out-of-range or
  /// duplicate switch positions or non-positive width.
  Track(Column width, std::vector<Column> switches_after);

  /// Builds a track directly from a contiguous segment list (validates).
  static Track from_segments(std::vector<Segment> segments);

  /// Convenience: a track that is one single segment (unsegmented).
  static Track unsegmented(Column width);

  /// Convenience: a switch between every pair of adjacent columns
  /// (fully segmented: every segment has length 1).
  static Track fully_segmented(Column width);

  [[nodiscard]] Column width() const { return width_; }
  [[nodiscard]] SegId num_segments() const {
    return static_cast<SegId>(segments_.size());
  }
  [[nodiscard]] const Segment& segment(SegId i) const { return segments_[i]; }
  [[nodiscard]] const std::vector<Segment>& segments() const { return segments_; }

  /// Index of the segment containing column `c` (1 <= c <= width).
  /// Branchless binary search over the segment list, O(log S) with no
  /// per-column lookup table. The hot routers bypass this entirely via
  /// ChannelIndex's O(1) per-column table (core/channel_index.h).
  [[nodiscard]] SegId segment_at(Column c) const;

  /// Segment-index range [first, last] (inclusive) a connection spanning
  /// columns [lo, hi] would occupy in this track. Per the paper's occupancy
  /// rule this is every segment s with right(s) >= lo and left(s) <= hi,
  /// which — segments being a partition — is segment_at(lo)..segment_at(hi).
  [[nodiscard]] std::pair<SegId, SegId> span(Column lo, Column hi) const;

  /// Number of segments a connection spanning [lo, hi] would occupy.
  [[nodiscard]] int segments_spanned(Column lo, Column hi) const;

  /// Sum of the lengths of the segments a connection spanning [lo, hi]
  /// would occupy (the paper's suggested weight for Problem 3).
  [[nodiscard]] Column occupied_length(Column lo, Column hi) const;

  /// The switch positions this track was built from (sorted). Two tracks
  /// are "identically segmented" iff these lists are equal.
  [[nodiscard]] std::vector<Column> switch_positions() const;

  /// Extends [lo, hi] outward to the nearest segment boundaries: the result
  /// is [left(segment_at(lo)), right(segment_at(hi))]. Used for the
  /// switch-aligned density bound of Section IV-A.
  [[nodiscard]] std::pair<Column, Column> align_to_segments(Column lo,
                                                            Column hi) const;

  friend bool operator==(const Track& a, const Track& b) {
    return a.segments_ == b.segments_;
  }

 private:
  explicit Track(std::vector<Segment> segments);

  Column width_ = 0;
  std::vector<Segment> segments_;
};

}  // namespace segroute
