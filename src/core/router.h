// The uniform router contract: one request shape for every routing
// strategy in the library.
//
// The paper poses four problem variants (unlimited, K-segment,
// weighted-optimal, generalized) and this library implements about a
// dozen routers for them. Historically each had its own signature —
// positional tie-break enums, optional RouteContext parameters, ad-hoc
// throw contracts — so every consumer (the robust_route portfolio, the
// batch engine, capacity search, benches, tests) hand-wired each router
// separately. A RouteRequest carries everything any of them needs:
//
//   - the channel and connection set to route (borrowed, required);
//   - optional shared structure and scratch: a prebuilt ChannelIndex,
//     a reusable Occupancy (both via RouteContext) and a DP workspace,
//     so engine-style callers stay allocation-free in steady state;
//   - RouterOptions: the common knobs (K-segment limit, optimization
//     weight) plus a string-keyed parameter map for router-specific
//     extras (tie-break policy, annealing schedule, node caps);
//   - a harness::Budget bounding the call.
//
// Routers consume a request through alg/registry.h, which maps names
// ("dp", "greedy1", ...) to entries with capability flags and a
// non-throwing route function. No registry route path throws on invalid
// input: malformed requests come back as RouteResult with
// FailureKind::kInvalidInput.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <variant>

#include "core/channel.h"
#include "core/channel_index.h"
#include "core/connection.h"
#include "core/weights.h"
#include "harness/budget.h"

namespace segroute {

namespace alg {
struct DpWorkspace;  // alg/dp.h
}

/// The common routing knobs plus a string-keyed escape hatch for
/// router-specific parameters. Unknown keys are ignored by routers that
/// do not understand them, so one options object can be broadcast to a
/// whole portfolio.
struct RouterOptions {
  /// 0 = unlimited-segment routing (Problem 1); K > 0 = K-segment
  /// routing (Problem 2). Routers that only solve K = 1 (see
  /// RouterCaps::k1_only) still produce valid routings for any K >= 1 or
  /// unlimited — a 1-segment routing satisfies every limit — but their
  /// failures prove infeasibility only when K = 1 was asked for.
  int max_segments = 0;

  /// If set, minimize this total weight (Problem 3). Routers without
  /// RouterCaps::supports_weight reject a weighted request as
  /// kInvalidInput rather than silently ignoring the objective.
  std::optional<WeightFn> weight;

  /// Router-specific extras. Documented per registry entry; e.g.
  /// "tie_break" ("lowest"/"highest") for greedy1, "restarts"/"seed" for
  /// anneal, "policy" ("best-fit"/"first-fit") and "ripup" for online.
  using Param = std::variant<bool, std::int64_t, double, std::string>;
  std::map<std::string, Param> params;

  /// Typed parameter lookups; a missing key or a type mismatch yields
  /// the fallback (routers never throw over a malformed extra).
  [[nodiscard]] std::int64_t param_int(const std::string& key,
                                       std::int64_t fallback) const {
    const auto it = params.find(key);
    if (it == params.end()) return fallback;
    if (const auto* v = std::get_if<std::int64_t>(&it->second)) return *v;
    if (const auto* b = std::get_if<bool>(&it->second)) return *b ? 1 : 0;
    return fallback;
  }
  [[nodiscard]] double param_double(const std::string& key,
                                    double fallback) const {
    const auto it = params.find(key);
    if (it == params.end()) return fallback;
    if (const auto* v = std::get_if<double>(&it->second)) return *v;
    if (const auto* i = std::get_if<std::int64_t>(&it->second)) {
      return static_cast<double>(*i);
    }
    return fallback;
  }
  [[nodiscard]] bool param_bool(const std::string& key, bool fallback) const {
    const auto it = params.find(key);
    if (it == params.end()) return fallback;
    if (const auto* v = std::get_if<bool>(&it->second)) return *v;
    if (const auto* i = std::get_if<std::int64_t>(&it->second)) {
      return *i != 0;
    }
    return fallback;
  }
  [[nodiscard]] std::string param_str(const std::string& key,
                                      std::string fallback) const {
    const auto it = params.find(key);
    if (it == params.end()) return fallback;
    if (const auto* v = std::get_if<std::string>(&it->second)) return *v;
    return fallback;
  }
};

/// What a registered router can do and what input shapes it accepts.
/// The accept-shape flags (needs_*, requires_weight, supports_weight)
/// are *enforced* by the registry dispatcher: a request outside the
/// router's domain comes back kInvalidInput instead of a throw or a
/// wrong answer. The proof-semantics flags (exact, optimal, k1_only,
/// anytime) tell consumers how to interpret results — robust_route uses
/// them to decide when a failure proves infeasibility and when a
/// success ends an optimizing cascade.
struct RouterCaps {
  /// A completed search is a proof: success means a valid routing of the
  /// posed problem, kInfeasible means none exists (on the router's
  /// accepted domain; see k1_only for the 1-segment specialists).
  bool exact = false;

  /// With a weight, finds the true minimum (Problem 3), not just any
  /// routing.
  bool optimal = false;

  /// Accepts RouterOptions::weight. Routers without it reject weighted
  /// requests; portfolio callers strip the weight instead and score the
  /// candidate externally.
  bool supports_weight = false;

  /// Meaningless without a weight (branch-and-bound): an unweighted
  /// request is kInvalidInput.
  bool requires_weight = false;

  /// Honors RouterOptions::max_segments as a K-segment limit.
  bool supports_k = false;

  /// Solves exactly the K = 1 problem: sound for any K (its routings are
  /// 1-segment), exact/optimal only when max_segments == 1.
  bool k1_only = false;

  /// Requires SegmentedChannel::identically_segmented(); mixed channels
  /// are kInvalidInput (left-edge).
  bool needs_identical_tracks = false;

  /// Requires every track to have at most two segments; otherwise
  /// kInvalidInput (greedy2track).
  bool needs_le2_segments_per_track = false;

  /// Budget/limit exhaustion may still return a best-so-far success
  /// whose note marks it potentially suboptimal (branch-bound,
  /// exhaustive); exact-optimal only when the note is empty.
  bool anytime = false;
};

/// One routing request: everything a registered router may need, in one
/// struct. All pointers are borrowed and must outlive the call.
struct RouteRequest {
  /// The channel to route in. Required.
  const SegmentedChannel* channel = nullptr;

  /// The connections to route. Required.
  const ConnectionSet* connections = nullptr;

  /// Optional shared structure and occupancy scratch. When
  /// context.index is set it MUST have been built for `*channel`;
  /// results are bit-identical with and without it.
  RouteContext context;

  /// Optional reusable scratch for the DP-family routers (ignored by the
  /// rest). One workspace per thread, never shared by concurrent calls.
  alg::DpWorkspace* dp_workspace = nullptr;

  /// The common knobs plus router-specific parameters.
  RouterOptions options;

  /// Resource bounds for this call (default: unlimited).
  harness::Budget budget;
};

}  // namespace segroute
