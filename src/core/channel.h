// SegmentedChannel: the routing substrate of the paper — T tracks spanning
// columns 1..N, each divided into fixed segments by switches.
#pragma once

#include <vector>

#include "core/track.h"
#include "core/types.h"

namespace segroute {

/// An immutable segmented routing channel.
///
/// Invariant: at least one track, and all tracks have equal width.
class SegmentedChannel {
 public:
  /// Builds a channel from per-track descriptions. Throws
  /// std::invalid_argument if widths disagree or `tracks` is empty.
  explicit SegmentedChannel(std::vector<Track> tracks);

  /// T identical tracks built from the same switch list.
  static SegmentedChannel identical(TrackId num_tracks, Column width,
                                    const std::vector<Column>& switches_after);

  /// T continuous tracks (Fig. 2(d): unsegmented channel).
  static SegmentedChannel unsegmented(TrackId num_tracks, Column width);

  /// T fully segmented tracks (Fig. 2(c): a switch at every column gap).
  static SegmentedChannel fully_segmented(TrackId num_tracks, Column width);

  [[nodiscard]] TrackId num_tracks() const {
    return static_cast<TrackId>(tracks_.size());
  }
  [[nodiscard]] Column width() const { return width_; }
  [[nodiscard]] const Track& track(TrackId t) const { return tracks_[t]; }
  [[nodiscard]] const std::vector<Track>& tracks() const { return tracks_; }

  /// Total number of segments across all tracks.
  [[nodiscard]] int total_segments() const;

  /// True if all tracks are identically segmented (Section IV-A's
  /// "identically segmented tracks" special case).
  [[nodiscard]] bool identically_segmented() const;

  /// Maximum number of segments in any single track. 1 means the channel is
  /// unsegmented; <= 2 enables the Theorem-4 greedy algorithm.
  [[nodiscard]] int max_segments_per_track() const;

  /// Partition of tracks into identical-segmentation classes: type_of()[t]
  /// is a dense type id in [0, num_types()). Tracks of the same type are
  /// interchangeable for routing purposes (Theorem 7).
  [[nodiscard]] const std::vector<int>& type_of() const { return type_of_; }
  [[nodiscard]] int num_types() const { return num_types_; }

 private:
  std::vector<Track> tracks_;
  Column width_ = 0;
  std::vector<int> type_of_;
  int num_types_ = 0;
};

}  // namespace segroute
