#include "core/weights.h"

#include <limits>
#include <stdexcept>

namespace segroute {

namespace weights {

WeightFn occupied_length() {
  return [](const SegmentedChannel& ch, const Connection& c, TrackId t) {
    return static_cast<double>(ch.track(t).occupied_length(c.left, c.right));
  };
}

WeightFn segment_count() {
  return [](const SegmentedChannel& ch, const Connection& c, TrackId t) {
    return static_cast<double>(ch.track(t).segments_spanned(c.left, c.right));
  };
}

WeightFn segments_capped(int k) {
  return [k](const SegmentedChannel& ch, const Connection& c, TrackId t) {
    const int n = ch.track(t).segments_spanned(c.left, c.right);
    if (n > k) return std::numeric_limits<double>::infinity();
    return static_cast<double>(n);
  };
}

WeightFn wasted_length() {
  return [](const SegmentedChannel& ch, const Connection& c, TrackId t) {
    return static_cast<double>(ch.track(t).occupied_length(c.left, c.right) -
                               c.length());
  };
}

WeightFn unit() {
  return [](const SegmentedChannel&, const Connection&, TrackId) { return 1.0; };
}

}  // namespace weights

double total_weight(const SegmentedChannel& ch, const ConnectionSet& cs,
                    const Routing& r, const WeightFn& w) {
  if (r.size() != cs.size()) {
    throw std::invalid_argument("total_weight: size mismatch");
  }
  double sum = 0;
  for (ConnId i = 0; i < cs.size(); ++i) {
    if (!r.is_assigned(i)) {
      throw std::invalid_argument("total_weight: connection " +
                                  std::to_string(i) + " unassigned");
    }
    sum += w(ch, cs[i], r.track_of(i));
  }
  return sum;
}

}  // namespace segroute
