// Basic identifier and coordinate types shared across the segroute library.
//
// Conventions (matching the paper):
//  - Columns are 1-based: a channel spans columns 1..N.
//  - Switches sit *between* adjacent columns; "a switch after column c"
//    separates column c from column c+1.
//  - Tracks and connections are handled as 0-based indices internally and
//    printed 1-based by the io layer.
#pragma once

#include <cstdint>

namespace segroute {

/// 1-based column coordinate within a channel (1..N).
using Column = std::int32_t;

/// 0-based track index within a channel (0..T-1).
using TrackId = std::int32_t;

/// 0-based connection index within a ConnectionSet (0..M-1).
using ConnId = std::int32_t;

/// 0-based segment index within a track.
using SegId = std::int32_t;

/// Sentinel for "no track assigned".
inline constexpr TrackId kNoTrack = -1;

/// Sentinel for "no connection".
inline constexpr ConnId kNoConn = -1;

}  // namespace segroute
