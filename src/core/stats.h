// Utilization metrics of a routed channel — the waste measures behind
// the paper's Fig. 2 discussion ("the capacitance problem is only
// compounded, and the area is excessive").
#pragma once

#include "core/channel.h"
#include "core/connection.h"
#include "core/routing.h"

namespace segroute {

struct UtilizationStats {
  int total_segments = 0;      // segments in the channel
  int occupied_segments = 0;   // segments carrying some connection
  Column total_columns = 0;    // T * N wiring columns
  Column occupied_columns = 0; // columns of occupied segments
  Column demanded_columns = 0; // sum of connection lengths
  int tracks_touched = 0;      // tracks carrying at least one connection

  /// Fraction of channel wiring actually occupied.
  [[nodiscard]] double wire_utilization() const {
    return total_columns ? static_cast<double>(occupied_columns) /
                               static_cast<double>(total_columns)
                         : 0.0;
  }
  /// Overhang factor: occupied wire / demanded wire (>= 1 for complete
  /// routings; 1.0 means every net got an exact-fit segment set).
  [[nodiscard]] double overhang() const {
    return demanded_columns ? static_cast<double>(occupied_columns) /
                                  static_cast<double>(demanded_columns)
                            : 0.0;
  }
};

/// Computes utilization of a valid (possibly partial) routing.
/// Throws std::invalid_argument on size mismatch or bad track ids.
UtilizationStats utilization(const SegmentedChannel& ch,
                             const ConnectionSet& cs, const Routing& r);

}  // namespace segroute
