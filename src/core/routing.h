// Routing: an assignment of connections to tracks, plus validation
// (Definition 1 of the paper) and occupancy/weight queries.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/channel.h"
#include "core/connection.h"
#include "core/types.h"

namespace segroute {

/// A (possibly partial) routing: track_of(i) is the track connection i is
/// assigned to, or kNoTrack. A *complete* routing assigns every connection.
class Routing {
 public:
  Routing() = default;
  explicit Routing(ConnId num_connections)
      : track_of_(static_cast<std::size_t>(num_connections), kNoTrack) {}

  [[nodiscard]] ConnId size() const {
    return static_cast<ConnId>(track_of_.size());
  }
  [[nodiscard]] TrackId track_of(ConnId c) const { return track_of_[c]; }
  void assign(ConnId c, TrackId t) { track_of_[c] = t; }
  void unassign(ConnId c) { track_of_[c] = kNoTrack; }
  [[nodiscard]] bool is_assigned(ConnId c) const {
    return track_of_[c] != kNoTrack;
  }
  [[nodiscard]] bool is_complete() const;

  /// Number of assigned connections.
  [[nodiscard]] ConnId num_assigned() const;

  friend bool operator==(const Routing&, const Routing&) = default;

 private:
  std::vector<TrackId> track_of_;
};

/// Outcome of validating a routing against a channel and connection set.
struct ValidationResult {
  bool ok = true;
  std::string error;  // human-readable description of the first violation

  explicit operator bool() const { return ok; }
};

/// Checks Definition 1: every assigned connection's occupied segments are
/// disjoint from every other assigned connection's. If `max_segments` is
/// given, also checks the K-segment condition (each connection occupies at
/// most K segments). Unassigned connections are permitted (use
/// `require_complete` to reject them). Sizes must match.
ValidationResult validate(const SegmentedChannel& ch, const ConnectionSet& cs,
                          const Routing& r,
                          std::optional<int> max_segments = std::nullopt,
                          bool require_complete = true);

/// Number of segments connection `c` occupies when assigned to track `t`.
int segments_used(const SegmentedChannel& ch, const Connection& c, TrackId t);

/// Per-track occupancy bitmap utility used by routers and the validator:
/// marks the segments each assigned connection occupies; returns false and
/// sets `conflict` on the first doubly-occupied segment.
class Occupancy {
 public:
  explicit Occupancy(const SegmentedChannel& ch);

  /// Clears every segment to unoccupied in place, without reallocating.
  /// Lets a caller that routes repeatedly on one channel reuse a single
  /// workspace instead of constructing a fresh Occupancy per attempt.
  void reset();

  /// Points the workspace at `ch` and clears it. Per-row incremental:
  /// each row whose segment count already matches `ch` is reused in
  /// place (the steady-state, allocation-free path of the engine's
  /// per-thread scratch), and only mismatched rows are rebuilt — so an
  /// edit that resegments one track touches one row.
  void rebind(const SegmentedChannel& ch);

  /// True if connection span [lo, hi] can be placed on track t without
  /// touching an occupied segment.
  [[nodiscard]] bool fits(TrackId t, Column lo, Column hi) const;

  /// Marks the segments spanned by [lo, hi] on track t as occupied by
  /// connection `c`. Returns false (and changes nothing) on conflict.
  bool place(TrackId t, Column lo, Column hi, ConnId c);

  /// Releases the segments spanned by [lo, hi] on track t.
  void remove(TrackId t, Column lo, Column hi);

  /// Occupant of segment `s` of track `t`, or kNoConn.
  [[nodiscard]] ConnId occupant(TrackId t, SegId s) const {
    return occ_[static_cast<std::size_t>(t)][static_cast<std::size_t>(s)];
  }

  /// Heap bytes retained by the workspace (row capacities, not sizes) —
  /// observability for long-lived reusable instances.
  [[nodiscard]] std::size_t bytes_held() const {
    std::size_t bytes = occ_.capacity() * sizeof(occ_[0]);
    for (const auto& row : occ_) bytes += row.capacity() * sizeof(ConnId);
    return bytes;
  }

 private:
  const SegmentedChannel* ch_;
  std::vector<std::vector<ConnId>> occ_;  // per track, per segment
};

}  // namespace segroute
