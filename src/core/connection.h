// Connection and ConnectionSet: the demand side of a routing problem.
#pragma once

#include <string>
#include <vector>

#include "core/channel.h"
#include "core/types.h"

namespace segroute {

/// A two-terminal horizontal connection spanning columns [left, right]
/// (inclusive, 1-based). `name` is optional, for diagnostics and examples.
struct Connection {
  Column left = 0;
  Column right = 0;
  std::string name;

  [[nodiscard]] Column length() const { return right - left + 1; }

  /// True if the two connections share at least one column (the paper's
  /// "overlap" relation).
  [[nodiscard]] bool overlaps(const Connection& o) const {
    return left <= o.right && o.left <= right;
  }

  friend bool operator==(const Connection& a, const Connection& b) {
    return a.left == b.left && a.right == b.right;
  }
};

/// An ordered collection of connections.
///
/// Invariant: every connection satisfies 1 <= left <= right. Connections
/// are stored in the order given; `sorted_by_left()` yields the processing
/// order assumed throughout the paper (non-decreasing left end).
class ConnectionSet {
 public:
  ConnectionSet() = default;
  explicit ConnectionSet(std::vector<Connection> conns);

  /// Appends a connection; returns its id.
  ConnId add(Column left, Column right, std::string name = {});

  [[nodiscard]] ConnId size() const { return static_cast<ConnId>(conns_.size()); }
  [[nodiscard]] bool empty() const { return conns_.empty(); }
  [[nodiscard]] const Connection& operator[](ConnId i) const { return conns_[i]; }
  [[nodiscard]] const std::vector<Connection>& all() const { return conns_; }

  /// Connection ids sorted by non-decreasing left end (stable).
  [[nodiscard]] std::vector<ConnId> sorted_by_left() const;

  /// As sorted_by_left(), written into `out` (capacity reused across
  /// calls) — the allocation-free variant for repeated-route workspaces.
  void sorted_by_left(std::vector<ConnId>& out) const;

  /// True if the stored order already has non-decreasing left ends.
  [[nodiscard]] bool is_sorted_by_left() const;

  /// Rightmost column any connection touches (0 if empty).
  [[nodiscard]] Column max_right() const;

  /// Channel density: the maximum, over columns, of the number of
  /// connections present in that column. For conventional (unconstrained)
  /// routing with no vertical constraints this equals the exact number of
  /// tracks needed (left-edge algorithm, Fig. 2(b)).
  [[nodiscard]] int density() const;

  /// Density after extending each connection outward to the segment
  /// boundaries of an identically segmented channel (Section IV-A: with
  /// this extension, density is again a valid upper bound for left-edge
  /// routing on identical tracks). Throws if the channel's tracks are not
  /// identically segmented or the connections exceed its width.
  [[nodiscard]] int extended_density(const SegmentedChannel& ch) const;

 private:
  std::vector<Connection> conns_;
};

}  // namespace segroute
