#include "core/channel.h"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace segroute {

SegmentedChannel::SegmentedChannel(std::vector<Track> tracks)
    : tracks_(std::move(tracks)) {
  if (tracks_.empty()) {
    throw std::invalid_argument("SegmentedChannel: need at least one track");
  }
  width_ = tracks_.front().width();
  for (const Track& t : tracks_) {
    if (t.width() != width_) {
      throw std::invalid_argument(
          "SegmentedChannel: all tracks must span the same columns");
    }
  }
  // Classify tracks into identical-segmentation types, in order of first
  // appearance so type ids are deterministic.
  std::map<std::vector<Column>, int> seen;
  type_of_.reserve(tracks_.size());
  for (const Track& t : tracks_) {
    auto [it, inserted] = seen.try_emplace(t.switch_positions(), num_types_);
    if (inserted) ++num_types_;
    type_of_.push_back(it->second);
  }
}

SegmentedChannel SegmentedChannel::identical(
    TrackId num_tracks, Column width, const std::vector<Column>& switches_after) {
  if (num_tracks <= 0) {
    throw std::invalid_argument("SegmentedChannel: need at least one track");
  }
  std::vector<Track> tracks;
  tracks.reserve(static_cast<std::size_t>(num_tracks));
  for (TrackId t = 0; t < num_tracks; ++t) {
    tracks.emplace_back(width, switches_after);
  }
  return SegmentedChannel(std::move(tracks));
}

SegmentedChannel SegmentedChannel::unsegmented(TrackId num_tracks, Column width) {
  return identical(num_tracks, width, {});
}

SegmentedChannel SegmentedChannel::fully_segmented(TrackId num_tracks,
                                                   Column width) {
  std::vector<Column> sw;
  for (Column c = 1; c < width; ++c) sw.push_back(c);
  return identical(num_tracks, width, sw);
}

int SegmentedChannel::total_segments() const {
  int n = 0;
  for (const Track& t : tracks_) n += t.num_segments();
  return n;
}

bool SegmentedChannel::identically_segmented() const { return num_types_ == 1; }

int SegmentedChannel::max_segments_per_track() const {
  int m = 0;
  for (const Track& t : tracks_) m = std::max(m, static_cast<int>(t.num_segments()));
  return m;
}

}  // namespace segroute
