// GeneralizedRouting: Definition 2 of the paper — each connection may be
// split into contiguous parts assigned to different tracks.
#pragma once

#include <optional>
#include <vector>

#include "core/channel.h"
#include "core/connection.h"
#include "core/routing.h"
#include "core/types.h"

namespace segroute {

/// One contiguous part of a split connection: columns [left, right] of the
/// parent connection, assigned to `track`.
struct RoutePart {
  Column left = 0;
  Column right = 0;
  TrackId track = kNoTrack;

  friend bool operator==(const RoutePart&, const RoutePart&) = default;
};

/// A generalized routing: for each connection, an ordered list of parts.
/// A complete generalized routing covers every connection's span exactly.
class GeneralizedRouting {
 public:
  GeneralizedRouting() = default;
  explicit GeneralizedRouting(ConnId num_connections)
      : parts_(static_cast<std::size_t>(num_connections)) {}

  [[nodiscard]] ConnId size() const {
    return static_cast<ConnId>(parts_.size());
  }
  [[nodiscard]] const std::vector<RoutePart>& parts(ConnId c) const {
    return parts_[c];
  }
  std::vector<RoutePart>& parts(ConnId c) { return parts_[c]; }

  /// Appends a part to connection c's route.
  void add_part(ConnId c, Column left, Column right, TrackId t) {
    parts_[c].push_back(RoutePart{left, right, t});
  }

  /// Number of distinct tracks used by connection c.
  [[nodiscard]] int tracks_used(ConnId c) const;

  /// Number of columns at which connection c changes tracks (p-1 for p
  /// parts after merging adjacent same-track parts).
  [[nodiscard]] int track_changes(ConnId c) const;

  /// Merges adjacent parts of a connection that sit on the same track.
  void normalize();

  /// Lifts a plain (Definition 1) routing: one part per connection.
  static GeneralizedRouting from_routing(const ConnectionSet& cs,
                                         const Routing& r);

 private:
  std::vector<std::vector<RoutePart>> parts_;
};

/// Validates a generalized routing per Definition 2:
///  - each connection's parts exactly tile [left, right] in order;
///  - no segment is occupied by more than one *connection* (two parts of
///    the same connection may share a segment);
///  - if `max_segments` is given, each connection occupies at most K
///    segments in total (counted across all tracks, each segment once);
///  - if `max_tracks_per_conn` is given, each connection uses at most that
///    many distinct tracks.
ValidationResult validate(const SegmentedChannel& ch, const ConnectionSet& cs,
                          const GeneralizedRouting& r,
                          std::optional<int> max_segments = std::nullopt,
                          std::optional<int> max_tracks_per_conn = std::nullopt);

}  // namespace segroute
