#include "core/generalized.h"

#include <algorithm>
#include <set>
#include <string>

namespace segroute {

int GeneralizedRouting::tracks_used(ConnId c) const {
  std::set<TrackId> tracks;
  for (const RoutePart& p : parts_[c]) tracks.insert(p.track);
  return static_cast<int>(tracks.size());
}

int GeneralizedRouting::track_changes(ConnId c) const {
  const auto& ps = parts_[c];
  int changes = 0;
  for (std::size_t i = 1; i < ps.size(); ++i) {
    if (ps[i].track != ps[i - 1].track) ++changes;
  }
  return changes;
}

void GeneralizedRouting::normalize() {
  for (auto& ps : parts_) {
    std::vector<RoutePart> merged;
    for (const RoutePart& p : ps) {
      if (!merged.empty() && merged.back().track == p.track &&
          merged.back().right + 1 == p.left) {
        merged.back().right = p.right;
      } else {
        merged.push_back(p);
      }
    }
    ps = std::move(merged);
  }
}

GeneralizedRouting GeneralizedRouting::from_routing(const ConnectionSet& cs,
                                                    const Routing& r) {
  GeneralizedRouting g(cs.size());
  for (ConnId i = 0; i < cs.size(); ++i) {
    if (r.is_assigned(i)) {
      g.add_part(i, cs[i].left, cs[i].right, r.track_of(i));
    }
  }
  return g;
}

ValidationResult validate(const SegmentedChannel& ch, const ConnectionSet& cs,
                          const GeneralizedRouting& r,
                          std::optional<int> max_segments,
                          std::optional<int> max_tracks_per_conn) {
  auto fail = [](std::string msg) {
    return ValidationResult{false, std::move(msg)};
  };
  if (r.size() != cs.size()) {
    return fail("generalized routing size mismatch");
  }
  // Per-(track, segment) occupant.
  std::vector<std::vector<ConnId>> occ(
      static_cast<std::size_t>(ch.num_tracks()));
  for (TrackId t = 0; t < ch.num_tracks(); ++t) {
    occ[static_cast<std::size_t>(t)].assign(
        static_cast<std::size_t>(ch.track(t).num_segments()), kNoConn);
  }
  for (ConnId i = 0; i < cs.size(); ++i) {
    const Connection& c = cs[i];
    const auto& ps = r.parts(i);
    if (ps.empty()) {
      return fail("connection " + std::to_string(i) + " has no parts");
    }
    // Tiling check.
    Column expect = c.left;
    for (const RoutePart& p : ps) {
      if (p.left != expect || p.right < p.left) {
        return fail("connection " + std::to_string(i) +
                    " parts do not tile its span");
      }
      if (p.track < 0 || p.track >= ch.num_tracks()) {
        return fail("connection " + std::to_string(i) + " part on bad track");
      }
      expect = p.right + 1;
    }
    if (expect != c.right + 1) {
      return fail("connection " + std::to_string(i) +
                  " parts do not reach its right end");
    }
    // Occupancy: each part occupies the segments it spans; sharing within
    // the same connection is allowed.
    std::set<std::pair<TrackId, SegId>> own;
    for (const RoutePart& p : ps) {
      auto [a, b] = ch.track(p.track).span(p.left, p.right);
      for (SegId s = a; s <= b; ++s) {
        ConnId& cell =
            occ[static_cast<std::size_t>(p.track)][static_cast<std::size_t>(s)];
        if (cell != kNoConn && cell != i) {
          return fail("segment shared by connections " + std::to_string(cell) +
                      " and " + std::to_string(i));
        }
        cell = i;
        own.emplace(p.track, s);
      }
    }
    if (max_segments && static_cast<int>(own.size()) > *max_segments) {
      return fail("connection " + std::to_string(i) + " occupies " +
                  std::to_string(own.size()) + " segments, limit " +
                  std::to_string(*max_segments));
    }
    if (max_tracks_per_conn && r.tracks_used(i) > *max_tracks_per_conn) {
      return fail("connection " + std::to_string(i) + " uses " +
                  std::to_string(r.tracks_used(i)) + " tracks, limit " +
                  std::to_string(*max_tracks_per_conn));
    }
  }
  return {};
}

}  // namespace segroute
