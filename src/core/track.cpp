#include "core/track.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>

namespace segroute {

namespace {

std::vector<Segment> segments_from_switches(Column width,
                                            std::vector<Column> sw) {
  if (width <= 0) {
    throw std::invalid_argument("Track: width must be positive, got " +
                                std::to_string(width));
  }
  std::sort(sw.begin(), sw.end());
  if (std::adjacent_find(sw.begin(), sw.end()) != sw.end()) {
    throw std::invalid_argument("Track: duplicate switch position");
  }
  if (!sw.empty() && (sw.front() < 1 || sw.back() >= width)) {
    throw std::invalid_argument(
        "Track: switch positions must lie in [1, width-1]");
  }
  std::vector<Segment> segs;
  segs.reserve(sw.size() + 1);
  Column left = 1;
  for (Column cut : sw) {
    segs.push_back(Segment{left, cut});
    left = cut + 1;
  }
  segs.push_back(Segment{left, width});
  return segs;
}

}  // namespace

Track::Track(Column width, std::vector<Column> switches_after)
    : Track(segments_from_switches(width, std::move(switches_after))) {}

Track::Track(std::vector<Segment> segments) : segments_(std::move(segments)) {
  if (segments_.empty()) {
    throw std::invalid_argument("Track: need at least one segment");
  }
  if (segments_.front().left != 1) {
    throw std::invalid_argument("Track: first segment must start at column 1");
  }
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    const Segment& s = segments_[i];
    if (s.left > s.right) {
      throw std::invalid_argument("Track: empty segment " + to_string(s));
    }
    if (i + 1 < segments_.size() && segments_[i + 1].left != s.right + 1) {
      throw std::invalid_argument("Track: segments not contiguous at " +
                                  to_string(s));
    }
  }
  width_ = segments_.back().right;
}

Track Track::from_segments(std::vector<Segment> segments) {
  return Track(std::move(segments));
}

Track Track::unsegmented(Column width) { return Track(width, {}); }

Track Track::fully_segmented(Column width) {
  std::vector<Column> sw;
  sw.reserve(static_cast<std::size_t>(width > 0 ? width - 1 : 0));
  for (Column c = 1; c < width; ++c) sw.push_back(c);
  return Track(width, std::move(sw));
}

SegId Track::segment_at(Column c) const {
  if (c < 1 || c > width_) {
    throw std::out_of_range("Track::segment_at: column " + std::to_string(c) +
                            " outside [1, " + std::to_string(width_) + "]");
  }
  assert(!segments_.empty() && segments_.back().right == width_ &&
         "Track invariant: segments partition columns 1..width");
  // Branchless binary search for the last segment with left <= c: the
  // probe result feeds a conditional move, not a branch, so the search
  // pipeline never mispredicts on adversarial switch layouts.
  const Segment* base = segments_.data();
  std::size_t lo = 0;
  std::size_t n = segments_.size();
  while (n > 1) {
    const std::size_t half = n / 2;
    lo = (base[lo + half].left <= c) ? lo + half : lo;
    n -= half;
  }
  return static_cast<SegId>(lo);
}

std::pair<SegId, SegId> Track::span(Column lo, Column hi) const {
  if (lo > hi) {
    throw std::invalid_argument("Track::span: lo > hi");
  }
  return {segment_at(lo), segment_at(hi)};
}

int Track::segments_spanned(Column lo, Column hi) const {
  auto [a, b] = span(lo, hi);
  return b - a + 1;
}

Column Track::occupied_length(Column lo, Column hi) const {
  auto [a, b] = span(lo, hi);
  return segments_[b].right - segments_[a].left + 1;
}

std::vector<Column> Track::switch_positions() const {
  std::vector<Column> sw;
  sw.reserve(segments_.size() - 1);
  for (std::size_t i = 0; i + 1 < segments_.size(); ++i) {
    sw.push_back(segments_[i].right);
  }
  return sw;
}

std::pair<Column, Column> Track::align_to_segments(Column lo, Column hi) const {
  auto [a, b] = span(lo, hi);
  return {segments_[a].left, segments_[b].right};
}

}  // namespace segroute
