#include "core/channel_index.h"

namespace segroute {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

inline void fnv_mix(std::uint64_t& h, std::uint64_t v) {
  // Mix 64 bits byte-wise so column values with equal low bytes still
  // diffuse (plain 64-bit xor-multiply weakens small-integer inputs).
  for (int b = 0; b < 8; ++b) {
    h ^= (v >> (8 * b)) & 0xffu;
    h *= kFnvPrime;
  }
}

}  // namespace

ChannelIndex::ChannelIndex(const SegmentedChannel& ch)
    : ch_(&ch),
      num_tracks_(ch.num_tracks()),
      width_(ch.width()),
      cols_(static_cast<std::size_t>(ch.width()) + 1),
      num_types_(ch.num_types()),
      type_of_(ch.type_of()) {
  const std::size_t Ts = static_cast<std::size_t>(num_tracks_);

  std::uint64_t h = kFnvOffset;
  fnv_mix(h, static_cast<std::uint64_t>(width_));
  fnv_mix(h, static_cast<std::uint64_t>(num_tracks_));

  seg_base_.reserve(Ts + 1);
  seg_base_.push_back(0);
  for (TrackId t = 0; t < num_tracks_; ++t) {
    total_segments_ += ch.track(t).num_segments();
    seg_base_.push_back(total_segments_);
  }
  seg_left_.reserve(static_cast<std::size_t>(total_segments_));
  seg_right_.reserve(static_cast<std::size_t>(total_segments_));
  seg_track_.reserve(static_cast<std::size_t>(total_segments_));
  seg_of_col_.assign(Ts * cols_, 0);
  for (TrackId t = 0; t < num_tracks_; ++t) {
    const Track& tr = ch.track(t);
    fnv_mix(h, static_cast<std::uint64_t>(tr.num_segments()));
    SegId* row = seg_of_col_.data() + static_cast<std::size_t>(t) * cols_;
    for (SegId s = 0; s < tr.num_segments(); ++s) {
      const Segment& seg = tr.segment(s);
      seg_left_.push_back(seg.left);
      seg_right_.push_back(seg.right);
      seg_track_.push_back(t);
      fnv_mix(h, static_cast<std::uint64_t>(
                     static_cast<std::uint32_t>(seg.right)));
      for (Column c = seg.left; c <= seg.right; ++c) {
        row[static_cast<std::size_t>(c)] = s;
      }
    }
  }
  fingerprint_ = h;

  type_members_.resize(static_cast<std::size_t>(num_types_));
  for (TrackId t = 0; t < num_tracks_; ++t) {
    type_members_[static_cast<std::size_t>(type_of_[static_cast<std::size_t>(t)])]
        .push_back(t);
  }

  covering_.assign(cols_ * Ts, 0);
  for (Column c = 1; c <= width_; ++c) {
    int* row = covering_.data() + static_cast<std::size_t>(c) * Ts;
    for (TrackId t = 0; t < num_tracks_; ++t) {
      row[static_cast<std::size_t>(t)] = seg_base(t) + segment_at(t, c);
    }
  }
}

}  // namespace segroute
