// ThreadPool: a small fixed pool for deterministic fork-join parallelism.
//
// The parallel layers built on top of it (alg::routability trials,
// capacity probe evaluation, the robust_route racing mode, the parallel
// bench drivers) all follow one contract: split the work into
// independent indices, give each index its own state (seeded RNG stream,
// output slot), and join. Under that contract the *result* is a pure
// function of the inputs — bit-identical for every thread count,
// including 1 — and only the wall-clock changes.
//
// Partitioning is static and deterministic: for parallel_for(n) on a
// pool of W threads, thread w handles the contiguous block
// [w*n/W, (w+1)*n/W). The calling thread participates as thread 0, so a
// pool of size 1 spawns nothing and runs inline.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace segroute::util {

/// The machine's usable hardware concurrency, clamped to [1, 64]. This
/// is what every "threads = 0 means auto" option in the library
/// (engine::BatchOptions::threads, alg::CapacityOptions::threads,
/// fpga::FabricOptions::threads) resolves to. The clamp bounds the
/// fixed per-pool thread spawn on very wide machines; determinism is
/// unaffected either way, because every parallel layer partitions
/// statically and is bit-identical across thread counts.
int hardware_threads();

/// Resolves a user-facing thread-count option: n <= 0 means "auto"
/// (hardware_threads()), anything else is taken as-is.
int resolve_threads(int n);

class ThreadPool {
 public:
  /// `threads` <= 0: hardware concurrency. The pool keeps `threads - 1`
  /// worker threads parked on a condition variable; the calling thread
  /// is the remaining one.
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int size() const { return nthreads_; }

  /// Calls fn(i) exactly once for every i in [0, n), partitioned into
  /// contiguous per-thread blocks, and returns when all calls finished.
  /// If any fn throws, one of the exceptions is rethrown on the calling
  /// thread after the join. Not reentrant: fn must not call back into
  /// the same pool.
  void parallel_for(std::int64_t n,
                    const std::function<void(std::int64_t)>& fn);

  /// Convenience: runs every job concurrently (one index per job).
  void run(const std::vector<std::function<void()>>& jobs);

 private:
  void worker_loop(int w);
  void run_block(int w);

  int nthreads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  std::uint64_t generation_ = 0;  // bumped once per parallel_for
  int pending_ = 0;               // workers still running this generation
  bool stop_ = false;

  // Current job (valid while pending_ > 0).
  const std::function<void(std::int64_t)>* fn_ = nullptr;
  std::int64_t n_ = 0;
  std::exception_ptr error_;  // first exception, guarded by mu_
};

}  // namespace segroute::util
