#include "util/pool.h"

#include "obs/clock.h"
#include "obs/instrument.h"

namespace segroute::util {

int hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) return 1;           // unknown: stay serial, never guess up
  return hw > 64 ? 64 : static_cast<int>(hw);
}

int resolve_threads(int n) {
  return n > 0 ? n : hardware_threads();
}

ThreadPool::ThreadPool(int threads) : nthreads_(resolve_threads(threads)) {
  workers_.reserve(static_cast<std::size_t>(nthreads_ - 1));
  for (int w = 1; w < nthreads_; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::run_block(int w) {
  const std::int64_t W = nthreads_;
  const std::int64_t begin = w * n_ / W;
  const std::int64_t end = (w + 1) * n_ / W;
  SEGROUTE_SPAN(block_span, "pool.block", "worker",
                static_cast<std::uint64_t>(w));
#if SEGROUTE_OBS_ENABLED
  const std::uint64_t busy_start = obs::now_ns();
#endif
  try {
    for (std::int64_t i = begin; i < end; ++i) (*fn_)(i);
  } catch (...) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!error_) error_ = std::current_exception();
  }
#if SEGROUTE_OBS_ENABLED
  SEGROUTE_COUNT("pool.worker_busy_ns", obs::now_ns() - busy_start);
#endif
}

void ThreadPool::worker_loop(int w) {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_start_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
    }
    run_block(w);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --pending_;
    }
    cv_done_.notify_one();
  }
}

void ThreadPool::parallel_for(std::int64_t n,
                              const std::function<void(std::int64_t)>& fn) {
  if (n <= 0) return;
  SEGROUTE_COUNT("pool.parallel_for_calls", 1);
  SEGROUTE_GAUGE_SET("pool.queue_depth", n);
  if (nthreads_ == 1 || n == 1) {
    // Inline fast path: no handoff, exceptions propagate directly.
#if SEGROUTE_OBS_ENABLED
    const std::uint64_t busy_start = obs::now_ns();
#endif
    for (std::int64_t i = 0; i < n; ++i) fn(i);
#if SEGROUTE_OBS_ENABLED
    SEGROUTE_COUNT("pool.worker_busy_ns", obs::now_ns() - busy_start);
#endif
    SEGROUTE_GAUGE_SET("pool.queue_depth", 0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    fn_ = &fn;
    n_ = n;
    error_ = nullptr;
    pending_ = nthreads_ - 1;
    ++generation_;
  }
  cv_start_.notify_all();
  run_block(0);  // the calling thread is thread 0
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_done_.wait(lock, [&] { return pending_ == 0; });
    fn_ = nullptr;
    SEGROUTE_GAUGE_SET("pool.queue_depth", 0);
    if (error_) {
      std::exception_ptr e = error_;
      error_ = nullptr;
      lock.unlock();
      std::rethrow_exception(e);
    }
  }
}

void ThreadPool::run(const std::vector<std::function<void()>>& jobs) {
  parallel_for(static_cast<std::int64_t>(jobs.size()),
               [&jobs](std::int64_t i) { jobs[static_cast<std::size_t>(i)](); });
}

}  // namespace segroute::util
