// Structural verifiers for the propositions the NP-completeness proofs
// rest on (Section III and the Appendix). Each checker takes a *valid*
// routing of the constructed instance and confirms the property the
// corresponding proposition asserts must hold in ANY valid routing —
// letting the test suite validate the proof machinery itself, not just
// the end-to-end equivalence.
#pragma once

#include <string>

#include "core/routing.h"
#include "npc/reduction.h"

namespace segroute::npc {

struct PropositionCheck {
  bool ok = true;
  std::string violation;  // first violated claim, human readable

  explicit operator bool() const { return ok; }
};

/// Proposition 1 (and the pigeonhole structure behind it): in any valid
/// routing of Q, the f's occupy n^2 different tracks; the d's and a's sit
/// on the first n (z-)tracks; the e's sit on the block tracks.
PropositionCheck check_proposition1(const UnlimitedReduction& q,
                                    const Routing& r);

/// Proposition 3 / 10: all b's sit on distinct tracks, and exactly one b
/// from each family {b_k1..b_kn} is on a z-track... with repeated y
/// values families may trade places, so the per-family claim is checked
/// up to y-value equality (the geometric content of Prop. 10).
PropositionCheck check_proposition3_10(const UnlimitedReduction& q,
                                       const NmtsInstance& inst,
                                       const Routing& r);

/// Lemma 2's Claim a/b: each z-track i carries exactly one a and one b,
/// they do not overlap, and x_alpha + y_beta == z_i.
PropositionCheck check_lemma2_structure(const UnlimitedReduction& q,
                                        const NmtsInstance& inst,
                                        const Routing& r);

/// Proposition 12: in any valid 2-segment routing of Q2, the e's sit on
/// the block tracks, every track's last segment carries an f, the a's sit
/// on the first n^2 tracks, and the g's avoid the block tracks.
PropositionCheck check_proposition12(const TwoSegmentReduction& q2,
                                     const Routing& r);

}  // namespace segroute::npc
