#include "npc/reduction.h"

#include <algorithm>
#include <stdexcept>

namespace segroute::npc {

namespace {

void require_ready(const NmtsInstance& inst) {
  if (!inst.reduction_ready()) {
    throw std::invalid_argument(
        "reduction: instance does not satisfy the Section III preconditions; "
        "call NmtsInstance::normalized() first");
  }
}

Column channel_width(const NmtsInstance& inst) {
  return static_cast<Column>(inst.x().back() + inst.y().back() + 7);
}

void require_z_fits(const NmtsInstance& inst) {
  if (inst.z().back() + 5 > channel_width(inst)) {
    throw std::invalid_argument(
        "reduction: z_n too large for the construction (z_n + 5 > N)");
  }
}

/// left(b_kj) for 0-based k (y index) and j (x index).
Column b_left(const NmtsInstance& inst, int k, int j) {
  return static_cast<Column>(inst.x()[static_cast<std::size_t>(j)] + 4 +
                             (inst.n() - (k + 1)));
}

Column b_right(const NmtsInstance& inst, int k, int j) {
  return static_cast<Column>(inst.y()[static_cast<std::size_t>(k)] +
                             inst.x()[static_cast<std::size_t>(j)] + 4);
}

/// The n^2 - n block tracks shared by Q and Q2: block k (one per y_k),
/// inner index j = 0..n-2, with middle segment spanning b_kj .. b_k(j+1).
std::vector<Track> build_block_tracks(const NmtsInstance& inst) {
  const int n = inst.n();
  const Column N = channel_width(inst);
  std::vector<Track> tracks;
  tracks.reserve(static_cast<std::size_t>(n) * static_cast<std::size_t>(n - 1));
  for (int k = 0; k < n; ++k) {
    for (int j = 0; j + 1 < n; ++j) {
      const Column cut1 = b_left(inst, k, j) - 1;
      const Column cut2 = b_right(inst, k, j + 1);
      tracks.push_back(Track(N, {cut1, cut2}));
    }
  }
  return tracks;
}

}  // namespace

UnlimitedReduction build_unlimited(const NmtsInstance& inst) {
  require_ready(inst);
  require_z_fits(inst);
  const int n = inst.n();
  const Column N = channel_width(inst);

  ConnectionSet cs;
  UnlimitedReduction q{SegmentedChannel::unsegmented(1, 1), {}, {}, {}, {},
                       {}, {}, n};

  for (int j = 0; j < n; ++j) {
    q.a.push_back(cs.add(4, static_cast<Column>(inst.x()[static_cast<std::size_t>(j)] + 3),
                         "a" + std::to_string(j + 1)));
  }
  q.b.resize(static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) {
    for (int j = 0; j < n; ++j) {
      q.b[static_cast<std::size_t>(k)].push_back(
          cs.add(b_left(inst, k, j), b_right(inst, k, j),
                 "b" + std::to_string(k + 1) + "," + std::to_string(j + 1)));
    }
  }
  for (int i = 0; i < n; ++i) {
    q.d.push_back(cs.add(1, 3, "d" + std::to_string(i + 1)));
  }
  for (int i = 0; i < n * n - n; ++i) {
    q.e.push_back(cs.add(1, 5, "e" + std::to_string(i + 1)));
  }
  const Column f_left = static_cast<Column>(inst.x().back() + inst.y().back() + 5);
  for (int i = 0; i < n * n; ++i) {
    q.f.push_back(cs.add(f_left, f_left + 2, "f" + std::to_string(i + 1)));
  }

  std::vector<Track> tracks;
  tracks.reserve(static_cast<std::size_t>(n) * static_cast<std::size_t>(n));
  // z-tracks: (1,3), unit segments 4..z_i+4, then (z_i+5, N).
  for (int i = 0; i < n; ++i) {
    std::vector<Column> cuts;
    const Column hi = static_cast<Column>(inst.z()[static_cast<std::size_t>(i)] + 4);
    for (Column c = 3; c <= hi; ++c) cuts.push_back(c);
    tracks.push_back(Track(N, std::move(cuts)));
  }
  for (Track& t : build_block_tracks(inst)) tracks.push_back(std::move(t));

  q.channel = SegmentedChannel(std::move(tracks));
  q.connections = std::move(cs);
  return q;
}

TwoSegmentReduction build_two_segment(const NmtsInstance& inst) {
  require_ready(inst);
  require_z_fits(inst);
  const int n = inst.n();
  const Column N = channel_width(inst);

  ConnectionSet cs;
  TwoSegmentReduction q{SegmentedChannel::unsegmented(1, 1), {}, {}, {}, {},
                        {}, {}, n};

  for (int j = 0; j < n; ++j) {
    q.a.push_back(cs.add(4, static_cast<Column>(inst.x()[static_cast<std::size_t>(j)] + 3),
                         "a" + std::to_string(j + 1)));
  }
  q.b.resize(static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) {
    for (int j = 0; j < n; ++j) {
      q.b[static_cast<std::size_t>(k)].push_back(
          cs.add(b_left(inst, k, j), b_right(inst, k, j),
                 "b" + std::to_string(k + 1) + "," + std::to_string(j + 1)));
    }
  }
  for (int i = 0; i < n * n - n; ++i) {
    q.e.push_back(cs.add(1, 5, "e" + std::to_string(i + 1)));
  }
  const Column f_left = static_cast<Column>(inst.x().back() + inst.y().back() + 5);
  for (int i = 0; i < 2 * n * n - n; ++i) {
    q.f.push_back(cs.add(f_left, f_left + 2, "f" + std::to_string(i + 1)));
  }
  q.g.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j + 1 < n; ++j) {
      q.g[static_cast<std::size_t>(i)].push_back(
          cs.add(4, static_cast<Column>(inst.z()[static_cast<std::size_t>(i)] + 4),
                 "g" + std::to_string(i + 1) + "," + std::to_string(j + 1)));
    }
  }

  std::vector<Track> tracks;
  tracks.reserve(static_cast<std::size_t>(2 * n * n - n));
  // t_{i,j}: (1,2), (3,3), (4, x_j+3), (x_j+4, z_i+4), (z_i+5, N).
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      const Column xr = static_cast<Column>(inst.x()[static_cast<std::size_t>(j)] + 3);
      const Column zr = static_cast<Column>(inst.z()[static_cast<std::size_t>(i)] + 4);
      tracks.push_back(Track(N, {2, 3, xr, zr}));
    }
  }
  for (Track& t : build_block_tracks(inst)) tracks.push_back(std::move(t));

  q.channel = SegmentedChannel(std::move(tracks));
  q.connections = std::move(cs);
  return q;
}

Routing routing_from_matching(const UnlimitedReduction& q,
                              const NmtsInstance& inst,
                              const NmtsSolution& sol) {
  if (!inst.check(sol)) {
    throw std::invalid_argument("routing_from_matching: invalid NMTS solution");
  }
  const int n = q.n;
  Routing r(q.connections.size());
  // d_i and f_i per Proposition 1; e_i to the block tracks.
  for (int i = 0; i < n; ++i) {
    r.assign(q.d[static_cast<std::size_t>(i)], static_cast<TrackId>(i));
  }
  for (int i = 0; i < n * n; ++i) {
    r.assign(q.f[static_cast<std::size_t>(i)], static_cast<TrackId>(i));
  }
  for (int i = 0; i < n * n - n; ++i) {
    r.assign(q.e[static_cast<std::size_t>(i)], static_cast<TrackId>(n + i));
  }
  // Matched pairs on the z-tracks.
  std::vector<int> bstar(static_cast<std::size_t>(n), -1);  // per y-index k:
                                                            // the x-index used
  for (int i = 0; i < n; ++i) {
    const int aj = sol.alpha[static_cast<std::size_t>(i)];
    const int bk = sol.beta[static_cast<std::size_t>(i)];
    r.assign(q.a[static_cast<std::size_t>(aj)], static_cast<TrackId>(i));
    r.assign(q.b[static_cast<std::size_t>(bk)][static_cast<std::size_t>(aj)],
             static_cast<TrackId>(i));
    bstar[static_cast<std::size_t>(bk)] = aj;
  }
  // Remaining b's into the block tracks (Lemma 1, step 3): within block k,
  // b_kj goes to inner track j when j < j*, else to inner track j - 1.
  for (int k = 0; k < n; ++k) {
    const int jstar = bstar[static_cast<std::size_t>(k)];
    for (int j = 0; j < n; ++j) {
      if (j == jstar) continue;
      const int inner = (j < jstar) ? j : j - 1;
      const TrackId t = static_cast<TrackId>(n + k * (n - 1) + inner);
      r.assign(q.b[static_cast<std::size_t>(k)][static_cast<std::size_t>(j)], t);
    }
  }
  return r;
}

std::optional<NmtsSolution> matching_from_routing(const UnlimitedReduction& q,
                                                  const NmtsInstance& inst,
                                                  const Routing& r) {
  const int n = q.n;
  if (!validate(q.channel, q.connections, r)) return std::nullopt;
  NmtsSolution sol;
  sol.alpha.assign(static_cast<std::size_t>(n), -1);
  sol.beta.assign(static_cast<std::size_t>(n), -1);
  // Lemma 2: each z-track t_i hosts exactly one a and one b.
  for (int j = 0; j < n; ++j) {
    const TrackId t = r.track_of(q.a[static_cast<std::size_t>(j)]);
    if (t < 0 || t >= n) return std::nullopt;
    if (sol.alpha[static_cast<std::size_t>(t)] != -1) return std::nullopt;
    sol.alpha[static_cast<std::size_t>(t)] = j;
  }
  // The y-index of the b connection each z-track hosts. When y contains
  // repeated values, a valid routing may draw several b's from the same
  // y-family (their segments are identical), so these raw indices need
  // not be distinct; remap them to distinct indices of equal y value.
  std::vector<int> raw_k(static_cast<std::size_t>(n), -1);
  for (int k = 0; k < n; ++k) {
    for (int j = 0; j < n; ++j) {
      const TrackId t =
          r.track_of(q.b[static_cast<std::size_t>(k)][static_cast<std::size_t>(j)]);
      if (t >= 0 && t < n) {
        if (raw_k[static_cast<std::size_t>(t)] != -1) return std::nullopt;
        raw_k[static_cast<std::size_t>(t)] = k;
      }
    }
  }
  std::vector<bool> used(static_cast<std::size_t>(n), false);
  for (int t = 0; t < n; ++t) {
    const int k = raw_k[static_cast<std::size_t>(t)];
    if (k == -1) return std::nullopt;
    int pick = -1;
    for (int k2 = 0; k2 < n; ++k2) {
      if (!used[static_cast<std::size_t>(k2)] &&
          inst.y()[static_cast<std::size_t>(k2)] ==
              inst.y()[static_cast<std::size_t>(k)]) {
        pick = k2;
        break;
      }
    }
    if (pick == -1) return std::nullopt;
    used[static_cast<std::size_t>(pick)] = true;
    sol.beta[static_cast<std::size_t>(t)] = pick;
  }
  if (!inst.check(sol)) return std::nullopt;
  return sol;
}

Routing routing_from_matching_two_segment(const TwoSegmentReduction& q2,
                                          const NmtsInstance& inst,
                                          const NmtsSolution& sol) {
  if (!inst.check(sol)) {
    throw std::invalid_argument(
        "routing_from_matching_two_segment: invalid NMTS solution");
  }
  const int n = q2.n;
  const TrackId blocks_base = static_cast<TrackId>(n * n);
  Routing r(q2.connections.size());
  // f_i: one per track (2n^2 - n tracks).
  for (int i = 0; i < 2 * n * n - n; ++i) {
    r.assign(q2.f[static_cast<std::size_t>(i)], static_cast<TrackId>(i));
  }
  // e_i: first segments of the block tracks.
  for (int i = 0; i < n * n - n; ++i) {
    r.assign(q2.e[static_cast<std::size_t>(i)], blocks_base + i);
  }
  std::vector<int> bstar(static_cast<std::size_t>(n), -1);
  for (int i = 0; i < n; ++i) {
    const int aj = sol.alpha[static_cast<std::size_t>(i)];
    const int bk = sol.beta[static_cast<std::size_t>(i)];
    const TrackId tij = static_cast<TrackId>(i * n + aj);
    r.assign(q2.a[static_cast<std::size_t>(aj)], tij);
    r.assign(q2.b[static_cast<std::size_t>(bk)][static_cast<std::size_t>(aj)], tij);
    bstar[static_cast<std::size_t>(bk)] = aj;
    // g_{i,*} fill the other n-1 tracks of row i.
    int gi = 0;
    for (int j = 0; j < n; ++j) {
      if (j == aj) continue;
      r.assign(q2.g[static_cast<std::size_t>(i)][static_cast<std::size_t>(gi)],
               static_cast<TrackId>(i * n + j));
      ++gi;
    }
  }
  for (int k = 0; k < n; ++k) {
    const int jstar = bstar[static_cast<std::size_t>(k)];
    for (int j = 0; j < n; ++j) {
      if (j == jstar) continue;
      const int inner = (j < jstar) ? j : j - 1;
      const TrackId t = blocks_base + static_cast<TrackId>(k * (n - 1) + inner);
      r.assign(q2.b[static_cast<std::size_t>(k)][static_cast<std::size_t>(j)], t);
    }
  }
  return r;
}

}  // namespace segroute::npc
