// Numerical Matching with Target Sums (NMTS) — the strongly NP-complete
// source problem of the paper's reductions (Garey & Johnson [7]).
//
// Instance: positive integers x_1..x_n, y_1..y_n, z_1..z_n with
// sum(x_i + y_i) = sum(z_i). Question: do permutations alpha, beta exist
// with x_{alpha(i)} + y_{beta(i)} = z_i for all i?
#pragma once

#include <cstdint>
#include <optional>
#include <random>
#include <vector>

namespace segroute::npc {

/// A solution: alpha[i] and beta[i] are 0-based indices into x and y with
/// x[alpha[i]] + y[beta[i]] == z[i].
struct NmtsSolution {
  std::vector<int> alpha;
  std::vector<int> beta;
};

class NmtsInstance {
 public:
  /// Throws std::invalid_argument unless sizes match, all values are
  /// positive, and the sums balance.
  NmtsInstance(std::vector<std::int64_t> x, std::vector<std::int64_t> y,
               std::vector<std::int64_t> z);

  [[nodiscard]] int n() const { return static_cast<int>(x_.size()); }
  [[nodiscard]] const std::vector<std::int64_t>& x() const { return x_; }
  [[nodiscard]] const std::vector<std::int64_t>& y() const { return y_; }
  [[nodiscard]] const std::vector<std::int64_t>& z() const { return z_; }

  /// True if a given (alpha, beta) is a valid solution.
  [[nodiscard]] bool check(const NmtsSolution& s) const;

  /// Exact backtracking solver (exponential; fine for n <= ~10).
  [[nodiscard]] std::optional<NmtsSolution> solve() const;

  /// True if x is strictly increasing with consecutive gaps >= n,
  /// x_1 + y_1 >= x_n + n, and z_1 >= x_n + n — the preconditions the
  /// Section III / Appendix constructions rely on.
  [[nodiscard]] bool reduction_ready() const;

  /// Applies the paper's equivalence-preserving transformations (sorting,
  /// scaling by m = ceil(n / min gap of x), translating y and z, plus an
  /// x/z translation to guarantee x_1 >= 2 and z_1 >= x_n + n) and returns
  /// the transformed instance. The result has a solution iff *this does.
  /// Throws std::invalid_argument if x contains duplicates (scaling cannot
  /// separate equal x values).
  [[nodiscard]] NmtsInstance normalized() const;

 private:
  std::vector<std::int64_t> x_, y_, z_;
};

/// Generates a solvable instance: random x, y, and z built from a random
/// hidden matching (then shuffled). Values are kept small (strong
/// NP-completeness: hardness persists with polynomially bounded values).
NmtsInstance random_solvable_nmts(int n, std::mt19937_64& rng);

/// Generates an instance that is *usually* unsolvable: as above but with
/// z perturbed by moving mass between two entries (sum preserved). May
/// occasionally remain solvable — callers decide via solve().
NmtsInstance random_perturbed_nmts(int n, std::mt19937_64& rng);

}  // namespace segroute::npc
