#include "npc/propositions.h"

#include <algorithm>
#include <set>

namespace segroute::npc {

namespace {

PropositionCheck fail(std::string msg) {
  return PropositionCheck{false, std::move(msg)};
}

}  // namespace

PropositionCheck check_proposition1(const UnlimitedReduction& q,
                                    const Routing& r) {
  const int n = q.n;
  // (a) f's on n^2 different tracks.
  std::set<TrackId> f_tracks;
  for (ConnId f : q.f) {
    if (!f_tracks.insert(r.track_of(f)).second) {
      return fail("two f connections share a track");
    }
  }
  if (static_cast<int>(f_tracks.size()) != n * n) {
    return fail("f connections do not cover n^2 tracks");
  }
  // (b) d's and a's on z-tracks; e's on block tracks.
  for (ConnId d : q.d) {
    if (r.track_of(d) >= n) {
      return fail("a d connection left the first n tracks");
    }
  }
  for (ConnId a : q.a) {
    if (r.track_of(a) >= n) {
      return fail("an a connection left the first n tracks");
    }
  }
  for (ConnId e : q.e) {
    if (r.track_of(e) < n) {
      return fail("an e connection entered the first n tracks");
    }
  }
  return {};
}

PropositionCheck check_proposition3_10(const UnlimitedReduction& q,
                                       const NmtsInstance& inst,
                                       const Routing& r) {
  const int n = q.n;
  // Proposition 3: all n^2 b's on distinct tracks.
  std::set<TrackId> b_tracks;
  for (const auto& family : q.b) {
    for (ConnId b : family) {
      if (!b_tracks.insert(r.track_of(b)).second) {
        return fail("two b connections share a track (Prop. 3)");
      }
    }
  }
  // Proposition 10, up to equal y values: the multiset of y values of
  // b's on z-tracks equals the multiset {y_1..y_n}.
  std::vector<std::int64_t> on_z;
  for (int k = 0; k < n; ++k) {
    for (ConnId b : q.b[static_cast<std::size_t>(k)]) {
      if (r.track_of(b) < n) {
        on_z.push_back(inst.y()[static_cast<std::size_t>(k)]);
      }
    }
  }
  if (static_cast<int>(on_z.size()) != n) {
    return fail("number of b's on z-tracks != n (Prop. 10)");
  }
  std::vector<std::int64_t> want = inst.y();
  std::sort(on_z.begin(), on_z.end());
  std::sort(want.begin(), want.end());
  if (on_z != want) {
    return fail("y-values of z-track b's are not {y_1..y_n} (Prop. 10)");
  }
  return {};
}

PropositionCheck check_lemma2_structure(const UnlimitedReduction& q,
                                        const NmtsInstance& inst,
                                        const Routing& r) {
  const int n = q.n;
  std::vector<int> a_on(static_cast<std::size_t>(n), -1);
  for (int j = 0; j < n; ++j) {
    const TrackId t = r.track_of(q.a[static_cast<std::size_t>(j)]);
    if (t < 0 || t >= n) return fail("a connection off the z-tracks");
    if (a_on[static_cast<std::size_t>(t)] != -1) {
      return fail("two a connections on one z-track");
    }
    a_on[static_cast<std::size_t>(t)] = j;
  }
  std::vector<int> b_on(static_cast<std::size_t>(n), -1);
  for (int k = 0; k < n; ++k) {
    for (int j = 0; j < n; ++j) {
      const TrackId t =
          r.track_of(q.b[static_cast<std::size_t>(k)][static_cast<std::size_t>(j)]);
      if (t >= 0 && t < n) {
        if (b_on[static_cast<std::size_t>(t)] != -1) {
          return fail("two b connections on one z-track");
        }
        b_on[static_cast<std::size_t>(t)] = k;
      }
    }
  }
  for (int i = 0; i < n; ++i) {
    if (a_on[static_cast<std::size_t>(i)] == -1 ||
        b_on[static_cast<std::size_t>(i)] == -1) {
      return fail("z-track missing its a or b (Lemma 2 Claim a)");
    }
    const std::int64_t sum =
        inst.x()[static_cast<std::size_t>(a_on[static_cast<std::size_t>(i)])] +
        inst.y()[static_cast<std::size_t>(b_on[static_cast<std::size_t>(i)])];
    if (sum != inst.z()[static_cast<std::size_t>(i)]) {
      return fail("x_alpha + y_beta != z_i on track " + std::to_string(i) +
                  " (Lemma 2 Claim b)");
    }
  }
  return {};
}

PropositionCheck check_proposition12(const TwoSegmentReduction& q2,
                                     const Routing& r) {
  const int n = q2.n;
  const TrackId blocks_base = static_cast<TrackId>(n * n);
  // (a) e's on the last n^2 - n tracks.
  for (ConnId e : q2.e) {
    if (r.track_of(e) < blocks_base) {
      return fail("an e connection entered the t_ij tracks (Prop. 12a)");
    }
  }
  // (b) f's occupy every track exactly once (2n^2 - n of each).
  std::set<TrackId> f_tracks;
  for (ConnId f : q2.f) {
    if (!f_tracks.insert(r.track_of(f)).second) {
      return fail("two f connections share a track (Prop. 12b)");
    }
  }
  if (static_cast<int>(f_tracks.size()) != 2 * n * n - n) {
    return fail("f connections do not cover all tracks (Prop. 12b)");
  }
  // (c) a's on the t_ij tracks.
  for (ConnId a : q2.a) {
    if (r.track_of(a) >= blocks_base) {
      return fail("an a connection entered the block tracks (Prop. 12c)");
    }
  }
  // (d) g's on the t_ij tracks.
  for (const auto& row : q2.g) {
    for (ConnId g : row) {
      if (r.track_of(g) >= blocks_base) {
        return fail("a g connection entered the block tracks (Prop. 12d)");
      }
    }
  }
  return {};
}

}  // namespace segroute::npc
