#include "npc/nmts.h"

#include <algorithm>
#include <functional>
#include <numeric>
#include <stdexcept>

namespace segroute::npc {

NmtsInstance::NmtsInstance(std::vector<std::int64_t> x,
                           std::vector<std::int64_t> y,
                           std::vector<std::int64_t> z)
    : x_(std::move(x)), y_(std::move(y)), z_(std::move(z)) {
  if (x_.empty() || x_.size() != y_.size() || y_.size() != z_.size()) {
    throw std::invalid_argument("NmtsInstance: need |x| == |y| == |z| >= 1");
  }
  auto positive = [](const std::vector<std::int64_t>& v) {
    return std::all_of(v.begin(), v.end(), [](std::int64_t a) { return a > 0; });
  };
  if (!positive(x_) || !positive(y_) || !positive(z_)) {
    throw std::invalid_argument("NmtsInstance: all values must be positive");
  }
  const std::int64_t lhs = std::accumulate(x_.begin(), x_.end(), std::int64_t{0}) +
                           std::accumulate(y_.begin(), y_.end(), std::int64_t{0});
  const std::int64_t rhs = std::accumulate(z_.begin(), z_.end(), std::int64_t{0});
  if (lhs != rhs) {
    throw std::invalid_argument("NmtsInstance: sum(x)+sum(y) != sum(z)");
  }
  std::sort(x_.begin(), x_.end());
  std::sort(y_.begin(), y_.end());
  std::sort(z_.begin(), z_.end());
}

bool NmtsInstance::check(const NmtsSolution& s) const {
  const int N = n();
  if (static_cast<int>(s.alpha.size()) != N ||
      static_cast<int>(s.beta.size()) != N) {
    return false;
  }
  std::vector<bool> ua(static_cast<std::size_t>(N), false);
  std::vector<bool> ub(static_cast<std::size_t>(N), false);
  for (int i = 0; i < N; ++i) {
    const int a = s.alpha[static_cast<std::size_t>(i)];
    const int b = s.beta[static_cast<std::size_t>(i)];
    if (a < 0 || a >= N || b < 0 || b >= N) return false;
    if (ua[static_cast<std::size_t>(a)] || ub[static_cast<std::size_t>(b)]) {
      return false;
    }
    ua[static_cast<std::size_t>(a)] = ub[static_cast<std::size_t>(b)] = true;
    if (x_[static_cast<std::size_t>(a)] + y_[static_cast<std::size_t>(b)] !=
        z_[static_cast<std::size_t>(i)]) {
      return false;
    }
  }
  return true;
}

std::optional<NmtsSolution> NmtsInstance::solve() const {
  const int N = n();
  NmtsSolution sol;
  sol.alpha.assign(static_cast<std::size_t>(N), -1);
  sol.beta.assign(static_cast<std::size_t>(N), -1);
  std::vector<bool> ua(static_cast<std::size_t>(N), false);
  std::vector<bool> ub(static_cast<std::size_t>(N), false);

  // Match targets from the largest down — tighter early pruning.
  std::vector<int> order(static_cast<std::size_t>(N));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [this](int a, int b) { return z_[static_cast<std::size_t>(a)] >
                                          z_[static_cast<std::size_t>(b)]; });

  std::function<bool(int)> rec = [&](int k) -> bool {
    if (k == N) return true;
    const int i = order[static_cast<std::size_t>(k)];
    for (int a = 0; a < N; ++a) {
      if (ua[static_cast<std::size_t>(a)]) continue;
      const std::int64_t need = z_[static_cast<std::size_t>(i)] -
                                x_[static_cast<std::size_t>(a)];
      for (int b = 0; b < N; ++b) {
        if (ub[static_cast<std::size_t>(b)]) continue;
        if (y_[static_cast<std::size_t>(b)] != need) continue;
        ua[static_cast<std::size_t>(a)] = ub[static_cast<std::size_t>(b)] = true;
        sol.alpha[static_cast<std::size_t>(i)] = a;
        sol.beta[static_cast<std::size_t>(i)] = b;
        if (rec(k + 1)) return true;
        ua[static_cast<std::size_t>(a)] = ub[static_cast<std::size_t>(b)] = false;
        // y values are sorted and distinct matches with equal y are
        // symmetric; trying the first unused b with this value suffices.
        break;
      }
    }
    return false;
  };
  if (rec(0)) return sol;
  return std::nullopt;
}

bool NmtsInstance::reduction_ready() const {
  const int N = n();
  for (int i = 0; i + 1 < N; ++i) {
    if (x_[static_cast<std::size_t>(i) + 1] - x_[static_cast<std::size_t>(i)] <
        N) {
      return false;
    }
  }
  if (x_.front() < 2) return false;
  if (x_.front() + y_.front() < x_.back() + N) return false;
  if (z_.front() < x_.back() + N) return false;
  return true;
}

NmtsInstance NmtsInstance::normalized() const {
  const int N = n();
  std::vector<std::int64_t> x = x_, y = y_, z = z_;

  // 1) Scaling: m = ceil(n / min consecutive gap of x).
  if (N > 1) {
    std::int64_t min_gap = x[1] - x[0];
    for (int i = 1; i + 1 < N; ++i) {
      min_gap = std::min(min_gap,
                         x[static_cast<std::size_t>(i) + 1] -
                             x[static_cast<std::size_t>(i)]);
    }
    if (min_gap == 0) {
      throw std::invalid_argument(
          "NmtsInstance::normalized: duplicate x values cannot be separated");
    }
    const std::int64_t m = (N + min_gap - 1) / min_gap;
    if (m > 1) {
      for (auto& v : x) v *= m;
      for (auto& v : y) v *= m;
      for (auto& v : z) v *= m;
    }
  }
  // 2) Translation of y and z: p = x_n + n - (y_1 + x_1).
  {
    const std::int64_t p = x.back() + N - (y.front() + x.front());
    if (p > 0) {
      for (auto& v : y) v += p;
      for (auto& v : z) v += p;
    }
  }
  // 3) Extra translation of x and z (sum- and solution-preserving) so that
  //    x_1 >= 2 (the construction needs the first block segment to hold an
  //    e connection) and z_1 >= x_n + n (Appendix assumption).
  {
    // z_1 >= x_n + n first, via a y/z shift (a joint x/z shift cannot
    // change z_1 - x_n). Solvable instances already satisfy this because
    // z_1 >= x_1 + y_1 >= x_n + n after step 2.
    if (z.front() < x.back() + N) {
      const std::int64_t q = x.back() + N - z.front();
      for (auto& v : y) v += q;
      for (auto& v : z) v += q;
    }
    // Then x_1 >= 2 via a joint x/z shift (preserves every other
    // condition: x gaps, x_1 + y_1 - x_n, z_1 - x_n).
    if (x.front() < 2) {
      const std::int64_t delta = 2 - x.front();
      for (auto& v : x) v += delta;
      for (auto& v : z) v += delta;
    }
  }
  return NmtsInstance(std::move(x), std::move(y), std::move(z));
}

NmtsInstance random_solvable_nmts(int n, std::mt19937_64& rng) {
  if (n < 1) throw std::invalid_argument("random_solvable_nmts: n >= 1");
  // Distinct x with gaps in [1, 4]; y in [n+1, 5n].
  std::vector<std::int64_t> x(static_cast<std::size_t>(n));
  std::uniform_int_distribution<std::int64_t> gap(1, 4);
  std::int64_t cur = gap(rng);
  for (int i = 0; i < n; ++i) {
    x[static_cast<std::size_t>(i)] = cur;
    cur += gap(rng);
  }
  std::uniform_int_distribution<std::int64_t> yv(n + 1, 5 * n + 1);
  std::vector<std::int64_t> y(static_cast<std::size_t>(n));
  for (auto& v : y) v = yv(rng);
  // Hidden matching: z_i = x_{p(i)} + y_{q(i)}.
  std::vector<int> p(static_cast<std::size_t>(n)), q(static_cast<std::size_t>(n));
  std::iota(p.begin(), p.end(), 0);
  std::iota(q.begin(), q.end(), 0);
  std::shuffle(p.begin(), p.end(), rng);
  std::shuffle(q.begin(), q.end(), rng);
  std::vector<std::int64_t> z(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    z[static_cast<std::size_t>(i)] =
        x[static_cast<std::size_t>(p[static_cast<std::size_t>(i)])] +
        y[static_cast<std::size_t>(q[static_cast<std::size_t>(i)])];
  }
  return NmtsInstance(std::move(x), std::move(y), std::move(z));
}

NmtsInstance random_perturbed_nmts(int n, std::mt19937_64& rng) {
  NmtsInstance base = random_solvable_nmts(n, rng);
  std::vector<std::int64_t> z = base.z();
  if (n >= 2) {
    // Move one unit of mass between two distinct targets (sum preserved),
    // keeping every z inside [x_1 + y_1, x_n + y_n] so the reduction
    // constructions remain applicable after normalization (the bounds
    // scale and translate together with z).
    const std::int64_t lo = base.x().front() + base.y().front();
    const std::int64_t hi = base.x().back() + base.y().back();
    std::uniform_int_distribution<int> pick(0, n - 1);
    for (int tries = 0; tries < 32; ++tries) {
      const int a = pick(rng);
      const int b = pick(rng);
      if (a == b) continue;
      if (z[static_cast<std::size_t>(a)] + 1 <= hi &&
          z[static_cast<std::size_t>(b)] - 1 >= lo) {
        z[static_cast<std::size_t>(a)] += 1;
        z[static_cast<std::size_t>(b)] -= 1;
        break;
      }
    }
  }
  return NmtsInstance(base.x(), base.y(), std::move(z));
}

}  // namespace segroute::npc
