// The NP-completeness reductions of Section III (NMTS -> Problem 1) and
// of the Appendix (NMTS -> 2-segment routing, Problem 2 with K = 2).
//
// Both directions are implemented:
//  - build_*: construct the routing instance Q (resp. Q2) from an NMTS
//    instance (Theorem 1 / Theorem 2 constructions, verbatim);
//  - routing_from_matching: Lemma 1's constructive routing given a
//    solution of the matching problem;
//  - matching_from_routing: Lemma 2's extraction of permutations alpha,
//    beta from any valid routing of Q.
#pragma once

#include "core/channel.h"
#include "core/connection.h"
#include "core/routing.h"
#include "npc/nmts.h"

namespace segroute::npc {

/// The unlimited-segment instance Q of Section III, with bookkeeping that
/// records which connection/track plays which role.
struct UnlimitedReduction {
  SegmentedChannel channel;
  ConnectionSet connections;

  // Connection ids by family (all 0-based into `connections`).
  std::vector<ConnId> a;  // a_i, i = 0..n-1 (one per x_i)
  std::vector<std::vector<ConnId>> b;  // b[k][j]: y_k paired with x_j
  std::vector<ConnId> d;  // d_i (1,3), n of them
  std::vector<ConnId> e;  // e_i (1,5), n^2 - n of them
  std::vector<ConnId> f;  // f_i, n^2 of them

  // Track ids: tracks 0..n-1 are t_1..t_n (z-tracks); the rest are the
  // block tracks, block i (0-based) occupying indices
  // n + i*(n-1) .. n + (i+1)*(n-1) - 1.
  int n = 0;
};

/// Builds Q. Requires inst.reduction_ready() (throws otherwise) — use
/// NmtsInstance::normalized() first.
UnlimitedReduction build_unlimited(const NmtsInstance& inst);

/// The 2-segment instance Q2 of the Appendix.
struct TwoSegmentReduction {
  SegmentedChannel channel;
  ConnectionSet connections;

  std::vector<ConnId> a;
  std::vector<std::vector<ConnId>> b;  // b[k][j]
  std::vector<ConnId> e;               // n^2 - n
  std::vector<ConnId> f;               // 2n^2 - n
  std::vector<std::vector<ConnId>> g;  // g[i][j], i = 0..n-1, j = 0..n-2

  // Track layout: for i in 0..n-1, tracks i*n .. i*n + n - 1 are t_{i,1}..
  // t_{i,n}; tracks n^2 .. 2n^2 - n - 1 are the block tracks of Q.
  int n = 0;
};

/// Builds Q2. Requires inst.reduction_ready() (throws otherwise).
TwoSegmentReduction build_two_segment(const NmtsInstance& inst);

/// Lemma 1: a complete valid routing of Q from an NMTS solution.
/// Throws std::invalid_argument if `sol` does not solve `inst`.
Routing routing_from_matching(const UnlimitedReduction& q,
                              const NmtsInstance& inst,
                              const NmtsSolution& sol);

/// Lemma 2: extracts permutations alpha, beta from a valid routing of Q.
/// Returns std::nullopt if the routing is not a valid complete routing of
/// Q (callers normally pass a routing produced by a router, so this
/// indicates a bug rather than an unsolvable instance).
std::optional<NmtsSolution> matching_from_routing(const UnlimitedReduction& q,
                                                  const NmtsInstance& inst,
                                                  const Routing& r);

/// The Appendix's constructive direction: a 2-segment routing of Q2 from
/// a routing of Q (here built directly from the NMTS solution).
Routing routing_from_matching_two_segment(const TwoSegmentReduction& q2,
                                          const NmtsInstance& inst,
                                          const NmtsSolution& sol);

}  // namespace segroute::npc
