#include "io/render.h"

#include <sstream>

namespace segroute::io {

namespace {

char label_for(ConnId i, const ConnectionSet& cs) {
  const std::string& name = cs[i].name;
  if (!name.empty()) return name.back();  // "c3" -> '3'
  return static_cast<char>('0' + (i + 1) % 10);
}

/// One track line: per column a cell, with 'o' between columns that are
/// separated by a switch.
std::string track_line(const Track& tr, const std::string& cells) {
  std::string out;
  for (Column c = 1; c <= tr.width(); ++c) {
    out += cells[static_cast<std::size_t>(c - 1)];
    if (c < tr.width()) {
      out += (tr.segment_at(c) != tr.segment_at(c + 1)) ? 'o' : ' ';
    }
  }
  return out;
}

std::string header(Column width) {
  std::ostringstream out;
  out << "col ";
  for (Column c = 1; c <= width; ++c) {
    out << (c % 10);
    if (c < width) out << ' ';
  }
  out << "\n";
  return out.str();
}

}  // namespace

std::string render(const ConnectionSet& cs, Column width) {
  std::ostringstream out;
  out << header(width);
  for (ConnId i = 0; i < cs.size(); ++i) {
    const Connection& c = cs[i];
    std::string cells(static_cast<std::size_t>(width), ' ');
    for (Column col = c.left; col <= c.right; ++col) {
      cells[static_cast<std::size_t>(col - 1)] = '-';
    }
    cells[static_cast<std::size_t>(c.left - 1)] = '|';
    cells[static_cast<std::size_t>(c.right - 1)] = '|';
    out << "    ";
    for (Column col = 1; col <= width; ++col) {
      out << cells[static_cast<std::size_t>(col - 1)];
      if (col < width) out << ' ';
    }
    out << "  " << (c.name.empty() ? ("#" + std::to_string(i)) : c.name)
        << "\n";
  }
  return out.str();
}

std::string render(const SegmentedChannel& ch) {
  std::ostringstream out;
  out << header(ch.width());
  for (TrackId t = 0; t < ch.num_tracks(); ++t) {
    out << "t" << (t + 1) << (t + 1 < 10 ? "  " : " ");
    out << track_line(ch.track(t),
                      std::string(static_cast<std::size_t>(ch.width()), '-'));
    out << "\n";
  }
  return out.str();
}

std::string render(const SegmentedChannel& ch, const ConnectionSet& cs,
                   const Routing& r) {
  std::ostringstream out;
  out << header(ch.width());
  for (TrackId t = 0; t < ch.num_tracks(); ++t) {
    const Track& tr = ch.track(t);
    std::string cells(static_cast<std::size_t>(ch.width()), '-');
    for (ConnId i = 0; i < cs.size(); ++i) {
      if (r.track_of(i) != t) continue;
      auto [a, b] = tr.span(cs[i].left, cs[i].right);
      for (SegId s = a; s <= b; ++s) {
        for (Column c = tr.segment(s).left; c <= tr.segment(s).right; ++c) {
          cells[static_cast<std::size_t>(c - 1)] = label_for(i, cs);
        }
      }
    }
    out << "t" << (t + 1) << (t + 1 < 10 ? "  " : " ") << track_line(tr, cells)
        << "\n";
  }
  return out.str();
}

std::string render(const SegmentedChannel& ch, const ConnectionSet& cs,
                   const GeneralizedRouting& r) {
  std::ostringstream out;
  out << header(ch.width());
  for (TrackId t = 0; t < ch.num_tracks(); ++t) {
    const Track& tr = ch.track(t);
    std::string cells(static_cast<std::size_t>(ch.width()), '-');
    for (ConnId i = 0; i < cs.size(); ++i) {
      for (const RoutePart& p : r.parts(i)) {
        if (p.track != t) continue;
        auto [a, b] = tr.span(p.left, p.right);
        for (SegId s = a; s <= b; ++s) {
          for (Column c = tr.segment(s).left; c <= tr.segment(s).right; ++c) {
            cells[static_cast<std::size_t>(c - 1)] = label_for(i, cs);
          }
        }
      }
    }
    out << "t" << (t + 1) << (t + 1 < 10 ? "  " : " ") << track_line(tr, cells)
        << "\n";
  }
  return out.str();
}

}  // namespace segroute::io
