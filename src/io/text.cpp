#include "io/text.h"

#include <sstream>
#include <stdexcept>

namespace segroute::io {

std::string to_text(const SegmentedChannel& ch) {
  std::ostringstream out;
  out << "channel " << ch.width() << "\n";
  for (TrackId t = 0; t < ch.num_tracks(); ++t) {
    out << "track";
    for (Column c : ch.track(t).switch_positions()) out << ' ' << c;
    out << "\n";
  }
  return out.str();
}

std::string to_text(const ConnectionSet& cs) {
  std::ostringstream out;
  out << "connections\n";
  for (const Connection& c : cs.all()) {
    out << "conn " << c.left << ' ' << c.right;
    if (!c.name.empty()) out << ' ' << c.name;
    out << "\n";
  }
  return out.str();
}

std::string to_text(const Routing& r) {
  std::ostringstream out;
  out << "routing\n";
  for (ConnId i = 0; i < r.size(); ++i) {
    if (r.is_assigned(i)) {
      out << "assign " << i << ' ' << r.track_of(i) << "\n";
    }
  }
  return out.str();
}

namespace {

/// Reads lines, skipping blanks and '#' comments; returns false at EOF.
bool next_line(std::istream& in, std::string& line) {
  while (std::getline(in, line)) {
    const auto pos = line.find('#');
    if (pos != std::string::npos) line.erase(pos);
    bool blank = true;
    for (char c : line) {
      if (!isspace(static_cast<unsigned char>(c))) {
        blank = false;
        break;
      }
    }
    if (!blank) return true;
  }
  return false;
}

}  // namespace

SegmentedChannel parse_channel(std::istream& in) {
  std::string line;
  if (!next_line(in, line)) {
    throw std::invalid_argument("parse_channel: empty input");
  }
  std::istringstream head(line);
  std::string kw;
  Column width = 0;
  head >> kw >> width;
  if (kw != "channel" || width < 1) {
    throw std::invalid_argument("parse_channel: expected 'channel <width>'");
  }
  std::vector<Track> tracks;
  std::streampos before = in.tellg();
  while (next_line(in, line)) {
    std::istringstream ls(line);
    ls >> kw;
    if (kw != "track") {
      // Not ours: rewind so a following section parser can consume it.
      in.seekg(before);
      break;
    }
    std::vector<Column> cuts;
    Column c;
    while (ls >> c) cuts.push_back(c);
    tracks.emplace_back(width, std::move(cuts));
    before = in.tellg();
  }
  if (tracks.empty()) {
    throw std::invalid_argument("parse_channel: no tracks");
  }
  return SegmentedChannel(std::move(tracks));
}

SegmentedChannel parse_channel(const std::string& text) {
  std::istringstream in(text);
  return parse_channel(in);
}

ConnectionSet parse_connections(std::istream& in) {
  std::string line;
  if (!next_line(in, line)) {
    throw std::invalid_argument("parse_connections: empty input");
  }
  std::istringstream head(line);
  std::string kw;
  head >> kw;
  if (kw != "connections") {
    throw std::invalid_argument(
        "parse_connections: expected 'connections' header");
  }
  ConnectionSet cs;
  std::streampos before = in.tellg();
  while (next_line(in, line)) {
    std::istringstream ls(line);
    ls >> kw;
    if (kw != "conn") {
      in.seekg(before);
      break;
    }
    Column l = 0, r = 0;
    std::string name;
    if (!(ls >> l >> r)) {
      throw std::invalid_argument("parse_connections: malformed conn line");
    }
    ls >> name;  // optional
    cs.add(l, r, std::move(name));
    before = in.tellg();
  }
  return cs;
}

ConnectionSet parse_connections(const std::string& text) {
  std::istringstream in(text);
  return parse_connections(in);
}

}  // namespace segroute::io
