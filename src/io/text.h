// Plain-text (de)serialization of channels, connection sets and routings.
//
// Format (line oriented, '#' comments):
//   channel <width>
//   track <cut1> <cut2> ...      # one line per track; cuts may be empty
//   connections
//   conn <left> <right> [name]
//   routing
//   assign <conn-index> <track-index>   # 0-based
#pragma once

#include <iosfwd>
#include <string>

#include "core/channel.h"
#include "core/connection.h"
#include "core/routing.h"

namespace segroute::io {

std::string to_text(const SegmentedChannel& ch);
std::string to_text(const ConnectionSet& cs);
std::string to_text(const Routing& r);

/// Parses a channel from the `channel`/`track` lines of `in`.
/// Throws std::invalid_argument on malformed input.
SegmentedChannel parse_channel(std::istream& in);
SegmentedChannel parse_channel(const std::string& text);

/// Parses a connection set from `connections`/`conn` lines.
ConnectionSet parse_connections(std::istream& in);
ConnectionSet parse_connections(const std::string& text);

}  // namespace segroute::io
