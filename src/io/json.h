// Minimal JSON export for machine-readable experiment pipelines:
// channels, connection sets, routings and route statistics. Emission
// only (parsing stays with the text format in io/text.h); output is
// deterministic and stable for golden-file diffs.
#pragma once

#include <string>

#include "alg/result.h"
#include "core/channel.h"
#include "core/connection.h"
#include "core/generalized.h"
#include "core/routing.h"
#include "core/stats.h"

namespace segroute::io {

/// {"width": N, "tracks": [[cut, ...], ...]}
std::string to_json(const SegmentedChannel& ch);

/// {"connections": [{"left": l, "right": r, "name": "..."}, ...]}
std::string to_json(const ConnectionSet& cs);

/// {"assignments": [t0, t1, ...]} with null for unassigned connections.
std::string to_json(const Routing& r);

/// {"parts": [[{"left": .., "right": .., "track": ..}, ...], ...]}
std::string to_json(const GeneralizedRouting& r);

/// {"success": .., "weight": .., "note": "..", "stats": {...}}
std::string to_json(const alg::RouteResult& r);

/// {"total_segments": .., "wire_utilization": .., ...}
std::string to_json(const UtilizationStats& st);

/// Escapes a string for embedding in JSON output.
std::string json_escape(const std::string& s);

}  // namespace segroute::io
