// ASCII renderings of channels and routings in the style of the paper's
// figures: connections above, tracks below, 'o' at switch gaps and '='
// along occupied segments.
#pragma once

#include <string>

#include "core/channel.h"
#include "core/connection.h"
#include "core/generalized.h"
#include "core/routing.h"

namespace segroute::io {

/// The connection set, one line per connection: spans drawn with dashes.
std::string render(const ConnectionSet& cs, Column width);

/// The channel, one line per track: segments as runs of '-' separated by
/// 'o' switches.
std::string render(const SegmentedChannel& ch);

/// A routed channel: occupied segments show the connection's index (last
/// digit) or name initial; free columns keep '-'/'o'.
std::string render(const SegmentedChannel& ch, const ConnectionSet& cs,
                   const Routing& r);

/// A routed channel under a generalized routing (parts labelled per
/// parent connection).
std::string render(const SegmentedChannel& ch, const ConnectionSet& cs,
                   const GeneralizedRouting& r);

}  // namespace segroute::io
