// SVG renderer: publication-quality figures of channels and routings in
// the visual style of the paper's Fig. 3 — tracks as horizontal lines,
// switches as open circles, occupied segments as colored bars, the
// connection list drawn above the channel.
#pragma once

#include <string>

#include "core/channel.h"
#include "core/connection.h"
#include "core/generalized.h"
#include "core/routing.h"

namespace segroute::io {

struct SvgOptions {
  int column_px = 28;   // horizontal pixels per column
  int row_px = 26;      // vertical pixels per track / connection row
  bool show_labels = true;
};

/// The channel alone (segments and switches).
std::string to_svg(const SegmentedChannel& ch, const SvgOptions& opts = {});

/// Channel + connections above it; if `r` is non-null, occupied segments
/// are drawn as colored bars (one color per connection, cycling).
std::string to_svg(const SegmentedChannel& ch, const ConnectionSet& cs,
                   const Routing* r = nullptr, const SvgOptions& opts = {});

/// Generalized routing: parts rendered per track with the parent's color.
std::string to_svg(const SegmentedChannel& ch, const ConnectionSet& cs,
                   const GeneralizedRouting& r, const SvgOptions& opts = {});

}  // namespace segroute::io
