#include "io/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace segroute::io {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) {
    throw std::invalid_argument("Table: need at least one column");
  }
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table::add_row: cell count mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << v;
  return out.str();
}

std::string Table::num(std::int64_t v) { return std::to_string(v); }
std::string Table::num(std::uint64_t v) { return std::to_string(v); }
std::string Table::num(int v) { return std::to_string(v); }

std::string Table::str() const {
  std::vector<std::size_t> w(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) w[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      w[c] = std::max(w[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(w[c]))
          << cells[c];
    }
    out << "\n";
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < w.size(); ++c) total += w[c] + (c ? 2 : 0);
  out << std::string(total, '-') << "\n";
  for (const auto& row : rows_) emit(row);
  return out.str();
}

void Table::print(std::ostream& out) const { out << str(); }

}  // namespace segroute::io
