#include "io/json.h"

#include <iomanip>
#include <sstream>

namespace segroute::io {

namespace {

std::string num(double v) {
  std::ostringstream out;
  out << std::setprecision(12) << v;
  return out.str();
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::ostringstream esc;
          esc << "\\u" << std::hex << std::setw(4) << std::setfill('0')
              << static_cast<int>(c);
          out += esc.str();
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string to_json(const SegmentedChannel& ch) {
  std::ostringstream out;
  out << "{\"width\": " << ch.width() << ", \"tracks\": [";
  for (TrackId t = 0; t < ch.num_tracks(); ++t) {
    if (t) out << ", ";
    out << "[";
    const auto cuts = ch.track(t).switch_positions();
    for (std::size_t i = 0; i < cuts.size(); ++i) {
      if (i) out << ", ";
      out << cuts[i];
    }
    out << "]";
  }
  out << "]}";
  return out.str();
}

std::string to_json(const ConnectionSet& cs) {
  std::ostringstream out;
  out << "{\"connections\": [";
  for (ConnId i = 0; i < cs.size(); ++i) {
    if (i) out << ", ";
    out << "{\"left\": " << cs[i].left << ", \"right\": " << cs[i].right;
    if (!cs[i].name.empty()) {
      out << ", \"name\": \"" << json_escape(cs[i].name) << "\"";
    }
    out << "}";
  }
  out << "]}";
  return out.str();
}

std::string to_json(const Routing& r) {
  std::ostringstream out;
  out << "{\"assignments\": [";
  for (ConnId i = 0; i < r.size(); ++i) {
    if (i) out << ", ";
    if (r.is_assigned(i)) {
      out << r.track_of(i);
    } else {
      out << "null";
    }
  }
  out << "]}";
  return out.str();
}

std::string to_json(const GeneralizedRouting& r) {
  std::ostringstream out;
  out << "{\"parts\": [";
  for (ConnId i = 0; i < r.size(); ++i) {
    if (i) out << ", ";
    out << "[";
    const auto& parts = r.parts(i);
    for (std::size_t p = 0; p < parts.size(); ++p) {
      if (p) out << ", ";
      out << "{\"left\": " << parts[p].left << ", \"right\": "
          << parts[p].right << ", \"track\": " << parts[p].track << "}";
    }
    out << "]";
  }
  out << "]}";
  return out.str();
}

std::string to_json(const alg::RouteResult& r) {
  std::ostringstream out;
  out << "{\"success\": " << (r.success ? "true" : "false")
      << ", \"weight\": " << num(r.weight) << ", \"note\": \""
      << json_escape(r.note) << "\", \"stats\": {\"total_nodes\": "
      << r.stats.total_nodes << ", \"max_level_nodes\": "
      << r.stats.max_level_nodes << ", \"iterations\": "
      << r.stats.iterations << ", \"lp_objective\": "
      << num(r.stats.lp_objective) << ", \"lp_integral\": "
      << (r.stats.lp_integral ? "true" : "false")
      << ", \"rounding_passes\": " << r.stats.rounding_passes
      << "}, \"routing\": " << to_json(r.routing) << "}";
  return out.str();
}

std::string to_json(const UtilizationStats& st) {
  std::ostringstream out;
  out << "{\"total_segments\": " << st.total_segments
      << ", \"occupied_segments\": " << st.occupied_segments
      << ", \"total_columns\": " << st.total_columns
      << ", \"occupied_columns\": " << st.occupied_columns
      << ", \"demanded_columns\": " << st.demanded_columns
      << ", \"tracks_touched\": " << st.tracks_touched
      << ", \"wire_utilization\": " << num(st.wire_utilization())
      << ", \"overhang\": " << num(st.overhang()) << "}";
  return out.str();
}

}  // namespace segroute::io
