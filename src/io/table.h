// Minimal fixed-width table printer used by every experiment bench so
// their output reads like the tables in a paper.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace segroute::io {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience for mixed content: formats doubles with `precision`.
  static std::string num(double v, int precision = 2);
  static std::string num(std::int64_t v);
  static std::string num(std::uint64_t v);
  static std::string num(int v);

  /// Renders with a header rule and right-aligned numeric-looking cells.
  [[nodiscard]] std::string str() const;
  void print(std::ostream& out) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace segroute::io
