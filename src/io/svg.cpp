#include "io/svg.h"

#include <sstream>

namespace segroute::io {

namespace {

constexpr const char* kPalette[] = {
    "#4878d0", "#ee854a", "#6acc64", "#d65f5f", "#956cb4",
    "#8c613c", "#dc7ec0", "#797979", "#d5bb67", "#82c6e2",
};
constexpr int kPaletteSize = 10;

struct Canvas {
  std::ostringstream body;
  int width = 0;
  int height = 0;

  [[nodiscard]] std::string finish() const {
    std::ostringstream out;
    out << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << width
        << "\" height=\"" << height << "\" viewBox=\"0 0 " << width << ' '
        << height << "\">\n"
        << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n"
        << body.str() << "</svg>\n";
    return out.str();
  }
};

int col_x(Column c, const SvgOptions& o) { return 40 + (c - 1) * o.column_px; }

void draw_track(Canvas& cv, const Track& tr, int y, const SvgOptions& o,
                const std::string& label) {
  for (SegId s = 0; s < tr.num_segments(); ++s) {
    const Segment& seg = tr.segment(s);
    cv.body << "<line x1=\"" << col_x(seg.left, o) << "\" y1=\"" << y
            << "\" x2=\"" << col_x(seg.right, o) << "\" y2=\"" << y
            << "\" stroke=\"#222\" stroke-width=\"2\"/>\n";
    if (s + 1 < tr.num_segments()) {
      // Switch between this segment and the next: an open circle.
      const int x = (col_x(seg.right, o) + col_x(seg.right + 1, o)) / 2;
      cv.body << "<circle cx=\"" << x << "\" cy=\"" << y
              << "\" r=\"4\" fill=\"white\" stroke=\"#222\" "
                 "stroke-width=\"1.5\"/>\n";
    }
  }
  if (o.show_labels) {
    cv.body << "<text x=\"6\" y=\"" << y + 4
            << "\" font-family=\"sans-serif\" font-size=\"12\">" << label
            << "</text>\n";
  }
}

void draw_occupied(Canvas& cv, const Track& tr, int y, Column lo, Column hi,
                   int color, const SvgOptions& o) {
  auto [a, b] = tr.span(lo, hi);
  for (SegId s = a; s <= b; ++s) {
    const Segment& seg = tr.segment(s);
    cv.body << "<line x1=\"" << col_x(seg.left, o) << "\" y1=\"" << y
            << "\" x2=\"" << col_x(seg.right, o) << "\" y2=\"" << y
            << "\" stroke=\"" << kPalette[color % kPaletteSize]
            << "\" stroke-width=\"6\" stroke-linecap=\"round\" "
               "opacity=\"0.75\"/>\n";
  }
}

void draw_connection_row(Canvas& cv, const Connection& c, int y, int color,
                         const SvgOptions& o) {
  cv.body << "<line x1=\"" << col_x(c.left, o) << "\" y1=\"" << y
          << "\" x2=\"" << col_x(c.right, o) << "\" y2=\"" << y
          << "\" stroke=\"" << kPalette[color % kPaletteSize]
          << "\" stroke-width=\"3\"/>\n"
          << "<line x1=\"" << col_x(c.left, o) << "\" y1=\"" << y - 5
          << "\" x2=\"" << col_x(c.left, o) << "\" y2=\"" << y + 5
          << "\" stroke=\"" << kPalette[color % kPaletteSize]
          << "\" stroke-width=\"3\"/>\n"
          << "<line x1=\"" << col_x(c.right, o) << "\" y1=\"" << y - 5
          << "\" x2=\"" << col_x(c.right, o) << "\" y2=\"" << y + 5
          << "\" stroke=\"" << kPalette[color % kPaletteSize]
          << "\" stroke-width=\"3\"/>\n";
  if (o.show_labels && !c.name.empty()) {
    cv.body << "<text x=\"" << col_x(c.right, o) + 8 << "\" y=\"" << y + 4
            << "\" font-family=\"sans-serif\" font-size=\"12\">" << c.name
            << "</text>\n";
  }
}

Canvas make_canvas(Column width, int rows, const SvgOptions& o) {
  Canvas cv;
  cv.width = col_x(width, o) + 60;
  cv.height = 20 + rows * o.row_px + 20;
  return cv;
}

}  // namespace

std::string to_svg(const SegmentedChannel& ch, const SvgOptions& opts) {
  Canvas cv = make_canvas(ch.width(), ch.num_tracks(), opts);
  for (TrackId t = 0; t < ch.num_tracks(); ++t) {
    draw_track(cv, ch.track(t), 20 + t * opts.row_px, opts,
               "t" + std::to_string(t + 1));
  }
  return cv.finish();
}

std::string to_svg(const SegmentedChannel& ch, const ConnectionSet& cs,
                   const Routing* r, const SvgOptions& opts) {
  const int rows = cs.size() + 1 + ch.num_tracks();
  Canvas cv = make_canvas(ch.width(), rows, opts);
  int y = 20;
  for (ConnId i = 0; i < cs.size(); ++i, y += opts.row_px) {
    draw_connection_row(cv, cs[i], y, i, opts);
  }
  y += opts.row_px / 2;
  const int track_y0 = y;
  for (TrackId t = 0; t < ch.num_tracks(); ++t) {
    draw_track(cv, ch.track(t), track_y0 + t * opts.row_px, opts,
               "t" + std::to_string(t + 1));
  }
  if (r != nullptr) {
    for (ConnId i = 0; i < cs.size(); ++i) {
      if (!r->is_assigned(i)) continue;
      const TrackId t = r->track_of(i);
      draw_occupied(cv, ch.track(t), track_y0 + t * opts.row_px, cs[i].left,
                    cs[i].right, i, opts);
    }
  }
  return cv.finish();
}

std::string to_svg(const SegmentedChannel& ch, const ConnectionSet& cs,
                   const GeneralizedRouting& r, const SvgOptions& opts) {
  const int rows = cs.size() + 1 + ch.num_tracks();
  Canvas cv = make_canvas(ch.width(), rows, opts);
  int y = 20;
  for (ConnId i = 0; i < cs.size(); ++i, y += opts.row_px) {
    draw_connection_row(cv, cs[i], y, i, opts);
  }
  y += opts.row_px / 2;
  const int track_y0 = y;
  for (TrackId t = 0; t < ch.num_tracks(); ++t) {
    draw_track(cv, ch.track(t), track_y0 + t * opts.row_px, opts,
               "t" + std::to_string(t + 1));
  }
  for (ConnId i = 0; i < cs.size(); ++i) {
    for (const RoutePart& p : r.parts(i)) {
      draw_occupied(cv, ch.track(p.track), track_y0 + p.track * opts.row_px,
                    p.left, p.right, i, opts);
    }
  }
  return cv.finish();
}

}  // namespace segroute::io
