#include "net/express.h"

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <string>

#include "core/routing.h"

namespace segroute::net {

std::vector<Message> uniform_traffic(int pes, int count, std::mt19937_64& rng) {
  if (pes < 2 || count < 0) {
    throw std::invalid_argument("uniform_traffic: bad parameters");
  }
  std::uniform_int_distribution<int> pe(1, pes);
  std::vector<Message> msgs;
  msgs.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    int a = pe(rng), b = pe(rng);
    while (b == a) b = pe(rng);
    msgs.push_back(Message{a, b});
  }
  return msgs;
}

std::vector<Message> neighbor_traffic(int pes, int count, std::mt19937_64& rng) {
  if (pes < 2 || count < 0) {
    throw std::invalid_argument("neighbor_traffic: bad parameters");
  }
  std::uniform_int_distribution<int> pe(1, pes - 1);
  std::vector<Message> msgs;
  msgs.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const int a = pe(rng);
    msgs.push_back(Message{a, a + 1});
  }
  return msgs;
}

std::vector<Message> bit_reversal_traffic(int pes) {
  // Classic permutation: PE i talks to bit-reverse(i) over the largest
  // power of two that fits. Requires pes >= 2.
  if (pes < 2) {
    throw std::invalid_argument("bit_reversal_traffic: need >= 2 PEs");
  }
  int bits = 0;
  while ((2 << bits) <= pes) ++bits;
  const int n = 1 << bits;
  std::vector<Message> msgs;
  for (int i = 0; i < n; ++i) {
    int rev = 0;
    for (int b = 0; b < bits; ++b) {
      if (i & (1 << b)) rev |= 1 << (bits - 1 - b);
    }
    if (rev != i) msgs.push_back(Message{i + 1, rev + 1});
  }
  return msgs;
}

SegmentedChannel local_channel(int tracks, int pes) {
  return SegmentedChannel::fully_segmented(tracks, pes);
}

SegmentedChannel bus_channel(int tracks, int pes) {
  return SegmentedChannel::unsegmented(tracks, pes);
}

SegmentedChannel express_channel(int tracks, int pes, Column express_len) {
  if (tracks < 2 || pes < 2 || express_len < 2) {
    throw std::invalid_argument("express_channel: bad parameters");
  }
  std::vector<Track> ts;
  for (int t = 0; t < tracks; ++t) {
    if (t % 2 == 0) {
      ts.push_back(Track::fully_segmented(pes));  // local lane
    } else {
      // Express lane, staggered across express tracks.
      std::vector<Column> cuts;
      const Column offset =
          static_cast<Column>((t / 2) % express_len) * (express_len / 2) %
              express_len +
          1;
      for (Column c = offset; c < pes; c += express_len) {
        if (c >= 1) cuts.push_back(c);
      }
      ts.emplace_back(pes, std::move(cuts));
    }
  }
  return SegmentedChannel(std::move(ts));
}

NetworkReport offer_traffic(const SegmentedChannel& ch,
                            const std::vector<Message>& msgs,
                            const fpga::DelayParams& params) {
  NetworkReport rep;
  rep.offered = static_cast<int>(msgs.size());
  // Sort by left end (the channel routers' processing order).
  std::vector<Message> sorted = msgs;
  std::sort(sorted.begin(), sorted.end(), [](const Message& a, const Message& b) {
    return std::min(a.src, a.dst) < std::min(b.src, b.dst);
  });
  for (const Message& m : sorted) {
    if (std::min(m.src, m.dst) < 1 ||
        std::max(m.src, m.dst) > static_cast<int>(ch.width())) {
      rep = NetworkReport{};
      rep.offered = static_cast<int>(msgs.size());
      rep.failure = alg::FailureKind::kInvalidInput;
      rep.note = "offer_traffic: message beyond channel";
      return rep;
    }
  }
  Occupancy occ(ch);
  double lat_sum = 0.0, sw_sum = 0.0;
  ConnId next_id = 0;
  for (const Message& m : sorted) {
    const Column lo = static_cast<Column>(std::min(m.src, m.dst));
    const Column hi = static_cast<Column>(std::max(m.src, m.dst));
    // Prefer the track minimizing occupied segment count, then length —
    // an express lane for long-haul, a local lane for neighbors.
    TrackId best = kNoTrack;
    int best_segs = 0;
    Column best_len = 0;
    for (TrackId t = 0; t < ch.num_tracks(); ++t) {
      if (!occ.fits(t, lo, hi)) continue;
      const int segs = ch.track(t).segments_spanned(lo, hi);
      const Column len = ch.track(t).occupied_length(lo, hi);
      if (best == kNoTrack || segs < best_segs ||
          (segs == best_segs && len < best_len)) {
        best = t;
        best_segs = segs;
        best_len = len;
      }
    }
    if (best == kNoTrack) continue;  // dropped
    occ.place(best, lo, hi, next_id++);
    ++rep.delivered;
    const Connection conn{lo, hi, ""};
    lat_sum += fpga::connection_delay(ch, conn, best, params);
    sw_sum += 1.0 + best_segs;  // entry + exit + joins
    rep.max_latency = std::max(
        rep.max_latency, fpga::connection_delay(ch, conn, best, params));
  }
  if (rep.delivered > 0) {
    rep.mean_latency = lat_sum / rep.delivered;
    rep.mean_switches = sw_sum / rep.delivered;
  }
  return rep;
}

alg::RouteResult express_route(const SegmentedChannel& ch,
                               const ConnectionSet& cs, int max_segments,
                               const RouteContext& ctx) {
  alg::RouteResult res;
  res.routing = Routing(cs.size());
  if (cs.max_right() > ch.width()) {
    res.fail(alg::FailureKind::kInvalidInput,
             "connections exceed channel width");
    return res;
  }
  const ChannelIndex* idx = ctx.index;
  std::optional<Occupancy> local_occ;
  Occupancy& occ = ctx.occupancy ? *ctx.occupancy : local_occ.emplace(ch);
  if (ctx.occupancy) occ.reset();
  for (ConnId i : cs.sorted_by_left()) {
    const Connection& c = cs[i];
    TrackId best = kNoTrack;
    int best_segs = 0;
    Column best_len = 0;
    for (TrackId t = 0; t < ch.num_tracks(); ++t) {
      const int segs = idx ? idx->segments_spanned(t, c.left, c.right)
                           : ch.track(t).segments_spanned(c.left, c.right);
      if (max_segments > 0 && segs > max_segments) continue;
      if (!occ.fits(t, c.left, c.right)) continue;
      const Column len = idx ? idx->occupied_length(t, c.left, c.right)
                             : ch.track(t).occupied_length(c.left, c.right);
      if (best == kNoTrack || segs < best_segs ||
          (segs == best_segs && len < best_len)) {
        best = t;
        best_segs = segs;
        best_len = len;
      }
    }
    if (best == kNoTrack) {
      res.fail(alg::FailureKind::kInfeasible,
               "no feasible track for connection " + std::to_string(i));
      return res;
    }
    occ.place(best, c.left, c.right, i);
    res.routing.assign(i, best);
  }
  res.success = true;
  return res;
}

}  // namespace segroute::net
