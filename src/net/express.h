// Segmented channels as a multiprocessor interconnect — the paper's
// concluding remark: "The routing scheme using segmented channels may
// also be considered as a model for a communication network in a
// multiprocessor architecture. The logic modules in Fig. 1 can be
// replaced by processing elements (PE's) ... In [8] a preliminary
// network model that uses specially segmented channels (referred to as
// express channels) has already been proposed."
//
// Model: P processing elements sit at columns 1..P of a segmented
// channel. A message from PE a to PE b claims the segments spanning
// [min(a,b), max(a,b)] on one track (programmed-switch circuit
// switching). Latency is the Elmore delay of the claimed path — long
// express segments give long-haul messages few switches; short local
// segments serve neighbor traffic without wasting wire.
#pragma once

#include <random>
#include <string>
#include <vector>

#include "alg/result.h"
#include "core/channel.h"
#include "core/channel_index.h"
#include "core/connection.h"
#include "fpga/delay.h"

namespace segroute::net {

/// A point-to-point message between two processing elements (1-based
/// PE indices == columns).
struct Message {
  int src = 0;
  int dst = 0;

  [[nodiscard]] int distance() const { return std::abs(dst - src); }
};

/// Traffic patterns from the interconnection-network literature.
/// Throw contract: all throw std::invalid_argument on nonsensical
/// parameters (fewer than 2 PEs, negative message count).
std::vector<Message> uniform_traffic(int pes, int count, std::mt19937_64& rng);
std::vector<Message> neighbor_traffic(int pes, int count, std::mt19937_64& rng);
std::vector<Message> bit_reversal_traffic(int pes);

/// Channel organizations to compare (all with `tracks` tracks over `pes`
/// columns).
SegmentedChannel local_channel(int tracks, int pes);            // unit segments
SegmentedChannel bus_channel(int tracks, int pes);              // unsegmented
/// Express organization: half the tracks carry unit ("local") segments,
/// the other half express segments of length `express_len`, staggered.
/// Throws std::invalid_argument when tracks < 2, pes < 2, or
/// express_len < 1.
SegmentedChannel express_channel(int tracks, int pes, Column express_len);

/// Outcome of offering a batch of messages to the network.
struct NetworkReport {
  int offered = 0;
  int delivered = 0;                 // messages that got a track
  double mean_latency = 0.0;         // Elmore delay over delivered
  double max_latency = 0.0;
  double mean_switches = 0.0;        // programmed switches per delivered msg
  /// kInvalidInput when a message references a PE outside the channel's
  /// columns (nothing is offered then); kNone otherwise.
  alg::FailureKind failure = alg::FailureKind::kNone;
  std::string note;  // human-readable detail when failure != kNone

  explicit operator bool() const { return failure == alg::FailureKind::kNone; }
};

/// Greedy circuit switching: messages are sorted by left end and each is
/// assigned to the feasible track minimizing occupied segment count,
/// then occupied length (an express lane for long-haul, a local lane for
/// neighbors); undeliverable messages are dropped and counted. A message
/// referencing a PE outside the channel's columns yields a report with
/// failure == kInvalidInput instead of a throw.
NetworkReport offer_traffic(const SegmentedChannel& ch,
                            const std::vector<Message>& msgs,
                            const fpga::DelayParams& params = {});

/// The express assignment policy as a batch router: routes a
/// ConnectionSet by left-end order, placing each connection on the
/// feasible track with the fewest occupied segments (ties: shortest
/// occupied length, then lowest track). With `max_segments` > 0,
/// assignments occupying more segments are not considered. Heuristic —
/// a kInfeasible failure means "gave up", not a proof. `ctx` optionally
/// supplies a prebuilt ChannelIndex and a reusable Occupancy (reset
/// here); results are bit-identical with and without it. Registered in
/// alg::registry() as "express".
alg::RouteResult express_route(const SegmentedChannel& ch,
                               const ConnectionSet& cs, int max_segments = 0,
                               const RouteContext& ctx = {});

}  // namespace segroute::net
