#include "harness/verify.h"

#include <cmath>
#include <vector>

namespace segroute::harness {

const char* to_string(VerifyError e) {
  switch (e) {
    case VerifyError::kOk:
      return "ok";
    case VerifyError::kSizeMismatch:
      return "size-mismatch";
    case VerifyError::kIncomplete:
      return "incomplete";
    case VerifyError::kBadTrack:
      return "bad-track";
    case VerifyError::kUncoveredSpan:
      return "uncovered-span";
    case VerifyError::kOverlap:
      return "overlap";
    case VerifyError::kSegmentLimit:
      return "segment-limit";
    case VerifyError::kWeightMismatch:
      return "weight-mismatch";
  }
  return "?";
}

RouteVerifier::RouteVerifier(const SegmentedChannel& ch,
                             const ConnectionSet& cs)
    : ch_(&ch), cs_(&cs) {}

RouteVerifier::RouteVerifier(const SegmentedChannel& ch,
                             const ConnectionSet& cs,
                             const ChannelIndex* index)
    : ch_(&ch), cs_(&cs), idx_(index) {}

VerifyResult RouteVerifier::check(const Routing& r,
                                  const VerifyOptions& opts) const {
  auto fail = [](VerifyError e, std::string detail) {
    return VerifyResult{e, std::move(detail)};
  };
  const SegmentedChannel& ch = *ch_;
  const ConnectionSet& cs = *cs_;

  if (r.size() != cs.size()) {
    return fail(VerifyError::kSizeMismatch,
                "routing holds " + std::to_string(r.size()) +
                    " entries for " + std::to_string(cs.size()) +
                    " connections");
  }

  // Independent occupancy: per track, the connection claiming each
  // segment. Deliberately rebuilt here from segment interval arithmetic
  // rather than core's Occupancy. A supplied ChannelIndex is consulted
  // only for the per-track segment counts (structural shape); all
  // semantic checks below stay first-principles.
  std::vector<std::vector<ConnId>> claimed(
      static_cast<std::size_t>(ch.num_tracks()));
  for (TrackId t = 0; t < ch.num_tracks(); ++t) {
    const int segs = idx_ ? idx_->num_segments(t) : ch.track(t).num_segments();
    claimed[static_cast<std::size_t>(t)].assign(static_cast<std::size_t>(segs),
                                                kNoConn);
  }

  double recomputed_weight = 0.0;
  for (ConnId i = 0; i < cs.size(); ++i) {
    const TrackId t = r.track_of(i);
    if (t == kNoTrack) {
      if (opts.require_complete) {
        return fail(VerifyError::kIncomplete,
                    "connection " + std::to_string(i) + " unassigned");
      }
      continue;
    }
    if (t < 0 || t >= ch.num_tracks()) {
      return fail(VerifyError::kBadTrack,
                  "connection " + std::to_string(i) +
                      " assigned to nonexistent track " + std::to_string(t));
    }
    const Connection& c = cs[i];
    if (c.left < 1 || c.left > c.right || c.right > ch.width()) {
      return fail(VerifyError::kUncoveredSpan,
                  "connection " + std::to_string(i) + " spans [" +
                      std::to_string(c.left) + ", " + std::to_string(c.right) +
                      "] outside channel columns 1.." +
                      std::to_string(ch.width()));
    }
    // Occupied segments: every segment of track t overlapping [l, r].
    // Re-derived by interval scan; also re-checks that they cover the
    // span contiguously (a hole would mean the track cannot carry the
    // connection at all — possible only if the channel's segment
    // invariant broke).
    const Track& tr = ch.track(t);
    int used = 0;
    Column covered_to = c.left - 1;  // columns of [l, r] covered so far
    for (SegId s = 0; s < tr.num_segments(); ++s) {
      const Segment& seg = tr.segment(s);
      if (seg.right < c.left || seg.left > c.right) continue;
      ++used;
      if (seg.left > covered_to + 1) break;  // hole -> caught below
      covered_to = std::max(covered_to, std::min(seg.right, c.right));
      ConnId& owner = claimed[static_cast<std::size_t>(t)]
                             [static_cast<std::size_t>(s)];
      if (owner != kNoConn) {
        return fail(VerifyError::kOverlap,
                    "connections " + std::to_string(owner) + " and " +
                        std::to_string(i) + " both occupy track " +
                        std::to_string(t) + " segment " + std::to_string(s));
      }
      owner = i;
    }
    if (covered_to < c.right) {
      return fail(VerifyError::kUncoveredSpan,
                  "track " + std::to_string(t) + " covers connection " +
                      std::to_string(i) + " only through column " +
                      std::to_string(covered_to) + " of " +
                      std::to_string(c.right));
    }
    if (opts.max_segments > 0 && used > opts.max_segments) {
      return fail(VerifyError::kSegmentLimit,
                  "connection " + std::to_string(i) + " occupies " +
                      std::to_string(used) + " segments, limit " +
                      std::to_string(opts.max_segments));
    }
    if (opts.weight) recomputed_weight += (*opts.weight)(ch, c, t);
  }

  if (opts.weight && opts.expected_weight) {
    if (std::isinf(recomputed_weight) ||
        std::abs(recomputed_weight - *opts.expected_weight) >
            opts.weight_tolerance) {
      return fail(VerifyError::kWeightMismatch,
                  "recomputed weight " + std::to_string(recomputed_weight) +
                      " != reported " + std::to_string(*opts.expected_weight));
    }
  }
  return {};
}

VerifyResult RouteVerifier::check(const alg::RouteResult& r,
                                  VerifyOptions opts) const {
  if (!r.success) {
    return VerifyResult{VerifyError::kIncomplete,
                        "result reports failure (" + std::string(to_string(
                            r.failure)) + "): " + r.note};
  }
  if (opts.weight && !opts.expected_weight) opts.expected_weight = r.weight;
  return check(r.routing, opts);
}

}  // namespace segroute::harness
