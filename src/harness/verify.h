// RouteVerifier: independent re-verification of routings.
//
// Every router in src/alg/ is complex enough to corrupt a result
// silently (a bad frontier merge, a rounding bug, an off-by-one in a
// replay). The verifier re-checks a returned Routing against the channel
// and connection set *from first principles* — it deliberately shares no
// code with core/routing.cpp's validate() or Occupancy, recomputing
// segment spans and occupancy with its own arithmetic — so a bug in the
// shared plumbing cannot hide a bug in a router.
//
// Checks performed:
//   1. shape: routing size matches the connection count; every assigned
//      track index is in range;
//   2. span coverage: every connection lies inside the channel and the
//      segments of its assigned track jointly cover its span [l, r]
//      contiguously;
//   3. exclusivity: no segment of any track is occupied by two
//      connections (the paper's Definition 1);
//   4. K-segment limit: no connection occupies more than K segments
//      (when a limit is given);
//   5. weight: the recomputed total weight matches the router's reported
//      RouteResult::weight (when a weight function is given).
#pragma once

#include <optional>
#include <string>

#include "alg/result.h"
#include "core/channel.h"
#include "core/channel_index.h"
#include "core/connection.h"
#include "core/routing.h"
#include "core/weights.h"

namespace segroute::harness {

/// What the verifier found wrong (kOk = routing verified).
enum class VerifyError {
  kOk = 0,
  kSizeMismatch,     // routing/connection-set sizes differ
  kIncomplete,       // a connection is unassigned (when completeness required)
  kBadTrack,         // assigned track index out of range
  kUncoveredSpan,    // span outside the channel / not covered by the track
  kOverlap,          // two connections occupy the same segment
  kSegmentLimit,     // K-segment limit violated
  kWeightMismatch,   // recomputed weight differs from the reported one
};

const char* to_string(VerifyError e);

struct VerifyResult {
  VerifyError error = VerifyError::kOk;
  std::string detail;  // human-readable description of the first violation

  explicit operator bool() const { return error == VerifyError::kOk; }
};

struct VerifyOptions {
  /// K-segment limit to enforce; 0 = unlimited.
  int max_segments = 0;

  /// Reject unassigned connections. Disable to verify partial routings
  /// (e.g. best-effort results).
  bool require_complete = true;

  /// When set, recompute the routing's total weight with this function.
  std::optional<WeightFn> weight;

  /// Expected total weight (compared when `weight` is set).
  std::optional<double> expected_weight;

  /// Absolute tolerance for the weight comparison.
  double weight_tolerance = 1e-6;
};

/// Re-verifies routings for one (channel, connection set) pair.
class RouteVerifier {
 public:
  /// Both referents must outlive the verifier.
  RouteVerifier(const SegmentedChannel& ch, const ConnectionSet& cs);

  /// As above, with a prebuilt index over `ch`. The index is used ONLY
  /// for structural shape (per-track segment counts when sizing the
  /// independent occupancy table) — never for the span/coverage
  /// arithmetic itself, which stays first-principles so a bug in the
  /// shared index cannot hide a bug in a router. The index must have
  /// been built for `ch` and must outlive the verifier.
  RouteVerifier(const SegmentedChannel& ch, const ConnectionSet& cs,
                const ChannelIndex* index);

  /// Checks a routing from first principles.
  [[nodiscard]] VerifyResult check(const Routing& r,
                                   const VerifyOptions& opts = {}) const;

  /// Checks a full RouteResult: a successful result must carry a routing
  /// that verifies; with `opts.weight` set and no explicit
  /// expected_weight, the result's own `weight` field is the expectation
  /// (routers that optimize must report the true total).
  [[nodiscard]] VerifyResult check(const alg::RouteResult& r,
                                   VerifyOptions opts = {}) const;

 private:
  const SegmentedChannel* ch_;
  const ConnectionSet* cs_;
  const ChannelIndex* idx_ = nullptr;  // optional, shape-only (see ctor)
};

}  // namespace segroute::harness
