#include "harness/budget.h"

namespace segroute::harness {

const char* to_string(BudgetStop s) {
  switch (s) {
    case BudgetStop::kNone:
      return "none";
    case BudgetStop::kDeadline:
      return "deadline";
    case BudgetStop::kTickLimit:
      return "tick-limit";
    case BudgetStop::kCancelled:
      return "cancelled";
  }
  return "?";
}

BudgetMeter::BudgetMeter(const Budget& budget, std::uint32_t check_interval)
    : budget_(budget),
      start_(std::chrono::steady_clock::now()),
      check_interval_(check_interval == 0 ? 1 : check_interval),
      until_check_(1) {  // consult the clock on the very first tick
  if (budget_.deadline) deadline_at_ = start_ + *budget_.deadline;
}

bool BudgetMeter::check_clock() {
  if (budget_.cancel && budget_.cancel->load(std::memory_order_relaxed)) {
    stop_ = BudgetStop::kCancelled;
    return false;
  }
  if (deadline_at_ && std::chrono::steady_clock::now() >= *deadline_at_) {
    stop_ = BudgetStop::kDeadline;
    return false;
  }
  return true;
}

bool BudgetMeter::ok() {
  if (stop_ != BudgetStop::kNone) return false;
  return check_clock();
}

double BudgetMeter::elapsed_ms() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

std::string BudgetMeter::reason() const {
  switch (stop_) {
    case BudgetStop::kNone:
      return {};
    case BudgetStop::kDeadline:
      return "deadline of " +
             std::to_string(budget_.deadline ? budget_.deadline->count() : 0) +
             " ms exceeded";
    case BudgetStop::kTickLimit:
      return "work limit of " + std::to_string(budget_.max_ticks) +
             " units exceeded";
    case BudgetStop::kCancelled:
      return "cancelled";
  }
  return {};
}

}  // namespace segroute::harness
