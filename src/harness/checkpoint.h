// CheckpointStore: fingerprint-keyed save/restore of best-so-far routings.
//
// A survivable router needs somewhere safe to stand: when a repair
// attempt on a degraded channel fails, the session must roll back to the
// last known-good routing instead of keeping a corrupt or empty state
// (the spirit of VPR's place_checkpoint). A RoutingCheckpoint captures
// one routing together with the ChannelIndex fingerprint of the
// substrate it was verified on; a CheckpointStore holds a bounded LRU
// set of them, one slot per fingerprint.
//
// Two safety properties distinguish a checkpoint from a plain cache:
//
//  1. keyed by substrate structure — the fingerprint hashes the full
//     channel geometry, so a routing saved on the pristine channel can
//     never be restored onto an incompatible degraded one (and vice
//     versa): a storm that changes the channel changes the key;
//  2. re-verified on restore — restore() runs the saved routing back
//     through RouteVerifier against the caller's channel + connection
//     set before handing it out, so a checkpoint that has gone stale
//     (different workload, corrupted store, fingerprint collision) is
//     rejected, counted, and dropped rather than re-introduced.
//
// save() keeps the better of the existing and the incoming state for a
// fingerprint: lower weight when both carry one, the newcomer otherwise
// ("best-so-far" under an objective, "most recent good" without one).
//
// Thread-safe; all methods take an internal lock. Deterministic: no
// clocks, no RNG — `sequence` is a per-store save counter, so equal call
// sequences produce equal stores.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/channel.h"
#include "core/connection.h"
#include "core/routing.h"
#include "harness/verify.h"

namespace segroute::harness {

/// One saved routing state, keyed by the substrate fingerprint it was
/// verified on (ChannelIndex::fingerprint()).
struct RoutingCheckpoint {
  std::uint64_t fingerprint = 0;
  Routing routing;
  double weight = 0.0;      // meaningful iff has_weight
  bool has_weight = false;
  std::string source;       // who saved it (router / winner name)
  std::uint64_t sequence = 0;  // per-store save order (monotonic)

  /// Spans of the connection set `routing` was verified for, in id
  /// order (empty when the saver did not record them). What lets a
  /// later call with an *edited* connection set align itself against
  /// the checkpoint and repair just the difference instead of
  /// discovering the mismatch through a failed re-verification.
  std::vector<std::pair<Column, Column>> conns;
};

/// Store observability counters (a snapshot).
struct CheckpointStats {
  std::uint64_t saves = 0;      // save() calls accepted (insert or improve)
  std::uint64_t supersedes = 0; // saves that replaced an existing slot
  std::uint64_t kept = 0;       // saves rejected: existing state was better
  std::uint64_t hits = 0;       // find/restore found the fingerprint
  std::uint64_t misses = 0;     // ... or did not
  std::uint64_t rejected = 0;   // restores rejected by re-verification
  std::uint64_t evictions = 0;  // LRU evictions
  std::size_t size = 0;
  std::size_t capacity = 0;
};

class CheckpointStore {
 public:
  /// `capacity`: max distinct fingerprints held; least-recently-used
  /// slots are evicted (find/restore/save all refresh recency).
  explicit CheckpointStore(std::size_t capacity = 16);

  /// Saves `routing` for `fingerprint`, keeping the better of old and
  /// new: lower weight when both carry one, the newcomer otherwise.
  /// `conns`, when given, records the routed connection spans in id
  /// order so a later caller can align an edited set against the
  /// checkpoint (the robust_route repair pre-stage).
  void save(std::uint64_t fingerprint, const Routing& routing,
            std::optional<double> weight = std::nullopt,
            std::string source = {},
            std::vector<std::pair<Column, Column>> conns = {});

  /// The checkpoint for `fingerprint` (a copy), without verification.
  [[nodiscard]] std::optional<RoutingCheckpoint> find(
      std::uint64_t fingerprint) const;

  /// The checkpoint for `fingerprint`, re-verified against (ch, cs) with
  /// `vo` before being handed out. A checkpoint that fails verification
  /// is dropped from the store and counted in `rejected`.
  [[nodiscard]] std::optional<RoutingCheckpoint> restore(
      std::uint64_t fingerprint, const SegmentedChannel& ch,
      const ConnectionSet& cs, const VerifyOptions& vo = {}) const;

  /// Drops the checkpoint for `fingerprint` (no-op when absent).
  void invalidate(std::uint64_t fingerprint);

  void clear();

  [[nodiscard]] CheckpointStats stats() const;

 private:
  // Bounded LRU: entries_ is most-recent-first; by_fp_ points into it.
  // Mutable so find()/restore() can refresh recency and count.
  mutable std::mutex mu_;
  mutable std::list<RoutingCheckpoint> entries_;
  mutable std::unordered_map<std::uint64_t,
                             std::list<RoutingCheckpoint>::iterator>
      by_fp_;
  std::size_t capacity_;
  std::uint64_t next_sequence_ = 0;
  mutable CheckpointStats stats_;
};

/// Rebuilds `occ` to reflect `ckpt.routing` on `ch`: rebinds, then places
/// every assigned connection. Returns false (leaving `occ` in a partially
/// rebuilt state) if any placement conflicts — which a verified
/// checkpoint never does.
bool restore_occupancy(const RoutingCheckpoint& ckpt,
                       const SegmentedChannel& ch, const ConnectionSet& cs,
                       Occupancy& occ);

}  // namespace segroute::harness
