#include "harness/robust_route.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <limits>
#include <mutex>
#include <thread>
#include <utility>

#include "util/pool.h"

#include "alg/partial.h"
#include "alg/registry.h"
#include "core/channel_index.h"
#include "core/router.h"
#include "engine/scratch.h"
#include "obs/instrument.h"

namespace segroute::harness {

using alg::FailureKind;
using alg::RouteResult;
using alg::RouterEntry;
using Clock = std::chrono::steady_clock;

namespace {

std::vector<StageSpec> default_cascade() {
  return {{"dp", {}}, {"greedy1", {}}, {"match1", {}}, {"lp", {}},
          {"anneal", {}}};
}

/// A budget with its deadline and tick cap multiplied by `factor` (the
/// ladder's escalation; 1.0 = unchanged). Cancellation passes through.
Budget scale_budget(Budget b, double factor) {
  if (factor > 1.0) {
    if (b.deadline) {
      b.deadline = std::chrono::milliseconds(
          static_cast<std::chrono::milliseconds::rep>(
              std::ceil(static_cast<double>(b.deadline->count()) * factor)));
    }
    if (b.max_ticks > 0) {
      b.max_ticks = static_cast<std::uint64_t>(
          std::ceil(static_cast<double>(b.max_ticks) * factor));
    }
  }
  return b;
}

std::chrono::milliseconds scale_ms(std::chrono::milliseconds d,
                                   double factor) {
  if (factor <= 1.0) return d;
  return std::chrono::milliseconds(
      static_cast<std::chrono::milliseconds::rep>(
          std::ceil(static_cast<double>(d.count()) * factor)));
}

RouteResult run_stage(const RouterEntry& e, const SegmentedChannel& ch,
                      const ConnectionSet& cs, const RobustOptions& o,
                      const Budget& b, const ChannelIndex& idx) {
  // Every stage goes through the registry dispatcher with the shared
  // per-call index (built once on the routed substrate) plus the calling
  // thread's scratch arenas: stages race on separate pool threads, and
  // thread_scratch() is thread-local, so no workspace is ever shared.
  RouteRequest rq;
  rq.channel = &ch;
  rq.connections = &cs;
  rq.context.index = &idx;
  rq.context.occupancy = &engine::thread_scratch().occupancy_for(idx);
  rq.dp_workspace = &engine::thread_scratch().dp();
  rq.options.max_segments = o.max_segments;
  // Stages without weight support route for feasibility and are scored
  // externally (total_weight below) — a weighted request would be
  // rejected as outside their capability envelope.
  if (o.weight && e.caps.supports_weight) rq.options.weight = o.weight;
  rq.budget = b;
  return alg::route(e, rq);
}

/// Does this stage set RouteResult::weight itself in optimizing mode?
/// Exactly the stages the dispatcher hands the weight to.
bool stage_reports_weight(const RouterEntry& e, const RobustOptions& o) {
  return o.weight.has_value() && e.caps.supports_weight;
}

/// A kInfeasible failure from this stage is a *proof* that no routing of
/// the posed problem exists (see the FailureKind doc): the router is
/// exact and its search completed (exact routers report budget aborts as
/// kBudgetExhausted, never kInfeasible). 1-segment routers prove it only
/// when K = 1 was actually asked for; the other exact specialists prove
/// it for any K because their kInfeasible covers the unconstrained
/// problem, whose infeasibility implies that of every restriction.
bool proves_infeasible(const RouterEntry& e, const RobustOptions& o,
                       const RouteResult& r) {
  if (r.failure != FailureKind::kInfeasible) return false;
  if (!e.caps.exact) return false;
  if (e.caps.k1_only) return o.max_segments == 1;
  return true;
}

/// A verified success from this stage is already optimal for the posed
/// optimizing problem, so later stages cannot improve on it. Anytime
/// optimizers flag best-effort answers with a non-empty note.
bool exact_optimal(const RouterEntry& e, const RobustOptions& o,
                   const RouteResult& r) {
  if (!e.caps.optimal) return false;
  if (e.caps.k1_only && o.max_segments != 1) return false;
  if (e.caps.anytime && !r.note.empty()) return false;
  return true;
}

}  // namespace

RouteReport robust_route(const SegmentedChannel& ch, const ConnectionSet& cs,
                         const RobustOptions& opts) {
  const auto t0 = Clock::now();
  auto ms_since = [](Clock::time_point start) {
    return std::chrono::duration<double, std::milli>(Clock::now() - start)
        .count();
  };

  RouteReport report;
  report.routing = Routing(cs.size());
  SEGROUTE_SPAN(route_span, "robust.route");

  // Fault injection: route on the surviving channel.
  const SegmentedChannel* substrate = &ch;
  std::optional<FaultyChannel> degraded;
  if (opts.faults) {
    report.faults_applied = true;
    degraded = harness::apply(ch, opts.faults->sample(ch));
    if (!degraded) {
      report.tracks_lost = ch.num_tracks();
      report.failure = FailureKind::kInfeasible;
      report.note = "fault injection removed every track (total outage)";
      report.elapsed_ms = ms_since(t0);
      SEGROUTE_SPAN_TAG(route_span, "outcome", to_string(report.failure));
      return report;
    }
    report.switches_fused = degraded->switches_fused;
    report.tracks_lost = degraded->tracks_lost;
    substrate = &degraded->channel;
  }

  const std::vector<StageSpec> cascade =
      opts.stages.empty() ? default_cascade() : opts.stages;
  // One shared index per call, built on the substrate actually routed —
  // after fault application, so a degraded channel gets its own
  // fingerprint and its own structure tables.
  const ChannelIndex index(*substrate);
  const RouteVerifier verifier(*substrate, cs, &index);

  // Substrate-coordinate routing -> original-track coordinates.
  const auto map_back = [&](const Routing& r) {
    if (!degraded) return r;
    Routing mapped(cs.size());
    for (ConnId i = 0; i < cs.size(); ++i) {
      const TrackId t = r.track_of(i);
      if (t != kNoTrack) mapped.assign(i, degraded->kept_tracks[t]);
    }
    return mapped;
  };

  // Checkpoint fast-path: a verified routing saved earlier for this very
  // substrate answers a feasibility call without running any stage. The
  // restore re-verifies, so a stale or corrupt checkpoint falls through
  // to the cascade instead of being served. When the checkpoint recorded
  // its connection spans and the caller's set differs — an *edit* of the
  // checkpointed workload — a repair pre-stage aligns the two sequences,
  // keeps every common connection on its checkpointed track, best-fit
  // places only the edited middle, and verifies the result (winner
  // "repair") before any cascade stage runs.
  if (opts.checkpoints && !opts.weight) {
    const auto ckpt = opts.checkpoints->find(index.fingerprint());
    const auto spans_match = [&] {
      if (ckpt->conns.size() != static_cast<std::size_t>(cs.size())) {
        return false;
      }
      for (ConnId i = 0; i < cs.size(); ++i) {
        const auto& [l, r] = ckpt->conns[static_cast<std::size_t>(i)];
        if (l != cs[i].left || r != cs[i].right) return false;
      }
      return true;
    };
    if (ckpt && (ckpt->conns.empty() || spans_match())) {
      // Exact (or legacy, span-less) checkpoint: re-verify through
      // restore(), which also drops a stale entry so it cannot be
      // served again.
      VerifyOptions vo;
      vo.max_segments = opts.max_segments;
      if (auto verified = opts.checkpoints->restore(index.fingerprint(),
                                                    *substrate, cs, vo)) {
        report.success = true;
        report.winner = "checkpoint";
        report.routing = map_back(verified->routing);
        report.note =
            "restored checkpoint (saved by " +
            (verified->source.empty() ? std::string("?") : verified->source) +
            ")";
        report.elapsed_ms = ms_since(t0);
        SEGROUTE_COUNT("recover.checkpoint_hits", 1);
        SEGROUTE_SPAN_TAG(route_span, "outcome", "checkpoint");
        return report;
      }
    } else if (ckpt) {
      // Align: longest common prefix and suffix of the span sequences;
      // the middle is what the edit changed.
      const auto& old_spans = ckpt->conns;
      const std::size_t n_old = old_spans.size();
      const std::size_t n_new = static_cast<std::size_t>(cs.size());
      std::size_t prefix = 0;
      while (prefix < n_old && prefix < n_new &&
             old_spans[prefix].first == cs[static_cast<ConnId>(prefix)].left &&
             old_spans[prefix].second ==
                 cs[static_cast<ConnId>(prefix)].right) {
        ++prefix;
      }
      std::size_t suffix = 0;
      while (suffix < n_old - prefix && suffix < n_new - prefix &&
             old_spans[n_old - 1 - suffix].first ==
                 cs[static_cast<ConnId>(n_new - 1 - suffix)].left &&
             old_spans[n_old - 1 - suffix].second ==
                 cs[static_cast<ConnId>(n_new - 1 - suffix)].right) {
        ++suffix;
      }
      // Keep the aligned connections on their checkpointed tracks; place
      // the edited middle best-fit into what remains. Any conflict or
      // unplaceable connection abandons the repair (the cascade runs).
      Occupancy occ(*substrate);
      Routing candidate(cs.size());
      bool ok = ckpt->routing.size() == static_cast<ConnId>(n_old);
      for (std::size_t i = 0; ok && i < prefix; ++i) {
        const auto id = static_cast<ConnId>(i);
        const TrackId t = ckpt->routing.track_of(id);
        ok = t != kNoTrack && occ.place(t, cs[id].left, cs[id].right, id);
        if (ok) candidate.assign(id, t);
      }
      for (std::size_t j = 0; ok && j < suffix; ++j) {
        const auto id = static_cast<ConnId>(n_new - 1 - j);
        const TrackId t =
            ckpt->routing.track_of(static_cast<ConnId>(n_old - 1 - j));
        ok = t != kNoTrack && occ.place(t, cs[id].left, cs[id].right, id);
        if (ok) candidate.assign(id, t);
      }
      for (std::size_t i = prefix; ok && i < n_new - suffix; ++i) {
        const auto id = static_cast<ConnId>(i);
        std::optional<TrackId> best;
        Column best_len = std::numeric_limits<Column>::max();
        for (TrackId t = 0; t < index.num_tracks(); ++t) {
          const auto [a, b] = index.span(t, cs[id].left, cs[id].right);
          if (opts.max_segments > 0 && b - a + 1 > opts.max_segments) continue;
          if (!occ.fits(t, cs[id].left, cs[id].right)) continue;
          const Column len = index.occupied_length(t, cs[id].left, cs[id].right);
          if (len < best_len) {
            best_len = len;
            best = t;
          }
        }
        ok = best.has_value();
        if (ok) {
          occ.place(*best, cs[id].left, cs[id].right, id);
          candidate.assign(id, *best);
        }
      }
      if (ok) {
        VerifyOptions vo;
        vo.max_segments = opts.max_segments;
        if (verifier.check(candidate, vo)) {
          report.success = true;
          report.winner = "repair";
          report.routing = map_back(candidate);
          report.note = "repaired from checkpoint (saved by " +
                        (ckpt->source.empty() ? std::string("?")
                                              : ckpt->source) +
                        "): kept " + std::to_string(prefix + suffix) +
                        ", re-placed " +
                        std::to_string(n_new - prefix - suffix);
          // Save the repaired state so the *edited* workload is the new
          // checkpoint for this substrate.
          std::vector<std::pair<Column, Column>> spans;
          spans.reserve(n_new);
          for (ConnId i = 0; i < cs.size(); ++i) {
            spans.emplace_back(cs[i].left, cs[i].right);
          }
          opts.checkpoints->save(index.fingerprint(), candidate, std::nullopt,
                                 "repair", std::move(spans));
          report.elapsed_ms = ms_since(t0);
          SEGROUTE_COUNT("recover.repair_hits", 1);
          SEGROUTE_SPAN_TAG(route_span, "outcome", "repair");
          return report;
        }
      }
    }
  }

  // Best verified candidate so far (optimizing mode accumulates; in
  // feasibility mode the first one ends the serial cascade or the race).
  // Names point into the registry (static strings, usable as span tags).
  bool have_candidate = false;
  Routing best_routing;
  double best_weight = std::numeric_limits<double>::infinity();
  const char* best_name = "?";

  bool proven_infeasible = false;
  const char* proven_name = "?";
  std::string proven_note;

  // One cascade pass with every budget scaled by `factor`; appends its
  // stage reports (tagged with `round`) and returns true when any stage
  // died of budget exhaustion (the ladder's retry signal).
  const auto run_pass = [&](int round, double factor) -> bool {
    const auto pass_t0 = Clock::now();
    bool pass_budget_exhausted = false;
    std::optional<Clock::time_point> overall_deadline;
    std::optional<std::chrono::milliseconds> pass_deadline;
    if (opts.deadline) {
      pass_deadline = scale_ms(*opts.deadline, factor);
      overall_deadline = pass_t0 + *pass_deadline;
    }

    if (opts.race && cascade.size() > 1) {
      // Racing mode: every stage runs concurrently with the full deadline;
      // the race flag doubles as the losers' cooperative-cancel signal.
      // Seeded from the external flag so a request that arrived before the
      // race even starts is honored without waiting on the watcher's poll.
      std::atomic<bool> race_stop{
          opts.cancel && opts.cancel->load(std::memory_order_relaxed)};
      std::atomic<bool> all_done{false};
      std::mutex mu;  // guards the best-candidate state above
      std::vector<StageReport> srs(cascade.size());

      // Chain an external cancellation request into the race flag.
      std::thread watcher;
      if (opts.cancel) {
        watcher = std::thread([&] {
          while (!all_done.load(std::memory_order_relaxed)) {
            if (opts.cancel->load(std::memory_order_relaxed)) {
              race_stop.store(true, std::memory_order_relaxed);
              return;
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          }
        });
      }

      const auto race_one = [&](std::size_t k) {
        const StageSpec& spec = cascade[k];
        const RouterEntry* entry = alg::find_router(spec.router);
        // Named by the router (static registry string) so the race lanes
        // read directly in a trace viewer; re-tagged with the outcome
        // below.
        const char* rname = entry ? entry->name : "unknown-router";
        SEGROUTE_SPAN(stage_span, rname, "router", rname);
        bool won = false;
        StageReport sr;
        sr.router = spec.router;
        sr.attempted = true;
        sr.round = round;
        Budget b = scale_budget(spec.budget, factor);
        b.cancel = &race_stop;
        if (pass_deadline) {
          b.deadline = b.deadline ? std::min(*b.deadline, *pass_deadline)
                                  : *pass_deadline;
        }
        const auto stage_t0 = Clock::now();
        RouteResult r;
        if (entry) {
          r = run_stage(*entry, *substrate, cs, opts, b, index);
        } else {
          r.fail(FailureKind::kInvalidInput,
                 "unknown router \"" + spec.router + "\"");
        }
        sr.elapsed_ms = ms_since(stage_t0);
        sr.success = r.success;
        sr.failure = r.failure;
        sr.note = r.note;

        if (r.success) {
          VerifyOptions vo;
          vo.max_segments = opts.max_segments;
          if (stage_reports_weight(*entry, opts)) {
            vo.weight = opts.weight;  // expectation = r.weight (checked)
          }
          const VerifyResult v = verifier.check(r, vo);
          if (!v) {
            sr.success = false;
            sr.failure = FailureKind::kVerificationFailed;
            sr.note = std::string(to_string(v.error)) + ": " + v.detail;
          } else {
            sr.verified = true;
            double w = r.weight;
            if (opts.weight && !stage_reports_weight(*entry, opts)) {
              w = total_weight(*substrate, cs, r.routing, *opts.weight);
            }
            sr.weight = w;
            std::lock_guard<std::mutex> lock(mu);
            if (!opts.weight) {
              // Feasibility race: first verified success wins.
              if (!have_candidate) {
                best_routing = r.routing;
                best_name = entry->name;
                have_candidate = true;
                won = true;
                race_stop.store(true, std::memory_order_relaxed);
              }
            } else {
              if (!have_candidate || w < best_weight) {
                best_routing = r.routing;
                best_weight = w;
                best_name = entry->name;
                have_candidate = true;
                won = true;
              }
              if (exact_optimal(*entry, opts, r)) {
                race_stop.store(true, std::memory_order_relaxed);
              }
            }
          }
        } else if (entry && proves_infeasible(*entry, opts, r)) {
          std::lock_guard<std::mutex> lock(mu);
          if (!proven_infeasible) {
            proven_infeasible = true;
            proven_name = entry->name;
            proven_note = sr.note;
            won = true;  // the race ends on this stage's proof
          }
          race_stop.store(true, std::memory_order_relaxed);
        }
        SEGROUTE_SPAN_TAG(stage_span, "outcome",
                          sr.success ? "success" : to_string(sr.failure));
        // Winner/loser annotation while the stage span is still open, so
        // the instant nests under it in the trace. In optimizing mode
        // "winner" means "took (or kept) the lead when it finished".
        SEGROUTE_INSTANT(won ? "robust.race.winner" : "robust.race.loser",
                         "router", rname);
        srs[k] = std::move(sr);  // distinct slot per stage, no lock needed
      };

      if (pass_deadline) {
        SEGROUTE_GAUGE_SET(
            "robust.budget_remaining_ms",
            (std::chrono::duration<double, std::milli>(*pass_deadline)
                 .count()));
      }
      util::ThreadPool pool(static_cast<int>(cascade.size()));
      pool.parallel_for(static_cast<std::int64_t>(cascade.size()),
                        [&](std::int64_t k) {
                          race_one(static_cast<std::size_t>(k));
                        });
      all_done.store(true, std::memory_order_relaxed);
      if (watcher.joinable()) watcher.join();
      for (auto& sr : srs) {
        if (sr.failure == FailureKind::kBudgetExhausted) {
          pass_budget_exhausted = true;
        }
        report.stages.push_back(std::move(sr));
      }
      return pass_budget_exhausted;
    }

    for (std::size_t k = 0; k < cascade.size(); ++k) {
      const StageSpec& spec = cascade[k];
      const RouterEntry* entry = alg::find_router(spec.router);
      const char* rname = entry ? entry->name : "unknown-router";
      SEGROUTE_SPAN(stage_span, rname, "router", rname);
      StageReport sr;
      sr.router = spec.router;
      sr.round = round;

      // This stage's slice: remaining deadline split over remaining
      // stages (later stages inherit unspent time), meeting any per-stage
      // budget.
      Budget b = scale_budget(spec.budget, factor);
      if (!b.cancel) b.cancel = opts.cancel;
      if (overall_deadline) {
        const auto remaining =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                *overall_deadline - Clock::now());
        // Stage-boundary sample of the time budget still unspent.
        SEGROUTE_GAUGE_SET("robust.budget_remaining_ms",
                           std::max<std::chrono::milliseconds::rep>(
                               0, remaining.count()));
        if (remaining.count() <= 0) {
          sr.failure = FailureKind::kBudgetExhausted;
          sr.note = "overall deadline exhausted before stage started";
          SEGROUTE_SPAN_TAG(stage_span, "outcome", to_string(sr.failure));
          pass_budget_exhausted = true;
          report.stages.push_back(std::move(sr));
          continue;
        }
        const auto slice = std::max<std::chrono::milliseconds::rep>(
            1, remaining.count() / static_cast<long long>(cascade.size() - k));
        const std::chrono::milliseconds slice_ms(slice);
        b.deadline = b.deadline ? std::min(*b.deadline, slice_ms) : slice_ms;
      }

      sr.attempted = true;
      const auto stage_t0 = Clock::now();
      RouteResult r;
      if (entry) {
        r = run_stage(*entry, *substrate, cs, opts, b, index);
      } else {
        r.fail(FailureKind::kInvalidInput,
               "unknown router \"" + spec.router + "\"");
      }
      sr.elapsed_ms = ms_since(stage_t0);
      sr.success = r.success;
      sr.failure = r.failure;
      sr.note = r.note;
      if (sr.failure == FailureKind::kBudgetExhausted) {
        pass_budget_exhausted = true;
      }

      if (r.success) {
        VerifyOptions vo;
        vo.max_segments = opts.max_segments;
        if (stage_reports_weight(*entry, opts)) {
          vo.weight = opts.weight;  // expectation = r.weight (checked)
        }
        const VerifyResult v = verifier.check(r, vo);
        if (!v) {
          sr.success = false;
          sr.failure = FailureKind::kVerificationFailed;
          sr.note = std::string(to_string(v.error)) + ": " + v.detail;
        } else {
          sr.verified = true;
          double w = r.weight;
          if (opts.weight && !stage_reports_weight(*entry, opts)) {
            w = total_weight(*substrate, cs, r.routing, *opts.weight);
          }
          sr.weight = w;
          SEGROUTE_SPAN_TAG(stage_span, "outcome", "success");
          if (!opts.weight) {
            // Feasibility mode: first verified routing wins.
            best_routing = r.routing;
            best_name = entry->name;
            have_candidate = true;
            report.stages.push_back(std::move(sr));
            break;
          }
          if (!have_candidate || w < best_weight) {
            best_routing = r.routing;
            best_weight = w;
            best_name = entry->name;
            have_candidate = true;
          }
          const bool optimal = exact_optimal(*entry, opts, r);
          report.stages.push_back(std::move(sr));
          if (optimal) break;
          continue;
        }
      } else if (entry && proves_infeasible(*entry, opts, r)) {
        proven_infeasible = true;
        proven_name = entry->name;
        proven_note = sr.note;
        SEGROUTE_SPAN_TAG(stage_span, "outcome", to_string(sr.failure));
        report.stages.push_back(std::move(sr));
        break;
      }
      SEGROUTE_SPAN_TAG(stage_span, "outcome",
                        sr.success ? "success" : to_string(sr.failure));
      report.stages.push_back(std::move(sr));
    }
    return pass_budget_exhausted;
  };

  // The degradation ladder: re-run the whole cascade with escalated
  // budgets while passes keep dying of budget exhaustion. One round (the
  // default) is exactly the pre-ladder cascade.
  const int max_rounds = std::max(1, opts.ladder.max_rounds);
  const double escalation = std::max(1.0, opts.ladder.escalation);
  int rounds_run = 0;
  for (int round = 0; round < max_rounds; ++round) {
    if (round > 0) {
      // Capped exponential backoff before each retry.
      auto pause = opts.ladder.backoff;
      for (int d = 1; d < round; ++d) {
        pause = std::min(pause * 2, opts.ladder.max_backoff);
      }
      pause = std::min(pause, opts.ladder.max_backoff);
      if (pause.count() > 0) std::this_thread::sleep_for(pause);
      SEGROUTE_COUNT("robust.ladder_retries", 1);
      SEGROUTE_INSTANT("robust.ladder_retry", "round", round);
    }
    const bool pass_budget_exhausted =
        run_pass(round, std::pow(escalation, round));
    ++rounds_run;
    if (have_candidate || proven_infeasible) break;
    if (opts.cancel && opts.cancel->load(std::memory_order_relaxed)) break;
    // Retrying only helps when a stage actually ran out of budget; pure
    // kInfeasible/kInvalidInput passes would just repeat themselves.
    if (!pass_budget_exhausted) break;
  }
  report.rounds = rounds_run;

  // Partial fallback: no stage completed (possibly *provably* so) — route
  // what we can and enumerate the rest, rather than return nothing.
  if (!have_candidate && opts.allow_partial) {
    SEGROUTE_SPAN(partial_span, "robust.partial");
    const auto partial_t0 = Clock::now();
    StageReport sr;
    sr.router = "partial";
    sr.attempted = true;
    sr.round = rounds_run > 0 ? rounds_run - 1 : 0;
    alg::PartialOptions po;
    po.max_segments = opts.max_segments;
    if (opts.cancel) po.budget.cancel = opts.cancel;
    RouteContext pctx;
    pctx.index = &index;
    const RouteResult pr = alg::partial_route(*substrate, cs, po, pctx);
    sr.elapsed_ms = ms_since(partial_t0);
    sr.success = pr.success;
    sr.failure = pr.failure;
    sr.note = pr.note;

    VerifyOptions vo;
    vo.max_segments = opts.max_segments;
    vo.require_complete = false;
    const VerifyResult v = verifier.check(pr.routing, vo);
    if (!v) {
      sr.success = false;
      sr.failure = FailureKind::kVerificationFailed;
      sr.note = std::string(to_string(v.error)) + ": " + v.detail;
    } else if (pr.success) {
      // The greedy rung routed everything the cascade could not.
      sr.verified = true;
      best_routing = pr.routing;
      best_name = "partial";
      have_candidate = true;
    } else {
      sr.verified = true;  // the subset is independently verified
      report.partial = true;
      report.unrouted = pr.unrouted;
      report.routing = map_back(pr.routing);
      SEGROUTE_COUNT("robust.partial_routes", 1);
    }
    SEGROUTE_SPAN_TAG(partial_span, "outcome",
                      sr.verified ? "verified" : to_string(sr.failure));
    report.stages.push_back(std::move(sr));
  }

  if (have_candidate) {
    report.success = true;
    report.winner = best_name;
    if (opts.weight) report.weight = best_weight;
    // Save under the *substrate* fingerprint, in substrate coordinates —
    // exactly what a later call on the same (possibly degraded) channel
    // needs back.
    if (opts.checkpoints) {
      std::vector<std::pair<Column, Column>> spans;
      spans.reserve(static_cast<std::size_t>(cs.size()));
      for (ConnId i = 0; i < cs.size(); ++i) {
        spans.emplace_back(cs[i].left, cs[i].right);
      }
      opts.checkpoints->save(
          index.fingerprint(), best_routing,
          opts.weight ? std::optional<double>(best_weight) : std::nullopt,
          best_name, std::move(spans));
    }
    report.routing = map_back(best_routing);
    report.note = std::string("routed by stage ") + best_name;
    SEGROUTE_INSTANT("robust.winner", "router", best_name);
  } else if (proven_infeasible) {
    report.failure = FailureKind::kInfeasible;
    report.note = "proven infeasible by stage " + std::string(proven_name) +
                  ": " + proven_note;
  } else {
    // Aggregate: all-invalid-input > budget exhaustion > verification
    // failure > infeasible-looking give-ups.
    bool any = false, all_invalid = true, any_budget = false,
         any_verify = false;
    for (const StageReport& sr : report.stages) {
      any = true;
      if (sr.failure != FailureKind::kInvalidInput) all_invalid = false;
      if (sr.failure == FailureKind::kBudgetExhausted) any_budget = true;
      if (sr.failure == FailureKind::kVerificationFailed) any_verify = true;
    }
    if (any && all_invalid) {
      report.failure = FailureKind::kInvalidInput;
      report.note = "every stage rejected the input";
    } else if (any_budget) {
      report.failure = FailureKind::kBudgetExhausted;
      report.note = "no routing found within budget";
    } else if (any_verify) {
      report.failure = FailureKind::kVerificationFailed;
      report.note = "a routing was produced but failed verification";
    } else {
      report.failure = FailureKind::kInfeasible;
      report.note = any ? "no stage found a routing (not a proof unless an "
                          "exact stage ran to completion)"
                        : "empty cascade";
    }
  }
  if (report.partial) {
    report.note += "; partial fallback routed " +
                   std::to_string(report.routing.num_assigned()) + " of " +
                   std::to_string(cs.size()) + " connections";
  }
  SEGROUTE_SPAN_TAG(route_span, "outcome",
                    report.success ? "success" : to_string(report.failure));
  report.elapsed_ms = ms_since(t0);
  return report;
}

}  // namespace segroute::harness
