#include "harness/fault.h"

#include <algorithm>
#include <random>
#include <set>
#include <tuple>
#include <utility>

namespace segroute::harness {

std::vector<Fault> FaultPlan::sample(const SegmentedChannel& ch) const {
  std::vector<Fault> faults;
  if (switch_fail_prob <= 0.0 && segment_fail_prob <= 0.0) return faults;
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  for (TrackId t = 0; t < ch.num_tracks(); ++t) {
    const Track& tr = ch.track(t);
    for (Column c : tr.switch_positions()) {
      if (u(rng) < switch_fail_prob) {
        faults.push_back({Fault::Kind::kSwitchStuckClosed, t, c});
      }
    }
    for (SegId s = 0; s < tr.num_segments(); ++s) {
      if (u(rng) < segment_fail_prob) {
        faults.push_back({Fault::Kind::kSegmentDead, t, tr.segment(s).left});
      }
    }
  }
  return faults;
}

std::vector<Fault> canonicalize(const SegmentedChannel& ch,
                                const std::vector<Fault>& faults) {
  const TrackId T = ch.num_tracks();
  const Column W = ch.width();

  // Pass 1: which tracks are withdrawn by a (valid) dead-segment fault.
  std::vector<bool> dead(static_cast<std::size_t>(T), false);
  for (const Fault& f : faults) {
    if (f.track < 0 || f.track >= T) continue;
    if (f.kind != Fault::Kind::kSegmentDead) continue;
    if (f.column < 1 || f.column > W) continue;
    dead[static_cast<std::size_t>(f.track)] = true;
  }

  // Pass 2: validate, normalise, dedupe.
  std::set<std::tuple<TrackId, int, Column>> seen;
  std::vector<Fault> out;
  for (const Fault& f : faults) {
    if (f.track < 0 || f.track >= T) continue;
    const Track& tr = ch.track(f.track);
    Fault g = f;
    if (g.kind == Fault::Kind::kSegmentDead) {
      if (g.column < 1 || g.column > W) continue;
      g.column = tr.segment(tr.segment_at(g.column)).left;
    } else {
      if (dead[static_cast<std::size_t>(g.track)]) continue;  // moot
      const auto switches = tr.switch_positions();
      if (!std::binary_search(switches.begin(), switches.end(), g.column)) {
        continue;  // no switch here — nothing to fuse
      }
    }
    if (seen.insert({g.track, static_cast<int>(g.kind), g.column}).second) {
      out.push_back(g);
    }
  }
  std::sort(out.begin(), out.end(), [](const Fault& a, const Fault& b) {
    return std::tie(a.track, a.kind, a.column) <
           std::tie(b.track, b.kind, b.column);
  });
  return out;
}

std::optional<FaultyChannel> apply(const SegmentedChannel& ch,
                                   const std::vector<Fault>& faults) {
  const TrackId T = ch.num_tracks();
  const std::vector<Fault> canon = canonicalize(ch, faults);

  std::vector<bool> dead(static_cast<std::size_t>(T), false);
  std::vector<std::set<Column>> fused(static_cast<std::size_t>(T));
  for (const Fault& f : canon) {
    if (f.kind == Fault::Kind::kSegmentDead) {
      dead[static_cast<std::size_t>(f.track)] = true;
    } else {
      fused[static_cast<std::size_t>(f.track)].insert(f.column);
    }
  }

  FaultyChannel out{ch, {}, 0, 0};
  std::vector<Track> tracks;
  for (TrackId t = 0; t < T; ++t) {
    if (dead[static_cast<std::size_t>(t)]) {
      ++out.tracks_lost;
      continue;
    }
    std::vector<Column> switches;
    for (Column c : ch.track(t).switch_positions()) {
      if (fused[static_cast<std::size_t>(t)].count(c)) {
        ++out.switches_fused;
      } else {
        switches.push_back(c);
      }
    }
    tracks.emplace_back(ch.width(), std::move(switches));
    out.kept_tracks.push_back(t);
  }
  if (tracks.empty()) return std::nullopt;
  out.channel = SegmentedChannel(std::move(tracks));
  return out;
}

}  // namespace segroute::harness
