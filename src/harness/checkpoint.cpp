#include "harness/checkpoint.h"

#include <algorithm>
#include <utility>

#include "obs/instrument.h"

namespace segroute::harness {

CheckpointStore::CheckpointStore(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void CheckpointStore::save(std::uint64_t fingerprint, const Routing& routing,
                           std::optional<double> weight, std::string source,
                           std::vector<std::pair<Column, Column>> conns) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_fp_.find(fingerprint);
  if (it != by_fp_.end()) {
    RoutingCheckpoint& old = *it->second;
    // Keep the better state: lower weight when both carry one, the
    // newcomer otherwise (most recent good routing).
    if (old.has_weight && weight && *weight >= old.weight) {
      ++stats_.kept;
      entries_.splice(entries_.begin(), entries_, it->second);  // touch
      return;
    }
    old.routing = routing;
    old.weight = weight.value_or(0.0);
    old.has_weight = weight.has_value();
    old.source = std::move(source);
    old.conns = std::move(conns);
    old.sequence = next_sequence_++;
    ++stats_.saves;
    ++stats_.supersedes;
    entries_.splice(entries_.begin(), entries_, it->second);
    SEGROUTE_COUNT("checkpoint.saves", 1);
    return;
  }
  RoutingCheckpoint ckpt;
  ckpt.fingerprint = fingerprint;
  ckpt.routing = routing;
  ckpt.weight = weight.value_or(0.0);
  ckpt.has_weight = weight.has_value();
  ckpt.source = std::move(source);
  ckpt.conns = std::move(conns);
  ckpt.sequence = next_sequence_++;
  entries_.push_front(std::move(ckpt));
  by_fp_.emplace(fingerprint, entries_.begin());
  ++stats_.saves;
  SEGROUTE_COUNT("checkpoint.saves", 1);
  while (entries_.size() > capacity_) {
    by_fp_.erase(entries_.back().fingerprint);
    entries_.pop_back();
    ++stats_.evictions;
    SEGROUTE_COUNT("checkpoint.evictions", 1);
  }
}

std::optional<RoutingCheckpoint> CheckpointStore::find(
    std::uint64_t fingerprint) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_fp_.find(fingerprint);
  if (it == by_fp_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  entries_.splice(entries_.begin(), entries_, it->second);  // touch
  return *it->second;
}

std::optional<RoutingCheckpoint> CheckpointStore::restore(
    std::uint64_t fingerprint, const SegmentedChannel& ch,
    const ConnectionSet& cs, const VerifyOptions& vo) const {
  std::optional<RoutingCheckpoint> ckpt = find(fingerprint);
  if (!ckpt) return std::nullopt;
  const RouteVerifier verifier(ch, cs);
  const VerifyResult v = verifier.check(ckpt->routing, vo);
  if (!v) {
    // Stale or corrupt — drop it so it cannot be handed out again.
    std::lock_guard<std::mutex> lock(mu_);
    auto it = by_fp_.find(fingerprint);
    if (it != by_fp_.end()) {
      entries_.erase(it->second);
      by_fp_.erase(it);
    }
    ++stats_.rejected;
    SEGROUTE_COUNT("checkpoint.rejected", 1);
    return std::nullopt;
  }
  SEGROUTE_COUNT("checkpoint.restores", 1);
  return ckpt;
}

void CheckpointStore::invalidate(std::uint64_t fingerprint) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_fp_.find(fingerprint);
  if (it == by_fp_.end()) return;
  entries_.erase(it->second);
  by_fp_.erase(it);
}

void CheckpointStore::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  by_fp_.clear();
}

CheckpointStats CheckpointStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  CheckpointStats s = stats_;
  s.size = entries_.size();
  s.capacity = capacity_;
  return s;
}

bool restore_occupancy(const RoutingCheckpoint& ckpt,
                       const SegmentedChannel& ch, const ConnectionSet& cs,
                       Occupancy& occ) {
  occ.rebind(ch);
  const ConnId n = std::min(ckpt.routing.size(), cs.size());
  for (ConnId i = 0; i < n; ++i) {
    if (!ckpt.routing.is_assigned(i)) continue;
    const Connection& c = cs[i];
    if (!occ.place(ckpt.routing.track_of(i), c.left, c.right, i)) {
      return false;
    }
  }
  return ckpt.routing.size() == cs.size();
}

}  // namespace segroute::harness
