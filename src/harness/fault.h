// Fault injection: hardware-defect models for segmented channels.
//
// FPGA routing fabrics ship with manufacturing defects, and a router that
// can only cope with the pristine channel is brittle. This module samples
// defect sets and materialises the *surviving* channel so any router can
// be re-run against it unchanged:
//
//  - a switch stuck CLOSED permanently fuses its two neighbouring
//    segments: the track stays usable but loses granularity (the merged
//    segment is occupied as a whole);
//  - a dead segment (open defect, e.g. a broken wire) is modelled
//    conservatively by withdrawing the whole track — the remaining
//    segments of a broken track have asymmetric reach that the channel
//    model (contiguous partition of 1..N) cannot express, and a router
//    that silently used them could cross the break.
//
// apply() returns the degraded channel plus the index mapping back to the
// original tracks, so routings found on the faulty channel can be
// reported in original-track coordinates.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/channel.h"
#include "core/types.h"

namespace segroute::harness {

/// One injected hardware fault.
struct Fault {
  enum class Kind {
    kSwitchStuckClosed,  // switch after `column` on `track` fused shut
    kSegmentDead,        // segment containing `column` on `track` is dead
  };
  Kind kind;
  TrackId track = 0;
  Column column = 0;
};

/// The channel that survives a fault set.
struct FaultyChannel {
  SegmentedChannel channel;

  /// kept_tracks[i] = original track id of the degraded channel's track i.
  std::vector<TrackId> kept_tracks;

  int switches_fused = 0;  // switches removed by stuck-closed faults
  int tracks_lost = 0;     // tracks withdrawn by dead-segment faults
};

/// A reproducible fault model: each switch fails closed independently
/// with `switch_fail_prob`, each segment dies independently with
/// `segment_fail_prob`.
struct FaultPlan {
  double switch_fail_prob = 0.0;
  double segment_fail_prob = 0.0;
  std::uint64_t seed = 1;

  /// Samples a fault set for `ch` from this plan (deterministic in seed).
  [[nodiscard]] std::vector<Fault> sample(const SegmentedChannel& ch) const;
};

/// Validates and dedupes a raw fault list against `ch`, producing the
/// canonical set of *distinct physical defects* it describes:
///  - faults naming an out-of-range track are dropped;
///  - stuck-closed faults whose column is not an actual switch position
///    of the track are dropped (there is nothing to fuse);
///  - dead-segment faults are normalised to the left end of the
///    containing segment, and dropped when the column is outside
///    1..width (previously such a fault silently killed the track);
///  - exact duplicates (after normalisation) are dropped, as are
///    stuck-closed faults on a track already withdrawn by a dead
///    segment — a fused switch on a dead wire is not a distinct defect;
///  - the result is sorted by (track, kind, column), so equal defect
///    sets canonicalise to equal lists.
/// apply() canonicalises internally, so its `switches_fused` /
/// `tracks_lost` counters cannot be inflated by duplicate or overlapping
/// entries in the input.
[[nodiscard]] std::vector<Fault> canonicalize(const SegmentedChannel& ch,
                                              const std::vector<Fault>& faults);

/// Materialises the channel surviving `faults` (canonicalised first; see
/// above). Returns std::nullopt when no track survives (total outage).
[[nodiscard]] std::optional<FaultyChannel> apply(
    const SegmentedChannel& ch, const std::vector<Fault>& faults);

}  // namespace segroute::harness
