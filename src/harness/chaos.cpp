#include "harness/chaos.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <random>
#include <utility>

#include "alg/delta.h"
#include "alg/online.h"
#include "alg/partial.h"
#include "alg/result.h"
#include "harness/fault.h"
#include "harness/verify.h"
#include "obs/instrument.h"

namespace segroute::harness {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

/// Degraded-coordinate routing -> original-track coordinates.
Routing map_back(const Routing& r, const FaultyChannel& degraded,
                 ConnId num_conns) {
  Routing mapped(num_conns);
  for (ConnId i = 0; i < num_conns; ++i) {
    const TrackId t = r.track_of(i);
    if (t != kNoTrack) mapped.assign(i, degraded.kept_tracks[t]);
  }
  return mapped;
}

}  // namespace

ChaosReport run_chaos(const SegmentedChannel& ch, const ConnectionSet& cs,
                      const ChaosOptions& opts) {
  SEGROUTE_SPAN(run_span, "chaos.run", "seed", opts.seed);
  ChaosReport report;
  report.cycles = opts.cycles;

  engine::BatchOptions bo;
  bo.threads = opts.threads;
  bo.use_cache = true;
  bo.cache_capacity = opts.cache_capacity;
  engine::BatchRouter engine(ch, bo);
  const std::uint64_t base_fp = engine.index().fingerprint();

  engine::EngineRouteOptions ro;
  ro.router = opts.router;
  ro.max_segments = opts.max_segments;

  VerifyOptions vo;
  vo.max_segments = opts.max_segments;

  // Baseline: the known-good state every rollback returns to.
  const alg::RouteResult base = engine.route(cs, ro);
  const RouteVerifier base_verifier(ch, cs);
  if (!base.success) {
    report.note = "baseline unroutable: " + base.note;
    report.cache = engine.cache_stats();
    return report;
  }
  if (!base_verifier.check(base, vo)) {
    ++report.verify_failures;
    report.note = "baseline routing failed verification";
    report.cache = engine.cache_stats();
    return report;
  }

  CheckpointStore ckpts(32);
  ckpts.save(base_fp, base.routing, std::nullopt, "baseline");
  Routing live = base.routing;  // the session's live, original-coordinate
                                // routing — what rollback protects

  // Workload batch: the full set plus shrinking prefixes, so each
  // substrate accumulates several distinct memo entries.
  std::vector<ConnectionSet> batch;
  batch.push_back(cs);
  const auto prefix = [&](ConnId n) {
    ConnectionSet p;
    for (ConnId i = 0; i < n; ++i) p.add(cs[i].left, cs[i].right);
    return p;
  };
  if (cs.size() >= 3) {
    batch.push_back(prefix(cs.size() * 2 / 3));
    batch.push_back(prefix(cs.size() / 3));
  }

  std::mt19937_64 master(opts.seed);
  const int period = std::max(1, opts.escalation_period);

  // Edit stream (edits_per_cycle > 0): a live OnlineRouter session on
  // the base channel, driven by per-cycle RNGs derived from the storm
  // seed — NOT by extra draws from `master`, which would shift every
  // subsequent storm and break the pinned default digests.
  std::unique_ptr<alg::OnlineRouter> session;
  std::vector<ConnId> session_ids;  // live ids, for remove/move targets
  if (opts.edits_per_cycle > 0) {
    session = std::make_unique<alg::OnlineRouter>(
        ch, alg::OnlineRouter::Policy::BestFit, opts.max_segments);
  }

  std::uint64_t digest = kFnvOffset;
  const auto mix = [&](std::uint64_t v) {
    digest ^= v;
    digest *= kFnvPrime;
  };
  const auto mix_cycle = [&](const ChaosCycle& c) {
    mix(c.storm_seed);
    mix(c.fingerprint);
    mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(c.faults)) |
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(
             c.switches_fused))
         << 32));
    mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(c.tracks_lost)) |
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(c.routed))
         << 32));
    mix((c.outage ? 1u : 0u) | (c.rerouted ? 2u : 0u) |
        (c.partial ? 4u : 0u) | (c.rolled_back ? 8u : 0u));
  };

  // Rolls the live routing back to the base checkpoint (re-verified).
  const auto rollback = [&](ChaosCycle& rec) {
    if (const auto c = ckpts.restore(base_fp, ch, cs, vo)) {
      live = c->routing;
      rec.rolled_back = true;
      ++report.rollbacks;
      SEGROUTE_COUNT("recover.rollbacks", 1);
      SEGROUTE_INSTANT("recover.rollback", "to", "baseline");
    } else {
      // The base checkpoint must always restore; losing it is a harness
      // invariant violation, surfaced the same way as a recover mismatch.
      ++report.restore_mismatches;
    }
  };

  for (int i = 0; i < opts.cycles; ++i) {
    SEGROUTE_SPAN(cycle_span, "chaos.cycle", "cycle", i);
    ChaosCycle rec;
    rec.storm_seed = master();

    // Severity ramps over the period, then resets: every period ends in
    // a storm heavy enough to force rollbacks.
    const double ramp = static_cast<double>((i % period) + 1) / period;
    FaultPlan plan;
    plan.switch_fail_prob = opts.max_switch_fail * ramp;
    plan.segment_fail_prob = opts.max_segment_fail * ramp;
    plan.seed = rec.storm_seed;
    const std::vector<Fault> faults = canonicalize(ch, plan.sample(ch));
    rec.faults = static_cast<int>(faults.size());
    if (!faults.empty()) ++report.storms;
    report.faults_applied += faults.size();
    SEGROUTE_COUNT("chaos.faults_applied", faults.size());

    const std::optional<FaultyChannel> degraded = apply(ch, faults);
    if (!degraded) {
      // Total outage: nothing to route on — roll back and move on.
      rec.outage = true;
      rec.fingerprint = base_fp;
      rec.tracks_lost = ch.num_tracks();
      ++report.outages;
      rollback(rec);
      mix_cycle(rec);
      report.history.push_back(rec);
      continue;
    }
    rec.switches_fused = degraded->switches_fused;
    rec.tracks_lost = degraded->tracks_lost;

    // Degrade + reroute: point the session at the surviving substrate.
    engine.rebind(degraded->channel);
    const std::uint64_t deg_fp = engine.index().fingerprint();
    rec.fingerprint = deg_fp;
    const std::vector<alg::RouteResult> results = engine.route_many(batch, ro);
    const alg::RouteResult& primary = results.front();
    const RouteVerifier deg_verifier(degraded->channel, cs);

    if (primary.success && deg_verifier.check(primary, vo)) {
      rec.rerouted = true;
      rec.routed = static_cast<int>(cs.size());
      ++report.reroutes;
      live = map_back(primary.routing, *degraded, cs.size());
      ckpts.save(deg_fp, primary.routing, std::nullopt, "reroute");
    } else {
      if (primary.success) ++report.verify_failures;  // corrupt reroute
      // Failed repair: salvage what we can, then roll back the live
      // state so a half-applied repair never survives.
      if (opts.allow_partial) {
        SEGROUTE_SPAN(partial_span, "chaos.partial");
        alg::PartialOptions po;
        po.max_segments = opts.max_segments;
        const alg::RouteResult pr =
            alg::partial_route(degraded->channel, cs, po);
        VerifyOptions pvo = vo;
        pvo.require_complete = false;
        if (deg_verifier.check(pr.routing, pvo)) {
          rec.partial = true;
          rec.routed = static_cast<int>(pr.routing.num_assigned());
          ++report.partials;
        } else {
          ++report.verify_failures;
        }
      }
      rollback(rec);
    }

    // Recover: back on the base channel the workload must route to
    // exactly the checkpointed state (the memo entries for the base
    // fingerprint survived the storm, so this is normally a cache hit).
    engine.rebind(ch);
    const alg::RouteResult recovered = engine.route(cs, ro);
    const std::optional<RoutingCheckpoint> base_ckpt = ckpts.find(base_fp);
    if (!recovered.success || !base_ckpt ||
        !(recovered.routing == base_ckpt->routing)) {
      ++report.restore_mismatches;
    }
    // Fingerprint-delta-aware invalidation: evict exactly the degraded
    // substrate's memo entries; the base entries stay hot.
    if (deg_fp != base_fp) engine.invalidate(deg_fp);

    // Edit phase: interleave seeded ChannelEdits with the fault storms.
    // The session lives on the base channel across the whole soak, so
    // every cycle exercises the delta API against a state the previous
    // storms' edits produced. Digest folding is gated on the option so
    // edits_per_cycle == 0 reproduces the legacy digests bit for bit.
    if (session) {
      SEGROUTE_SPAN(edit_span, "chaos.edits", "cycle", i);
      std::mt19937_64 erng(rec.storm_seed ^ 0x9e3779b97f4a7c15ull);
      const Column width = ch.width();
      // Bound session growth so late cycles still mix add/remove/move
      // instead of drowning in kInfeasible adds on a saturated channel.
      const std::size_t cap =
          static_cast<std::size_t>(ch.num_tracks()) * 3 + 4;
      const auto rand_span = [&]() -> std::pair<Column, Column> {
        const Column left =
            1 + static_cast<Column>(erng() %
                                    static_cast<std::uint64_t>(width));
        const Column len = 1 + static_cast<Column>(
            erng() % static_cast<std::uint64_t>(
                         std::max<Column>(1, width / 4)));
        return {left, std::min<Column>(width, left + len - 1)};
      };
      for (int k = 0; k < opts.edits_per_cycle; ++k) {
        std::uint64_t pick = erng() % 3;
        if (session_ids.empty()) pick = 0;
        if (pick == 0 && session_ids.size() >= cap) pick = 1;
        alg::ChannelEdit edit;
        if (pick == 0) {
          const auto [l, r] = rand_span();
          edit = alg::ChannelEdit::add(l, r);
        } else {
          const ConnId target = session_ids[erng() % session_ids.size()];
          if (pick == 1) {
            edit = alg::ChannelEdit::remove(target);
          } else {
            const auto [l, r] = rand_span();
            edit = alg::ChannelEdit::move(target, l, r);
          }
        }
        const alg::RepairOutcome out = session->apply(edit);
        ++rec.edits;
        ++report.edits;
        if (!out.success) {
          ++report.edits_rejected;  // e.g. kInfeasible add on a full span
        } else if (out.path == alg::RepairOutcome::Path::kRepair) {
          ++rec.edit_repairs;
          ++report.edit_repairs;
        } else {
          ++report.edit_dp_fallbacks;
        }
        if (out.success && edit.kind == alg::ChannelEdit::Kind::kAdd) {
          session_ids.push_back(out.id);
        } else if (out.success &&
                   edit.kind == alg::ChannelEdit::Kind::kRemove) {
          session_ids.erase(std::find(session_ids.begin(),
                                      session_ids.end(), edit.id));
        }
        mix((out.success ? 1ull : 0ull) |
            (static_cast<std::uint64_t>(out.path) << 1) |
            (static_cast<std::uint64_t>(
                 static_cast<std::uint32_t>(out.id)) << 8));
        mix(static_cast<std::uint64_t>(
                static_cast<std::uint32_t>(out.affected_lo)) |
            (static_cast<std::uint64_t>(
                 static_cast<std::uint32_t>(out.affected_hi)) << 32));
      }
      // Bit-identity gate: after every cycle's edits the session must
      // equal canonical(S) computed from scratch — the same contract
      // the randomized edit-script suite enforces, here under churn.
      const auto [ecs, er] = session->snapshot();
      const alg::CanonicalResult ref =
          alg::from_scratch(ch, ecs, /*policy_best_fit=*/true,
                            opts.max_segments);
      if (!ref.result.success || !(ref.result.routing == er)) {
        ++report.edit_mismatches;
      }
      mix(static_cast<std::uint64_t>(ecs.size()));
      for (ConnId c = 0; c < ecs.size(); ++c) {
        mix(static_cast<std::uint64_t>(
            static_cast<std::int64_t>(er.track_of(c)) + 1));
      }
    }

    mix_cycle(rec);
    report.history.push_back(rec);
  }

  // Fold the final live routing into the digest: rollback correctness is
  // part of the bit-identity contract, not just the per-cycle outcomes.
  mix(static_cast<std::uint64_t>(cs.size()));
  for (ConnId i = 0; i < cs.size(); ++i) {
    mix(static_cast<std::uint64_t>(
        static_cast<std::int64_t>(live.track_of(i)) + 1));
  }

  report.digest = digest;
  report.cache = engine.cache_stats();
  report.checkpoints = ckpts.stats();
  report.ok = report.verify_failures == 0 &&
              report.restore_mismatches == 0 && report.edit_mismatches == 0;
  report.note = "cycles=" + std::to_string(opts.cycles) +
                " reroutes=" + std::to_string(report.reroutes) +
                " partials=" + std::to_string(report.partials) +
                " rollbacks=" + std::to_string(report.rollbacks) +
                " outages=" + std::to_string(report.outages);
  if (opts.edits_per_cycle > 0) {
    report.note += " edits=" + std::to_string(report.edits) +
                   " repairs=" + std::to_string(report.edit_repairs) +
                   " dp=" + std::to_string(report.edit_dp_fallbacks) +
                   " rejected=" + std::to_string(report.edits_rejected);
  }
  SEGROUTE_SPAN_TAG(run_span, "outcome", report.ok ? "ok" : "failed");
  return report;
}

}  // namespace segroute::harness
