// robust_route: a hardened portfolio router with graceful degradation.
//
// A single router is a single point of failure: the exact DP can blow its
// budget on hostile segmentations, the LP can stall fractional, a bug in
// any of them can emit a corrupt routing. robust_route runs a configurable
// cascade of routers (default: exact DP, then the greedy/matching
// 1-segment routers, then the LP heuristic, then annealing), gives each
// stage a slice of the overall deadline, and *independently verifies*
// every candidate with RouteVerifier before accepting it. A verified
// answer from a later, weaker stage beats no answer at all — that is the
// graceful-degradation contract.
//
// Semantics:
//  - feasibility mode (no weight): the first verified routing wins and the
//    cascade stops;
//  - optimizing mode (weight set): an exact optimal stage (DP; matching
//    when K = 1) that succeeds ends the cascade; otherwise every stage
//    runs and the best verified weight wins;
//  - a stage that is exact for the posed problem and reports kInfeasible
//    (with its search complete) *proves* infeasibility and ends the
//    cascade;
//  - a stage handed input outside its capability envelope (an unknown
//    router name, a mixed channel for "left_edge", >2 segments/track for
//    "greedy2track") is recorded as kInvalidInput by the registry
//    dispatcher and the cascade continues — no stage throws;
//  - a stage whose routing fails verification is recorded as
//    kVerificationFailed and the cascade continues — a corrupt answer is
//    never returned.
//
// Stages are named routers from alg::registry() ("dp", "greedy1", ...);
// their capability flags — not hard-coded per-router knowledge — decide
// which failures prove infeasibility, which successes end an optimizing
// cascade, and which stages receive the weight function.
//
// Budgets: RobustOptions::deadline bounds the whole call. Each stage gets
// remaining / stages-left of it (a stage finishing early donates its
// slack to later stages), intersected with any per-stage Budget in its
// StageSpec. Overall failure aggregates the per-stage failures: proven
// infeasibility dominates, else all-invalid-input, else budget
// exhaustion, else verification failure, else infeasible.
//
// Fault injection: when RobustOptions::faults is set, the plan is sampled
// and applied first and the cascade routes on the surviving channel; the
// returned routing is mapped back to original track ids and the report
// records what was lost. Verification runs against the degraded channel
// (the substrate that was actually routed).
//
// Degradation ladder (RobustOptions::ladder): when a whole cascade pass
// ends in budget exhaustion — no candidate, no infeasibility proof, not
// cancelled — the pass is retried up to max_rounds times with every
// budget (overall deadline, per-stage deadlines and tick caps) scaled by
// escalation^round, after a capped exponential backoff pause. Tick-only
// budgets keep the ladder fully deterministic.
//
// Partial fallback (RobustOptions::allow_partial): when no stage
// produces a complete routing — even when the instance is *proven*
// infeasible as a whole — a final rung runs alg::partial_route and
// reports the maximal verified subset: RouteReport::partial is set,
// `routing` holds the subset (mapped back through any fault
// degradation), and `unrouted` enumerates every unassigned connection
// with a per-connection FailureKind. `success` stays false, so
// all-or-nothing callers are unaffected.
//
// Checkpoints (RobustOptions::checkpoints): a borrowed CheckpointStore
// turns repeated calls into a recovery protocol. Every verified complete
// routing is saved under the *substrate* fingerprint (post-degradation),
// and a feasibility-mode call first tries to restore a checkpoint for
// its substrate — re-verified before use — skipping the cascade
// entirely on a hit (winner "checkpoint").
#pragma once

#include <chrono>
#include <optional>
#include <string>
#include <vector>

#include "alg/result.h"
#include "core/channel.h"
#include "core/connection.h"
#include "core/weights.h"
#include "harness/budget.h"
#include "harness/checkpoint.h"
#include "harness/fault.h"
#include "harness/verify.h"

namespace segroute::harness {

/// One cascade entry: which router (a name from alg::registry(), e.g.
/// "dp", "greedy1", "match1", "lp", "anneal", "branch_bound"), plus an
/// optional per-stage budget (intersected with the stage's slice of the
/// overall deadline). An unknown name records kInvalidInput for that
/// stage and the cascade continues.
struct StageSpec {
  std::string router;
  Budget budget;
};

/// Retry policy for the degradation ladder: how many times the whole
/// cascade is re-run with escalated budgets when a pass dies of budget
/// exhaustion. The defaults (one round) reproduce the pre-ladder
/// behaviour exactly.
struct LadderSpec {
  /// Total cascade passes (1 = no retries).
  int max_rounds = 1;

  /// Budget multiplier per round: round r runs with every deadline and
  /// tick cap scaled by escalation^r. Values <= 1 retry un-escalated.
  double escalation = 2.0;

  /// Pause before the first retry; doubled each further retry, capped at
  /// max_backoff. Zero (the default) never sleeps — use ticks-only
  /// budgets plus zero backoff for fully deterministic ladders.
  std::chrono::milliseconds backoff{0};
  std::chrono::milliseconds max_backoff{100};
};

struct RobustOptions {
  /// K-segment limit (0 = unlimited). Verification enforces it too.
  int max_segments = 0;

  /// Optimizing mode: minimize this total weight (Problem 3).
  std::optional<WeightFn> weight;

  /// Overall wall-clock deadline for the whole cascade.
  std::optional<std::chrono::milliseconds> deadline;

  /// Cooperative cancellation, checked by every budgeted stage.
  const std::atomic<bool>* cancel = nullptr;

  /// The cascade; empty = the default {"dp", "greedy1", "match1", "lp",
  /// "anneal"}.
  std::vector<StageSpec> stages;

  /// Opt-in racing mode: run every stage concurrently (one thread per
  /// stage), each with the *full* remaining deadline instead of a slice.
  /// In feasibility mode the first verified success wins and the losers
  /// are stopped through their Budget's cooperative-cancel flag; in
  /// optimizing mode all stages run (a verified exact-optimal result
  /// cancels the rest) and the best verified weight wins. Every stage
  /// appears in the report, in cascade order. Which stage wins a
  /// feasibility race is timing-dependent by design; the winner is still
  /// always independently verified.
  bool race = false;

  /// When set, sample and apply hardware faults before routing.
  std::optional<FaultPlan> faults;

  /// Degradation-ladder retry policy (see file comment). The default is
  /// a single round — identical to the pre-ladder cascade.
  LadderSpec ladder;

  /// Run the partial-routing rung when no stage completes: report the
  /// maximal verified subset instead of an all-or-nothing failure.
  bool allow_partial = false;

  /// Borrowed checkpoint store (must outlive the call); enables the
  /// save-on-success / restore-on-repeat recovery protocol. Null = off.
  CheckpointStore* checkpoints = nullptr;
};

/// What happened in one cascade stage.
struct StageReport {
  std::string router;      // the stage's router name, as configured
  bool attempted = false;  // false: skipped (deadline gone before start)
  bool success = false;    // the router reported success
  bool verified = false;   // ... and RouteVerifier accepted its routing
  alg::FailureKind failure = alg::FailureKind::kNone;
  std::string note;        // router note / verifier detail / skip reason
  double weight = 0.0;     // candidate total weight (optimizing mode)
  double elapsed_ms = 0.0;
  int round = 0;           // ladder round this stage ran in (0-based)
};

/// Outcome of the whole cascade.
struct RouteReport {
  bool success = false;
  Routing routing;         // original-track coordinates (after faults)
  double weight = 0.0;     // winner's total weight (optimizing mode)
  std::string winner;      // winning router name; empty unless success
  alg::FailureKind failure = alg::FailureKind::kNone;
  std::string note;
  std::vector<StageReport> stages;  // one entry per cascade stage, in order
  double elapsed_ms = 0.0;

  // Fault-injection summary (faults_applied == opts.faults was set).
  bool faults_applied = false;
  int switches_fused = 0;
  int tracks_lost = 0;

  // Degradation-ladder summary.
  int rounds = 1;  // cascade passes actually run

  // Partial fallback (allow_partial): `partial` means `routing` holds a
  // verified subset (original-track coordinates) and `unrouted` lists
  // every unassigned connection with its per-connection FailureKind.
  // success stays false.
  bool partial = false;
  std::vector<alg::ConnFailure> unrouted;

  explicit operator bool() const { return success; }
};

/// Runs the hardened portfolio cascade. See file comment for semantics.
RouteReport robust_route(const SegmentedChannel& ch, const ConnectionSet& cs,
                         const RobustOptions& opts = {});

}  // namespace segroute::harness
