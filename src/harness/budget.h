// Budget: bounded-resource execution for the expensive routers.
//
// The paper proves segmented channel routing strongly NP-complete
// (Section III), so every exact router here can blow up without warning.
// A Budget makes that explosion a *structured, bounded* outcome instead
// of a hang: it combines a wall-clock deadline, a cap on router-specific
// work units ("ticks": DP nodes, search branches, annealing moves,
// simplex pivots), and a cooperative cancellation flag.
//
// Routers accept a Budget in their options struct and drive a
// BudgetMeter inside their hot loop. tick() is designed to be cheap
// enough for per-node use: the tick cap and the cancellation flag are
// checked every call, the clock only every `check_interval` calls.
// Exhaustion is sticky; the router reports FailureKind::kBudgetExhausted
// (see alg/result.h) with the meter's reason.
//
// This header is dependency-free (chrono + atomic only) so alg/ options
// structs can include it without a cycle back into harness/.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>
#include <string>

namespace segroute::harness {

/// Why a BudgetMeter stopped (kNone = still within budget).
enum class BudgetStop { kNone, kDeadline, kTickLimit, kCancelled };

/// Name of a BudgetStop value, for notes and logs.
const char* to_string(BudgetStop s);

/// Declarative resource bounds for one routing call. Default: unlimited.
struct Budget {
  /// Wall-clock allowance, measured from BudgetMeter construction
  /// (i.e. from router entry). nullopt = no deadline.
  std::optional<std::chrono::milliseconds> deadline;

  /// Cap on router-specific work units (DP nodes, branches, moves,
  /// pivots). 0 = unlimited.
  std::uint64_t max_ticks = 0;

  /// Cooperative cancellation: when non-null and set to true by another
  /// thread, the router stops at its next budget check. The pointee must
  /// outlive the routing call.
  const std::atomic<bool>* cancel = nullptr;

  [[nodiscard]] bool unlimited() const {
    return !deadline && max_ticks == 0 && cancel == nullptr;
  }

  /// Convenience constructors.
  static Budget with_deadline(std::chrono::milliseconds d) {
    Budget b;
    b.deadline = d;
    return b;
  }
  static Budget with_ticks(std::uint64_t n) {
    Budget b;
    b.max_ticks = n;
    return b;
  }
  static Budget with_cancel(const std::atomic<bool>& flag) {
    Budget b;
    b.cancel = &flag;
    return b;
  }
};

/// Per-run enforcement of a Budget. Construct at router entry; call
/// tick() once per unit of work. The first violated bound wins and the
/// meter stays exhausted from then on.
class BudgetMeter {
 public:
  /// `check_interval`: the clock (and cancel flag, between interval
  /// boundaries) is consulted every this-many ticks. 64 keeps deadline
  /// overshoot in the tens of microseconds for typical node costs while
  /// making the common-path tick a couple of integer ops.
  explicit BudgetMeter(const Budget& budget, std::uint32_t check_interval = 64);

  /// Counts `n` units of work; returns true while the budget holds.
  /// Sticky: once false, always false. Inline: the common path (no bound
  /// crossed, no clock check due) is a handful of integer ops, cheap
  /// enough to sit inside the DP's per-expansion loop.
  bool tick(std::uint64_t n = 1) {
    if (stop_ != BudgetStop::kNone) return false;
    ticks_ += n;
    if (budget_.max_ticks != 0 && ticks_ > budget_.max_ticks) {
      stop_ = BudgetStop::kTickLimit;
      return false;
    }
    if (until_check_ > n) {
      until_check_ -= static_cast<std::uint32_t>(n);
      return true;
    }
    until_check_ = check_interval_;
    return check_clock();
  }

  /// Re-checks deadline and cancellation without consuming ticks.
  bool ok();

  [[nodiscard]] bool exhausted() const { return stop_ != BudgetStop::kNone; }
  [[nodiscard]] BudgetStop stop() const { return stop_; }
  [[nodiscard]] std::uint64_t ticks() const { return ticks_; }

  /// Milliseconds since construction.
  [[nodiscard]] double elapsed_ms() const;

  /// Human-readable reason, e.g. "deadline of 50 ms exceeded"; empty
  /// while the budget holds.
  [[nodiscard]] std::string reason() const;

 private:
  bool check_clock();

  Budget budget_;
  std::chrono::steady_clock::time_point start_;
  std::optional<std::chrono::steady_clock::time_point> deadline_at_;
  std::uint64_t ticks_ = 0;
  std::uint32_t check_interval_;
  std::uint32_t until_check_;
  BudgetStop stop_ = BudgetStop::kNone;
};

}  // namespace segroute::harness
