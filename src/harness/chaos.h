// Deterministic chaos harness: seeded fault storms driving the batch
// engine through degrade -> reroute -> recover cycles.
//
// A survivability claim is only as good as the torture test behind it.
// run_chaos() drives one BatchRouter session through `cycles` storms:
//
//   degrade — a FaultPlan storm (severity ramping over
//     `escalation_period` cycles, then resetting) is sampled from a
//     per-cycle seed, canonicalised, and applied to the base channel.
//     A total outage rolls the session back to the base checkpoint and
//     skips the cycle.
//   reroute — the engine is rebound to the degraded substrate and routes
//     the workload batch. A complete routing is re-verified, mapped back
//     to original-track coordinates, and checkpointed under the degraded
//     fingerprint; a failure triggers the partial fallback (maximal
//     verified subset, unrouted connections enumerated) and then a
//     rollback of the live routing to the base checkpoint.
//   recover — the engine is rebound to the base channel and re-routes
//     the workload (a memo-cache hit: base entries survive degradation
//     because cache keys carry the substrate fingerprint). The result
//     must equal the base checkpoint bit for bit (`restore_mismatches`
//     counts violations), and the degraded substrate's cache entries —
//     and only those — are invalidated (fingerprint-delta-aware).
//
// Determinism contract: the harness never reads a clock or an unseeded
// RNG; storm seeds come from one master mt19937_64, the routers run
// unlimited budgets, and route_many() partitions statically. The report
// digest (an FNV-1a over every cycle's outcome and the final live
// routing) is therefore bit-identical across thread counts — the soak
// test pins digests at 1, 2, and 8 threads against each other. Cache
// *counters* may legally vary with thread interleaving (two threads can
// both miss the same key); they are reported but excluded from the
// digest.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/channel.h"
#include "core/connection.h"
#include "core/routing.h"
#include "engine/batch.h"
#include "harness/checkpoint.h"

namespace segroute::harness {

struct ChaosOptions {
  /// Master seed: everything (storm severities, fault sets) derives from
  /// it. Equal seeds => equal reports, for any thread count.
  std::uint64_t seed = 1;

  /// Degrade -> reroute -> recover cycles to run.
  int cycles = 200;

  /// Worker threads for the engine's route_many (<= 0: hardware).
  int threads = 1;

  /// K-segment limit for every routing call (0 = unlimited).
  int max_segments = 0;

  /// Registry router carrying the workload.
  std::string router = "dp";

  /// Peak per-switch / per-segment failure probabilities. A cycle at
  /// ramp position p in [1/escalation_period .. 1] uses p * max_*.
  double max_switch_fail = 0.35;
  double max_segment_fail = 0.15;

  /// Storm severity ramps linearly over this many cycles, then resets —
  /// every period ends in a heavy storm likely to force rollbacks.
  int escalation_period = 16;

  /// Attempt the partial fallback when the degraded reroute fails.
  bool allow_partial = true;

  /// Engine memo-cache capacity.
  std::size_t cache_capacity = 256;

  /// Interleave this many seeded ChannelEdits (add/remove/move through
  /// OnlineRouter::apply) into every cycle, run against the base channel
  /// between the storm and the recover check. Each cycle the edit
  /// session's snapshot is diffed bit-for-bit against
  /// alg::from_scratch() (edit_mismatches counts violations) and the
  /// session routing is folded into the digest. 0 (the default)
  /// disables the edit stream entirely and reproduces the pre-edit
  /// digests exactly.
  int edits_per_cycle = 0;
};

/// What one cycle did (everything deterministic; digested).
struct ChaosCycle {
  std::uint64_t storm_seed = 0;
  std::uint64_t fingerprint = 0;  // degraded substrate (base fp on outage)
  int faults = 0;                 // canonical faults applied
  int switches_fused = 0;
  int tracks_lost = 0;
  bool outage = false;       // storm removed every track
  bool rerouted = false;     // complete verified routing on the substrate
  bool partial = false;      // partial fallback produced a verified subset
  bool rolled_back = false;  // live routing rolled back to base checkpoint
  int routed = 0;            // connections routed in the degrade phase
  int edits = 0;             // edits applied this cycle (edits_per_cycle > 0)
  int edit_repairs = 0;      // ... of which the localized repair handled
};

struct ChaosReport {
  bool ok = false;  // baseline routed, no verify failures, no mismatches
  int cycles = 0;
  int storms = 0;             // cycles with a non-empty canonical fault set
  std::uint64_t faults_applied = 0;
  int reroutes = 0;
  int partials = 0;
  int rollbacks = 0;
  int outages = 0;
  int restore_mismatches = 0;  // recover phase disagreed with checkpoint
  int verify_failures = 0;     // any phase produced an unverifiable routing

  // Edit-stream summary (all zero when edits_per_cycle == 0).
  int edits = 0;             // ChannelEdits applied across all cycles
  int edit_repairs = 0;      // ... handled by the localized repair path
  int edit_dp_fallbacks = 0; // ... that needed the full-DP fallback
  int edits_rejected = 0;    // ... rejected (infeasible edit; state kept)
  int edit_mismatches = 0;   // session snapshot != from_scratch reference
  std::uint64_t digest = 0;    // FNV-1a over cycle outcomes + live routing
  engine::CacheStats cache;    // counters only; excluded from the digest
  CheckpointStats checkpoints;
  std::vector<ChaosCycle> history;  // one record per cycle
  std::string note;
};

/// Runs the chaos schedule against (ch, cs). The workload batch is the
/// full set plus its 2/3 and 1/3 prefixes (distinct memo entries per
/// substrate). Requires a routable baseline; an unroutable one fails
/// fast with ok = false.
ChaosReport run_chaos(const SegmentedChannel& ch, const ConnectionSet& cs,
                      const ChaosOptions& opts = {});

}  // namespace segroute::harness
