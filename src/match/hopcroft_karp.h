// Hopcroft–Karp maximum-cardinality bipartite matching.
//
// Substrate for the 1-segment feasibility router and for test oracles.
#pragma once

#include <vector>

namespace segroute::match {

/// A bipartite graph with `num_left` left vertices and `num_right` right
/// vertices; edges are added explicitly. Vertices are 0-based.
class BipartiteGraph {
 public:
  BipartiteGraph(int num_left, int num_right);

  void add_edge(int left, int right);

  [[nodiscard]] int num_left() const { return static_cast<int>(adj_.size()); }
  [[nodiscard]] int num_right() const { return num_right_; }
  [[nodiscard]] const std::vector<int>& neighbors(int left) const {
    return adj_[left];
  }

 private:
  std::vector<std::vector<int>> adj_;
  int num_right_ = 0;
};

/// Result of a maximum matching computation.
struct MatchingResult {
  int size = 0;                 // cardinality of the matching
  std::vector<int> match_left;  // per left vertex: matched right vertex or -1
  std::vector<int> match_right; // per right vertex: matched left vertex or -1
};

/// Computes a maximum-cardinality matching in O(E * sqrt(V)).
MatchingResult hopcroft_karp(const BipartiteGraph& g);

}  // namespace segroute::match
