#include "match/hungarian.h"

#include <cmath>
#include <stdexcept>

namespace segroute::match {

AssignmentResult hungarian(int n_rows, int n_cols,
                           const std::vector<double>& cost) {
  if (n_rows < 0 || n_cols < 0 || n_rows > n_cols) {
    throw std::invalid_argument("hungarian: need 0 <= n_rows <= n_cols");
  }
  if (cost.size() != static_cast<std::size_t>(n_rows) *
                         static_cast<std::size_t>(n_cols)) {
    throw std::invalid_argument("hungarian: cost matrix size mismatch");
  }
  const double inf = kForbidden;
  auto at = [&](int r, int c) -> double {
    return cost[static_cast<std::size_t>(r) * static_cast<std::size_t>(n_cols) +
                static_cast<std::size_t>(c)];
  };

  // Potentials and matching, 1-based with a sentinel column 0.
  std::vector<double> u(static_cast<std::size_t>(n_rows) + 1, 0.0);
  std::vector<double> v(static_cast<std::size_t>(n_cols) + 1, 0.0);
  std::vector<int> p(static_cast<std::size_t>(n_cols) + 1, 0);   // row matched to col
  std::vector<int> way(static_cast<std::size_t>(n_cols) + 1, 0); // augmenting path

  for (int i = 1; i <= n_rows; ++i) {
    p[0] = i;
    int j0 = 0;
    std::vector<double> minv(static_cast<std::size_t>(n_cols) + 1, inf);
    std::vector<char> used(static_cast<std::size_t>(n_cols) + 1, 0);
    do {
      used[static_cast<std::size_t>(j0)] = 1;
      const int i0 = p[static_cast<std::size_t>(j0)];
      double delta = inf;
      int j1 = -1;
      for (int j = 1; j <= n_cols; ++j) {
        if (used[static_cast<std::size_t>(j)]) continue;
        const double c = at(i0 - 1, j - 1);
        if (!std::isinf(c)) {
          const double cur = c - u[static_cast<std::size_t>(i0)] -
                             v[static_cast<std::size_t>(j)];
          if (cur < minv[static_cast<std::size_t>(j)]) {
            minv[static_cast<std::size_t>(j)] = cur;
            way[static_cast<std::size_t>(j)] = j0;
          }
        }
        if (minv[static_cast<std::size_t>(j)] < delta) {
          delta = minv[static_cast<std::size_t>(j)];
          j1 = j;
        }
      }
      if (j1 == -1 || std::isinf(delta)) {
        // No reachable unmatched column: row i cannot be assigned.
        return AssignmentResult{false, 0.0,
                                std::vector<int>(static_cast<std::size_t>(n_rows), -1)};
      }
      for (int j = 0; j <= n_cols; ++j) {
        if (used[static_cast<std::size_t>(j)]) {
          u[static_cast<std::size_t>(p[static_cast<std::size_t>(j)])] += delta;
          v[static_cast<std::size_t>(j)] -= delta;
        } else {
          minv[static_cast<std::size_t>(j)] -= delta;
        }
      }
      j0 = j1;
    } while (p[static_cast<std::size_t>(j0)] != 0);
    // Augment along the alternating path.
    do {
      const int j1 = way[static_cast<std::size_t>(j0)];
      p[static_cast<std::size_t>(j0)] = p[static_cast<std::size_t>(j1)];
      j0 = j1;
    } while (j0 != 0);
  }

  AssignmentResult res;
  res.feasible = true;
  res.column_of.assign(static_cast<std::size_t>(n_rows), -1);
  for (int j = 1; j <= n_cols; ++j) {
    const int r = p[static_cast<std::size_t>(j)];
    if (r > 0) {
      res.column_of[static_cast<std::size_t>(r - 1)] = j - 1;
      res.cost += at(r - 1, j - 1);
    }
  }
  return res;
}

}  // namespace segroute::match
