// Hungarian algorithm (Jonker–Volgenant style shortest augmenting paths,
// O(n^3)) for minimum-cost assignment with forbidden pairs.
//
// Substrate for the optimal 1-segment router (Problem 3 via weighted
// bipartite matching, Fig. 7 of the paper).
#pragma once

#include <limits>
#include <vector>

namespace segroute::match {

/// Cost used to mark a forbidden (absent) edge.
inline constexpr double kForbidden = std::numeric_limits<double>::infinity();

/// Result of a min-cost assignment.
struct AssignmentResult {
  bool feasible = false;          // every row matched to a permitted column
  double cost = 0.0;              // total cost of the assignment
  std::vector<int> column_of;     // per row: assigned column (or -1)
};

/// Solves min-cost assignment on an `n_rows` x `n_cols` cost matrix
/// (row-major; cost[r*n_cols + c]); requires n_rows <= n_cols. Entries
/// equal to kForbidden may not be used. Returns feasible=false if no
/// perfect (all-rows) assignment avoiding forbidden entries exists.
AssignmentResult hungarian(int n_rows, int n_cols,
                           const std::vector<double>& cost);

}  // namespace segroute::match
