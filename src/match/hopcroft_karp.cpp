#include "match/hopcroft_karp.h"

#include <functional>
#include <limits>
#include <queue>
#include <stdexcept>

namespace segroute::match {

namespace {
constexpr int kInf = std::numeric_limits<int>::max();
}

BipartiteGraph::BipartiteGraph(int num_left, int num_right)
    : adj_(static_cast<std::size_t>(num_left < 0 ? 0 : num_left)),
      num_right_(num_right) {
  if (num_left < 0 || num_right < 0) {
    throw std::invalid_argument("BipartiteGraph: negative vertex count");
  }
}

void BipartiteGraph::add_edge(int left, int right) {
  if (left < 0 || left >= num_left() || right < 0 || right >= num_right_) {
    throw std::out_of_range("BipartiteGraph::add_edge: vertex out of range");
  }
  adj_[static_cast<std::size_t>(left)].push_back(right);
}

MatchingResult hopcroft_karp(const BipartiteGraph& g) {
  const int nl = g.num_left();
  const int nr = g.num_right();
  std::vector<int> match_l(static_cast<std::size_t>(nl), -1);
  std::vector<int> match_r(static_cast<std::size_t>(nr), -1);
  std::vector<int> dist(static_cast<std::size_t>(nl), kInf);

  auto bfs = [&]() -> bool {
    std::queue<int> q;
    for (int u = 0; u < nl; ++u) {
      if (match_l[static_cast<std::size_t>(u)] == -1) {
        dist[static_cast<std::size_t>(u)] = 0;
        q.push(u);
      } else {
        dist[static_cast<std::size_t>(u)] = kInf;
      }
    }
    bool found_free = false;
    while (!q.empty()) {
      const int u = q.front();
      q.pop();
      for (int v : g.neighbors(u)) {
        const int w = match_r[static_cast<std::size_t>(v)];
        if (w == -1) {
          found_free = true;
        } else if (dist[static_cast<std::size_t>(w)] == kInf) {
          dist[static_cast<std::size_t>(w)] =
              dist[static_cast<std::size_t>(u)] + 1;
          q.push(w);
        }
      }
    }
    return found_free;
  };

  std::function<bool(int)> dfs = [&](int u) -> bool {
    for (int v : g.neighbors(u)) {
      const int w = match_r[static_cast<std::size_t>(v)];
      if (w == -1 || (dist[static_cast<std::size_t>(w)] ==
                          dist[static_cast<std::size_t>(u)] + 1 &&
                      dfs(w))) {
        match_l[static_cast<std::size_t>(u)] = v;
        match_r[static_cast<std::size_t>(v)] = u;
        return true;
      }
    }
    dist[static_cast<std::size_t>(u)] = kInf;
    return false;
  };

  int size = 0;
  while (bfs()) {
    for (int u = 0; u < nl; ++u) {
      if (match_l[static_cast<std::size_t>(u)] == -1 && dfs(u)) ++size;
    }
  }
  return MatchingResult{size, std::move(match_l), std::move(match_r)};
}

}  // namespace segroute::match
