// Channel-capacity analysis utilities: the questions an FPGA architect
// asks of a segmentation scheme ("how many tracks does this workload
// need?", "how much load does this channel take?") — the engineering
// loop behind the companion papers [10], [11] and this paper's Fig. 2.
//
// Parallelism and determinism. Every search in this header evaluates
// independent DP probes, so all of them accept a thread count through
// CapacityOptions::threads. The contract is strict determinism: for a
// fixed input (and, for routability, a fixed master RNG state) the
// result is bit-identical for every thread count, including 1.
//  - routability: the master RNG emits exactly one seed per trial (in
//    trial order) and each trial draws from its own seeded stream, so
//    the sampled workloads do not depend on how trials are scheduled;
//  - min_tracks / max_routable_prefix: with threads > 1 the binary
//    search widens into a multisection search that evaluates several
//    probe points per round; on a monotone predicate this returns the
//    same answer as the serial bisection, it just burns the extra
//    probes in parallel instead of waiting on one at a time.
#pragma once

#include <functional>
#include <optional>
#include <random>
#include <string>

#include "alg/result.h"
#include "core/channel.h"
#include "core/connection.h"

namespace segroute::alg {

/// Builds a channel with the given number of tracks (and this library's
/// fixed width per scheme). Used by the capacity searches below.
using ChannelFactory = std::function<SegmentedChannel(int tracks)>;

struct CapacityOptions {
  /// K-segment limit (0 = unlimited).
  int max_segments = 0;
  /// Upper bound on tracks tried before giving up.
  int track_limit = 128;
  /// Worker threads for probe/trial evaluation. The library-wide
  /// convention (shared with engine::BatchOptions::threads,
  /// fpga::FabricOptions::threads and svc::SvcOptions::threads):
  /// 1 = serial (the historical
  /// behavior), N > 1 = fixed, and <= 0 = "auto" — resolved to
  /// util::hardware_threads(), the clamped hardware concurrency.
  /// Results are bit-identical across all values (see file comment):
  /// the static deterministic partitioning is unchanged by how the
  /// count was chosen.
  int threads = 1;
  /// Which registered router (alg::registry() name) answers "does it
  /// route?" probes. The default exact DP gives true capacities; a
  /// heuristic (e.g. "lp") trades a possible underestimate for speed —
  /// sound for the prefix/routability searches because a heuristic
  /// failure only shrinks the reported capacity, never inflates it.
  /// Caution with min_tracks: a heuristic probe can break the
  /// monotonicity that `assume_monotone` exploits.
  std::string router = "dp";
};

/// Smallest track count for which `make(t)` routes `cs` (probed with the
/// registry router named in opts.router, default the exact DP), or
/// nullopt if none within opts.track_limit. Routability is monotone in
/// the track count for every factory produced by gen/segmentation.h
/// (adding a track never removes capacity), so binary search applies —
/// but monotonicity is NOT guaranteed for arbitrary factories (a factory
/// may re-segment existing tracks as t grows), so a linear scan from the
/// density lower bound is used unless `assume_monotone` is set. With
/// opts.threads > 1 the scan evaluates batches of candidates (and the
/// bisection becomes a multisection) concurrently.
std::optional<int> min_tracks(const ConnectionSet& cs, const ChannelFactory& make,
                              const CapacityOptions& opts = {},
                              bool assume_monotone = false);

/// Largest prefix (in the given order) of `cs` that routes in `ch`.
/// Monotone by construction — removing the last connection keeps the
/// remaining prefix routable — so binary search is sound here. Each
/// probe's prefix is sliced in one bulk construction from the stored
/// connection vector (not rebuilt add-by-add).
int max_routable_prefix(const SegmentedChannel& ch, const ConnectionSet& cs,
                        const CapacityOptions& opts = {});

/// Monte-Carlo routability estimate: fraction of `trials` workloads drawn
/// from `draw` that route in `ch`. The master `rng` is consumed exactly
/// `trials` times (one seed per trial) and each trial's workload is drawn
/// from its own per-trial stream, so the estimate is a deterministic
/// function of (rng state, trials) regardless of opts.threads.
double routability(const SegmentedChannel& ch,
                   const std::function<ConnectionSet(std::mt19937_64&)>& draw,
                   int trials, std::mt19937_64& rng,
                   const CapacityOptions& opts = {});

}  // namespace segroute::alg
