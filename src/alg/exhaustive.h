// Exhaustive backtracking router — the test oracle. Exponential; only for
// small instances (tests, example validation, bench ground truth).
#pragma once

#include <optional>

#include "alg/result.h"
#include "core/channel.h"
#include "core/connection.h"
#include "core/weights.h"
#include "harness/budget.h"

namespace segroute::alg {

struct ExhaustiveOptions {
  int max_segments = 0;                 // 0 = unlimited
  std::optional<WeightFn> weight;       // if set, find the minimum-weight routing
  std::uint64_t max_branches = 50'000'000;  // safety valve

  /// Resource bounds checked once per explored branch; exhaustion yields
  /// FailureKind::kBudgetExhausted like max_branches.
  harness::Budget budget;
};

/// Tries every assignment by depth-first search (connections in left-end
/// order). With `weight`, performs branch-and-bound for the optimum.
/// stats.iterations counts explored branches. Throws nothing. The two
/// failure modes are distinct FailureKinds: kBudgetExhausted (branch
/// limit / budget hit before an answer) vs kInfeasible (search completed,
/// no routing exists).
RouteResult exhaustive_route(const SegmentedChannel& ch,
                             const ConnectionSet& cs,
                             const ExhaustiveOptions& opts = {});

}  // namespace segroute::alg
