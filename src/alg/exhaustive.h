// Exhaustive backtracking router — the test oracle. Exponential; only for
// small instances (tests, example validation, bench ground truth).
#pragma once

#include <optional>

#include "alg/result.h"
#include "core/channel.h"
#include "core/connection.h"
#include "core/weights.h"

namespace segroute::alg {

struct ExhaustiveOptions {
  int max_segments = 0;                 // 0 = unlimited
  std::optional<WeightFn> weight;       // if set, find the minimum-weight routing
  std::uint64_t max_branches = 50'000'000;  // safety valve
};

/// Tries every assignment by depth-first search (connections in left-end
/// order). With `weight`, performs branch-and-bound for the optimum.
/// stats.iterations counts explored branches. Throws nothing; exceeding
/// max_branches returns success=false with a note.
RouteResult exhaustive_route(const SegmentedChannel& ch,
                             const ConnectionSet& cs,
                             const ExhaustiveOptions& opts = {});

}  // namespace segroute::alg
