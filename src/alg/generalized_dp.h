// Generalized segmented channel routing (Section V, Problem 4): each
// connection may be split across tracks. The algorithm breaks every
// connection into unit-column pieces (Proposition 11) and runs an
// assignment-graph DP whose frontier also remembers, per track, which
// parent connection occupies the frontier segment (so same-parent pieces
// may share it). Time O(T^(T+2) * M) — Theorem 8.
#pragma once

#include <optional>
#include <vector>

#include "alg/result.h"
#include "core/channel.h"
#include "core/channel_index.h"
#include "core/connection.h"
#include "core/generalized.h"
#include "harness/budget.h"

namespace segroute::alg {

struct GeneralizedDpOptions {
  /// If set, a connection may change tracks only at these columns (the
  /// paper's restricted variant 1): a part may *start* at column l > left(c)
  /// only if l is listed.
  std::optional<std::vector<Column>> allowed_switch_columns;

  /// The paper's restricted variant 2 (hardware model): when a connection
  /// switches from track t1 to t2 at column l, the segment it occupied in
  /// t1 must extend through column l (so the two occupied segments share a
  /// column for the vertical jumper).
  bool switch_requires_overlap = false;

  /// Safety valve on assignment-graph size.
  std::uint64_t max_total_nodes = 50'000'000;

  /// Resource bounds checked in the hot loop (one tick per attempted
  /// state expansion); exhaustion yields FailureKind::kBudgetExhausted.
  harness::Budget budget;

  /// Prebuilt index over the channel being routed (must match it):
  /// replaces the per-level per-track segment_at binary searches with
  /// O(1) lookups. Results are bit-identical with and without it.
  const ChannelIndex* index = nullptr;
};

/// Result of a generalized routing attempt.
struct GeneralizedRouteResult {
  bool success = false;
  GeneralizedRouting routing;
  FailureKind failure = FailureKind::kNone;  // kNone iff success
  std::string note;
  RouteStats stats;

  explicit operator bool() const { return success; }

  void fail(FailureKind kind, std::string why) {
    success = false;
    failure = kind;
    note = std::move(why);
  }
};

/// Solves Problem 4 (or its restricted variants per `opts`).
GeneralizedRouteResult generalized_dp_route(const SegmentedChannel& ch,
                                            const ConnectionSet& cs,
                                            const GeneralizedDpOptions& opts = {});

}  // namespace segroute::alg
