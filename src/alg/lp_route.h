// The linear-programming routing heuristic of Section IV-C.
//
// Formulation: binary x_ij = 1 iff connection c_i is assigned to track
// t_j. Constraints: (a) each connection is assigned to at most one track;
// (b) for every segment s of every track, at most one connection that
// would occupy s may be assigned to s's track (these are the paper's sets
// P_kj). Objective: maximize sum x_ij; a routing exists iff the 0-1
// optimum is M. The heuristic solves the *plain LP relaxation* — the
// paper reports that for random instances up to M=60, T=25 the relaxation
// almost always already yields a 0-1 vertex. A fix-and-resolve rounding
// fallback handles the fractional remainder.
#pragma once

#include <cstdint>

#include "alg/result.h"
#include "core/channel.h"
#include "core/connection.h"
#include "core/weights.h"
#include "harness/budget.h"

namespace segroute::alg {

struct LpRouteOptions {
  /// K-segment limit (0 = unlimited): assignments needing more segments
  /// get no variable (the paper's x_ij = 0 fixing for Problem 2).
  int max_segments = 0;

  /// Maximum fix-and-resolve passes before giving up on a fractional
  /// relaxation. 0 disables rounding (pure relaxation, for measuring the
  /// paper's integrality claim).
  int max_rounding_passes = 64;

  /// Integrality tolerance.
  double tolerance = 1e-6;

  /// Magnitude of a deterministic generic perturbation added to the
  /// objective coefficients (each x_ij gets 1 + U(0, jitter)). The uniform
  /// objective has massively degenerate optima whose simplex vertex is
  /// often fractional; a generic objective steers the solver to a 0-1
  /// vertex of the optimal face in almost every feasible case — this is
  /// what makes the relaxation "work surprisingly well in practice"
  /// (Section IV-C). Set to 0 to ablate. Must stay below 1/M so the
  /// perturbed optimum still maximizes the number of routed connections.
  double objective_jitter = 1e-4;

  /// Seed for the deterministic jitter.
  std::uint64_t jitter_seed = 0x5e60e7eULL;

  /// Resource bounds: ticks count simplex pivots; the deadline is pushed
  /// down into every simplex solve (checked every few pivots), so a
  /// single huge LP cannot blow past it. Exhaustion yields
  /// FailureKind::kBudgetExhausted.
  harness::Budget budget;
};

/// Runs the LP heuristic. success=true only with a complete valid routing.
/// stats: lp_objective (relaxation optimum), lp_integral (relaxation was
/// already 0-1), rounding_passes, iterations (simplex pivots, summed).
RouteResult lp_route(const SegmentedChannel& ch, const ConnectionSet& cs,
                     const LpRouteOptions& opts = {});

/// Extension of the Section IV-C formulation to Problem 3: minimizes the
/// total weight sum w(c_i, t_j) * x_ij subject to every connection being
/// assigned (x rows == 1) and the per-segment capacity rows. Assignments
/// of infinite weight get no variable. Heuristic like lp_route: succeeds
/// only when the (rounded) solution is a complete valid routing; on
/// success `weight` holds its total weight, which tests cross-check
/// against the exact Problem-3 DP.
RouteResult lp_route_optimal(const SegmentedChannel& ch,
                             const ConnectionSet& cs, const WeightFn& w,
                             const LpRouteOptions& opts = {});

}  // namespace segroute::alg
