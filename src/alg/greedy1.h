// 1-segment routing: the exact greedy algorithm of Section IV-A
// (Theorem 3) — each connection must fit within a single segment.
#pragma once

#include "alg/result.h"
#include "core/channel.h"
#include "core/channel_index.h"
#include "core/connection.h"

namespace segroute::alg {

/// Tie-breaking policies for equal right ends (the paper breaks ties
/// arbitrarily; Theorem 3 holds for any choice — exercised by tests).
enum class TieBreak { LowestTrack, HighestTrack };

/// Greedy 1-segment router (Problem 2 with K=1), O(M*T):
/// process connections by increasing left end; for each, among tracks
/// where it fits in one *unoccupied* segment, pick the one whose segment
/// has the smallest right end. Complete iff any 1-segment routing exists
/// (Theorem 3).
///
/// `ctx` optionally supplies a prebuilt ChannelIndex (O(1) segment
/// lookups) and a reusable Occupancy (reset here; no per-call
/// allocation). Results are bit-identical with and without it.
RouteResult greedy1_route(const SegmentedChannel& ch, const ConnectionSet& cs,
                          TieBreak tie = TieBreak::LowestTrack,
                          const RouteContext& ctx = {});

/// The segment chosen for each connection, for trace-style reporting
/// (track and segment index per connection); parallel to the routing.
struct Greedy1Trace {
  std::vector<SegId> segment_of;  // per connection, or -1
};

/// As greedy1_route but also reports which segment each connection took.
RouteResult greedy1_route_traced(const SegmentedChannel& ch,
                                 const ConnectionSet& cs, Greedy1Trace* trace,
                                 TieBreak tie = TieBreak::LowestTrack,
                                 const RouteContext& ctx = {});

}  // namespace segroute::alg
