#include "alg/decompose.h"

#include <algorithm>

namespace segroute::alg {

std::vector<Column> safe_split_columns(const SegmentedChannel& ch,
                                       const ConnectionSet& cs) {
  const Column N = ch.width();
  // all_switch[c] == true if every track has a switch between c and c+1.
  std::vector<bool> all_switch(static_cast<std::size_t>(N) + 1, true);
  for (Column c = 1; c < N; ++c) {
    for (TrackId t = 0; t < ch.num_tracks(); ++t) {
      const Track& tr = ch.track(t);
      if (tr.segment_at(c) == tr.segment_at(c + 1)) {
        all_switch[static_cast<std::size_t>(c)] = false;
        break;
      }
    }
  }
  // crossed[c] == true if some connection spans c -> c+1.
  std::vector<bool> crossed(static_cast<std::size_t>(N) + 1, false);
  for (const Connection& conn : cs.all()) {
    for (Column c = conn.left; c < conn.right; ++c) {
      crossed[static_cast<std::size_t>(c)] = true;
    }
  }
  std::vector<Column> cuts;
  for (Column c = 1; c < N; ++c) {
    if (all_switch[static_cast<std::size_t>(c)] &&
        !crossed[static_cast<std::size_t>(c)]) {
      cuts.push_back(c);
    }
  }
  return cuts;
}

std::vector<std::vector<ConnId>> split_parts(const SegmentedChannel& ch,
                                             const ConnectionSet& cs) {
  const auto cuts = safe_split_columns(ch, cs);
  std::vector<std::vector<ConnId>> parts(cuts.size() + 1);
  for (ConnId i = 0; i < cs.size(); ++i) {
    // The part index is the number of cuts strictly left of the
    // connection (a connection never spans a cut, so left is enough).
    const std::size_t part = static_cast<std::size_t>(
        std::upper_bound(cuts.begin(), cuts.end(), cs[i].left - 1) -
        cuts.begin());
    parts[part].push_back(i);
  }
  // Drop empty parts (cuts through empty regions).
  std::vector<std::vector<ConnId>> nonempty;
  for (auto& p : parts) {
    if (!p.empty()) nonempty.push_back(std::move(p));
  }
  return nonempty;
}

RouteResult decompose_route(const SegmentedChannel& ch,
                            const ConnectionSet& cs, const SubRouter& route) {
  RouteResult res;
  res.routing = Routing(cs.size());
  if (cs.max_right() > ch.width()) {
    res.fail(FailureKind::kInvalidInput, "connections exceed channel width");
    return res;
  }
  const auto parts = split_parts(ch, cs);
  for (const auto& ids : parts) {
    ConnectionSet sub;
    for (ConnId i : ids) {
      sub.add(cs[i].left, cs[i].right, cs[i].name);
    }
    const RouteResult r = route(ch, sub);
    res.stats.iterations += r.stats.iterations;
    res.stats.nodes_per_level.push_back(ids.size());
    if (!r.success) {
      res.fail(r.failure, "part of " + std::to_string(ids.size()) +
                              " connections failed: " + r.note);
      return res;
    }
    for (ConnId k = 0; k < sub.size(); ++k) {
      res.routing.assign(ids[static_cast<std::size_t>(k)], r.routing.track_of(k));
    }
  }
  res.success = true;
  return res;
}

}  // namespace segroute::alg
