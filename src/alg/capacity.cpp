#include "alg/capacity.h"

#include <algorithm>
#include <vector>

#include "alg/registry.h"
#include "core/router.h"
#include "engine/batch.h"
#include "util/pool.h"

namespace segroute::alg {

namespace {

// Direct (index-free) registry probe. min_tracks keeps using it because
// every probe builds a *different* channel, so there is no shared
// structure for a BatchRouter's index or cache to amortize; the
// fixed-channel searches below go through the engine instead.
bool routes(const SegmentedChannel& ch, const ConnectionSet& cs,
            const CapacityOptions& opts) {
  RouteRequest rq;
  rq.channel = &ch;
  rq.connections = &cs;
  rq.options.max_segments = opts.max_segments;
  return route(opts.router, rq).success;
}

}  // namespace

std::optional<int> min_tracks(const ConnectionSet& cs,
                              const ChannelFactory& make,
                              const CapacityOptions& opts,
                              bool assume_monotone) {
  const int lo_bound = std::max(1, cs.density());
  const int W = util::resolve_threads(opts.threads);
  const auto probe = [&](int t) { return routes(make(t), cs, opts); };

  if (assume_monotone) {
    int lo = lo_bound;
    int hi;
    if (W <= 1) {
      // Find a routable upper end by doubling, then binary search.
      hi = lo_bound;
      while (hi <= opts.track_limit && !probe(hi)) hi *= 2;
      if (hi > opts.track_limit) {
        if (!probe(opts.track_limit)) return std::nullopt;
        hi = opts.track_limit;
      }
      while (lo < hi) {
        const int mid = lo + (hi - lo) / 2;
        if (probe(mid)) {
          hi = mid;
        } else {
          lo = mid + 1;
        }
      }
      return lo;
    }

    util::ThreadPool pool(W);
    // Evaluate the whole doubling ladder in one parallel sweep, then
    // shrink the bracket with a multisection search (W probes per round
    // cut the interval by a factor of W+1). On a monotone factory this
    // returns exactly the serial answer.
    std::vector<int> ladder;
    for (int t = lo_bound; t <= opts.track_limit; t *= 2) ladder.push_back(t);
    if (ladder.empty() || ladder.back() != opts.track_limit) {
      ladder.push_back(opts.track_limit);
    }
    std::vector<char> ok(ladder.size(), 0);
    pool.parallel_for(static_cast<std::int64_t>(ladder.size()),
                      [&](std::int64_t i) {
                        const auto iu = static_cast<std::size_t>(i);
                        ok[iu] = probe(ladder[iu]) ? 1 : 0;
                      });
    std::size_t first_ok = ladder.size();
    for (std::size_t i = 0; i < ladder.size(); ++i) {
      if (ok[i]) {
        first_ok = i;
        break;
      }
    }
    if (first_ok == ladder.size()) return std::nullopt;
    hi = ladder[first_ok];
    lo = first_ok == 0 ? lo_bound : ladder[first_ok - 1] + 1;
    while (lo < hi) {
      const int span = hi - lo;  // unknown candidates: lo..hi-1
      std::vector<int> pts;
      if (span <= W) {
        for (int t = lo; t < hi; ++t) pts.push_back(t);
      } else {
        for (int k = 1; k <= W; ++k) {
          const int p =
              lo + static_cast<int>(static_cast<long long>(k) * span / (W + 1));
          if (pts.empty() || pts.back() != p) pts.push_back(p);
        }
      }
      std::vector<char> r(pts.size(), 0);
      pool.parallel_for(static_cast<std::int64_t>(pts.size()),
                        [&](std::int64_t i) {
                          const auto iu = static_cast<std::size_t>(i);
                          r[iu] = probe(pts[iu]) ? 1 : 0;
                        });
      for (std::size_t i = 0; i < pts.size(); ++i) {
        if (r[i]) {
          hi = pts[i];  // smallest routable probe
          break;
        }
        lo = pts[i] + 1;  // largest unroutable probe so far
      }
    }
    return lo;
  }

  // Non-monotone factory: first routable track count from the density
  // lower bound, scanning in deterministic batches of W.
  if (W <= 1) {
    for (int t = lo_bound; t <= opts.track_limit; ++t) {
      if (probe(t)) return t;
    }
    return std::nullopt;
  }
  util::ThreadPool pool(W);
  for (int base = lo_bound; base <= opts.track_limit; base += W) {
    const int n = std::min(W, opts.track_limit - base + 1);
    std::vector<char> ok(static_cast<std::size_t>(n), 0);
    pool.parallel_for(n, [&](std::int64_t i) {
      ok[static_cast<std::size_t>(i)] =
          probe(base + static_cast<int>(i)) ? 1 : 0;
    });
    for (int i = 0; i < n; ++i) {
      if (ok[static_cast<std::size_t>(i)]) return base + i;
    }
  }
  return std::nullopt;
}

int max_routable_prefix(const SegmentedChannel& ch, const ConnectionSet& cs,
                        const CapacityOptions& opts) {
  // Fixed channel, many probes: route through the engine. The shared
  // index is built once, probes reuse per-thread scratch, and the memo
  // cache keeps its answers across repeated calls on the same channel
  // (e.g. a capacity sweep re-probing overlapping prefixes).
  engine::BatchOptions bo;
  bo.threads = opts.threads;
  engine::BatchRouter router(ch, bo);
  engine::EngineRouteOptions eo;
  eo.router = opts.router;
  eo.max_segments = opts.max_segments;
  // One bulk slice per probe from the stored vector — not an add()-loop
  // rebuild — so a probe of prefix m costs one O(m) copy.
  const std::vector<Connection>& all = cs.all();
  const auto probe = [&](int m) {
    return router
        .route(ConnectionSet(std::vector<Connection>(all.begin(),
                                                     all.begin() + m)),
               eo)
        .success;
  };
  const int W = util::resolve_threads(opts.threads);
  int lo = 0, hi = cs.size();
  if (W <= 1) {
    while (lo < hi) {
      const int mid = lo + (hi - lo + 1) / 2;
      if (probe(mid)) {
        lo = mid;
      } else {
        hi = mid - 1;
      }
    }
    return lo;
  }
  util::ThreadPool pool(W);
  while (lo < hi) {
    const int span = hi - lo;  // unknown candidates: lo+1..hi
    std::vector<int> pts;
    if (span <= W) {
      for (int m = lo + 1; m <= hi; ++m) pts.push_back(m);
    } else {
      for (int k = 1; k <= W; ++k) {
        const int p =
            lo + static_cast<int>(static_cast<long long>(k) * span / (W + 1));
        if (pts.empty() || pts.back() != p) pts.push_back(p);
      }
    }
    std::vector<char> r(pts.size(), 0);
    pool.parallel_for(static_cast<std::int64_t>(pts.size()),
                      [&](std::int64_t i) {
                        const auto iu = static_cast<std::size_t>(i);
                        r[iu] = probe(pts[iu]) ? 1 : 0;
                      });
    for (std::size_t i = 0; i < pts.size(); ++i) {
      if (!r[i]) {
        hi = pts[i] - 1;  // smallest unroutable probe
        break;
      }
      lo = pts[i];  // largest routable probe so far
    }
  }
  return lo;
}

double routability(const SegmentedChannel& ch,
                   const std::function<ConnectionSet(std::mt19937_64&)>& draw,
                   int trials, std::mt19937_64& rng,
                   const CapacityOptions& opts) {
  if (trials <= 0) return 0.0;
  // Per-trial RNG streams: the master rng emits exactly one seed per
  // trial, in trial order, so both the master stream consumption and
  // every trial's workload are independent of the thread count. The
  // workloads are drawn up front (same streams, same order) and routed
  // as one engine batch: shared index and per-thread scratch, memo
  // cache off — independently drawn random workloads essentially never
  // repeat, so caching them would only burn memory.
  std::vector<std::uint64_t> seeds(static_cast<std::size_t>(trials));
  for (auto& s : seeds) s = rng();
  std::vector<ConnectionSet> batch(static_cast<std::size_t>(trials));
  for (std::size_t i = 0; i < batch.size(); ++i) {
    std::mt19937_64 trial_rng(seeds[i]);
    batch[i] = draw(trial_rng);
  }
  engine::BatchOptions bo;
  bo.threads = opts.threads;
  bo.use_cache = false;
  engine::BatchRouter router(ch, bo);
  engine::EngineRouteOptions eo;
  eo.router = opts.router;
  eo.max_segments = opts.max_segments;
  const std::vector<RouteResult> results = router.route_many(batch, eo);
  int n = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (batch[i].max_right() <= ch.width() && results[i].success) ++n;
  }
  return static_cast<double>(n) / static_cast<double>(trials);
}

}  // namespace segroute::alg
