#include "alg/capacity.h"

#include <algorithm>

#include "alg/dp.h"

namespace segroute::alg {

namespace {

bool routes(const SegmentedChannel& ch, const ConnectionSet& cs,
            const CapacityOptions& opts) {
  DpOptions o;
  o.max_segments = opts.max_segments;
  return dp_route(ch, cs, o).success;
}

}  // namespace

std::optional<int> min_tracks(const ConnectionSet& cs,
                              const ChannelFactory& make,
                              const CapacityOptions& opts,
                              bool assume_monotone) {
  const int lo_bound = std::max(1, cs.density());
  if (assume_monotone) {
    // Find a routable upper end by doubling, then binary search.
    int hi = lo_bound;
    while (hi <= opts.track_limit && !routes(make(hi), cs, opts)) hi *= 2;
    if (hi > opts.track_limit) {
      if (!routes(make(opts.track_limit), cs, opts)) return std::nullopt;
      hi = opts.track_limit;
    }
    int lo = lo_bound;
    while (lo < hi) {
      const int mid = lo + (hi - lo) / 2;
      if (routes(make(mid), cs, opts)) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    return lo;
  }
  for (int t = lo_bound; t <= opts.track_limit; ++t) {
    if (routes(make(t), cs, opts)) return t;
  }
  return std::nullopt;
}

int max_routable_prefix(const SegmentedChannel& ch, const ConnectionSet& cs,
                        const CapacityOptions& opts) {
  auto prefix = [&](int m) {
    ConnectionSet sub;
    for (ConnId i = 0; i < m; ++i) {
      sub.add(cs[i].left, cs[i].right, cs[i].name);
    }
    return sub;
  };
  int lo = 0, hi = cs.size();
  while (lo < hi) {
    const int mid = lo + (hi - lo + 1) / 2;
    if (routes(ch, prefix(mid), opts)) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

double routability(const SegmentedChannel& ch,
                   const std::function<ConnectionSet(std::mt19937_64&)>& draw,
                   int trials, std::mt19937_64& rng,
                   const CapacityOptions& opts) {
  if (trials <= 0) return 0.0;
  int ok = 0;
  for (int i = 0; i < trials; ++i) {
    const ConnectionSet cs = draw(rng);
    if (cs.max_right() <= ch.width() && routes(ch, cs, opts)) ++ok;
  }
  return static_cast<double>(ok) / static_cast<double>(trials);
}

}  // namespace segroute::alg
