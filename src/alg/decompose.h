// Divide-and-conquer wrapper: split a routing problem at columns that no
// connection crosses AND where every track has a switch, route the
// independent parts separately, and stitch the assignments back together.
//
// Soundness: at such a column the two sides share no connection span and
// no segment, so any combination of per-part valid routings is a valid
// routing of the whole — the split is exact, not heuristic. The payoff
// is for sub-routers whose cost is superlinear in M (the LP heuristic) or
// whose graph width grows with instance span (generalized DP).
#pragma once

#include <functional>
#include <vector>

#include "alg/result.h"
#include "core/channel.h"
#include "core/connection.h"

namespace segroute::alg {

/// A sub-router: routes `part` (a subset of connections, original
/// coordinates) on the full channel.
using SubRouter = std::function<RouteResult(const SegmentedChannel&,
                                            const ConnectionSet&)>;

/// Columns c such that splitting between c and c+1 is exact: every track
/// has a switch after c, and no connection of `cs` spans c -> c+1.
std::vector<Column> safe_split_columns(const SegmentedChannel& ch,
                                       const ConnectionSet& cs);

/// Partition of the connection ids into independent parts (by the safe
/// split columns). Parts are ordered left to right; every connection
/// appears exactly once.
std::vector<std::vector<ConnId>> split_parts(const SegmentedChannel& ch,
                                             const ConnectionSet& cs);

/// Routes each part with `route` and merges. Fails (with the sub-router's
/// note) as soon as one part fails. stats.nodes_per_level reports one
/// entry per part: that part's connection count.
RouteResult decompose_route(const SegmentedChannel& ch,
                            const ConnectionSet& cs, const SubRouter& route);

}  // namespace segroute::alg
