#include "alg/dp.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "core/channel_index.h"
#include "core/routing.h"
#include "obs/instrument.h"

namespace segroute::alg {

namespace {

/// FNV-1a over a frontier slice of `n` columns.
std::uint64_t hash_slice(const Column* f, std::size_t n) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(f[i]));
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

RouteResult dp_route(const SegmentedChannel& ch, const ConnectionSet& cs,
                     const DpOptions& opts) {
  RouteResult res;
  res.routing = Routing(cs.size());
  SEGROUTE_SPAN(dp_span, "alg.dp_route");
  if (cs.max_right() > ch.width()) {
    res.fail(FailureKind::kInvalidInput, "connections exceed channel width");
    SEGROUTE_SPAN_TAG(dp_span, "outcome", to_string(res.failure));
    return res;
  }
  harness::BudgetMeter meter(opts.budget);

  const TrackId T = ch.num_tracks();
  const std::size_t Ts = static_cast<std::size_t>(T);
  const ChannelIndex* idx = opts.index;

  // All per-call vectors come from a workspace: the caller's (steady-state
  // allocation-free across repeated routes) or a call-local fallback.
  DpWorkspace local_ws;
  DpWorkspace& ws = opts.workspace ? *opts.workspace : local_ws;

  // Build track classes: segmentation types if canonicalizing, singletons
  // otherwise. Tracks are regrouped so each class occupies a contiguous
  // range of frontier positions. Flat layout: class cl's members are
  // class_members[class_begin[cl] .. class_begin[cl+1]), in ascending
  // track order (counting sort; type ids are first-appearance ordered).
  auto& class_begin = ws.class_begin;
  auto& class_members = ws.class_members;
  int num_classes;
  if (opts.canonicalize_types) {
    const std::vector<int>& type_of = idx ? idx->type_of() : ch.type_of();
    num_classes = idx ? idx->num_types() : ch.num_types();
    class_begin.assign(static_cast<std::size_t>(num_classes) + 1, 0);
    for (TrackId t = 0; t < T; ++t) {
      ++class_begin[static_cast<std::size_t>(
                        type_of[static_cast<std::size_t>(t)]) +
                    1];
    }
    for (int c = 0; c < num_classes; ++c) {
      class_begin[static_cast<std::size_t>(c) + 1] +=
          class_begin[static_cast<std::size_t>(c)];
    }
    ws.class_cursor.assign(class_begin.begin(), class_begin.end() - 1);
    class_members.resize(Ts);
    for (TrackId t = 0; t < T; ++t) {
      const int cl = type_of[static_cast<std::size_t>(t)];
      class_members[static_cast<std::size_t>(
          ws.class_cursor[static_cast<std::size_t>(cl)]++)] = t;
    }
  } else {
    num_classes = static_cast<int>(T);
    class_begin.resize(Ts + 1);
    class_members.resize(Ts);
    for (TrackId t = 0; t < T; ++t) {
      class_begin[static_cast<std::size_t>(t)] = static_cast<int>(t);
      class_members[static_cast<std::size_t>(t)] = t;
    }
    class_begin[Ts] = static_cast<int>(T);
  }
  // Representative track per class: the first member (lowest id; identical
  // segmentation within a class makes it stand for all of them).
  const auto class_rep = [&](int cl) {
    return class_members[static_cast<std::size_t>(
        class_begin[static_cast<std::size_t>(cl)])];
  };

  cs.sorted_by_left(ws.order);
  const std::vector<ConnId>& order = ws.order;
  const ConnId M = cs.size();
  const bool optimizing = opts.weight.has_value();

  // Node storage is structure-of-arrays: frontiers live in one flat arena
  // (node i's frontier is arena[i*T .. (i+1)*T)), the per-node scalars in
  // parallel vectors. No per-node heap allocation, and frontier equality
  // is a memcmp over the arena.
  auto& arena = ws.arena;
  auto& parent = ws.parent;
  auto& edge_class = ws.edge_class;
  auto& node_w = ws.node_w;
  arena.clear();
  arena.reserve(Ts * 1024);
  parent.clear();
  edge_class.clear();
  node_w.clear();
  parent.reserve(1024);
  edge_class.reserve(1024);
  node_w.reserve(1024);

  // Root: every track free; normalized w.r.t. the first connection's left.
  const Column L0 = M > 0 ? cs[order[0]].left : ch.width() + 1;
  arena.insert(arena.end(), Ts, L0);
  parent.push_back(-1);
  edge_class.push_back(-1);
  node_w.push_back(0.0);

  auto& level = ws.level;
  level.clear();
  level.push_back(0);
  res.stats.nodes_per_level.push_back(1);

  // Dedup hits accumulate in a plain local and are flushed to the metrics
  // registry once per call — never an atomic op inside the hot loop.
  std::uint64_t dedup_hits = 0;

  // Every exit — success, infeasible, budget, node limit — reports the
  // same stats shape: total_nodes, max_level_nodes, and nodes_per_level
  // including any partially built level. Also the single flush point for
  // this call's observability.
  auto finalize_stats = [&] {
    res.stats.total_nodes = parent.size();
    res.stats.max_level_nodes =
        res.stats.nodes_per_level.empty()
            ? 0
            : *std::max_element(res.stats.nodes_per_level.begin(),
                                res.stats.nodes_per_level.end());
    SEGROUTE_COUNT("dp.routes", 1);
    SEGROUTE_COUNT("dp.nodes_created", res.stats.total_nodes);
    SEGROUTE_COUNT("dp.dedup_hits", dedup_hits);
    SEGROUTE_GAUGE_MAX("dp.frontier_high_water", res.stats.max_level_nodes);
    SEGROUTE_GAUGE_MAX("dp.arena_high_water_bytes",
                       arena.capacity() * sizeof(Column));
    for (std::size_t n : res.stats.nodes_per_level) {
      SEGROUTE_HIST("dp.level_nodes", n,
                    {1, 2, 4, 8, 16, 32, 64, 128, 256, 1024, 4096, 16384});
    }
    SEGROUTE_SPAN_TAG(dp_span, "outcome",
                      res.failure == FailureKind::kNone
                          ? "success"
                          : to_string(res.failure));
  };

  // Per-level tables, indexed by class: everything that depends only on
  // (class, connection) is computed once per class per level instead of
  // once per node x class.
  auto& cls_ok = ws.cls_ok;
  auto& cls_free = ws.cls_free;
  auto& cls_w = ws.cls_w;
  cls_ok.assign(static_cast<std::size_t>(num_classes), 0);
  cls_free.assign(static_cast<std::size_t>(num_classes), 0);
  cls_w.assign(static_cast<std::size_t>(num_classes), 0.0);

  // Candidate frontier under construction (reused across expansions).
  auto& scratch = ws.scratch;
  scratch.resize(Ts);

  // Open-addressing dedup table over arena slices: slot -> node id, -1
  // empty. Rebuilt per level, capacity a power of two.
  auto& slots = ws.slots;
  auto& next_level = ws.next_level;
  next_level.clear();
  const auto rehash = [&](std::size_t cap) {
    slots.assign(cap, -1);
    const std::size_t mask = cap - 1;
    for (std::int64_t id : next_level) {
      std::size_t pos =
          static_cast<std::size_t>(hash_slice(
              arena.data() + static_cast<std::size_t>(id) * Ts, Ts)) &
          mask;
      while (slots[pos] >= 0) pos = (pos + 1) & mask;
      slots[pos] = id;
    }
  };

  for (ConnId step = 0; step < M; ++step) {
    const Connection& conn = cs[order[static_cast<std::size_t>(step)]];
    const Column L = conn.left;  // frontier entries are normalized to >= L
    const Column Lnext = (step + 1 < M)
                             ? cs[order[static_cast<std::size_t>(step) + 1]].left
                             : ch.width() + 1;

    // Per-level class tables: K-segment feasibility, Problem-3 edge
    // weight, and the post-route next-free column (already normalized to
    // the next connection's left).
    for (int cl = 0; cl < num_classes; ++cl) {
      const TrackId rep = class_rep(cl);
      if (opts.max_segments > 0) {
        const int spanned =
            idx ? idx->segments_spanned(rep, conn.left, conn.right)
                : ch.track(rep).segments_spanned(conn.left, conn.right);
        if (spanned > opts.max_segments) {
          cls_ok[static_cast<std::size_t>(cl)] = 0;
          continue;
        }
      }
      if (optimizing) {
        const double w = (*opts.weight)(ch, conn, rep);
        if (std::isinf(w)) {
          cls_ok[static_cast<std::size_t>(cl)] = 0;
          continue;
        }
        cls_w[static_cast<std::size_t>(cl)] = w;
      }
      cls_ok[static_cast<std::size_t>(cl)] = 1;
      Column free;
      if (idx) {
        free = idx->next_free_after(rep, conn.right);
      } else {
        const Track& tr = ch.track(rep);
        free = tr.segment(tr.segment_at(conn.right)).right + 1;
      }
      cls_free[static_cast<std::size_t>(cl)] = std::max(free, Lnext);
    }

    next_level.clear();
    std::size_t cap = 64;
    while (cap < level.size() * 4) cap <<= 1;
    slots.assign(cap, -1);
    std::size_t mask = cap - 1;

    for (std::int64_t ni : level) {
      for (int cl = 0; cl < num_classes; ++cl) {
        if (!meter.tick()) {
          res.fail(FailureKind::kBudgetExhausted,
                   "budget exhausted: " + meter.reason());
          res.stats.nodes_per_level.push_back(next_level.size());
          finalize_stats();
          return res;
        }
        // Re-fetch per iteration: the arena may reallocate on insertion.
        const Column* pf =
            arena.data() + static_cast<std::size_t>(ni) * Ts;
        const int cb = class_begin[static_cast<std::size_t>(cl)];
        const int ce = class_begin[static_cast<std::size_t>(cl) + 1];
        // A class can host the connection iff its smallest frontier entry
        // equals L (entries are normalized to >= L, and availability
        // means next-free-column <= left(conn) i.e. == L). In-class
        // entries are sorted, so check the first.
        if (pf[cb] != L) continue;
        if (!cls_ok[static_cast<std::size_t>(cl)]) continue;

        // Build the successor frontier in scratch: the class's first
        // entry (== L) is replaced by the post-route next-free column and
        // repositioned within the (still sorted) class range; everything
        // is normalized to >= Lnext on the way. Clamping by a constant
        // preserves in-class order, so a single insertion suffices — no
        // per-class re-sort.
        const Column v = cls_free[static_cast<std::size_t>(cl)];
        for (int j = 0; j < cb; ++j) scratch[j] = std::max(pf[j], Lnext);
        int j = cb;
        int k = cb + 1;
        for (; k < ce; ++k) {
          const Column x = std::max(pf[k], Lnext);
          if (x >= v) break;
          scratch[j++] = x;
        }
        scratch[j++] = v;
        for (; k < ce; ++k) scratch[j++] = std::max(pf[k], Lnext);
        for (int t2 = ce; t2 < T; ++t2) scratch[t2] = std::max(pf[t2], Lnext);

        const double new_w =
            node_w[static_cast<std::size_t>(ni)] +
            cls_w[static_cast<std::size_t>(cl)];

        std::size_t pos =
            static_cast<std::size_t>(hash_slice(scratch.data(), Ts)) & mask;
        for (;;) {
          const std::int64_t s = slots[pos];
          if (s < 0) {
            if (parent.size() >= opts.max_total_nodes) {
              res.fail(FailureKind::kBudgetExhausted,
                       "assignment graph exceeded node limit");
              res.stats.nodes_per_level.push_back(next_level.size());
              finalize_stats();
              return res;
            }
            const std::int64_t id = static_cast<std::int64_t>(parent.size());
            arena.insert(arena.end(), scratch.begin(), scratch.end());
            parent.push_back(ni);
            edge_class.push_back(cl);
            node_w.push_back(new_w);
            slots[pos] = id;
            next_level.push_back(id);
            if ((next_level.size() + 1) * 2 > slots.size()) {
              rehash(slots.size() * 2);
              mask = slots.size() - 1;
            }
            break;
          }
          if (std::memcmp(arena.data() + static_cast<std::size_t>(s) * Ts,
                          scratch.data(), Ts * sizeof(Column)) == 0) {
            ++dedup_hits;
            if (optimizing && new_w < node_w[static_cast<std::size_t>(s)]) {
              node_w[static_cast<std::size_t>(s)] = new_w;
              parent[static_cast<std::size_t>(s)] = ni;
              edge_class[static_cast<std::size_t>(s)] =
                  static_cast<std::int32_t>(cl);
            }
            break;
          }
          pos = (pos + 1) & mask;
        }
      }
    }
    if (next_level.empty()) {
      res.fail(FailureKind::kInfeasible,
               "no valid assignment of connection " +
                   std::to_string(order[static_cast<std::size_t>(step)]) +
                   " extends any frontier (level " + std::to_string(step + 1) +
                   " empty)");
      res.stats.nodes_per_level.push_back(0);
      finalize_stats();
      return res;
    }
    res.stats.nodes_per_level.push_back(next_level.size());
    std::swap(level, next_level);
  }

  finalize_stats();

  // Pick the terminal node: all frontiers at level M are normalized to
  // width+1 everywhere, so there is exactly one node; under Problem 3 the
  // dedup table already kept the minimum-weight path into it.
  std::int64_t best = level.front();
  for (std::int64_t ni : level) {
    if (node_w[static_cast<std::size_t>(ni)] <
        node_w[static_cast<std::size_t>(best)]) {
      best = ni;
    }
  }

  // Trace back the class choices, then replay forward against real tracks.
  auto& class_choice = ws.class_choice;
  class_choice.assign(static_cast<std::size_t>(M), -1);
  {
    std::int64_t cur = best;
    for (ConnId step = M; step-- > 0;) {
      class_choice[static_cast<std::size_t>(step)] =
          edge_class[static_cast<std::size_t>(cur)];
      cur = parent[static_cast<std::size_t>(cur)];
    }
  }
  auto& next_free = ws.next_free;
  next_free.assign(Ts, 1);
  for (ConnId step = 0; step < M; ++step) {
    const ConnId ci = order[static_cast<std::size_t>(step)];
    const Connection& conn = cs[ci];
    const int cl = class_choice[static_cast<std::size_t>(step)];
    TrackId chosen = kNoTrack;
    for (int m = class_begin[static_cast<std::size_t>(cl)];
         m < class_begin[static_cast<std::size_t>(cl) + 1]; ++m) {
      const TrackId t = class_members[static_cast<std::size_t>(m)];
      if (next_free[static_cast<std::size_t>(t)] <= conn.left) {
        chosen = t;
        break;
      }
    }
    // Guaranteed by the DP invariant; guard anyway.
    if (chosen == kNoTrack) {
      res.fail(FailureKind::kInternal, "internal: replay failed");
      SEGROUTE_SPAN_TAG(dp_span, "outcome", to_string(res.failure));
      return res;
    }
    if (idx) {
      next_free[static_cast<std::size_t>(chosen)] =
          idx->next_free_after(chosen, conn.right);
    } else {
      const Track& tr = ch.track(chosen);
      next_free[static_cast<std::size_t>(chosen)] =
          tr.segment(tr.segment_at(conn.right)).right + 1;
    }
    res.routing.assign(ci, chosen);
  }

  res.weight = optimizing ? node_w[static_cast<std::size_t>(best)] : 0.0;
  res.success = true;
  return res;
}

RouteResult dp_route_unlimited(const SegmentedChannel& ch,
                               const ConnectionSet& cs) {
  return dp_route(ch, cs, DpOptions{});
}

RouteResult dp_route_ksegment(const SegmentedChannel& ch,
                              const ConnectionSet& cs, int k) {
  DpOptions o;
  o.max_segments = k;
  return dp_route(ch, cs, o);
}

RouteResult dp_route_optimal(const SegmentedChannel& ch,
                             const ConnectionSet& cs, const WeightFn& w,
                             int max_segments) {
  DpOptions o;
  o.max_segments = max_segments;
  o.weight = w;
  return dp_route(ch, cs, o);
}

}  // namespace segroute::alg
