#include "alg/dp.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "core/routing.h"

namespace segroute::alg {

namespace {

/// FNV-1a over the frontier vector.
struct FrontierHash {
  std::size_t operator()(const std::vector<Column>& v) const {
    std::uint64_t h = 1469598103934665603ull;
    for (Column c : v) {
      h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(c));
      h *= 1099511628211ull;
    }
    return static_cast<std::size_t>(h);
  }
};

struct Node {
  std::vector<Column> frontier;  // grouped-by-class order, sorted in-class
  std::int64_t parent = -1;
  int edge_class = -1;  // class the connection was assigned to
  double weight = 0.0;  // total weight of best path here (Problem 3)
};

}  // namespace

RouteResult dp_route(const SegmentedChannel& ch, const ConnectionSet& cs,
                     const DpOptions& opts) {
  RouteResult res;
  res.routing = Routing(cs.size());
  if (cs.max_right() > ch.width()) {
    res.fail(FailureKind::kInvalidInput, "connections exceed channel width");
    return res;
  }
  harness::BudgetMeter meter(opts.budget);

  const TrackId T = ch.num_tracks();

  // Build track classes: segmentation types if canonicalizing, singletons
  // otherwise. Tracks are regrouped so each class occupies a contiguous
  // range of frontier positions.
  std::vector<std::vector<TrackId>> class_tracks;
  if (opts.canonicalize_types) {
    class_tracks.resize(static_cast<std::size_t>(ch.num_types()));
    for (TrackId t = 0; t < T; ++t) {
      class_tracks[static_cast<std::size_t>(ch.type_of()[static_cast<std::size_t>(t)])]
          .push_back(t);
    }
  } else {
    class_tracks.resize(static_cast<std::size_t>(T));
    for (TrackId t = 0; t < T; ++t) class_tracks[static_cast<std::size_t>(t)] = {t};
  }
  const int num_classes = static_cast<int>(class_tracks.size());
  std::vector<int> class_begin(static_cast<std::size_t>(num_classes) + 1, 0);
  for (int c = 0; c < num_classes; ++c) {
    class_begin[static_cast<std::size_t>(c) + 1] =
        class_begin[static_cast<std::size_t>(c)] +
        static_cast<int>(class_tracks[static_cast<std::size_t>(c)].size());
  }
  // Representative track per class (identical segmentation within class).
  std::vector<const Track*> class_track(static_cast<std::size_t>(num_classes));
  for (int c = 0; c < num_classes; ++c) {
    class_track[static_cast<std::size_t>(c)] =
        &ch.track(class_tracks[static_cast<std::size_t>(c)].front());
  }

  const std::vector<ConnId> order = cs.sorted_by_left();
  const ConnId M = cs.size();
  const bool optimizing = opts.weight.has_value();

  std::vector<Node> nodes;
  nodes.reserve(1024);
  // Root: every track free; normalized w.r.t. the first connection's left.
  const Column L0 = M > 0 ? cs[order[0]].left : ch.width() + 1;
  nodes.push_back(Node{std::vector<Column>(static_cast<std::size_t>(T), L0),
                       -1, -1, 0.0});
  std::vector<std::int64_t> level = {0};

  res.stats.nodes_per_level.push_back(1);

  for (ConnId step = 0; step < M; ++step) {
    const Connection& conn = cs[order[static_cast<std::size_t>(step)]];
    const Column L = conn.left;  // frontier entries are normalized to >= L
    const Column Lnext = (step + 1 < M)
                             ? cs[order[static_cast<std::size_t>(step) + 1]].left
                             : ch.width() + 1;
    std::unordered_map<std::vector<Column>, std::int64_t, FrontierHash> seen;
    std::vector<std::int64_t> next_level;

    for (std::int64_t ni : level) {
      // NOTE: nodes may reallocate inside the loop; re-fetch by index.
      for (int cl = 0; cl < num_classes; ++cl) {
        if (!meter.tick()) {
          res.fail(FailureKind::kBudgetExhausted,
                   "budget exhausted: " + meter.reason());
          res.stats.total_nodes = nodes.size();
          return res;
        }
        const Column frontier_at_cl = [&] {
          // A class can host the connection iff its smallest frontier entry
          // equals L (entries are normalized to >= L, and availability
          // means next-free-column <= left(conn) i.e. == L). In-class
          // entries are sorted, so check the first.
          return nodes[static_cast<std::size_t>(ni)]
              .frontier[static_cast<std::size_t>(class_begin[static_cast<std::size_t>(cl)])];
        }();
        if (frontier_at_cl != L) continue;

        const Track& tr = *class_track[static_cast<std::size_t>(cl)];
        if (opts.max_segments > 0 &&
            tr.segments_spanned(conn.left, conn.right) > opts.max_segments) {
          continue;
        }
        double edge_w = 0.0;
        if (optimizing) {
          edge_w = (*opts.weight)(ch, conn,
                                  class_tracks[static_cast<std::size_t>(cl)].front());
          if (std::isinf(edge_w)) continue;
        }

        // New frontier: the class's first entry (== L) becomes the column
        // after the last segment the connection occupies; then normalize
        // everything to >= Lnext and re-sort the class range.
        std::vector<Column> f = nodes[static_cast<std::size_t>(ni)].frontier;
        const Column new_free =
            tr.segment(tr.segment_at(conn.right)).right + 1;
        f[static_cast<std::size_t>(class_begin[static_cast<std::size_t>(cl)])] =
            new_free;
        for (Column& v : f) v = std::max(v, Lnext);
        for (int c2 = 0; c2 < num_classes; ++c2) {
          std::sort(f.begin() + class_begin[static_cast<std::size_t>(c2)],
                    f.begin() + class_begin[static_cast<std::size_t>(c2) + 1]);
        }

        const double new_w =
            nodes[static_cast<std::size_t>(ni)].weight + edge_w;
        auto it = seen.find(f);
        if (it == seen.end()) {
          if (nodes.size() >= opts.max_total_nodes) {
            res.fail(FailureKind::kBudgetExhausted,
                     "assignment graph exceeded node limit");
            return res;
          }
          const std::int64_t id = static_cast<std::int64_t>(nodes.size());
          nodes.push_back(Node{f, ni, cl, new_w});
          seen.emplace(std::move(f), id);
          next_level.push_back(id);
        } else if (optimizing &&
                   new_w < nodes[static_cast<std::size_t>(it->second)].weight) {
          Node& n = nodes[static_cast<std::size_t>(it->second)];
          n.parent = ni;
          n.edge_class = cl;
          n.weight = new_w;
        }
      }
    }
    if (next_level.empty()) {
      res.fail(FailureKind::kInfeasible,
               "no valid assignment of connection " +
                   std::to_string(order[static_cast<std::size_t>(step)]) +
                   " extends any frontier (level " + std::to_string(step + 1) +
                   " empty)");
      res.stats.nodes_per_level.push_back(0);
      res.stats.total_nodes = nodes.size();
      res.stats.max_level_nodes =
          *std::max_element(res.stats.nodes_per_level.begin(),
                            res.stats.nodes_per_level.end());
      return res;
    }
    res.stats.nodes_per_level.push_back(next_level.size());
    level = std::move(next_level);
  }

  res.stats.total_nodes = nodes.size();
  res.stats.max_level_nodes = *std::max_element(
      res.stats.nodes_per_level.begin(), res.stats.nodes_per_level.end());

  // Pick the terminal node: all frontiers at level M are normalized to
  // width+1 everywhere, so there is exactly one node; under Problem 3 the
  // map already kept the minimum-weight path into it.
  std::int64_t best = level.front();
  for (std::int64_t ni : level) {
    if (nodes[static_cast<std::size_t>(ni)].weight <
        nodes[static_cast<std::size_t>(best)].weight) {
      best = ni;
    }
  }

  // Trace back the class choices, then replay forward against real tracks.
  std::vector<int> class_choice(static_cast<std::size_t>(M), -1);
  {
    std::int64_t cur = best;
    for (ConnId step = M; step-- > 0;) {
      class_choice[static_cast<std::size_t>(step)] =
          nodes[static_cast<std::size_t>(cur)].edge_class;
      cur = nodes[static_cast<std::size_t>(cur)].parent;
    }
  }
  std::vector<Column> next_free(static_cast<std::size_t>(T), 1);
  for (ConnId step = 0; step < M; ++step) {
    const ConnId ci = order[static_cast<std::size_t>(step)];
    const Connection& conn = cs[ci];
    const int cl = class_choice[static_cast<std::size_t>(step)];
    TrackId chosen = kNoTrack;
    for (TrackId t : class_tracks[static_cast<std::size_t>(cl)]) {
      if (next_free[static_cast<std::size_t>(t)] <= conn.left) {
        chosen = t;
        break;
      }
    }
    // Guaranteed by the DP invariant; guard anyway.
    if (chosen == kNoTrack) {
      res.fail(FailureKind::kInternal, "internal: replay failed");
      return res;
    }
    const Track& tr = ch.track(chosen);
    next_free[static_cast<std::size_t>(chosen)] =
        tr.segment(tr.segment_at(conn.right)).right + 1;
    res.routing.assign(ci, chosen);
  }

  res.weight = optimizing ? nodes[static_cast<std::size_t>(best)].weight : 0.0;
  res.success = true;
  return res;
}

RouteResult dp_route_unlimited(const SegmentedChannel& ch,
                               const ConnectionSet& cs) {
  return dp_route(ch, cs, DpOptions{});
}

RouteResult dp_route_ksegment(const SegmentedChannel& ch,
                              const ConnectionSet& cs, int k) {
  DpOptions o;
  o.max_segments = k;
  return dp_route(ch, cs, o);
}

RouteResult dp_route_optimal(const SegmentedChannel& ch,
                             const ConnectionSet& cs, const WeightFn& w,
                             int max_segments) {
  DpOptions o;
  o.max_segments = max_segments;
  o.weight = w;
  return dp_route(ch, cs, o);
}

}  // namespace segroute::alg
