#include "alg/dp.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "alg/frontier_bits.h"
#include "core/channel_index.h"
#include "core/routing.h"
#include "obs/instrument.h"

namespace segroute::alg {

RouteResult dp_route(const SegmentedChannel& ch, const ConnectionSet& cs,
                     const DpOptions& opts) {
  RouteResult res;
  res.routing = Routing(cs.size());
  SEGROUTE_SPAN(dp_span, "alg.dp_route");
  if (cs.max_right() > ch.width()) {
    res.fail(FailureKind::kInvalidInput, "connections exceed channel width");
    SEGROUTE_SPAN_TAG(dp_span, "outcome", to_string(res.failure));
    return res;
  }
  harness::BudgetMeter meter(opts.budget);
  // With no bound of any kind, tick() can never fail and its counter is
  // unobservable — skip the per-expansion metering entirely.
  const bool metered = !opts.budget.unlimited();

  const TrackId T = ch.num_tracks();
  const std::size_t Ts = static_cast<std::size_t>(T);
  const ChannelIndex* idx = opts.index;

  // All per-call vectors come from a workspace: the caller's, or —
  // when none is supplied — a per-thread fallback, so even the
  // no-workspace path is allocation-free in steady state. Every field is
  // reinitialized per call, so reuse cannot leak state between calls. A
  // re-entrant call on the same thread (a WeightFn that routes, say)
  // finds the fallback busy and degrades to a call-local workspace.
  static thread_local DpWorkspace tl_ws;
  static thread_local bool tl_busy = false;
  DpWorkspace local_ws;
  const bool use_tl = opts.workspace == nullptr && !tl_busy;
  DpWorkspace& ws =
      opts.workspace ? *opts.workspace : (use_tl ? tl_ws : local_ws);
  struct TlGuard {
    bool active;
    bool* flag;
    ~TlGuard() {
      if (active) *flag = false;
    }
  } tl_guard{use_tl, &tl_busy};
  if (use_tl) tl_busy = true;

  // Build track classes: segmentation types if canonicalizing, singletons
  // otherwise. Tracks are regrouped so each class occupies a contiguous
  // range of frontier positions. Flat layout: class cl's members are
  // class_members[class_begin[cl] .. class_begin[cl+1]), in ascending
  // track order (counting sort; type ids are first-appearance ordered).
  auto& class_begin = ws.class_begin;
  auto& class_members = ws.class_members;
  int num_classes;
  if (opts.canonicalize_types) {
    const std::vector<int>& type_of = idx ? idx->type_of() : ch.type_of();
    num_classes = idx ? idx->num_types() : ch.num_types();
    class_begin.assign(static_cast<std::size_t>(num_classes) + 1, 0);
    for (TrackId t = 0; t < T; ++t) {
      ++class_begin[static_cast<std::size_t>(
                        type_of[static_cast<std::size_t>(t)]) +
                    1];
    }
    for (int c = 0; c < num_classes; ++c) {
      class_begin[static_cast<std::size_t>(c) + 1] +=
          class_begin[static_cast<std::size_t>(c)];
    }
    ws.class_cursor.assign(class_begin.begin(), class_begin.end() - 1);
    class_members.resize(Ts);
    for (TrackId t = 0; t < T; ++t) {
      const int cl = type_of[static_cast<std::size_t>(t)];
      class_members[static_cast<std::size_t>(
          ws.class_cursor[static_cast<std::size_t>(cl)]++)] = t;
    }
  } else {
    num_classes = static_cast<int>(T);
    class_begin.resize(Ts + 1);
    class_members.resize(Ts);
    for (TrackId t = 0; t < T; ++t) {
      class_begin[static_cast<std::size_t>(t)] = static_cast<int>(t);
      class_members[static_cast<std::size_t>(t)] = t;
    }
    class_begin[Ts] = static_cast<int>(T);
  }
  // Representative track per class: the first member (lowest id; identical
  // segmentation within a class makes it stand for all of them).
  const auto class_rep = [&](int cl) {
    return class_members[static_cast<std::size_t>(
        class_begin[static_cast<std::size_t>(cl)])];
  };

  cs.sorted_by_left(ws.order);
  const std::vector<ConnId>& order = ws.order;
  const ConnId M = cs.size();
  const bool optimizing = opts.weight.has_value();
  res.stats.nodes_per_level.reserve(static_cast<std::size_t>(M) + 1);

  // Without a ChannelIndex, resolve "first free column after routing
  // through c" from a per-class table built in one pass over each
  // representative track's segments — O(C * width) once per call instead
  // of a segment_at binary search per (level, class) and per replay step.
  // Identical values, since all tracks of a class share one segmentation.
  const std::size_t nf_stride = static_cast<std::size_t>(ch.width()) + 1;
  const Column* nf_tab = nullptr;
  if (!idx) {
    ws.cls_next_free.resize(static_cast<std::size_t>(num_classes) * nf_stride);
    for (int cl = 0; cl < num_classes; ++cl) {
      Column* row =
          ws.cls_next_free.data() + static_cast<std::size_t>(cl) * nf_stride;
      for (const Segment& s : ch.track(class_rep(cl)).segments()) {
        for (Column c = s.left; c <= s.right; ++c) row[c] = s.right + 1;
      }
    }
    nf_tab = ws.cls_next_free.data();
  }

  // Node storage is structure-of-arrays: frontiers live bit-packed in one
  // flat word arena (node i's frontier is arena[i*W .. (i+1)*W) for
  // W = codec.words()), the per-node scalars in parallel vectors. No
  // per-node heap allocation; frontier equality is a compare of W words.
  // Every frontier entry is a column in [0, width+1], so the codec packs
  // bit_width(width+1) bits per track.
  auto& codec = ws.codec;
  codec.init_uniform(Ts, static_cast<std::uint32_t>(ch.width() + 1));
  const std::size_t W = codec.words();
  auto& arena = ws.arena;
  auto& parent = ws.parent;
  auto& edge_class = ws.edge_class;
  auto& node_w = ws.node_w;
  arena.clear();
  arena.reserve(W * 1024);
  parent.clear();
  edge_class.clear();
  node_w.clear();
  parent.reserve(1024);
  edge_class.reserve(1024);
  node_w.reserve(1024);

  // Field widths of the uniform packing: B bits per frontier entry,
  // fields_per_word entries per 64-bit word, fm the per-field mask.
  const std::uint32_t B = codec.uniform_bits();
  const std::uint32_t fpw = codec.fields_per_word();
  const std::uint64_t fm = (1ull << B) - 1;  // B <= 32 always holds here
  const std::size_t Cs = static_cast<std::size_t>(num_classes);

  // Pooled scratch: one i32 buffer carved into the node-in-hand views
  // and the per-class packed-position table, one u64 buffer carved into
  // the clamped words and the probe-batch staging area. Two allocations
  // instead of seven on the call-local path.
  ws.fields.resize(2 * Ts + 3 * Cs);
  std::int32_t* const cur = ws.fields.data();
  std::int32_t* const clamped = cur + Ts;
  // Per class: word index of its first field, bit shift of that field,
  // and whether the whole class range lives in a single word (enabling
  // the branch-free splice below).
  std::int32_t* const cls_pos = clamped + Ts;
  for (int cl = 0; cl < num_classes; ++cl) {
    const std::uint32_t cb =
        static_cast<std::uint32_t>(class_begin[static_cast<std::size_t>(cl)]);
    const std::uint32_t ce = static_cast<std::uint32_t>(
        class_begin[static_cast<std::size_t>(cl) + 1]);
    cls_pos[3 * cl + 0] = static_cast<std::int32_t>(cb / fpw);
    cls_pos[3 * cl + 1] = static_cast<std::int32_t>((cb % fpw) * B);
    cls_pos[3 * cl + 2] = (cb % fpw) + (ce - cb) <= fpw;
  }

  ws.words.resize(W + bits::ProbeBatch::kCapacity * W);
  std::uint64_t* const clamped_words = ws.words.data();
  auto& batch = ws.batch;
  batch.reset(W, clamped_words + W);

  // SWAR scan constants for the one-word fast path: `swar_lo` has bit 0
  // of every field, and pos2cls maps a class representative's top field
  // bit back to its class index. One subtract-and-mask per node then
  // flags every open class whose representative equals L (see the node
  // loop; rare borrow-ripple false positives are re-checked exactly).
  std::uint64_t swar_lo = 0;
  std::uint8_t pos2cls[64] = {};
  if (W == 1) {
    for (std::size_t j = 0; j < Ts; ++j) swar_lo |= 1ull << (j * B);
    for (int cl = 0; cl < num_classes; ++cl) {
      pos2cls[static_cast<std::uint32_t>(cls_pos[3 * cl + 1]) + B - 1] =
          static_cast<std::uint8_t>(cl);
    }
  }

  // Root: every track free; normalized w.r.t. the first connection's left.
  const Column L0 = M > 0 ? cs[order[0]].left : ch.width() + 1;
  for (std::size_t j = 0; j < Ts; ++j) cur[j] = L0;
  arena.resize(W);
  codec.pack(cur, arena.data());
  parent.push_back(-1);
  edge_class.push_back(-1);
  if (optimizing) node_w.push_back(0.0);

  // Levels are contiguous id ranges: ids are handed out in insertion
  // order, so the current level is [lv_begin, lv_end) and the level
  // under construction is [nl_begin, parent.size()) — no level vectors,
  // no per-insert bookkeeping beyond the appends themselves.
  std::int64_t lv_begin = 0;
  std::int64_t lv_end = 1;
  std::int64_t nl_begin = 1;
  res.stats.nodes_per_level.push_back(1);

  // Dedup hits accumulate in a plain local and are flushed to the metrics
  // registry once per call — never an atomic op inside the hot loop.
  std::uint64_t dedup_hits = 0;

  // Every exit — success, infeasible, budget, node limit — reports the
  // same stats shape: total_nodes, max_level_nodes, and nodes_per_level
  // including any partially built level. Also the single flush point for
  // this call's observability.
  auto finalize_stats = [&] {
    res.stats.total_nodes = parent.size();
    res.stats.max_level_nodes =
        res.stats.nodes_per_level.empty()
            ? 0
            : *std::max_element(res.stats.nodes_per_level.begin(),
                                res.stats.nodes_per_level.end());
    SEGROUTE_COUNT("dp.routes", 1);
    SEGROUTE_COUNT("dp.nodes_created", res.stats.total_nodes);
    SEGROUTE_COUNT("dp.dedup_hits", dedup_hits);
    SEGROUTE_GAUGE_MAX("dp.frontier_high_water", res.stats.max_level_nodes);
    // Packed-word bytes actually held — matches workspace_bytes() and
    // the engine's Scratch::bytes_held() accounting.
    SEGROUTE_GAUGE_MAX("dp.arena_high_water_bytes",
                       arena.capacity() * sizeof(arena[0]));
    SEGROUTE_HIST_RANGE("dp.level_nodes", res.stats.nodes_per_level.data(),
                        res.stats.nodes_per_level.size(),
                        {1, 2, 4, 8, 16, 32, 64, 128, 256, 1024, 4096, 16384});
    SEGROUTE_SPAN_TAG(dp_span, "outcome",
                      res.failure == FailureKind::kNone
                          ? "success"
                          : to_string(res.failure));
  };

  // Per-level tables, indexed by class: everything that depends only on
  // (class, connection) is computed once per class per level instead of
  // once per node x class. cls_ok additionally folds into a bitmask so
  // the per-node class scan is a word AND.
  auto& cls_ok = ws.cls_ok;
  auto& cls_free = ws.cls_free;
  auto& cls_w = ws.cls_w;
  cls_ok.assign(Cs, 0);
  cls_free.assign(Cs, 0);
  cls_w.assign(Cs, 0.0);

  // Open-addressing dedup table over packed states. Each slot stores
  // the key *inline* — stride W+1 words: the W key words, then an
  // occupancy word — so a probe compares against one contiguous slot and
  // never chases a pointer into the arena. The occupancy word packs the
  // level epoch (high bits) with the node id + 1 (low 40 bits), so
  // advancing the epoch empties the whole table with no per-level
  // memset; within a call the table only ever grows.
  auto& slots = ws.slots;
  const std::size_t stride = W + 1;
  constexpr std::uint32_t kEpochShift = 40;
  constexpr std::uint64_t kIdMask = (1ull << kEpochShift) - 1;
  // Node ids must fit below the epoch bits; the practical bound is
  // opts.max_total_nodes (the 2^40 ceiling is multi-terabyte territory).
  const std::uint64_t node_cap =
      std::min<std::uint64_t>(opts.max_total_nodes, kIdMask - 1);
  std::uint64_t epoch = 0;
  std::size_t tbl_cap = 0;
  std::size_t mask = 0;
  const auto rehash = [&](std::size_t cap) {
    tbl_cap = cap;
    mask = cap - 1;
    slots.assign(cap * stride, 0);
    for (std::int64_t id = nl_begin;
         id < static_cast<std::int64_t>(parent.size()); ++id) {
      const std::uint64_t* key =
          arena.data() + static_cast<std::size_t>(id) * W;
      std::size_t pos = static_cast<std::size_t>(bits::hash_words(key, W)) & mask;
      while ((slots[pos * stride + W] >> kEpochShift) == epoch) {
        pos = (pos + 1) & mask;
      }
      std::uint64_t* slot = slots.data() + pos * stride;
      for (std::size_t wj = 0; wj < W; ++wj) slot[wj] = key[wj];
      slot[W] =
          (epoch << kEpochShift) | (static_cast<std::uint64_t>(id) + 1);
    }
  };

  // Resolves one candidate against the live table. Returns false iff
  // the node limit was hit (failure recorded; stats NOT yet pushed).
  // Force-inlined with register arguments: this runs once per expansion
  // and must cost neither a call nor a staging-memory round trip.
  // node_w is maintained only under Problem 3 — without weights nothing
  // ever reads it.
  const auto probe_state = [&](const std::uint64_t* key, std::uint64_t h,
                               std::int64_t origin, std::int32_t aux,
                               double wgt) SEGROUTE_BITS_FORCE_INLINE
      -> bool {
    std::size_t pos = static_cast<std::size_t>(h) & mask;
    std::uint64_t* const sl = slots.data();
    for (;;) {
      std::uint64_t* const slot = sl + pos * stride;
      const std::uint64_t occ = slot[W];
      if ((occ >> kEpochShift) != epoch) {
        if (parent.size() >= node_cap) {
          res.fail(FailureKind::kBudgetExhausted,
                   "assignment graph exceeded node limit");
          return false;
        }
        const std::int64_t id = static_cast<std::int64_t>(parent.size());
        if (arena.capacity() - arena.size() < W) {
          arena.reserve(arena.capacity() * 2);
        }
        for (std::size_t wj = 0; wj < W; ++wj) arena.push_back(key[wj]);
        parent.push_back(origin);
        edge_class.push_back(aux);
        if (optimizing) node_w.push_back(wgt);
        for (std::size_t wj = 0; wj < W; ++wj) slot[wj] = key[wj];
        slot[W] =
            (epoch << kEpochShift) | (static_cast<std::uint64_t>(id) + 1);
        const std::size_t nl_count =
            parent.size() - static_cast<std::size_t>(nl_begin);
        if ((nl_count + 1) * 2 > tbl_cap) rehash(tbl_cap * 2);
        return true;
      }
      if (bits::words_equal(slot, key, W)) {
        const auto s = static_cast<std::size_t>((occ & kIdMask) - 1);
        ++dedup_hits;
        if (optimizing && wgt < node_w[s]) {
          node_w[s] = wgt;
          parent[s] = origin;
          edge_class[s] = aux;
        }
        return true;
      }
      pos = (pos + 1) & mask;
    }
  };
  // Single-word specialization of probe_state: key, slot compare and
  // occupancy test all stay in registers (slot stride is 2: key word,
  // occupancy word).
  const auto probe_w1 = [&](std::uint64_t key, std::uint64_t h,
                            std::int64_t origin, std::int32_t aux,
                            double wgt) SEGROUTE_BITS_FORCE_INLINE -> bool {
    std::size_t pos = static_cast<std::size_t>(h) & mask;
    std::uint64_t* const sl = slots.data();
    for (;;) {
      std::uint64_t* const slot = sl + pos * 2;
      const std::uint64_t occ = slot[1];
      if ((occ >> kEpochShift) != epoch) {
        if (parent.size() >= node_cap) {
          res.fail(FailureKind::kBudgetExhausted,
                   "assignment graph exceeded node limit");
          return false;
        }
        const std::int64_t id = static_cast<std::int64_t>(parent.size());
        if (arena.capacity() == arena.size()) {
          arena.reserve(arena.capacity() * 2);
        }
        arena.push_back(key);
        parent.push_back(origin);
        edge_class.push_back(aux);
        if (optimizing) node_w.push_back(wgt);
        slot[0] = key;
        slot[1] =
            (epoch << kEpochShift) | (static_cast<std::uint64_t>(id) + 1);
        const std::size_t nl_count =
            parent.size() - static_cast<std::size_t>(nl_begin);
        if ((nl_count + 1) * 2 > tbl_cap) rehash(tbl_cap * 2);
        return true;
      }
      if (slot[0] == key) {
        const auto s = static_cast<std::size_t>((occ & kIdMask) - 1);
        ++dedup_hits;
        if (optimizing && wgt < node_w[s]) {
          node_w[s] = wgt;
          parent[s] = origin;
          edge_class[s] = aux;
        }
        return true;
      }
      pos = (pos + 1) & mask;
    }
  };
  // Candidates resolve strictly in arrival order, so a flush is
  // semantically identical to immediate probing; prefetching every home
  // slot first just overlaps their cache misses. Inline for the same
  // reason as probe_one: with a batch of 1 this runs once per expansion.
  const auto flush_batch = [&]() -> bool {
    if (batch.count > 1) {
      for (std::size_t i = 0; i < batch.count; ++i) {
        bits::prefetch_ro(
            &slots[(static_cast<std::size_t>(batch.hash[i]) & mask) * stride]);
      }
    }
    for (std::size_t i = 0; i < batch.count; ++i) {
      const bool ok =
          W == 1 ? probe_w1(batch.words[i], batch.hash[i], batch.origin[i],
                            batch.aux[i], batch.weight[i])
                 : probe_state(batch.words + i * W, batch.hash[i],
                               batch.origin[i], batch.aux[i], batch.weight[i]);
      if (!ok) {
        batch.count = 0;
        return false;
      }
    }
    batch.count = 0;
    return true;
  };

  for (ConnId step = 0; step < M; ++step) {
    const Connection& conn = cs[order[static_cast<std::size_t>(step)]];
    const Column L = conn.left;  // frontier entries are normalized to >= L
    const Column Lnext = (step + 1 < M)
                             ? cs[order[static_cast<std::size_t>(step) + 1]].left
                             : ch.width() + 1;

    // Per-level class tables: K-segment feasibility, Problem-3 edge
    // weight, and the post-route next-free column (already normalized to
    // the next connection's left).
    for (int cl = 0; cl < num_classes; ++cl) {
      const TrackId rep = class_rep(cl);
      if (opts.max_segments > 0) {
        const int spanned =
            idx ? idx->segments_spanned(rep, conn.left, conn.right)
                : ch.track(rep).segments_spanned(conn.left, conn.right);
        if (spanned > opts.max_segments) {
          cls_ok[static_cast<std::size_t>(cl)] = 0;
          continue;
        }
      }
      if (optimizing) {
        const double w = (*opts.weight)(ch, conn, rep);
        if (std::isinf(w)) {
          cls_ok[static_cast<std::size_t>(cl)] = 0;
          continue;
        }
        cls_w[static_cast<std::size_t>(cl)] = w;
      }
      cls_ok[static_cast<std::size_t>(cl)] = 1;
      const Column free =
          idx ? idx->next_free_after(rep, conn.right)
              : nf_tab[static_cast<std::size_t>(cl) * nf_stride +
                       static_cast<std::size_t>(conn.right)];
      cls_free[static_cast<std::size_t>(cl)] = std::max(free, Lnext);
    }
    nl_begin = lv_end;
    std::size_t cap = tbl_cap != 0 ? tbl_cap : 64;
    while (cap < static_cast<std::size_t>(lv_end - lv_begin) * 4) cap <<= 1;
    if (++epoch >= (1ull << (64 - kEpochShift))) {
      // Epoch bits exhausted (16M+ levels in one call): hard-clear once
      // and restart the count so stale occupancy can never alias.
      epoch = 1;
      rehash(cap);
    } else if (cap > tbl_cap) {
      rehash(cap);  // the new level is empty: sizes and clears the table
    }
    // Probe batching pays for itself only once the slot array outgrows
    // L1; small levels resolve each candidate immediately (batch of 1 —
    // same code path, same semantics).
    const std::size_t flush_at =
        cap * stride * sizeof(std::uint64_t) >= (32u << 10)
            ? bits::ProbeBatch::kCapacity
            : 1;

    // Budget accounting matches the scalar layout exactly — one tick per
    // (node, class) pair, skipped classes included — but the ticks for
    // runs of closed classes are consumed in bulk, so a budget failure
    // cuts the level at the same expansion it always did. On any failure
    // the staged batch is flushed first: everything that was expanded
    // has its node appended, exactly as with immediate insertion.
    const auto fail_budget = [&]() {
      if (flush_batch()) {
        res.fail(FailureKind::kBudgetExhausted,
                 "budget exhausted: " + meter.reason());
      }
      res.stats.nodes_per_level.push_back(parent.size() -
                                    static_cast<std::size_t>(nl_begin));
      finalize_stats();
    };

    if (W == 1) {
      // Whole-frontier-in-one-word fast path (every channel with
      // fields_per_word() >= tracks, i.e. all typical instances): the
      // node state, its Lnext clamp, the successor splice and the dedup
      // key live in registers end to end. Same arithmetic as the
      // generic loop below — the explored graph is bit-identical.
      const auto Ln =
          static_cast<std::uint64_t>(static_cast<std::uint32_t>(Lnext));
      const auto Lu = static_cast<std::uint64_t>(static_cast<std::uint32_t>(L));
      // Top field bit of every *open* class representative; AND-ing the
      // per-node SWAR zero-detect with this folds the cls_ok test in.
      std::uint64_t ok_hi = 0;
      for (int cl = 0; cl < num_classes; ++cl) {
        if (cls_ok[static_cast<std::size_t>(cl)]) {
          ok_hi |= 1ull
                   << (static_cast<std::uint32_t>(cls_pos[3 * cl + 1]) + B - 1);
        }
      }
      const std::uint64_t bcast_l = swar_lo * Lu;
      for (std::int64_t ni = lv_begin; ni < lv_end; ++ni) {
        const std::uint64_t nodeword = arena[static_cast<std::size_t>(ni)];
        std::uint64_t cw = 0;  // clamped node word, built lazily
        bool clamped_ready = false;
        double base_w = 0.0;
        int last_cl = -1;  // ticks are consumed through this class index
        // Zero-field detect over nodeword ^ broadcast(L): the top bit of
        // a field survives the mask iff that field equals L — except for
        // rare false positives where a borrow ripples out of a lower
        // field (field == L+1 right above a field == L); the exact
        // re-check below rejects those. No false negatives, and bits
        // come out in ascending class order, so the expansion order (and
        // with it every node id) is identical to the full scan.
        const std::uint64_t xw = nodeword ^ bcast_l;
        std::uint64_t cand = (xw - swar_lo) & ~xw & ok_hi;
        while (cand != 0) {
          const auto bpos =
              static_cast<std::uint32_t>(std::countr_zero(cand));
          cand &= cand - 1;
          const std::uint32_t sh = bpos + 1 - B;
          if (((nodeword >> sh) & fm) != Lu) continue;  // borrow ripple
          const int cl = pos2cls[bpos];
          if (metered &&
              !meter.tick(static_cast<std::uint64_t>(cl - last_cl))) {
            fail_budget();
            return res;
          }
          last_cl = cl;
          if (!clamped_ready) {
            if (Lnext == L) {
              // Entries are already normalized to >= L, so an equal
              // next left leaves the word unchanged.
              cw = nodeword;
            } else {
              std::uint64_t x = nodeword;
              for (std::size_t j = 0; j < Ts; ++j, x >>= B) {
                const std::uint64_t f = x & fm;
                cw |= (f > Ln ? f : Ln) << (j * B);
              }
            }
            if (optimizing) base_w = node_w[static_cast<std::size_t>(ni)];
            clamped_ready = true;
          }
          // Splice the post-route next-free column v into the (sorted)
          // class run: cnt = in-class entries below v = v's insertion
          // offset. All shifts on one register word.
          const Column v = cls_free[static_cast<std::size_t>(cl)];
          const auto vv =
              static_cast<std::uint64_t>(static_cast<std::uint32_t>(v));
          const int cb = class_begin[static_cast<std::size_t>(cl)];
          const int ce = class_begin[static_cast<std::size_t>(cl) + 1];
          std::uint32_t cnt = 0;
          {
            std::uint64_t x = cw >> (sh + B);
            for (int k = cb + 1; k < ce; ++k, x >>= B) cnt += (x & fm) < vv;
          }
          const std::uint32_t sj = sh + cnt * B;
          const std::uint64_t below = cw & ((1ull << sh) - 1);
          const std::uint64_t mid =
              (cw >> B) & (((1ull << (cnt * B)) - 1) << sh);
          const std::uint32_t ab = sj + B;
          const std::uint64_t above = ab >= 64 ? 0 : (cw >> ab) << ab;
          const std::uint64_t key = below | mid | (vv << sj) | above;
          const std::uint64_t h = bits::hash_word(key);
          const double wgt = base_w + cls_w[static_cast<std::size_t>(cl)];
          bool inserted_ok;
          if (flush_at == 1) {
            inserted_ok =
                probe_w1(key, h, ni, static_cast<std::int32_t>(cl), wgt);
          } else {
            batch.slot_words()[0] = key;
            batch.push(h, ni, static_cast<std::int32_t>(cl), wgt);
            inserted_ok = !batch.full() || flush_batch();
          }
          if (!inserted_ok) {
            res.stats.nodes_per_level.push_back(parent.size() -
                                    static_cast<std::size_t>(nl_begin));
            finalize_stats();
            return res;
          }
        }
        if (metered &&
            !meter.tick(
                static_cast<std::uint64_t>(num_classes - 1 - last_cl))) {
          fail_budget();
          return res;
        }
      }
    } else {
    for (std::int64_t ni = lv_begin; ni < lv_end; ++ni) {
      const std::size_t nbase = static_cast<std::size_t>(ni) * W;

      // The Lnext clamp is shared by every successor of this node:
      // unpack + clamp + repack happen once, lazily — nodes with no
      // open class never touch their full frontier. node_w[ni] is
      // stable for the whole node (min-weight updates only ever touch
      // next-level ids).
      bool clamped_ready = false;
      double base_w = 0.0;
      int last_cl = -1;  // ticks are consumed through this class index

      // Class scan straight off the packed words: a class can host the
      // connection iff its smallest frontier entry equals L (entries
      // are normalized to >= L, and availability means next-free-column
      // == L; in-class entries are sorted, so the representative is the
      // class's first field). One u64 load + shift + mask per class —
      // the full frontier is never unpacked just to test it. The arena
      // pointer is re-read each iteration because successor inserts may
      // reallocate it mid-node.
      for (int cl = 0; cl < num_classes; ++cl) {
        const auto rep = static_cast<Column>(
            (arena[nbase + static_cast<std::size_t>(cls_pos[3 * cl])] >>
             cls_pos[3 * cl + 1]) &
            fm);
        if (!(static_cast<bool>(cls_ok[static_cast<std::size_t>(cl)]) &
              (rep == L))) {
          continue;
        }
        if (metered &&
              !meter.tick(static_cast<std::uint64_t>(cl - last_cl))) {
          fail_budget();
          return res;
        }
        last_cl = cl;
        if (!clamped_ready) {
          codec.unpack(arena.data() + nbase, cur);
          for (std::size_t j = 0; j < Ts; ++j) {
            clamped[j] = std::max(cur[j], Lnext);
          }
          codec.pack(clamped, clamped_words);
          if (optimizing) base_w = node_w[static_cast<std::size_t>(ni)];
          clamped_ready = true;
        }

        // Successor frontier, built directly in packed form: the
        // class's first entry (== L) is replaced by the post-route
        // next-free column v and repositioned within the (still
        // sorted) class range. Clamping by a constant preserves
        // in-class order, so the insertion offset is just the count
        // of later in-class entries below v. When the class range
        // lives in one word the whole splice — delete field cb, slide
        // the run down B bits, insert v — is a handful of shifts on
        // that word; a class straddling words falls back to per-field
        // rewrites.
        const Column v = cls_free[static_cast<std::size_t>(cl)];
        const int cb = class_begin[static_cast<std::size_t>(cl)];
        const int ce = class_begin[static_cast<std::size_t>(cl) + 1];
        std::uint32_t cnt = 0;
        for (int k = cb + 1; k < ce; ++k) cnt += clamped[k] < v;
        std::uint64_t* dst = batch.slot_words();
        for (std::size_t wj = 0; wj < W; ++wj) dst[wj] = clamped_words[wj];
        if (cls_pos[3 * cl + 2]) {
          const auto wd0 = static_cast<std::size_t>(cls_pos[3 * cl + 0]);
          const auto sh = static_cast<std::uint32_t>(cls_pos[3 * cl + 1]);
          const std::uint64_t word = clamped_words[wd0];
          const std::uint32_t sj = sh + cnt * B;
          const std::uint64_t below = word & ((1ull << sh) - 1);
          const std::uint64_t mid =
              (word >> B) & (((1ull << (cnt * B)) - 1) << sh);
          const std::uint32_t ab = sj + B;
          const std::uint64_t above = ab >= 64 ? 0 : (word >> ab) << ab;
          dst[wd0] =
              below | mid |
              (static_cast<std::uint64_t>(static_cast<std::uint32_t>(v))
               << sj) |
              above;
        } else {
          for (std::uint32_t k = 0; k < cnt; ++k) {
            codec.set_field(dst, static_cast<std::size_t>(cb) + k,
                            clamped[cb + 1 + static_cast<int>(k)]);
          }
          codec.set_field(dst, static_cast<std::size_t>(cb) + cnt, v);
        }

        const std::uint64_t h = bits::hash_words(dst, W);
        const double wgt = base_w + cls_w[static_cast<std::size_t>(cl)];
        bool inserted_ok;
        if (flush_at == 1) {
          // Small level: resolve immediately — dst is the (empty)
          // batch's first staging slot, and every probe argument is
          // still in a register.
          inserted_ok =
              probe_state(dst, h, ni, static_cast<std::int32_t>(cl), wgt);
        } else {
          batch.push(h, ni, static_cast<std::int32_t>(cl), wgt);
          inserted_ok = !batch.full() || flush_batch();
        }
        if (!inserted_ok) {
          res.stats.nodes_per_level.push_back(parent.size() -
                                    static_cast<std::size_t>(nl_begin));
          finalize_stats();
          return res;
        }
      }
      if (metered &&
          !meter.tick(
              static_cast<std::uint64_t>(num_classes - 1 - last_cl))) {
        fail_budget();
        return res;
      }
    }
    }
    if (!flush_batch()) {
      res.stats.nodes_per_level.push_back(parent.size() -
                                    static_cast<std::size_t>(nl_begin));
      finalize_stats();
      return res;
    }
    if (parent.size() == static_cast<std::size_t>(nl_begin)) {
      res.fail(FailureKind::kInfeasible,
               "no valid assignment of connection " +
                   std::to_string(order[static_cast<std::size_t>(step)]) +
                   " extends any frontier (level " + std::to_string(step + 1) +
                   " empty)");
      res.stats.nodes_per_level.push_back(0);
      finalize_stats();
      return res;
    }
    res.stats.nodes_per_level.push_back(parent.size() -
                                    static_cast<std::size_t>(nl_begin));
    lv_begin = nl_begin;
    lv_end = static_cast<std::int64_t>(parent.size());
  }

  finalize_stats();

  // Pick the terminal node: all frontiers at level M are normalized to
  // width+1 everywhere, so there is exactly one node; under Problem 3 the
  // dedup table already kept the minimum-weight path into it.
  std::int64_t best = lv_begin;
  if (optimizing) {
    for (std::int64_t ni = lv_begin; ni < lv_end; ++ni) {
      if (node_w[static_cast<std::size_t>(ni)] <
          node_w[static_cast<std::size_t>(best)]) {
        best = ni;
      }
    }
  }

  // Trace back the class choices, then replay forward against real tracks.
  auto& class_choice = ws.class_choice;
  class_choice.assign(static_cast<std::size_t>(M), -1);
  {
    std::int64_t cur = best;
    for (ConnId step = M; step-- > 0;) {
      class_choice[static_cast<std::size_t>(step)] =
          edge_class[static_cast<std::size_t>(cur)];
      cur = parent[static_cast<std::size_t>(cur)];
    }
  }
  auto& next_free = ws.next_free;
  next_free.assign(Ts, 1);
  for (ConnId step = 0; step < M; ++step) {
    const ConnId ci = order[static_cast<std::size_t>(step)];
    const Connection& conn = cs[ci];
    const int cl = class_choice[static_cast<std::size_t>(step)];
    TrackId chosen = kNoTrack;
    for (int m = class_begin[static_cast<std::size_t>(cl)];
         m < class_begin[static_cast<std::size_t>(cl) + 1]; ++m) {
      const TrackId t = class_members[static_cast<std::size_t>(m)];
      if (next_free[static_cast<std::size_t>(t)] <= conn.left) {
        chosen = t;
        break;
      }
    }
    // Guaranteed by the DP invariant; guard anyway.
    if (chosen == kNoTrack) {
      res.fail(FailureKind::kInternal, "internal: replay failed");
      SEGROUTE_SPAN_TAG(dp_span, "outcome", to_string(res.failure));
      return res;
    }
    next_free[static_cast<std::size_t>(chosen)] =
        idx ? idx->next_free_after(chosen, conn.right)
            : nf_tab[static_cast<std::size_t>(cl) * nf_stride +
                     static_cast<std::size_t>(conn.right)];
    res.routing.assign(ci, chosen);
  }

  res.weight = optimizing ? node_w[static_cast<std::size_t>(best)] : 0.0;
  res.success = true;
  return res;
}

RouteResult dp_route_unlimited(const SegmentedChannel& ch,
                               const ConnectionSet& cs) {
  return dp_route(ch, cs, DpOptions{});
}

RouteResult dp_route_ksegment(const SegmentedChannel& ch,
                              const ConnectionSet& cs, int k) {
  DpOptions o;
  o.max_segments = k;
  return dp_route(ch, cs, o);
}

RouteResult dp_route_optimal(const SegmentedChannel& ch,
                             const ConnectionSet& cs, const WeightFn& w,
                             int max_segments) {
  DpOptions o;
  o.max_segments = max_segments;
  o.weight = w;
  return dp_route(ch, cs, o);
}

}  // namespace segroute::alg
