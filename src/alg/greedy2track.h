// "At Most 2-Segments Per Track" routing: the greedy pool algorithm of
// Section IV-A (Theorem 4). Exact for channels in which every track is
// divided into at most two segments.
#pragma once

#include <vector>

#include "alg/result.h"
#include "core/channel.h"
#include "core/connection.h"

namespace segroute::alg {

/// One step of the algorithm's execution, for trace-style reporting
/// (used to reproduce the narrated run on Fig. 8).
struct Greedy2Event {
  enum class Kind {
    AssignedSegment,  // placed in a single unoccupied segment of `track`
    Pooled,           // no single segment available; appended to pool P
    PoolFlushed,      // |P| == #unoccupied tracks: pool assigned to them
    FinalPoolAssign,  // end-of-input assignment of remaining pool
  };
  Kind kind;
  ConnId conn = kNoConn;   // connection involved (AssignedSegment / Pooled)
  TrackId track = kNoTrack;  // track chosen (AssignedSegment)
  std::vector<std::pair<ConnId, TrackId>> flushed;  // pool placements
};

/// Greedy router for channels with at most two segments per track
/// (Problem 1). Rejects channels where some track has more than two
/// segments with FailureKind::kInvalidInput. Finds a routing whenever
/// one exists (Theorem 4). `events`, if non-null, receives the
/// execution trace.
RouteResult greedy2track_route(const SegmentedChannel& ch,
                               const ConnectionSet& cs,
                               std::vector<Greedy2Event>* events = nullptr);

}  // namespace segroute::alg
