#include "alg/lp_route.h"

#include <algorithm>
#include <cmath>
#include <random>

#include "lp/simplex.h"

namespace segroute::alg {

namespace {

struct VarMap {
  // var id for (conn, track), or -1 when the assignment is not permitted.
  std::vector<int> id;
  TrackId tracks = 0;
  std::vector<std::pair<ConnId, TrackId>> owner;  // var -> (conn, track)

  [[nodiscard]] int at(ConnId c, TrackId t) const {
    return id[static_cast<std::size_t>(c) * static_cast<std::size_t>(tracks) +
              static_cast<std::size_t>(t)];
  }
};

/// Simplex options for the next solve under the remaining budget, or
/// nullopt when the budget is already spent.
std::optional<lp::SolveOptions> next_solve_options(
    const LpRouteOptions& opts, harness::BudgetMeter& meter) {
  if (!meter.ok()) return std::nullopt;
  lp::SolveOptions so;
  if (opts.budget.deadline) {
    so.deadline = std::chrono::steady_clock::now() +
                  std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                      std::chrono::duration<double, std::milli>(
                          std::max(0.0, opts.budget.deadline->count() -
                                            meter.elapsed_ms())));
  }
  if (opts.budget.max_ticks > 0) {
    const std::uint64_t remaining =
        opts.budget.max_ticks > meter.ticks()
            ? opts.budget.max_ticks - meter.ticks()
            : 0;
    if (remaining == 0) return std::nullopt;
    so.max_iterations = static_cast<int>(std::min<std::uint64_t>(
        static_cast<std::uint64_t>(so.max_iterations), remaining));
  }
  return so;
}

/// Maps a non-Optimal simplex status to the failure taxonomy.
FailureKind classify_lp_status(lp::Status s) {
  switch (s) {
    case lp::Status::Infeasible:
      return FailureKind::kInfeasible;
    case lp::Status::IterationLimit:
    case lp::Status::DeadlineExceeded:
      return FailureKind::kBudgetExhausted;
    default:
      return FailureKind::kInternal;  // Unbounded cannot legitimately occur
  }
}

}  // namespace

RouteResult lp_route(const SegmentedChannel& ch, const ConnectionSet& cs,
                     const LpRouteOptions& opts) {
  RouteResult res;
  res.routing = Routing(cs.size());
  if (cs.max_right() > ch.width()) {
    res.fail(FailureKind::kInvalidInput, "connections exceed channel width");
    return res;
  }
  const ConnId M = cs.size();
  const TrackId T = ch.num_tracks();
  if (M == 0) {
    res.success = true;
    return res;
  }
  harness::BudgetMeter meter(opts.budget);

  lp::Problem base;
  VarMap vm;
  vm.tracks = T;
  vm.id.assign(static_cast<std::size_t>(M) * static_cast<std::size_t>(T), -1);
  // Generic objective perturbation: see LpRouteOptions::objective_jitter.
  std::mt19937_64 jrng(opts.jitter_seed);
  std::uniform_real_distribution<double> jit(0.0, opts.objective_jitter);
  for (ConnId i = 0; i < M; ++i) {
    for (TrackId t = 0; t < T; ++t) {
      if (opts.max_segments > 0 &&
          ch.track(t).segments_spanned(cs[i].left, cs[i].right) >
              opts.max_segments) {
        continue;
      }
      // No explicit x <= 1 rows: the per-connection sum constraint below
      // already implies them, and dropping them keeps the tableau small.
      const int v = base.add_variable(
          1.0 + (opts.objective_jitter > 0 ? jit(jrng) : 0.0));
      vm.id[static_cast<std::size_t>(i) * static_cast<std::size_t>(T) +
            static_cast<std::size_t>(t)] = v;
      vm.owner.emplace_back(i, t);
    }
  }
  // (a) each connection to at most one track.
  for (ConnId i = 0; i < M; ++i) {
    std::vector<std::pair<int, double>> terms;
    for (TrackId t = 0; t < T; ++t) {
      if (vm.at(i, t) != -1) terms.emplace_back(vm.at(i, t), 1.0);
    }
    if (!terms.empty()) {
      base.add_constraint(std::move(terms), lp::Relation::LessEq, 1.0);
    }
  }
  // (b) per (track, segment): at most one occupant (the sets P_kj).
  for (TrackId t = 0; t < T; ++t) {
    const Track& tr = ch.track(t);
    for (SegId s = 0; s < tr.num_segments(); ++s) {
      const Segment& seg = tr.segment(s);
      std::vector<std::pair<int, double>> terms;
      for (ConnId i = 0; i < M; ++i) {
        if (vm.at(i, t) == -1) continue;
        if (seg.overlaps(cs[i].left, cs[i].right)) {
          terms.emplace_back(vm.at(i, t), 1.0);
        }
      }
      if (terms.size() > 1) {
        base.add_constraint(std::move(terms), lp::Relation::LessEq, 1.0);
      }
    }
  }

  // Fix-and-resolve loop: `fixed` pins x_v = 1.
  std::vector<int> fixed;
  for (int pass = 0;; ++pass) {
    const auto so = next_solve_options(opts, meter);
    if (!so) {
      meter.tick();  // records the violated bound for reason()
      res.fail(FailureKind::kBudgetExhausted,
               "budget exhausted: " + meter.reason());
      res.stats.rounding_passes = pass;
      return res;
    }
    lp::Problem p = base;  // copy, then append the pins
    for (int v : fixed) {
      p.add_constraint({{v, 1.0}}, lp::Relation::GreaterEq, 1.0);
    }
    const lp::Solution sol = lp::solve(p, *so);
    res.stats.iterations += static_cast<std::uint64_t>(sol.iterations);
    meter.tick(static_cast<std::uint64_t>(sol.iterations));
    if (sol.status != lp::Status::Optimal) {
      res.fail(classify_lp_status(sol.status),
               "LP not optimal (status " +
                   std::to_string(static_cast<int>(sol.status)) + ")");
      return res;
    }
    // Judge coverage by the plain assignment count sum(x), not the
    // (jittered) objective value.
    double assigned_mass = 0.0;
    for (double x : sol.x) assigned_mass += x;
    if (pass == 0) {
      res.stats.lp_objective = assigned_mass;
    }
    if (assigned_mass < static_cast<double>(M) - 1e-6) {
      // On pass 0 the relaxation optimum itself is < M, which *proves*
      // infeasibility (the LP bounds the 0-1 optimum from above); later
      // passes may merely be a rounding dead end.
      res.fail(FailureKind::kInfeasible,
               "LP coverage " + std::to_string(assigned_mass) + " < M = " +
                   std::to_string(M) + ": no routing (or heuristic dead end)");
      res.stats.rounding_passes = pass;
      return res;
    }
    // Integral?
    int most_fractional = -1;
    double best_frac = 1.0 - opts.tolerance;  // want largest value < 1-tol
    bool integral = true;
    for (std::size_t v = 0; v < sol.x.size(); ++v) {
      const double x = sol.x[v];
      if (x > opts.tolerance && x < 1.0 - opts.tolerance) {
        integral = false;
        if (most_fractional == -1 || x > sol.x[static_cast<std::size_t>(
                                              most_fractional)]) {
          most_fractional = static_cast<int>(v);
        }
      }
    }
    (void)best_frac;
    if (integral) {
      if (pass == 0) res.stats.lp_integral = true;
      res.stats.rounding_passes = pass;
      // Extract the routing.
      for (std::size_t v = 0; v < sol.x.size(); ++v) {
        if (sol.x[v] > 1.0 - opts.tolerance) {
          const auto [c, t] = vm.owner[v];
          res.routing.assign(c, t);
        }
      }
      if (!res.routing.is_complete()) {
        res.fail(FailureKind::kInternal,
                 "integral LP left a connection unassigned");
        return res;
      }
      res.success = true;
      return res;
    }
    if (pass >= opts.max_rounding_passes) {
      res.fail(FailureKind::kInfeasible,
               "fractional after " + std::to_string(pass) +
                   " rounding passes");
      res.stats.rounding_passes = pass;
      return res;
    }
    fixed.push_back(most_fractional);
  }
}

RouteResult lp_route_optimal(const SegmentedChannel& ch,
                             const ConnectionSet& cs, const WeightFn& w,
                             const LpRouteOptions& opts) {
  RouteResult res;
  res.routing = Routing(cs.size());
  if (cs.max_right() > ch.width()) {
    res.fail(FailureKind::kInvalidInput, "connections exceed channel width");
    return res;
  }
  const ConnId M = cs.size();
  const TrackId T = ch.num_tracks();
  if (M == 0) {
    res.success = true;
    return res;
  }
  harness::BudgetMeter meter(opts.budget);

  lp::Problem base;
  VarMap vm;
  vm.tracks = T;
  vm.id.assign(static_cast<std::size_t>(M) * static_cast<std::size_t>(T), -1);
  std::mt19937_64 jrng(opts.jitter_seed);
  std::uniform_real_distribution<double> jit(0.0, opts.objective_jitter);
  for (ConnId i = 0; i < M; ++i) {
    for (TrackId t = 0; t < T; ++t) {
      if (opts.max_segments > 0 &&
          ch.track(t).segments_spanned(cs[i].left, cs[i].right) >
              opts.max_segments) {
        continue;
      }
      const double weight = w(ch, cs[i], t);
      if (std::isinf(weight)) continue;
      // Minimize total weight == maximize its negation; jitter breaks
      // degenerate optimal faces exactly as in lp_route.
      const int v = base.add_variable(
          -weight - (opts.objective_jitter > 0 ? jit(jrng) : 0.0));
      vm.id[static_cast<std::size_t>(i) * static_cast<std::size_t>(T) +
            static_cast<std::size_t>(t)] = v;
      vm.owner.emplace_back(i, t);
    }
  }
  // Every connection assigned exactly once (Problem 3 needs completeness).
  for (ConnId i = 0; i < M; ++i) {
    std::vector<std::pair<int, double>> terms;
    for (TrackId t = 0; t < T; ++t) {
      if (vm.at(i, t) != -1) terms.emplace_back(vm.at(i, t), 1.0);
    }
    if (terms.empty()) {
      res.fail(FailureKind::kInfeasible,
               "connection " + std::to_string(i) +
                   " has no finite-weight assignment");
      return res;
    }
    base.add_constraint(std::move(terms), lp::Relation::Equal, 1.0);
  }
  // Per-segment capacity.
  for (TrackId t = 0; t < T; ++t) {
    const Track& tr = ch.track(t);
    for (SegId s = 0; s < tr.num_segments(); ++s) {
      const Segment& seg = tr.segment(s);
      std::vector<std::pair<int, double>> terms;
      for (ConnId i = 0; i < M; ++i) {
        if (vm.at(i, t) == -1) continue;
        if (seg.overlaps(cs[i].left, cs[i].right)) {
          terms.emplace_back(vm.at(i, t), 1.0);
        }
      }
      if (terms.size() > 1) {
        base.add_constraint(std::move(terms), lp::Relation::LessEq, 1.0);
      }
    }
  }

  std::vector<int> fixed;
  for (int pass = 0;; ++pass) {
    const auto so = next_solve_options(opts, meter);
    if (!so) {
      meter.tick();  // records the violated bound for reason()
      res.fail(FailureKind::kBudgetExhausted,
               "budget exhausted: " + meter.reason());
      res.stats.rounding_passes = pass;
      return res;
    }
    lp::Problem p = base;
    for (int v : fixed) {
      p.add_constraint({{v, 1.0}}, lp::Relation::GreaterEq, 1.0);
    }
    const lp::Solution sol = lp::solve(p, *so);
    res.stats.iterations += static_cast<std::uint64_t>(sol.iterations);
    meter.tick(static_cast<std::uint64_t>(sol.iterations));
    if (sol.status != lp::Status::Optimal) {
      // An infeasible LP here is a proof: the == rows demand a complete
      // fractional assignment, which any true routing would satisfy.
      res.fail(classify_lp_status(sol.status),
               "LP not optimal (status " +
                   std::to_string(static_cast<int>(sol.status)) + ")");
      res.stats.rounding_passes = pass;
      return res;
    }
    int most_fractional = -1;
    bool integral = true;
    for (std::size_t v = 0; v < sol.x.size(); ++v) {
      const double x = sol.x[v];
      if (x > opts.tolerance && x < 1.0 - opts.tolerance) {
        integral = false;
        if (most_fractional == -1 ||
            x > sol.x[static_cast<std::size_t>(most_fractional)]) {
          most_fractional = static_cast<int>(v);
        }
      }
    }
    if (integral) {
      if (pass == 0) res.stats.lp_integral = true;
      res.stats.rounding_passes = pass;
      for (std::size_t v = 0; v < sol.x.size(); ++v) {
        if (sol.x[v] > 1.0 - opts.tolerance) {
          const auto [c, t] = vm.owner[v];
          res.routing.assign(c, t);
        }
      }
      if (!res.routing.is_complete()) {
        res.fail(FailureKind::kInternal,
                 "integral LP left a connection unassigned");
        return res;
      }
      double total = 0.0;
      for (ConnId i = 0; i < M; ++i) {
        total += w(ch, cs[i], res.routing.track_of(i));
      }
      res.weight = total;
      res.success = true;
      return res;
    }
    if (pass >= opts.max_rounding_passes) {
      res.fail(FailureKind::kInfeasible,
               "fractional after " + std::to_string(pass) +
                   " rounding passes");
      res.stats.rounding_passes = pass;
      return res;
    }
    fixed.push_back(most_fractional);
  }
}

}  // namespace segroute::alg
