// Bit-parallel frontier packing shared by the DP routers.
//
// Both assignment-graph DPs (alg/dp.cpp, alg/generalized_dp.cpp) spend
// their hot loop creating, hashing, and deduplicating per-track frontier
// states. The scalar layout stored those states as arrays of 32-bit
// fields, so every dedup probe walked 4*T (or 16*T) bytes and every hash
// mixed one field at a time. The values themselves are tiny — a frontier
// column is bounded by width+1 and an occupant id by the connection
// count — so a whole state fits in one or two 64-bit words.
//
// This header is that packing layer:
//
//  - FrontierCodec: packs a fixed sequence of small non-negative fields
//    into consecutive u64 words (fields never straddle a word boundary,
//    so a single field can be rewritten with two masked ops). Packing is
//    injective — distinct field vectors give distinct words — which is
//    what keeps word-compare dedup *exact*, not approximate. Uniform
//    layouts (all fields one width — the DP frontier) run a table-free
//    path: pure shift chains, no per-field memory traffic and no heap
//    allocation at init.
//  - hash_words: word-at-a-time mix (splitmix64 finalizer per word)
//    replacing field-at-a-time FNV-1a.
//  - words_equal: branchless state equality over 1..n words.
//  - ProbeBatch: a small staging area that defers open-addressing
//    probes so the slot-array cache misses of 4-8 candidates overlap.
//    Candidates are resolved strictly in arrival order, so dedup
//    semantics (node ids, insertion order, min-weight updates) are
//    identical to probing immediately. Storage is caller-provided so a
//    workspace can pool it with its other word buffers.
//
// Everything here is plain portable C++ — word ops only, no intrinsics;
// the win comes from the data layout, and the clamp/pack loops are
// written to auto-vectorize (see DESIGN.md §13).
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/types.h"

namespace segroute::alg::bits {

/// splitmix64 finalizer: full-avalanche 64-bit mix, so states differing
/// in a single packed field land in unrelated hash buckets.
inline std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

/// Word-at-a-time state hash. Seeded by the word count so slices of
/// different shapes never alias.
inline std::uint64_t hash_words(const std::uint64_t* w, std::size_t n) {
  std::uint64_t h = 0x9e3779b97f4a7c15ull + n;
  for (std::size_t i = 0; i < n; ++i) h = mix64(h ^ w[i]);
  return h;
}

/// hash_words for the single-word case with the key in a register:
/// identical to hash_words(&w, 1) bit for bit.
inline std::uint64_t hash_word(std::uint64_t w) {
  return mix64((0x9e3779b97f4a7c15ull + 1) ^ w);
}

/// Branchless equality over n words (n is 1 or 2 for typical channels;
/// OR-reducing the XORs beats an early-exit memcmp at those sizes).
inline bool words_equal(const std::uint64_t* a, const std::uint64_t* b,
                        std::size_t n) {
  std::uint64_t d = 0;
  for (std::size_t i = 0; i < n; ++i) d |= a[i] ^ b[i];
  return d == 0;
}

/// Read-prefetch that compiles away where unsupported.
inline void prefetch_ro(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, 0, 3);
#endif
}

// Forces a lambda's call operator inline. The DP routers resolve one
// dedup probe per expansion through a local lambda; left to heuristics,
// GCC keeps it out of line and pays a spill/call per expansion.
#if defined(__GNUC__) || defined(__clang__)
#define SEGROUTE_BITS_FORCE_INLINE __attribute__((always_inline))
#else
#define SEGROUTE_BITS_FORCE_INLINE
#endif

/// Packs n fixed-width bitfields into consecutive 64-bit words.
///
/// The field sequence is a width *pattern* repeated `repeat` times
/// (pattern {7} x T for the DP's per-track columns; {7,6,6,6} x T for
/// the generalized DP's per-track Entry). Fields are assigned to words
/// greedily in order and never straddle a word boundary, so field i
/// lives entirely at word_of(i) >> shift(i). All fields must be
/// non-negative and fit their declared width; pack() masks nothing —
/// the caller guarantees the bound (both DPs derive widths from
/// bit_width of the true maxima).
///
/// init_uniform() allocates nothing; init() (heterogeneous patterns)
/// builds per-field layout tables but reuses their capacity, so a codec
/// embedded in a long-lived workspace is allocation-free once warm.
class FrontierCodec {
 public:
  void init(const std::uint8_t* pattern, std::size_t pattern_len,
            std::size_t repeat) {
    const std::size_t n = pattern_len * repeat;
    num_fields_ = n;
    if (pattern_len == 1) {
      init_uniform_bits(n, pattern[0]);
      return;
    }
    uniform_bits_ = 0;
    fields_per_word_ = 0;
    word_of_.resize(n);
    shift_.resize(n);
    mask_.resize(n);
    std::uint32_t word = 0;
    std::uint32_t bit = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t w = pattern[i % pattern_len];
      if (bit + w > 64) {
        ++word;
        bit = 0;
      }
      word_of_[i] = word;
      shift_[i] = static_cast<std::uint8_t>(bit);
      mask_[i] = (w >= 64) ? ~0ull : ((1ull << w) - 1);
      bit += w;
    }
    words_ = n == 0 ? 0 : word + 1;
  }

  /// n fields, each holding values in [0, max_value]. Table-free.
  void init_uniform(std::size_t n, std::uint32_t max_value) {
    num_fields_ = n;
    init_uniform_bits(
        n, static_cast<std::uint8_t>(std::bit_width(max_value | 1u)));
  }

  [[nodiscard]] std::size_t words() const { return words_; }
  [[nodiscard]] std::size_t num_fields() const { return num_fields_; }
  /// Bits per field (uniform layouts; 0 when heterogeneous).
  [[nodiscard]] std::uint32_t uniform_bits() const { return uniform_bits_; }
  [[nodiscard]] std::uint32_t fields_per_word() const {
    return fields_per_word_;
  }

  /// Packs num_fields() non-negative values into words() words.
  void pack(const std::int32_t* vals, std::uint64_t* out) const {
    const std::size_t n = num_fields_;
    if (uniform_bits_ != 0 || n == 0) {
      const std::uint32_t B = uniform_bits_;
      std::size_t i = 0;
      for (std::size_t w = 0; w < words_; ++w) {
        const std::size_t lim = std::min<std::size_t>(fields_per_word_, n - i);
        std::uint64_t x = 0;
        std::uint32_t s = 0;
        for (std::size_t k = 0; k < lim; ++k, s += B) {
          x |= static_cast<std::uint64_t>(static_cast<std::uint32_t>(vals[i++]))
               << s;
        }
        out[w] = x;
      }
      return;
    }
    for (std::size_t w = 0; w < words_; ++w) out[w] = 0;
    for (std::size_t i = 0; i < n; ++i) {
      out[word_of_[i]] |=
          static_cast<std::uint64_t>(static_cast<std::uint32_t>(vals[i]))
          << shift_[i];
    }
  }

  void unpack(const std::uint64_t* in, std::int32_t* vals) const {
    const std::size_t n = num_fields_;
    if (uniform_bits_ != 0 || n == 0) {
      const std::uint32_t B = uniform_bits_;
      const std::uint64_t fm = field_mask(B);
      std::size_t i = 0;
      for (std::size_t w = 0; w < words_; ++w) {
        const std::size_t lim = std::min<std::size_t>(fields_per_word_, n - i);
        std::uint64_t x = in[w];
        for (std::size_t k = 0; k < lim; ++k, x >>= B) {
          vals[i++] = static_cast<std::int32_t>(x & fm);
        }
      }
      return;
    }
    for (std::size_t i = 0; i < n; ++i) {
      vals[i] =
          static_cast<std::int32_t>((in[word_of_[i]] >> shift_[i]) & mask_[i]);
    }
  }

  /// Overwrites field i in an already packed state.
  void set_field(std::uint64_t* words, std::size_t i, std::int32_t v) const {
    std::size_t w;
    std::uint32_t s;
    std::uint64_t fm;
    if (uniform_bits_ != 0) {
      w = i / fields_per_word_;
      s = static_cast<std::uint32_t>(i % fields_per_word_) * uniform_bits_;
      fm = field_mask(uniform_bits_);
    } else {
      w = word_of_[i];
      s = shift_[i];
      fm = mask_[i];
    }
    words[w] = (words[w] & ~(fm << s)) |
               (static_cast<std::uint64_t>(static_cast<std::uint32_t>(v)) << s);
  }

  /// Heap bytes retained by the layout tables (for workspace accounting;
  /// zero for uniform layouts).
  [[nodiscard]] std::size_t bytes_held() const {
    return word_of_.capacity() * sizeof(word_of_[0]) +
           shift_.capacity() * sizeof(shift_[0]) +
           mask_.capacity() * sizeof(mask_[0]);
  }

 private:
  static std::uint64_t field_mask(std::uint32_t bits) {
    return bits >= 64 ? ~0ull : ((1ull << bits) - 1);
  }

  void init_uniform_bits(std::size_t n, std::uint8_t bits) {
    uniform_bits_ = bits;
    fields_per_word_ = bits != 0 ? 64u / bits : 1;
    words_ = n == 0 ? 0 : (n + fields_per_word_ - 1) / fields_per_word_;
  }

  std::vector<std::uint32_t> word_of_;
  std::vector<std::uint8_t> shift_;
  std::vector<std::uint64_t> mask_;
  std::size_t words_ = 0;
  std::size_t num_fields_ = 0;
  std::uint32_t uniform_bits_ = 0;  // field width when uniform, else 0
  std::uint32_t fields_per_word_ = 0;
};

/// Deferred dedup probes over an open-addressing table of packed states.
///
/// The caller stages a candidate by writing its packed words to
/// slot_words() and push()ing its hash and metadata, then flushes when
/// `count` reaches the level's batch size — prefetching every staged
/// candidate's home slot first, then resolving them one by one in
/// arrival order against the live table. Because resolution is
/// sequential, a candidate sees every earlier candidate's insertion
/// exactly as immediate probing would; only the memory latency of the
/// initial slot loads is overlapped. Word storage is caller-provided
/// (reset()), so a workspace can pool it with its other buffers.
struct ProbeBatch {
  static constexpr std::size_t kCapacity = 8;

  std::size_t count = 0;
  std::size_t words_per_state = 0;
  std::uint64_t hash[kCapacity];
  std::int64_t origin[kCapacity];  // parent node id
  std::int32_t aux[kCapacity];     // edge label: class (DP) / track (GDP)
  double weight[kCapacity];        // Problem-3 path weight (DP only)
  std::uint64_t* words = nullptr;  // candidate i at [i*words_per_state, ..)

  /// Binds the staging storage; `storage` must hold at least
  /// kCapacity * wps words and outlive the batch's use.
  void reset(std::size_t wps, std::uint64_t* storage) {
    count = 0;
    words_per_state = wps;
    words = storage;
  }

  [[nodiscard]] bool full() const { return count == kCapacity; }
  [[nodiscard]] std::uint64_t* slot_words() {
    return words + count * words_per_state;
  }

  /// Stages the candidate whose packed words were already written to
  /// slot_words().
  void push(std::uint64_t h, std::int64_t ni, std::int32_t a, double w) {
    hash[count] = h;
    origin[count] = ni;
    aux[count] = a;
    weight[count] = w;
    ++count;
  }
};

}  // namespace segroute::alg::bits
