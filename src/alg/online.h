// Incremental (online) segmented-channel routing: insert and remove
// connections one at a time, with an optional single-level rip-up-and-
// re-route on failure. This is the engine an interactive FPGA tool needs
// (incremental design changes), built on the same occupancy model as the
// batch routers.
#pragma once

#include <optional>
#include <vector>

#include "alg/result.h"
#include "core/channel.h"
#include "core/connection.h"
#include "core/routing.h"

namespace segroute::alg {

/// Error contract: like the batch routers, this stateful API never
/// throws on caller errors. An out-of-range span passed to insert()/
/// insert_with_ripup() yields nullopt with last_failure() ==
/// FailureKind::kInvalidInput (vs kInfeasible when no feasible track
/// exists); an unknown/removed connection id makes remove() return
/// false and reroute()/track_of() return kNoTrack. connection() has a
/// precondition instead (see below). The object is unchanged by any
/// rejected call.
class OnlineRouter {
 public:
  enum class Policy {
    FirstFit,  // lowest-index feasible track
    BestFit,   // feasible track minimizing occupied segment length
  };

  /// `max_segments` = 0 for unlimited, K > 0 for K-segment routing.
  explicit OnlineRouter(SegmentedChannel channel,
                        Policy policy = Policy::BestFit, int max_segments = 0);

  /// Inserts a connection; returns its id on success (stable across
  /// removals of other connections), or nullopt on failure —
  /// last_failure() then says whether the span was invalid
  /// (kInvalidInput) or no feasible track exists under the policy
  /// (kInfeasible).
  std::optional<ConnId> insert(Column left, Column right,
                               std::string name = {});

  /// Inserts with single-level rip-up: if plain insertion fails, tries
  /// evicting one placed connection that blocks some track, inserting the
  /// new connection there, and re-placing the evicted one elsewhere.
  /// Either both end up placed or the state is left unchanged. Failure
  /// reporting as insert().
  std::optional<ConnId> insert_with_ripup(Column left, Column right,
                                          std::string name = {});

  /// Why the most recent insert()/insert_with_ripup() returned nullopt
  /// (kNone after a successful one).
  [[nodiscard]] FailureKind last_failure() const { return last_failure_; }

  /// Removes a previously inserted connection (its id becomes invalid).
  /// Returns false (and changes nothing) for unknown/removed ids.
  bool remove(ConnId id);

  /// Moves a placed connection to the best feasible track under the
  /// policy (possibly the one it is already on). Returns the new track,
  /// or kNoTrack (and changes nothing) for unknown/removed ids.
  TrackId reroute(ConnId id);

  [[nodiscard]] const SegmentedChannel& channel() const { return channel_; }
  [[nodiscard]] int num_placed() const { return num_placed_; }
  [[nodiscard]] bool is_placed(ConnId id) const;
  /// Track of a placed connection, or kNoTrack for unknown/removed ids.
  [[nodiscard]] TrackId track_of(ConnId id) const;
  /// Precondition: is_placed(id). The one accessor that cannot report
  /// failure in-band; callers check is_placed() first.
  [[nodiscard]] const Connection& connection(ConnId id) const;

  /// Snapshot of the current state as a (ConnectionSet, Routing) pair —
  /// valid by construction; tests re-validate it.
  [[nodiscard]] std::pair<ConnectionSet, Routing> snapshot() const;

 private:
  [[nodiscard]] std::optional<TrackId> pick_track(const Connection& c) const;
  [[nodiscard]] bool feasible_on(const Connection& c, TrackId t) const;

  SegmentedChannel channel_;
  Policy policy_;
  int max_segments_;
  FailureKind last_failure_ = FailureKind::kNone;
  Occupancy occ_;
  std::vector<Connection> conns_;   // slot per id; removed slots stay
  std::vector<TrackId> track_of_;   // kNoTrack when removed
  std::vector<bool> live_;
  int num_placed_ = 0;
};

}  // namespace segroute::alg
