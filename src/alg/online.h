// Incremental (online) segmented-channel routing: insert and remove
// connections one at a time, with an optional single-level rip-up-and-
// re-route on failure. This is the engine an interactive FPGA tool needs
// (incremental design changes), built on the same occupancy model as the
// batch routers.
//
// Two API generations coexist:
//
//  - the legacy per-call API (insert / insert_with_ripup / remove /
//    reroute): best-effort heuristics with no cross-call invariant;
//  - the delta API (apply(ChannelEdit)): maintains the *canonical*
//    routing of the live connection sequence (alg/delta.h) via localized
//    repair with a full-DP fallback, so an editing session stays
//    bit-identical to routing its connection set from scratch.
//
// Both operate on arbitrary segmentation with K-segment limits; the hot
// lookups (segment spans, fit scans, best-fit lengths, repair-window
// closure) go through an owned ChannelIndex instead of per-call binary
// searches.
#pragma once

#include <optional>
#include <vector>

#include "alg/delta.h"
#include "alg/result.h"
#include "core/channel.h"
#include "core/channel_index.h"
#include "core/connection.h"
#include "core/routing.h"
#include "harness/budget.h"

namespace segroute::alg {

/// Error contract: like the batch routers, this stateful API never
/// throws on caller errors. An out-of-range span passed to insert()/
/// insert_with_ripup() yields nullopt with last_failure() ==
/// FailureKind::kInvalidInput (vs kInfeasible when no feasible track
/// exists); an unknown/removed connection id makes remove() return
/// false and reroute()/track_of() return kNoTrack; a malformed
/// ChannelEdit makes apply() fail with kInvalidInput. The object is
/// unchanged by any rejected call, including a failed apply() whose DP
/// fallback ran out of budget (rollback is part of the contract).
class OnlineRouter {
 public:
  enum class Policy {
    FirstFit,  // lowest-index feasible track
    BestFit,   // feasible track minimizing occupied segment length
  };

  /// `max_segments` = 0 for unlimited, K > 0 for K-segment routing.
  /// Any segmentation is accepted (the historical le-2-segments
  /// restriction is gone — the router indexes the channel it is given).
  explicit OnlineRouter(SegmentedChannel channel,
                        Policy policy = Policy::BestFit, int max_segments = 0);

  // The owned ChannelIndex borrows the channel member, so the router is
  // pinned to its address; hold it in a unique_ptr (or a node-stable
  // container) when it must outlive a scope.
  OnlineRouter(const OnlineRouter&) = delete;
  OnlineRouter& operator=(const OnlineRouter&) = delete;

  /// Inserts a connection; returns its id on success (stable across
  /// removals of other connections), or nullopt on failure —
  /// last_failure() then says whether the span was invalid
  /// (kInvalidInput) or no feasible track exists under the policy
  /// (kInfeasible).
  std::optional<ConnId> insert(Column left, Column right,
                               std::string name = {});

  /// Inserts with single-level rip-up: if plain insertion fails, tries
  /// evicting one placed connection that blocks some track, inserting the
  /// new connection there, and re-placing the evicted one elsewhere.
  /// Either both end up placed or the state is left unchanged. Failure
  /// reporting as insert().
  std::optional<ConnId> insert_with_ripup(Column left, Column right,
                                          std::string name = {});

  /// Why the most recent mutating call failed; kNone after every
  /// successful insert()/insert_with_ripup()/remove()/reroute()/apply().
  /// A rejected remove()/reroute() (unknown id) leaves it untouched, as
  /// those report failure in-band.
  [[nodiscard]] FailureKind last_failure() const { return last_failure_; }

  /// Removes a previously inserted connection (its id becomes invalid).
  /// Returns false (and changes nothing) for unknown/removed ids.
  bool remove(ConnId id);

  /// Moves a placed connection to the best feasible track under the
  /// policy (possibly the one it is already on). Returns the new track,
  /// or kNoTrack (and changes nothing) for unknown/removed ids.
  TrackId reroute(ConnId id);

  /// The delta API: applies one add/remove/move edit while maintaining
  /// the canonical routing of the live sequence (alg/delta.h). First a
  /// localized repair re-places only the connections inside the edit's
  /// segment-closed dirty column window; if that leaves one unplaced,
  /// the exact DP re-routes the full live set under `budget`; if even
  /// that fails, the edit is rejected and the state rolled back
  /// bit-identically. The returned RepairOutcome is the receipt: which
  /// path ran, the affected window, and the new/target connection id.
  /// After any successful apply(), snapshot() equals
  /// delta.h's from_scratch() on the same live set, bit for bit.
  RepairOutcome apply(const ChannelEdit& edit,
                      const harness::Budget& budget = {});

  /// True while the live state is the canonical *greedy* routing (the
  /// invariant the localized repair relies on). Cleared by a DP
  /// fallback and by the legacy mutators that break the canonical
  /// construction (insert_with_ripup/remove/reroute); the next apply()
  /// then renormalizes over the full width before repairing locally
  /// again.
  [[nodiscard]] bool greedy_canonical() const { return greedy_canonical_; }

  [[nodiscard]] const SegmentedChannel& channel() const { return channel_; }
  [[nodiscard]] const ChannelIndex& index() const { return index_; }
  [[nodiscard]] int num_placed() const { return num_placed_; }
  [[nodiscard]] bool is_placed(ConnId id) const;
  /// Track of a placed connection, or kNoTrack for unknown/removed ids.
  [[nodiscard]] TrackId track_of(ConnId id) const;
  /// Precondition: is_placed(id). The one accessor that cannot report
  /// failure in-band; callers check is_placed() first.
  [[nodiscard]] const Connection& connection(ConnId id) const;

  /// Snapshot of the current state as a (ConnectionSet, Routing) pair —
  /// valid by construction; tests re-validate it. Live connections
  /// appear in increasing id order (the canonical sequence order).
  [[nodiscard]] std::pair<ConnectionSet, Routing> snapshot() const;

 private:
  [[nodiscard]] std::optional<TrackId> pick_track(const Connection& c) const;
  [[nodiscard]] bool feasible_on(const Connection& c, TrackId t) const;

  /// Expands [lo, hi] until every segment (on any track) it intersects
  /// lies entirely inside it — the closure that makes a dirty column
  /// window safe to repair in isolation.
  void close_over_segments(Column& lo, Column& hi) const;

  /// Re-places every live connection whose span intersects the
  /// segment-closed window grown from [lo, hi] (cascading the closure
  /// over affected spans to a fixpoint), in increasing id order. On
  /// success the state is the canonical greedy routing restricted to
  /// the window; on failure (some connection unplaced) returns false
  /// with the occupancy partially rebuilt — callers fall back to DP or
  /// roll back via a Memento.
  bool repair_window(Column lo, Column hi, RepairOutcome& out);

  /// Routes the full live set with the registry DP (the canonical
  /// fallback regime). On success installs the DP routing and clears
  /// greedy_canonical_; on failure leaves the state for the caller to
  /// roll back.
  bool full_dp(const harness::Budget& budget, RepairOutcome& out);

  /// Copy-out/copy-in rollback state for apply()'s failure contract.
  struct Memento {
    std::vector<Connection> conns;
    std::vector<TrackId> track_of;
    std::vector<bool> live;
    Occupancy occ;
    int num_placed;
    bool greedy_canonical;
  };
  [[nodiscard]] Memento save_state() const;
  void restore_state(Memento&& m);

  SegmentedChannel channel_;
  ChannelIndex index_;  // must follow channel_ (borrows it)
  Policy policy_;
  int max_segments_;
  FailureKind last_failure_ = FailureKind::kNone;
  Occupancy occ_;
  std::vector<Connection> conns_;   // slot per id; removed slots stay
  std::vector<TrackId> track_of_;   // kNoTrack when removed
  std::vector<bool> live_;
  int num_placed_ = 0;
  bool greedy_canonical_ = true;
};

}  // namespace segroute::alg
