#include "alg/delta.h"

#include <limits>

#include "alg/registry.h"
#include "core/routing.h"

namespace segroute::alg {

const char* to_string(ChannelEdit::Kind k) {
  switch (k) {
    case ChannelEdit::Kind::kAdd: return "add";
    case ChannelEdit::Kind::kRemove: return "remove";
    case ChannelEdit::Kind::kMove: return "move";
  }
  return "?";
}

const char* to_string(RepairOutcome::Path p) {
  switch (p) {
    case RepairOutcome::Path::kNone: return "none";
    case RepairOutcome::Path::kRepair: return "repair";
    case RepairOutcome::Path::kFullDp: return "full-dp";
  }
  return "?";
}

CanonicalResult from_scratch(const SegmentedChannel& ch,
                             const ConnectionSet& cs, bool policy_best_fit,
                             int max_segments, const harness::Budget& budget) {
  CanonicalResult out;
  out.result.routing = Routing(cs.size());

  // Canonical greedy: insert in id order, picking the policy's track with
  // the same scan order and tie-breaks as OnlineRouter::pick_track. This
  // deliberately goes through Track (binary-search segment_at), not
  // ChannelIndex, so the incremental engine is diffed against an
  // independently derived answer.
  Occupancy occ(ch);
  bool greedy_ok = true;
  for (ConnId i = 0; i < cs.size(); ++i) {
    const Connection& c = cs[i];
    if (c.left < 1 || c.left > c.right || c.right > ch.width()) {
      out.result.fail(FailureKind::kInvalidInput,
                      "delta: connection " + std::to_string(i) +
                          " has an invalid span");
      return out;
    }
    std::optional<TrackId> best;
    Column best_len = std::numeric_limits<Column>::max();
    for (TrackId t = 0; t < ch.num_tracks(); ++t) {
      if (max_segments > 0 &&
          ch.track(t).segments_spanned(c.left, c.right) > max_segments) {
        continue;
      }
      if (!occ.fits(t, c.left, c.right)) continue;
      if (!policy_best_fit) {
        best = t;
        break;
      }
      const Column len = ch.track(t).occupied_length(c.left, c.right);
      if (len < best_len) {
        best_len = len;
        best = t;
      }
    }
    if (!best) {
      greedy_ok = false;
      break;
    }
    occ.place(*best, c.left, c.right, i);
    out.result.routing.assign(i, *best);
  }
  if (greedy_ok) {
    out.result.success = true;
    out.regime = CanonicalRegime::kGreedy;
    return out;
  }

  // Greedy left a connection unplaced: canonical(S) is the exact DP's
  // answer (registry "dp", default options — the session's fallback calls
  // it the same way, so the routings agree bit for bit).
  RouteRequest rq;
  rq.channel = &ch;
  rq.connections = &cs;
  rq.options.max_segments = max_segments;
  rq.budget = budget;
  out.result = route("dp", rq);
  out.regime = CanonicalRegime::kDp;
  return out;
}

}  // namespace segroute::alg
