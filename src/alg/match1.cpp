#include "alg/match1.h"

#include <cmath>
#include <optional>

#include "match/hopcroft_karp.h"
#include "match/hungarian.h"
#include "obs/instrument.h"

namespace segroute::alg {

namespace {

/// Flattened (track, segment) index space for the right-hand side —
/// the per-call fallback when no ChannelIndex is supplied (which holds
/// the same tables prebuilt).
struct SegIndex {
  std::vector<int> base;  // per track, offset of its first segment
  int total = 0;

  explicit SegIndex(const SegmentedChannel& ch) {
    base.reserve(static_cast<std::size_t>(ch.num_tracks()));
    for (TrackId t = 0; t < ch.num_tracks(); ++t) {
      base.push_back(total);
      total += ch.track(t).num_segments();
    }
  }
  [[nodiscard]] int flat(TrackId t, SegId s) const {
    return base[static_cast<std::size_t>(t)] + s;
  }
  [[nodiscard]] TrackId track_of_flat(int f) const {
    TrackId t = static_cast<TrackId>(base.size()) - 1;
    while (base[static_cast<std::size_t>(t)] > f) --t;
    return t;
  }
};

/// Uniform view over ChannelIndex / fallback SegIndex.
struct FlatSegs {
  const ChannelIndex* idx;
  std::optional<SegIndex> local;

  FlatSegs(const SegmentedChannel& ch, const ChannelIndex* index)
      : idx(index) {
    if (!idx) local.emplace(ch);
  }
  [[nodiscard]] int total() const {
    return idx ? idx->total_segments() : local->total;
  }
  [[nodiscard]] int flat(TrackId t, SegId s) const {
    return idx ? idx->seg_base(t) + s : local->flat(t, s);
  }
  [[nodiscard]] TrackId track_of_flat(int f) const {
    return idx ? idx->track_of_flat(f) : local->track_of_flat(f);
  }
  [[nodiscard]] std::pair<SegId, SegId> span(const SegmentedChannel& ch,
                                             TrackId t, Column lo,
                                             Column hi) const {
    return idx ? idx->span(t, lo, hi) : ch.track(t).span(lo, hi);
  }
};

}  // namespace

RouteResult match1_route(const SegmentedChannel& ch, const ConnectionSet& cs,
                         const RouteContext& ctx) {
  RouteResult res;
  res.routing = Routing(cs.size());
  SEGROUTE_SPAN(m1_span, "alg.match1_route");
  if (cs.max_right() > ch.width()) {
    res.fail(FailureKind::kInvalidInput, "connections exceed channel width");
    SEGROUTE_SPAN_TAG(m1_span, "outcome", to_string(res.failure));
    return res;
  }
  FlatSegs idx(ch, ctx.index);
  match::BipartiteGraph g(cs.size(), idx.total());
  std::uint64_t edges = 0;
  {
    SEGROUTE_SPAN(build_span, "match1.build_graph");
    for (ConnId i = 0; i < cs.size(); ++i) {
      const Connection& c = cs[i];
      for (TrackId t = 0; t < ch.num_tracks(); ++t) {
        auto [a, b] = idx.span(ch, t, c.left, c.right);
        if (a == b) {
          g.add_edge(i, idx.flat(t, a));
          ++edges;
        }
      }
    }
  }
  SEGROUTE_COUNT("match1.graph_edges", edges);
  SEGROUTE_SPAN(match_span, "match1.matching");
  const auto m = match::hopcroft_karp(g);
  SEGROUTE_SPAN_TAG(match_span, "matched", static_cast<std::uint64_t>(m.size));
  if (m.size != cs.size()) {
    res.fail(FailureKind::kInfeasible,
             "maximum matching covers only " + std::to_string(m.size) +
                 " of " + std::to_string(cs.size()) + " connections");
    SEGROUTE_SPAN_TAG(m1_span, "outcome", to_string(res.failure));
    return res;
  }
  for (ConnId i = 0; i < cs.size(); ++i) {
    res.routing.assign(i, idx.track_of_flat(m.match_left[static_cast<std::size_t>(i)]));
  }
  res.success = true;
  SEGROUTE_SPAN_TAG(m1_span, "outcome", "success");
  return res;
}

RouteResult match1_route_optimal(const SegmentedChannel& ch,
                                 const ConnectionSet& cs, const WeightFn& w,
                                 const RouteContext& ctx) {
  RouteResult res;
  res.routing = Routing(cs.size());
  if (cs.size() == 0) {
    res.success = true;
    return res;
  }
  if (cs.max_right() > ch.width()) {
    res.note = "connections exceed channel width";
    return res;
  }
  FlatSegs idx(ch, ctx.index);
  const int total = idx.total();
  if (cs.size() > total) {
    res.fail(FailureKind::kInfeasible, "more connections than segments");
    return res;
  }
  std::vector<double> cost(static_cast<std::size_t>(cs.size()) *
                               static_cast<std::size_t>(total),
                           match::kForbidden);
  for (ConnId i = 0; i < cs.size(); ++i) {
    const Connection& c = cs[i];
    for (TrackId t = 0; t < ch.num_tracks(); ++t) {
      auto [a, b] = idx.span(ch, t, c.left, c.right);
      if (a != b) continue;
      const double wc = w(ch, c, t);
      if (std::isinf(wc)) continue;
      cost[static_cast<std::size_t>(i) * static_cast<std::size_t>(total) +
           static_cast<std::size_t>(idx.flat(t, a))] = wc;
    }
  }
  const auto m = match::hungarian(cs.size(), total, cost);
  if (!m.feasible) {
    res.fail(FailureKind::kInfeasible, "no complete 1-segment routing exists");
    return res;
  }
  for (ConnId i = 0; i < cs.size(); ++i) {
    res.routing.assign(
        i, idx.track_of_flat(m.column_of[static_cast<std::size_t>(i)]));
  }
  res.weight = m.cost;
  res.success = true;
  return res;
}

}  // namespace segroute::alg
