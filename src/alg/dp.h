// The general dynamic-programming router of Section IV-B: builds the
// assignment graph over routing frontiers and reads a routing (or a
// minimum-weight routing) from it. Solves Problems 1, 2 and 3.
//
// Frontier representation. For a partial routing of the first i
// connections (sorted by left end), the paper's frontier is x[j] = the
// leftmost unoccupied column in track j at or to the right of
// left(c_{i+1}). We store exactly that: per track, the next free column,
// normalized to max(rightmost-occupied-column + 1, left(c_{i+1})).
// Two partial routings with equal frontiers are interchangeable, so each
// level of the assignment graph holds one node per distinct frontier
// (Theorem 5: at most 2*T! of them; Theorem 6: (K+1)^T for K-segment).
//
// Track-type canonicalization (Theorem 7). Tracks with identical
// segmentation are interchangeable, so frontier entries within one type
// class are kept sorted; this collapses states that differ only by a
// permutation of same-type tracks and yields the O((prod_i T_i)^K) bound.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "alg/result.h"
#include "core/channel.h"
#include "core/connection.h"
#include "core/weights.h"
#include "harness/budget.h"

namespace segroute {
class ChannelIndex;  // core/channel_index.h
}

namespace segroute::alg {

/// Reusable scratch for dp_route: every per-call vector (frontier arena,
/// node metadata SoA, dedup table, per-level class tables, replay state)
/// in one bundle, so repeated calls on one thread are allocation-free in
/// steady state. Plain data — default-construct and hand the same object
/// to successive calls. NOT thread-safe: one workspace per thread, never
/// shared by concurrent (or nested) dp_route calls. The engine's
/// per-thread scratch (engine/scratch.h) owns one per thread.
struct DpWorkspace {
  std::vector<Column> arena;
  std::vector<std::int64_t> parent;
  std::vector<std::int32_t> edge_class;
  std::vector<double> node_w;
  std::vector<std::int64_t> level;
  std::vector<std::int64_t> next_level;
  std::vector<std::int64_t> slots;
  std::vector<char> cls_ok;
  std::vector<Column> cls_free;
  std::vector<double> cls_w;
  std::vector<Column> scratch;
  std::vector<ConnId> order;
  std::vector<TrackId> class_members;  // member tracks, flattened by class
  std::vector<int> class_begin;        // per-class offsets into class_members
  std::vector<int> class_cursor;
  std::vector<int> class_choice;
  std::vector<Column> next_free;
};

/// Heap bytes retained by a workspace (vector capacities, not sizes):
/// the arena high-water mark a long-lived workspace holds between calls.
inline std::size_t workspace_bytes(const DpWorkspace& ws) {
  const auto cap = [](const auto& v) {
    return v.capacity() * sizeof(v[0]);
  };
  return cap(ws.arena) + cap(ws.parent) + cap(ws.edge_class) +
         cap(ws.node_w) + cap(ws.level) + cap(ws.next_level) + cap(ws.slots) +
         cap(ws.cls_ok) + cap(ws.cls_free) + cap(ws.cls_w) + cap(ws.scratch) +
         cap(ws.order) + cap(ws.class_members) + cap(ws.class_begin) +
         cap(ws.class_cursor) + cap(ws.class_choice) + cap(ws.next_free);
}

struct DpOptions {
  /// 0 = unlimited-segment routing (Problem 1); K > 0 = K-segment routing
  /// (Problem 2).
  int max_segments = 0;

  /// If set, minimizes total weight (Problem 3). Assignments of weight
  /// +infinity are forbidden. With `canonicalize_types` the weight must
  /// depend on the track only through its segmentation (true of all
  /// weights in core/weights.h).
  std::optional<WeightFn> weight;

  /// Merge frontiers equal up to permutation of identically segmented
  /// tracks (Theorem 7). Disable to measure the raw Theorem-5/6 bounds.
  bool canonicalize_types = true;

  /// Safety valve: abort (success=false, failure=kBudgetExhausted) if the
  /// assignment graph exceeds this many nodes.
  std::uint64_t max_total_nodes = 20'000'000;

  /// Resource bounds checked in the hot loop (one tick per attempted
  /// frontier expansion). On exhaustion the router returns a structured
  /// FailureKind::kBudgetExhausted failure instead of running unbounded.
  harness::Budget budget;

  /// Prebuilt index over the channel being routed (must match `ch`).
  /// Replaces the per-call class derivation and every per-Track
  /// segment_at binary search with O(1) table lookups. Results are
  /// bit-identical with and without it.
  const ChannelIndex* index = nullptr;

  /// Reusable scratch (see DpWorkspace). When null a call-local
  /// workspace is used — the historical allocate-per-call behavior.
  DpWorkspace* workspace = nullptr;
};

/// Runs the assignment-graph DP. On success the routing is complete and
/// valid; for Problem 3, `weight` is the minimum total weight.
/// `stats.nodes_per_level` reports the size of each level (the paper's L
/// is `stats.max_level_nodes`).
RouteResult dp_route(const SegmentedChannel& ch, const ConnectionSet& cs,
                     const DpOptions& opts = {});

/// Convenience wrappers.
RouteResult dp_route_unlimited(const SegmentedChannel& ch,
                               const ConnectionSet& cs);
RouteResult dp_route_ksegment(const SegmentedChannel& ch,
                              const ConnectionSet& cs, int k);
RouteResult dp_route_optimal(const SegmentedChannel& ch,
                             const ConnectionSet& cs, const WeightFn& w,
                             int max_segments = 0);

}  // namespace segroute::alg
