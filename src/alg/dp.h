// The general dynamic-programming router of Section IV-B: builds the
// assignment graph over routing frontiers and reads a routing (or a
// minimum-weight routing) from it. Solves Problems 1, 2 and 3.
//
// Frontier representation. For a partial routing of the first i
// connections (sorted by left end), the paper's frontier is x[j] = the
// leftmost unoccupied column in track j at or to the right of
// left(c_{i+1}). We store exactly that: per track, the next free column,
// normalized to max(rightmost-occupied-column + 1, left(c_{i+1})).
// Two partial routings with equal frontiers are interchangeable, so each
// level of the assignment graph holds one node per distinct frontier
// (Theorem 5: at most 2*T! of them; Theorem 6: (K+1)^T for K-segment).
//
// Track-type canonicalization (Theorem 7). Tracks with identical
// segmentation are interchangeable, so frontier entries within one type
// class are kept sorted; this collapses states that differ only by a
// permutation of same-type tracks and yields the O((prod_i T_i)^K) bound.
//
// Storage is bit-parallel: each frontier is packed into a fixed number
// of 64-bit occupancy words (alg/frontier_bits.h; each entry takes
// bit_width(width+1) bits), so state equality is a compare of 1-2 words,
// hashing is a word-at-a-time mix, and dedup probes are staged in small
// batches to overlap their cache misses. Packing is injective, so the
// explored state space — node counts, routings, weights — is bit-
// identical to the scalar layout. DESIGN.md §13 documents the layout.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "alg/frontier_bits.h"
#include "alg/result.h"
#include "core/channel.h"
#include "core/connection.h"
#include "core/weights.h"
#include "harness/budget.h"

namespace segroute {
class ChannelIndex;  // core/channel_index.h
}

namespace segroute::alg {

/// Reusable scratch for dp_route: every per-call vector (frontier arena,
/// node metadata SoA, dedup table, per-level class tables, replay state)
/// in one bundle, so repeated calls on one thread are allocation-free in
/// steady state. Plain data — default-construct and hand the same object
/// to successive calls. NOT thread-safe: one workspace per thread, never
/// shared by concurrent (or nested) dp_route calls. The engine's
/// per-thread scratch (engine/scratch.h) owns one per thread.
struct DpWorkspace {
  /// Packed-state layout for the current call: each frontier is
  /// bit-packed into `codec.words()` 64-bit occupancy words (see
  /// alg/frontier_bits.h and DESIGN.md §13).
  bits::FrontierCodec codec;
  std::vector<std::uint64_t> arena;  // packed frontier words, word-aligned
  std::vector<std::int64_t> parent;
  std::vector<std::int32_t> edge_class;
  std::vector<double> node_w;
  /// Open-addressing dedup table; each slot stores the packed key inline
  /// (stride words()+1: key words, then an epoch-tagged node id), so a
  /// probe never dereferences the arena. Levels themselves need no
  /// storage: ids are assigned consecutively, so each level is a
  /// contiguous id range.
  std::vector<std::uint64_t> slots;
  std::vector<char> cls_ok;
  std::vector<Column> cls_free;
  std::vector<double> cls_w;
  /// Per-class next-free-column table, built once per call when no
  /// ChannelIndex is supplied: row cl, column c holds the first free
  /// column after routing through c on a class-cl track. Replaces the
  /// per-level (and replay) segment_at binary searches.
  std::vector<Column> cls_next_free;
  /// Pooled per-call field scratch: the node-in-hand unpacked frontier
  /// (`cur`), its left-clamped copy, and the per-class packed-position
  /// table share one allocation (spans are carved out in dp.cpp).
  std::vector<std::int32_t> fields;
  /// Pooled per-call word scratch: the clamped packed words and the
  /// ProbeBatch staging area share one allocation.
  std::vector<std::uint64_t> words;
  bits::ProbeBatch batch;  // staged dedup probes (storage lives in words)
  std::vector<ConnId> order;
  std::vector<TrackId> class_members;  // member tracks, flattened by class
  std::vector<int> class_begin;        // per-class offsets into class_members
  std::vector<int> class_cursor;
  std::vector<int> class_choice;
  std::vector<Column> next_free;
};

/// Heap bytes retained by a workspace (vector capacities, not sizes):
/// the arena high-water mark a long-lived workspace holds between calls.
/// The frontier arena is counted in packed-word bytes — the bytes
/// actually held — so Scratch::bytes_held() stays exact.
inline std::size_t workspace_bytes(const DpWorkspace& ws) {
  const auto cap = [](const auto& v) {
    return v.capacity() * sizeof(v[0]);
  };
  return ws.codec.bytes_held() + cap(ws.arena) + cap(ws.parent) +
         cap(ws.edge_class) + cap(ws.node_w) + cap(ws.slots) +
         cap(ws.cls_ok) + cap(ws.cls_free) + cap(ws.cls_w) +
         cap(ws.cls_next_free) + cap(ws.fields) + cap(ws.words) +
         cap(ws.order) + cap(ws.class_members) + cap(ws.class_begin) +
         cap(ws.class_cursor) + cap(ws.class_choice) + cap(ws.next_free);
}

struct DpOptions {
  /// 0 = unlimited-segment routing (Problem 1); K > 0 = K-segment routing
  /// (Problem 2).
  int max_segments = 0;

  /// If set, minimizes total weight (Problem 3). Assignments of weight
  /// +infinity are forbidden. With `canonicalize_types` the weight must
  /// depend on the track only through its segmentation (true of all
  /// weights in core/weights.h).
  std::optional<WeightFn> weight;

  /// Merge frontiers equal up to permutation of identically segmented
  /// tracks (Theorem 7). Disable to measure the raw Theorem-5/6 bounds.
  bool canonicalize_types = true;

  /// Safety valve: abort (success=false, failure=kBudgetExhausted) if the
  /// assignment graph exceeds this many nodes.
  std::uint64_t max_total_nodes = 20'000'000;

  /// Resource bounds checked in the hot loop (one tick per attempted
  /// frontier expansion). On exhaustion the router returns a structured
  /// FailureKind::kBudgetExhausted failure instead of running unbounded.
  harness::Budget budget;

  /// Prebuilt index over the channel being routed (must match `ch`).
  /// Replaces the per-call class derivation and every per-Track
  /// segment_at binary search with O(1) table lookups. Results are
  /// bit-identical with and without it.
  const ChannelIndex* index = nullptr;

  /// Reusable scratch (see DpWorkspace). When null a call-local
  /// workspace is used — the historical allocate-per-call behavior.
  DpWorkspace* workspace = nullptr;
};

/// Runs the assignment-graph DP. On success the routing is complete and
/// valid; for Problem 3, `weight` is the minimum total weight.
/// `stats.nodes_per_level` reports the size of each level (the paper's L
/// is `stats.max_level_nodes`).
RouteResult dp_route(const SegmentedChannel& ch, const ConnectionSet& cs,
                     const DpOptions& opts = {});

/// Convenience wrappers.
RouteResult dp_route_unlimited(const SegmentedChannel& ch,
                               const ConnectionSet& cs);
RouteResult dp_route_ksegment(const SegmentedChannel& ch,
                              const ConnectionSet& cs, int k);
RouteResult dp_route_optimal(const SegmentedChannel& ch,
                             const ConnectionSet& cs, const WeightFn& w,
                             int max_segments = 0);

}  // namespace segroute::alg
