#include "alg/anneal_route.h"

#include <algorithm>
#include <cmath>

#include "core/routing.h"

namespace segroute::alg {

namespace {

/// Incremental conflict counter: per (track, segment) occupancy counts;
/// cost = sum over segments of max(0, count - 1).
class ConflictState {
 public:
  ConflictState(const SegmentedChannel& ch, const ConnectionSet& cs)
      : ch_(&ch), cs_(&cs) {
    counts_.resize(static_cast<std::size_t>(ch.num_tracks()));
    for (TrackId t = 0; t < ch.num_tracks(); ++t) {
      counts_[static_cast<std::size_t>(t)].assign(
          static_cast<std::size_t>(ch.track(t).num_segments()), 0);
    }
  }

  void add(ConnId i, TrackId t) {
    auto [a, b] = ch_->track(t).span((*cs_)[i].left, (*cs_)[i].right);
    for (SegId s = a; s <= b; ++s) {
      int& c = counts_[static_cast<std::size_t>(t)][static_cast<std::size_t>(s)];
      if (++c > 1) ++cost_;
    }
  }

  void remove(ConnId i, TrackId t) {
    auto [a, b] = ch_->track(t).span((*cs_)[i].left, (*cs_)[i].right);
    for (SegId s = a; s <= b; ++s) {
      int& c = counts_[static_cast<std::size_t>(t)][static_cast<std::size_t>(s)];
      if (c-- > 1) --cost_;
    }
  }

  [[nodiscard]] int cost() const { return cost_; }

 private:
  const SegmentedChannel* ch_;
  const ConnectionSet* cs_;
  std::vector<std::vector<int>> counts_;
  int cost_ = 0;
};

}  // namespace

RouteResult anneal_route(const SegmentedChannel& ch, const ConnectionSet& cs,
                         const AnnealRouteOptions& opts) {
  RouteResult res;
  res.routing = Routing(cs.size());
  if (cs.max_right() > ch.width()) {
    res.fail(FailureKind::kInvalidInput, "connections exceed channel width");
    return res;
  }
  if (cs.size() == 0) {
    res.success = true;
    return res;
  }
  harness::BudgetMeter meter(opts.budget);

  // Feasible track lists (K-segment pre-filter). A connection with no
  // feasible track dooms the instance outright.
  std::vector<std::vector<TrackId>> options(static_cast<std::size_t>(cs.size()));
  for (ConnId i = 0; i < cs.size(); ++i) {
    for (TrackId t = 0; t < ch.num_tracks(); ++t) {
      if (opts.max_segments > 0 &&
          ch.track(t).segments_spanned(cs[i].left, cs[i].right) >
              opts.max_segments) {
        continue;
      }
      options[static_cast<std::size_t>(i)].push_back(t);
    }
    if (options[static_cast<std::size_t>(i)].empty()) {
      res.fail(FailureKind::kInfeasible,
               "connection " + std::to_string(i) +
                   " has no track within the segment limit");
      return res;
    }
  }

  std::mt19937_64 rng(opts.seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  const double cooling = std::pow(
      opts.t_end / opts.t_start, 1.0 / std::max(1, opts.iterations - 1));

  for (int restart = 0; restart < std::max(1, opts.restarts); ++restart) {
    // Random initial assignment.
    std::vector<TrackId> assign(static_cast<std::size_t>(cs.size()));
    ConflictState state(ch, cs);
    for (ConnId i = 0; i < cs.size(); ++i) {
      const auto& opt = options[static_cast<std::size_t>(i)];
      assign[static_cast<std::size_t>(i)] =
          opt[rng() % opt.size()];
      state.add(i, assign[static_cast<std::size_t>(i)]);
    }
    double temp = opts.t_start;
    for (int it = 0; it < opts.iterations && state.cost() > 0;
         ++it, temp *= cooling) {
      if (!meter.tick()) {
        res.fail(FailureKind::kBudgetExhausted,
                 "budget exhausted: " + meter.reason());
        return res;
      }
      ++res.stats.iterations;
      const ConnId i = static_cast<ConnId>(rng() % static_cast<unsigned>(cs.size()));
      const auto& opt = options[static_cast<std::size_t>(i)];
      if (opt.size() < 2) continue;
      const TrackId from = assign[static_cast<std::size_t>(i)];
      TrackId to = opt[rng() % opt.size()];
      if (to == from) continue;
      const int before = state.cost();
      state.remove(i, from);
      state.add(i, to);
      const int delta = state.cost() - before;
      if (delta <= 0 || unit(rng) < std::exp(-delta / temp)) {
        assign[static_cast<std::size_t>(i)] = to;  // accept
      } else {
        state.remove(i, to);  // revert
        state.add(i, from);
      }
    }
    if (state.cost() == 0) {
      for (ConnId i = 0; i < cs.size(); ++i) {
        res.routing.assign(i, assign[static_cast<std::size_t>(i)]);
      }
      res.success = true;
      return res;
    }
  }
  res.fail(FailureKind::kInfeasible,
           "no conflict-free assignment found (" +
               std::to_string(std::max(1, opts.restarts)) + " restarts)");
  return res;
}

}  // namespace segroute::alg
