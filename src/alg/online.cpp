#include "alg/online.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "alg/registry.h"

namespace segroute::alg {

OnlineRouter::OnlineRouter(SegmentedChannel channel, Policy policy,
                           int max_segments)
    : channel_(std::move(channel)),
      index_(channel_),
      policy_(policy),
      max_segments_(max_segments),
      occ_(channel_) {}

bool OnlineRouter::feasible_on(const Connection& c, TrackId t) const {
  const auto [a, b] = index_.span(t, c.left, c.right);
  if (max_segments_ > 0 && b - a + 1 > max_segments_) return false;
  for (SegId s = a; s <= b; ++s) {
    if (occ_.occupant(t, s) != kNoConn) return false;
  }
  return true;
}

std::optional<TrackId> OnlineRouter::pick_track(const Connection& c) const {
  std::optional<TrackId> best;
  Column best_len = std::numeric_limits<Column>::max();
  for (TrackId t = 0; t < channel_.num_tracks(); ++t) {
    if (!feasible_on(c, t)) continue;
    if (policy_ == Policy::FirstFit) return t;
    const Column len = index_.occupied_length(t, c.left, c.right);
    if (len < best_len) {
      best_len = len;
      best = t;
    }
  }
  return best;
}

std::optional<ConnId> OnlineRouter::insert(Column left, Column right,
                                           std::string name) {
  Connection c{left, right, std::move(name)};
  if (c.left < 1 || c.left > c.right || c.right > channel_.width()) {
    last_failure_ = FailureKind::kInvalidInput;
    return std::nullopt;
  }
  const auto t = pick_track(c);
  if (!t) {
    last_failure_ = FailureKind::kInfeasible;
    return std::nullopt;
  }
  last_failure_ = FailureKind::kNone;
  const ConnId id = static_cast<ConnId>(conns_.size());
  occ_.place(*t, c.left, c.right, id);
  conns_.push_back(std::move(c));
  track_of_.push_back(*t);
  live_.push_back(true);
  ++num_placed_;
  // A greedy append in id order IS the canonical construction step, so
  // a canonical state stays canonical (and a non-canonical one stays
  // whatever it was).
  return id;
}

std::optional<ConnId> OnlineRouter::insert_with_ripup(Column left, Column right,
                                                      std::string name) {
  if (auto id = insert(left, right, name)) return id;
  if (last_failure_ == FailureKind::kInvalidInput) return std::nullopt;
  const Connection c{left, right, name};
  // Try evicting, per track, every live connection that occupies one of
  // the segments c would need; c must then fit the track and the victim
  // must fit somewhere else.
  for (TrackId t = 0; t < channel_.num_tracks(); ++t) {
    const auto [a, b] = index_.span(t, c.left, c.right);
    if (max_segments_ > 0 && b - a + 1 > max_segments_) continue;
    // Collect distinct blockers on this track.
    std::vector<ConnId> blockers;
    for (SegId s = a; s <= b; ++s) {
      const ConnId o = occ_.occupant(t, s);
      if (o != kNoConn &&
          (blockers.empty() || blockers.back() != o)) {
        blockers.push_back(o);
      }
    }
    if (blockers.size() != 1) continue;  // single-victim rip-up only
    const ConnId victim = blockers.front();
    const Connection vc = conns_[static_cast<std::size_t>(victim)];
    // Tentatively evict.
    occ_.remove(track_of_[static_cast<std::size_t>(victim)], vc.left, vc.right);
    if (feasible_on(c, t)) {
      // Place the new connection, then find the victim a new home.
      const ConnId id = static_cast<ConnId>(conns_.size());
      occ_.place(t, c.left, c.right, id);
      const auto new_home = pick_track(vc);
      if (new_home) {
        conns_.push_back(c);
        track_of_.push_back(t);
        live_.push_back(true);
        ++num_placed_;
        occ_.place(*new_home, vc.left, vc.right, victim);
        track_of_[static_cast<std::size_t>(victim)] = *new_home;
        last_failure_ = FailureKind::kNone;
        greedy_canonical_ = false;  // eviction breaks the id-order build
        return id;
      }
      occ_.remove(t, c.left, c.right);  // undo the tentative placement
    }
    // Restore the victim.
    occ_.place(track_of_[static_cast<std::size_t>(victim)], vc.left, vc.right,
               victim);
  }
  return std::nullopt;
}

bool OnlineRouter::remove(ConnId id) {
  if (!is_placed(id)) return false;
  const Connection& c = conns_[static_cast<std::size_t>(id)];
  occ_.remove(track_of_[static_cast<std::size_t>(id)], c.left, c.right);
  live_[static_cast<std::size_t>(id)] = false;
  track_of_[static_cast<std::size_t>(id)] = kNoTrack;
  --num_placed_;
  last_failure_ = FailureKind::kNone;
  greedy_canonical_ = false;  // survivors were placed around the hole
  return true;
}

TrackId OnlineRouter::reroute(ConnId id) {
  if (!is_placed(id)) return kNoTrack;
  const Connection c = conns_[static_cast<std::size_t>(id)];
  const TrackId old = track_of_[static_cast<std::size_t>(id)];
  occ_.remove(old, c.left, c.right);
  const auto t = pick_track(c);  // old track is free again, so always set
  occ_.place(*t, c.left, c.right, id);
  track_of_[static_cast<std::size_t>(id)] = *t;
  last_failure_ = FailureKind::kNone;
  greedy_canonical_ = false;  // out-of-order re-placement
  return *t;
}

void OnlineRouter::close_over_segments(Column& lo, Column& hi) const {
  lo = std::max<Column>(1, lo);
  hi = std::min(channel_.width(), hi);
  bool changed = true;
  while (changed) {
    changed = false;
    for (TrackId t = 0; t < index_.num_tracks(); ++t) {
      const Column l = index_.seg_left(t, index_.segment_at(t, lo));
      const Column r = index_.seg_right(t, index_.segment_at(t, hi));
      if (l < lo) {
        lo = l;
        changed = true;
      }
      if (r > hi) {
        hi = r;
        changed = true;
      }
    }
  }
}

bool OnlineRouter::repair_window(Column lo, Column hi, RepairOutcome& out) {
  close_over_segments(lo, hi);
  // Cascade: the window must contain the full span of every connection
  // it touches (so their candidate segments all lie inside it), and stay
  // segment-closed. Grow to the joint fixpoint.
  bool grew = true;
  while (grew) {
    grew = false;
    for (ConnId id = 0; id < static_cast<ConnId>(conns_.size()); ++id) {
      if (!live_[static_cast<std::size_t>(id)]) continue;
      const Connection& c = conns_[static_cast<std::size_t>(id)];
      if (c.left > hi || c.right < lo) continue;
      if (c.left < lo) {
        lo = c.left;
        grew = true;
      }
      if (c.right > hi) {
        hi = c.right;
        grew = true;
      }
    }
    if (grew) close_over_segments(lo, hi);
  }
  out.affected_lo = lo;
  out.affected_hi = hi;

  // Affected = live connections inside the closed window. Everything
  // else provably keeps its canonical placement: its candidate segments
  // are disjoint from the window (the window is segment-closed), and
  // affected connections only ever occupy segments inside it.
  std::vector<ConnId> affected;
  std::vector<TrackId> prev;
  for (ConnId id = 0; id < static_cast<ConnId>(conns_.size()); ++id) {
    if (!live_[static_cast<std::size_t>(id)]) continue;
    const Connection& c = conns_[static_cast<std::size_t>(id)];
    if (c.left > hi || c.right < lo) continue;
    affected.push_back(id);
    prev.push_back(track_of_[static_cast<std::size_t>(id)]);
  }
  for (std::size_t i = 0; i < affected.size(); ++i) {
    const ConnId id = affected[i];
    if (prev[i] == kNoTrack) continue;  // the edited conn, not yet placed
    const Connection& c = conns_[static_cast<std::size_t>(id)];
    occ_.remove(prev[i], c.left, c.right);
    track_of_[static_cast<std::size_t>(id)] = kNoTrack;
    --num_placed_;
  }
  // Re-place in increasing id order — exactly the canonical greedy
  // replay, restricted to the window.
  for (std::size_t i = 0; i < affected.size(); ++i) {
    const ConnId id = affected[i];
    const Connection& c = conns_[static_cast<std::size_t>(id)];
    ++out.reconsidered;
    const auto t = pick_track(c);
    if (!t) return false;
    occ_.place(*t, c.left, c.right, id);
    track_of_[static_cast<std::size_t>(id)] = *t;
    ++num_placed_;
    if (prev[i] != kNoTrack && prev[i] != *t) ++out.moved;
  }
  return true;
}

bool OnlineRouter::full_dp(const harness::Budget& budget, RepairOutcome& out) {
  ConnectionSet cs;
  std::vector<ConnId> ids;
  for (ConnId id = 0; id < static_cast<ConnId>(conns_.size()); ++id) {
    if (!live_[static_cast<std::size_t>(id)]) continue;
    const Connection& c = conns_[static_cast<std::size_t>(id)];
    cs.add(c.left, c.right, c.name);
    ids.push_back(id);
  }
  RouteRequest rq;
  rq.channel = &channel_;
  rq.connections = &cs;
  rq.context.index = &index_;
  rq.options.max_segments = max_segments_;
  rq.budget = budget;
  const RouteResult res = route("dp", rq);
  if (!res.success) {
    out.failure = res.failure == FailureKind::kNone ? FailureKind::kInternal
                                                    : res.failure;
    out.note = res.note;
    return false;
  }
  occ_.reset();
  num_placed_ = 0;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const ConnId id = ids[i];
    const Connection& c = conns_[static_cast<std::size_t>(id)];
    const TrackId t = res.routing.track_of(static_cast<ConnId>(i));
    occ_.place(t, c.left, c.right, id);
    track_of_[static_cast<std::size_t>(id)] = t;
    ++num_placed_;
  }
  greedy_canonical_ = false;
  out.success = true;
  out.path = RepairOutcome::Path::kFullDp;
  out.affected_lo = 1;
  out.affected_hi = channel_.width();
  out.reconsidered = static_cast<int>(ids.size());
  return true;
}

OnlineRouter::Memento OnlineRouter::save_state() const {
  return Memento{conns_, track_of_, live_, occ_, num_placed_,
                 greedy_canonical_};
}

void OnlineRouter::restore_state(Memento&& m) {
  conns_ = std::move(m.conns);
  track_of_ = std::move(m.track_of);
  live_ = std::move(m.live);
  occ_ = std::move(m.occ);
  num_placed_ = m.num_placed;
  greedy_canonical_ = m.greedy_canonical;
}

RepairOutcome OnlineRouter::apply(const ChannelEdit& edit,
                                  const harness::Budget& budget) {
  RepairOutcome out;
  out.id = edit.id;
  if (edit.kind != ChannelEdit::Kind::kRemove &&
      (edit.left < 1 || edit.left > edit.right ||
       edit.right > channel_.width())) {
    out.failure = FailureKind::kInvalidInput;
    out.note = std::string("apply: ") + to_string(edit.kind) +
               " with an invalid span";
    last_failure_ = FailureKind::kInvalidInput;
    return out;
  }
  if (edit.kind != ChannelEdit::Kind::kAdd && !is_placed(edit.id)) {
    out.failure = FailureKind::kInvalidInput;
    out.note = std::string("apply: ") + to_string(edit.kind) +
               " of an unknown or removed id";
    last_failure_ = FailureKind::kInvalidInput;
    return out;
  }

  // Fast path: appending to a canonical greedy state IS one canonical
  // construction step — nothing else can be affected.
  if (edit.kind == ChannelEdit::Kind::kAdd && greedy_canonical_) {
    Connection c{edit.left, edit.right, edit.name};
    if (const auto t = pick_track(c)) {
      const ConnId id = static_cast<ConnId>(conns_.size());
      occ_.place(*t, c.left, c.right, id);
      conns_.push_back(std::move(c));
      track_of_.push_back(*t);
      live_.push_back(true);
      ++num_placed_;
      out.id = id;
      out.success = true;
      out.path = RepairOutcome::Path::kRepair;
      Column lo = edit.left;
      Column hi = edit.right;
      close_over_segments(lo, hi);
      out.affected_lo = lo;
      out.affected_hi = hi;
      out.reconsidered = 1;
      last_failure_ = FailureKind::kNone;
      return out;
    }
    // Greedy fails on the appended sequence, so canonical(S') is the
    // DP's answer (or the edit is infeasible).
  }

  Memento snap = save_state();

  // Apply the structural edit; remember which columns it dirtied.
  Column lo = 1;
  Column hi = channel_.width();
  switch (edit.kind) {
    case ChannelEdit::Kind::kAdd: {
      out.id = static_cast<ConnId>(conns_.size());
      conns_.push_back(Connection{edit.left, edit.right, edit.name});
      track_of_.push_back(kNoTrack);
      live_.push_back(true);
      lo = edit.left;
      hi = edit.right;
      break;
    }
    case ChannelEdit::Kind::kRemove: {
      const Connection c = conns_[static_cast<std::size_t>(edit.id)];
      occ_.remove(track_of_[static_cast<std::size_t>(edit.id)], c.left,
                  c.right);
      track_of_[static_cast<std::size_t>(edit.id)] = kNoTrack;
      live_[static_cast<std::size_t>(edit.id)] = false;
      --num_placed_;
      lo = c.left;
      hi = c.right;
      break;
    }
    case ChannelEdit::Kind::kMove: {
      const Connection old = conns_[static_cast<std::size_t>(edit.id)];
      occ_.remove(track_of_[static_cast<std::size_t>(edit.id)], old.left,
                  old.right);
      track_of_[static_cast<std::size_t>(edit.id)] = kNoTrack;
      --num_placed_;
      conns_[static_cast<std::size_t>(edit.id)].left = edit.left;
      conns_[static_cast<std::size_t>(edit.id)].right = edit.right;
      lo = std::min(old.left, edit.left);
      hi = std::max(old.right, edit.right);
      break;
    }
  }
  // A non-canonical state (DP regime, or legacy mutators ran) gives the
  // localized argument nothing to stand on: renormalize over the full
  // width — still the greedy path, just with an everything-window.
  if (!greedy_canonical_) {
    lo = 1;
    hi = channel_.width();
  }

  if (repair_window(lo, hi, out)) {
    greedy_canonical_ = true;
    out.success = true;
    out.path = RepairOutcome::Path::kRepair;
    last_failure_ = FailureKind::kNone;
    return out;
  }
  // The localized replay reproduces the canonical greedy decisions
  // exactly, so its failure proves the full greedy replay fails too:
  // canonical(S') is the DP regime.
  if (full_dp(budget, out)) {
    last_failure_ = FailureKind::kNone;
    return out;
  }
  restore_state(std::move(snap));
  out.success = false;
  out.path = RepairOutcome::Path::kFullDp;
  if (edit.kind == ChannelEdit::Kind::kAdd) out.id = kNoConn;
  last_failure_ = out.failure;
  return out;
}

bool OnlineRouter::is_placed(ConnId id) const {
  return id >= 0 && id < static_cast<ConnId>(conns_.size()) &&
         live_[static_cast<std::size_t>(id)];
}

TrackId OnlineRouter::track_of(ConnId id) const {
  if (!is_placed(id)) return kNoTrack;
  return track_of_[static_cast<std::size_t>(id)];
}

const Connection& OnlineRouter::connection(ConnId id) const {
  // Precondition: is_placed(id) — documented in the header.
  return conns_[static_cast<std::size_t>(id)];
}

std::pair<ConnectionSet, Routing> OnlineRouter::snapshot() const {
  ConnectionSet cs;
  std::vector<TrackId> tracks;
  for (ConnId id = 0; id < static_cast<ConnId>(conns_.size()); ++id) {
    if (!live_[static_cast<std::size_t>(id)]) continue;
    const Connection& c = conns_[static_cast<std::size_t>(id)];
    cs.add(c.left, c.right, c.name);
    tracks.push_back(track_of_[static_cast<std::size_t>(id)]);
  }
  Routing r(cs.size());
  for (ConnId i = 0; i < cs.size(); ++i) {
    r.assign(i, tracks[static_cast<std::size_t>(i)]);
  }
  return {std::move(cs), std::move(r)};
}

}  // namespace segroute::alg
