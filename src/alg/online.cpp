#include "alg/online.h"

#include <limits>

namespace segroute::alg {

OnlineRouter::OnlineRouter(SegmentedChannel channel, Policy policy,
                           int max_segments)
    : channel_(std::move(channel)),
      policy_(policy),
      max_segments_(max_segments),
      occ_(channel_) {}

bool OnlineRouter::feasible_on(const Connection& c, TrackId t) const {
  if (max_segments_ > 0 &&
      channel_.track(t).segments_spanned(c.left, c.right) > max_segments_) {
    return false;
  }
  return occ_.fits(t, c.left, c.right);
}

std::optional<TrackId> OnlineRouter::pick_track(const Connection& c) const {
  std::optional<TrackId> best;
  Column best_len = std::numeric_limits<Column>::max();
  for (TrackId t = 0; t < channel_.num_tracks(); ++t) {
    if (!feasible_on(c, t)) continue;
    if (policy_ == Policy::FirstFit) return t;
    const Column len = channel_.track(t).occupied_length(c.left, c.right);
    if (len < best_len) {
      best_len = len;
      best = t;
    }
  }
  return best;
}

std::optional<ConnId> OnlineRouter::insert(Column left, Column right,
                                           std::string name) {
  Connection c{left, right, std::move(name)};
  if (c.left < 1 || c.left > c.right || c.right > channel_.width()) {
    last_failure_ = FailureKind::kInvalidInput;
    return std::nullopt;
  }
  const auto t = pick_track(c);
  if (!t) {
    last_failure_ = FailureKind::kInfeasible;
    return std::nullopt;
  }
  last_failure_ = FailureKind::kNone;
  const ConnId id = static_cast<ConnId>(conns_.size());
  occ_.place(*t, c.left, c.right, id);
  conns_.push_back(std::move(c));
  track_of_.push_back(*t);
  live_.push_back(true);
  ++num_placed_;
  return id;
}

std::optional<ConnId> OnlineRouter::insert_with_ripup(Column left, Column right,
                                                      std::string name) {
  if (auto id = insert(left, right, name)) return id;
  if (last_failure_ == FailureKind::kInvalidInput) return std::nullopt;
  const Connection c{left, right, name};
  // Try evicting, per track, every live connection that occupies one of
  // the segments c would need; c must then fit the track and the victim
  // must fit somewhere else.
  for (TrackId t = 0; t < channel_.num_tracks(); ++t) {
    if (max_segments_ > 0 &&
        channel_.track(t).segments_spanned(c.left, c.right) > max_segments_) {
      continue;
    }
    auto [a, b] = channel_.track(t).span(c.left, c.right);
    // Collect distinct blockers on this track.
    std::vector<ConnId> blockers;
    for (SegId s = a; s <= b; ++s) {
      const ConnId o = occ_.occupant(t, s);
      if (o != kNoConn &&
          (blockers.empty() || blockers.back() != o)) {
        blockers.push_back(o);
      }
    }
    if (blockers.size() != 1) continue;  // single-victim rip-up only
    const ConnId victim = blockers.front();
    const Connection vc = conns_[static_cast<std::size_t>(victim)];
    // Tentatively evict.
    occ_.remove(track_of_[static_cast<std::size_t>(victim)], vc.left, vc.right);
    if (feasible_on(c, t)) {
      // Place the new connection, then find the victim a new home.
      const ConnId id = static_cast<ConnId>(conns_.size());
      occ_.place(t, c.left, c.right, id);
      const auto new_home = pick_track(vc);
      if (new_home) {
        conns_.push_back(c);
        track_of_.push_back(t);
        live_.push_back(true);
        ++num_placed_;
        occ_.place(*new_home, vc.left, vc.right, victim);
        track_of_[static_cast<std::size_t>(victim)] = *new_home;
        last_failure_ = FailureKind::kNone;
        return id;
      }
      occ_.remove(t, c.left, c.right);  // undo the tentative placement
    }
    // Restore the victim.
    occ_.place(track_of_[static_cast<std::size_t>(victim)], vc.left, vc.right,
               victim);
  }
  return std::nullopt;
}

bool OnlineRouter::remove(ConnId id) {
  if (!is_placed(id)) return false;
  const Connection& c = conns_[static_cast<std::size_t>(id)];
  occ_.remove(track_of_[static_cast<std::size_t>(id)], c.left, c.right);
  live_[static_cast<std::size_t>(id)] = false;
  track_of_[static_cast<std::size_t>(id)] = kNoTrack;
  --num_placed_;
  return true;
}

TrackId OnlineRouter::reroute(ConnId id) {
  if (!is_placed(id)) return kNoTrack;
  const Connection c = conns_[static_cast<std::size_t>(id)];
  const TrackId old = track_of_[static_cast<std::size_t>(id)];
  occ_.remove(old, c.left, c.right);
  const auto t = pick_track(c);  // old track is free again, so always set
  occ_.place(*t, c.left, c.right, id);
  track_of_[static_cast<std::size_t>(id)] = *t;
  return *t;
}

bool OnlineRouter::is_placed(ConnId id) const {
  return id >= 0 && id < static_cast<ConnId>(conns_.size()) &&
         live_[static_cast<std::size_t>(id)];
}

TrackId OnlineRouter::track_of(ConnId id) const {
  if (!is_placed(id)) return kNoTrack;
  return track_of_[static_cast<std::size_t>(id)];
}

const Connection& OnlineRouter::connection(ConnId id) const {
  // Precondition: is_placed(id) — documented in the header.
  return conns_[static_cast<std::size_t>(id)];
}

std::pair<ConnectionSet, Routing> OnlineRouter::snapshot() const {
  ConnectionSet cs;
  std::vector<TrackId> tracks;
  for (ConnId id = 0; id < static_cast<ConnId>(conns_.size()); ++id) {
    if (!live_[static_cast<std::size_t>(id)]) continue;
    const Connection& c = conns_[static_cast<std::size_t>(id)];
    cs.add(c.left, c.right, c.name);
    tracks.push_back(track_of_[static_cast<std::size_t>(id)]);
  }
  Routing r(cs.size());
  for (ConnId i = 0; i < cs.size(); ++i) {
    r.assign(i, tracks[static_cast<std::size_t>(i)]);
  }
  return {std::move(cs), std::move(r)};
}

}  // namespace segroute::alg
