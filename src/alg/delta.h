// The per-connection delta contract: edit a live routing instead of
// re-routing the channel from scratch.
//
// Interactive FPGA tooling is edit-dominated: an engineering change
// order adds, removes or moves ONE connection, and the tool wants the
// new routing in microseconds, not a full re-solve. The contract below
// makes that sound by pinning down what "the new routing" *is*:
//
//   canonical(S) = greedy(S)   when the canonical greedy (insert live
//                              connections in id order under the
//                              session policy) places every connection;
//                = dp(S)       otherwise, when the exact DP routes S;
//                = reject      otherwise (the edit that produced S is
//                              refused and the session is unchanged).
//
// canonical() is a pure function of the live connection sequence — no
// history, no clocks, no RNG — so an incremental engine that maintains
// it is *bit-identical to from-scratch routing* after every edit. That
// is the gate the randomized edit-script suite enforces.
//
// The repair-first algorithm (OnlineRouter::apply) maintains
// canonical(S) without replaying everything. An edit dirties a column
// interval; the interval is closed over segment boundaries on every
// track (ChannelIndex per-column structure) and over the spans of the
// connections it touches, to a fixpoint. Connections outside the closed
// interval provably keep their canonical placement — every segment
// their greedy decision can see lies outside the dirty region — so only
// the affected ones are re-placed, in id order. When the localized
// replay leaves a connection unplaced, the engine falls back to the
// full DP; when even that fails, the edit is rejected and the state
// rolled back. The RepairOutcome says which path ran — a proof-carrying
// receipt, not a hint: kRepair means the localized replay re-derived
// the greedy fixpoint, kFullDp means the exposed routing is the DP's.
//
// from_scratch() is the *independent* reference implementation of
// canonical(): a plain insertion loop over Track (not ChannelIndex)
// plus a registry "dp" call. Tests diff the incremental engine against
// it bitwise; the "delta" registry router serves it through the batch
// engine so the same reference runs under every thread count and cache
// mode.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "alg/result.h"
#include "core/channel.h"
#include "core/connection.h"
#include "core/routing.h"
#include "harness/budget.h"

namespace segroute::alg {

/// One edit of a live routing session: add, remove or move a single
/// connection. Built via the factories; a default-constructed edit is
/// invalid (kAdd with an empty span) and is rejected by apply().
struct ChannelEdit {
  enum class Kind { kAdd = 0, kRemove, kMove };

  Kind kind = Kind::kAdd;
  ConnId id = kNoConn;    // remove/move: which connection
  Column left = 0;        // add/move: the (new) span
  Column right = 0;
  std::string name;       // add: diagnostic name

  static ChannelEdit add(Column l, Column r, std::string name = {}) {
    ChannelEdit e;
    e.kind = Kind::kAdd;
    e.left = l;
    e.right = r;
    e.name = std::move(name);
    return e;
  }
  static ChannelEdit remove(ConnId id) {
    ChannelEdit e;
    e.kind = Kind::kRemove;
    e.id = id;
    return e;
  }
  static ChannelEdit move(ConnId id, Column l, Column r) {
    ChannelEdit e;
    e.kind = Kind::kMove;
    e.id = id;
    e.left = l;
    e.right = r;
    return e;
  }
};

const char* to_string(ChannelEdit::Kind k);

/// Proof-carrying outcome of one apply(): which algorithm produced the
/// exposed state, what it touched, and why it failed if it did. The
/// session state after a failed apply() is bit-identical to the state
/// before it (rollback is part of the contract).
struct RepairOutcome {
  enum class Path {
    kNone = 0,   // edit rejected before any routing ran
    kRepair,     // localized replay of the affected window sufficed
    kFullDp,     // local repair left a connection unplaced; DP re-solved
  };

  bool success = false;
  Path path = Path::kNone;
  FailureKind failure = FailureKind::kNone;

  /// Id of the connection the edit created (kAdd) or targeted.
  ConnId id = kNoConn;

  /// The affected-column mask: the closed dirty interval the repair
  /// re-evaluated, in channel columns ([0, -1] when nothing was dirty).
  /// Everything outside it provably kept its placement.
  Column affected_lo = 0;
  Column affected_hi = -1;

  int reconsidered = 0;  // connections re-evaluated by the repair
  int moved = 0;         // ... of which changed track
  std::string note;
};

const char* to_string(RepairOutcome::Path p);

/// Which regime canonical(S) resolved to.
enum class CanonicalRegime {
  kGreedy = 0,  // the canonical greedy placed everything
  kDp,          // greedy left a connection unplaced; DP routed S
};

/// canonical(S) computed from scratch: the independent reference the
/// edit-script suite diffs incremental sessions against. `policy_best_fit`
/// selects the BestFit pick (the session default); false = FirstFit.
/// On success `regime` says which branch of canonical() produced
/// `result.routing`. Failure kinds: kInvalidInput for malformed spans,
/// kInfeasible when neither greedy nor DP routes S, kBudgetExhausted
/// when the DP fallback ran out of `budget`.
struct CanonicalResult {
  RouteResult result;
  CanonicalRegime regime = CanonicalRegime::kGreedy;
};

CanonicalResult from_scratch(const SegmentedChannel& ch,
                             const ConnectionSet& cs, bool policy_best_fit,
                             int max_segments,
                             const harness::Budget& budget = {});

}  // namespace segroute::alg
